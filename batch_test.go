package lcrq

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestBatchRoundTrip exercises the public batch API end to end: a handle
// batch enqueue followed by a pooled batch dequeue must preserve FIFO order
// and accept/return exact counts.
func TestBatchRoundTrip(t *testing.T) {
	q := New()
	h := q.NewHandle()
	defer h.Release()

	vs := make([]uint64, 100)
	for i := range vs {
		vs[i] = uint64(i) + 1
	}
	if n, err := h.EnqueueBatch(vs); n != len(vs) || err != nil {
		t.Fatalf("EnqueueBatch = (%d, %v), want (%d, nil)", n, err, len(vs))
	}

	// Pooled facade drains in chunks; order across chunks must hold.
	out := make([]uint64, 7)
	var got []uint64
	for {
		n := q.DequeueBatch(out)
		if n == 0 {
			break
		}
		got = append(got, out[:n]...)
	}
	if len(got) != len(vs) {
		t.Fatalf("drained %d values, want %d", len(got), len(vs))
	}
	for i, v := range got {
		if v != vs[i] {
			t.Fatalf("FIFO violated at %d: got %d, want %d", i, v, vs[i])
		}
	}
	if n, err := q.EnqueueBatch(vs[:3]); n != 3 || err != nil {
		t.Fatalf("pooled EnqueueBatch = (%d, %v), want (3, nil)", n, err)
	}
	if n := h.DequeueBatch(out); n != 3 {
		t.Fatalf("handle DequeueBatch = %d, want 3", n)
	}
}

// TestBatchBoundedAndClosedErrors pins the batch error contract: a bounded
// queue accepts a clean prefix and reports ErrFull for the remainder, and a
// closed queue reports ErrClosed with nothing accepted.
func TestBatchBoundedAndClosedErrors(t *testing.T) {
	q := New(WithCapacity(4))
	h := q.NewHandle()
	defer h.Release()

	vs := []uint64{1, 2, 3, 4, 5, 6, 7}
	n, err := h.EnqueueBatch(vs)
	if n != 4 || err != ErrFull {
		t.Fatalf("EnqueueBatch over capacity = (%d, %v), want (4, ErrFull)", n, err)
	}
	out := make([]uint64, 8)
	if got := h.DequeueBatch(out); got != 4 {
		t.Fatalf("DequeueBatch = %d, want 4", got)
	}
	for i, v := range out[:4] {
		if v != vs[i] {
			t.Fatalf("accepted prefix wrong at %d: got %d, want %d", i, v, vs[i])
		}
	}

	q.Close()
	if n, err := h.EnqueueBatch(vs); n != 0 || err != ErrClosed {
		t.Fatalf("EnqueueBatch after Close = (%d, %v), want (0, ErrClosed)", n, err)
	}
	if n := h.DequeueBatch(out); n != 0 {
		t.Fatalf("DequeueBatch on closed empty queue = %d, want 0", n)
	}
}

// TestTypedBatch covers the generic facade: batch round trips with real Go
// values, and — on a bounded queue — partial acceptance must recycle the
// unused arena slots so later operations still find free slots and never
// see stale values.
func TestTypedBatch(t *testing.T) {
	q := NewTyped[string](WithCapacity(2))
	h := q.NewHandle()
	defer h.Release()

	n, err := h.EnqueueBatch([]string{"a", "b", "c", "d"})
	if n != 2 || err != ErrFull {
		t.Fatalf("typed EnqueueBatch = (%d, %v), want (2, ErrFull)", n, err)
	}
	out := make([]string, 4)
	if got := h.DequeueBatch(out); got != 2 || out[0] != "a" || out[1] != "b" {
		t.Fatalf("typed DequeueBatch = %d %q, want 2 [a b]", n, out[:2])
	}

	// The two rejected slots must have been recycled: the capacity-2 arena
	// can keep cycling full batches indefinitely without growing.
	for round := 0; round < 100; round++ {
		if n, err := h.EnqueueBatch([]string{"x", "y"}); n != 2 || err != nil {
			t.Fatalf("round %d: EnqueueBatch = (%d, %v), want (2, nil)", round, n, err)
		}
		if got := h.DequeueBatch(out); got != 2 || out[0] != "x" || out[1] != "y" {
			t.Fatalf("round %d: DequeueBatch = %d %q", round, got, out[:2])
		}
	}

	if n, err := q.EnqueueBatch([]string{"p"}); n != 1 || err != nil {
		t.Fatalf("pooled typed EnqueueBatch = (%d, %v), want (1, nil)", n, err)
	}
	if got := q.DequeueBatch(out); got != 1 || out[0] != "p" {
		t.Fatalf("pooled typed DequeueBatch = %d %q, want 1 [p]", got, out[:1])
	}
}

// TestBatchTelemetry verifies the observability chain for batch operations:
// core counters surface through Stats, the batch-size histograms surface
// through Metrics, and both reach the Prometheus endpoint.
func TestBatchTelemetry(t *testing.T) {
	q := New(WithTelemetry())
	h := q.NewHandle()
	vs := make([]uint64, 16)
	for i := range vs {
		vs[i] = uint64(i) + 1
	}
	out := make([]uint64, 16)
	for round := 0; round < 64; round++ {
		if n, err := h.EnqueueBatch(vs); n != len(vs) || err != nil {
			t.Fatalf("EnqueueBatch = (%d, %v)", n, err)
		}
		if n := h.DequeueBatch(out); n != len(vs) {
			t.Fatalf("DequeueBatch = %d, want %d", n, len(vs))
		}
	}
	h.Release() // folds the handle's counters into the aggregate

	m := q.Metrics()
	if m.Stats.BatchEnqueues == 0 || m.Stats.BatchDequeues == 0 {
		t.Fatalf("batch counters missing from Stats: %+v", m.Stats)
	}
	if m.Stats.Enqueues < 64*16 {
		t.Fatalf("constituent items not counted: Enqueues = %d", m.Stats.Enqueues)
	}
	if m.EnqueueBatch.Batches == 0 || m.EnqueueBatch.Items == 0 {
		t.Fatalf("EnqueueBatch summary empty: %+v", m.EnqueueBatch)
	}
	if m.DequeueBatch.Batches == 0 || m.DequeueBatch.P50 == 0 {
		t.Fatalf("DequeueBatch summary empty: %+v", m.DequeueBatch)
	}

	rec := httptest.NewRecorder()
	q.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	for _, series := range []string{
		"lcrq_batch_enqueues_total",
		"lcrq_batch_dequeues_total",
		"lcrq_batch_spills_total",
		"lcrq_gate_spins_total",
		"lcrq_batch_size",
	} {
		if !strings.Contains(body, series) {
			t.Fatalf("Prometheus output missing %s:\n%s", series, body)
		}
	}
}
