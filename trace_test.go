package lcrq

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

func TestTracingRoundTrip(t *testing.T) {
	q := New(WithTracing(4))
	h := q.NewHandle()
	defer h.Release()

	if m := q.Metrics(); m.TraceSampleN != 4 {
		t.Fatalf("TraceSampleN = %d, want 4", m.TraceSampleN)
	}

	id, ok := h.EnqueueTraced(99)
	if !ok || id == 0 {
		t.Fatalf("EnqueueTraced = %#x, %v", id, ok)
	}
	if got, ok := h.LastEnqueueTrace(); !ok || got != id {
		t.Fatalf("LastEnqueueTrace = %#x, %v; want %#x", got, ok, id)
	}
	v, ok := h.Dequeue()
	if !ok || v != 99 {
		t.Fatalf("Dequeue = %d, %v", v, ok)
	}
	traces := h.LastDequeueTraces()
	if len(traces) != 1 || traces[0].ID != id {
		t.Fatalf("LastDequeueTraces = %+v, want one hit with ID %#x", traces, id)
	}
	if traces[0].Sojourn < 0 || traces[0].Pos != 0 {
		t.Fatalf("trace = %+v", traces[0])
	}

	// The completed trace must be retained queue-side and feed the sojourn
	// histogram.
	if tr, ok := q.FindTrace(id); !ok || tr.ID != id {
		t.Fatalf("FindTrace(%#x) = %+v, %v", id, tr, ok)
	}
	recent := q.RecentTraces()
	if len(recent) != 1 || recent[0].ID != id {
		t.Fatalf("RecentTraces = %+v", recent)
	}
	m := q.Metrics()
	if m.Sojourn.Samples != 1 {
		t.Fatalf("Sojourn.Samples = %d, want 1", m.Sojourn.Samples)
	}
	if m.Stats.TraceArms == 0 || m.Stats.TraceHits == 0 {
		// The pooled-handle counters publish lazily; flush via a release.
		t.Logf("note: counters unpublished in snapshot (arms=%d hits=%d)", m.Stats.TraceArms, m.Stats.TraceHits)
	}
}

func TestTracingSampledStride(t *testing.T) {
	q := New(WithTracing(8))
	h := q.NewHandle()

	const ops = 400
	for i := 0; i < ops; i++ {
		if !h.Enqueue(uint64(i)) {
			t.Fatal("enqueue failed")
		}
	}
	hits := 0
	for i := 0; i < ops; i++ {
		if _, ok := h.Dequeue(); !ok {
			t.Fatal("unexpected empty")
		}
		hits += len(h.LastDequeueTraces())
	}
	h.Release() // fold counters into retired totals
	if hits < ops/8-1 || hits > ops/8 {
		t.Fatalf("sampled hits = %d, want ~%d", hits, ops/8)
	}
	m := q.Metrics()
	if m.Stats.TraceHits != uint64(hits) || m.Stats.TraceArms != uint64(hits) {
		t.Fatalf("counters: arms=%d hits=%d, want %d", m.Stats.TraceArms, m.Stats.TraceHits, hits)
	}
	if m.Sojourn.Samples != uint64(hits) {
		t.Fatalf("Sojourn.Samples = %d, want %d", m.Sojourn.Samples, hits)
	}
}

func TestPooledTracedVariants(t *testing.T) {
	q := New(WithForcedTracingOnly())

	// Batch enqueue with a forced identity; the first value carries it.
	id := NewTraceID()
	if n, err := q.EnqueueBatchTraced([]uint64{1, 2, 3}, id); n != 3 || err != nil {
		t.Fatalf("EnqueueBatchTraced = %d, %v", n, err)
	}
	out := make([]uint64, 3)
	n, traces := q.DequeueBatchTraced(out)
	if n != 3 {
		t.Fatalf("DequeueBatchTraced = %d, want 3", n)
	}
	if len(traces) != 1 || traces[0].ID != id || traces[0].Pos != 0 {
		t.Fatalf("traces = %+v, want ID %#x at Pos 0", traces, id)
	}

	// Wait variants.
	id2 := NewTraceID()
	if err := q.EnqueueWaitTraced(nil, 42, id2); err != nil {
		t.Fatalf("EnqueueWaitTraced: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	v, traces, err := q.DequeueWaitTraced(ctx)
	if err != nil || v != 42 {
		t.Fatalf("DequeueWaitTraced = %d, %v", v, err)
	}
	if len(traces) != 1 || traces[0].ID != id2 {
		t.Fatalf("wait traces = %+v, want ID %#x", traces, id2)
	}
}

func TestTypedTracing(t *testing.T) {
	q := NewTyped[string](WithForcedTracingOnly())
	h := q.NewHandle()
	defer h.Release()

	id, ok := h.EnqueueTraced("hello")
	if !ok {
		t.Fatal("EnqueueTraced failed")
	}
	v, ok := h.Dequeue()
	if !ok || v != "hello" {
		t.Fatalf("Dequeue = %q, %v", v, ok)
	}
	traces := h.LastDequeueTraces()
	if len(traces) != 1 || traces[0].ID != id {
		t.Fatalf("typed traces = %+v, want ID %#x", traces, id)
	}
	if _, ok := q.FindTrace(id); !ok {
		t.Fatal("typed FindTrace missed the completed trace")
	}
	if rec := httptest.NewRecorder(); true {
		q.TraceHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/traces", nil))
		if rec.Code != 200 {
			t.Fatalf("typed TraceHandler status %d", rec.Code)
		}
	}
}

func TestTraceHandler(t *testing.T) {
	q := New(WithForcedTracingOnly())
	h := q.NewHandle()
	defer h.Release()

	h.ForceTrace(0xabc)
	h.Enqueue(7)
	h.Dequeue()

	rec := httptest.NewRecorder()
	q.TraceHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var resp struct {
		TraceSampleN int `json:"trace_sample_n"`
		Sojourn      struct {
			Samples uint64 `json:"samples"`
		} `json:"sojourn"`
		Traces []struct {
			ID        string `json:"id"`
			SojournNs int64  `json:"sojourn_ns"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if resp.TraceSampleN != -1 {
		t.Errorf("trace_sample_n = %d, want -1", resp.TraceSampleN)
	}
	if resp.Sojourn.Samples != 1 || len(resp.Traces) != 1 || resp.Traces[0].ID != "0xabc" {
		t.Fatalf("response = %+v", resp)
	}

	// Point lookup, hex and decimal; then a miss and a parse error.
	for _, idArg := range []string{"0xabc", "2748"} {
		rec = httptest.NewRecorder()
		q.TraceHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/traces?id="+idArg, nil))
		if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"0xabc"`) {
			t.Fatalf("lookup %s: status %d body %s", idArg, rec.Code, rec.Body.String())
		}
	}
	rec = httptest.NewRecorder()
	q.TraceHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/traces?id=999", nil))
	if rec.Code != 404 {
		t.Fatalf("missing trace: status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	q.TraceHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/traces?id=zebra", nil))
	if rec.Code != 400 {
		t.Fatalf("bad id: status %d", rec.Code)
	}
}

func TestPrometheusTraceSeries(t *testing.T) {
	q := New(WithTracing(2))
	h := q.NewHandle()
	for i := 0; i < 64; i++ {
		h.Enqueue(uint64(i))
		h.Dequeue()
	}
	h.Release()

	var sb strings.Builder
	WritePrometheus(&sb, q.Metrics())
	body := sb.String()
	for _, want := range []string{
		"lcrq_trace_sample_stride 2",
		"lcrq_trace_arms_total",
		"lcrq_trace_hits_total",
		`lcrq_sojourn_seconds{quantile="0.99"}`,
		"lcrq_sojourn_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("Prometheus export missing %q", want)
		}
	}
}

// TestTracingOffOverhead guards the "dead branch only" claim for queues
// built without tracing: telemetry-on operations on an untraced queue must
// not be measurably slower than before tracing existed (approximated by
// comparing against the same queue's raw core path, the identical structure
// used by TestTelemetryOffOverhead). Benchmark-based and thus noisy, so it
// runs only when LCRQ_TRACE_BENCH=1 (the telemetry CI job sets it).
func TestTracingOffOverhead(t *testing.T) {
	if os.Getenv("LCRQ_TRACE_BENCH") == "" {
		t.Skip("set LCRQ_TRACE_BENCH=1 to run the tracing overhead smoke check")
	}
	q := New(WithRingSize(1 << 12))
	h := q.NewHandle()
	defer h.Release()

	direct := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.q.Enqueue(h.h, uint64(i)|1<<62)
			q.q.Dequeue(h.h)
		}
	}
	wrapped := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.Enqueue(uint64(i) | 1<<62)
			h.Dequeue()
		}
	}
	d, w := bestNs(direct), bestNs(wrapped)
	t.Logf("direct %.1f ns/op, wrapped (tracing off) %.1f ns/op (%+.1f%%)", d, w, (w/d-1)*100)
	if w > d*1.25 {
		t.Fatalf("tracing-off wrapper overhead too high: direct %.1f ns/op vs wrapped %.1f ns/op", d, w)
	}
}

// TestTracingSampledOverhead pins the cost of 1-in-1024 item tracing against
// the same queue configuration with tracing off: the sampled stamp path
// (countdown decrement per enqueue, tag check per dequeue, a clock read
// 1-in-1024 ops) must stay within 2% — the budget ISSUE.md assigns the
// default stride. Env-gated like TestTracingOffOverhead.
func TestTracingSampledOverhead(t *testing.T) {
	if os.Getenv("LCRQ_TRACE_BENCH") == "" {
		t.Skip("set LCRQ_TRACE_BENCH=1 to run the tracing overhead smoke check")
	}
	loop := func(q *Queue) func(*testing.B) {
		h := q.NewHandle()
		t.Cleanup(h.Release)
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h.Enqueue(uint64(i) | 1<<62)
				h.Dequeue()
			}
		}
	}
	offLoop := loop(New(WithTelemetry(), WithRingSize(1<<12)))
	onLoop := loop(New(WithTracing(1024), WithRingSize(1<<12)))
	// Interleave the rounds: measuring all-off then all-on lets machine-state
	// drift between the two blocks alias into the ratio; alternating exposes
	// both configurations to the same conditions, and best-of filters the
	// scheduler noise within each.
	off, on := 1e18, 1e18
	for i := 0; i < 7; i++ {
		if v := float64(testing.Benchmark(offLoop).NsPerOp()); v < off {
			off = v
		}
		if v := float64(testing.Benchmark(onLoop).NsPerOp()); v < on {
			on = v
		}
	}
	t.Logf("tracing off %.1f ns/op, sampled 1-in-1024 %.1f ns/op (%+.1f%%)", off, on, (on/off-1)*100)
	if on > off*1.02 {
		t.Fatalf("sampled tracing overhead above 2%%: off %.1f ns/op vs on %.1f ns/op", off, on)
	}
}

// bestNs returns the fastest of seven benchmark runs — the best-of filter
// the overhead guards use to suppress scheduler noise.
func bestNs(f func(*testing.B)) float64 {
	ns := 1e18
	for i := 0; i < 7; i++ {
		r := testing.Benchmark(f)
		if v := float64(r.NsPerOp()); v < ns {
			ns = v
		}
	}
	return ns
}
