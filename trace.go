package lcrq

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"lcrq/internal/core"
)

// DefaultTraceSampleN is the sampling stride WithTracing uses when asked
// for a non-positive stride: 1 stamped item per 1024 enqueues, cheap enough
// to leave on in production (see the overhead guard in trace_test.go).
const DefaultTraceSampleN = core.DefaultTraceSampleN

// ItemTrace is one completed item trace observed by a dequeue: a value that
// was stamped on the enqueue side (by 1-in-N sampling or ForceTrace) and
// claimed by this handle's last dequeue operation.
type ItemTrace struct {
	// ID is the trace identity stamped at enqueue — generated for sampled
	// traces, caller-chosen for forced ones.
	ID uint64

	// EnqueuedAt is when the enqueue deposited the item.
	EnqueuedAt time.Time

	// Sojourn is the item's ring residency: the time between the enqueue
	// deposit and the dequeue claim.
	Sojourn time.Duration

	// Pos is the item's position within the claiming batch operation
	// (always 0 for single-value dequeues).
	Pos int
}

// TraceRecord is one entry of the queue's bounded recent-traces buffer: a
// completed item trace as retained by telemetry, readable after the
// dequeuing handle has moved on.
type TraceRecord struct {
	Seq        uint64        // global completion sequence number, 0-based
	ID         uint64        // trace identity stamped at enqueue
	EnqueuedAt time.Time     // when the item was deposited
	Sojourn    time.Duration // ring residency
}

// traceIDCtr feeds NewTraceID; the splitmix64 finisher turns the sequential
// counter into well-distributed, process-unique, nonzero identities.
var traceIDCtr atomic.Uint64

// NewTraceID returns a fresh process-unique trace identity, suitable for
// ForceTrace. Sampled traces generate their own IDs; use this when forcing a
// trace without an externally supplied identity (e.g. a server originating,
// rather than propagating, a trace).
func NewTraceID() uint64 {
	x := traceIDCtr.Add(1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// ForceTrace arms an item trace with the given identity on this handle's
// next enqueue: the first value it deposits is stamped with id and the
// current time, exactly as a sampled trace would be. The arm survives
// rejected attempts (full bounded queue) and fires on the eventual
// successful deposit; ClearTrace cancels it. On a queue built without
// tracing (no WithTracing / WithForcedTracingOnly) the arm is inert.
//
// This is the propagation primitive: a server forces the trace ID it
// received on the wire so one identity follows the item through the queue.
func (h *Handle) ForceTrace(id uint64) { h.h.ForceTrace(id) }

// ClearTrace cancels a pending armed trace (forced or sampled) without
// consuming it.
func (h *Handle) ClearTrace() { h.h.ClearTrace() }

// LastEnqueueTrace reports the trace stamped by this handle's most recent
// successful enqueue operation: its identity, and whether that operation
// deposited a stamp at all. Sampled arms make this true roughly 1-in-N
// operations; after ForceTrace it is true on the next accepted enqueue.
func (h *Handle) LastEnqueueTrace() (id uint64, ok bool) {
	return h.h.LastEnqueueTrace()
}

// EnqueueTraced appends v with a forced item trace and returns the trace
// identity it stamped (a fresh NewTraceID). ok is as for Enqueue; when ok is
// false the trace stays armed for the handle's next accepted enqueue (use
// ClearTrace to cancel). v must not equal Reserved.
func (h *Handle) EnqueueTraced(v uint64) (id uint64, ok bool) {
	id = NewTraceID()
	h.h.ForceTrace(id)
	return id, h.Enqueue(v)
}

// LastDequeueTraces returns the item traces observed by this handle's most
// recent dequeue operation — at most one for Dequeue/DequeueWait, up to the
// trace buffer bound for DequeueBatch. The result is a copy; it remains
// valid across later operations. Most dequeues of a traced queue return
// none (only 1-in-N items carry stamps).
func (h *Handle) LastDequeueTraces() []ItemTrace {
	hits := h.h.DequeueTraces()
	if len(hits) == 0 {
		return nil
	}
	out := make([]ItemTrace, len(hits))
	for i, t := range hits {
		out[i] = ItemTrace{
			ID:         t.ID,
			EnqueuedAt: time.Unix(0, t.EnqUnixNs),
			Sojourn:    time.Duration(t.SojournNs),
			Pos:        t.Pos,
		}
	}
	return out
}

// EnqueueBatchTraced appends the values of vs with an item trace of identity
// id forced onto the operation: the first accepted value carries the stamp
// (one trace per operation, as with sampling). Returns as EnqueueBatch; if
// no value was accepted the arm is cleared rather than left pending on the
// pooled handle.
func (q *Queue) EnqueueBatchTraced(vs []uint64, id uint64) (n int, err error) {
	h := q.pool.Get().(*Handle)
	h.h.ForceTrace(id)
	n, err = h.EnqueueBatch(vs)
	h.h.ClearTrace()
	q.pool.Put(h)
	return n, err
}

// EnqueueWaitTraced blocks until the queue accepts v (as EnqueueWait), with
// an item trace of identity id forced onto the eventual deposit. On error
// nothing was enqueued and no stamp was deposited.
func (q *Queue) EnqueueWaitTraced(ctx context.Context, v uint64, id uint64) error {
	h := q.pool.Get().(*Handle)
	h.h.ForceTrace(id)
	err := h.EnqueueWait(ctx, v)
	h.h.ClearTrace()
	q.pool.Put(h)
	return err
}

// DequeueBatchTraced removes up to len(out) values into out (as
// DequeueBatch) and additionally returns the item traces among them —
// stamped items the batch claimed, with Pos indexing into out. traces is
// nil when the batch contained no stamped items, which is the common case.
func (q *Queue) DequeueBatchTraced(out []uint64) (n int, traces []ItemTrace) {
	h := q.pool.Get().(*Handle)
	n = h.DequeueBatch(out)
	traces = h.LastDequeueTraces()
	q.pool.Put(h)
	return n, traces
}

// DequeueWaitTraced blocks until a value is available (as DequeueWait) and
// additionally returns the item's trace if it carried a stamp (len 0 or 1).
func (q *Queue) DequeueWaitTraced(ctx context.Context) (v uint64, traces []ItemTrace, err error) {
	h := q.pool.Get().(*Handle)
	v, err = h.DequeueWait(ctx)
	if err == nil {
		traces = h.LastDequeueTraces()
	}
	q.pool.Put(h)
	return v, traces, err
}

// RecentTraces returns the queue's bounded buffer of recently completed item
// traces, oldest first. Empty unless the queue was built with WithTracing /
// WithForcedTracingOnly. Reading is lock-free and best-effort: entries being
// overwritten concurrently are skipped.
func (q *Queue) RecentTraces() []TraceRecord {
	if q.tel == nil {
		return nil
	}
	recs := q.tel.Traces()
	out := make([]TraceRecord, len(recs))
	for i, r := range recs {
		out[i] = TraceRecord{Seq: r.Seq, ID: r.ID, EnqueuedAt: r.EnqueuedAt, Sojourn: r.Sojourn}
	}
	return out
}

// FindTrace returns the most recent completed trace carrying id, if it is
// still in the recent-traces buffer.
func (q *Queue) FindTrace(id uint64) (TraceRecord, bool) {
	if q.tel == nil {
		return TraceRecord{}, false
	}
	r, ok := q.tel.FindTrace(id)
	if !ok {
		return TraceRecord{}, false
	}
	return TraceRecord{Seq: r.Seq, ID: r.ID, EnqueuedAt: r.EnqueuedAt, Sojourn: r.Sojourn}, true
}

// traceJSON is the wire shape of one trace in the TraceHandler response.
type traceJSON struct {
	Seq        uint64 `json:"seq"`
	ID         string `json:"id"` // hex, as clients print trace IDs
	EnqueuedAt string `json:"enqueued_at"`
	SojournNs  int64  `json:"sojourn_ns"`
}

// sojournJSON summarizes the sojourn distribution in the TraceHandler
// response.
type sojournJSON struct {
	Samples uint64 `json:"samples"`
	MeanNs  int64  `json:"mean_ns"`
	P50Ns   int64  `json:"p50_ns"`
	P99Ns   int64  `json:"p99_ns"`
	P999Ns  int64  `json:"p999_ns"`
	MaxNs   int64  `json:"max_ns"`
}

// TraceHandler returns an http.Handler serving the queue's item-trace state
// as JSON: the sampling stride, the sojourn distribution summary, and the
// recent completed traces (oldest first). A request with ?id=<trace id>
// (decimal or 0x-hex) instead returns just that trace, with status 404 when
// it is not (or no longer) in the buffer — the lookup a client performs
// after reading a trace ID off a dequeue response.
//
//	http.Handle("/traces", q.TraceHandler())
func (q *Queue) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if idStr := r.URL.Query().Get("id"); idStr != "" {
			id, err := strconv.ParseUint(idStr, 0, 64)
			if err != nil {
				http.Error(w, `{"error":"bad trace id"}`, http.StatusBadRequest)
				return
			}
			tr, ok := q.FindTrace(id)
			if !ok {
				http.Error(w, `{"error":"trace not found"}`, http.StatusNotFound)
				return
			}
			_ = json.NewEncoder(w).Encode(traceToJSON(tr))
			return
		}
		m := q.Metrics()
		recs := q.RecentTraces()
		resp := struct {
			TraceSampleN int         `json:"trace_sample_n"`
			Sojourn      sojournJSON `json:"sojourn"`
			Traces       []traceJSON `json:"traces"`
		}{
			TraceSampleN: m.TraceSampleN,
			Sojourn: sojournJSON{
				Samples: m.Sojourn.Samples,
				MeanNs:  m.Sojourn.Mean.Nanoseconds(),
				P50Ns:   m.Sojourn.P50.Nanoseconds(),
				P99Ns:   m.Sojourn.P99.Nanoseconds(),
				P999Ns:  m.Sojourn.P999.Nanoseconds(),
				MaxNs:   m.Sojourn.Max.Nanoseconds(),
			},
			Traces: make([]traceJSON, len(recs)),
		}
		for i, tr := range recs {
			resp.Traces[i] = traceToJSON(tr)
		}
		_ = json.NewEncoder(w).Encode(resp)
	})
}

func traceToJSON(tr TraceRecord) traceJSON {
	return traceJSON{
		Seq:        tr.Seq,
		ID:         "0x" + strconv.FormatUint(tr.ID, 16),
		EnqueuedAt: tr.EnqueuedAt.UTC().Format(time.RFC3339Nano),
		SojournNs:  tr.Sojourn.Nanoseconds(),
	}
}
