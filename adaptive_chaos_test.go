//go:build chaos

package lcrq

import (
	"testing"
	"time"

	"lcrq/internal/chaos"
)

// TestAdaptiveDampsTantrumStorm is the remediation acceptance test: under a
// sustained tantrum storm, raising the contention boost must make the
// ring-churn rate fall — the widened starvation thresholds let enqueuers
// ride out failed attempts instead of closing ring after ring.
//
// The storm is synthesized with EnqCAS2Fail: at a 0.9 per-attempt failure
// rate an enqueuer's tries counter regularly reaches the (small) starvation
// limit organically, so tantrum frequency is a real function of the
// effective limit — exactly the dependency the boost exploits. Phase A pins
// the boost at zero (chaos adapt-decay forced), phase B pins it at the cap
// (chaos adapt-raise forced, so clean watchdog ticks cannot decay it while
// we measure), and the tantrum-close rate per operation must drop by well
// over half across the EvContentionAdapt transition.
func TestAdaptiveDampsTantrumStorm(t *testing.T) {
	chaos.Reset()
	defer chaos.Reset()

	q := New(
		WithTelemetry(),
		WithStarvationLimit(4),
		WithAdaptiveContention(),
		// A tiny spin ceiling keeps the un-boosted effective limit
		// (base + spins) small enough for the storm to establish itself.
		WithAdaptiveSpinBounds(2, 8, 1),
		WithWatchdog(2*time.Millisecond),
	)
	defer q.Close()
	h := q.NewHandle()
	defer h.Release()

	tantrums := func() uint64 { return q.Metrics().RingEvents["ring-tantrum"] }
	appends := func() uint64 { return q.Metrics().RingEvents["ring-append"] }
	const ops = 3000
	run := func() {
		for i := 0; i < ops; i++ {
			if !h.Enqueue(uint64(i) | 1<<32) {
				t.Fatal("enqueue failed on an unbounded queue")
			}
			if _, ok := h.Dequeue(); !ok {
				t.Fatal("dequeue found nothing after an enqueue")
			}
		}
	}

	// Phase A: storm with the boost pinned at zero.
	chaos.Set(chaos.EnqCAS2Fail, 0.9)
	chaos.Set(chaos.AdaptDecay, 1)
	t0, a0 := tantrums(), appends()
	run()
	stormTantrums, stormAppends := tantrums()-t0, appends()-a0
	if stormTantrums == 0 {
		t.Fatal("no tantrum closes in the un-boosted phase — storm never established")
	}

	// Phase B: force the raise remediation and hold the boost at its cap.
	chaos.Set(chaos.AdaptDecay, 0)
	chaos.Set(chaos.AdaptRaise, 1)
	deadline := time.Now().Add(10 * time.Second)
	for q.Metrics().Contention.Boost < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never raised the boost to cap; contention = %+v", q.Metrics().Contention)
		}
		time.Sleep(time.Millisecond)
	}
	adaptSeen := false
	for _, ev := range q.Events() {
		if ev.Kind == "contention-adapt" {
			adaptSeen = true
		}
	}
	if !adaptSeen {
		t.Fatal("boost raised but no contention-adapt event in the trace")
	}

	t0, a0 = tantrums(), appends()
	run()
	dampedTantrums, dampedAppends := tantrums()-t0, appends()-a0

	t.Logf("tantrum closes per %d ops: %d un-boosted → %d boosted; ring appends %d → %d",
		ops, stormTantrums, dampedTantrums, stormAppends, dampedAppends)
	if dampedTantrums*2 >= stormTantrums {
		t.Fatalf("boost did not damp the storm: %d tantrum closes before, %d after", stormTantrums, dampedTantrums)
	}
	// Every tantrum close forces a ring append, so churn must fall with it.
	if dampedAppends >= stormAppends {
		t.Fatalf("ring-alloc rate did not fall: %d appends before, %d after", stormAppends, dampedAppends)
	}
	if m := q.Metrics(); m.Contention.Raises < 3 {
		t.Fatalf("boost at cap but raises under-counted: %+v", m.Contention)
	}
}
