package lcrq

import "lcrq/internal/instrument"

// Stats is a snapshot of per-handle operation statistics, mirroring the
// quantities reported in Tables 2 and 3 of the paper. Every counter of the
// internal instrumentation layer is represented, so a public snapshot
// carries the same information the bench harness aggregates (the
// statsmirror analyzer enforces the field coverage at lint time, and
// TestStatsCoversAllCounters keeps a runtime backstop).
type Stats struct {
	Enqueues uint64 // completed enqueue operations
	Dequeues uint64 // completed dequeue operations (including empty results)
	Empty    uint64 // dequeues that found the queue empty

	FetchAdds    uint64  // fetch-and-add instructions issued
	Swaps        uint64  // swap (XCHG) instructions issued
	TestAndSets  uint64  // test-and-set instructions issued (ring closes use one)
	CASAttempts  uint64  // single-width CAS attempts
	CASFailures  uint64  // single-width CAS attempts that failed
	CAS2Attempts uint64  // double-width CAS attempts
	CAS2Failures uint64  // double-width CAS attempts that failed
	AtomicsPerOp float64 // average atomic instructions per operation

	CellRetries       uint64 // extra head/tail F&As needed beyond the first
	EmptyTransitions  uint64 // empty transitions performed
	UnsafeTransitions uint64 // unsafe transitions performed
	SpinWaits         uint64 // bounded waits for a matching enqueuer
	ThresholdEmpties  uint64 // SCQ: emptiness verdicts reached via the threshold trick
	FreeEmpties       uint64 // SCQ: enqueues that found the free-index queue empty (ring full)

	RingCloses   uint64 // ring segments this handle closed
	RingAppends  uint64 // ring segments this handle appended
	RingRecycles uint64 // appended segments satisfied from the recycler

	BatchEnqueues uint64 // EnqueueBatch calls (items accepted count in Enqueues)
	BatchDequeues uint64 // DequeueBatch calls (items returned count in Dequeues)
	BatchSpills   uint64 // batches that spilled into a freshly appended ring
	GateSpins     uint64 // hierarchical cluster-gate spin iterations

	AdaptiveRaises uint64 // adaptive contention: MIAD backoff raises (failed cell attempts)
	AdaptiveDecays uint64 // adaptive contention: backoff decays (completed operations)
	AdaptiveSpins  uint64 // adaptive contention: total backoff pause iterations burned

	TraceArms uint64 // item-trace stamps armed on the enqueue side (sampled + forced)
	TraceHits uint64 // stamped items this handle's dequeues claimed

	CombinerRuns     uint64 // combining queues: times this thread combined
	Combined         uint64 // combining queues: operations applied while combining
	LockAcquisitions uint64 // lock acquisitions (blocking queues)
}

// statsFromCounters transcribes every internal counter into the public
// snapshot; the annotation makes lcrqlint's statsmirror analyzer fail the
// build-gate if a Counters field is added without being plumbed through.
//
//lcrq:mirror lcrq/internal/instrument.Counters
func statsFromCounters(c *instrument.Counters) Stats {
	return Stats{
		Enqueues:          c.Enqueues,
		Dequeues:          c.Dequeues,
		Empty:             c.Empty,
		FetchAdds:         c.FAA,
		Swaps:             c.SWAP,
		TestAndSets:       c.TAS,
		CASAttempts:       c.CAS,
		CASFailures:       c.CASFail,
		CAS2Attempts:      c.CAS2,
		CAS2Failures:      c.CAS2Fail,
		AtomicsPerOp:      c.AtomicsPerOp(),
		CellRetries:       c.CellRetries,
		EmptyTransitions:  c.EmptyTrans,
		UnsafeTransitions: c.UnsafeTrans,
		SpinWaits:         c.SpinWaits,
		ThresholdEmpties:  c.ThresholdEmpty,
		FreeEmpties:       c.FreeEmpty,
		RingCloses:        c.Closes,
		RingAppends:       c.Appends,
		RingRecycles:      c.Recycled,
		BatchEnqueues:     c.BatchEnqueues,
		BatchDequeues:     c.BatchDequeues,
		BatchSpills:       c.BatchSpill,
		GateSpins:         c.GateSpins,
		AdaptiveRaises:    c.AdaptRaises,
		AdaptiveDecays:    c.AdaptDecays,
		AdaptiveSpins:     c.AdaptSpins,
		TraceArms:         c.TraceArms,
		TraceHits:         c.TraceHits,
		CombinerRuns:      c.CombinerRuns,
		Combined:          c.Combined,
		LockAcquisitions:  c.LockAcq,
	}
}

// Add returns the field-wise sum of s and o (AtomicsPerOp is recomputed as
// a weighted average). The mirror annotation makes the statsmirror
// analyzer verify no Stats field is dropped from the sum.
//
//lcrq:mirror Stats
func (s Stats) Add(o Stats) Stats {
	ops := s.Enqueues + s.Dequeues + o.Enqueues + o.Dequeues
	var apo float64
	if ops > 0 {
		apo = (s.AtomicsPerOp*float64(s.Enqueues+s.Dequeues) +
			o.AtomicsPerOp*float64(o.Enqueues+o.Dequeues)) / float64(ops)
	}
	return Stats{
		Enqueues:          s.Enqueues + o.Enqueues,
		Dequeues:          s.Dequeues + o.Dequeues,
		Empty:             s.Empty + o.Empty,
		FetchAdds:         s.FetchAdds + o.FetchAdds,
		Swaps:             s.Swaps + o.Swaps,
		TestAndSets:       s.TestAndSets + o.TestAndSets,
		CASAttempts:       s.CASAttempts + o.CASAttempts,
		CASFailures:       s.CASFailures + o.CASFailures,
		CAS2Attempts:      s.CAS2Attempts + o.CAS2Attempts,
		CAS2Failures:      s.CAS2Failures + o.CAS2Failures,
		AtomicsPerOp:      apo,
		CellRetries:       s.CellRetries + o.CellRetries,
		EmptyTransitions:  s.EmptyTransitions + o.EmptyTransitions,
		UnsafeTransitions: s.UnsafeTransitions + o.UnsafeTransitions,
		SpinWaits:         s.SpinWaits + o.SpinWaits,
		ThresholdEmpties:  s.ThresholdEmpties + o.ThresholdEmpties,
		FreeEmpties:       s.FreeEmpties + o.FreeEmpties,
		RingCloses:        s.RingCloses + o.RingCloses,
		RingAppends:       s.RingAppends + o.RingAppends,
		RingRecycles:      s.RingRecycles + o.RingRecycles,
		BatchEnqueues:     s.BatchEnqueues + o.BatchEnqueues,
		BatchDequeues:     s.BatchDequeues + o.BatchDequeues,
		BatchSpills:       s.BatchSpills + o.BatchSpills,
		GateSpins:         s.GateSpins + o.GateSpins,
		AdaptiveRaises:    s.AdaptiveRaises + o.AdaptiveRaises,
		AdaptiveDecays:    s.AdaptiveDecays + o.AdaptiveDecays,
		AdaptiveSpins:     s.AdaptiveSpins + o.AdaptiveSpins,
		TraceArms:         s.TraceArms + o.TraceArms,
		TraceHits:         s.TraceHits + o.TraceHits,
		CombinerRuns:      s.CombinerRuns + o.CombinerRuns,
		Combined:          s.Combined + o.Combined,
		LockAcquisitions:  s.LockAcquisitions + o.LockAcquisitions,
	}
}
