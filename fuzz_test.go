package lcrq

// Native Go fuzz targets. The seed corpus below runs as part of the normal
// test suite; `go test -fuzz=FuzzQueueModel .` explores further.

import (
	"testing"
)

// FuzzQueueModel interprets the fuzz input as an op tape — even bytes
// enqueue, odd bytes dequeue — and cross-checks the queue against a slice
// model. The low bits of each byte choose the queue geometry, so the fuzzer
// also explores tiny rings, CAS-loop mode, and disabled spin waits.
func FuzzQueueModel(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 1, 1}, uint8(0))
	f.Add([]byte{2, 2, 2, 3, 3, 3, 2, 3}, uint8(1))
	f.Add([]byte{1, 1, 1, 0, 0, 0}, uint8(2))
	f.Add([]byte{0, 2, 4, 6, 1, 3, 5, 7, 9, 11}, uint8(3))
	f.Fuzz(func(t *testing.T, ops []byte, geom uint8) {
		opts := []Option{WithRingSize(2 << (geom % 4))}
		if geom&4 != 0 {
			opts = append(opts, WithCASLoopFAA())
		}
		if geom&8 != 0 {
			opts = append(opts, WithSpinWait(-1))
		}
		if geom&16 != 0 {
			opts = append(opts, WithoutRecycling())
		}
		q := New(opts...)
		h := q.NewHandle()
		defer h.Release()
		var model []uint64
		next := uint64(1)
		for _, op := range ops {
			if op%2 == 0 {
				h.Enqueue(next)
				model = append(model, next)
				next++
			} else {
				v, ok := h.Dequeue()
				switch {
				case len(model) == 0 && ok:
					t.Fatalf("dequeue from empty returned %d", v)
				case len(model) > 0 && (!ok || v != model[0]):
					t.Fatalf("dequeue = (%d,%v), want (%d,true)", v, ok, model[0])
				case len(model) > 0:
					model = model[1:]
				}
			}
		}
		// Drain and verify the remainder.
		for _, want := range model {
			v, ok := h.Dequeue()
			if !ok || v != want {
				t.Fatalf("drain = (%d,%v), want (%d,true)", v, ok, want)
			}
		}
		if v, ok := h.Dequeue(); ok {
			t.Fatalf("extra value %d after drain", v)
		}
	})
}

// FuzzTypedModel drives the typed facade with string payloads against a
// model, exercising the slot arena and free list.
func FuzzTypedModel(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1}, "seed")
	f.Add([]byte{0, 1, 0, 1, 0, 1}, "")
	f.Fuzz(func(t *testing.T, ops []byte, payload string) {
		q := NewTyped[string](WithRingSize(4))
		h := q.NewHandle()
		defer h.Release()
		var model []string
		n := 0
		for _, op := range ops {
			if op%2 == 0 {
				s := payload + string(rune('a'+n%26))
				h.Enqueue(s)
				model = append(model, s)
				n++
			} else {
				v, ok := h.Dequeue()
				switch {
				case len(model) == 0 && ok:
					t.Fatalf("dequeue from empty returned %q", v)
				case len(model) > 0 && (!ok || v != model[0]):
					t.Fatalf("dequeue = (%q,%v), want %q", v, ok, model[0])
				case len(model) > 0:
					model = model[1:]
				}
			}
		}
	})
}

// FuzzPacked32Model drives the portable packed queue against a model.
func FuzzPacked32Model(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 1, 1}, uint8(2))
	f.Add([]byte{1, 0, 1, 0}, uint8(5))
	f.Fuzz(func(t *testing.T, ops []byte, order uint8) {
		q := NewPacked32(int(order%8) + 1)
		h := q.NewHandle()
		defer h.Release()
		var model []uint32
		next := uint32(1)
		for _, op := range ops {
			if op%2 == 0 {
				h.Enqueue(next)
				model = append(model, next)
				next++
			} else {
				v, ok := h.Dequeue()
				switch {
				case len(model) == 0 && ok:
					t.Fatalf("dequeue from empty returned %d", v)
				case len(model) > 0 && (!ok || v != model[0]):
					t.Fatalf("dequeue = (%d,%v), want %d", v, ok, model[0])
				case len(model) > 0:
					model = model[1:]
				}
			}
		}
	})
}
