package lcrq

// Native Go fuzz targets. The seed corpus below runs as part of the normal
// test suite; `go test -fuzz=FuzzQueueModel .` explores further.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// FuzzQueueModel interprets the fuzz input as an op tape — even bytes
// enqueue, odd bytes dequeue — and cross-checks the queue against a slice
// model. The low bits of each byte choose the queue geometry, so the fuzzer
// also explores tiny rings, CAS-loop mode, and disabled spin waits.
func FuzzQueueModel(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 1, 1}, uint8(0))
	f.Add([]byte{2, 2, 2, 3, 3, 3, 2, 3}, uint8(1))
	f.Add([]byte{1, 1, 1, 0, 0, 0}, uint8(2))
	f.Add([]byte{0, 2, 4, 6, 1, 3, 5, 7, 9, 11}, uint8(3))
	f.Fuzz(func(t *testing.T, ops []byte, geom uint8) {
		opts := []Option{WithRingSize(2 << (geom % 4))}
		if geom&4 != 0 {
			opts = append(opts, WithCASLoopFAA())
		}
		if geom&8 != 0 {
			opts = append(opts, WithSpinWait(-1))
		}
		if geom&16 != 0 {
			opts = append(opts, WithoutRecycling())
		}
		q := New(opts...)
		h := q.NewHandle()
		defer h.Release()
		var model []uint64
		next := uint64(1)
		for _, op := range ops {
			if op%2 == 0 {
				h.Enqueue(next)
				model = append(model, next)
				next++
			} else {
				v, ok := h.Dequeue()
				switch {
				case len(model) == 0 && ok:
					t.Fatalf("dequeue from empty returned %d", v)
				case len(model) > 0 && (!ok || v != model[0]):
					t.Fatalf("dequeue = (%d,%v), want (%d,true)", v, ok, model[0])
				case len(model) > 0:
					model = model[1:]
				}
			}
		}
		// Drain and verify the remainder.
		for _, want := range model {
			v, ok := h.Dequeue()
			if !ok || v != want {
				t.Fatalf("drain = (%d,%v), want (%d,true)", v, ok, want)
			}
		}
		if v, ok := h.Dequeue(); ok {
			t.Fatalf("extra value %d after drain", v)
		}
	})
}

// FuzzCloseDrain interleaves Close with concurrent producers and a
// concurrent DequeueWait consumer, then checks conservation: every accepted
// enqueue is consumed exactly once, in per-producer FIFO order, and no
// enqueue is accepted after the close has drained. The fuzzer varies the
// producer count, ring geometry, and how much traffic precedes the close.
func FuzzCloseDrain(f *testing.F) {
	f.Add(uint8(2), uint8(0), uint16(40))
	f.Add(uint8(4), uint8(3), uint16(0))
	f.Add(uint8(1), uint8(9), uint16(300))
	f.Fuzz(func(t *testing.T, prod, geom uint8, closeAfter uint16) {
		const perProd = 256
		nprod := int(prod%4) + 1
		target := uint64(closeAfter) % (uint64(nprod)*perProd + 1)
		opts := []Option{WithRingSize(2 << (geom % 4))}
		if geom&16 != 0 {
			opts = append(opts, WithEpochReclamation())
		}
		if geom&32 != 0 {
			opts = append(opts, WithStarvationLimit(2))
		}
		q := New(opts...)

		accepted := make([]uint64, nprod)
		var total atomic.Uint64
		var wg sync.WaitGroup
		start := make(chan struct{})
		for p := 0; p < nprod; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				h := q.NewHandle()
				defer h.Release()
				<-start
				for i := 0; i < perProd; i++ {
					if !h.Enqueue(uint64(p)<<32 | uint64(i) + 1) {
						return // closed
					}
					accepted[p]++
					total.Add(1)
				}
			}(p)
		}

		// Concurrent consumer: DequeueWait until ErrClosed. Its log is the
		// FIFO prefix; the post-join drain is the suffix.
		consumed := make([][]uint64, nprod)
		consumerDone := make(chan error, 1)
		ch := q.NewHandle()
		go func() {
			for {
				v, err := ch.DequeueWait(context.Background())
				if err != nil {
					consumerDone <- err
					return
				}
				p := int(v >> 32)
				consumed[p] = append(consumed[p], v&0xffffffff)
			}
		}()

		close(start)
		// Close once enough traffic has been accepted (or immediately when
		// target is 0). Producers are bounded, so waiting on min(target,
		// all-accepted) terminates either way.
		for total.Load() < target && total.Load() < uint64(nprod)*perProd {
			runtime.Gosched()
		}
		q.Close()
		if err := <-consumerDone; !errors.Is(err, ErrClosed) {
			t.Fatalf("consumer finished with %v, want ErrClosed", err)
		}
		ch.Release()
		wg.Wait()

		// Post-join drain catches items from enqueues that were concurrent
		// with Close and landed after the consumer saw closed+empty.
		q.Drain(func(v uint64) {
			p := int(v >> 32)
			consumed[p] = append(consumed[p], v&0xffffffff)
		})
		if q.Enqueue(1) {
			t.Fatal("enqueue accepted after close and drain")
		}
		for p := 0; p < nprod; p++ {
			if uint64(len(consumed[p])) != accepted[p] {
				t.Fatalf("producer %d: accepted %d, consumed %d", p, accepted[p], len(consumed[p]))
			}
			for i, v := range consumed[p] {
				if v != uint64(i)+1 {
					t.Fatalf("producer %d: consumed[%d] = %d, want %d (loss, duplication, or reorder)",
						p, i, v, i+1)
				}
			}
		}
	})
}

// FuzzBoundedCapacity drives a capacity-bounded queue against a model and
// checks the backpressure contract: the number of items in flight never
// exceeds the bound (the exact Items account agrees with the model at every
// step), a full queue rejects with ErrFull exactly, and FIFO order survives
// arbitrary reject/retry interleavings. The fuzzer varies the op tape, the
// capacity, and the ring geometry — including rings far smaller than the
// capacity, which exercises the derived ring budget.
func FuzzBoundedCapacity(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 1, 0, 1, 1}, uint8(2), uint8(0))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint8(1), uint8(1))
	f.Add([]byte{0, 1, 0, 1, 0, 1, 0, 0, 0, 1}, uint8(7), uint8(2))
	f.Add([]byte{0, 0, 1, 1, 0, 0, 1, 1}, uint8(3), uint8(9))
	f.Fuzz(func(t *testing.T, ops []byte, capSel, geom uint8) {
		capacity := int64(capSel%16) + 1
		opts := []Option{
			WithRingSize(2 << (geom % 4)),
			WithCapacity(capacity),
		}
		if geom&16 != 0 {
			opts = append(opts, WithEpochReclamation())
		}
		q := New(opts...)
		h := q.NewHandle()
		defer h.Release()
		var model []uint64
		next := uint64(1)
		for _, op := range ops {
			if op%2 == 0 {
				err := h.TryEnqueue(next)
				switch {
				case err == nil:
					model = append(model, next)
					next++
					if int64(len(model)) > capacity {
						t.Fatalf("queue accepted %d items past capacity %d", len(model), capacity)
					}
				case errors.Is(err, ErrFull):
					if int64(len(model)) < capacity {
						// The ring budget may bind before the item budget
						// only when rings are small; with the derived
						// budget (one spare ring) a single-threaded tape
						// must always fit capacity items.
						t.Fatalf("rejected with %d/%d items in flight", len(model), capacity)
					}
				default:
					t.Fatalf("TryEnqueue = %v", err)
				}
			} else {
				v, ok := h.Dequeue()
				switch {
				case len(model) == 0 && ok:
					t.Fatalf("dequeue from empty returned %d", v)
				case len(model) > 0 && (!ok || v != model[0]):
					t.Fatalf("dequeue = (%d,%v), want (%d,true)", v, ok, model[0])
				case len(model) > 0:
					model = model[1:]
				}
			}
			if got := q.Metrics().Items; got != int64(len(model)) {
				t.Fatalf("Items = %d, model holds %d", got, len(model))
			}
		}
		// A full queue must become writable again after one dequeue…
		for int64(len(model)) < capacity {
			if err := h.TryEnqueue(next); err != nil {
				t.Fatalf("refill: %v", err)
			}
			model = append(model, next)
			next++
		}
		if err := h.TryEnqueue(next); !errors.Is(err, ErrFull) {
			t.Fatalf("enqueue at capacity = %v, want ErrFull", err)
		}
		if v, ok := h.Dequeue(); !ok || v != model[0] {
			t.Fatalf("dequeue = (%d,%v), want (%d,true)", v, ok, model[0])
		}
		model = model[1:]
		if err := h.TryEnqueue(next); err != nil {
			t.Fatalf("enqueue after freeing a slot = %v", err)
		}
		model = append(model, next)
		// …and drain in FIFO order.
		for _, want := range model {
			v, ok := h.Dequeue()
			if !ok || v != want {
				t.Fatalf("drain = (%d,%v), want (%d,true)", v, ok, want)
			}
		}
		if v, ok := h.Dequeue(); ok {
			t.Fatalf("extra value %d after drain", v)
		}
	})
}

// FuzzTypedModel drives the typed facade with string payloads against a
// model, exercising the slot arena and free list.
func FuzzTypedModel(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1}, "seed")
	f.Add([]byte{0, 1, 0, 1, 0, 1}, "")
	f.Fuzz(func(t *testing.T, ops []byte, payload string) {
		q := NewTyped[string](WithRingSize(4))
		h := q.NewHandle()
		defer h.Release()
		var model []string
		n := 0
		for _, op := range ops {
			if op%2 == 0 {
				s := payload + string(rune('a'+n%26))
				h.Enqueue(s)
				model = append(model, s)
				n++
			} else {
				v, ok := h.Dequeue()
				switch {
				case len(model) == 0 && ok:
					t.Fatalf("dequeue from empty returned %q", v)
				case len(model) > 0 && (!ok || v != model[0]):
					t.Fatalf("dequeue = (%q,%v), want %q", v, ok, model[0])
				case len(model) > 0:
					model = model[1:]
				}
			}
		}
	})
}

// FuzzPacked32Model drives the portable packed queue against a model.
func FuzzPacked32Model(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 1, 1}, uint8(2))
	f.Add([]byte{1, 0, 1, 0}, uint8(5))
	f.Fuzz(func(t *testing.T, ops []byte, order uint8) {
		q := NewPacked32(int(order%8) + 1)
		h := q.NewHandle()
		defer h.Release()
		var model []uint32
		next := uint32(1)
		for _, op := range ops {
			if op%2 == 0 {
				h.Enqueue(next)
				model = append(model, next)
				next++
			} else {
				v, ok := h.Dequeue()
				switch {
				case len(model) == 0 && ok:
					t.Fatalf("dequeue from empty returned %d", v)
				case len(model) > 0 && (!ok || v != model[0]):
					t.Fatalf("dequeue = (%d,%v), want %d", v, ok, model[0])
				case len(model) > 0:
					model = model[1:]
				}
			}
		}
	})
}
