package lcrq

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
)

// Typed is an unbounded nonblocking MPMC FIFO queue of arbitrary Go values,
// built on the raw uint64 Queue. Values are parked in a growable slot arena
// that the garbage collector scans normally (so queueing pointers is safe),
// and the raw queue carries slot indices. A second raw queue serves as the
// lock-free free list, so the steady-state data path allocates nothing.
//
// The memory ordering of slot writes is anchored by the queue's atomic
// operations: a slot is written strictly before its index is published via
// Enqueue and read strictly after the index is received from Dequeue.
type Typed[T any] struct {
	main *Queue // carries slot indices in FIFO order
	free *Queue // recycled slot indices
	mu   sync.Mutex
	arr  atomic.Pointer[[]*chunk[T]]
	pool sync.Pool // spare *TypedHandle[T]
}

const (
	chunkBits = 10
	chunkSize = 1 << chunkBits
)

type chunk[T any] struct {
	slots [chunkSize]T
}

// NewTyped returns an empty typed queue. Options configure the underlying
// index queue (the free list uses the same ring geometry, but is always
// unbounded and unwatched: it holds exactly the arena's recycled slot
// indices, so a capacity bound there would lose slots, not apply
// backpressure — WithCapacity and friends govern the main queue only).
func NewTyped[T any](opts ...Option) *Typed[T] {
	freeOpts := append(append([]Option{}, opts...), withUnbounded())
	t := &Typed[T]{main: New(opts...), free: New(freeOpts...)}
	empty := []*chunk[T]{}
	t.arr.Store(&empty)
	t.pool.New = func() any {
		h := t.NewHandle()
		// See Queue's pool: dropped pooled handles must not leak their
		// reclamation records.
		runtime.SetFinalizer(h, (*TypedHandle[T]).Release)
		return h
	}
	return t
}

// TypedHandle is the per-goroutine context for a Typed queue. It must not
// be used concurrently.
type TypedHandle[T any] struct {
	t    *Typed[T]
	main *Handle
	free *Handle
	idx  []uint64 // scratch index block for the batch operations
}

// NewHandle returns a handle bound to t. Release it when the goroutine is
// done with the queue.
func (t *Typed[T]) NewHandle() *TypedHandle[T] {
	return &TypedHandle[T]{t: t, main: t.main.NewHandle(), free: t.free.NewHandle()}
}

// Release returns the handle's resources.
func (h *TypedHandle[T]) Release() {
	h.main.Release()
	h.free.Release()
}

func (t *Typed[T]) slot(idx uint64) *T {
	chunks := *t.arr.Load()
	return &chunks[idx>>chunkBits].slots[idx&(chunkSize-1)]
}

// grow appends one chunk to the arena, feeds all but one of its slot
// indices to the free list, and returns the remaining index.
func (t *Typed[T]) grow(h *TypedHandle[T]) uint64 {
	t.mu.Lock()
	old := *t.arr.Load()
	next := make([]*chunk[T], len(old)+1)
	copy(next, old)
	next[len(old)] = &chunk[T]{}
	t.arr.Store(&next)
	base := uint64(len(old)) << chunkBits
	t.mu.Unlock()
	for i := uint64(1); i < chunkSize; i++ {
		h.free.Enqueue(base + i)
	}
	return base
}

// Enqueue appends v to the queue and reports whether it was accepted: false
// after Close, or when a bounded queue has no budget (TryEnqueue
// distinguishes the two, EnqueueWait blocks for budget).
func (h *TypedHandle[T]) Enqueue(v T) (ok bool) {
	return h.TryEnqueue(v) == nil
}

// TryEnqueue appends v to the queue, reporting exactly why when it cannot:
// ErrClosed after Close, ErrFull when a bounded queue has no budget left.
// It never blocks.
func (h *TypedHandle[T]) TryEnqueue(v T) error {
	idx := h.takeSlot()
	*h.t.slot(idx) = v
	if err := h.main.TryEnqueue(idx); err != nil {
		h.putSlot(idx)
		return err
	}
	return nil
}

// EnqueueWait blocks until a bounded queue accepts v; it fails with
// ErrClosed once the queue is closed, or with ctx.Err() when ctx is done
// first. See Handle.EnqueueWait for the waiting strategy.
func (h *TypedHandle[T]) EnqueueWait(ctx context.Context, v T) error {
	idx := h.takeSlot()
	*h.t.slot(idx) = v
	if err := h.main.EnqueueWait(ctx, idx); err != nil {
		h.putSlot(idx)
		return err
	}
	return nil
}

// takeSlot acquires an arena slot index, growing the arena when the free
// list is dry.
func (h *TypedHandle[T]) takeSlot() uint64 {
	idx, ok := h.free.Dequeue()
	if !ok {
		idx = h.t.grow(h)
	}
	return idx
}

// putSlot clears a slot whose index never reached the main queue (the
// enqueue was rejected) and recycles the index. The free list is a private,
// never-closed, unbounded queue, so recycling works after Close and under
// capacity pressure alike.
func (h *TypedHandle[T]) putSlot(idx uint64) {
	var zero T
	*h.t.slot(idx) = zero
	h.free.Enqueue(idx)
}

// scratch returns the handle's reusable index block, sized to k. The handle
// is single-goroutine and the batch operations do not nest, so one buffer
// serves both directions without allocation in the steady state.
func (h *TypedHandle[T]) scratch(k int) []uint64 {
	if cap(h.idx) < k {
		h.idx = make([]uint64, k)
	}
	return h.idx[:k]
}

// EnqueueBatch appends the values of vs in order using the underlying index
// queue's batched enqueue (one fetch-and-add per block of items instead of
// one per item) and returns how many values were accepted, with the same
// error contract as Handle.EnqueueBatch: nil when all of vs landed,
// ErrClosed / ErrFull with n < len(vs) otherwise. Slots backing the
// rejected tail are recycled, so a partial batch leaks nothing.
func (h *TypedHandle[T]) EnqueueBatch(vs []T) (n int, err error) {
	k := len(vs)
	idx := h.scratch(k)
	// Acquire the whole slot block up front, batch-draining the free list
	// and growing the arena (which refills the free list) when it runs dry.
	m := h.free.DequeueBatch(idx)
	for m < k {
		idx[m] = h.t.grow(h)
		m++
		m += h.free.DequeueBatch(idx[m:])
	}
	for i, v := range vs {
		*h.t.slot(idx[i]) = v
	}
	n, err = h.main.EnqueueBatch(idx)
	if n < k {
		var zero T
		for _, ix := range idx[n:] {
			*h.t.slot(ix) = zero
		}
		// The free list is private, unbounded, and never closed, so the
		// batch recycle always accepts the whole tail.
		h.free.EnqueueBatch(idx[n:])
	}
	return n, err
}

// DequeueBatch removes up to len(out) of the oldest values into out using
// the underlying index queue's batched dequeue and returns how many values
// it wrote; 0 means the queue was observed empty.
func (h *TypedHandle[T]) DequeueBatch(out []T) int {
	idx := h.scratch(len(out))
	n := h.main.DequeueBatch(idx)
	var zero T
	for i := 0; i < n; i++ {
		p := h.t.slot(idx[i])
		out[i] = *p
		*p = zero // release references held by the slot
	}
	if n > 0 {
		h.free.EnqueueBatch(idx[:n])
	}
	return n
}

// Dequeue removes and returns the oldest value; ok is false if the queue
// was observed empty.
func (h *TypedHandle[T]) Dequeue() (v T, ok bool) {
	idx, ok := h.main.Dequeue()
	if !ok {
		var zero T
		return zero, false
	}
	p := h.t.slot(idx)
	v = *p
	var zero T
	*p = zero // release references held by the slot
	h.free.Enqueue(idx)
	return v, true
}

// DequeueWait blocks until a value is available; it fails with ErrClosed
// once the queue is closed and drained, or with ctx.Err() when ctx is done
// first. See Handle.DequeueWait for the waiting strategy.
func (h *TypedHandle[T]) DequeueWait(ctx context.Context) (v T, err error) {
	idx, err := h.main.DequeueWait(ctx)
	if err != nil {
		var zero T
		return zero, err
	}
	p := h.t.slot(idx)
	v = *p
	var zero T
	*p = zero
	h.free.Enqueue(idx)
	return v, nil
}

// Metrics returns a live telemetry snapshot of the underlying index queue,
// which carries every queued value; see Queue.Metrics. The private free-list
// queue is not included. Requires the queue to be built with WithTelemetry
// for counter and latency series.
func (t *Typed[T]) Metrics() Metrics { return t.main.Metrics() }

// Events returns the ring-lifecycle trace of the underlying index queue;
// see Queue.Events.
func (t *Typed[T]) Events() []Event { return t.main.Events() }

// MetricsHandler serves the underlying index queue's telemetry in
// Prometheus text format; see Queue.MetricsHandler.
func (t *Typed[T]) MetricsHandler() http.Handler { return t.main.MetricsHandler() }

// PublishExpvar publishes the underlying index queue's Metrics under name;
// see Queue.PublishExpvar.
func (t *Typed[T]) PublishExpvar(name string) { t.main.PublishExpvar(name) }

// Close permanently closes the queue to new enqueues; dequeues drain the
// remaining items. Idempotent and safe for concurrent use.
func (t *Typed[T]) Close() { t.main.Close() }

// Closed reports whether Close has been called.
func (t *Typed[T]) Closed() bool { return t.main.Closed() }

// Enqueue appends v using a pooled handle and reports whether it was
// accepted; see Queue.Enqueue for the performance caveat.
func (t *Typed[T]) Enqueue(v T) (ok bool) {
	h := t.pool.Get().(*TypedHandle[T])
	ok = h.Enqueue(v)
	t.pool.Put(h)
	return ok
}

// TryEnqueue appends v using a pooled handle, reporting ErrClosed or
// ErrFull when it cannot; see TypedHandle.TryEnqueue.
func (t *Typed[T]) TryEnqueue(v T) error {
	h := t.pool.Get().(*TypedHandle[T])
	err := h.TryEnqueue(v)
	t.pool.Put(h)
	return err
}

// EnqueueWait blocks until a bounded queue accepts v, using a pooled
// handle; see TypedHandle.EnqueueWait.
func (t *Typed[T]) EnqueueWait(ctx context.Context, v T) error {
	h := t.pool.Get().(*TypedHandle[T])
	err := h.EnqueueWait(ctx, v)
	t.pool.Put(h)
	return err
}

// Dequeue removes and returns the oldest value using a pooled handle.
func (t *Typed[T]) Dequeue() (v T, ok bool) {
	h := t.pool.Get().(*TypedHandle[T])
	v, ok = h.Dequeue()
	t.pool.Put(h)
	return v, ok
}

// EnqueueBatch appends the values of vs using a pooled handle; see
// TypedHandle.EnqueueBatch.
func (t *Typed[T]) EnqueueBatch(vs []T) (n int, err error) {
	h := t.pool.Get().(*TypedHandle[T])
	n, err = h.EnqueueBatch(vs)
	t.pool.Put(h)
	return n, err
}

// DequeueBatch removes up to len(out) values into out using a pooled
// handle; see TypedHandle.DequeueBatch.
func (t *Typed[T]) DequeueBatch(out []T) int {
	h := t.pool.Get().(*TypedHandle[T])
	n := h.DequeueBatch(out)
	t.pool.Put(h)
	return n
}

// Health returns the watchdog verdict of the underlying index queue; see
// Queue.Health.
func (t *Typed[T]) Health() Health { return t.main.Health() }

// ForceTrace arms an item trace with the given identity on this handle's
// next enqueue; see Handle.ForceTrace. The trace follows the value's slot
// index through the underlying queue, so sojourn measures the typed value's
// residency exactly. The private free-list queue is never traced.
func (h *TypedHandle[T]) ForceTrace(id uint64) { h.main.ForceTrace(id) }

// ClearTrace cancels a pending armed trace; see Handle.ClearTrace.
func (h *TypedHandle[T]) ClearTrace() { h.main.ClearTrace() }

// LastEnqueueTrace reports the trace stamped by this handle's most recent
// successful enqueue; see Handle.LastEnqueueTrace.
func (h *TypedHandle[T]) LastEnqueueTrace() (id uint64, ok bool) {
	return h.main.LastEnqueueTrace()
}

// EnqueueTraced appends v with a forced item trace and returns the identity
// it stamped; see Handle.EnqueueTraced.
func (h *TypedHandle[T]) EnqueueTraced(v T) (id uint64, ok bool) {
	id = NewTraceID()
	h.main.ForceTrace(id)
	return id, h.Enqueue(v)
}

// LastDequeueTraces returns the item traces observed by this handle's most
// recent dequeue operation; see Handle.LastDequeueTraces.
func (h *TypedHandle[T]) LastDequeueTraces() []ItemTrace {
	return h.main.LastDequeueTraces()
}

// RecentTraces returns the recent completed item traces of the underlying
// index queue; see Queue.RecentTraces.
func (t *Typed[T]) RecentTraces() []TraceRecord { return t.main.RecentTraces() }

// FindTrace returns the most recent completed trace carrying id; see
// Queue.FindTrace.
func (t *Typed[T]) FindTrace(id uint64) (TraceRecord, bool) { return t.main.FindTrace(id) }

// TraceHandler serves the underlying index queue's item-trace state as
// JSON; see Queue.TraceHandler.
func (t *Typed[T]) TraceHandler() http.Handler { return t.main.TraceHandler() }
