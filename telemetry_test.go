package lcrq

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTelemetryLiveScrape hammers the queue with producers and consumers
// while scrapers concurrently read Metrics, Events, and the Prometheus
// endpoint. Run under -race this proves the aggregation path is free of
// torn reads; the monotonicity and final-consistency checks prove the
// snapshots are not garbage.
func TestTelemetryLiveScrape(t *testing.T) {
	q := New(WithTelemetry(), WithLatencySampling(64), WithRingSize(128))
	const workers = 4
	const perWorker = 20000

	var wg sync.WaitGroup
	var produced, consumed atomic.Uint64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			for i := 0; i < perWorker; i++ {
				if h.Enqueue(uint64(w)<<32 | uint64(i)) {
					produced.Add(1)
				}
				if _, ok := h.Dequeue(); ok {
					consumed.Add(1)
				}
			}
		}(w)
	}

	srv := httptest.NewServer(q.MetricsHandler())
	defer srv.Close()

	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	var lastEnq uint64
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			m := q.Metrics()
			if m.Stats.Enqueues < lastEnq {
				t.Errorf("aggregate enqueues went backwards: %d -> %d", lastEnq, m.Stats.Enqueues)
				return
			}
			lastEnq = m.Stats.Enqueues
			if m.Depth < 0 || m.LiveRings < 1 {
				t.Errorf("implausible gauges: depth=%d rings=%d", m.Depth, m.LiveRings)
				return
			}
			_ = q.Events()
		}
	}()
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := srv.Client().Get(srv.URL)
			if err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if !strings.Contains(string(body), "lcrq_enqueues_total") {
				t.Errorf("scrape missing counter series:\n%s", body)
				return
			}
		}
	}()

	wg.Wait()
	close(stop)
	scrapeWG.Wait()
	if t.Failed() {
		return
	}

	// All worker handles released: their final counters are folded into the
	// retired totals, so the aggregate is now exact.
	m := q.Metrics()
	if m.Stats.Enqueues != produced.Load() {
		t.Fatalf("final enqueues = %d, want %d", m.Stats.Enqueues, produced.Load())
	}
	if got := m.Stats.Dequeues - m.Stats.Empty; got != consumed.Load() {
		t.Fatalf("final successful dequeues = %d, want %d", got, consumed.Load())
	}
	if want := int64(produced.Load() - consumed.Load()); m.Depth != want {
		t.Fatalf("quiescent depth = %d, want %d", m.Depth, want)
	}
	if m.Enqueue.Samples == 0 || m.Dequeue.Samples == 0 {
		t.Fatalf("no latency samples at stride 64 over %d ops", workers*perWorker*2)
	}
	if m.Enqueue.P50 > m.Enqueue.P999 || m.Enqueue.P999 > m.Enqueue.Max {
		t.Fatalf("latency quantiles not ordered: %+v", m.Enqueue)
	}
}

func TestMetricsWithoutTelemetry(t *testing.T) {
	q := New()
	h := q.NewHandle()
	defer h.Release()
	for i := 0; i < 100; i++ {
		h.Enqueue(uint64(i))
	}
	m := q.Metrics()
	if m.Depth != 100 {
		t.Fatalf("Depth = %d, want 100 (gauges work without telemetry)", m.Depth)
	}
	if m.LiveRings < 1 {
		t.Fatalf("LiveRings = %d", m.LiveRings)
	}
	if m.Stats.Enqueues != 0 || m.Handles != 0 {
		t.Fatalf("counter aggregation should be off without telemetry: %+v", m)
	}
	if q.Events() != nil {
		t.Fatal("Events should be nil without telemetry")
	}
	// The Prometheus endpoint still serves the gauges.
	rec := httptest.NewRecorder()
	q.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "lcrq_queue_depth 100") {
		t.Fatalf("endpoint missing depth gauge:\n%s", rec.Body.String())
	}
}

// TestPrometheusEndpointSeries pins the full series inventory documented in
// DESIGN.md §8.
func TestPrometheusEndpointSeries(t *testing.T) {
	q := New(WithTelemetry(), WithLatencySampling(1), WithRingSize(2), WithStarvationLimit(1))
	h := q.NewHandle()
	// A tiny ring plus a tantrum-happy starvation limit forces ring churn,
	// so the lifecycle series carry nonzero values.
	for i := 0; i < 200; i++ {
		h.Enqueue(uint64(i))
	}
	for i := 0; i < 200; i++ {
		h.Dequeue()
	}
	h.Dequeue() // one empty result
	h.Release()
	q.Close()

	rec := httptest.NewRecorder()
	q.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()

	for _, series := range []string{
		"lcrq_queue_depth", "lcrq_live_rings", "lcrq_recycler_rings",
		"lcrq_closed 1", "lcrq_handles", "lcrq_latency_sample_stride 1",
		"lcrq_enqueues_total 200", "lcrq_dequeues_total", "lcrq_dequeue_empty_total",
		"lcrq_faa_total", "lcrq_swap_total", "lcrq_tas_total",
		"lcrq_cas_total", "lcrq_cas_failures_total",
		"lcrq_cas2_total", "lcrq_cas2_failures_total",
		"lcrq_cell_retries_total", "lcrq_empty_transitions_total",
		"lcrq_unsafe_transitions_total", "lcrq_spin_waits_total",
		"lcrq_ring_closes_total", "lcrq_ring_appends_total", "lcrq_ring_recycles_total",
		`lcrq_ring_events_total{event="ring-append"}`,
		`lcrq_ring_events_total{event="queue-close"} 1`,
		`lcrq_chaos_fired_total{point="enq-cas2-fail"}`,
		`lcrq_op_latency_seconds{op="enqueue",quantile="0.5"}`,
		`lcrq_op_latency_seconds{op="dequeue",quantile="0.999"}`,
		`lcrq_op_latency_seconds_sum{op="dequeue_wait"}`,
		`lcrq_op_latency_seconds_count{op="enqueue"}`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("endpoint missing series %q", series)
		}
	}
	if t.Failed() {
		t.Logf("body:\n%s", body)
	}
}

func TestEventsTraceRecordsRingChurn(t *testing.T) {
	q := New(WithTelemetry(), WithRingSize(2), WithStarvationLimit(1))
	h := q.NewHandle()
	for i := 0; i < 64; i++ {
		h.Enqueue(uint64(i))
	}
	for i := 0; i < 64; i++ {
		h.Dequeue()
	}
	h.Release()
	q.Close()

	kinds := map[string]bool{}
	evs := q.Events()
	for i, e := range evs {
		kinds[e.Kind] = true
		if i > 0 && evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("trace out of order at %d: %+v", i, evs)
		}
		if time.Since(e.Time) > time.Minute || time.Since(e.Time) < 0 {
			t.Fatalf("implausible event time: %+v", e)
		}
	}
	for _, want := range []string{"ring-close", "ring-append", "ring-retire", "queue-close"} {
		if !kinds[want] {
			t.Errorf("trace missing %q events (have %v)", want, kinds)
		}
	}
	m := q.Metrics()
	if m.RingEvents["ring-append"] == 0 || m.RingEvents["queue-close"] != 1 {
		t.Fatalf("RingEvents = %v", m.RingEvents)
	}
}

func TestDequeueWaitLatencySampled(t *testing.T) {
	q := New(WithLatencySampling(1))
	h := q.NewHandle()
	defer h.Release()
	h.Enqueue(7)
	if v, err := h.DequeueWait(context.Background()); err != nil || v != 7 {
		t.Fatalf("DequeueWait = %d, %v", v, err)
	}
	m := q.Metrics()
	if m.DequeueWait.Samples != 1 {
		t.Fatalf("DequeueWait.Samples = %d, want 1", m.DequeueWait.Samples)
	}
}

func TestTypedTelemetryDelegates(t *testing.T) {
	q := NewTyped[string](WithLatencySampling(1))
	h := q.NewHandle()
	h.Enqueue("hello")
	if v, ok := h.Dequeue(); !ok || v != "hello" {
		t.Fatal("typed round trip failed")
	}
	h.Release() // folds the handle's counters into the aggregate
	m := q.Metrics()
	if m.Stats.Enqueues == 0 {
		t.Fatalf("typed Metrics empty: %+v", m.Stats)
	}
	rec := httptest.NewRecorder()
	q.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), "lcrq_enqueues_total") {
		t.Fatal("typed MetricsHandler missing series")
	}
}

func TestPublishExpvar(t *testing.T) {
	q := New(WithLatencySampling(1))
	h := q.NewHandle()
	h.Enqueue(1)
	h.Dequeue()
	h.Release()
	q.PublishExpvar("lcrq-test-queue")
	v := expvar.Get("lcrq-test-queue")
	if v == nil {
		t.Fatal("expvar not registered")
	}
	var m Metrics
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("expvar JSON: %v", err)
	}
	if m.Stats.Enqueues != 1 {
		t.Fatalf("expvar snapshot = %+v", m.Stats)
	}
}

// TestTelemetryOffOverhead guards the "zero fast-path cost" claim: the
// public wrapper with telemetry disabled (one nil check) must not be
// measurably slower than calling the core operation directly, which is the
// exact code the wrapper replaced. Benchmark-based and thus noisy, so it
// runs only when LCRQ_TELEMETRY_BENCH=1 (the telemetry CI job sets it).
func TestTelemetryOffOverhead(t *testing.T) {
	if os.Getenv("LCRQ_TELEMETRY_BENCH") == "" {
		t.Skip("set LCRQ_TELEMETRY_BENCH=1 to run the overhead smoke check")
	}
	q := New(WithRingSize(1 << 12))
	h := q.NewHandle()
	defer h.Release()

	direct := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.q.Enqueue(h.h, uint64(i)|1<<62)
			q.q.Dequeue(h.h)
		}
	}
	wrapped := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.Enqueue(uint64(i) | 1<<62)
			h.Dequeue()
		}
	}
	best := func(f func(*testing.B)) float64 {
		ns := 1e18
		for i := 0; i < 5; i++ {
			r := testing.Benchmark(f)
			if v := float64(r.NsPerOp()); v < ns {
				ns = v
			}
		}
		return ns
	}
	d, w := best(direct), best(wrapped)
	t.Logf("direct %.1f ns/op, wrapped (telemetry off) %.1f ns/op (%+.1f%%)",
		d, w, (w/d-1)*100)
	if w > d*1.25 {
		t.Fatalf("telemetry-off wrapper overhead too high: direct %.1f ns/op vs wrapped %.1f ns/op", d, w)
	}
}

var _ = fmt.Sprintf // keep fmt for debug edits
