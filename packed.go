package lcrq

import "lcrq/internal/packedq"

// Packed32 is the portable variant of the queue: ring cells are a single
// 64-bit word, so the algorithm stays lock-free on architectures without a
// double-width CAS (the main Queue falls back to a striped-lock CAS2
// emulation there). The trade-offs relative to Queue:
//
//   - values are uint32, with Reserved32 (0xFFFFFFFF) reserved;
//   - cell indices are tracked modulo 2^31: correctness requires that no
//     thread stalls mid-operation for more than ~2^30 queue operations
//     (the same flavor of bounded-counter assumption the paper makes for
//     its 63-bit indices);
//   - retired ring segments are garbage-collected rather than recycled.
//
// On amd64 prefer Queue; Packed32 exists for the portability study and for
// 32-bit payloads on weaker ISAs.
type Packed32 struct {
	q *packedq.Queue
}

// Reserved32 is the uint32 value that cannot be stored in a Packed32.
const Reserved32 = packedq.Bottom32

// NewPacked32 returns an empty portable queue with 2^order cells per ring
// segment (order 0 selects 2^12, matching New's default geometry).
func NewPacked32(order int) *Packed32 {
	if order == 0 {
		order = 12
	}
	return &Packed32{q: packedq.New(order)}
}

// Packed32Handle is the per-goroutine context for a Packed32 queue.
type Packed32Handle struct {
	q *packedq.Queue
	h *packedq.Handle
}

// NewHandle returns a handle bound to q.
func (q *Packed32) NewHandle() *Packed32Handle {
	return &Packed32Handle{q: q.q, h: q.q.NewHandle()}
}

// Enqueue appends v; v must not equal Reserved32.
func (h *Packed32Handle) Enqueue(v uint32) { h.q.Enqueue(h.h, v) }

// Dequeue removes and returns the oldest value; ok is false if the queue
// was observed empty.
func (h *Packed32Handle) Dequeue() (v uint32, ok bool) { return h.q.Dequeue(h.h) }

// Stats returns a snapshot of this handle's operation statistics.
func (h *Packed32Handle) Stats() Stats { return statsFromCounters(&h.h.C) }

// Release is a no-op today (the portable queue holds no per-thread
// resources beyond counters) but is part of the handle contract so callers
// are future-proof.
func (h *Packed32Handle) Release() {}
