// Command qserve is queue-as-a-service: one LCRQ behind an HTTP/JSON front
// end with the resilience layer wired in (internal/resilience/server).
//
//	qserve -addr :8080 -capacity 65536
//
// Endpoints: POST /v1/enqueue, POST /v1/dequeue (long-polling), GET
// /healthz (503 once draining, for load balancers), GET /statsz, GET
// /metrics (Prometheus), GET /traces (recent item traces), POST
// /admin/drain, GET /admin/blackbox (flight-recorder dump). See DESIGN.md
// §12 for the wire protocol and the shed/drain state machine, §13 for the
// tracing and flight-recorder model.
//
// Observability wiring:
//
//   - Item tracing is on by default at 1-in-1024 sampling (-trace-sample; 0
//     disables, -1 stamps only client-forced trace IDs).
//   - A flight recorder runs always, keeping the last ~2 minutes of queue
//     state in a bounded ring. SIGQUIT dumps it to -blackbox-dir and keeps
//     serving; a watchdog alert or a panic dumps automatically; GET
//     /admin/blackbox serves the live window.
//   - -debug-addr starts a SEPARATE listener exposing net/http/pprof —
//     off by default and never mounted on the service port, so profiling
//     exposure is an explicit operator decision.
//
// SIGTERM or SIGINT begins the graceful drain: enqueues get 503
// immediately, in-flight accepts settle, the queue closes, consumers drain
// what remains under -drain-deadline, the listener shuts down, and the
// process exits 0 — or 1 when the deadline expired with items still queued
// (the orchestrator should know deliveries were abandoned).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lcrq"
	"lcrq/internal/buildmeta"
	"lcrq/internal/flightrec"
	"lcrq/internal/resilience"
	"lcrq/internal/resilience/server"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		capacity      = flag.Int64("capacity", 0, "bound on queued items (0 = unbounded)")
		maxBatch      = flag.Int("max-batch", 1024, "values per request, at most")
		maxDeadline   = flag.Duration("max-deadline", 60*time.Second, "cap on client-requested waits")
		drainDeadline = flag.Duration("drain-deadline", 30*time.Second, "how long consumers get to empty the queue after SIGTERM")
		healthPoll    = flag.Duration("health-poll", 25*time.Millisecond, "shedder/drain-rate sampling interval")
		watchdog      = flag.Duration("watchdog", 50*time.Millisecond, "watchdog check interval (0 disables; disables shedding too)")
		recoverObs    = flag.Int("shed-recover", 2, "consecutive clean health polls before the shedder closes")
		dedupCap      = flag.Int("dedup", 65536, "idempotency-key cache size (<0 disables)")
		traceSample   = flag.Int("trace-sample", lcrq.DefaultTraceSampleN, "item-trace sampling stride: 1-in-N (0 off, -1 forced-only)")
		blackboxDir   = flag.String("blackbox-dir", ".", "directory for flight-recorder dumps (SIGQUIT, watchdog alerts, panics)")
		bboxInterval  = flag.Duration("blackbox-interval", flightrec.DefaultInterval, "flight-recorder frame cadence")
		debugAddr     = flag.String("debug-addr", "", "separate listener for net/http/pprof (empty = disabled)")
		quiet         = flag.Bool("quiet", false, "suppress lifecycle logging")
		version       = flag.Bool("version", false, "print build metadata and exit")
	)
	flag.Parse()

	if *version {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(buildmeta.Collect())
		return
	}

	opts := []lcrq.Option{lcrq.WithTelemetry()}
	if *capacity > 0 {
		opts = append(opts, lcrq.WithCapacity(*capacity))
	}
	if *watchdog > 0 {
		opts = append(opts, lcrq.WithWatchdog(*watchdog))
	}
	switch {
	case *traceSample > 0:
		opts = append(opts, lcrq.WithTracing(*traceSample))
	case *traceSample < 0:
		opts = append(opts, lcrq.WithForcedTracingOnly())
	}
	q := lcrq.New(opts...)

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}

	var srv *server.Server
	rec := flightrec.New(flightrec.Config{
		Queue:    q,
		Interval: *bboxInterval,
		Dir:      *blackboxDir,
		Logf:     logf,
		Extra: func() map[string]any {
			if srv == nil {
				return nil
			}
			return map[string]any{"qserve_counters": srv.Counters().Snapshot()}
		},
	})
	defer rec.CapturePanic()

	srv = server.New(server.Config{
		Queue:         q,
		MaxBatch:      *maxBatch,
		MaxDeadline:   *maxDeadline,
		DrainDeadline: *drainDeadline,
		HealthPoll:    *healthPoll,
		Shed:          resilience.ShedConfig{RecoverObservations: *recoverObs},
		DedupCapacity: *dedupCap,
		Logf:          logf,
		Blackbox:      rec.Handler(),
	})

	// pprof rides a separate listener so the service port never exposes
	// profiling handlers; see README "Profiling qserve".
	if *debugAddr != "" {
		dm := http.NewServeMux()
		dm.HandleFunc("/debug/pprof/", pprof.Index)
		dm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			logf("qserve: pprof on %s", *debugAddr)
			if err := (&http.Server{Addr: *debugAddr, Handler: dm}).ListenAndServe(); err != nil {
				logf("qserve: pprof listener: %v", err)
			}
		}()
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	logf("qserve: serving on %s (capacity %d, watchdog %v, trace 1-in-%d, commit %s)",
		*addr, *capacity, *watchdog, *traceSample, buildmeta.Collect().Commit)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	// SIGQUIT is the operator's black-box trigger: dump the flight recorder
	// and keep serving (unlike the Go runtime default of crashing with all
	// goroutine stacks).
	quitCh := make(chan os.Signal, 1)
	signal.Notify(quitCh, syscall.SIGQUIT)
	go func() {
		for range quitCh {
			if path, err := rec.WriteFile("sigquit"); err != nil {
				logf("qserve: SIGQUIT dump failed: %v", err)
			} else {
				logf("qserve: SIGQUIT — flight recorder dumped to %s", path)
			}
		}
	}()

	select {
	case err := <-errCh:
		log.Fatalf("qserve: listener: %v", err)
	case s := <-sig:
		logf("qserve: %v — draining", s)
	}

	// Graceful exit: drain the queue first (dequeues keep flowing through
	// the open listener), then shut the listener so in-flight responses
	// flush, then close.
	exit := 0
	if err := srv.Drain(context.Background()); err != nil {
		logf("qserve: %v", err)
		exit = 1
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		logf("qserve: listener shutdown: %v", err)
	}
	rec.Stop()
	srv.Close()
	if exit != 0 {
		fmt.Fprintln(os.Stderr, "qserve: exited with undelivered items")
	}
	os.Exit(exit)
}
