// Command qbench regenerates the throughput figures, latency figures, ring
// sweeps, and statistics tables of the LCRQ paper's evaluation.
//
// Usage:
//
//	qbench -fig 6a                  # Figure 6a at the scaled default size
//	qbench -fig 7b -paper           # full paper-size run (slow)
//	qbench -table 2                 # Table 2 statistics
//	qbench -fig 9b                  # ring-size sensitivity
//	qbench -fig 8a                  # latency CDF
//	qbench -list                    # what can be regenerated
//	qbench -queues lcrq,ms-queue -threads 1,2,4 -pairs 50000   # custom sweep
//	qbench -batch 64 -metrics BENCH_batch.json  # batched-operation study
//	qbench -oversub 8 -metrics BENCH_contention.json  # fixed vs adaptive contention
//
// Flags -pairs, -runs, -maxthreads, and -ring scale any experiment; -csv
// switches figure output to CSV; -chart adds an ASCII chart; -metrics PATH
// additionally writes the results as a JSON sidecar for dashboards.
//
// Governed runs (extension): -capacity N bounds the LCRQ family to N
// in-flight items (producers block under backpressure), and -watchdog DUR
// samples the budget stats at that interval, deriving a health verdict.
// Both the budget outcome and the verdict land in the -metrics sidecar:
//
//	qbench -queues lcrq -threads 8 -capacity 1024 -watchdog 10ms -metrics gov.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"lcrq/internal/harness"
	"lcrq/internal/queues"
	"lcrq/internal/render"
)

func main() {
	var (
		fig        = flag.String("fig", "", "figure to regenerate: 6a, 6b, 7a, 7b, 8a, 8b, 9a, 9b, 9c")
		table      = flag.String("table", "", "table to regenerate: 2 or 3")
		paper      = flag.Bool("paper", false, "paper-size configuration (10^7 pairs, 10 runs; slow)")
		pairs      = flag.Int("pairs", 0, "enqueue/dequeue pairs per thread (0 = scaled default)")
		runs       = flag.Int("runs", 0, "runs per configuration (0 = scaled default)")
		maxThreads = flag.Int("maxthreads", 0, "clip thread axis (0 = spec values)")
		ring       = flag.String("ring", "", "a number overrides the LCRQ ring order; engine names (scq,lcrq) run the ring-engine comparison sweep")
		pin        = flag.Bool("pin", true, "pin threads to CPUs when supported")
		csv        = flag.Bool("csv", false, "emit figure data as CSV")
		jsonOut    = flag.Bool("json", false, "emit results as JSON")
		chart      = flag.Bool("chart", false, "draw an ASCII chart under the table")
		list       = flag.Bool("list", false, "list available figures and tables")
		queuesFlag = flag.String("queues", "", "custom sweep: comma-separated queue names")
		threadsF   = flag.String("threads", "1,2,4,8", "custom sweep: comma-separated thread counts")
		prefill    = flag.Int("prefill", 0, "custom sweep: items pre-inserted")
		enqRatio   = flag.Float64("enqratio", 0, "custom sweep: mixed workload enqueue probability (0 = paper's pairs)")
		metricsOut = flag.String("metrics", "", "also write results as a JSON sidecar to this path")
		capacity   = flag.Int64("capacity", 0, "governed run: bound the LCRQ family to this many in-flight items (0 = unbounded)")
		watchdog   = flag.Duration("watchdog", 0, "governed run: sample budget health at this interval and report verdicts (0 = off)")
		batch      = flag.Int("batch", 0, "batch study: sweep EnqueueBatch/DequeueBatch block sizes up to N (0 = off)")
		oversub    = flag.Int("oversub", 0, "oversubscription study: compare fixed vs adaptive contention at thread multiples of GOMAXPROCS up to N× (0 = off)")
	)
	flag.Parse()

	// -ring is overloaded: a bare number keeps its original meaning (ring
	// order override), anything else names ring engines for the comparison
	// sweep (e.g. -ring scq,lcrq).
	ringOrder := 0
	ringEngines := ""
	if *ring != "" {
		if n, err := strconv.Atoi(*ring); err == nil {
			ringOrder = n
		} else {
			ringEngines = *ring
		}
	}

	sc := harness.Scale{Pairs: *pairs, Runs: *runs, MaxThreads: *maxThreads,
		RingOrder: ringOrder, Pin: *pin, Capacity: *capacity, Watchdog: *watchdog}
	if *paper {
		p := harness.Paper()
		if *pairs == 0 {
			sc.Pairs = p.Pairs
		}
		if *runs == 0 {
			sc.Runs = p.Runs
		}
	}

	mode := outputMode{csv: *csv, json: *jsonOut, chart: *chart, metrics: *metricsOut}
	switch {
	case *list:
		printList()
	case *fig != "":
		if err := runFigure(*fig, sc, mode); err != nil {
			fatal(err)
		}
	case *table != "":
		spec, ok := harness.Tables()[*table]
		if !ok {
			fatal(fmt.Errorf("unknown table %q (have 2, 3)", *table))
		}
		res, err := harness.RunTable(spec, sc)
		if err != nil {
			fatal(err)
		}
		if err := mode.sidecar(func(w io.Writer) error { return render.JSONTable(w, res) }); err != nil {
			fatal(err)
		}
		if *jsonOut {
			if err := render.JSONTable(os.Stdout, res); err != nil {
				fatal(err)
			}
		} else {
			render.Table(os.Stdout, res)
		}
	case *batch > 0:
		if err := runBatch(*batch, *queuesFlag, *threadsF, sc, mode); err != nil {
			fatal(err)
		}
	case *oversub > 0:
		if err := runOversub(*oversub, *queuesFlag, sc, mode); err != nil {
			fatal(err)
		}
	case ringEngines != "":
		if err := runRingEngines(ringEngines, *threadsF, sc, mode); err != nil {
			fatal(err)
		}
	case *queuesFlag != "":
		if err := runCustom(*queuesFlag, *threadsF, *prefill, *enqRatio, sc, mode); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// outputMode selects how results are rendered. metrics, when nonempty, is a
// path that additionally receives the results as JSON — a machine-readable
// sidecar independent of the human-oriented stdout rendering, so dashboards
// can ingest every run without giving up the terminal tables.
type outputMode struct {
	csv     bool
	json    bool
	chart   bool
	metrics string
}

// sidecar writes the JSON form of the results to the -metrics path, if set.
func (m outputMode) sidecar(write func(io.Writer) error) error {
	if m.metrics == "" {
		return nil
	}
	f, err := os.Create(m.metrics)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (m outputMode) figure(res *harness.FigureResult) error {
	if err := m.sidecar(func(w io.Writer) error { return render.JSONFigure(w, res) }); err != nil {
		return err
	}
	switch {
	case m.json:
		return render.JSONFigure(os.Stdout, res)
	case m.csv:
		render.FigureCSV(os.Stdout, res)
	default:
		render.Figure(os.Stdout, res)
		if m.chart {
			fmt.Println()
			render.Chart(os.Stdout, res, 12)
		}
	}
	return nil
}

func runFigure(id string, sc harness.Scale, mode outputMode) error {
	if spec, ok := harness.Figures()[id]; ok {
		res, err := harness.RunFigure(spec, sc)
		if err != nil {
			return err
		}
		return mode.figure(res)
	}
	if spec, ok := harness.LatencyFigures()[id]; ok {
		res, err := harness.RunLatencyFigure(spec, sc)
		if err != nil {
			return err
		}
		if err := mode.sidecar(func(w io.Writer) error { return render.JSONLatency(w, res) }); err != nil {
			return err
		}
		if mode.json {
			return render.JSONLatency(os.Stdout, res)
		}
		render.Latency(os.Stdout, res)
		return nil
	}
	if spec, ok := harness.RingSweeps()[id]; ok {
		res, err := harness.RunRingSweep(spec, sc)
		if err != nil {
			return err
		}
		if err := mode.sidecar(func(w io.Writer) error { return render.JSONRingSweep(w, res) }); err != nil {
			return err
		}
		if mode.json {
			return render.JSONRingSweep(os.Stdout, res)
		}
		render.RingSweep(os.Stdout, res)
		return nil
	}
	return fmt.Errorf("unknown figure %q; try -list", id)
}

// runBatch sweeps EnqueueBatch/DequeueBatch block sizes 1, 4, 16, 64
// clipped to maxK (maxK itself is added when it falls between the standard
// points), comparing item throughput and F&A amortization against the k=1
// baseline.
func runBatch(maxK int, queuesCSV, threadsCSV string, sc harness.Scale, mode outputMode) error {
	spec := harness.BatchSweep()
	if queuesCSV != "" {
		spec.Queue = strings.Split(queuesCSV, ",")[0]
	}
	if threadsCSV != "" {
		for _, t := range strings.Split(threadsCSV, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(t))
			if err != nil || v < 1 {
				return fmt.Errorf("bad thread count %q", t)
			}
			if v > spec.Threads {
				spec.Threads = v
			}
		}
	}
	var sizes []int
	for _, k := range spec.Sizes {
		if k <= maxK {
			sizes = append(sizes, k)
		}
	}
	if len(sizes) == 0 || sizes[len(sizes)-1] != maxK {
		sizes = append(sizes, maxK)
	}
	spec.Sizes = sizes
	res, err := harness.RunBatchSweep(spec, sc)
	if err != nil {
		return err
	}
	if err := mode.sidecar(func(w io.Writer) error { return render.JSONBatchSweep(w, res) }); err != nil {
		return err
	}
	if mode.json {
		return render.JSONBatchSweep(os.Stdout, res)
	}
	render.BatchSweep(os.Stdout, res)
	return nil
}

// runOversub sweeps oversubscription multipliers 1, 2, 4, 8 clipped to maxM
// (maxM itself is added when it falls between the standard points), running
// every point once with fixed spin constants and once with the adaptive
// contention controller armed.
func runOversub(maxM int, queuesCSV string, sc harness.Scale, mode outputMode) error {
	spec := harness.OversubSweep()
	if queuesCSV != "" {
		spec.Queue = strings.Split(queuesCSV, ",")[0]
	}
	var mults []int
	for _, m := range spec.Multipliers {
		if m <= maxM {
			mults = append(mults, m)
		}
	}
	if len(mults) == 0 || mults[len(mults)-1] != maxM {
		mults = append(mults, maxM)
	}
	spec.Multipliers = mults
	res, err := harness.RunOversubSweep(spec, sc)
	if err != nil {
		return err
	}
	if err := mode.sidecar(func(w io.Writer) error { return render.JSONOversubSweep(w, res) }); err != nil {
		return err
	}
	if mode.json {
		return render.JSONOversubSweep(os.Stdout, res)
	}
	render.OversubSweep(os.Stdout, res)
	return nil
}

func runCustom(queuesCSV, threadsCSV string, prefill int, enqRatio float64, sc harness.Scale, mode outputMode) error {
	names := strings.Split(queuesCSV, ",")
	for _, n := range names {
		found := false
		for _, have := range queues.Names() {
			if n == have {
				found = true
			}
		}
		if !found {
			return fmt.Errorf("unknown queue %q (have %v)", n, queues.Names())
		}
	}
	var threads []int
	for _, t := range strings.Split(threadsCSV, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(t))
		if err != nil || v < 1 {
			return fmt.Errorf("bad thread count %q", t)
		}
		threads = append(threads, v)
	}
	spec := harness.FigureSpec{
		ID:        "custom",
		Title:     "custom sweep",
		Queues:    names,
		Threads:   threads,
		Placement: harness.SingleCluster,
		Prefill:   prefill,
		MaxDelay:  100,
		EnqRatio:  enqRatio,
	}
	res, err := harness.RunFigure(spec, sc)
	if err != nil {
		return err
	}
	return mode.figure(res)
}

// runRingEngines compares ring engines under the paper's single-op
// pairwise workload: each engine name maps to the registered queue that
// forces it ("lcrq" = the per-GOARCH default, CAS2 on native amd64; "scq" =
// the portable single-word engine). Besides the usual figure rendering it
// prints the SCQ/LCRQ throughput ratio per thread count — the acceptance
// gate for the portable ring is staying within 2x of CAS2 on amd64.
func runRingEngines(enginesCSV, threadsCSV string, sc harness.Scale, mode outputMode) error {
	var names []string
	for _, e := range strings.Split(enginesCSV, ",") {
		switch e = strings.TrimSpace(e); e {
		case "scq", "lcrq":
			names = append(names, e)
		default:
			return fmt.Errorf("unknown ring engine %q (have scq, lcrq)", e)
		}
	}
	var threads []int
	for _, t := range strings.Split(threadsCSV, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(t))
		if err != nil || v < 1 {
			return fmt.Errorf("bad thread count %q", t)
		}
		threads = append(threads, v)
	}
	spec := harness.FigureSpec{
		ID:        "ring-engines",
		Title:     "ring engine comparison (enqueue/dequeue pairs)",
		Queues:    names,
		Threads:   threads,
		Placement: harness.SingleCluster,
		MaxDelay:  100,
	}
	res, err := harness.RunFigure(spec, sc)
	if err != nil {
		return err
	}
	if err := mode.figure(res); err != nil {
		return err
	}
	byQueue := map[string][]harness.Point{}
	for _, s := range res.Series {
		byQueue[s.Queue] = s.Points
	}
	scq, lcrq := byQueue["scq"], byQueue["lcrq"]
	if !mode.json && len(scq) == len(lcrq) && len(lcrq) > 0 {
		fmt.Printf("\nSCQ/LCRQ throughput ratio (%s):\n", runtime.GOARCH)
		for i := range lcrq {
			if lcrq[i].Mops > 0 {
				fmt.Printf("  %2d threads: %.2fx\n", lcrq[i].X, scq[i].Mops/lcrq[i].Mops)
			}
		}
	}
	return nil
}

func printList() {
	fmt.Println("Figures (qbench -fig <id>):")
	var ids []string
	for id := range harness.Figures() {
		ids = append(ids, id)
	}
	for id := range harness.LatencyFigures() {
		ids = append(ids, id)
	}
	for id := range harness.RingSweeps() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		title := ""
		if s, ok := harness.Figures()[id]; ok {
			title = s.Title
		} else if s, ok := harness.LatencyFigures()[id]; ok {
			title = s.Title + " (latency CDF)"
		} else if s, ok := harness.RingSweeps()[id]; ok {
			title = s.Title
		}
		fmt.Printf("  %-4s %s\n", id, title)
	}
	fmt.Println("Tables (qbench -table <id>):")
	var tids []string
	for id := range harness.Tables() {
		tids = append(tids, id)
	}
	sort.Strings(tids)
	for _, id := range tids {
		fmt.Printf("  %-4s %s\n", id, harness.Tables()[id].Title)
	}
	fmt.Printf("Queues: %s\n", strings.Join(queues.Names(), ", "))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qbench:", err)
	os.Exit(1)
}
