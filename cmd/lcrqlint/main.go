// Command lcrqlint runs the repository's concurrency-invariant analyzers
// (internal/analysis): the v1 per-word checks — align128, atomiconly,
// padcheck, hotpath, statsmirror — and the v2 protocol checks —
// seqlockcheck, singlewriter, publication, chaosreg.
//
// It supports two modes:
//
//	lcrqlint ./...            # standalone: load packages from source
//	go vet -vettool=$(go env GOPATH)/bin/lcrqlint ./...
//
// Standalone mode loads and type-checks packages itself (see
// internal/lint/load) and analyzes non-test compilation units. Under go
// vet the tool speaks the unitchecker protocol — -V=full and -flags for
// the build system, then one JSON .cfg file per compilation unit — so test
// files are covered too and results participate in go vet's build cache.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	suite "lcrq/internal/analysis"
	"lcrq/internal/lint/analysis"
	"lcrq/internal/lint/load"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lcrqlint: ")
	analyzers := suite.All()
	if err := analysis.Validate(analyzers); err != nil {
		log.Fatal(err)
	}

	// The two flags of the go vet tool protocol, handled before normal
	// flag parsing exactly as x/tools' unitchecker does.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			// No analyzer in the suite defines flags.
			fmt.Println("[]")
			return
		}
	}
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, `usage:
  lcrqlint [packages]      # standalone analysis, e.g. lcrqlint ./...
  go vet -vettool=$(which lcrqlint) [packages]
`)
		os.Exit(2)
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVettool(args[0], analyzers)
		return
	}
	runStandalone(args, analyzers)
}

// printVersion responds to -V=full with the executable's content hash, the
// format cmd/go's build-cache tool-ID probe expects from a devel tool.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel buildID=%x\n", filepath.Base(os.Args[0]), h.Sum(nil))
}

// runStandalone loads packages from source and analyzes them.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer) {
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		log.Fatal(err)
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := load.RunAnalyzers(pkg, analyzers)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
			exit = 1
		}
	}
	os.Exit(exit)
}

// vetConfig is the compilation-unit description 'go vet' writes for its
// -vettool (the unitchecker protocol's Config).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVettool analyzes the single compilation unit described by cfgFile.
func runVettool(cfgFile string, analyzers []*analysis.Analyzer) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	// The go command expects the facts file to exist even though this
	// suite exports none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return // the compiler will report it
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := load.NewInfo()
	tpkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return
		}
		log.Fatal(err)
	}

	pkg := &load.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		GoFiles:    cfg.GoFiles,
		Fset:       fset,
		Syntax:     files,
		Types:      tpkg,
		TypesInfo:  info,
		TypesSizes: tc.Sizes,
	}
	diags, err := load.RunAnalyzers(pkg, analyzers)
	if err != nil {
		log.Fatal(err)
	}
	exit := 0
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
		exit = 1
	}
	os.Exit(exit)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
