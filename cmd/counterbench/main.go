// Command counterbench regenerates Figure 1 of the LCRQ paper: the cost of
// incrementing one contended counter with fetch-and-add versus a CAS loop,
// and the number of CAS attempts per increment.
//
// Usage:
//
//	counterbench                    # threads 1..2×CPUs, 10^6 incs each
//	counterbench -incs 10000000 -maxthreads 80
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"lcrq/internal/counter"
)

func main() {
	var (
		incs       = flag.Int("incs", 1_000_000, "increments per thread")
		maxThreads = flag.Int("maxthreads", 0, "largest thread count (0 = 2×NumCPU)")
		pin        = flag.Bool("pin", true, "pin threads to CPUs when supported")
		csv        = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	max := *maxThreads
	if max <= 0 {
		max = 2 * runtime.NumCPU()
	}
	var threads []int
	for t := 1; t <= max; t *= 2 {
		threads = append(threads, t)
	}
	if threads[len(threads)-1] != max {
		threads = append(threads, max)
	}

	if *csv {
		fmt.Println("threads,faa_ns_per_inc,cas_ns_per_inc,cas_attempts_per_inc")
	} else {
		fmt.Println("Figure 1: time to increment a contended counter")
		fmt.Printf("host: %d CPUs; %d increments per thread\n\n", runtime.NumCPU(), *incs)
		fmt.Printf("%-8s  %-14s  %-14s  %-8s  %s\n",
			"threads", "F&A ns/inc", "CAS ns/inc", "CAS/inc", "CAS slowdown")
		fmt.Println(strings.Repeat("-", 64))
	}
	for _, t := range threads {
		faa := counter.Run(counter.FAA, t, *incs, *pin)
		cas := counter.Run(counter.CASLoop, t, *incs, *pin)
		if *csv {
			fmt.Printf("%d,%.2f,%.2f,%.3f\n", t, faa.NsPerInc, cas.NsPerInc, cas.CASPerInc)
			continue
		}
		fmt.Printf("%-8d  %-14.2f  %-14.2f  %-8.3f  %.2fx\n",
			t, faa.NsPerInc, cas.NsPerInc, cas.CASPerInc, cas.NsPerInc/faa.NsPerInc)
	}
	if !*csv {
		fmt.Println("\nThe paper reports a 4x-6x F&A advantage at high concurrency on a")
		fmt.Println("4-socket Westmere EX; the gap grows with hardware parallelism and")
		fmt.Println("will be small on hosts with few CPUs.")
	}
	os.Exit(0)
}
