package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// statsz mirrors the slice of qserve's GET /statsz document qtop renders.
// Unknown fields are ignored, so qtop degrades gracefully against newer or
// older servers.
type statsz struct {
	Build struct {
		Commit     string `json:"commit"`
		Dirty      bool   `json:"dirty"`
		GoMaxProcs int    `json:"gomaxprocs"`
	} `json:"build"`
	State string `json:"state"`
	Shed  struct {
		Shedding bool   `json:"shedding"`
		Verdict  string `json:"verdict"`
		Opens    uint64 `json:"opens"`
	} `json:"shed"`
	Health struct {
		OK      bool   `json:"OK"`
		Verdict string `json:"Verdict"`
		Detail  string `json:"Detail"`
	} `json:"health"`
	Counters  map[string]uint64 `json:"counters"`
	Depth     int64             `json:"depth"`
	Items     int64             `json:"items"`
	Capacity  int64             `json:"capacity"`
	DrainRate float64           `json:"drain_rate"`
	Stats     struct {
		Enqueues  uint64 `json:"enqueues"`
		Dequeues  uint64 `json:"dequeues"`
		Empty     uint64 `json:"empty"`
		TraceArms uint64 `json:"trace_arms"`
		TraceHits uint64 `json:"trace_hits"`
	} `json:"stats"`
	Latency      map[string]latencyz `json:"latency"`
	Sojourn      latencyz            `json:"sojourn"`
	TraceSampleN int                 `json:"trace_sample_n"`
}

type latencyz struct {
	Samples uint64 `json:"samples"`
	MeanNs  int64  `json:"mean_ns"`
	P50Ns   int64  `json:"p50_ns"`
	P99Ns   int64  `json:"p99_ns"`
	P999Ns  int64  `json:"p999_ns"`
	MaxNs   int64  `json:"max_ns"`
}

// rate turns a counter delta over dt into a per-second figure.
func rate(cur, prev uint64, dt time.Duration) float64 {
	if dt <= 0 || cur < prev {
		return 0
	}
	return float64(cur-prev) / dt.Seconds()
}

func ns(v int64) string {
	switch d := time.Duration(v); {
	case d <= 0:
		return "-"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.1fms", float64(d.Nanoseconds())/1e6)
	default:
		return d.Round(100 * time.Millisecond).String()
	}
}

// render writes one dashboard screen: cur against prev over dt for the rate
// columns. prev == nil (the first poll) renders gauges and quantiles only.
func render(w io.Writer, url string, cur, prev *statsz, dt time.Duration) {
	commit := cur.Build.Commit
	if len(commit) > 12 {
		commit = commit[:12]
	}
	if cur.Build.Dirty {
		commit += "+dirty"
	}
	fmt.Fprintf(w, "qtop — %s   state=%s   commit=%s   gomaxprocs=%d\n",
		url, cur.State, commit, cur.Build.GoMaxProcs)

	health := "OK"
	if !cur.Health.OK {
		health = fmt.Sprintf("ALERT %s", cur.Health.Verdict)
		if cur.Health.Detail != "" {
			health += " (" + cur.Health.Detail + ")"
		}
	} else if cur.Health.Verdict != "" && cur.Health.Verdict != "ok" {
		health = cur.Health.Verdict
	}
	shed := "admitting"
	if cur.Shed.Shedding {
		shed = fmt.Sprintf("SHEDDING (%s)", cur.Shed.Verdict)
	}
	fmt.Fprintf(w, "health: %-40s shed: %s (opens %d)\n", health, shed, cur.Shed.Opens)

	cap := "∞"
	if cur.Capacity > 0 {
		cap = fmt.Sprintf("%d", cur.Capacity)
	}
	fmt.Fprintf(w, "depth: %-8d items: %-8d capacity: %-8s drain-rate: %.0f/s\n",
		cur.Depth, cur.Items, cap, cur.DrainRate)

	if prev != nil {
		fmt.Fprintf(w, "rates: enq %.0f/s   deq %.0f/s   empty %.0f/s",
			rate(cur.Stats.Enqueues, prev.Stats.Enqueues, dt),
			rate(cur.Stats.Dequeues, prev.Stats.Dequeues, dt),
			rate(cur.Stats.Empty, prev.Stats.Empty, dt))
		if cur.Counters != nil && prev.Counters != nil {
			fmt.Fprintf(w, "   accepted %.0f/s   delivered %.0f/s   shed %.0f/s",
				rate(cur.Counters["lcrq_qserve_items_accepted_total"], prev.Counters["lcrq_qserve_items_accepted_total"], dt),
				rate(cur.Counters["lcrq_qserve_items_delivered_total"], prev.Counters["lcrq_qserve_items_delivered_total"], dt),
				rate(cur.Counters["lcrq_qserve_shed_rejects_total"], prev.Counters["lcrq_qserve_shed_rejects_total"], dt))
		}
		fmt.Fprintln(w)
	}

	fmt.Fprintf(w, "%-14s %10s %10s %10s %10s %12s\n", "latency", "p50", "p99", "p99.9", "max", "samples")
	names := make([]string, 0, len(cur.Latency))
	for name := range cur.Latency {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		l := cur.Latency[name]
		if l.Samples == 0 {
			continue
		}
		fmt.Fprintf(w, "%-14s %10s %10s %10s %10s %12d\n",
			name, ns(l.P50Ns), ns(l.P99Ns), ns(l.P999Ns), ns(l.MaxNs), l.Samples)
	}
	if cur.Sojourn.Samples > 0 {
		fmt.Fprintf(w, "%-14s %10s %10s %10s %10s %12d\n",
			"sojourn", ns(cur.Sojourn.P50Ns), ns(cur.Sojourn.P99Ns), ns(cur.Sojourn.P999Ns), ns(cur.Sojourn.MaxNs), cur.Sojourn.Samples)
	}

	trace := "off"
	switch {
	case cur.TraceSampleN > 0:
		trace = fmt.Sprintf("1-in-%d", cur.TraceSampleN)
	case cur.TraceSampleN < 0:
		trace = "forced-only"
	}
	fmt.Fprintf(w, "tracing: %s   arms %d   hits %d\n", trace, cur.Stats.TraceArms, cur.Stats.TraceHits)
}

// clearScreen is the ANSI home+clear prefix the live loop prints between
// frames.
const clearScreen = "\x1b[H\x1b[2J"

// sanity reports a short diagnosis for snapshots that decode but look empty
// (wrong URL, or a server without telemetry).
func sanity(cur *statsz) string {
	var b strings.Builder
	if cur.State == "" {
		b.WriteString("no lifecycle state in response — is the URL a qserve /statsz endpoint?")
	}
	return b.String()
}
