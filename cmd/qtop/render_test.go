package main

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lcrq"
	"lcrq/internal/resilience"
	"lcrq/internal/resilience/server"
)

// fakeSnapshot builds a statsz pair two seconds apart with known counter
// movement so the rate math is checkable to the digit.
func fakeSnapshot() (cur, prev *statsz) {
	prev = &statsz{}
	prev.State = "serving"
	prev.Stats.Enqueues, prev.Stats.Dequeues = 1000, 400
	prev.Counters = map[string]uint64{"lcrq_qserve_items_accepted_total": 900}

	cur = &statsz{}
	cur.State = "serving"
	cur.Build.Commit = "abcdef0123456789"
	cur.Build.GoMaxProcs = 8
	cur.Health.OK = true
	cur.Health.Verdict = "ok"
	cur.Depth = 123
	cur.Capacity = 4096
	cur.Stats.Enqueues, cur.Stats.Dequeues = 3000, 1400
	cur.Stats.TraceArms, cur.Stats.TraceHits = 7, 5
	cur.Counters = map[string]uint64{"lcrq_qserve_items_accepted_total": 2900}
	cur.TraceSampleN = 1024
	cur.Latency = map[string]latencyz{
		"enqueue": {Samples: 100, P50Ns: 250, P99Ns: 1800, P999Ns: 4000, MaxNs: 9000},
	}
	cur.Sojourn = latencyz{Samples: 42, P50Ns: 52_000, P99Ns: 910_000, P999Ns: 2_000_000, MaxNs: 5_000_000}
	return cur, prev
}

// TestRenderRates: counter deltas over the poll gap come out as exact
// per-second rates, and every dashboard section renders.
func TestRenderRates(t *testing.T) {
	cur, prev := fakeSnapshot()
	var b strings.Builder
	render(&b, "http://q:8080", cur, prev, 2*time.Second)
	out := b.String()

	for _, want := range []string{
		"state=serving",
		"commit=abcdef012345", // truncated to 12
		"gomaxprocs=8",
		"health: OK",
		"depth: 123",
		"capacity: 4096",
		"enq 1000/s",      // (3000-1000)/2s
		"deq 500/s",       // (1400-400)/2s
		"accepted 1000/s", // (2900-900)/2s
		"enqueue",
		"1.8µs", // enqueue p99
		"sojourn",
		"910.0µs", // sojourn p99
		"tracing: 1-in-1024",
		"arms 7",
		"hits 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q:\n%s", want, out)
		}
	}
}

// TestRenderFirstFrame: with no previous snapshot there are no rates, but
// gauges and quantiles still render.
func TestRenderFirstFrame(t *testing.T) {
	cur, _ := fakeSnapshot()
	var b strings.Builder
	render(&b, "u", cur, nil, 0)
	out := b.String()
	if strings.Contains(out, "rates:") {
		t.Fatalf("first frame rendered rates with no baseline:\n%s", out)
	}
	if !strings.Contains(out, "depth: 123") || !strings.Contains(out, "sojourn") {
		t.Fatalf("first frame missing gauges:\n%s", out)
	}
}

// TestRenderAlerts: unhealthy and shedding states are called out loudly.
func TestRenderAlerts(t *testing.T) {
	cur, prev := fakeSnapshot()
	cur.Health.OK = false
	cur.Health.Verdict = "capacity-stall"
	cur.Health.Detail = "queue full for 3 intervals"
	cur.Shed.Shedding = true
	cur.Shed.Verdict = "capacity-stall"
	cur.Shed.Opens = 2
	var b strings.Builder
	render(&b, "u", cur, prev, time.Second)
	out := b.String()
	if !strings.Contains(out, "ALERT capacity-stall (queue full for 3 intervals)") {
		t.Fatalf("alert not rendered:\n%s", out)
	}
	if !strings.Contains(out, "SHEDDING (capacity-stall) (opens 2)") {
		t.Fatalf("shed state not rendered:\n%s", out)
	}
}

// TestStatszDecodesIntoRenderModel closes the loop against the real server:
// the /statsz document a live qserve emits must decode into qtop's model
// with the load-bearing fields populated.
func TestStatszDecodesIntoRenderModel(t *testing.T) {
	q := lcrq.New(lcrq.WithTracing(1))
	srv := server.New(server.Config{Queue: q})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	body := strings.NewReader(`{"values":[1,2,3]}`)
	resp, err := ts.Client().Post(ts.URL+"/v1/enqueue", "application/json", body)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("enqueue: %v %v", err, resp)
	}
	resp.Body.Close()
	resp, err = ts.Client().Post(ts.URL+"/v1/dequeue", "application/json", strings.NewReader(`{"max":3}`))
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("dequeue: %v %v", err, resp)
	}
	resp.Body.Close()

	resp, err = ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s statsz
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.State != resilience.Serving.String() {
		t.Fatalf("state = %q", s.State)
	}
	if s.Build.Commit == "" || s.Build.GoMaxProcs < 1 {
		t.Fatalf("build = %+v", s.Build)
	}
	if s.TraceSampleN != 1 || s.Sojourn.Samples == 0 {
		t.Fatalf("tracing fields: sample_n=%d sojourn=%+v", s.TraceSampleN, s.Sojourn)
	}
	if msg := sanity(&s); msg != "" {
		t.Fatalf("sanity: %s", msg)
	}
	var b strings.Builder
	render(&b, ts.URL, &s, nil, 0)
	if !strings.Contains(b.String(), "state=serving") {
		t.Fatalf("render of live statsz:\n%s", b.String())
	}
}
