// Command qtop is a live terminal dashboard for a running qserve: it polls
// GET /statsz and renders queue health, shed state, depth, operation rates
// (computed as deltas between polls), and the latency and sojourn quantile
// tables — the at-a-glance view an operator wants before reaching for
// /metrics or the flight recorder.
//
//	qtop -url http://localhost:8080            # live, 1s cadence
//	qtop -url http://localhost:8080 -once      # one frame, no clearing (scripts, CI logs)
//
// qtop is read-only and stateless: everything it shows comes from the
// server's own observability endpoints, so it can point at any qserve —
// local, staging, or production — without side effects.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"
)

func main() {
	var (
		url      = flag.String("url", "http://localhost:8080", "qserve base URL")
		interval = flag.Duration("interval", time.Second, "poll cadence")
		once     = flag.Bool("once", false, "render one frame and exit (no screen clearing)")
	)
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}
	fetch := func() (*statsz, error) {
		resp, err := client.Get(*url + "/statsz")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("/statsz: HTTP %d", resp.StatusCode)
		}
		var s statsz
		if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
			return nil, fmt.Errorf("/statsz: %w", err)
		}
		return &s, nil
	}

	var prev *statsz
	prevAt := time.Now()
	for {
		cur, err := fetch()
		now := time.Now()
		if err != nil {
			if *once {
				fmt.Fprintf(os.Stderr, "qtop: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%sqtop — %s: %v (retrying every %v)\n", clearScreen, *url, err, *interval)
		} else {
			if !*once {
				fmt.Print(clearScreen)
			}
			render(os.Stdout, *url, cur, prev, now.Sub(prevAt))
			if msg := sanity(cur); msg != "" {
				fmt.Println(msg)
			}
			prev, prevAt = cur, now
		}
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}
