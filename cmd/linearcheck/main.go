// Command linearcheck runs linearizability checking campaigns against any
// registered queue implementation: it records many small genuinely
// concurrent histories and verifies each with the exhaustive Wing&Gong-style
// checker in internal/linearize.
//
// Usage:
//
//	linearcheck                          # all queues, default campaign
//	linearcheck -queue lcrq -rounds 500  # hammer one implementation
//	linearcheck -threads 4 -ops 10       # shape of each history
//
// The checker is exponential in the worst case, so keep threads×ops small
// (the default 3×8 verifies in microseconds); the value of the campaign
// comes from the number of distinct interleavings, i.e. -rounds.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"lcrq/internal/linearize"
	"lcrq/internal/queues"
	"lcrq/internal/xrand"
)

func main() {
	var (
		queue   = flag.String("queue", "", "queue to check (default: all registered)")
		rounds  = flag.Int("rounds", 200, "histories to record and check per queue")
		threads = flag.Int("threads", 3, "concurrent threads per history")
		ops     = flag.Int("ops", 8, "operations per thread per history")
		ring    = flag.Int("ring", 2, "LCRQ ring order (tiny stresses segment churn)")
		seed    = flag.Uint64("seed", 1, "base RNG seed")
		verbose = flag.Bool("v", false, "print progress per queue")
	)
	flag.Parse()

	names := queues.Names()
	if *queue != "" {
		names = []string{*queue}
	}
	exit := 0
	for _, name := range names {
		start := time.Now()
		bad, err := campaign(name, *rounds, *threads, *ops, *ring, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linearcheck: %s: %v\n", name, err)
			exit = 1
			continue
		}
		if bad >= 0 {
			fmt.Printf("%-10s FAIL: round %d produced a non-linearizable history\n", name, bad)
			exit = 1
			continue
		}
		if *verbose {
			fmt.Printf("%-10s ok: %d histories (%d threads × %d ops) in %v\n",
				name, *rounds, *threads, *ops, time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Printf("%-10s ok (%d histories)\n", name, *rounds)
		}
	}
	os.Exit(exit)
}

// campaign returns the failing round index, or -1 if all rounds pass.
func campaign(name string, rounds, threads, opsEach, ring int, seed uint64) (int, error) {
	for round := 0; round < rounds; round++ {
		q, err := queues.New(name, queues.Config{
			RingOrder: ring, Clusters: 2, Threads: threads,
		})
		if err != nil {
			return -1, err
		}
		rec := linearize.NewRecorder(threads)
		var wg sync.WaitGroup
		var nextVal atomic.Uint64
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				h := q.NewHandle(th, th%2)
				defer h.Release()
				rng := xrand.New(seed + uint64(round*threads+th))
				for i := 0; i < opsEach; i++ {
					if rng.Uintn(2) == 0 {
						v := nextVal.Add(1)
						inv := rec.Now()
						h.Enqueue(v)
						ret := rec.Now()
						rec.Append(th, linearize.Op{
							Kind: linearize.Enq, Value: v, Invoke: inv, Return: ret,
						})
					} else {
						inv := rec.Now()
						v, ok := h.Dequeue()
						ret := rec.Now()
						rec.Append(th, linearize.Op{
							Kind: linearize.Deq, Value: v, OK: ok, Invoke: inv, Return: ret,
						})
					}
				}
			}(th)
		}
		wg.Wait()
		if !linearize.Check(rec.History()) {
			return round, nil
		}
	}
	return -1, nil
}
