// Command modelcheck runs the bounded model checker over the CRQ protocol:
// it exhaustively explores thread interleavings of a small configuration
// and verifies every execution's history for linearizability (see
// internal/model).
//
// Usage:
//
//	modelcheck                          # default: 1 enqueuer vs 1 dequeuer
//	modelcheck -enqs 2 -deqs 2 -ops 1   # wider configuration
//	modelcheck -mutate empty -ops 2     # demonstrate a protocol-bug catch
//	modelcheck -fuel 120 -max 2000000   # adjust search bounds
//
// Note that catching a mutation needs a configuration wide enough to
// express the failure (e.g. the empty-transition bug needs a second
// dequeue to observe the lost item: -ops 2). The safe-bit mutation needs a
// three-thread ~30-step window; see internal/model's directed tests.
//
// Exit status is nonzero if a violation is found (which, for -mutate
// configurations, is the expected outcome).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lcrq/internal/model"
)

func main() {
	var (
		enqs   = flag.Int("enqs", 1, "number of enqueuer threads")
		deqs   = flag.Int("deqs", 1, "number of dequeuer threads")
		ops    = flag.Int("ops", 1, "operations per thread")
		ring   = flag.Int("ring", 1, "ring order (log2 cells)")
		fuel   = flag.Int("fuel", 80, "max steps per execution path")
		max    = flag.Int("max", 1<<20, "max executions to check")
		mutate = flag.String("mutate", "", "protocol mutation: safe, idx, empty (default: faithful)")
	)
	flag.Parse()

	var mutation model.Mutation
	switch *mutate {
	case "":
		mutation = model.NoMutation
	case "safe":
		mutation = model.MutateSkipSafeCheck
	case "idx":
		mutation = model.MutateSkipIdxCheck
	case "empty":
		mutation = model.MutateNoEmptyTransition
	default:
		fmt.Fprintf(os.Stderr, "modelcheck: unknown mutation %q (have safe, idx, empty)\n", *mutate)
		os.Exit(2)
	}

	var threads [][]model.Op
	val := uint64(1)
	for e := 0; e < *enqs; e++ {
		var seq []model.Op
		for i := 0; i < *ops; i++ {
			seq = append(seq, model.Op{Enqueue: true, Value: val})
			val++
		}
		threads = append(threads, seq)
	}
	for d := 0; d < *deqs; d++ {
		var seq []model.Op
		for i := 0; i < *ops; i++ {
			seq = append(seq, model.Op{})
		}
		threads = append(threads, seq)
	}

	cfg := model.Config{
		RingOrder:     *ring,
		Threads:       threads,
		Fuel:          *fuel,
		MaxExecutions: *max,
		Mutation:      mutation,
	}
	fmt.Printf("exploring: %d enqueuers × %d + %d dequeuers × %d ops, R=2^%d, fuel=%d",
		*enqs, *ops, *deqs, *ops, *ring, *fuel)
	if mutation != model.NoMutation {
		fmt.Printf(", mutation=%s", *mutate)
	}
	fmt.Println()

	start := time.Now()
	res := model.Explore(cfg)
	elapsed := time.Since(start).Round(time.Millisecond)

	fmt.Printf("executions checked: %d (pruned %d, capped=%v) in %v\n",
		res.Executions, res.Pruned, res.Capped, elapsed)
	if res.Violation != "" {
		fmt.Printf("VIOLATION: %s\n", res.Violation)
		os.Exit(1)
	}
	fmt.Println("no violations within the explored bound")
}
