// Command qload is the end-to-end driver for qserve: it builds load, sweeps
// configurations, injects the faults a queue service actually meets, and
// emits a committed perf-trajectory artifact.
//
//	qload -qserve ./bin/qserve                      # full sweep + faults
//	qload -qserve ./bin/qserve -duration 300ms      # CI smoke
//	qload -qserve ./bin/qserve -baseline BENCH_e2e.json -out BENCH_e2e.json
//
// Per sweep cell (clients × batch × capacity) qload spawns a fresh qserve
// process, drives producers and consumers over real HTTP through
// internal/resilience/client, and records enqueue RTT p50/p99 and
// throughput. Then three fault scenarios run, each against its own server:
//
//   - killed connections: enqueues flow through a TCP proxy that murders
//     connections mid-exchange; ambiguous batches are settled afterwards by
//     resending their idempotency keys, and the accounting must come out
//     exactly-once;
//   - slow consumer: a bounded queue with no consumers must trip the
//     watchdog's capacity-stall, shed with 429 + X-Load-Shed before the hot
//     path, and recover (watchdog-recover in /statsz) once consumers return;
//   - mid-sweep SIGTERM: the process is signaled with RPCs in flight; every
//     value confirmed accepted must be delivered exactly once, a probe
//     after the first drain rejection must not be accepted, and the process
//     must exit 0.
//
// The artifact (-out) carries build metadata (commit, GOMAXPROCS,
// timestamp) so successive runs form a comparable trajectory; -baseline
// compares cell-by-cell and fails the run when enqueue p99 regresses more
// than 2x against the committed artifact (cells faster than 2ms are exempt
// — at that scale the number is scheduler noise, not a trajectory).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"lcrq/internal/buildmeta"
)

type cellSpec struct {
	Clients  int
	Batch    int
	Capacity int64
}

func (c cellSpec) name() string {
	return fmt.Sprintf("c%db%dcap%d", c.Clients, c.Batch, c.Capacity)
}

type report struct {
	Meta   buildmeta.Meta `json:"meta"`
	Cells  []cellResult   `json:"cells"`
	Trace  *traceResult   `json:"trace,omitempty"`
	Faults faultResults   `json:"faults"`
	Pass   bool           `json:"pass"`
}

type faultResults struct {
	KilledConnections *killResult  `json:"killed_connections,omitempty"`
	SlowConsumer      *shedResult  `json:"slow_consumer,omitempty"`
	SigtermDrain      *drainResult `json:"sigterm_drain,omitempty"`
}

func main() {
	var (
		qservePath  = flag.String("qserve", "./bin/qserve", "path to the qserve binary to drive")
		out         = flag.String("out", "", "write the e2e artifact (BENCH_e2e.json shape) here")
		baseline    = flag.String("baseline", "", "compare enqueue p99 per cell against this artifact; fail on >2x regression")
		duration    = flag.Duration("duration", 2*time.Second, "measured load per sweep cell")
		cellsFlag   = flag.String("cells", "2x16x0,4x64x0,4x64x4096", "sweep cells as clientsXbatchXcapacity, comma-separated")
		skipFaults  = flag.Bool("skip-faults", false, "run only the throughput sweep and trace probe")
		traceProbes = flag.Int("trace-probes", 16, "traced requests for the span-decomposition check")
	)
	flag.Parse()

	cells, err := parseCells(*cellsFlag)
	if err != nil {
		fatalf("bad -cells: %v", err)
	}
	if _, err := os.Stat(*qservePath); err != nil {
		fatalf("qserve binary: %v (build it first: go build -o bin/qserve ./cmd/qserve)", err)
	}

	rep := report{Meta: buildmeta.Collect(), Pass: true}
	fmt.Printf("qload: driving %s (commit %s, GOMAXPROCS %d)\n",
		*qservePath, rep.Meta.Commit, runtime.GOMAXPROCS(0))

	for _, spec := range cells {
		fmt.Printf("cell %-16s ", spec.name())
		res, err := runCell(*qservePath, spec, *duration)
		if err != nil {
			fatalf("cell %s: %v", spec.name(), err)
		}
		fmt.Printf("%10.0f items/s  p50 %6.2fms  p99 %6.2fms  (%d items, %d retries)\n",
			res.ThroughputPerSec, res.EnqueueP50Ms, res.EnqueueP99Ms, res.Items, res.Retries)
		rep.Cells = append(rep.Cells, res)
	}

	fmt.Println("trace: cross-layer span decomposition")
	tr, err := runTraceProbe(*qservePath, *traceProbes)
	if err != nil {
		fatalf("trace probe: %v", err)
	}
	rep.Trace = tr
	fmt.Printf("  %d probes, max span gap %.2f%%; sojourn p50 %.3fms p99 %.3fms; exemplar rtt %.2fms = backoff %.2f + shed %.2f + residency %.2f + delivery %.2f\n",
		tr.Probes, tr.MaxGapPct, tr.SojournP50Ms, tr.SojournP99Ms,
		tr.Exemplar.RTTMs, tr.Exemplar.ClientBackoffMs, tr.Exemplar.ShedWaitMs,
		tr.Exemplar.QueueResidencyMs, tr.Exemplar.DeliveryMs)
	if tr.MaxGapPct > 5.0 || !tr.PrometheusSojourn || tr.SojournP99Ms <= 0 {
		fmt.Println("  FAIL: span decomposition did not account for the RTT, or sojourn missing from an export")
		rep.Pass = false
	}

	if !*skipFaults {
		fmt.Println("fault: killed connections")
		kr, err := runKilledConnections(*qservePath, *duration)
		if err != nil {
			fatalf("killed connections: %v", err)
		}
		rep.Faults.KilledConnections = kr
		fmt.Printf("  %d kills over %d batches, %d ambiguous settled by key; accepted %d = delivered %d, duplicates %d\n",
			kr.Kills, kr.Batches, kr.Resolved, kr.Accepted, kr.Delivered, kr.Duplicates)
		if kr.Lost != 0 || kr.Duplicates != 0 {
			fmt.Println("  FAIL: accepted items lost or duplicated")
			rep.Pass = false
		}

		fmt.Println("fault: slow consumer (shed + recover)")
		sr, err := runSlowConsumer(*qservePath)
		if err != nil {
			fatalf("slow consumer: %v", err)
		}
		rep.Faults.SlowConsumer = sr
		fmt.Printf("  shed 429 after %.0fms (X-Load-Shed %v), recovered %.0fms after consumers returned (%d watchdog recovers)\n",
			sr.ShedAfterMs, sr.ShedHeader, sr.RecoverMs, sr.WatchdogRecovers)
		if !sr.ShedHeader || sr.WatchdogRecovers == 0 {
			fmt.Println("  FAIL: shed or recovery not observed")
			rep.Pass = false
		}

		fmt.Println("fault: SIGTERM mid-traffic (graceful drain)")
		dr, err := runSigtermDrain(*qservePath)
		if err != nil {
			fatalf("sigterm drain: %v", err)
		}
		rep.Faults.SigtermDrain = dr
		fmt.Printf("  accepted %d, delivered %d (unknown-outcome batches: %d), post-drain accepts %d, exit %d\n",
			dr.Accepted, dr.Delivered, dr.Unknown, dr.PostDrainAccepts, dr.ExitCode)
		if dr.Lost != 0 || dr.Duplicates != 0 || dr.Phantoms != 0 || dr.PostDrainAccepts != 0 || dr.ExitCode != 0 {
			fmt.Println("  FAIL: drain contract violated")
			rep.Pass = false
		}
	}

	if *baseline != "" {
		if msgs := compareBaseline(*baseline, rep.Cells); len(msgs) > 0 {
			for _, m := range msgs {
				fmt.Println("regression:", m)
			}
			rep.Pass = false
		} else {
			fmt.Println("baseline: enqueue p99 within 2x on every comparable cell")
		}
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("-out: %v", err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatalf("-out: %v", err)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *out)
	}
	if !rep.Pass {
		os.Exit(1)
	}
}

func parseCells(s string) ([]cellSpec, error) {
	var cells []cellSpec
	for _, part := range strings.Split(s, ",") {
		dims := strings.Split(strings.TrimSpace(part), "x")
		if len(dims) != 3 {
			return nil, fmt.Errorf("%q: want clientsXbatchXcapacity", part)
		}
		clients, err1 := strconv.Atoi(dims[0])
		batch, err2 := strconv.Atoi(dims[1])
		capacity, err3 := strconv.ParseInt(dims[2], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || clients <= 0 || batch <= 0 || capacity < 0 {
			return nil, fmt.Errorf("%q: bad dimensions", part)
		}
		cells = append(cells, cellSpec{Clients: clients, Batch: batch, Capacity: capacity})
	}
	return cells, nil
}

// compareBaseline returns one message per regressed cell: same name, new
// p99 more than 2x the committed p99, and the new p99 slow enough (>2ms)
// that the ratio means something on a noisy runner.
func compareBaseline(path string, cells []cellResult) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("baseline unreadable: %v", err)}
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return []string{fmt.Sprintf("baseline unparsable: %v", err)}
	}
	byName := make(map[string]cellResult, len(base.Cells))
	for _, c := range base.Cells {
		byName[c.Name] = c
	}
	var msgs []string
	for _, c := range cells {
		b, ok := byName[c.Name]
		if !ok || b.EnqueueP99Ms <= 0 {
			continue
		}
		if c.EnqueueP99Ms > 2*b.EnqueueP99Ms && c.EnqueueP99Ms > 2.0 {
			msgs = append(msgs, fmt.Sprintf("cell %s: enqueue p99 %.2fms vs baseline %.2fms (>2x)",
				c.Name, c.EnqueueP99Ms, b.EnqueueP99Ms))
		}
	}
	return msgs
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "qload: "+format+"\n", args...)
	os.Exit(1)
}
