package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"lcrq"
	"lcrq/internal/resilience"
	"lcrq/internal/resilience/client"
)

// traceSpan is one traced request's end-to-end decomposition. The four span
// fields partition the measured RTT by construction:
//
//	rtt = client_backoff + shed_wait + queue_residency + delivery
//
// client_backoff is time the client library slept between retry attempts;
// shed_wait is the rest of the pre-deposit interval (wire transit plus
// server admission — attempts the server turned away live here);
// queue_residency is from the enqueue's response back to the server-side
// dequeue claim (the item's wait for a consumer, anchored by the stamped
// sojourn); delivery is from that claim to the dequeue response landing at
// the client. All clocks are one machine's, so the anchoring needs no skew
// correction — only a clamp at the enqueue-response edge, reported as gap.
type traceSpan struct {
	TraceID          string  `json:"trace_id"`
	RTTMs            float64 `json:"rtt_ms"`
	ClientBackoffMs  float64 `json:"client_backoff_ms"`
	ShedWaitMs       float64 `json:"shed_wait_ms"`
	QueueResidencyMs float64 `json:"queue_residency_ms"`
	DeliveryMs       float64 `json:"delivery_ms"`
	SojournNs        int64   `json:"sojourn_ns"` // server-side stamp, informational
	GapPct           float64 `json:"gap_pct"`    // |sum of spans − rtt| / rtt, percent
}

// traceResult is the artifact block for the traced-probe phase.
type traceResult struct {
	Probes            int       `json:"probes"`
	MaxGapPct         float64   `json:"max_gap_pct"`
	SojournP50Ms      float64   `json:"sojourn_p50_ms"` // server /statsz sojourn quantiles
	SojournP99Ms      float64   `json:"sojourn_p99_ms"`
	PrometheusSojourn bool      `json:"prometheus_sojourn"` // lcrq_sojourn_seconds present on /metrics
	Exemplar          traceSpan `json:"exemplar"`
}

// runTraceProbe drives traced requests through a fresh server and verifies
// the cross-layer decomposition: each probe's RTT must be fully attributed
// to the four spans, and the server must surface the sojourn distribution
// on both /statsz and /metrics.
func runTraceProbe(qservePath string, probes int) (*traceResult, error) {
	p, err := spawnQserve(qservePath, 0)
	if err != nil {
		return nil, err
	}
	defer p.kill()

	ctx := context.Background()
	prod := client.New(client.Config{BaseURL: p.base})
	cons := client.New(client.Config{BaseURL: p.base})
	res := &traceResult{Probes: probes}

	for i := 0; i < probes; i++ {
		id := lcrq.NewTraceID()
		want := resilience.FormatTraceID(id)
		t0 := time.Now()
		n, sp, err := prod.EnqueueTraced(ctx, "", []uint64{uint64(i) + 1}, time.Second, id)
		t1 := time.Now()
		if err != nil || n != 1 {
			return nil, fmt.Errorf("probe %d enqueue: n=%d %w", i, n, err)
		}

		// Consume until this probe's trace comes back (the queue is private
		// to the probe, so the first non-empty dequeue has it).
		var hit *resilience.WireTrace
		var t2 time.Time
		for deadline := time.Now().Add(5 * time.Second); hit == nil; {
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("probe %d: trace %s never delivered", i, want)
			}
			_, traces, _, err := cons.DequeueTraced(ctx, 8, 250*time.Millisecond)
			t2 = time.Now()
			if err != nil {
				return nil, fmt.Errorf("probe %d dequeue: %w", i, err)
			}
			for j := range traces {
				if traces[j].ID == want {
					hit = &traces[j]
				}
			}
		}

		span := decompose(want, t0, t1, t2, sp, hit)
		if span.GapPct > res.MaxGapPct {
			res.MaxGapPct = span.GapPct
		}
		if i == 0 {
			res.Exemplar = span
		}
	}

	// The sojourn distribution the probes produced must be visible on both
	// observability surfaces.
	var stats struct {
		Sojourn struct {
			Samples uint64 `json:"samples"`
			P50Ns   int64  `json:"p50_ns"`
			P99Ns   int64  `json:"p99_ns"`
		} `json:"sojourn"`
	}
	resp, err := http.Get(p.base + "/statsz")
	if err != nil {
		return nil, err
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("/statsz: %w", err)
	}
	if stats.Sojourn.Samples < uint64(probes) {
		return nil, fmt.Errorf("sojourn samples = %d on /statsz, want >= %d", stats.Sojourn.Samples, probes)
	}
	res.SojournP50Ms = float64(stats.Sojourn.P50Ns) / 1e6
	res.SojournP99Ms = float64(stats.Sojourn.P99Ns) / 1e6

	resp, err = http.Get(p.base + "/metrics")
	if err != nil {
		return nil, err
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	res.PrometheusSojourn = strings.Contains(string(prom), "lcrq_sojourn_seconds")
	return res, nil
}

// decompose attributes one probe's RTT to the four spans. The server-side
// claim instant is anchored as enqueue-stamp + sojourn; the residency span
// is clamped at the enqueue-response edge (the stamp lands a hair before
// the response returns), and whatever the clamp absorbed is the reported
// gap — with one clock, that gap is measurement resolution, not drift.
func decompose(id string, t0, t1, t2 time.Time, sp client.Spans, hit *resilience.WireTrace) traceSpan {
	rtt := t2.Sub(t0)
	backoff := sp.Backoff
	shedWait := t1.Sub(t0) - backoff
	claim := time.Unix(0, hit.EnqueuedAtUnixNs+hit.SojournNs)
	residency := claim.Sub(t1)
	var gap time.Duration
	if residency < 0 {
		gap = -residency
		residency = 0
	}
	delivery := t2.Sub(t1) - residency

	s := traceSpan{
		TraceID:          id,
		RTTMs:            float64(rtt.Nanoseconds()) / 1e6,
		ClientBackoffMs:  float64(backoff.Nanoseconds()) / 1e6,
		ShedWaitMs:       float64(shedWait.Nanoseconds()) / 1e6,
		QueueResidencyMs: float64(residency.Nanoseconds()) / 1e6,
		DeliveryMs:       float64(delivery.Nanoseconds()) / 1e6,
		SojournNs:        hit.SojournNs,
	}
	if rtt > 0 {
		s.GapPct = 100 * float64(gap.Nanoseconds()) / float64(rtt.Nanoseconds())
	}
	return s
}
