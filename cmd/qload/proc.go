package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os/exec"
	"syscall"
	"time"
)

// proc is one spawned qserve process under test.
type proc struct {
	cmd    *exec.Cmd
	addr   string // host:port
	base   string // http://host:port
	stderr bytes.Buffer
}

// spawnQserve starts the binary on a fresh loopback port and waits for
// /healthz to answer 200.
func spawnQserve(path string, capacity int64, extra ...string) (*proc, error) {
	addr, err := freeAddr()
	if err != nil {
		return nil, err
	}
	args := []string{
		"-addr", addr,
		"-capacity", fmt.Sprint(capacity),
		"-quiet",
	}
	args = append(args, extra...)
	p := &proc{cmd: exec.Command(path, args...), addr: addr, base: "http://" + addr}
	p.cmd.Stderr = &p.stderr
	if err := p.cmd.Start(); err != nil {
		return nil, fmt.Errorf("start qserve: %w", err)
	}
	if err := p.waitHealthy(10 * time.Second); err != nil {
		p.kill()
		return nil, err
	}
	return p, nil
}

func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := l.Addr().String()
	l.Close()
	return addr, nil
}

func (p *proc) waitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(p.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("qserve on %s never became healthy; stderr:\n%s", p.addr, p.stderr.String())
}

// terminate sends SIGTERM (the graceful-drain signal) and returns.
func (p *proc) terminate() error {
	return p.cmd.Process.Signal(syscall.SIGTERM)
}

// waitExit blocks for process exit and returns its exit code.
func (p *proc) waitExit(timeout time.Duration) (int, error) {
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0, nil
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode(), nil
		}
		return -1, err
	case <-time.After(timeout):
		p.kill()
		return -1, fmt.Errorf("qserve did not exit within %v of SIGTERM; stderr:\n%s", timeout, p.stderr.String())
	}
}

// kill is the ungraceful cleanup for scenarios that end with the server
// still up.
func (p *proc) kill() {
	_ = p.cmd.Process.Kill()
	_, _ = p.cmd.Process.Wait()
}
