package main

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lcrq/internal/resilience/client"
)

type cellResult struct {
	Name             string  `json:"name"`
	Clients          int     `json:"clients"`
	Batch            int     `json:"batch"`
	Capacity         int64   `json:"capacity"`
	DurationMs       int64   `json:"duration_ms"`
	Items            uint64  `json:"items"`
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	EnqueueP50Ms     float64 `json:"enqueue_p50_ms"`
	EnqueueP99Ms     float64 `json:"enqueue_p99_ms"`
	Retries          uint64  `json:"retries"`
}

// runCell drives one sweep cell against a fresh server: Clients producers
// and Clients consumers for the configured duration, measuring the RTT of
// every successful enqueue batch.
func runCell(qservePath string, spec cellSpec, dur time.Duration) (cellResult, error) {
	p, err := spawnQserve(qservePath, spec.Capacity)
	if err != nil {
		return cellResult{}, err
	}
	defer p.kill()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		rtts    []time.Duration
		items   atomic.Uint64
		retries atomic.Uint64
		errOnce atomic.Pointer[error]
	)
	stopProduce := make(chan struct{})
	fail := func(err error) {
		errOnce.CompareAndSwap(nil, &err)
		cancel()
	}

	for i := 0; i < spec.Clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := client.New(client.Config{BaseURL: p.base})
			defer func() { retries.Add(cl.Retries.Load()) }()
			next := uint64(id+1) << 40
			batch := make([]uint64, spec.Batch)
			var local []time.Duration
			defer func() {
				mu.Lock()
				rtts = append(rtts, local...)
				mu.Unlock()
			}()
			for {
				select {
				case <-stopProduce:
					return
				case <-ctx.Done():
					return
				default:
				}
				for j := range batch {
					batch[j] = next + uint64(j)
				}
				t0 := time.Now()
				n, err := cl.Enqueue(ctx, batch, time.Second)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					var apiErr *client.APIError
					if errors.As(err, &apiErr) || errors.Is(err, client.ErrBudgetExhausted) {
						// Backpressure (429 beyond the attempt cap, budget
						// dry): expected on bounded cells; yield and go on.
						time.Sleep(time.Millisecond)
						continue
					}
					fail(fmt.Errorf("producer %d: %w", id, err))
					return
				}
				local = append(local, time.Since(t0))
				items.Add(uint64(n))
				next += uint64(n)
			}
		}(i)
	}

	for i := 0; i < spec.Clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := client.New(client.Config{BaseURL: p.base})
			for ctx.Err() == nil {
				_, err := cl.Dequeue(ctx, spec.Batch, 50*time.Millisecond)
				if err != nil && ctx.Err() == nil {
					var apiErr *client.APIError
					if errors.As(err, &apiErr) && apiErr.Retryable() {
						continue // empty long-poll beyond the attempt cap
					}
					if errors.Is(err, client.ErrBudgetExhausted) {
						continue
					}
					fail(fmt.Errorf("consumer %d: %w", id, err))
					return
				}
			}
		}(i)
	}

	start := time.Now()
	time.Sleep(dur)
	close(stopProduce)
	elapsed := time.Since(start)
	time.Sleep(50 * time.Millisecond) // let consumers absorb the tail
	cancel()
	wg.Wait()
	if ep := errOnce.Load(); ep != nil {
		return cellResult{}, *ep
	}

	res := cellResult{
		Name:       spec.name(),
		Clients:    spec.Clients,
		Batch:      spec.Batch,
		Capacity:   spec.Capacity,
		DurationMs: elapsed.Milliseconds(),
		Items:      items.Load(),
		Retries:    retries.Load(),
	}
	res.ThroughputPerSec = float64(res.Items) / elapsed.Seconds()
	if len(rtts) > 0 {
		sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
		res.EnqueueP50Ms = float64(rtts[len(rtts)/2].Microseconds()) / 1000
		res.EnqueueP99Ms = float64(rtts[len(rtts)*99/100].Microseconds()) / 1000
	}
	return res, nil
}
