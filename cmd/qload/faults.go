package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"lcrq/internal/resilience"
	"lcrq/internal/resilience/client"
)

// batchRecord tracks one keyed batch's ground truth: which values the
// server confirmed holding. accepted < 0 means the outcome is unknown (the
// connection died before an answer) until the key is settled.
type batchRecord struct {
	key      string
	values   []uint64
	accepted int
}

type killResult struct {
	Kills      uint64 `json:"kills"`
	Batches    int    `json:"batches"`
	Resolved   int    `json:"resolved"`
	Accepted   uint64 `json:"accepted"`
	Delivered  uint64 `json:"delivered"`
	Duplicates uint64 `json:"duplicates"`
	Lost       uint64 `json:"lost"`
	Phantoms   uint64 `json:"phantoms"`
}

// runKilledConnections drives enqueues through the killer proxy, then
// settles every ambiguous batch by resending its idempotency key directly,
// and checks the books: every confirmed value delivered exactly once.
func runKilledConnections(qservePath string, dur time.Duration) (*killResult, error) {
	p, err := spawnQserve(qservePath, 0)
	if err != nil {
		return nil, err
	}
	defer p.kill()
	proxy, err := newKillerProxy(p.addr, 0.3)
	if err != nil {
		return nil, err
	}
	defer proxy.close()
	proxy.arm()

	const producers, batch = 2, 16
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		batches []*batchRecord
	)
	stop := make(chan struct{})
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Few attempts and tiny backoff: the point is to produce
			// unresolved batches, not to hide the kills behind retries.
			// Keep-alives off so every request is a fresh connection and
			// gets a fresh roll of the proxy's kill die.
			cl := client.New(client.Config{
				BaseURL:     "http://" + proxy.addr(),
				MaxAttempts: 2,
				BackoffMin:  time.Millisecond,
				BackoffMax:  4 * time.Millisecond,
				HTTPClient: &http.Client{
					Timeout:   2 * time.Second,
					Transport: &http.Transport{DisableKeepAlives: true},
				},
			})
			next := uint64(id+1) << 40
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				rec := &batchRecord{
					key:      fmt.Sprintf("kc-p%d-%d", id, seq),
					values:   make([]uint64, batch),
					accepted: -1,
				}
				for j := range rec.values {
					rec.values[j] = next + uint64(j)
				}
				next += batch
				n, err := cl.EnqueueKeyed(ctx, rec.key, rec.values, 0)
				if err == nil {
					rec.accepted = n
				}
				// Any error — transport kill, budget, 429 past the cap —
				// leaves the batch unknown; the settle pass decides it.
				mu.Lock()
				batches = append(batches, rec)
				mu.Unlock()
			}
		}(i)
	}

	delivered := make(map[uint64]int)
	var cwg sync.WaitGroup
	consumeCtx, consumeCancel := context.WithCancel(context.Background())
	defer consumeCancel()
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		cl := client.New(client.Config{BaseURL: p.base})
		for consumeCtx.Err() == nil {
			vs, err := cl.Dequeue(consumeCtx, 64, 20*time.Millisecond)
			if err != nil {
				continue // empty polls and budget denials: keep draining
			}
			mu.Lock()
			for _, v := range vs {
				delivered[v]++
			}
			mu.Unlock()
		}
	}()

	time.Sleep(dur)
	close(stop)
	wg.Wait()
	proxy.disarm()

	// Settle: resend every unknown key directly (no proxy). The server's
	// dedup answers with the recorded outcome for keys that did land; for
	// keys that never arrived this is the first delivery. Either way the
	// books close.
	res := &killResult{Kills: proxy.kills.Load(), Batches: len(batches)}
	settle := client.New(client.Config{BaseURL: p.base, MaxAttempts: 8})
	for _, rec := range batches {
		if rec.accepted >= 0 {
			continue
		}
		n, err := settle.EnqueueKeyed(context.Background(), rec.key, rec.values, time.Second)
		if err != nil {
			return nil, fmt.Errorf("settling %s: %w", rec.key, err)
		}
		rec.accepted = n
		res.Resolved++
	}
	var expect uint64
	for _, rec := range batches {
		expect += uint64(rec.accepted)
	}

	// Let the consumer catch up to the confirmed total, then stop it.
	deadline := time.Now().Add(15 * time.Second)
	for {
		mu.Lock()
		got := uint64(0)
		for _, n := range delivered {
			got += uint64(n)
		}
		mu.Unlock()
		if got >= expect || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	consumeCancel()
	cwg.Wait()

	mu.Lock()
	defer mu.Unlock()
	seen := make(map[uint64]bool)
	for _, rec := range batches {
		for i, v := range rec.values {
			seen[v] = true
			want := 0
			if i < rec.accepted {
				want = 1
			}
			switch {
			case want == 1 && delivered[v] == 0:
				res.Lost++
			case delivered[v] > want:
				res.Duplicates++
			}
			if want == 1 {
				res.Accepted++
			}
		}
	}
	for v, n := range delivered {
		res.Delivered += uint64(n)
		if !seen[v] {
			res.Phantoms++
		}
	}
	if res.Phantoms > 0 {
		res.Lost += res.Phantoms // phantoms mean the books are wrong either way
	}
	return res, nil
}

type shedResult struct {
	ShedAfterMs      float64 `json:"shed_after_ms"`
	ShedHeader       bool    `json:"shed_header"`
	RecoverMs        float64 `json:"recover_ms"`
	WatchdogRecovers uint64  `json:"watchdog_recovers"`
}

// runSlowConsumer pins a small bounded queue at capacity with nobody
// consuming: the watchdog must flag capacity-stall, the shedder must turn
// enqueues into pre-hot-path 429s (X-Load-Shed: 1), and once consumers
// return the whole stack must recover, leaving a watchdog-recover event.
func runSlowConsumer(qservePath string) (*shedResult, error) {
	p, err := spawnQserve(qservePath, 64, "-watchdog", "10ms", "-health-poll", "5ms")
	if err != nil {
		return nil, err
	}
	defer p.kill()

	post := func(path string, body any) (*http.Response, []byte, error) {
		b, _ := json.Marshal(body)
		resp, err := http.Post(p.base+path, "application/json", bytes.NewReader(b))
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp, data, nil
	}

	// Fill to the brim.
	fill := make([]uint64, 64)
	for i := range fill {
		fill[i] = uint64(i + 1)
	}
	if _, _, err := post("/v1/enqueue", resilience.EnqueueRequest{Values: fill}); err != nil {
		return nil, err
	}

	// Hammer until the shed answer arrives (not just "full": the header
	// proves the admission controller rejected before the hot path).
	res := &shedResult{}
	start := time.Now()
	deadline := start.Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("shedder never opened; stderr:\n%s", p.stderr.String())
		}
		resp, _, err := post("/v1/enqueue", resilience.EnqueueRequest{Values: []uint64{99}})
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("X-Load-Shed") == "1" {
			res.ShedAfterMs = float64(time.Since(start).Microseconds()) / 1000
			res.ShedHeader = true
			if resp.Header.Get("Retry-After") == "" {
				return nil, errors.New("shed 429 carried no Retry-After")
			}
			break
		}
		time.Sleep(500 * time.Microsecond)
	}

	// Consumers return: drain everything, then wait for admission to close.
	recoverStart := time.Now()
	for {
		resp, data, err := post("/v1/dequeue", resilience.DequeueRequest{Max: 64})
		if err != nil {
			return nil, err
		}
		var out resilience.DequeueResponse
		if resp.StatusCode != http.StatusOK || json.Unmarshal(data, &out) != nil || len(out.Values) == 0 {
			break
		}
	}
	for {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("shedder never closed; stderr:\n%s", p.stderr.String())
		}
		stats, err := statsz(p.base)
		if err != nil {
			return nil, err
		}
		res.WatchdogRecovers = stats.RingEvents["watchdog-recover"]
		if !stats.Shed.Shedding {
			res.RecoverMs = float64(time.Since(recoverStart).Microseconds()) / 1000
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if res.WatchdogRecovers == 0 {
		// The recover event may land a tick after the shedder closes.
		for i := 0; i < 100 && res.WatchdogRecovers == 0; i++ {
			time.Sleep(5 * time.Millisecond)
			stats, err := statsz(p.base)
			if err != nil {
				return nil, err
			}
			res.WatchdogRecovers = stats.RingEvents["watchdog-recover"]
		}
	}
	return res, nil
}

type statszBody struct {
	State string `json:"state"`
	Shed  struct {
		Shedding bool
		Verdict  string
	} `json:"shed"`
	RingEvents map[string]uint64 `json:"ring_events"`
}

func statsz(base string) (*statszBody, error) {
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out statszBody
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

type drainResult struct {
	Accepted         uint64  `json:"accepted"`
	Delivered        uint64  `json:"delivered"`
	Unknown          int     `json:"unknown_batches"`
	Duplicates       uint64  `json:"duplicates"`
	Lost             uint64  `json:"lost"`
	Phantoms         uint64  `json:"phantoms"`
	PostDrainAccepts uint64  `json:"post_drain_accepts"`
	ExitCode         int     `json:"exit_code"`
	DrainMs          float64 `json:"drain_ms"`
}

// runSigtermDrain signals a loaded server and audits the drain contract:
// everything confirmed accepted is delivered exactly once, an enqueue
// probe after the first drain rejection is refused, and the process exits
// cleanly.
func runSigtermDrain(qservePath string) (*drainResult, error) {
	p, err := spawnQserve(qservePath, 256, "-drain-deadline", "20s")
	if err != nil {
		return nil, err
	}
	defer p.kill()

	const producers, consumers, batch = 3, 3, 16
	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		batches   []*batchRecord
		delivered = make(map[uint64]int)
		probed    atomic.Bool
		postDrain atomic.Uint64
		res       = &drainResult{}
	)

	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl := client.New(client.Config{
				BaseURL:     p.base,
				MaxAttempts: 1, // ambiguity accounting wants raw outcomes
				HTTPClient:  &http.Client{Timeout: 5 * time.Second},
			})
			next := uint64(id+1) << 40
			for seq := 0; ; seq++ {
				rec := &batchRecord{
					key:      fmt.Sprintf("st-p%d-%d", id, seq),
					values:   make([]uint64, batch),
					accepted: -1,
				}
				for j := range rec.values {
					rec.values[j] = next + uint64(j)
				}
				next += batch
				n, err := cl.EnqueueKeyed(context.Background(), rec.key, rec.values, 50*time.Millisecond)
				switch {
				case err == nil:
					rec.accepted = n
				default:
					var apiErr *client.APIError
					if errors.As(err, &apiErr) {
						switch apiErr.Status {
						case http.StatusTooManyRequests:
							rec.accepted = n // full: the leading n are in
							mu.Lock()
							batches = append(batches, rec)
							mu.Unlock()
							time.Sleep(time.Millisecond)
							continue
						case http.StatusServiceUnavailable:
							// Draining. A partial accept before the drain cut
							// the wait short still counts.
							rec.accepted = n
							mu.Lock()
							batches = append(batches, rec)
							mu.Unlock()
							// The post-drain probe: one more enqueue, which
							// must NOT be accepted.
							if probed.CompareAndSwap(false, true) {
								pn, perr := cl.Enqueue(context.Background(), []uint64{^uint64(id + 1)}, 0)
								if perr == nil && pn > 0 {
									postDrain.Add(uint64(pn))
								}
							}
							return
						}
					}
					// Transport failure or other ambiguity: outcome unknown.
					mu.Lock()
					batches = append(batches, rec)
					mu.Unlock()
					return
				}
				mu.Lock()
				batches = append(batches, rec)
				mu.Unlock()
			}
		}(i)
	}

	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := client.New(client.Config{
				BaseURL:     p.base,
				MaxAttempts: 1,
				HTTPClient:  &http.Client{Timeout: 5 * time.Second},
			})
			for {
				vs, err := cl.Dequeue(context.Background(), 32, 50*time.Millisecond)
				if err != nil {
					var apiErr *client.APIError
					if errors.As(err, &apiErr) {
						if apiErr.Status == http.StatusServiceUnavailable {
							return // closed and drained: terminal
						}
						continue // 504 empty poll: keep going through the drain
					}
					return // transport: the listener is gone
				}
				mu.Lock()
				for _, v := range vs {
					delivered[v]++
				}
				mu.Unlock()
			}
		}()
	}

	time.Sleep(500 * time.Millisecond)
	termAt := time.Now()
	if err := p.terminate(); err != nil {
		return nil, err
	}
	wg.Wait()
	code, err := p.waitExit(30 * time.Second)
	if err != nil {
		return nil, err
	}
	res.ExitCode = code
	res.DrainMs = float64(time.Since(termAt).Microseconds()) / 1000
	res.PostDrainAccepts = postDrain.Load()

	mu.Lock()
	defer mu.Unlock()
	seen := make(map[uint64]bool)
	for _, rec := range batches {
		if rec.accepted < 0 {
			// Unknown outcome (connection died with the answer): its values
			// may legitimately appear in delivered — excluded from the
			// exactly-once books, counted so a noisy run is visible.
			res.Unknown++
			for _, v := range rec.values {
				seen[v] = true
			}
			continue
		}
		for i, v := range rec.values {
			seen[v] = true
			want := 0
			if i < rec.accepted {
				want = 1
				res.Accepted++
			}
			switch {
			case want == 1 && delivered[v] == 0:
				res.Lost++
			case want == 1 && delivered[v] > 1:
				res.Duplicates++
			case want == 0 && delivered[v] > 0:
				res.Phantoms++
			}
		}
	}
	for v, n := range delivered {
		res.Delivered += uint64(n)
		if !seen[v] {
			res.Phantoms++
		}
	}
	return res, nil
}
