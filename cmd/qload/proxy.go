package main

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// killerProxy forwards TCP to a backend and, while armed, murders a
// fraction of connections after a short random delay — mid-request,
// mid-response, wherever the delay lands. This is the fault a real network
// front end meets: the client cannot tell a request that never arrived
// from an accept whose response died on the wire.
type killerProxy struct {
	l       net.Listener
	backend string
	prob    float64 // kill probability per connection while armed
	armed   atomic.Bool
	kills   atomic.Uint64

	mu    sync.Mutex
	rng   *rand.Rand
	conns map[net.Conn]struct{}
	done  chan struct{}
}

func newKillerProxy(backend string, prob float64) (*killerProxy, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &killerProxy{
		l:       l,
		backend: backend,
		prob:    prob,
		rng:     rand.New(rand.NewSource(time.Now().UnixNano())),
		conns:   make(map[net.Conn]struct{}),
		done:    make(chan struct{}),
	}
	go p.accept()
	return p, nil
}

func (p *killerProxy) addr() string { return p.l.Addr().String() }
func (p *killerProxy) arm()         { p.armed.Store(true) }
func (p *killerProxy) disarm()      { p.armed.Store(false) }

func (p *killerProxy) close() {
	close(p.done)
	p.l.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

func (p *killerProxy) accept() {
	for {
		client, err := p.l.Accept()
		if err != nil {
			return
		}
		go p.serve(client)
	}
}

func (p *killerProxy) serve(client net.Conn) {
	server, err := net.Dial("tcp", p.backend)
	if err != nil {
		client.Close()
		return
	}
	p.mu.Lock()
	p.conns[client] = struct{}{}
	p.conns[server] = struct{}{}
	// The kill delay is short enough to land mid-exchange on a fast
	// loopback request, not just on an idle connection afterwards.
	doomed := p.armed.Load() && p.rng.Float64() < p.prob
	var delay time.Duration
	if doomed {
		delay = time.Duration(p.rng.Int63n(int64(1500 * time.Microsecond)))
	}
	p.mu.Unlock()

	if doomed {
		kill := time.AfterFunc(delay, func() {
			p.kills.Add(1)
			client.Close()
			server.Close()
		})
		defer kill.Stop()
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); io.Copy(server, client); server.Close() }()
	go func() { defer wg.Done(); io.Copy(client, server); client.Close() }()
	wg.Wait()
	p.mu.Lock()
	delete(p.conns, client)
	delete(p.conns, server)
	p.mu.Unlock()
}
