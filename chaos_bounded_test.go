//go:build chaos

package lcrq

import (
	"context"
	"errors"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lcrq/internal/chaos"
	"lcrq/internal/linearize"
	"lcrq/internal/xrand"
)

// TestEnqueueWaitLinearizableUnderChaos extends the linearizability chaos
// suite to the blocking producer path: threads mix EnqueueWait (bounded
// backoff against a tiny capacity) with dequeues while the enq-wait and
// capacity-gate injection points fire, and every recorded history must
// linearize. An EnqueueWait that gives up on its deadline enqueued nothing
// and is simply not recorded.
func TestEnqueueWaitLinearizableUnderChaos(t *testing.T) {
	chaos.Reset()
	defer chaos.Reset()
	chaos.Set(chaos.EnqWait, 0.7)
	chaos.Set(chaos.CapacityGate, 0.5)
	chaos.Set(chaos.DelayDeq, 0.3)
	const (
		rounds  = 30
		threads = 3
		opsEach = 6
	)
	for round := 0; round < rounds; round++ {
		q := New(WithRingOrder(1), WithCapacity(2), WithWaitBackoff(time.Microsecond, 10*time.Microsecond))
		rec := linearize.NewRecorder(threads)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				h := q.NewHandle()
				defer h.Release()
				rng := xrand.New(uint64(round)*1000 + uint64(th) + 1)
				<-start
				for i := 0; i < opsEach; i++ {
					if rng.Uint64()%2 == 0 {
						v := uint64(th)<<32 | uint64(i) + 1
						ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
						inv := rec.Now()
						err := h.EnqueueWait(ctx, v)
						ret := rec.Now()
						cancel()
						if err == nil {
							rec.Append(th, linearize.Op{
								Kind: linearize.Enq, Value: v,
								Invoke: inv, Return: ret,
							})
						}
					} else {
						inv := rec.Now()
						v, ok := h.Dequeue()
						rec.Append(th, linearize.Op{
							Kind: linearize.Deq, Value: v, OK: ok,
							Invoke: inv, Return: rec.Now(),
						})
					}
				}
			}(th)
		}
		close(start)
		wg.Wait()
		hist := rec.History()
		if !linearize.Check(hist) {
			t.Fatalf("round %d: non-linearizable EnqueueWait history under chaos:\n%v", round, hist)
		}
	}
	if chaos.Fired(chaos.EnqWait) == 0 {
		t.Fatal("enq-wait injection point never fired; scenario is vacuous")
	}
}

// soakSeconds returns the soak duration: LCRQ_SOAK_SECONDS when set (the CI
// soak job sets it), a few seconds otherwise so the test stays meaningful
// in a plain -tags=chaos run.
func soakSeconds() time.Duration {
	if s := os.Getenv("LCRQ_SOAK_SECONDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return time.Duration(n) * time.Second
		}
	}
	return 2 * time.Second
}

// TestSoak is the timed robustness soak the CI chaos job runs with -race:
// a bounded epoch-mode queue with stall recovery and a watchdog, every
// fault-injection point armed, blocking producers, one consumer that
// repeatedly stalls mid-traffic while holding a handle, and one handle that
// is leaked entirely. Throughout, the ring chain must respect its budget
// and the item account its capacity; afterwards, conservation must hold
// (every accepted item consumed exactly once, per-producer FIFO).
func TestSoak(t *testing.T) {
	chaos.Reset()
	defer chaos.Reset()
	chaos.EnableAll(0.02)
	const (
		producers = 3
		capacity  = 128
	)
	q := New(
		WithRingOrder(3), // R=8: constant segment churn
		WithCapacity(capacity),
		WithEpochReclamation(),
		WithStallRecovery(2*time.Millisecond),
		WithWatchdog(5*time.Millisecond),
		WithWaitBackoff(time.Microsecond, 100*time.Microsecond),
	)
	maxRings := int64(q.Metrics().MaxRings)
	if maxRings <= 0 {
		t.Fatal("bounded queue has no derived ring budget")
	}

	stop := make(chan struct{})
	var accepted [producers]atomic.Uint64
	var wg sync.WaitGroup

	// Blocking producers: EnqueueWait against the capacity.
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			for i := uint64(0); ; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
				err := h.EnqueueWait(ctx, uint64(p)<<32|i+1)
				cancel()
				switch {
				case err == nil:
					accepted[p].Add(1)
				case errors.Is(err, ErrClosed):
					return
				default:
					i-- // deadline: retry the same value
				}
				select {
				case <-stop:
					return
				default:
				}
			}
		}(p)
	}

	// A stalling consumer: drains briskly, then parks holding its handle —
	// in epoch mode that is exactly the stalled-reclaimer hazard the ring
	// budget must survive.
	consumed := make([][]uint64, producers)
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		h := q.NewHandle()
		defer h.Release()
		for park := 0; ; park++ {
			for i := 0; i < 512; i++ {
				if v, ok := h.Dequeue(); ok {
					if p := v >> 32; p < producers {
						consumed[p] = append(consumed[p], v&0xffffffff)
					}
				}
			}
			select {
			case <-stop:
				// Final drain happens after producers stop, below.
				return
			default:
			}
			if park%4 == 3 {
				time.Sleep(10 * time.Millisecond) // the stall
			} else {
				runtime.Gosched()
			}
		}
	}()

	// A leaked handle, recovered (or not) by the finalizer mid-soak; the
	// soak only requires that it cannot wedge the queue.
	func() {
		h := q.NewHandle()
		h.Enqueue(^uint64(1))
		// leak: no Release
	}()
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				runtime.GC()
				time.Sleep(50 * time.Millisecond)
			}
		}
	}()

	// Invariant sampler: budgets must hold at every instant.
	deadline := time.Now().Add(soakSeconds())
	var ringViolations, itemViolations int
	for time.Now().Before(deadline) {
		m := q.Metrics()
		if m.LiveRings > maxRings {
			ringViolations++
		}
		if m.Items > capacity {
			itemViolations++
		}
		time.Sleep(200 * time.Microsecond)
	}
	close(stop)
	wg.Wait()
	cwg.Wait()
	if ringViolations > 0 {
		t.Errorf("ring budget (%d) violated at %d sampled instants", maxRings, ringViolations)
	}
	if itemViolations > 0 {
		t.Errorf("capacity (%d) violated at %d sampled instants", capacity, itemViolations)
	}

	// Conservation: close, drain the remainder, and match per-producer FIFO.
	q.Close()
	q.Drain(func(v uint64) {
		if p := v >> 32; p < producers {
			consumed[p] = append(consumed[p], v&0xffffffff)
		}
	})
	for p := 0; p < producers; p++ {
		if got, want := uint64(len(consumed[p])), accepted[p].Load(); got != want {
			t.Errorf("producer %d: accepted %d, consumed %d", p, want, got)
			continue
		}
		for i, v := range consumed[p] {
			if v != uint64(i)+1 {
				t.Fatalf("producer %d: FIFO broken at %d: got %d, want %d", p, i, v, i+1)
			}
		}
	}
	if h := q.Health(); h.Checks == 0 {
		t.Error("watchdog never completed a check during the soak")
	}
	t.Logf("soak done: rings≤%d, items≤%d, stalls=%d, orphans=%d, rejects=%d, health=%+v",
		maxRings, capacity, q.Metrics().EpochStalls, q.Metrics().OrphanRecoveries,
		q.Metrics().CapacityRejects, q.Health())
}
