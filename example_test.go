package lcrq_test

import (
	"fmt"
	"sync"

	"lcrq"
)

// The basic lifecycle: construct, obtain a per-goroutine handle, move
// values, release.
func ExampleNew() {
	q := lcrq.New()
	h := q.NewHandle()
	defer h.Release()

	h.Enqueue(10)
	h.Enqueue(20)
	v, ok := h.Dequeue()
	fmt.Println(v, ok)
	v, ok = h.Dequeue()
	fmt.Println(v, ok)
	_, ok = h.Dequeue()
	fmt.Println(ok)
	// Output:
	// 10 true
	// 20 true
	// false
}

// Typed queues carry arbitrary Go values; pointers remain visible to the
// garbage collector.
func ExampleNewTyped() {
	type job struct{ name string }
	q := lcrq.NewTyped[job]()
	h := q.NewHandle()
	defer h.Release()

	h.Enqueue(job{name: "build"})
	h.Enqueue(job{name: "test"})
	for {
		j, ok := h.Dequeue()
		if !ok {
			break
		}
		fmt.Println(j.name)
	}
	// Output:
	// build
	// test
}

// Handles are per-goroutine; a typical fan-in uses one handle per worker.
func ExampleQueue_concurrent() {
	q := lcrq.New(lcrq.WithRingSize(1024))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			for i := 0; i < 100; i++ {
				h.Enqueue(uint64(w*100 + i))
			}
		}(w)
	}
	wg.Wait()

	sum := uint64(0)
	n := q.Drain(func(v uint64) { sum += v })
	fmt.Println(n, sum)
	// Output:
	// 400 79800
}

// Stats expose the per-operation instruction mix the paper reports in its
// Tables 2 and 3.
func ExampleHandle_Stats() {
	q := lcrq.New()
	h := q.NewHandle()
	defer h.Release()
	for i := uint64(0); i < 1000; i++ {
		h.Enqueue(i)
		h.Dequeue()
	}
	s := h.Stats()
	fmt.Printf("enqueues=%d dequeues=%d atomics/op=%.0f\n",
		s.Enqueues, s.Dequeues, s.AtomicsPerOp)
	// Output:
	// enqueues=1000 dequeues=1000 atomics/op=2
}
