package lcrq

import (
	"time"

	"lcrq/internal/core"
	"lcrq/internal/telemetry"
)

// LatencySummary summarizes one sampled latency series. Quantiles come from
// a log-bucketed histogram with ≈1.6% bucket resolution; Max is exact over
// the sampled operations.
type LatencySummary struct {
	Samples uint64
	Mean    time.Duration
	P50     time.Duration
	P99     time.Duration
	P999    time.Duration
	Max     time.Duration
}

// BatchSummary summarizes the accepted-size distribution of one batch
// operation series. Sizes share the latency histogram's log-bucket layout
// (≈1.6% resolution), with items in place of nanoseconds; Items is the exact
// total number of items moved by the summarized batches.
type BatchSummary struct {
	Batches uint64  // batch calls recorded
	Items   uint64  // total items accepted/returned across those calls
	Mean    float64 // mean accepted batch size
	P50     int64   // median accepted batch size
	P99     int64
	Max     int64
}

// Metrics is a live snapshot of the queue's telemetry. Counter aggregates
// lag each handle by at most one publication interval (256 ops); gauges are
// instantaneous but approximate under concurrency (see DESIGN.md §8).
//
// Without WithTelemetry, only the gauge fields (Depth, LiveRings,
// RecyclerRings, Closed) are populated — they are maintained by the queue
// core on its slow paths regardless of telemetry.
type Metrics struct {
	// Stats aggregates the operation counters of every handle the queue
	// has issued, including released ones.
	Stats Stats

	// Handles is the number of live (unreleased) handles, pooled
	// convenience handles included.
	Handles int

	// SampleN is the latency sampling stride (0 = latency sampling off).
	SampleN int

	// TraceSampleN is the item-trace sampling stride (WithTracing): 0 when
	// tracing is off, >0 for 1-in-N sampling, -1 when only forced traces
	// are stamped (WithForcedTracingOnly).
	TraceSampleN int

	// Depth approximates the number of queued items as the sum of per-ring
	// tail−head index deltas. Exact only on a quiescent queue.
	Depth int64

	// LiveRings is the number of ring segments currently linked in the
	// queue's list; RecyclerRings approximates the recycler pool's
	// population (an upper bound — the GC may drain pooled rings).
	LiveRings     int64
	RecyclerRings int64

	// Closed reports whether the queue has been closed to new enqueues.
	Closed bool

	// Resource governance (all zero on an unbounded queue). Capacity and
	// MaxRings are the configured budgets; Items is the exact in-flight
	// item account a capacity-bounded queue maintains (unlike Depth, which
	// is approximate); CapacityRejects counts rejected enqueue attempts.
	Capacity        int64
	MaxRings        int
	Items           int64
	CapacityRejects uint64

	// EpochStalls counts reclamation participants declared stalled-by-
	// policy (WithStallRecovery); OrphanRecoveries counts handles that were
	// leaked without Release and had their reclamation records recovered by
	// the finalizer.
	EpochStalls      uint64
	OrphanRecoveries uint64

	// Health is the watchdog's verdict (WithWatchdog); Verdict "disabled"
	// when no watchdog runs.
	Health Health

	// Contention is the adaptive contention controller's queue-wide state
	// (WithAdaptiveContention); zero-valued with Enabled false on a
	// fixed-constant queue. Per-handle controller activity (backoff raises,
	// decays, pause iterations) aggregates in Stats.AdaptiveRaises /
	// AdaptiveDecays / AdaptiveSpins.
	Contention ContentionMetrics

	// Per-operation sampled latency series. DequeueWait and EnqueueWait
	// time whole waits (sleeps included) and only successful ones.
	Enqueue     LatencySummary
	Dequeue     LatencySummary
	DequeueWait LatencySummary
	EnqueueWait LatencySummary

	// Sojourn is the sampled item ring-residency distribution (WithTracing):
	// how long stamped items sat in the queue between their enqueue deposit
	// and the dequeue that claimed them. Distinct from the operation
	// latencies above — a queue can have microsecond operations and
	// second-long sojourns when producers outpace consumers.
	Sojourn LatencySummary

	// Accepted batch-size distributions of the batch entry points (always
	// zero when the batch API is unused).
	EnqueueBatch BatchSummary
	DequeueBatch BatchSummary

	// RingEvents counts ring-lifecycle transitions by event name
	// (ring-close, ring-tantrum, ring-append, ring-recycle, ring-retire,
	// queue-close).
	RingEvents map[string]uint64

	// Chaos counts fault-injection firings by point name; all zero unless
	// the binary was built with -tags=chaos.
	Chaos map[string]uint64
}

// ContentionMetrics is the queue-wide half of the adaptive contention
// controller's state: the watchdog remediation boost and how it has moved.
type ContentionMetrics struct {
	// Enabled reports whether WithAdaptiveContention armed the controller.
	Enabled bool
	// Boost is the current remediation boost: each step doubles every
	// handle's effective starvation threshold.
	Boost uint64
	// Raises and Decays count actual boost movements (saturated raises and
	// floored decays are not counted), matching the contention-adapt events.
	Raises uint64
	Decays uint64
}

// Event is one entry of the ring-lifecycle debugging trace.
type Event struct {
	Seq  uint64    // global event sequence number, 0-based
	Kind string    // event name, as in Metrics.RingEvents
	Time time.Time // when the transition happened
}

func summarize(l telemetry.LatencySnapshot) LatencySummary {
	s := LatencySummary{
		Samples: l.Samples,
		P50:     time.Duration(l.P50Ns),
		P99:     time.Duration(l.P99Ns),
		P999:    time.Duration(l.P999Ns),
		Max:     time.Duration(l.MaxNs),
	}
	if l.Samples > 0 {
		s.Mean = time.Duration(l.SumNs / int64(l.Samples))
	}
	return s
}

func summarizeBatch(l telemetry.LatencySnapshot) BatchSummary {
	s := BatchSummary{
		Batches: l.Samples,
		Items:   uint64(l.SumNs),
		P50:     l.P50Ns,
		P99:     l.P99Ns,
		Max:     l.MaxNs,
	}
	if l.Samples > 0 {
		s.Mean = float64(l.SumNs) / float64(l.Samples)
	}
	return s
}

// Metrics returns a live snapshot of the queue's telemetry. It is safe to
// call concurrently with all operations and never blocks them: counter
// aggregation reads atomically published per-handle snapshots, and the
// depth gauge walks the ring list with ordinary atomic loads.
func (q *Queue) Metrics() Metrics {
	var m Metrics
	h := q.pool.Get().(*Handle)
	m.Depth, _ = q.q.Depth(h.h)
	q.pool.Put(h)
	m.LiveRings = q.q.LiveRings()
	m.RecyclerRings = q.q.RecyclerSize()
	m.Closed = q.q.Closed()
	m.Capacity = q.q.Capacity()
	m.MaxRings = q.q.MaxRings()
	m.Items = q.q.Items()
	m.CapacityRejects = q.q.CapacityRejects()
	m.EpochStalls = q.q.EpochStalls()
	m.OrphanRecoveries = q.q.OrphanRecoveries()
	m.Health = q.Health()
	m.Contention = ContentionMetrics{
		Enabled: q.q.Adaptive(),
		Boost:   q.q.ContentionBoost(),
		Raises:  q.q.ContentionRaises(),
		Decays:  q.q.ContentionDecays(),
	}
	if q.tel == nil {
		return m
	}
	snap := q.tel.Snapshot()
	m.Stats = statsFromCounters(&snap.Counters)
	m.Handles = snap.Handles
	m.SampleN = snap.SampleN
	m.TraceSampleN = q.q.TraceSampleN()
	m.Sojourn = summarize(snap.Sojourn)
	m.Enqueue = summarize(snap.Latency[telemetry.KindEnqueue])
	m.Dequeue = summarize(snap.Latency[telemetry.KindDequeue])
	m.DequeueWait = summarize(snap.Latency[telemetry.KindDequeueWait])
	m.EnqueueWait = summarize(snap.Latency[telemetry.KindEnqueueWait])
	m.EnqueueBatch = summarizeBatch(snap.BatchSizes[telemetry.BatchEnqueue])
	m.DequeueBatch = summarizeBatch(snap.BatchSizes[telemetry.BatchDequeue])
	m.RingEvents = make(map[string]uint64, len(snap.EventCounts))
	for ev, n := range snap.EventCounts {
		m.RingEvents[core.RingEvent(ev).String()] = n
	}
	m.Chaos = make(map[string]uint64, len(snap.Chaos))
	for _, c := range snap.Chaos {
		m.Chaos[c.Point] = c.Fired
	}
	return m
}

// Events returns the queue's bounded ring-lifecycle trace, oldest first.
// The trace records the most recent ring closes (full and tantrum),
// appends, recycles, retires, and the Close transition; it is empty unless
// the queue was built with WithTelemetry. Reading is lock-free and
// best-effort: entries being overwritten concurrently are skipped.
func (q *Queue) Events() []Event {
	if q.tel == nil {
		return nil
	}
	evs := q.tel.Events()
	out := make([]Event, len(evs))
	for i, e := range evs {
		out[i] = Event{Seq: e.Seq, Kind: e.Kind.String(), Time: e.Time}
	}
	return out
}
