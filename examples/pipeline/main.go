// Pipeline: a three-stage parse/enrich/aggregate pipeline built on typed
// LCRQ queues, with a Go-channel version of the same pipeline for
// comparison.
//
//	go run ./examples/pipeline
//
// Stages are decoupled by MPMC queues; any number of workers serve each
// stage. Because dequeue is nonblocking (it returns EMPTY instead of
// parking the thread), workers poll their input with exponential backoff —
// the usual consumption pattern for nonblocking queues (pure spinning would
// starve producers on machines with few cores). The aggregator counts
// records and flips the done flag once everything has arrived, so no record
// can be lost.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lcrq"
)

type raw struct {
	id int
}

type parsed struct {
	tick string
	val  int
}

type result struct {
	tick  string
	total int
}

const (
	nRecords   = 200_000
	stage1W    = 3 // parsers
	stage2W    = 3 // enrichers
	tickModulo = 8
)

// backoff yields, then sleeps, as consecutive empty polls accumulate.
func backoff(empties *int) {
	*empties++
	switch {
	case *empties < 8:
		runtime.Gosched()
	default:
		time.Sleep(20 * time.Microsecond)
	}
}

func main() {
	start := time.Now()
	totals := runLCRQPipeline()
	lcrqTime := time.Since(start)

	start = time.Now()
	chTotals := runChannelPipeline()
	chTime := time.Since(start)

	for k, v := range totals {
		if chTotals[k] != v {
			fmt.Printf("MISMATCH at %s: lcrq=%d chan=%d\n", k, v, chTotals[k])
			return
		}
	}
	fmt.Printf("processed %d records through 3 stages (GOMAXPROCS=%d)\n",
		nRecords, runtime.GOMAXPROCS(0))
	fmt.Printf("  lcrq pipeline:    %v\n", lcrqTime)
	fmt.Printf("  channel pipeline: %v\n", chTime)
	fmt.Printf("  aggregates agree across %d ticker buckets\n", len(totals))
}

func runLCRQPipeline() map[string]int {
	qRaw := lcrq.NewTyped[raw]()
	qParsed := lcrq.NewTyped[parsed]()
	qResult := lcrq.NewTyped[result]()

	var done atomic.Bool // set once the aggregator has seen every record
	var workers sync.WaitGroup

	// Stage 0: producer.
	workers.Add(1)
	go func() {
		defer workers.Done()
		h := qRaw.NewHandle()
		defer h.Release()
		for i := 0; i < nRecords; i++ {
			h.Enqueue(raw{id: i})
		}
	}()

	// Stage 1: parse.
	for w := 0; w < stage1W; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			in, out := qRaw.NewHandle(), qParsed.NewHandle()
			defer in.Release()
			defer out.Release()
			empties := 0
			for !done.Load() {
				r, ok := in.Dequeue()
				if !ok {
					backoff(&empties)
					continue
				}
				empties = 0
				out.Enqueue(parsed{tick: fmt.Sprintf("T%d", r.id%tickModulo), val: r.id % 100})
			}
		}()
	}

	// Stage 2: enrich.
	for w := 0; w < stage2W; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			in, out := qParsed.NewHandle(), qResult.NewHandle()
			defer in.Release()
			defer out.Release()
			empties := 0
			for !done.Load() {
				p, ok := in.Dequeue()
				if !ok {
					backoff(&empties)
					continue
				}
				empties = 0
				out.Enqueue(result{tick: p.tick, total: p.val * 2})
			}
		}()
	}

	// Stage 3: aggregate. Counting to nRecords is the termination signal.
	totals := map[string]int{}
	agg := qResult.NewHandle()
	empties := 0
	for seen := 0; seen < nRecords; {
		r, ok := agg.Dequeue()
		if !ok {
			backoff(&empties)
			continue
		}
		empties = 0
		totals[r.tick] += r.total
		seen++
	}
	agg.Release()
	done.Store(true)
	workers.Wait()
	return totals
}

func runChannelPipeline() map[string]int {
	chRaw := make(chan raw, 4096)
	chParsed := make(chan parsed, 4096)
	chResult := make(chan result, 4096)

	go func() {
		for i := 0; i < nRecords; i++ {
			chRaw <- raw{id: i}
		}
		close(chRaw)
	}()

	var s1 sync.WaitGroup
	for w := 0; w < stage1W; w++ {
		s1.Add(1)
		go func() {
			defer s1.Done()
			for r := range chRaw {
				chParsed <- parsed{tick: fmt.Sprintf("T%d", r.id%tickModulo), val: r.id % 100}
			}
		}()
	}
	go func() { s1.Wait(); close(chParsed) }()

	var s2 sync.WaitGroup
	for w := 0; w < stage2W; w++ {
		s2.Add(1)
		go func() {
			defer s2.Done()
			for p := range chParsed {
				chResult <- result{tick: p.tick, total: p.val * 2}
			}
		}()
	}
	go func() { s2.Wait(); close(chResult) }()

	totals := map[string]int{}
	for r := range chResult {
		totals[r.tick] += r.total
	}
	return totals
}
