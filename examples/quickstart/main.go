// Quickstart: the essential LCRQ API in one file.
//
//	go run ./examples/quickstart
//
// Demonstrates the raw uint64 queue with per-goroutine handles, the
// handle-free convenience methods, and the generic Typed facade.
package main

import (
	"fmt"
	"sync"

	"lcrq"
)

func main() {
	// ---- raw queue, explicit handles (the fast path) ----
	q := lcrq.New()

	var wg sync.WaitGroup
	const producers, perProducer = 4, 1000

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := q.NewHandle() // one handle per goroutine
			defer h.Release()
			for i := 0; i < perProducer; i++ {
				h.Enqueue(uint64(p*perProducer + i))
			}
		}(p)
	}
	wg.Wait()

	var sum, count uint64
	h := q.NewHandle()
	for {
		v, ok := h.Dequeue()
		if !ok {
			break // queue empty
		}
		sum += v
		count++
	}
	h.Release()
	fmt.Printf("raw queue: drained %d items, sum %d\n", count, sum)

	// ---- convenience methods (pooled handles, casual use) ----
	q.Enqueue(7)
	if v, ok := q.Dequeue(); ok {
		fmt.Printf("convenience: got %d\n", v)
	}

	// ---- typed queue: arbitrary Go values, GC-safe ----
	type order struct {
		ID     int
		Symbol string
		Qty    int
	}
	book := lcrq.NewTyped[order]()
	th := book.NewHandle()
	defer th.Release()

	th.Enqueue(order{ID: 1, Symbol: "ACME", Qty: 100})
	th.Enqueue(order{ID: 2, Symbol: "GOPH", Qty: 250})
	for {
		o, ok := th.Dequeue()
		if !ok {
			break
		}
		fmt.Printf("typed queue: order %d %s x%d\n", o.ID, o.Symbol, o.Qty)
	}

	// ---- per-handle statistics (the paper's Tables 2-3 counters) ----
	sh := q.NewHandle()
	for i := uint64(0); i < 1000; i++ {
		sh.Enqueue(i)
		sh.Dequeue()
	}
	st := sh.Stats()
	sh.Release()
	fmt.Printf("stats: %d enq, %d deq, %.2f atomic ops per operation\n",
		st.Enqueues, st.Dequeues, st.AtomicsPerOp)
}
