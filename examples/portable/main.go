// Portable: the Packed32 variant for platforms without a 128-bit CAS.
//
//	go run ./examples/portable
//
// The default Queue needs LOCK CMPXCHG16B for its 128-bit ring cells, which
// Go can only issue on amd64; elsewhere it degrades to a striped-lock
// emulation that is correct but not lock-free. Packed32 squeezes the whole
// cell protocol — unsafe flag, index, value — into one 64-bit word, so a
// plain CompareAndSwapUint64 drives it on any architecture, at the price of
// 32-bit values. This example runs both side by side and reports whether
// the native double-width path is available on this machine.
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lcrq"
	"lcrq/internal/atomic128"
)

const (
	workers = 4
	perW    = 100_000
)

func main() {
	if atomic128.Available() {
		fmt.Println("this build uses native CMPXCHG16B for the 128-bit queue")
	} else {
		fmt.Println("no native 128-bit CAS here: the 128-bit queue uses the striped-lock emulation,")
		fmt.Println("which is exactly the situation Packed32 exists for")
	}

	// Same MPMC workload through both queues.
	wide := lcrq.New()
	t0 := time.Now()
	var sumWide atomic.Uint64
	runWide(wide, &sumWide)
	wideTime := time.Since(t0)

	packed := lcrq.NewPacked32(0)
	t0 = time.Now()
	var sumPacked atomic.Uint64
	runPacked(packed, &sumPacked)
	packedTime := time.Since(t0)

	if sumWide.Load() != sumPacked.Load() {
		fmt.Printf("ERROR: checksums differ: %d vs %d\n", sumWide.Load(), sumPacked.Load())
		return
	}
	total := workers * perW
	fmt.Printf("moved %d items through each queue (checksum %d)\n", total, sumWide.Load())
	fmt.Printf("  Queue (128-bit cells):    %v\n", wideTime)
	fmt.Printf("  Packed32 (64-bit cells):  %v\n", packedTime)
	fmt.Println("Packed32 trades value width (32 bits) and ring recycling for portability;")
	fmt.Println("see the package docs for its wraparound-index assumptions.")
}

func runWide(q *lcrq.Queue, sum *atomic.Uint64) {
	var wg sync.WaitGroup
	var consumed atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			for i := 0; i < perW; i++ {
				h.Enqueue(uint64(w*perW+i) + 1)
				if v, ok := h.Dequeue(); ok {
					sum.Add(v)
					consumed.Add(1)
				}
			}
			for consumed.Load() < workers*perW {
				if v, ok := h.Dequeue(); ok {
					sum.Add(v)
					consumed.Add(1)
				} else {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Drain stragglers.
	h := q.NewHandle()
	defer h.Release()
	for {
		v, ok := h.Dequeue()
		if !ok {
			return
		}
		sum.Add(v)
	}
}

func runPacked(q *lcrq.Packed32, sum *atomic.Uint64) {
	var wg sync.WaitGroup
	var consumed atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			for i := 0; i < perW; i++ {
				h.Enqueue(uint32(w*perW+i) + 1)
				if v, ok := h.Dequeue(); ok {
					sum.Add(uint64(v))
					consumed.Add(1)
				}
			}
			for consumed.Load() < workers*perW {
				if v, ok := h.Dequeue(); ok {
					sum.Add(uint64(v))
					consumed.Add(1)
				} else {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	h := q.NewHandle()
	defer h.Release()
	for {
		v, ok := h.Dequeue()
		if !ok {
			return
		}
		sum.Add(uint64(v))
	}
}
