// Taskpool: a work-distribution pool whose run queue is an LCRQ, stressed
// in the oversubscribed regime the paper highlights (Figure 6b): far more
// worker threads than hardware threads.
//
//	go run ./examples/taskpool
//
// A lock-based or combining run queue collapses here — whenever the OS
// preempts the lock/combiner holder, every worker stalls until it runs
// again. LCRQ is nonblocking: a preempted worker never blocks the others,
// so throughput holds. The pool also shows the Stats API surfacing ring
// churn (closes/appends) under bursty load.
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lcrq"
)

type task struct {
	id    int
	steps int // simulated work
}

func main() {
	hw := runtime.NumCPU()
	workers := 16 * hw // heavy oversubscription
	const nTasks = 100_000

	fmt.Printf("taskpool: %d tasks, %d workers on %d hardware threads (%dx oversubscribed)\n",
		nTasks, workers, hw, workers/hw)

	queue := lcrq.NewTyped[task](lcrq.WithRingSize(1 << 10))
	var (
		executed atomic.Int64
		checksum atomic.Int64
		wg       sync.WaitGroup
	)

	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := queue.NewHandle()
			defer h.Release()
			for {
				t, ok := h.Dequeue()
				if !ok {
					if executed.Load() >= nTasks {
						return
					}
					runtime.Gosched()
					continue
				}
				// Simulated work: a short computation.
				acc := 0
				for i := 0; i < t.steps; i++ {
					acc += i * t.id
				}
				checksum.Add(int64(acc % 1000))
				executed.Add(1)
			}
		}()
	}

	// Producer: bursts of tasks to force ring churn.
	prod := queue.NewHandle()
	for i := 0; i < nTasks; i++ {
		prod.Enqueue(task{id: i, steps: 50 + i%100})
	}
	prod.Release()

	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("executed %d tasks in %v (%.0f tasks/ms), checksum %d\n",
		executed.Load(), elapsed,
		float64(executed.Load())/float64(elapsed.Milliseconds()+1), checksum.Load())
	if executed.Load() != nTasks {
		fmt.Println("ERROR: lost tasks!")
	}
}
