// Instrumentation: watching the LCRQ mechanics through the Stats API.
//
//	go run ./examples/instrumentation
//
// Runs the same contended workload against a normal LCRQ and the LCRQ-CAS
// ablation (fetch-and-add emulated with a CAS loop) and prints the
// per-operation instruction mix — a live miniature of the paper's Table 2,
// showing where the CAS-retry waste the paper identifies comes from. Also
// demonstrates ring churn accounting with a deliberately tiny ring.
package main

import (
	"fmt"
	"sync"

	"lcrq"
)

// run drives the queue with bursts of 16 enqueues followed by 16 dequeues
// per worker, so the queue actually holds items (plain enqueue/dequeue
// pairs rarely grow the queue beyond a handful of entries).
func run(name string, q *lcrq.Queue, workers, pairs int) lcrq.Stats {
	const burst = 16
	var wg sync.WaitGroup
	statsCh := make(chan lcrq.Stats, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			for i := 0; i < pairs; i += burst {
				for j := 0; j < burst; j++ {
					h.Enqueue(uint64(w*pairs+i+j) + 1)
				}
				for j := 0; j < burst; j++ {
					h.Dequeue()
				}
			}
			statsCh <- h.Stats()
		}(w)
	}
	wg.Wait()
	close(statsCh)
	var total lcrq.Stats
	for s := range statsCh {
		total = total.Add(s)
	}
	fmt.Printf("%-12s  %8d ops  %.2f atomics/op  F&A=%d  CAS=%d (%.1f%% failed)  CAS2=%d (%.1f%% failed)\n",
		name, total.Enqueues+total.Dequeues, total.AtomicsPerOp,
		total.FetchAdds,
		total.CASAttempts, pct(total.CASFailures, total.CASAttempts),
		total.CAS2Attempts, pct(total.CAS2Failures, total.CAS2Attempts))
	return total
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func main() {
	const workers, pairs = 8, 50_000

	fmt.Println("instruction mix under contention (compare with Table 2 of the paper):")
	run("lcrq", lcrq.New(), workers, pairs)
	run("lcrq-cas", lcrq.New(lcrq.WithCASLoopFAA()), workers, pairs)

	fmt.Println("\nring churn with a deliberately tiny ring (R=4):")
	tiny := lcrq.New(lcrq.WithRingSize(4))
	s := run("lcrq R=4", tiny, workers, pairs)
	fmt.Printf("  ring segments closed: %d, appended: %d, recycled: %d (%.1f%% reuse)\n",
		s.RingCloses, s.RingAppends, s.RingRecycles,
		pct(s.RingRecycles, s.RingAppends))
	fmt.Println("\nwith the default 4096-cell ring the same workload closes no rings:")
	s = run("lcrq R=4096", lcrq.New(), workers, pairs)
	fmt.Printf("  ring segments closed: %d, appended: %d\n", s.RingCloses, s.RingAppends)
}
