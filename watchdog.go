package lcrq

import (
	"fmt"
	"sync"
	"time"

	"lcrq/internal/chaos"
	"lcrq/internal/core"
)

// Health is the watchdog's current verdict on the queue (WithWatchdog).
// The zero value means "no watchdog"; see Queue.Health.
type Health struct {
	// OK is false while the watchdog's latest check detected a problem.
	OK bool

	// Verdict names the state: "disabled", "ok", or one of the problem
	// verdicts "tantrum-storm", "append-livelock", "capacity-stall",
	// "epoch-stall".
	Verdict string

	// Detail elaborates the problem verdict with the numbers that triggered
	// it; empty while healthy.
	Detail string

	// Checks is how many inspection ticks the watchdog has completed, and
	// LastCheck when the latest finished. A Checks that stops advancing
	// means the watchdog itself was stopped (Close).
	Checks    uint64
	LastCheck time.Time
}

// Watchdog detection thresholds, per check interval. They are deliberately
// coarse: the watchdog flags sustained pathology a human should look at,
// not transient contention the queue is designed to absorb.
const (
	// wdTantrumStorm: ring closes by tantrum per tick that indicate
	// starvation-close livelock rather than occasional contention. A
	// healthy queue closes rings by filling them; a storm of tantrums means
	// enqueuers keep hitting StarvationLimit and discarding ring space.
	wdTantrumStorm = 128
	// wdAppendStorm: ring appends per tick with zero completed dequeues —
	// segments are churning while no consumer makes progress.
	wdAppendStorm = 128
	// wdCapacityTicks: consecutive ticks a bounded queue must spend full
	// (rejections arriving, zero dequeues completing) before the verdict
	// flips to capacity-stall. Two ticks filter out a full queue whose
	// consumers are merely slow to the sampling edge.
	wdCapacityTicks = 2
	// wdRecoverTicks: consecutive clean ticks a problem verdict must
	// survive before the published health flips back to ok. One lucky
	// sampling edge mid-stall would otherwise make Health() flap, and every
	// consumer (load shedders, alert routing) would flap with it. The flip
	// itself is announced as EvWatchdogRecover, pairing every
	// EvWatchdogAlert with a recovery marker in the event trace.
	wdRecoverTicks = 2
)

// watchdog is the background health checker started by WithWatchdog. Each
// tick it diffs the queue's telemetry aggregates against the previous tick,
// applies the detection rules above, and in epoch mode kicks reclamation
// forward so a traffic lull cannot strand retired rings.
type watchdog struct {
	q        *Queue
	interval time.Duration
	stopCh   chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	mu     sync.Mutex
	health Health

	// Previous-tick aggregates for deltas.
	prevTantrums uint64
	prevAppends  uint64
	prevDequeues uint64
	prevEmpty    uint64
	prevRejects  uint64
	prevStalls   uint64
	fullTicks    int
	okStreak     int // consecutive clean ticks while a problem verdict holds
}

func startWatchdog(q *Queue, interval time.Duration) *watchdog {
	w := &watchdog{
		q:        q,
		interval: interval,
		stopCh:   make(chan struct{}),
		done:     make(chan struct{}),
		health:   Health{OK: true, Verdict: "ok"},
	}
	go w.run()
	return w
}

func (w *watchdog) stop() {
	w.stopOnce.Do(func() { close(w.stopCh) })
	<-w.done
}

func (w *watchdog) run() {
	defer close(w.done)
	// The watchdog borrows a pooled handle per tick rather than owning one:
	// owning one would pin a hazard/epoch record for a goroutine that is
	// idle 99.9% of the time, and the pool path is already leak-safe.
	ticker := time.NewTicker(w.interval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stopCh:
			return
		case <-ticker.C:
			w.check()
		}
	}
}

// check runs one inspection tick.
func (w *watchdog) check() {
	q := w.q
	snap := q.tel.Snapshot()
	tantrums := snap.EventCounts[core.EvRingTantrum]
	appends := snap.EventCounts[core.EvRingAppend]
	dequeues := snap.Counters.Dequeues
	empty := snap.Counters.Empty
	rejects := q.q.CapacityRejects()
	stalls := q.q.EpochStalls()

	dTantrums := tantrums - w.prevTantrums
	dAppends := appends - w.prevAppends
	// Completed dequeues = dequeue calls minus empty results: the measure
	// of consumer progress the capacity rules need.
	dTaken := (dequeues - w.prevDequeues) - (empty - w.prevEmpty)
	dRejects := rejects - w.prevRejects
	dStalls := stalls - w.prevStalls
	w.prevTantrums, w.prevAppends = tantrums, appends
	w.prevDequeues, w.prevEmpty = dequeues, empty
	w.prevRejects, w.prevStalls = rejects, stalls

	// Keep reclamation moving even when operation traffic (whose amortized
	// schedule normally drives it) has stopped. Harmless outside epoch mode.
	h := q.pool.Get().(*Handle)
	q.q.KickReclaim(h.h)
	q.pool.Put(h)

	// A bounded queue spending consecutive ticks full with no consumer
	// progress is stalled; a single full tick is just backpressure working.
	if dRejects > 0 && dTaken == 0 {
		w.fullTicks++
	} else {
		w.fullTicks = 0
	}

	verdict, detail := "ok", ""
	switch {
	case dTantrums >= wdTantrumStorm:
		verdict = "tantrum-storm"
		detail = fmt.Sprintf("%d tantrum ring closes in one %v interval", dTantrums, w.interval)
	case dAppends >= wdAppendStorm && dTaken == 0:
		verdict = "append-livelock"
		detail = fmt.Sprintf("%d ring appends with no completed dequeues in one %v interval", dAppends, w.interval)
	case w.fullTicks >= wdCapacityTicks:
		verdict = "capacity-stall"
		detail = fmt.Sprintf("queue full for %d consecutive intervals (%d rejects, 0 dequeues in the last)", w.fullTicks, dRejects)
	case dStalls > 0:
		verdict = "epoch-stall"
		detail = fmt.Sprintf("%d reclamation participants declared stalled in one %v interval", dStalls, w.interval)
	}

	// Remediation: on an adaptive queue the verdict acts, not just reports.
	if q.q.Adaptive() {
		w.remediate(verdict)
	}

	if ev, fire := w.publish(verdict, detail); fire {
		// Route the transition through the telemetry sink (the queue's Tap),
		// so it lands in the event trace and counts like any lifecycle event.
		q.tel.RingEvent(ev)
	}
}

// remediate moves the adaptive controller's shared starvation boost from the
// tick's verdict: a tantrum storm widens every handle's effective starvation
// threshold one step (enqueuers wait longer before closing rings, so the
// storm damps instead of feeding ring churn), and a clean tick decays the
// boost one step so past widening does not outlive its storm. The chaos
// points let campaigns force either move regardless of the verdict. Each
// actual change is announced as a contention-adapt event.
func (w *watchdog) remediate(verdict string) {
	raise := verdict == "tantrum-storm"
	decay := verdict == "ok"
	if chaos.Fire(chaos.AdaptRaise) {
		raise, decay = true, false
	} else if chaos.Fire(chaos.AdaptDecay) {
		raise, decay = false, true
	}
	var changed bool
	switch {
	case raise:
		_, changed = w.q.q.RaiseContention()
	case decay:
		_, changed = w.q.q.DecayContention()
	}
	if changed {
		w.q.tel.RingEvent(core.EvContentionAdapt)
	}
}

// publish folds one tick's raw verdict into the published health, applying
// recovery hysteresis, and reports which transition event to emit:
// EvWatchdogAlert on ok→problem, EvWatchdogRecover on problem→ok. A problem
// verdict does not flip back on the first clean tick — it is held, with the
// detail annotated as recovering, until wdRecoverTicks consecutive clean
// ticks pass.
func (w *watchdog) publish(verdict, detail string) (ev core.RingEvent, fire bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	prev := w.health
	next := Health{
		OK:        verdict == "ok",
		Verdict:   verdict,
		Detail:    detail,
		Checks:    prev.Checks + 1,
		LastCheck: time.Now(),
	}
	switch {
	case verdict != "ok":
		w.okStreak = 0
		if prev.OK {
			ev, fire = core.EvWatchdogAlert, true
		}
	case !prev.OK:
		w.okStreak++
		if w.okStreak < wdRecoverTicks {
			// Hold the problem verdict through the hysteresis window.
			next.OK = false
			next.Verdict = prev.Verdict
			next.Detail = fmt.Sprintf("recovering: %d/%d clean checks", w.okStreak, wdRecoverTicks)
		} else {
			w.okStreak = 0
			ev, fire = core.EvWatchdogRecover, true
		}
	}
	w.health = next
	return ev, fire
}

// snapshot returns the current verdict.
func (w *watchdog) snapshot() Health {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.health
}

// Health returns the watchdog's current verdict. Without WithWatchdog the
// verdict is "disabled" with OK true: no checker is running, so nothing has
// been detected — it does not mean the queue was inspected and found
// healthy.
func (q *Queue) Health() Health {
	if q.wd == nil {
		return Health{OK: true, Verdict: "disabled"}
	}
	return q.wd.snapshot()
}
