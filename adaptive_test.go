package lcrq

import (
	"os"
	"strings"
	"testing"
	"time"
)

// TestWithAdaptiveContentionOption: the option must arm the controller and
// surface that through Metrics(), and each of the tuning options must imply
// it — asking for adaptive spin bounds or a boost cap on a queue that then
// ran fixed would be a silent misconfiguration.
func TestWithAdaptiveContentionOption(t *testing.T) {
	q := New()
	defer q.Close()
	if m := q.Metrics(); m.Contention.Enabled || m.Contention.Boost != 0 {
		t.Fatalf("default queue reports contention controller: %+v", m.Contention)
	}
	if q.q.Adaptive() {
		t.Fatal("default queue core reports adaptive")
	}

	qa := New(WithAdaptiveContention())
	defer qa.Close()
	if m := qa.Metrics(); !m.Contention.Enabled {
		t.Fatalf("WithAdaptiveContention queue reports disabled: %+v", m.Contention)
	}

	qb := New(WithAdaptiveSpinBounds(8, 128, 4))
	defer qb.Close()
	if !qb.Metrics().Contention.Enabled {
		t.Fatal("WithAdaptiveSpinBounds did not imply WithAdaptiveContention")
	}

	// A negative boost cap keeps per-handle adaptation but disables the
	// watchdog's remediation lever entirely.
	qc := New(WithAdaptiveBoostMax(-1))
	defer qc.Close()
	if !qc.Metrics().Contention.Enabled {
		t.Fatal("WithAdaptiveBoostMax did not imply WithAdaptiveContention")
	}
	if _, changed := qc.q.RaiseContention(); changed {
		t.Fatal("RaiseContention moved the boost despite a negative cap")
	}
	if m := qc.Metrics(); m.Contention.Boost != 0 || m.Contention.Raises != 0 {
		t.Fatalf("negative-cap queue accumulated boost state: %+v", m.Contention)
	}
}

// TestWaitJitterDispersion is the herd-dispersion regression test: the
// jittered wait backoff must spread a nominal delay uniformly over
// [d/2, 3d/2] — mean-preserving, bounded, and actually dispersed (a
// constant or near-constant jitter would resynchronize waiter herds, which
// is the bug this guards against). Jitter is deliberately independent of
// WithAdaptiveContention, so this runs on a default fixed-constant queue.
func TestWaitJitterDispersion(t *testing.T) {
	q := New()
	defer q.Close()
	h := q.NewHandle()
	defer h.Release()

	const d = time.Millisecond
	const n = 4096
	var sum time.Duration
	distinct := make(map[time.Duration]struct{})
	for i := 0; i < n; i++ {
		j := h.h.Ctl.Jitter(d)
		if j < d/2 || j > d+d/2 {
			t.Fatalf("Jitter(%v) = %v, outside [%v, %v]", d, j, d/2, d+d/2)
		}
		sum += j
		distinct[j] = struct{}{}
	}
	mean := sum / n
	if mean < d*9/10 || mean > d*11/10 {
		t.Fatalf("jitter mean %v drifted from nominal %v", mean, d)
	}
	// A millisecond span has ~1e6 representable outcomes; thousands of draws
	// collapsing to a handful of values would mean the RNG stream is broken.
	if len(distinct) < n/2 {
		t.Fatalf("only %d distinct jitter values in %d draws", len(distinct), n)
	}

	// Two handles must draw from uncorrelated streams — lockstep streams
	// would jitter every waiter identically and the herd would survive.
	h2 := q.NewHandle()
	defer h2.Release()
	same := 0
	const pairs = 64
	for i := 0; i < pairs; i++ {
		if h.h.Ctl.Jitter(d) == h2.h.Ctl.Jitter(d) {
			same++
		}
	}
	if same == pairs {
		t.Fatal("two handles produced identical jitter streams")
	}

	// Zero and negative delays pass through untouched (no spinning a timer
	// on a degenerate configuration).
	if j := h.h.Ctl.Jitter(0); j != 0 {
		t.Fatalf("Jitter(0) = %v, want 0", j)
	}
}

// TestWatchdogDecaysContentionBoost exercises the decay half of watchdog
// remediation end to end through the public surface: a raised boost on a
// healthy queue must be walked back one step per clean tick, each step
// announced as a contention-adapt event, until the starvation thresholds
// are back to their configured values. (The raise half needs a tantrum
// storm, which takes fault injection — see the chaos-tagged campaigns.)
func TestWatchdogDecaysContentionBoost(t *testing.T) {
	q := New(WithAdaptiveContention(), WithTelemetry(), WithWatchdog(2*time.Millisecond))
	defer q.Close()

	if _, changed := q.q.RaiseContention(); !changed {
		t.Fatal("RaiseContention reported no change on a fresh queue")
	}
	q.q.RaiseContention()

	deadline := time.Now().Add(10 * time.Second)
	for q.Metrics().Contention.Boost != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never decayed the boost; contention = %+v", q.Metrics().Contention)
		}
		time.Sleep(time.Millisecond)
	}
	m := q.Metrics()
	if m.Contention.Raises < 2 || m.Contention.Decays < 2 {
		t.Fatalf("boost movements not accounted: %+v", m.Contention)
	}
	if m.Stats.AdaptiveSpins != 0 {
		t.Fatalf("idle queue burned %d adaptive spins", m.Stats.AdaptiveSpins)
	}

	adaptEvents := 0
	for _, ev := range q.Events() {
		if ev.Kind == "contention-adapt" {
			adaptEvents++
		}
	}
	if adaptEvents < 2 {
		t.Fatalf("expected ≥2 contention-adapt events in the trace, got %d", adaptEvents)
	}

	// The Prometheus surface must carry the controller series.
	var b strings.Builder
	WritePrometheus(&b, m)
	for _, series := range []string{
		"lcrq_adaptive 1",
		"lcrq_contention_boost 0",
		"lcrq_contention_raises_total 2",
		"lcrq_contention_decays_total 2",
		"lcrq_adapt_raises_total",
		"lcrq_adapt_spins_total",
	} {
		if !strings.Contains(b.String(), series) {
			t.Fatalf("Prometheus output missing %q", series)
		}
	}
}

// TestAdaptiveOffOverhead guards the fixed-constant fast path: the
// controller branches added to the hot loops must be unobservable when
// WithAdaptiveContention is absent, and arming the controller on an
// uncontended queue must stay within noise of the fixed path (its whole
// point is to cost nothing until failures happen). Same guard style and
// opt-in as TestGovernanceOffOverhead — timing checks are too flaky for
// CI's shared runners, so gate on LCRQ_ADAPTIVE_BENCH=1.
func TestAdaptiveOffOverhead(t *testing.T) {
	if os.Getenv("LCRQ_ADAPTIVE_BENCH") == "" {
		t.Skip("set LCRQ_ADAPTIVE_BENCH=1 to run the overhead smoke check")
	}
	fixed := New(WithRingSize(1 << 12))
	defer fixed.Close()
	adaptive := New(WithRingSize(1<<12), WithAdaptiveContention())
	defer adaptive.Close()
	fh := fixed.NewHandle()
	defer fh.Release()
	ah := adaptive.NewHandle()
	defer ah.Release()

	direct := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fixed.q.Enqueue(fh.h, uint64(i)|1<<62)
			fixed.q.Dequeue(fh.h)
		}
	}
	wrappedOff := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fh.Enqueue(uint64(i) | 1<<62)
			fh.Dequeue()
		}
	}
	wrappedOn := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ah.Enqueue(uint64(i) | 1<<62)
			ah.Dequeue()
		}
	}
	best := func(f func(*testing.B)) float64 {
		ns := 1e18
		for i := 0; i < 5; i++ {
			r := testing.Benchmark(f)
			if v := float64(r.NsPerOp()); v < ns {
				ns = v
			}
		}
		return ns
	}
	d, off, on := best(direct), best(wrappedOff), best(wrappedOn)
	t.Logf("direct %.1f ns/op, fixed wrapper %.1f ns/op (%+.1f%%), adaptive uncontended %.1f ns/op (%+.1f%% vs fixed)",
		d, off, (off/d-1)*100, on, (on/off-1)*100)
	if off > d*1.25 {
		t.Fatalf("fixed-path wrapper overhead too high: direct %.1f ns/op vs wrapped %.1f ns/op", d, off)
	}
	if on > off*1.25 {
		t.Fatalf("uncontended adaptive overhead too high: fixed %.1f ns/op vs adaptive %.1f ns/op", off, on)
	}
	// An uncontended run must leave the controller idle: decays fire per
	// completed op only after failures raised the level.
	if s := adaptive.Metrics().Stats; s.AdaptiveRaises != 0 || s.AdaptiveSpins != 0 {
		t.Fatalf("uncontended adaptive queue shows controller activity: raises=%d spins=%d",
			s.AdaptiveRaises, s.AdaptiveSpins)
	}
}
