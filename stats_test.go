package lcrq

import (
	"reflect"
	"testing"

	"lcrq/internal/instrument"
)

// TestStatsCoversAllCounters fills every instrument.Counters field with a
// distinct value and checks that each value surfaces in the public Stats
// snapshot, so adding a counter without plumbing it through
// statsFromCounters fails here instead of silently dropping data.
//
// This is the one runtime backstop for the mirror invariant; the primary
// guard is lcrqlint's statsmirror analyzer, driven by the //lcrq:mirror
// annotations in stats.go. (A second reflection test for Stats.Add was
// deleted in favor of the analyzer, which pinpoints the missing field at
// lint time.)
func TestStatsCoversAllCounters(t *testing.T) {
	c := &instrument.Counters{}
	cv := reflect.ValueOf(c).Elem()
	want := make(map[uint64]string, cv.NumField())
	for i := 0; i < cv.NumField(); i++ {
		v := uint64(1000 + 7*i) // distinct, nonzero
		cv.Field(i).SetUint(v)
		want[v] = cv.Type().Field(i).Name
	}

	s := statsFromCounters(c)
	sv := reflect.ValueOf(s)
	got := make(map[uint64]bool)
	uintFields := 0
	for i := 0; i < sv.NumField(); i++ {
		if sv.Field(i).Kind() != reflect.Uint64 {
			continue // AtomicsPerOp is derived, not a counter copy
		}
		uintFields++
		got[sv.Field(i).Uint()] = true
	}
	for v, name := range want {
		if !got[v] {
			t.Errorf("Counters.%s (=%d) is not represented in Stats", name, v)
		}
	}
	if uintFields != len(want) {
		t.Errorf("Stats has %d uint64 fields for %d counters; fields must map 1:1",
			uintFields, len(want))
	}
}
