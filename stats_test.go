package lcrq

import (
	"reflect"
	"testing"

	"lcrq/internal/instrument"
)

// TestStatsCoversAllCounters fills every instrument.Counters field with a
// distinct value and checks that each value surfaces in the public Stats
// snapshot, so adding a counter without plumbing it through
// statsFromCounters fails here instead of silently dropping data.
func TestStatsCoversAllCounters(t *testing.T) {
	c := &instrument.Counters{}
	cv := reflect.ValueOf(c).Elem()
	want := make(map[uint64]string, cv.NumField())
	for i := 0; i < cv.NumField(); i++ {
		v := uint64(1000 + 7*i) // distinct, nonzero
		cv.Field(i).SetUint(v)
		want[v] = cv.Type().Field(i).Name
	}

	s := statsFromCounters(c)
	sv := reflect.ValueOf(s)
	got := make(map[uint64]bool)
	uintFields := 0
	for i := 0; i < sv.NumField(); i++ {
		if sv.Field(i).Kind() != reflect.Uint64 {
			continue // AtomicsPerOp is derived, not a counter copy
		}
		uintFields++
		got[sv.Field(i).Uint()] = true
	}
	for v, name := range want {
		if !got[v] {
			t.Errorf("Counters.%s (=%d) is not represented in Stats", name, v)
		}
	}
	if uintFields != len(want) {
		t.Errorf("Stats has %d uint64 fields for %d counters; fields must map 1:1",
			uintFields, len(want))
	}
}

// TestStatsAddCoversAllFields sums two reflectively filled Stats and checks
// every uint64 field was accumulated, so Add cannot silently forget a newly
// added field.
func TestStatsAddCoversAllFields(t *testing.T) {
	mk := func(base uint64) Stats {
		var s Stats
		v := reflect.ValueOf(&s).Elem()
		for i := 0; i < v.NumField(); i++ {
			if v.Field(i).Kind() == reflect.Uint64 {
				v.Field(i).SetUint(base + uint64(i))
			}
		}
		return s
	}
	a, b := mk(100), mk(10000)
	sum := a.Add(b)
	v := reflect.ValueOf(sum)
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).Kind() != reflect.Uint64 {
			continue
		}
		want := 100 + 10000 + 2*uint64(i)
		if got := v.Field(i).Uint(); got != want {
			t.Errorf("Add dropped Stats.%s: got %d, want %d",
				v.Type().Field(i).Name, got, want)
		}
	}
}
