// Package load turns Go package patterns into fully type-checked syntax
// trees for analyzers, using only the standard library and the go command.
//
// The usual driver for golang.org/x/tools/go/analysis analyzers is
// go/packages, which this module deliberately does not depend on. Instead
// the loader shells out to `go list -export -json -deps`, which makes the
// go command compile every dependency into the build cache and report the
// path of each package's export data file. Target packages (the non-DepOnly
// listing roots) are then re-parsed from source and type-checked against
// that export data, exactly as `go vet` does for its compilation units —
// so analyzers see the same ASTs, type information, and sizes they would
// under the upstream driver.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"

	"lcrq/internal/lint/analysis"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string

	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	TypesSizes types.Sizes
}

// ListedPackage is the subset of `go list -json` output the loader uses.
type ListedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	Export     string
	GoFiles    []string
	Error      *struct{ Err string }
}

// Context resolves imports against the export data of a module's full
// dependency graph. A single Context may type-check many packages (the
// driver's targets, or a test harness's fixture packages) against one
// shared file set and importer cache.
type Context struct {
	Fset       *token.FileSet
	exportFile map[string]string // import path -> export data file
	importer   types.Importer
}

// NewContext lists patterns (with -deps, so the whole dependency graph
// including the standard library is covered) in moduleDir and returns a
// Context that can type-check source against the resulting export data.
func NewContext(moduleDir string, patterns ...string) (*Context, []*ListedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleDir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	ctx := &Context{
		Fset:       token.NewFileSet(),
		exportFile: make(map[string]string),
	}
	var listed []*ListedPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(ListedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			ctx.exportFile[lp.ImportPath] = lp.Export
		}
		listed = append(listed, lp)
	}

	ctx.importer = importer.ForCompiler(ctx.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := ctx.exportFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return ctx, listed, nil
}

// NewInfo returns a types.Info with every map the analyzers rely on
// allocated, matching what go vet's unitchecker provides to a pass.
func NewInfo() *types.Info {
	return &types.Info{
		Types:        make(map[ast.Expr]types.TypeAndValue),
		Defs:         make(map[*ast.Ident]types.Object),
		Uses:         make(map[*ast.Ident]types.Object),
		Implicits:    make(map[ast.Node]types.Object),
		Instances:    make(map[*ast.Ident]types.Instance),
		Scopes:       make(map[ast.Node]*types.Scope),
		Selections:   make(map[*ast.SelectorExpr]*types.Selection),
		FileVersions: make(map[*ast.File]string),
	}
}

// Check parses the named files and type-checks them as package path using
// the Context's export data for imports.
func (c *Context) Check(path string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(c.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := NewInfo()
	tc := &types.Config{
		Importer: c.importer,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := tc.Check(path, c.Fset, syntax, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: path,
		GoFiles:    files,
		Fset:       c.Fset,
		Syntax:     syntax,
		Types:      pkg,
		TypesInfo:  info,
		TypesSizes: tc.Sizes,
	}, nil
}

// Load lists patterns in moduleDir and type-checks every matched (root,
// non-standard-library) package from source. Test files are not analyzed;
// `go vet -vettool` covers those compilation units.
func Load(moduleDir string, patterns ...string) ([]*Package, error) {
	ctx, listed, err := NewContext(moduleDir, patterns...)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := ctx.Check(lp.ImportPath, files)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
		}
		pkg.Dir = lp.Dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Diagnostic is one analyzer finding, with its position resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// RunAnalyzers runs each analyzer over pkg and returns the combined
// diagnostics sorted by position. Analyzer dependencies (Requires) are
// executed first and their results made available via ResultOf; facts are
// not supported (no analyzer in this module uses them).
func RunAnalyzers(pkg *Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, err
	}
	var diags []Diagnostic
	results := make(map[*analysis.Analyzer]interface{})

	var exec func(a *analysis.Analyzer) error
	executed := make(map[*analysis.Analyzer]bool)
	exec = func(a *analysis.Analyzer) error {
		if executed[a] {
			return nil
		}
		executed[a] = true
		for _, req := range a.Requires {
			if err := exec(req); err != nil {
				return err
			}
		}
		inputs := make(map[*analysis.Analyzer]interface{})
		for _, req := range a.Requires {
			inputs[req] = results[req]
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Syntax,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.TypesInfo,
			TypesSizes: pkg.TypesSizes,
			ResultOf:   inputs,
			Report: func(d analysis.Diagnostic) {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			},
			ReadFile:          os.ReadFile,
			ImportObjectFact:  func(obj types.Object, fact analysis.Fact) bool { return false },
			ExportObjectFact:  func(obj types.Object, fact analysis.Fact) {},
			ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool { return false },
			ExportPackageFact: func(fact analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
		results[a] = res
		return nil
	}
	for _, a := range analyzers {
		if err := exec(a); err != nil {
			return nil, err
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		di, dj := diags[i], diags[j]
		if di.Pos.Filename != dj.Pos.Filename {
			return di.Pos.Filename < dj.Pos.Filename
		}
		if di.Pos.Line != dj.Pos.Line {
			return di.Pos.Line < dj.Pos.Line
		}
		return di.Message < dj.Message
	})
	return diags, nil
}
