// Package analysis is a vendored copy of golang.org/x/tools/go/analysis —
// the Analyzer/Pass/Diagnostic API that go vet's modular checkers are
// written against.
//
// The copy is taken verbatim (analysis.go, diagnostic.go, validate.go) from
// the Go toolchain's own vendored tree,
// $GOROOT/src/cmd/vendor/golang.org/x/tools/go/analysis, so analyzers in
// internal/analysis/... are source-compatible with the upstream API and
// could be moved onto it unchanged if this module ever takes on the x/tools
// dependency. Only the framework types are vendored; drivers (the package
// loader, the go vet -vettool shim, and the analysistest-style harness)
// are this repository's own: internal/lint/load, cmd/lcrqlint, and
// internal/lint/linttest.
//
// The code is covered by the Go authors' BSD-style license, reproduced in
// LICENSE in this directory.
package analysis
