// Package linttest is a miniature analysistest for the lcrqlint suite: it
// type-checks a fixture package from a testdata/src directory and compares
// the diagnostics an analyzer produces against `// want "regexp"` comments
// placed on the offending lines.
//
// The expectation syntax is the x/tools analysistest subset the suite
// needs: one or more quoted or backquoted regular expressions after the
// word "want", each of which must match exactly one diagnostic reported on
// that line, and every diagnostic must be claimed by an expectation. A
// want clause may follow another directive in the same line comment
// (`//lcrq:cold // want "..."`).
//
// Fixtures are type-checked against the module's real export data (see
// internal/lint/load), so they may import repo packages such as
// lcrq/internal/atomic128 alongside the standard library.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"lcrq/internal/lint/analysis"
	"lcrq/internal/lint/load"
)

var (
	ctxMu  sync.Mutex
	ctxs   = map[string]*load.Context{}
	ctxErr = map[string]error{}
)

// contextFor returns a cached load.Context for the module rooted at dir.
// Building one shells out to `go list -export -deps ./...`, so the result
// is shared across every Run call in a test binary.
func contextFor(modRoot string) (*load.Context, error) {
	ctxMu.Lock()
	defer ctxMu.Unlock()
	if err, ok := ctxErr[modRoot]; ok {
		return ctxs[modRoot], err
	}
	ctx, _, err := load.NewContext(modRoot, "./...")
	ctxs[modRoot] = ctx
	ctxErr[modRoot] = err
	return ctx, err
}

// moduleRoot walks up from the current (test) directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above test directory")
		}
		dir = parent
	}
}

// want is one expectation: a pattern that must match a diagnostic on its
// line.
type want struct {
	pos     string // file:line, for error reporting
	re      *regexp.Regexp
	matched bool
}

// wantStart locates the expectation marker inside a comment: the word
// "want" followed by a quoted or backquoted pattern, possibly after other
// directive text.
var wantStart = regexp.MustCompile("(?:^|[ \t/])want[ \t]+[\"`]")

// Run type-checks testdata/src/<fixture> relative to the calling test's
// directory, runs the single analyzer over it, and reports any mismatch
// between diagnostics and want comments as test errors.
func Run(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()

	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(cwd, "testdata", "src", fixture)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		t.Fatalf("no .go files in %s", dir)
	}

	modRoot, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := contextFor(modRoot)
	if err != nil {
		t.Fatalf("loading module export data: %v", err)
	}
	pkg, err := ctx.Check(fixture, files)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", fixture, err)
	}

	diags, err := load.RunAnalyzers(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, pkg)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		if !claim(wants[key], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matched want %q", w.pos, w.re)
			}
		}
	}
}

// claim marks the first unmatched expectation whose pattern matches msg.
func claim(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every want comment in the fixture, keyed by
// file:line.
func collectWants(t *testing.T, pkg *load.Package) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				loc := wantStart.FindStringIndex(c.Text)
				if loc == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				rest := c.Text[loc[1]-1:] // starts at the opening quote
				for {
					rest = strings.TrimLeft(rest, " \t")
					if rest == "" || (rest[0] != '"' && rest[0] != '`') {
						break
					}
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Errorf("%s: malformed want pattern: %s", pos, rest)
						break
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: malformed want pattern %s: %v", pos, q, err)
						break
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
						break
					}
					wants[key] = append(wants[key], &want{pos: key, re: re})
					rest = rest[len(q):]
				}
			}
		}
	}
	return wants
}
