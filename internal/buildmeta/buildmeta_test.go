package buildmeta

import (
	"encoding/json"
	"testing"
	"time"
)

// TestCollect: every field the trajectory tooling keys on must be
// populated — in particular the commit must resolve inside this git
// checkout (test binaries carry no VCS stamp, so this exercises the
// env/git fallbacks too).
func TestCollect(t *testing.T) {
	m := Collect()
	if m.GoMaxProcs < 1 {
		t.Errorf("GoMaxProcs = %d, want >= 1", m.GoMaxProcs)
	}
	if m.GoVersion == "" {
		t.Error("GoVersion empty")
	}
	if _, err := time.Parse(time.RFC3339, m.Timestamp); err != nil {
		t.Errorf("Timestamp %q not RFC 3339: %v", m.Timestamp, err)
	}
	if m.Commit == "" {
		t.Error("Commit empty (want a revision or the explicit \"unknown\")")
	}
	if m.Commit == "unknown" {
		t.Log("commit resolved to \"unknown\" — no git checkout visible")
	}
}

// TestEnvOverride: LCRQ_COMMIT wins over every other source, so CI can pin
// the exact checked-out revision regardless of how the tool was invoked.
func TestEnvOverride(t *testing.T) {
	t.Setenv("LCRQ_COMMIT", "deadbeef")
	m := Collect()
	if m.Commit != "deadbeef" || m.Dirty {
		t.Fatalf("Collect with LCRQ_COMMIT = %+v, want commit deadbeef, clean", m)
	}
}

// TestMarshalShape: the JSON field names are the sidecar contract the
// e2e baseline comparator parses; lock them.
func TestMarshalShape(t *testing.T) {
	b, err := json.Marshal(Meta{Commit: "c", GoMaxProcs: 4, GoVersion: "go", Timestamp: "t"})
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"commit", "gomaxprocs", "go_version", "timestamp"} {
		if _, ok := out[k]; !ok {
			t.Errorf("marshalled Meta missing %q: %s", k, b)
		}
	}
}
