// Package buildmeta stamps benchmark artifacts with the provenance needed
// to compare them across commits. A BENCH_*.json trajectory is only a
// trajectory if each point says which commit produced it, on how many
// processors, and when — without those three, cross-PR comparison is
// guesswork (two sidecars with different throughput might differ by code,
// by machine shape, or by age, and nothing in the file says which).
package buildmeta

import (
	"context"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// Meta identifies one benchmark run. It is embedded verbatim (as "meta")
// in every JSON sidecar the repo's benchmark tools emit.
type Meta struct {
	// Commit is the VCS revision of the benchmarked tree, or "unknown"
	// when neither the build stamp, the LCRQ_COMMIT environment variable,
	// nor a git checkout is available.
	Commit string `json:"commit"`
	// Dirty reports uncommitted changes in the benchmarked tree (only
	// known when the commit came from the Go build stamp).
	Dirty bool `json:"dirty,omitempty"`
	// GoMaxProcs is runtime.GOMAXPROCS at collection time — the processor
	// budget every throughput number in the artifact was measured under.
	GoMaxProcs int `json:"gomaxprocs"`
	// GoVersion is the runtime's version string.
	GoVersion string `json:"go_version"`
	// Timestamp is the collection time, RFC 3339 in UTC.
	Timestamp string `json:"timestamp"`
}

// Collect gathers the current process's build metadata. The commit is
// resolved in order of reliability: the LCRQ_COMMIT environment variable
// (CI knows exactly what it checked out), the Go toolchain's VCS build
// stamp (absent under `go run` and `go test`), then `git rev-parse HEAD`
// with a short timeout (covers the common in-checkout invocations).
func Collect() Meta {
	m := Meta{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
	}
	m.Commit, m.Dirty = commit()
	return m
}

func commit() (rev string, dirty bool) {
	if env := strings.TrimSpace(os.Getenv("LCRQ_COMMIT")); env != "" {
		return env, false
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if rev != "" {
			return rev, dirty
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	out, err := exec.CommandContext(ctx, "git", "rev-parse", "HEAD").Output()
	if err == nil {
		if rev = strings.TrimSpace(string(out)); rev != "" {
			return rev, false
		}
	}
	return "unknown", false
}
