package harness

import (
	"fmt"
	"time"

	"lcrq/internal/hist"
	"lcrq/internal/queues"
)

// Scale tunes how much work a figure run performs. The zero value selects
// the scaled-down defaults; Paper() selects the full configuration of the
// paper (10^7 pairs per thread, 10 runs), which takes minutes per figure.
type Scale struct {
	Pairs      int   // pairs per thread (0 = 20000)
	Runs       int   // repetitions (0 = 3)
	MaxThreads int   // clip thread axis (0 = no clip)
	Threads    []int // override thread axis entirely (nil = spec default)
	RingOrder  int   // override LCRQ ring order (0 = spec default)
	Pin        bool  // pin threads to CPUs
	// Capacity runs the LCRQ family bounded (governed mode, qbench
	// -capacity); Watchdog samples budget health during each run (qbench
	// -watchdog). See Workload.
	Capacity int64
	Watchdog time.Duration
}

func (s Scale) pairs() int {
	if s.Pairs <= 0 {
		return 20000
	}
	return s.Pairs
}

func (s Scale) runs() int {
	if s.Runs <= 0 {
		return 3
	}
	return s.Runs
}

// Paper returns the full-size configuration used in the paper.
func Paper() Scale { return Scale{Pairs: 10_000_000, Runs: 10} }

// FigureSpec declares one throughput figure: which queues, which thread
// counts, what placement and prefill.
type FigureSpec struct {
	ID        string
	Title     string
	Queues    []string
	Threads   []int
	Placement Placement
	Clusters  int // RoundRobin cluster count (0 = detected)
	Prefill   int
	MaxDelay  int
	RingOrder int
	// EnqRatio switches the figure to the mixed-workload extension (see
	// Workload.EnqRatio); the paper's figures leave it 0.
	EnqRatio float64
}

// Figure6aThreads is the paper's single-processor thread axis (20 hardware
// threads on one Westmere EX package).
var Figure6aThreads = []int{1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20}

// Figure6bThreads oversubscribes a single processor (the first point is
// maximal hardware concurrency, included for reference).
var Figure6bThreads = []int{20, 30, 40, 60, 80, 120, 160}

// Figure7Threads is the paper's four-processor thread axis.
var Figure7Threads = []int{1, 2, 4, 8, 16, 24, 32, 40, 48, 56, 64, 72, 80}

// Figures returns the throughput figure specifications, keyed by figure id.
func Figures() map[string]FigureSpec {
	return map[string]FigureSpec{
		"6a": {
			ID:        "6a",
			Title:     "Single processor, queue initially empty",
			Queues:    []string{"lcrq", "lcrq-cas", "cc-queue", "fc-queue", "ms-queue"},
			Threads:   Figure6aThreads,
			Placement: SingleCluster,
			MaxDelay:  100,
		},
		"6b": {
			ID:        "6b",
			Title:     "Single processor, oversubscribed (threads > hardware threads)",
			Queues:    []string{"lcrq", "lcrq-cas", "cc-queue", "fc-queue", "ms-queue"},
			Threads:   Figure6bThreads,
			Placement: SingleCluster,
			MaxDelay:  100,
		},
		"7a": {
			ID:        "7a",
			Title:     "Four processors, queue initially filled with 2^16 items",
			Queues:    []string{"lcrq+h", "lcrq", "lcrq-cas", "h-queue", "cc-queue"},
			Threads:   Figure7Threads,
			Placement: RoundRobin,
			Clusters:  4,
			Prefill:   1 << 16,
			MaxDelay:  100,
		},
		"7b": {
			ID:        "7b",
			Title:     "Four processors, queue initially empty",
			Queues:    []string{"lcrq+h", "lcrq", "lcrq-cas", "h-queue", "cc-queue"},
			Threads:   Figure7Threads,
			Placement: RoundRobin,
			Clusters:  4,
			MaxDelay:  100,
		},
	}
}

// Point is one measurement along a figure's x axis.
type Point struct {
	X    int     // thread count (or ring order for Figure 9)
	Mops float64 // mean throughput, million ops/s
	CI   float64 // 95% confidence half-width
}

// Series is one queue's line in a figure.
type Series struct {
	Queue  string
	Points []Point
}

// GovernancePoint records the budget outcome of one governed measurement.
type GovernancePoint struct {
	Queue   string                 `json:"queue"`
	Threads int                    `json:"threads"`
	Stats   queues.GovernanceStats `json:"stats"`
}

// FigureResult is the data behind one rendered figure.
type FigureResult struct {
	Spec      FigureSpec
	Scale     Scale
	Series    []Series
	Simulated bool
	Pinned    bool
	HostCPUs  int
	HostPkgs  int
	// Governance holds per-point budget outcomes when the figure ran in
	// governed mode (Scale.Capacity/Watchdog); empty otherwise.
	Governance []GovernancePoint
}

// RunFigure measures every (queue, threads) point of the spec.
func RunFigure(spec FigureSpec, sc Scale) (*FigureResult, error) {
	sc.Pairs, sc.Runs = sc.pairs(), sc.runs() // effective values, for display
	threads := spec.Threads
	if sc.Threads != nil {
		threads = sc.Threads
	}
	if sc.MaxThreads > 0 {
		clipped := threads[:0:0]
		for _, t := range threads {
			if t <= sc.MaxThreads {
				clipped = append(clipped, t)
			}
		}
		if len(clipped) == 0 {
			clipped = []int{sc.MaxThreads}
		}
		threads = clipped
	}
	out := &FigureResult{Spec: spec, Scale: sc}
	for _, qname := range spec.Queues {
		s := Series{Queue: qname}
		for _, th := range threads {
			w := Workload{
				Queue:     qname,
				Threads:   th,
				Pairs:     sc.pairs(),
				Prefill:   spec.Prefill,
				MaxDelay:  spec.MaxDelay,
				Placement: spec.Placement,
				Clusters:  spec.Clusters,
				RingOrder: pick(sc.RingOrder, spec.RingOrder),
				Runs:      sc.runs(),
				Pin:       sc.Pin,
				EnqRatio:  spec.EnqRatio,
				Capacity:  sc.Capacity,
				Watchdog:  sc.Watchdog,
			}
			r, err := Run(w)
			if err != nil {
				return nil, fmt.Errorf("figure %s, queue %s, %d threads: %w",
					spec.ID, qname, th, err)
			}
			s.Points = append(s.Points, Point{X: th, Mops: r.Mops.Mean(), CI: r.Mops.CI95()})
			if r.Governance != nil {
				out.Governance = append(out.Governance,
					GovernancePoint{Queue: qname, Threads: th, Stats: *r.Governance})
			}
			out.Simulated = out.Simulated || r.Simulated
			out.Pinned = r.Pinned
			out.HostCPUs = r.HostCPUs
			out.HostPkgs = r.HostPkgs
		}
		out.Series = append(out.Series, s)
	}
	return out, nil
}

func pick(a, b int) int {
	if a != 0 {
		return a
	}
	return b
}

// ---- Figure 8: latency CDFs ----

// LatencySpec declares one latency-distribution figure.
type LatencySpec struct {
	ID        string
	Title     string
	Queues    []string
	Threads   int
	Placement Placement
	Clusters  int
	MaxDelay  int
}

// LatencyFigures returns the Figure 8 specifications.
func LatencyFigures() map[string]LatencySpec {
	return map[string]LatencySpec{
		"8a": {
			ID:        "8a",
			Title:     "20 threads on a single processor, queue initially empty",
			Queues:    []string{"lcrq", "cc-queue", "fc-queue", "ms-queue"},
			Threads:   20,
			Placement: SingleCluster,
			MaxDelay:  100,
		},
		"8b": {
			ID:        "8b",
			Title:     "80 threads on four processors, queue initially empty",
			Queues:    []string{"lcrq+h", "lcrq", "h-queue", "cc-queue"},
			Threads:   80,
			Placement: RoundRobin,
			Clusters:  4,
			MaxDelay:  100,
		},
	}
}

// CDFSeries is one queue's latency distribution.
type CDFSeries struct {
	Queue  string
	Hist   *hist.H
	MeanNs float64
}

// LatencyResult is the data behind one latency figure.
type LatencyResult struct {
	Spec   LatencySpec
	Series []CDFSeries
}

// RunLatencyFigure samples operation latency for every queue in the spec.
func RunLatencyFigure(spec LatencySpec, sc Scale) (*LatencyResult, error) {
	out := &LatencyResult{Spec: spec}
	for _, qname := range spec.Queues {
		w := Workload{
			Queue:         qname,
			Threads:       spec.Threads,
			Pairs:         sc.pairs(),
			MaxDelay:      spec.MaxDelay,
			Placement:     spec.Placement,
			Clusters:      spec.Clusters,
			RingOrder:     sc.RingOrder,
			Runs:          1, // distributions accumulate enough samples in one run
			Pin:           sc.Pin,
			LatencySample: 16,
			Capacity:      sc.Capacity,
			Watchdog:      sc.Watchdog,
		}
		if sc.MaxThreads > 0 && w.Threads > sc.MaxThreads {
			w.Threads = sc.MaxThreads
		}
		r, err := Run(w)
		if err != nil {
			return nil, fmt.Errorf("latency figure %s, queue %s: %w", spec.ID, qname, err)
		}
		out.Series = append(out.Series, CDFSeries{
			Queue:  qname,
			Hist:   r.Hist,
			MeanNs: r.Hist.Mean(),
		})
	}
	return out, nil
}

// ---- Figure 9: ring-size sensitivity ----

// RingSweepSpec declares a ring-size sensitivity study.
type RingSweepSpec struct {
	ID         string
	Title      string
	Queue      string   // swept queue (lcrq or lcrq+h)
	References []string // flat reference lines (cc-queue / h-queue)
	Threads    int
	Placement  Placement
	Clusters   int
	Orders     []int // ring orders to sweep (R = 2^order)
	MaxDelay   int
}

// RingSweeps returns the Figure 9 specifications.
func RingSweeps() map[string]RingSweepSpec {
	orders := []int{3, 5, 7, 9, 11, 13, 15, 17}
	return map[string]RingSweepSpec{
		"9a": {
			ID:         "9a",
			Title:      "Ring size impact, single processor, 20 threads",
			Queue:      "lcrq",
			References: []string{"cc-queue"},
			Threads:    20,
			Placement:  SingleCluster,
			Orders:     orders,
			MaxDelay:   100,
		},
		"9b": {
			ID:         "9b",
			Title:      "Ring size impact, four processors, 80 threads",
			Queue:      "lcrq",
			References: []string{"cc-queue", "h-queue"},
			Threads:    80,
			Placement:  RoundRobin,
			Clusters:   4,
			Orders:     orders,
			MaxDelay:   100,
		},
		"9c": {
			ID:         "9c",
			Title:      "Ring size impact on LCRQ+H, four processors, 80 threads",
			Queue:      "lcrq+h",
			References: []string{"h-queue"},
			Threads:    80,
			Placement:  RoundRobin,
			Clusters:   4,
			Orders:     orders,
			MaxDelay:   100,
		},
	}
}

// RingSweepResult is the data behind one ring sweep.
type RingSweepResult struct {
	Spec       RingSweepSpec
	Swept      Series  // X = ring order
	References []Point // one throughput value per reference queue, X unused
	RefNames   []string
}

// RunRingSweep measures the swept queue at each ring order plus the flat
// references.
func RunRingSweep(spec RingSweepSpec, sc Scale) (*RingSweepResult, error) {
	out := &RingSweepResult{Spec: spec}
	threads := spec.Threads
	if sc.MaxThreads > 0 && threads > sc.MaxThreads {
		threads = sc.MaxThreads
	}
	base := Workload{
		Threads:   threads,
		Pairs:     sc.pairs(),
		MaxDelay:  spec.MaxDelay,
		Placement: spec.Placement,
		Clusters:  spec.Clusters,
		Runs:      sc.runs(),
		Pin:       sc.Pin,
		Capacity:  sc.Capacity,
		Watchdog:  sc.Watchdog,
	}
	out.Swept.Queue = spec.Queue
	for _, order := range spec.Orders {
		w := base
		w.Queue = spec.Queue
		w.RingOrder = order
		r, err := Run(w)
		if err != nil {
			return nil, fmt.Errorf("ring sweep %s at order %d: %w", spec.ID, order, err)
		}
		out.Swept.Points = append(out.Swept.Points,
			Point{X: order, Mops: r.Mops.Mean(), CI: r.Mops.CI95()})
	}
	for _, ref := range spec.References {
		w := base
		w.Queue = ref
		r, err := Run(w)
		if err != nil {
			return nil, fmt.Errorf("ring sweep %s reference %s: %w", spec.ID, ref, err)
		}
		out.References = append(out.References, Point{Mops: r.Mops.Mean(), CI: r.Mops.CI95()})
		out.RefNames = append(out.RefNames, ref)
	}
	return out, nil
}

// ---- Tables 2 and 3: per-operation statistics ----

// TableSpec declares one statistics table.
type TableSpec struct {
	ID        string
	Title     string
	Queues    []string
	Threads   []int // table 2 reports 1 and 20 threads
	Placement Placement
	Clusters  int
	Prefills  []int // table 3 reports empty and full
	MaxDelay  int
}

// Tables returns the Table 2 and Table 3 specifications.
func Tables() map[string]TableSpec {
	return map[string]TableSpec{
		"2": {
			ID:        "2",
			Title:     "Single processor average per-operation statistics",
			Queues:    []string{"lcrq", "lcrq-cas", "cc-queue", "fc-queue", "ms-queue"},
			Threads:   []int{1, 20},
			Placement: SingleCluster,
			Prefills:  []int{0},
			MaxDelay:  100,
		},
		"3": {
			ID:        "3",
			Title:     "Four processor average per-operation statistics (80 threads)",
			Queues:    []string{"lcrq+h", "lcrq", "lcrq-cas", "h-queue", "cc-queue"},
			Threads:   []int{80},
			Placement: RoundRobin,
			Clusters:  4,
			Prefills:  []int{0, 1 << 16},
			MaxDelay:  100,
		},
	}
}

// TableCell is the measured statistics of one queue at one configuration.
type TableCell struct {
	Queue        string
	Threads      int
	Prefill      int
	LatencyUs    float64 // mean per-operation latency in µs
	AtomicsPerOp float64
	CASFailPerOp float64 // software substitute for the cache-miss columns
	RetriesPerOp float64 // CRQ cell retries / combining batch overhead
	Mops         float64
}

// TableResult is the data behind one statistics table.
type TableResult struct {
	Spec  TableSpec
	Cells []TableCell
}

// RunTable measures every cell of the table spec.
func RunTable(spec TableSpec, sc Scale) (*TableResult, error) {
	out := &TableResult{Spec: spec}
	for _, prefill := range spec.Prefills {
		for _, th := range spec.Threads {
			threads := th
			if sc.MaxThreads > 0 && threads > sc.MaxThreads {
				threads = sc.MaxThreads
			}
			for _, qname := range spec.Queues {
				w := Workload{
					Queue:     qname,
					Threads:   threads,
					Pairs:     sc.pairs(),
					Prefill:   prefill,
					MaxDelay:  spec.MaxDelay,
					Placement: spec.Placement,
					Clusters:  spec.Clusters,
					RingOrder: sc.RingOrder,
					Runs:      sc.runs(),
					Pin:       sc.Pin,
					Capacity:  sc.Capacity,
					Watchdog:  sc.Watchdog,
				}
				r, err := Run(w)
				if err != nil {
					return nil, fmt.Errorf("table %s, queue %s: %w", spec.ID, qname, err)
				}
				ops := float64(r.Counters.Ops())
				var latencyUs float64
				if ops > 0 {
					// Total thread-time divided by ops: wall × threads / ops.
					latencyUs = r.WallPerRun.Seconds() * float64(threads) * 1e6 /
						(float64(r.OpsPerRun))
				}
				cell := TableCell{
					Queue:        qname,
					Threads:      threads,
					Prefill:      prefill,
					LatencyUs:    latencyUs,
					AtomicsPerOp: r.Counters.AtomicsPerOp(),
					CASFailPerOp: r.Counters.CASFailuresPerOp(),
					RetriesPerOp: float64(r.Counters.CellRetries) / maxF(ops, 1),
					Mops:         r.Mops.Mean(),
				}
				out.Cells = append(out.Cells, cell)
			}
		}
	}
	return out, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
