package harness

import (
	"strings"
	"testing"
)

// TestBatchWorkloadVerify runs the batched workload with the conservation
// check on: every enqueued item must be accounted for after the post-run
// drain, and the batch counters must show the batched path actually ran.
func TestBatchWorkloadVerify(t *testing.T) {
	r, err := Run(Workload{
		Queue: "lcrq", Threads: 3, Pairs: 240, Batch: 8, MaxDelay: 10,
		Placement: SingleCluster, Runs: 2, RingOrder: 4, Verify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mops.Mean() <= 0 {
		t.Fatal("no throughput measured")
	}
	if r.Counters.BatchEnqueues == 0 || r.Counters.BatchDequeues == 0 {
		t.Fatalf("batch counters empty: enq=%d deq=%d",
			r.Counters.BatchEnqueues, r.Counters.BatchDequeues)
	}
	// Item volume matches the pairs workload: Pairs items enqueued per
	// thread per run, all of them batched.
	if want := uint64(2 * 3 * 240); r.Counters.Enqueues != want {
		t.Fatalf("constituent enqueues = %d, want %d", r.Counters.Enqueues, want)
	}
	// One F&A reserves a whole block, so the batched run must spend far
	// fewer F&As per item than the one-per-op baseline.
	perItem := float64(r.Counters.FAA) / float64(r.Counters.Ops())
	if perItem >= 1 {
		t.Fatalf("F&A per item = %.2f; batching amortized nothing", perItem)
	}
}

// TestBatchWorkloadValidation pins the rejection rules: batch mode is
// incompatible with the mixed EnqRatio workload, and queues without batch
// handles are refused with a diagnostic naming the capability.
func TestBatchWorkloadValidation(t *testing.T) {
	if _, err := Run(Workload{
		Queue: "lcrq", Threads: 1, Pairs: 10, Batch: 4, EnqRatio: 0.5,
	}); err == nil {
		t.Fatal("Batch with EnqRatio accepted")
	}
	_, err := Run(Workload{Queue: "ms-queue", Threads: 1, Pairs: 10, Batch: 4})
	if err == nil {
		t.Fatal("batch workload on a queue without batch support accepted")
	}
	if !strings.Contains(err.Error(), "batch") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestRunBatchSweepSmoke runs a tiny two-point sweep and checks the result
// shape and the amortization signal: the larger block size must spend fewer
// F&As per item.
func TestRunBatchSweepSmoke(t *testing.T) {
	spec := BatchSweep()
	spec.Threads = 2
	spec.Sizes = []int{1, 16}
	res, err := RunBatchSweep(spec, Scale{Pairs: 2000, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(res.Points))
	}
	for i, k := range spec.Sizes {
		p := res.Points[i]
		if p.K != k {
			t.Fatalf("point %d has K=%d, want %d", i, p.K, k)
		}
		if p.Mops <= 0 || p.FAAPerItem <= 0 {
			t.Fatalf("point %d degenerate: %+v", i, p)
		}
	}
	if res.Points[1].FAAPerItem >= res.Points[0].FAAPerItem {
		t.Fatalf("no amortization: k=1 %.3f vs k=16 %.3f F&A/item",
			res.Points[0].FAAPerItem, res.Points[1].FAAPerItem)
	}
}
