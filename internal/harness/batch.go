package harness

import (
	"fmt"
)

// ---- Batch sweep (extension): batched operations, one F&A per k items ----

// BatchSweepSpec declares a batch-size sensitivity study: the same pairs
// workload executed with EnqueueBatch/DequeueBatch blocks of each size in
// Sizes (1 = the plain per-item loop, the baseline).
type BatchSweepSpec struct {
	ID        string
	Title     string
	Queue     string // swept queue (must support batch operations for k > 1)
	Threads   int
	Placement Placement
	Clusters  int
	Sizes     []int // batch sizes to sweep
	MaxDelay  int
}

// BatchSweep returns the default batch-size study specification.
func BatchSweep() BatchSweepSpec {
	return BatchSweepSpec{
		ID:       "batch",
		Title:    "Batched operations: one fetch-and-add per k items",
		Queue:    "lcrq",
		Threads:  4,
		Sizes:    []int{1, 4, 16, 64},
		MaxDelay: 100,
	}
}

// BatchPoint is one measurement of a batch sweep.
type BatchPoint struct {
	K          int     `json:"k"`            // batch size
	Mops       float64 `json:"mops"`         // item throughput, million ops/s
	CI         float64 `json:"ci95"`         // 95% confidence half-width
	FAAPerItem float64 `json:"faa_per_item"` // F&A instructions per completed item op
	Spills     uint64  `json:"spills"`       // batches that spilled into a new ring
}

// BatchSweepResult is the data behind one batch sweep.
type BatchSweepResult struct {
	Spec    BatchSweepSpec
	Points  []BatchPoint
	Results []*Result // full per-size results, parallel to Points
}

// RunBatchSweep measures the queue at each batch size. The F&A-per-item
// column is the sweep's point: the batched reservation issues one
// fetch-and-add per block instead of one per item, so the ratio should fall
// roughly as 1/k until protocol retries dominate.
func RunBatchSweep(spec BatchSweepSpec, sc Scale) (*BatchSweepResult, error) {
	out := &BatchSweepResult{Spec: spec}
	threads := spec.Threads
	if sc.MaxThreads > 0 && threads > sc.MaxThreads {
		threads = sc.MaxThreads
	}
	for _, k := range spec.Sizes {
		w := Workload{
			Queue:     spec.Queue,
			Threads:   threads,
			Pairs:     sc.pairs(),
			MaxDelay:  spec.MaxDelay,
			Placement: spec.Placement,
			Clusters:  spec.Clusters,
			RingOrder: sc.RingOrder,
			Runs:      sc.runs(),
			Pin:       sc.Pin,
			Capacity:  sc.Capacity,
			Watchdog:  sc.Watchdog,
			Batch:     k,
		}
		r, err := Run(w)
		if err != nil {
			return nil, fmt.Errorf("batch sweep %s at k=%d: %w", spec.ID, k, err)
		}
		p := BatchPoint{
			K:      k,
			Mops:   r.Mops.Mean(),
			CI:     r.Mops.CI95(),
			Spills: r.Counters.BatchSpill,
		}
		if ops := r.Counters.Ops(); ops > 0 {
			p.FAAPerItem = float64(r.Counters.FAA) / float64(ops)
		}
		out.Points = append(out.Points, p)
		out.Results = append(out.Results, r)
	}
	return out, nil
}
