package harness

import (
	"testing"
	"time"
)

func tiny() Scale { return Scale{Pairs: 300, Runs: 1, MaxThreads: 4} }

func TestRunBasic(t *testing.T) {
	r, err := Run(Workload{
		Queue: "lcrq", Threads: 3, Pairs: 500, MaxDelay: 20,
		Placement: SingleCluster, Runs: 2, RingOrder: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Mops.N() != 2 {
		t.Fatalf("runs recorded = %d", r.Mops.N())
	}
	if r.Mops.Mean() <= 0 {
		t.Fatal("no throughput measured")
	}
	if r.OpsPerRun != 2*3*500 {
		t.Fatalf("OpsPerRun = %d", r.OpsPerRun)
	}
	// Counters must cover both runs: 2 runs × 3 threads × 500 pairs × 2 ops.
	if got := r.Counters.Ops(); got != 2*2*3*500 {
		t.Fatalf("counter ops = %d", got)
	}
}

func TestRunEveryQueueSmoke(t *testing.T) {
	for _, name := range []string{"lcrq", "lcrq-cas", "lcrq+h", "cc-queue",
		"h-queue", "fc-queue", "ms-queue", "twolock", "channel", "kp-queue",
		"sim-queue"} {
		t.Run(name, func(t *testing.T) {
			r, err := Run(Workload{
				Queue: name, Threads: 4, Pairs: 200, MaxDelay: 10,
				Placement: RoundRobin, Clusters: 2, Runs: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Mops.Mean() <= 0 {
				t.Fatal("no throughput")
			}
		})
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Workload{Queue: "lcrq", Threads: 0, Pairs: 1}); err == nil {
		t.Fatal("zero threads accepted")
	}
	if _, err := Run(Workload{Queue: "lcrq", Threads: 1, Pairs: 0}); err == nil {
		t.Fatal("zero pairs accepted")
	}
	if _, err := Run(Workload{Queue: "nope", Threads: 1, Pairs: 1}); err == nil {
		t.Fatal("unknown queue accepted")
	}
	if _, err := Run(Workload{Queue: "lcrq", Threads: 1, Pairs: 1, Placement: Placement(9)}); err == nil {
		t.Fatal("bad placement accepted")
	}
}

func TestPrefillCounted(t *testing.T) {
	r, err := Run(Workload{
		Queue: "lcrq", Threads: 2, Pairs: 100, Prefill: 5000,
		Placement: SingleCluster, Runs: 1, RingOrder: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Prefill enqueues are performed outside the measured loop but appear
	// in no counters (the prefill handle is discarded); worker ops only.
	if got := r.Counters.Ops(); got != 2*2*100 {
		t.Fatalf("counter ops = %d", got)
	}
}

func TestLatencySampling(t *testing.T) {
	r, err := Run(Workload{
		Queue: "lcrq", Threads: 2, Pairs: 2000, Placement: SingleCluster,
		Runs: 1, LatencySample: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Hist == nil || r.Hist.Count() == 0 {
		t.Fatal("no latency samples collected")
	}
	// 2 threads × 4000 ops, every 4th sampled → about 2000 samples.
	if n := r.Hist.Count(); n < 1500 || n > 2500 {
		t.Fatalf("sample count = %d, want ≈2000", n)
	}
	if r.Hist.Quantile(0.5) <= 0 {
		t.Fatal("nonpositive median latency")
	}
}

func TestSpinWaitRoughCalibration(t *testing.T) {
	spinWait(1) // force calibration
	t0 := time.Now()
	const per = 10000
	for i := 0; i < 200; i++ {
		spinWait(per)
	}
	got := time.Since(t0).Nanoseconds()
	want := int64(200 * per)
	// Very loose bounds: scheduling noise is fine, order of magnitude isn't.
	if got < want/20 || got > want*100 {
		t.Fatalf("200 spinWait(%d) took %d ns, want about %d", per, got, want)
	}
	spinWait(0)  // no-op path
	spinWait(-5) // no-op path
}

func TestRunFigureScaled(t *testing.T) {
	spec := FigureSpec{
		ID: "test", Queues: []string{"lcrq", "ms-queue"},
		Threads: []int{1, 2, 8}, Placement: SingleCluster, MaxDelay: 10,
	}
	res, err := RunFigure(spec, Scale{Pairs: 200, Runs: 1, MaxThreads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) != 2 { // 8 was clipped by MaxThreads
			t.Fatalf("%s: points = %d, want 2", s.Queue, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Mops <= 0 {
				t.Fatalf("%s @%d: zero throughput", s.Queue, p.X)
			}
		}
	}
}

func TestRunFigureThreadOverride(t *testing.T) {
	spec := Figures()["6a"]
	spec.Queues = []string{"lcrq"}
	res, err := RunFigure(spec, Scale{Pairs: 100, Runs: 1, Threads: []int{1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	pts := res.Series[0].Points
	if len(pts) != 2 || pts[0].X != 1 || pts[1].X != 3 {
		t.Fatalf("points = %+v", pts)
	}
}

func TestFigureSpecsWellFormed(t *testing.T) {
	for id, spec := range Figures() {
		if spec.ID != id {
			t.Fatalf("figure %s has ID %s", id, spec.ID)
		}
		if len(spec.Queues) == 0 || len(spec.Threads) == 0 {
			t.Fatalf("figure %s empty", id)
		}
	}
	for id, spec := range LatencyFigures() {
		if spec.ID != id || len(spec.Queues) == 0 || spec.Threads == 0 {
			t.Fatalf("latency figure %s malformed", id)
		}
	}
	for id, spec := range RingSweeps() {
		if spec.ID != id || spec.Queue == "" || len(spec.Orders) == 0 {
			t.Fatalf("ring sweep %s malformed", id)
		}
	}
	for id, spec := range Tables() {
		if spec.ID != id || len(spec.Queues) == 0 {
			t.Fatalf("table %s malformed", id)
		}
	}
}

func TestRunLatencyFigureScaled(t *testing.T) {
	spec := LatencySpec{
		ID: "t", Queues: []string{"lcrq", "cc-queue"}, Threads: 8,
		Placement: SingleCluster, MaxDelay: 10,
	}
	res, err := RunLatencyFigure(spec, Scale{Pairs: 1000, MaxThreads: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if s.Hist == nil || s.Hist.Count() == 0 {
			t.Fatalf("%s: empty histogram", s.Queue)
		}
		if s.MeanNs <= 0 {
			t.Fatalf("%s: MeanNs = %v", s.Queue, s.MeanNs)
		}
	}
}

func TestRunRingSweepScaled(t *testing.T) {
	spec := RingSweepSpec{
		ID: "t", Queue: "lcrq", References: []string{"cc-queue"},
		Threads: 4, Placement: SingleCluster, Orders: []int{3, 6}, MaxDelay: 10,
	}
	res, err := RunRingSweep(spec, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Swept.Points) != 2 {
		t.Fatalf("swept points = %d", len(res.Swept.Points))
	}
	if len(res.References) != 1 || res.RefNames[0] != "cc-queue" {
		t.Fatalf("references: %v %v", res.References, res.RefNames)
	}
}

func TestRunTableScaled(t *testing.T) {
	spec := TableSpec{
		ID: "t", Queues: []string{"lcrq", "ms-queue"}, Threads: []int{1, 4},
		Placement: SingleCluster, Prefills: []int{0, 100}, MaxDelay: 10,
	}
	res, err := RunTable(spec, tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2*2*2 {
		t.Fatalf("cells = %d, want 8", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.LatencyUs <= 0 || c.AtomicsPerOp <= 0 {
			t.Fatalf("cell %+v has empty stats", c)
		}
	}
}

func TestOversubscriptionRuns(t *testing.T) {
	// More threads than this host can possibly have; must still complete.
	r, err := Run(Workload{
		Queue: "lcrq", Threads: 32, Pairs: 50,
		Placement: SingleCluster, Runs: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters.Ops() != 2*32*50 {
		t.Fatalf("ops = %d", r.Counters.Ops())
	}
}

func TestVerifyConservation(t *testing.T) {
	// Every registered queue must conserve items under the pairs workload
	// with prefill; this doubles as a deep end-to-end correctness check of
	// the harness accounting itself.
	for _, name := range []string{"lcrq", "cc-queue", "fc-queue", "ms-queue",
		"sim-queue", "kp-queue"} {
		t.Run(name, func(t *testing.T) {
			_, err := Run(Workload{
				Queue: name, Threads: 4, Pairs: 1000, Prefill: 333,
				Placement: SingleCluster, Runs: 2, Verify: true, RingOrder: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestVerifyConservationMixed(t *testing.T) {
	_, err := Run(Workload{
		Queue: "lcrq", Threads: 3, Pairs: 2000, Prefill: 100,
		Placement: SingleCluster, Runs: 1, Verify: true, EnqRatio: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMixedWorkload(t *testing.T) {
	r, err := Run(Workload{
		Queue: "lcrq", Threads: 2, Pairs: 2000, Prefill: 500,
		Placement: SingleCluster, Runs: 1, EnqRatio: 0.3, RingOrder: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	c := r.Counters
	if c.Ops() != 2*2*2000 {
		t.Fatalf("ops = %d, want %d", c.Ops(), 2*2*2000)
	}
	// A 30% enqueue mix must be dequeue-heavy.
	if c.Enqueues >= c.Dequeues {
		t.Fatalf("enq=%d deq=%d: not dequeue-heavy", c.Enqueues, c.Dequeues)
	}
	// Rough binomial check: enqueue fraction within 5 points of 0.3.
	frac := float64(c.Enqueues) / float64(c.Ops())
	if frac < 0.25 || frac > 0.35 {
		t.Fatalf("enqueue fraction = %.3f, want ≈0.30", frac)
	}
}

func TestMixedWorkloadLatencySampling(t *testing.T) {
	r, err := Run(Workload{
		Queue: "lcrq", Threads: 2, Pairs: 1000, Placement: SingleCluster,
		Runs: 1, EnqRatio: 0.5, LatencySample: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Hist == nil || r.Hist.Count() == 0 {
		t.Fatal("no latency samples in mixed mode")
	}
}

func TestPlacementString(t *testing.T) {
	if SingleCluster.String() != "single-cluster" || RoundRobin.String() != "round-robin" {
		t.Fatal("placement labels wrong")
	}
}
