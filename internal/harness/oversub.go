package harness

import (
	"fmt"
	"runtime"

	"lcrq/internal/instrument"
	"lcrq/internal/stats"
)

// ---- Oversubscription sweep (extension): fixed vs adaptive contention ----

// OversubSweepSpec declares an oversubscription study: the pairs workload at
// thread counts of 1×, 2×, 4×, … GOMAXPROCS, each point measured twice —
// once with the LCRQ family's fixed spin constants and once with the
// adaptive contention controller armed. Oversubscription is the regime the
// controller targets: with more threads than processors, a preempted
// enqueuer mid-transaction turns every fixed spin constant into either
// wasted cycles (too long) or a tantrum-close cascade (too short).
type OversubSweepSpec struct {
	ID          string
	Title       string
	Queue       string // swept queue (an LCRQ-family name, or the comparison is vacuous)
	Multipliers []int  // thread count = multiplier × GOMAXPROCS
	MaxDelay    int
}

// OversubSweep returns the default oversubscription study specification.
func OversubSweep() OversubSweepSpec {
	return OversubSweepSpec{
		ID:          "oversub",
		Title:       "Oversubscription: fixed spin constants vs adaptive contention controller",
		Queue:       "lcrq",
		Multipliers: []int{1, 2, 4, 8},
		MaxDelay:    100,
	}
}

// OversubCell is one variant's measurement at one thread count.
type OversubCell struct {
	Mops float64 `json:"mops"` // throughput, million ops/s
	CI   float64 `json:"ci95"` // 95% confidence half-width
	// Ring churn per million operations: tantrum-driven churn is what the
	// adaptive controller's widened starvation thresholds are meant to damp.
	ClosesPerMop  float64 `json:"closes_per_mop"`
	AppendsPerMop float64 `json:"appends_per_mop"`
	// Controller activity (zero for the fixed variant).
	AdaptRaises uint64 `json:"adapt_raises,omitempty"`
	AdaptSpins  uint64 `json:"adapt_spins,omitempty"`
}

// OversubPoint is one thread count's fixed-vs-adaptive comparison.
type OversubPoint struct {
	Multiplier int         `json:"multiplier"` // × GOMAXPROCS
	Threads    int         `json:"threads"`
	Fixed      OversubCell `json:"fixed"`
	Adaptive   OversubCell `json:"adaptive"`
}

// OversubSweepResult is the data behind one oversubscription sweep.
type OversubSweepResult struct {
	Spec   OversubSweepSpec
	Procs  int // GOMAXPROCS the multipliers were scaled by
	Points []OversubPoint
}

// RunOversubSweep measures the swept queue at each oversubscription level,
// fixed constants against the adaptive controller. Threads are deliberately
// not pinned: oversubscription only exists when the scheduler is free to
// preempt and migrate, which is the exact condition being studied.
func RunOversubSweep(spec OversubSweepSpec, sc Scale) (*OversubSweepResult, error) {
	procs := runtime.GOMAXPROCS(0)
	out := &OversubSweepResult{Spec: spec, Procs: procs}
	for _, mult := range spec.Multipliers {
		if mult < 1 {
			return nil, fmt.Errorf("oversub sweep %s: multiplier %d < 1", spec.ID, mult)
		}
		threads := mult * procs
		if sc.MaxThreads > 0 && threads > sc.MaxThreads {
			threads = sc.MaxThreads
		}
		p := OversubPoint{Multiplier: mult, Threads: threads}
		// The variants are measured in interleaved single runs rather than
		// two blocks of sc.runs() each: background load on a shared machine
		// drifts over seconds, and a blocked schedule hands one variant the
		// slow period wholesale. Pairing run i of both variants back to back
		// makes the drift common-mode, so the delta column is meaningful at
		// noise levels where the absolute Mops are not.
		var mops [2]stats.Sample
		var ctrs [2]instrument.Counters
		for run := 0; run < sc.runs(); run++ {
			// Alternate which variant goes first: the second run of a pair
			// inherits the first's garbage (the discarded queue's rings), so
			// a fixed order would bias one variant with the other's GC debt.
			order := []int{0, 1}
			if run%2 == 1 {
				order = []int{1, 0}
			}
			for _, v := range order {
				adaptive := v == 1
				// Pay the previous run's collection debt outside the
				// measured window.
				runtime.GC()
				w := Workload{
					Queue:     spec.Queue,
					Threads:   threads,
					Pairs:     sc.pairs(),
					MaxDelay:  spec.MaxDelay,
					Placement: SingleCluster,
					RingOrder: sc.RingOrder,
					Runs:      1,
					Pin:       false,
					Verify:    true,
					Capacity:  sc.Capacity,
					Watchdog:  sc.Watchdog,
					Adaptive:  adaptive,
				}
				r, err := Run(w)
				if err != nil {
					return nil, fmt.Errorf("oversub sweep %s at %d threads (adaptive=%v): %w",
						spec.ID, threads, adaptive, err)
				}
				mops[v].Add(r.Mops.Mean())
				ctrs[v].Add(&r.Counters)
			}
		}
		for v := range mops {
			cell := OversubCell{
				Mops:        mops[v].Mean(),
				CI:          mops[v].CI95(),
				AdaptRaises: ctrs[v].AdaptRaises,
				AdaptSpins:  ctrs[v].AdaptSpins,
			}
			if ops := ctrs[v].Ops(); ops > 0 {
				cell.ClosesPerMop = float64(ctrs[v].Closes) * 1e6 / float64(ops)
				cell.AppendsPerMop = float64(ctrs[v].Appends) * 1e6 / float64(ops)
			}
			if v == 1 {
				p.Adaptive = cell
			} else {
				p.Fixed = cell
			}
		}
		out.Points = append(out.Points, p)
	}
	return out, nil
}
