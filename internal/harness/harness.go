// Package harness implements the paper's benchmark methodology (§5):
//
//   - every thread executes a fixed number of enqueue/dequeue pairs;
//   - a random delay of up to MaxDelayNs nanoseconds (the paper uses 100)
//     separates consecutive operations, preventing artificial "long runs";
//   - threads are locked to OS threads and, where the platform allows,
//     pinned to hardware threads according to a placement policy
//     (single-cluster for the single-processor experiments, round-robin
//     across clusters for the multi-processor ones);
//   - each configuration is run several times and averaged;
//   - optionally the queue is pre-filled (Figure 7a uses 2^16 items) and
//     per-operation latency is sampled into a histogram (Figure 8).
//
// The harness powers every throughput figure and statistics table of the
// reproduction, via cmd/qbench and the root bench_test.go.
package harness

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"lcrq/internal/affinity"
	"lcrq/internal/hist"
	"lcrq/internal/instrument"
	"lcrq/internal/queues"
	"lcrq/internal/stats"
	"lcrq/internal/xrand"
)

// Placement selects the thread-to-CPU policy.
type Placement int

const (
	// SingleCluster keeps all threads within one processor package — the
	// paper's single-processor executions (Figure 6).
	SingleCluster Placement = iota
	// RoundRobin spreads threads across clusters round-robin so that
	// cross-cluster coherence cost always exists — the paper's
	// four-processor executions (Figure 7).
	RoundRobin
)

func (p Placement) String() string {
	if p == SingleCluster {
		return "single-cluster"
	}
	return "round-robin"
}

// Workload describes one benchmark configuration.
type Workload struct {
	Queue     string // registry name
	Threads   int
	Pairs     int // enqueue/dequeue pairs per thread
	Prefill   int // items inserted before the clock starts
	MaxDelay  int // max random inter-operation delay in ns (0 disables)
	Placement Placement
	Clusters  int // clusters for RoundRobin (0 = detected packages, min 1)
	RingOrder int // LCRQ family ring order (0 = default)
	Runs      int // measurement repetitions (0 = 1)
	Pin       bool
	// LatencySample, when > 0, samples the latency of every k-th operation
	// into the result histogram.
	LatencySample int
	// EnqRatio, when nonzero, switches from the paper's enqueue/dequeue
	// pairs to a mixed workload (an extension beyond the paper's
	// methodology): each of the 2×Pairs operations is an enqueue with this
	// probability, otherwise a dequeue. 0.5 approximates the pairs
	// workload without its strict alternation; 0.7 grows the queue; 0.3
	// drains against prefill.
	EnqRatio float64
	// Verify drains the queue after each run and checks item conservation:
	// prefill + enqueues must equal successful dequeues + leftovers. A
	// violation fails the run with an error. Costs one full drain per run.
	Verify bool
	// Capacity, when positive, runs the LCRQ family bounded (governed
	// mode): at most Capacity items in flight, producers blocking when the
	// budget binds. Other queues ignore it.
	Capacity int64
	// Watchdog, when positive, samples the governed queue's budget stats at
	// this interval during each run and derives a health verdict (see
	// Result.Governance). Requires a Governed adapter to have any effect.
	Watchdog time.Duration
	// Batch, when > 1, replaces each enqueue/dequeue pair with an
	// EnqueueBatch/DequeueBatch pair of that size (the pair count is scaled
	// down so the item volume matches the Batch=1 workload). Requires a
	// queue whose handles implement queues.BatchHandle; latency sampling is
	// not applied to batch operations.
	Batch int
	// Adaptive arms the LCRQ family's adaptive contention controller for
	// the run (qbench -oversub sweeps it against the fixed-constant
	// default). Other queues ignore it.
	Adaptive bool
}

// Result aggregates the runs of one workload.
type Result struct {
	Workload   Workload
	Mops       stats.Sample // throughput per run, million ops/second
	Hist       *hist.H      // sampled operation latency (nil unless sampling)
	Counters   instrument.Counters
	OpsPerRun  uint64
	Simulated  bool // clusters were simulated (host has fewer packages)
	Pinned     bool // threads were actually pinned
	HostCPUs   int
	HostPkgs   int
	WallPerRun time.Duration // mean wall time of one run
	// Governance is the budget outcome of the last run when the workload
	// ran governed (Capacity/Watchdog set and the queue supports it); nil
	// otherwise.
	Governance *queues.GovernanceStats
}

// ThroughputMops returns the mean throughput in million operations per
// second (an operation is one enqueue or one dequeue).
func (r *Result) ThroughputMops() float64 { return r.Mops.Mean() }

// Run executes the workload and returns aggregated results.
func Run(w Workload) (*Result, error) {
	if w.Threads < 1 {
		return nil, fmt.Errorf("harness: threads must be positive")
	}
	if w.Pairs < 1 {
		return nil, fmt.Errorf("harness: pairs must be positive")
	}
	runs := w.Runs
	if runs < 1 {
		runs = 1
	}
	if w.Capacity > 0 && w.Prefill > int(w.Capacity) {
		return nil, fmt.Errorf("harness: prefill %d exceeds capacity %d (producers would block forever)",
			w.Prefill, w.Capacity)
	}
	if w.Batch > 1 && w.EnqRatio > 0 {
		return nil, fmt.Errorf("harness: batch and enq-ratio workloads are mutually exclusive")
	}
	if w.MaxDelay > 0 {
		spinCalibrate.Do(calibrateSpin) // keep calibration out of the measured loop
	}
	topo := affinity.Detect()
	var place *affinity.Placement
	switch w.Placement {
	case SingleCluster:
		place = topo.SingleCluster(w.Threads)
	case RoundRobin:
		clusters := w.Clusters
		if clusters <= 0 {
			clusters = topo.NumPackages()
		}
		place = topo.RoundRobin(w.Threads, clusters)
	default:
		return nil, fmt.Errorf("harness: unknown placement %d", w.Placement)
	}

	res := &Result{
		Workload:  w,
		Simulated: place.Simulated,
		Pinned:    w.Pin && affinity.CanPin(),
		HostCPUs:  topo.NumCPUs(),
		HostPkgs:  topo.NumPackages(),
		OpsPerRun: 2 * uint64(w.Threads) * uint64(w.Pairs),
	}
	if w.LatencySample > 0 {
		res.Hist = &hist.H{}
	}

	var totalWall time.Duration
	for run := 0; run < runs; run++ {
		elapsed, counters, h, gov, err := runOnce(w, place, run)
		if err != nil {
			return nil, err
		}
		totalWall += elapsed
		mops := float64(res.OpsPerRun) / elapsed.Seconds() / 1e6
		res.Mops.Add(mops)
		res.Counters.Add(counters)
		if res.Hist != nil && h != nil {
			res.Hist.Merge(h)
		}
		if gov != nil {
			res.Governance = gov
		}
	}
	res.WallPerRun = totalWall / time.Duration(runs)
	return res, nil
}

func runOnce(w Workload, place *affinity.Placement, run int) (time.Duration, *instrument.Counters, *hist.H, *queues.GovernanceStats, error) {
	q, err := queues.New(w.Queue, queues.Config{
		RingOrder: w.RingOrder,
		Clusters:  maxInt(place.Clusters, 1),
		Threads:   w.Threads,
		Prefill:   w.Prefill,
		Capacity:  w.Capacity,
		Watchdog:  w.Watchdog,
		Adaptive:  w.Adaptive,
	})
	if err != nil {
		return 0, nil, nil, nil, err
	}

	if w.Batch > 1 {
		h := q.NewHandle(0, 0)
		_, batched := h.(queues.BatchHandle)
		h.Release()
		if !batched {
			return 0, nil, nil, nil, fmt.Errorf("harness: queue %q does not support batch operations", w.Queue)
		}
	}

	if w.Prefill > 0 {
		h := q.NewHandle(0, 0)
		for i := 0; i < w.Prefill; i++ {
			h.Enqueue(prefillValue(i))
		}
		h.Release()
	}

	var (
		ready, start atomic.Int64
		wg           sync.WaitGroup
		perThreadCtr = make([]instrument.Counters, w.Threads)
		perThreadH   = make([]*hist.H, w.Threads)
	)
	for t := 0; t < w.Threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			// Label the worker for CPU profiles: `go tool pprof -tagfocus`
			// can then isolate one queue implementation or one worker.
			labels := pprof.Labels("queue", w.Queue, "worker", fmt.Sprint(t))
			pprof.Do(context.Background(), labels, func(context.Context) {
				runtime.LockOSThread()
				defer runtime.UnlockOSThread()
				if w.Pin && affinity.CanPin() {
					_ = affinity.PinSelf(place.CPUOf[t])
				}
				h := q.NewHandle(t, place.ClusterOf[t])
				rng := xrand.New(uint64(run)<<32 | uint64(t+1))
				var lh *hist.H
				if w.LatencySample > 0 {
					lh = &hist.H{}
				}
				ready.Add(1)
				for start.Load() == 0 {
				}
				workerLoop(h, w, rng, lh, t)
				perThreadCtr[t] = *h.Counters()
				perThreadH[t] = lh
				h.Release()
			})
		}(t)
	}
	for int(ready.Load()) < w.Threads {
		runtime.Gosched()
	}
	gq, governed := q.(queues.Governed)
	var wdStop chan struct{}
	var wdDone chan wdOutcome
	if governed && w.Watchdog > 0 {
		wdStop = make(chan struct{})
		wdDone = make(chan wdOutcome, 1)
		go watchGovernance(gq, w.Watchdog, wdStop, wdDone)
	}
	t0 := time.Now()
	start.Store(1)
	wg.Wait()
	elapsed := time.Since(t0)

	var gov *queues.GovernanceStats
	if governed && (w.Capacity > 0 || w.Watchdog > 0) {
		g := gq.Governance()
		if wdStop != nil {
			close(wdStop)
			out := <-wdDone
			g.Checks, g.Verdict = out.checks, out.verdict
		}
		gov = &g
	}

	total := &instrument.Counters{}
	merged := &hist.H{}
	for t := 0; t < w.Threads; t++ {
		total.Add(&perThreadCtr[t])
		if perThreadH[t] != nil {
			merged.Merge(perThreadH[t])
		}
	}
	if w.LatencySample <= 0 {
		merged = nil
	}
	if w.Verify {
		if err := verifyConservation(q, w, total); err != nil {
			return 0, nil, nil, nil, err
		}
	}
	return elapsed, total, merged, gov, nil
}

// wdOutcome is what the governance watchdog reports when it stops.
type wdOutcome struct {
	checks  uint64
	verdict string
}

// watchGovernance samples a governed queue's budget stats every interval
// and derives a health verdict: "capacity-stall" when the queue sat pinned
// at capacity (rejections with no item-count movement) for two consecutive
// checks, "epoch-stall" when the reclamation stall detector fired, "ok"
// otherwise. Problem verdicts are sticky for the run — a benchmark that
// livelocked even briefly should say so.
func watchGovernance(gq queues.Governed, interval time.Duration, stop <-chan struct{}, done chan<- wdOutcome) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	out := wdOutcome{verdict: "ok"}
	prev := gq.Governance()
	fullTicks := 0
	for {
		select {
		case <-stop:
			done <- out
			return
		case <-tick.C:
			cur := gq.Governance()
			out.checks++
			if cur.Capacity > 0 && cur.Items >= cur.Capacity && cur.CapacityRejects > prev.CapacityRejects {
				fullTicks++
			} else {
				fullTicks = 0
			}
			if fullTicks >= 2 {
				out.verdict = "capacity-stall"
			}
			if cur.EpochStalls > prev.EpochStalls && out.verdict == "ok" {
				out.verdict = "epoch-stall"
			}
			prev = cur
		}
	}
}

// verifyConservation drains the queue and checks that no item was lost or
// duplicated: prefill + enqueues = successful dequeues + leftovers.
func verifyConservation(q queues.Queue, w Workload, c *instrument.Counters) error {
	h := q.NewHandle(0, 0)
	defer h.Release()
	leftovers := uint64(0)
	for {
		if _, ok := h.Dequeue(); !ok {
			break
		}
		leftovers++
	}
	in := uint64(w.Prefill) + c.Enqueues
	out := (c.Dequeues - c.Empty) + leftovers
	if in != out {
		return fmt.Errorf("harness: conservation violated for %s: %d in (prefill %d + enq %d) vs %d out (deq %d + leftover %d)",
			w.Queue, in, w.Prefill, c.Enqueues, out, c.Dequeues-c.Empty, leftovers)
	}
	return nil
}

// workerLoop is the measured inner loop: Pairs × (enqueue, delay, dequeue,
// delay), with optional latency sampling; or a randomized mix when
// EnqRatio is set.
func workerLoop(h queues.Handle, w Workload, rng *xrand.State, lh *hist.H, t int) {
	if w.EnqRatio > 0 {
		mixedLoop(h, w, rng, lh, t)
		return
	}
	if w.Batch > 1 {
		if bh, ok := h.(queues.BatchHandle); ok {
			batchLoop(bh, w, rng, t)
			return
		}
	}
	sample := w.LatencySample
	opIdx := 0
	for i := 0; i < w.Pairs; i++ {
		v := uint64(t)<<32 | uint64(i) | 1<<62
		if lh != nil && sample > 0 && opIdx%sample == 0 {
			st := time.Now()
			h.Enqueue(v)
			lh.Record(time.Since(st).Nanoseconds())
		} else {
			h.Enqueue(v)
		}
		opIdx++
		if w.MaxDelay > 0 {
			spinWait(int(rng.Uintn(uint64(w.MaxDelay) + 1)))
		}
		if lh != nil && sample > 0 && opIdx%sample == 0 {
			st := time.Now()
			h.Dequeue()
			lh.Record(time.Since(st).Nanoseconds())
		} else {
			h.Dequeue()
		}
		opIdx++
		if w.MaxDelay > 0 {
			spinWait(int(rng.Uintn(uint64(w.MaxDelay) + 1)))
		}
	}
}

// batchLoop is the batched counterpart of workerLoop: each iteration moves
// a block of up to Batch values through EnqueueBatch and then attempts to
// take a block of the same size back with DequeueBatch, preserving the
// total item volume of the pairs workload (Pairs items per direction per
// thread). The dequeue is a single attempt, like the pairs loop's single
// Dequeue call: a short block means other threads got there first, and the
// conservation check accounts for it.
func batchLoop(bh queues.BatchHandle, w Workload, rng *xrand.State, t int) {
	k := w.Batch
	in := make([]uint64, k)
	out := make([]uint64, k)
	for i := 0; i < w.Pairs; i += k {
		n := k
		if w.Pairs-i < n {
			n = w.Pairs - i
		}
		for j := 0; j < n; j++ {
			in[j] = uint64(t)<<32 | uint64(i+j) | 1<<62
		}
		bh.EnqueueBatch(in[:n])
		if w.MaxDelay > 0 {
			spinWait(int(rng.Uintn(uint64(w.MaxDelay) + 1)))
		}
		bh.DequeueBatch(out[:n])
		if w.MaxDelay > 0 {
			spinWait(int(rng.Uintn(uint64(w.MaxDelay) + 1)))
		}
	}
}

// mixedLoop performs 2×Pairs operations, each an enqueue with probability
// EnqRatio. The threshold is precomputed against the RNG's 64-bit output.
func mixedLoop(h queues.Handle, w Workload, rng *xrand.State, lh *hist.H, t int) {
	ratio := w.EnqRatio
	if ratio > 1 {
		ratio = 1
	}
	threshold := uint64(ratio * float64(^uint64(0)))
	sample := w.LatencySample
	seq := 0
	for op := 0; op < 2*w.Pairs; op++ {
		enq := rng.Uint64() <= threshold
		timed := lh != nil && sample > 0 && op%sample == 0
		var st time.Time
		if timed {
			st = time.Now()
		}
		if enq {
			seq++
			h.Enqueue(uint64(t)<<32 | uint64(seq) | 1<<62)
		} else {
			h.Dequeue()
		}
		if timed {
			lh.Record(time.Since(st).Nanoseconds())
		}
		if w.MaxDelay > 0 {
			spinWait(int(rng.Uintn(uint64(w.MaxDelay) + 1)))
		}
	}
}

// prefillValue produces distinct values outside the worker value space.
func prefillValue(i int) uint64 { return uint64(i) | 1<<61 }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---- calibrated nanosecond-scale busy wait ----

var (
	spinPerNs     float64
	spinCalibrate sync.Once
	spinSink      atomic.Uint64
)

// spinWait busy-waits for roughly ns nanoseconds without sleeping (the
// granularity of time.Sleep is far too coarse for the ≤100 ns delays of the
// methodology).
func spinWait(ns int) {
	if ns <= 0 {
		return
	}
	spinCalibrate.Do(calibrateSpin)
	iters := int(float64(ns) * spinPerNs)
	var x uint64
	for i := 0; i < iters; i++ {
		x += uint64(i)
	}
	spinSink.Store(x) // defeat dead-code elimination
}

func calibrateSpin() {
	const probe = 1 << 22
	t0 := time.Now()
	var x uint64
	for i := 0; i < probe; i++ {
		x += uint64(i)
	}
	spinSink.Store(x)
	ns := time.Since(t0).Nanoseconds()
	if ns < 1 {
		ns = 1
	}
	spinPerNs = float64(probe) / float64(ns)
	if spinPerNs < 0.1 {
		spinPerNs = 0.1
	}
}
