package msqueue

import "testing"

// TestEnqueueHelpsStalledTailSwing reproduces the half-finished enqueue
// state (node linked, tail not yet swung) that normally needs a preemption
// at exactly the wrong moment, and checks that the next enqueuer helps.
func TestEnqueueHelpsStalledTailSwing(t *testing.T) {
	q := New()
	h := &Handle{}
	// Simulate a stalled enqueuer: its node is linked behind the tail but
	// the tail pointer still points at the dummy.
	stalled := &node{v: 1}
	q.tail.Load().next.Store(stalled)

	q.Enqueue(h, 2) // must first swing the tail to `stalled`, then link
	if h.C.CAS < 2 {
		t.Fatalf("helping enqueue issued %d CASes, expected at least 2", h.C.CAS)
	}
	if v, ok := q.Dequeue(h); !ok || v != 1 {
		t.Fatalf("got (%d,%v), want stalled node first", v, ok)
	}
	if v, ok := q.Dequeue(h); !ok || v != 2 {
		t.Fatalf("got (%d,%v), want 2", v, ok)
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("queue should be empty")
	}
}

// TestDequeueHelpsStalledTailSwing covers the dequeue-side helping branch:
// head == tail but next is non-nil.
func TestDequeueHelpsStalledTailSwing(t *testing.T) {
	q := New()
	h := &Handle{}
	stalled := &node{v: 7}
	q.tail.Load().next.Store(stalled)

	v, ok := q.Dequeue(h)
	if !ok || v != 7 {
		t.Fatalf("got (%d,%v), want (7,true)", v, ok)
	}
	// The help must have swung the tail too, so the queue is consistent.
	if q.head.Load() != q.tail.Load() {
		t.Fatal("head and tail should coincide on the new dummy")
	}
}
