package msqueue

import (
	"sync/atomic"
	"testing"
)

func BenchmarkMSSequential(b *testing.B) {
	q := New()
	h := &Handle{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(h, uint64(i))
		q.Dequeue(h)
	}
}

func BenchmarkMSParallel(b *testing.B) {
	q := New()
	var ids atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		h := &Handle{}
		v := ids.Add(1) << 32
		for pb.Next() {
			v++
			q.Enqueue(h, v)
			q.Dequeue(h)
		}
	})
}

func BenchmarkTwoLockSequential(b *testing.B) {
	q := NewTwoLock()
	h := &Handle{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(h, uint64(i))
		q.Dequeue(h)
	}
}

func BenchmarkTwoLockParallel(b *testing.B) {
	q := NewTwoLock()
	var ids atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		h := &Handle{}
		v := ids.Add(1) << 32
		for pb.Next() {
			v++
			q.Enqueue(h, v)
			q.Dequeue(h)
		}
	})
}
