// Package msqueue implements Michael and Scott's classic concurrent queues
// (PODC 1996): the nonblocking CAS-based linked-list queue ("MS queue") and
// the two-lock blocking queue. The MS queue is the paper's representative of
// CAS-hot-spot algorithms (it stops scaling once head/tail CASes start
// failing); the two-lock queue is the substrate the CC-Queue and H-Queue
// are built from by replacing each lock with a combining instance.
package msqueue

import (
	"sync"
	"sync/atomic"

	"lcrq/internal/instrument"
	"lcrq/internal/pad"
)

type node struct {
	v    uint64
	next atomic.Pointer[node]
}

// Handle carries a thread's instrumentation counters. MS queues need no
// other per-thread state, but the uniform handle shape keeps the harness
// simple.
type Handle struct {
	C instrument.Counters
}

// Queue is the nonblocking MS queue. Safe for concurrent use; create with
// New.
//
//lcrq:padded
type Queue struct {
	head atomic.Pointer[node]
	_    pad.Line
	tail atomic.Pointer[node]
	_    pad.Line
}

// New returns an empty nonblocking MS queue.
func New() *Queue {
	q := &Queue{}
	d := &node{}
	q.head.Store(d)
	q.tail.Store(d)
	return q
}

// Enqueue appends v.
func (q *Queue) Enqueue(h *Handle, v uint64) {
	n := &node{v: v}
	for {
		t := q.tail.Load()
		next := t.next.Load()
		if t != q.tail.Load() {
			continue
		}
		if next != nil {
			// Help a stalled enqueuer finish its tail swing.
			h.C.CAS++
			if !q.tail.CompareAndSwap(t, next) {
				h.C.CASFail++
			}
			continue
		}
		h.C.CAS++
		if t.next.CompareAndSwap(nil, n) {
			h.C.CAS++
			if !q.tail.CompareAndSwap(t, n) {
				h.C.CASFail++
			}
			h.C.Enqueues++
			return
		}
		h.C.CASFail++
	}
}

// Dequeue removes and returns the oldest value; ok is false when empty.
func (q *Queue) Dequeue(h *Handle) (v uint64, ok bool) {
	for {
		hd := q.head.Load()
		t := q.tail.Load()
		next := hd.next.Load()
		if hd != q.head.Load() {
			continue
		}
		if hd == t {
			if next == nil {
				h.C.Dequeues++
				h.C.Empty++
				return 0, false
			}
			h.C.CAS++
			if !q.tail.CompareAndSwap(t, next) {
				h.C.CASFail++
			}
			continue
		}
		v = next.v
		h.C.CAS++
		if q.head.CompareAndSwap(hd, next) {
			h.C.Dequeues++
			return v, true
		}
		h.C.CASFail++
	}
}

// TwoLock is Michael and Scott's two-lock queue: one mutex serializes
// enqueuers at the tail, another serializes dequeuers at the head; the
// dummy node keeps the two sides from interfering. The next pointers are
// atomic because an enqueuer's link store can race with the empty check of
// a dequeuer holding only the head lock.
type TwoLock struct {
	hmu  sync.Mutex
	head *node
	_    pad.Line
	tmu  sync.Mutex
	tail *node
	_    pad.Line
}

// NewTwoLock returns an empty two-lock queue.
func NewTwoLock() *TwoLock {
	d := &node{}
	return &TwoLock{head: d, tail: d}
}

// Enqueue appends v.
func (q *TwoLock) Enqueue(h *Handle, v uint64) {
	n := &node{v: v}
	q.tmu.Lock()
	h.C.LockAcq++
	q.tail.next.Store(n)
	q.tail = n
	q.tmu.Unlock()
	h.C.Enqueues++
}

// Dequeue removes and returns the oldest value; ok is false when empty.
func (q *TwoLock) Dequeue(h *Handle) (v uint64, ok bool) {
	q.hmu.Lock()
	h.C.LockAcq++
	next := q.head.next.Load()
	if next == nil {
		q.hmu.Unlock()
		h.C.Dequeues++
		h.C.Empty++
		return 0, false
	}
	v = next.v
	q.head = next
	q.hmu.Unlock()
	h.C.Dequeues++
	return v, true
}
