package msqueue

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// iface lets both queues share the test bodies.
type iface interface {
	Enqueue(h *Handle, v uint64)
	Dequeue(h *Handle) (uint64, bool)
}

func queues() map[string]func() iface {
	return map[string]func() iface{
		"ms":      func() iface { return New() },
		"twolock": func() iface { return NewTwoLock() },
	}
}

func TestSequentialFIFO(t *testing.T) {
	for name, mk := range queues() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			h := &Handle{}
			if _, ok := q.Dequeue(h); ok {
				t.Fatal("fresh queue not empty")
			}
			for i := uint64(0); i < 200; i++ {
				q.Enqueue(h, i)
			}
			for i := uint64(0); i < 200; i++ {
				v, ok := q.Dequeue(h)
				if !ok || v != i {
					t.Fatalf("got (%d,%v), want %d", v, ok, i)
				}
			}
			if _, ok := q.Dequeue(h); ok {
				t.Fatal("queue should be empty")
			}
		})
	}
}

func TestModelEquivalence(t *testing.T) {
	for name, mk := range queues() {
		t.Run(name, func(t *testing.T) {
			f := func(ops []byte) bool {
				q := mk()
				h := &Handle{}
				var model []uint64
				next := uint64(1)
				for _, op := range ops {
					if op%2 == 0 {
						q.Enqueue(h, next)
						model = append(model, next)
						next++
					} else {
						v, ok := q.Dequeue(h)
						if len(model) == 0 {
							if ok {
								return false
							}
						} else if !ok || v != model[0] {
							return false
						} else {
							model = model[1:]
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestConcurrentNoLossNoDup(t *testing.T) {
	for name, mk := range queues() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			const producers, consumers, per = 4, 4, 3000
			var wg sync.WaitGroup
			var count atomic.Int64
			seen := make([][]uint64, consumers)
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					h := &Handle{}
					for i := 0; i < per; i++ {
						q.Enqueue(h, uint64(p)<<32|uint64(i))
					}
				}(p)
			}
			for c := 0; c < consumers; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					h := &Handle{}
					for count.Load() < producers*per {
						if v, ok := q.Dequeue(h); ok {
							seen[c] = append(seen[c], v)
							count.Add(1)
						}
					}
				}(c)
			}
			wg.Wait()
			all := map[uint64]int{}
			for _, s := range seen {
				for _, v := range s {
					all[v]++
				}
			}
			if len(all) != producers*per {
				t.Fatalf("got %d distinct, want %d", len(all), producers*per)
			}
			for v, n := range all {
				if n != 1 {
					t.Fatalf("value %#x seen %d times", v, n)
				}
			}
			for c, s := range seen {
				last := map[uint64]int64{}
				for _, v := range s {
					p, i := v>>32, int64(v&0xffffffff)
					if prev, ok := last[p]; ok && i <= prev {
						t.Fatalf("consumer %d: producer %d out of order", c, p)
					}
					last[p] = i
				}
			}
		})
	}
}

func TestMSCountersTrackCASFailures(t *testing.T) {
	q := New()
	const workers = 8
	var wg sync.WaitGroup
	handles := make([]*Handle, workers)
	for w := 0; w < workers; w++ {
		handles[w] = &Handle{}
		wg.Add(1)
		go func(h *Handle) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				q.Enqueue(h, uint64(i))
				q.Dequeue(h)
			}
		}(handles[w])
	}
	wg.Wait()
	var cas, ops uint64
	for _, h := range handles {
		cas += h.C.CAS
		ops += h.C.Ops()
	}
	if ops != workers*4000 {
		t.Fatalf("ops = %d", ops)
	}
	if cas < ops {
		t.Fatalf("MS queue must issue at least one CAS per op (cas=%d ops=%d)", cas, ops)
	}
}

func TestTwoLockLockCounter(t *testing.T) {
	q := NewTwoLock()
	h := &Handle{}
	q.Enqueue(h, 1)
	q.Dequeue(h)
	if h.C.LockAcq != 2 {
		t.Fatalf("LockAcq = %d, want 2", h.C.LockAcq)
	}
}
