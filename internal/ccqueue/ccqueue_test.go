package ccqueue

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestCCQueueSequentialFIFO(t *testing.T) {
	q := New(0)
	h := q.NewHandle()
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("fresh queue not empty")
	}
	for i := uint64(0); i < 200; i++ {
		q.Enqueue(h, i)
	}
	for i := uint64(0); i < 200; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want %d", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("should be empty")
	}
}

func TestHQueueSequentialFIFO(t *testing.T) {
	q := NewH(4, 0)
	h := q.NewHandle()
	for i := uint64(0); i < 200; i++ {
		q.Enqueue(h, int(i%4), i)
	}
	for i := uint64(0); i < 200; i++ {
		v, ok := q.Dequeue(h, int(i%4))
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want %d", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(h, 0); ok {
		t.Fatal("should be empty")
	}
}

func TestCCQueueModel(t *testing.T) {
	f := func(ops []byte) bool {
		q := New(0)
		h := q.NewHandle()
		var model []uint64
		next := uint64(1)
		for _, op := range ops {
			if op%2 == 0 {
				q.Enqueue(h, next)
				model = append(model, next)
				next++
			} else {
				v, ok := q.Dequeue(h)
				if len(model) == 0 {
					if ok {
						return false
					}
				} else if !ok || v != model[0] {
					return false
				} else {
					model = model[1:]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func concurrentCheck(t *testing.T, newHandle func() *Handle, enq func(h *Handle, w int, v uint64), deq func(h *Handle, w int) (uint64, bool)) {
	t.Helper()
	const producers, consumers, per = 4, 4, 2500
	var wg sync.WaitGroup
	var count atomic.Int64
	seen := make([][]uint64, consumers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := newHandle()
			for i := 0; i < per; i++ {
				enq(h, p, uint64(p)<<32|uint64(i))
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h := newHandle()
			for count.Load() < producers*per {
				if v, ok := deq(h, c); ok {
					seen[c] = append(seen[c], v)
					count.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	all := map[uint64]int{}
	for _, s := range seen {
		for _, v := range s {
			all[v]++
		}
	}
	if len(all) != producers*per {
		t.Fatalf("distinct = %d, want %d", len(all), producers*per)
	}
	for v, n := range all {
		if n != 1 {
			t.Fatalf("value %#x seen %d times", v, n)
		}
	}
	for c, s := range seen {
		last := map[uint64]int64{}
		for _, v := range s {
			p, i := v>>32, int64(v&0xffffffff)
			if prev, ok := last[p]; ok && i <= prev {
				t.Fatalf("consumer %d: producer %d out of order", c, p)
			}
			last[p] = i
		}
	}
}

func TestCCQueueConcurrent(t *testing.T) {
	q := New(0)
	concurrentCheck(t, q.NewHandle,
		func(h *Handle, w int, v uint64) { q.Enqueue(h, v) },
		func(h *Handle, w int) (uint64, bool) { return q.Dequeue(h) })
}

func TestHQueueConcurrent(t *testing.T) {
	q := NewH(2, 0)
	concurrentCheck(t, q.NewHandle,
		func(h *Handle, w int, v uint64) { q.Enqueue(h, w%2, v) },
		func(h *Handle, w int) (uint64, bool) { return q.Dequeue(h, w%2) })
}

func TestCCQueueEmptyCounter(t *testing.T) {
	q := New(0)
	h := q.NewHandle()
	q.Dequeue(h)
	q.Dequeue(h)
	if h.C.Empty != 2 || h.C.Dequeues != 2 {
		t.Fatalf("counters: %+v", h.C)
	}
}

// TestCCQueueParallelSides verifies the design point that enqueue and
// dequeue combiners operate concurrently: with a non-empty queue, a
// dequeue-side op never needs to wait for enqueue-side combining, so
// alternating single-threaded ops across both sides always see FIFO
// behaviour.
func TestCCQueueParallelSides(t *testing.T) {
	q := New(0)
	var wg sync.WaitGroup
	const n = 5000
	wg.Add(2)
	go func() {
		defer wg.Done()
		h := q.NewHandle()
		for i := uint64(0); i < n; i++ {
			q.Enqueue(h, i)
		}
	}()
	var got []uint64
	go func() {
		defer wg.Done()
		h := q.NewHandle()
		for uint64(len(got)) < n {
			if v, ok := q.Dequeue(h); ok {
				got = append(got, v)
			}
		}
	}()
	wg.Wait()
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}
