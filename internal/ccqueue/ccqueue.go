// Package ccqueue implements Fatourou and Kallimanis' CC-Queue and H-Queue
// (PPoPP 2012): Michael and Scott's two-lock queue with each lock replaced
// by a combining construction from internal/ccsynch. The enqueue instance
// and the dequeue instance combine in parallel — one serializes the tail
// side, the other the head side — which is why CC-Queue outperforms
// single-lock flat combining.
package ccqueue

import (
	"sync/atomic"

	"lcrq/internal/ccsynch"
	"lcrq/internal/pad"
)

// Handle is the per-thread context (a ccsynch handle plus cluster id).
type Handle = ccsynch.Handle

// node is a link of the internal list queue. next is atomic because an
// enqueue-side link store races with the dequeue-side empty check; values
// are plain, ordered by the atomic link (exactly as in the two-lock queue).
type node struct {
	v    uint64
	next atomic.Pointer[node]
}

// list is the sequential two-ended queue protected by the combiners: the
// enqueue combiner is the only mutator of tail, the dequeue combiner the
// only mutator of head.
type list struct {
	head *node
	_    pad.Line
	tail *node
	_    pad.Line
}

func newList() *list {
	d := &node{}
	return &list{head: d, tail: d}
}

func (l *list) enq(v uint64) (uint64, bool) {
	n := &node{v: v}
	l.tail.next.Store(n)
	l.tail = n
	return 0, true
}

func (l *list) deq(uint64) (uint64, bool) {
	next := l.head.next.Load()
	if next == nil {
		return 0, false
	}
	l.head = next
	return next.v, true
}

// Queue is the CC-Queue.
type Queue struct {
	l   *list
	enq *ccsynch.Synch
	deq *ccsynch.Synch
}

// New returns an empty CC-Queue. bound ≤ 0 selects the ccsynch default.
func New(bound int) *Queue {
	l := newList()
	return &Queue{
		l:   l,
		enq: ccsynch.New(l.enq, bound),
		deq: ccsynch.New(l.deq, bound),
	}
}

// NewHandle returns a per-thread handle.
func (q *Queue) NewHandle() *Handle { return ccsynch.NewHandle() }

// Enqueue appends v.
func (q *Queue) Enqueue(h *Handle, v uint64) {
	q.enq.Apply(h, v)
	h.C.Enqueues++
}

// Dequeue removes and returns the oldest value; ok is false when empty.
func (q *Queue) Dequeue(h *Handle) (v uint64, ok bool) {
	v, ok = q.deq.Apply(h, 0)
	h.C.Dequeues++
	if !ok {
		h.C.Empty++
	}
	return v, ok
}

// HQueue is the H-Queue: the same list protected by H-Synch instances, so
// operations combine per cluster and clusters take turns under a global
// lock per side.
type HQueue struct {
	l   *list
	enq *ccsynch.HSynch
	deq *ccsynch.HSynch
}

// NewH returns an empty H-Queue for the given cluster count.
func NewH(clusters, bound int) *HQueue {
	l := newList()
	return &HQueue{
		l:   l,
		enq: ccsynch.NewH(l.enq, clusters, bound),
		deq: ccsynch.NewH(l.deq, clusters, bound),
	}
}

// NewHandle returns a per-thread handle.
func (q *HQueue) NewHandle() *Handle { return ccsynch.NewHandle() }

// Enqueue appends v on behalf of a thread in the given cluster.
func (q *HQueue) Enqueue(h *Handle, cluster int, v uint64) {
	q.enq.Apply(h, cluster, v)
	h.C.Enqueues++
}

// Dequeue removes the oldest value on behalf of a thread in the given
// cluster.
func (q *HQueue) Dequeue(h *Handle, cluster int) (v uint64, ok bool) {
	v, ok = q.deq.Apply(h, cluster, 0)
	h.C.Dequeues++
	if !ok {
		h.C.Empty++
	}
	return v, ok
}
