package ccqueue

import (
	"sync/atomic"
	"testing"
)

func BenchmarkCCQueueSequential(b *testing.B) {
	q := New(0)
	h := q.NewHandle()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(h, uint64(i))
		q.Dequeue(h)
	}
}

func BenchmarkCCQueueParallel(b *testing.B) {
	q := New(0)
	var ids atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		h := q.NewHandle()
		v := ids.Add(1) << 32
		for pb.Next() {
			v++
			q.Enqueue(h, v)
			q.Dequeue(h)
		}
	})
}

func BenchmarkHQueueParallel(b *testing.B) {
	q := NewH(2, 0)
	var ids atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		h := q.NewHandle()
		id := ids.Add(1)
		cluster := int(id % 2)
		v := id << 32
		for pb.Next() {
			v++
			q.Enqueue(h, cluster, v)
			q.Dequeue(h, cluster)
		}
	})
}
