// Package model is a bounded model checker for the CRQ protocol.
//
// It reimplements the CRQ of Figure 3 as an explicit step machine in which
// every shared-memory access — each F&A, load, CAS2, and T&S — is one
// atomic step, and exhaustively explores thread interleavings for tiny
// configurations (small rings, two or three threads, a few operations
// each). Every completed execution's history is verified with the
// exhaustive linearizability checker, and protocol invariants (monotone
// indices, monotone CLOSED bit) are asserted at every state.
//
// Unlike the stress tests, which sample schedules the Go runtime happens to
// produce, the explorer covers *all* schedules within its bounds, including
// the pathological overtakings (a dequeuer lapping an enqueuer) that have a
// few-nanosecond window in real time. Mutations (Mutate*) deliberately
// remove protocol safeguards; the tests assert the explorer then finds a
// linearizability violation, validating the whole methodology.
//
// Exploration is a depth-first search over the scheduler's choices. Paths
// are fuel-bounded (retry loops would otherwise be infinite) and the
// explorer caps the number of explored executions, so this is bounded model
// checking: absence of violations is a guarantee only within the bounds.
package model

import (
	"fmt"
	"sort"

	"lcrq/internal/linearize"
)

// Mutation selects a deliberate protocol defect for validation runs.
type Mutation int

const (
	// NoMutation checks the faithful protocol.
	NoMutation Mutation = iota
	// MutateSkipSafeCheck makes enqueuers ignore the safe bit (they deposit
	// into unsafe cells without the head ≤ t proof). The paper's §4.1
	// explains why this loses items: the poisoning dequeuer never returns.
	MutateSkipSafeCheck
	// MutateSkipIdxCheck makes enqueuers ignore the cell index bound
	// (idx ≤ t), allowing a deposit into a cell already poisoned for a
	// later lap, which duplicates or reorders items.
	MutateSkipIdxCheck
	// MutateNoEmptyTransition removes the dequeuer's empty transition, so
	// a dequeuer that outruns its enqueuer leaves no trace; the matching
	// enqueuer later deposits into a cell whose dequeuer already returned
	// EMPTY, losing the item.
	MutateNoEmptyTransition
)

// Op is one operation a modeled thread performs.
type Op struct {
	Enqueue bool
	Value   uint64 // enqueue value (must be unique and nonzero)
}

// Config bounds one exploration.
type Config struct {
	RingOrder int // log2 ring size (keep at 1 or 2)
	Threads   [][]Op
	// Fuel bounds the total number of steps in one execution path; paths
	// that exceed it are pruned (they correspond to long retry chains).
	Fuel int
	// MaxExecutions caps the number of completed executions checked.
	MaxExecutions int
	Mutation      Mutation
	// StarvationLimit mirrors the implementation's enqueue give-up bound.
	StarvationLimit int
	// LCRQ models the full Figure 5 list of CRQs instead of a single ring:
	// closed enqueues append seeded segments and dequeues follow next
	// pointers (see lcrq_model.go).
	LCRQ bool
}

// Result summarizes an exploration.
type Result struct {
	Executions int    // completed executions checked
	Pruned     int    // paths cut by the fuel bound
	Capped     bool   // MaxExecutions was reached
	Violation  string // first violation found ("" if none)
}

// --- the modeled CRQ state ---

type mcell struct {
	unsafe bool
	idx    uint64
	val    uint64 // 0 encodes ⊥ (model values are nonzero)
}

type mqueue struct {
	head   uint64
	tail   uint64 // counter only
	closed bool
	cells  []mcell
	mask   uint64
	size   uint64
}

func (q *mqueue) clone() *mqueue {
	c := *q
	c.cells = append([]mcell(nil), q.cells...)
	return &c
}

// --- per-thread step machines ---

// Program counters; each value is "about to perform this shared access".
const (
	pcIdle = iota
	// enqueue
	pcEnqFAATail
	pcEnqLoadVal
	pcEnqLoadIdx
	pcEnqLoadHeadSafe // head load for the unsafe-cell proof
	pcEnqCAS2
	pcEnqLoadHeadFull // head load for the full/starving check
	pcEnqTASClose
	// dequeue
	pcDeqFAAHead
	pcDeqLoadVal
	pcDeqLoadIdx
	pcDeqCAS2Deq
	pcDeqCAS2Unsafe
	pcDeqCAS2Empty
	pcDeqLoadTailEmpty
	// fixState
	pcFixLoadTail
	pcFixLoadHead
	pcFixRecheckTail
	pcFixCAS
	// LCRQ wrapper (lcrq_model.go)
	pcLEnqLoadTail
	pcLEnqAppend
	pcLDeqLoadHead
	pcLDeqCheckNext
	pcDone
)

type mthread struct {
	ops   []Op
	opIdx int
	pc    int

	// operation-local registers
	h, t       uint64 // index obtained from F&A
	val        uint64 // loaded cell value (0 = ⊥)
	idx        uint64 // loaded cell index
	cellUnsafe bool
	fixT       uint64 // fixState's tail snapshot
	fixH       uint64
	tries      int
	segIdx     int  // LCRQ mode: current list segment
	retried    bool // LCRQ mode: December-fix re-dequeue performed

	// history recording
	invoke int64
	hist   []linearize.Op
}

func (t *mthread) done() bool { return t.opIdx >= len(t.ops) && t.pc == pcIdle }

func (t *mthread) currentOp() Op { return t.ops[t.opIdx] }

// state is the full system state.
type state struct {
	q       *mqueue // single-ring (CRQ) mode
	list    *mlist  // LCRQ mode
	threads []*mthread
	clock   int64
	steps   int
}

func (s *state) clone() *state {
	ns := &state{clock: s.clock, steps: s.steps}
	if s.q != nil {
		ns.q = s.q.clone()
	}
	if s.list != nil {
		ns.list = s.list.clone()
	}
	ns.threads = make([]*mthread, len(s.threads))
	for i, t := range s.threads {
		ct := *t
		ct.hist = append([]linearize.Op(nil), t.hist...)
		ns.threads[i] = &ct
	}
	return ns
}

// Explore runs the bounded search and returns its result.
func Explore(cfg Config) Result {
	if cfg.RingOrder < 1 {
		cfg.RingOrder = 1
	}
	if cfg.Fuel == 0 {
		cfg.Fuel = 80
	}
	if cfg.MaxExecutions == 0 {
		cfg.MaxExecutions = 1 << 20
	}
	if cfg.StarvationLimit == 0 {
		cfg.StarvationLimit = 3
	}
	size := uint64(1) << cfg.RingOrder
	init := &state{}
	if cfg.LCRQ {
		init.list = &mlist{segs: []*mqueue{newSeg(size)}}
	} else {
		init.q = newSeg(size)
	}
	for _, ops := range cfg.Threads {
		init.threads = append(init.threads, &mthread{ops: ops, pc: pcIdle})
	}
	e := &explorer{cfg: cfg}
	e.dfs(init)
	return e.res
}

type explorer struct {
	cfg Config
	res Result
}

// Replay runs one directed schedule: each entry names the thread that takes
// the next shared-memory step. Entries for finished threads are skipped;
// after the schedule is exhausted, remaining threads run round-robin to
// completion (bounded by Fuel). It returns the recorded history and the
// first violation found ("" if the history is linearizable and every
// invariant held). Replay is how the tests pin down adversarial schedules
// that are too deep for exhaustive exploration.
func Replay(cfg Config, schedule []int) (linearize.History, string) {
	if cfg.RingOrder < 1 {
		cfg.RingOrder = 1
	}
	if cfg.Fuel == 0 {
		cfg.Fuel = 500
	}
	if cfg.StarvationLimit == 0 {
		cfg.StarvationLimit = 8
	}
	size := uint64(1) << cfg.RingOrder
	s := &state{}
	if cfg.LCRQ {
		s.list = &mlist{segs: []*mqueue{newSeg(size)}}
	} else {
		s.q = newSeg(size)
	}
	for _, ops := range cfg.Threads {
		s.threads = append(s.threads, &mthread{ops: ops, pc: pcIdle})
	}
	for _, ti := range schedule {
		if ti < 0 || ti >= len(s.threads) || s.threads[ti].done() {
			continue
		}
		if msg := step(s, ti, cfg); msg != "" {
			return history(s), msg
		}
	}
	for s.steps < cfg.Fuel {
		progressed := false
		for ti := range s.threads {
			if s.threads[ti].done() {
				continue
			}
			progressed = true
			if msg := step(s, ti, cfg); msg != "" {
				return history(s), msg
			}
		}
		if !progressed {
			break
		}
	}
	h := history(s)
	for _, t := range s.threads {
		if !t.done() {
			return h, "replay: thread did not finish within fuel"
		}
	}
	if !linearize.Check(h) {
		return h, fmt.Sprintf("non-linearizable history: %v", h)
	}
	return h, ""
}

func history(s *state) linearize.History {
	var h linearize.History
	for _, t := range s.threads {
		h = append(h, t.hist...)
	}
	return h
}

func (e *explorer) dfs(s *state) {
	if e.res.Violation != "" || e.res.Capped {
		return
	}
	if s.steps > e.cfg.Fuel {
		e.res.Pruned++
		return
	}
	runnable := 0
	for ti, t := range s.threads {
		if t.done() {
			continue
		}
		runnable++
		ns := s.clone()
		if msg := step(ns, ti, e.cfg); msg != "" {
			e.res.Violation = msg
			return
		}
		e.dfs(ns)
		if e.res.Violation != "" || e.res.Capped {
			return
		}
	}
	if runnable == 0 {
		e.res.Executions++
		if e.res.Executions >= e.cfg.MaxExecutions {
			e.res.Capped = true
		}
		var hist linearize.History
		for _, t := range s.threads {
			hist = append(hist, t.hist...)
		}
		if !linearize.Check(hist) {
			sort.Slice(hist, func(i, j int) bool { return hist[i].Invoke < hist[j].Invoke })
			e.res.Violation = fmt.Sprintf("non-linearizable history: %v", hist)
		}
	}
}

// step executes one shared-memory access of thread ti and returns a
// violation message if an invariant breaks.
func step(s *state, ti int, cfg Config) string {
	t := s.threads[ti]
	s.steps++
	s.clock++
	now := s.clock
	switch t.pc {
	case pcLEnqLoadTail, pcLEnqAppend, pcLDeqLoadHead, pcLDeqCheckNext:
		if msg := stepList(s, ti, cfg, now); msg != "" {
			return msg
		}
		return checkAllInvariants(s)
	}
	q := t.queue(s)

	cell := func(i uint64) *mcell { return &q.cells[i&q.mask] }

	record := func(kind linearize.Kind, v uint64, ok bool) {
		t.hist = append(t.hist, linearize.Op{
			Thread: ti, Kind: kind, Value: v, OK: ok,
			Invoke: t.invoke, Return: now,
		})
		t.opIdx++
		t.pc = pcIdle
	}

	switch t.pc {
	case pcIdle:
		// Invoke the next operation; the invocation itself is not a shared
		// access, so fall through into the first real step.
		t.invoke = now
		t.tries = 0
		t.retried = false
		switch {
		case cfg.LCRQ && t.currentOp().Enqueue:
			t.pc = pcLEnqLoadTail
		case cfg.LCRQ:
			t.pc = pcLDeqLoadHead
		case t.currentOp().Enqueue:
			t.pc = pcEnqFAATail
		default:
			t.pc = pcDeqFAAHead
		}
		return step(s, ti, cfg) // consume this scheduling slot on the access

	// ---- enqueue ----
	case pcEnqFAATail:
		if q.closed {
			// F&A on a closed tail still increments the counter; the
			// closed bit rides along (Figure 3d line 84). In LCRQ mode the
			// wrapper appends a new segment; standalone, the enqueue
			// returns CLOSED, which does not change the abstract queue and
			// is not recorded.
			q.tail++
			if cfg.LCRQ {
				t.pc = pcLEnqAppend
				return ""
			}
			t.opIdx++
			t.pc = pcIdle
			return ""
		}
		t.t = q.tail
		q.tail++
		t.pc = pcEnqLoadVal
	case pcEnqLoadVal:
		t.val = cell(t.t).val
		t.pc = pcEnqLoadIdx
	case pcEnqLoadIdx:
		c := cell(t.t)
		t.idx = c.idx
		t.cellUnsafe = c.unsafe
		idxOK := t.idx <= t.t || cfg.Mutation == MutateSkipIdxCheck
		if t.val == 0 && idxOK {
			if !t.cellUnsafe || cfg.Mutation == MutateSkipSafeCheck {
				t.pc = pcEnqCAS2
			} else {
				t.pc = pcEnqLoadHeadSafe
			}
		} else {
			t.pc = pcEnqLoadHeadFull
		}
	case pcEnqLoadHeadSafe:
		if q.head <= t.t {
			t.pc = pcEnqCAS2
		} else {
			t.pc = pcEnqLoadHeadFull
		}
	case pcEnqCAS2:
		c := cell(t.t)
		if c.val == t.val && c.idx == t.idx && c.unsafe == t.cellUnsafe {
			if c.idx > t.t && cfg.Mutation != MutateSkipIdxCheck {
				return "invariant: enqueue CAS2 into overtaken cell"
			}
			c.unsafe = false
			c.idx = t.t
			c.val = t.currentOp().Value
			record(linearize.Enq, t.currentOp().Value, true)
			return ""
		}
		t.pc = pcEnqLoadHeadFull // CAS2 failed
	case pcEnqLoadHeadFull:
		hd := q.head
		t.tries++
		if int64(t.t-hd) >= int64(q.size) || t.tries >= cfg.StarvationLimit {
			t.pc = pcEnqTASClose
		} else {
			t.pc = pcEnqFAATail
		}
	case pcEnqTASClose:
		q.closed = true
		if cfg.LCRQ {
			t.pc = pcLEnqAppend
			return ""
		}
		// Tantrum semantics: the enqueue returns CLOSED without enqueuing.
		t.opIdx++
		t.pc = pcIdle

	// ---- dequeue ----
	case pcDeqFAAHead:
		t.h = q.head
		q.head++
		t.pc = pcDeqLoadVal
	case pcDeqLoadVal:
		t.val = cell(t.h).val
		t.pc = pcDeqLoadIdx
	case pcDeqLoadIdx:
		c := cell(t.h)
		t.idx = c.idx
		t.cellUnsafe = c.unsafe
		switch {
		case t.idx > t.h:
			t.pc = pcDeqLoadTailEmpty
		case t.val != 0 && t.idx == t.h:
			t.pc = pcDeqCAS2Deq
		case t.val != 0:
			t.pc = pcDeqCAS2Unsafe
		case cfg.Mutation == MutateNoEmptyTransition:
			t.pc = pcDeqLoadTailEmpty
		default:
			t.pc = pcDeqCAS2Empty
		}
	case pcDeqCAS2Deq:
		c := cell(t.h)
		if c.val == t.val && c.idx == t.idx && c.unsafe == t.cellUnsafe {
			if c.idx != t.h {
				return "invariant: dequeue transition on wrong index"
			}
			c.idx = t.h + q.size
			c.val = 0
			record(linearize.Deq, t.val, true)
			return ""
		}
		t.pc = pcDeqLoadVal
	case pcDeqCAS2Unsafe:
		c := cell(t.h)
		if c.val == t.val && c.idx == t.idx && c.unsafe == t.cellUnsafe {
			c.unsafe = true
			t.pc = pcDeqLoadTailEmpty
			return ""
		}
		t.pc = pcDeqLoadVal
	case pcDeqCAS2Empty:
		c := cell(t.h)
		if c.val == t.val && c.idx == t.idx && c.unsafe == t.cellUnsafe {
			if c.idx < t.h+q.size {
				c.idx = t.h + q.size
			}
			t.pc = pcDeqLoadTailEmpty
			return ""
		}
		t.pc = pcDeqLoadVal
	case pcDeqLoadTailEmpty:
		if q.tail <= t.h+1 {
			t.fixT = 0
			t.pc = pcFixLoadTail
		} else {
			t.pc = pcDeqFAAHead
		}

	// ---- fixState ----
	case pcFixLoadTail:
		t.fixT = q.tail
		t.pc = pcFixLoadHead
	case pcFixLoadHead:
		t.fixH = q.head
		t.pc = pcFixRecheckTail
	case pcFixRecheckTail:
		if q.tail != t.fixT {
			t.pc = pcFixLoadTail
			return ""
		}
		if t.fixH <= t.fixT {
			if cfg.LCRQ {
				t.pc = pcLDeqCheckNext
				return ""
			}
			record(linearize.Deq, 0, false) // EMPTY
			return ""
		}
		t.pc = pcFixCAS
	case pcFixCAS:
		if q.tail == t.fixT && !q.closed {
			q.tail = t.fixH
			if cfg.LCRQ {
				t.pc = pcLDeqCheckNext
				return ""
			}
			record(linearize.Deq, 0, false)
			return ""
		}
		if q.closed {
			// closed tail compares greater than any head; nothing to fix
			if cfg.LCRQ {
				t.pc = pcLDeqCheckNext
				return ""
			}
			record(linearize.Deq, 0, false)
			return ""
		}
		t.pc = pcFixLoadTail

	default:
		return fmt.Sprintf("invariant: unknown pc %d", t.pc)
	}
	return checkAllInvariants(s)
}

// checkAllInvariants checks every ring in the system.
func checkAllInvariants(s *state) string {
	if s.list != nil {
		for _, seg := range s.list.segs {
			if msg := checkInvariants(seg); msg != "" {
				return msg
			}
		}
		return ""
	}
	return checkInvariants(s.q)
}

// checkInvariants asserts state well-formedness after every step.
func checkInvariants(q *mqueue) string {
	for i := range q.cells {
		c := &q.cells[i]
		if c.val != 0 && c.idx&q.mask != uint64(i) {
			return fmt.Sprintf("invariant: cell %d holds value with foreign index %d", i, c.idx)
		}
	}
	return ""
}
