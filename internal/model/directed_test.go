package model

// Directed-schedule tests: adversarial interleavings that are too deep for
// exhaustive exploration (the lost-item window of the safe bit needs ~30
// precisely ordered steps across three threads) are pinned down manually
// and executed against both the faithful protocol and its mutants. This is
// the executable version of the scenario walkthrough in §4.1 of the paper
// ("Dequeue arrives before enqueuer while node is occupied" / "Enqueuing an
// item").

import (
	"testing"

	"lcrq/internal/linearize"
)

// driver wraps a state with step helpers for scripting schedules.
type driver struct {
	t   *testing.T
	s   *state
	cfg Config
}

func newDriver(t *testing.T, cfg Config) *driver {
	if cfg.RingOrder < 1 {
		cfg.RingOrder = 1
	}
	if cfg.StarvationLimit == 0 {
		cfg.StarvationLimit = 8
	}
	size := uint64(1) << cfg.RingOrder
	s := &state{}
	if cfg.LCRQ {
		s.list = &mlist{segs: []*mqueue{newSeg(size)}}
	} else {
		s.q = newSeg(size)
	}
	for _, ops := range cfg.Threads {
		s.threads = append(s.threads, &mthread{ops: ops, pc: pcIdle})
	}
	return &driver{t: t, s: s, cfg: cfg}
}

func (d *driver) step(ti int) {
	d.t.Helper()
	if msg := step(d.s, ti, d.cfg); msg != "" {
		d.t.Fatalf("invariant broke mid-schedule: %s", msg)
	}
}

// untilPC steps thread ti until its pc equals want.
func (d *driver) untilPC(ti, want int) {
	d.t.Helper()
	for i := 0; i < 200; i++ {
		if d.s.threads[ti].pc == want {
			return
		}
		d.step(ti)
	}
	d.t.Fatalf("thread %d never reached pc %d (stuck at %d)", ti, want, d.s.threads[ti].pc)
}

// finishOp steps thread ti until it completes its current operation.
func (d *driver) finishOp(ti int) {
	d.t.Helper()
	start := d.s.threads[ti].opIdx
	for i := 0; i < 200; i++ {
		if d.s.threads[ti].opIdx > start || d.s.threads[ti].done() {
			return
		}
		d.step(ti)
	}
	d.t.Fatalf("thread %d op %d never completed", ti, start)
}

// finishAll drives every thread to completion round-robin.
func (d *driver) finishAll() {
	d.t.Helper()
	for i := 0; i < 2000; i++ {
		progressed := false
		for ti := range d.s.threads {
			if !d.s.threads[ti].done() {
				progressed = true
				d.step(ti)
			}
		}
		if !progressed {
			return
		}
	}
	d.t.Fatal("threads did not finish")
}

func (d *driver) history() linearize.History { return history(d.s) }

// safeBitSchedule drives the lost-item window: a dequeuer stalls mid-op, a
// second dequeuer laps onto the occupied cell and poisons it unsafe, the
// stalled dequeuer consumes (leaving the cell unsafe+empty), and then an
// enqueuer's F&A lands exactly on the poisoned cell while head is already
// past it. The faithful protocol refuses the deposit (head ≤ t fails);
// the mutant deposits and loses the item.
func safeBitSchedule(t *testing.T, mutation Mutation) (linearize.History, bool) {
	t.Helper()
	cfg := Config{
		RingOrder: 1, // R = 2
		Threads: [][]Op{
			{enq(1), enq(2)},      // T0
			{deq()},               // T1: the stalled dequeuer
			{deq(), deq(), deq()}, // T2: the lapper and final observer
		},
		Mutation: mutation,
	}
	d := newDriver(t, cfg)

	d.finishOp(0)                 // T0: enq(1) deposits into cell 0
	d.untilPC(1, pcDeqLoadVal)    // T1: deq₀ takes h=0, stalls before reading
	d.finishOp(2)                 // T2: deq₁ at h=1 poisons cell 1, EMPTY
	d.untilPC(2, pcDeqCAS2Unsafe) // T2: deq₂ takes h=2, reaches occupied cell 0
	d.step(2)                     // … and marks it unsafe: cell0 = (U,0,1)
	if !d.s.q.cells[0].unsafe || d.s.q.cells[0].val != 1 {
		t.Fatalf("schedule setup failed: cell0 = %+v", d.s.q.cells[0])
	}
	d.finishOp(1) // T1: deq₀ consumes 1 → cell0 = (U, 2, ⊥)
	if !d.s.q.cells[0].unsafe || d.s.q.cells[0].val != 0 || d.s.q.cells[0].idx != 2 {
		t.Fatalf("schedule setup failed: cell0 = %+v", d.s.q.cells[0])
	}
	d.finishOp(0) // T0: enq(2); F&A returns t=2 → the unsafe empty cell
	deposited := d.s.q.cells[0].val == 2
	d.finishAll() // T2 finishes deq₂ and runs the final observing deq₃
	return d.history(), deposited
}

func TestSafeBitDirectedFaithful(t *testing.T) {
	hist, deposited := safeBitSchedule(t, NoMutation)
	if deposited {
		t.Fatal("faithful protocol deposited into a doomed unsafe cell")
	}
	if !linearize.Check(hist) {
		t.Fatalf("faithful protocol produced a non-linearizable history: %v", hist)
	}
}

func TestSafeBitDirectedMutantCaught(t *testing.T) {
	hist, deposited := safeBitSchedule(t, MutateSkipSafeCheck)
	if !deposited {
		t.Fatal("mutant did not deposit; schedule no longer exercises the window")
	}
	if linearize.Check(hist) {
		t.Fatalf("mutant's lost item went unnoticed; history: %v", hist)
	}
}

// TestReplaySimple exercises the flat-schedule Replay API.
func TestReplaySimple(t *testing.T) {
	cfg := Config{
		RingOrder: 1,
		Threads:   [][]Op{{enq(7)}, {deq()}},
	}
	// Strict alternation, then round-robin completion.
	hist, violation := Replay(cfg, []int{0, 1, 0, 1, 0, 1, 0, 1})
	if violation != "" {
		t.Fatalf("violation: %s", violation)
	}
	if len(hist) != 2 {
		t.Fatalf("history has %d ops, want 2: %v", len(hist), hist)
	}
}

// TestReplaySkipsBogusEntries: out-of-range and finished-thread entries are
// ignored rather than crashing.
func TestReplayRobustSchedule(t *testing.T) {
	cfg := Config{RingOrder: 1, Threads: [][]Op{{enq(1)}}}
	hist, violation := Replay(cfg, []int{-1, 5, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	if violation != "" {
		t.Fatalf("violation: %s", violation)
	}
	if len(hist) != 1 {
		t.Fatalf("history: %v", hist)
	}
}
