package model

import "lcrq/internal/linearize"

// LCRQ-level modeling: a list of model CRQs with the Figure 5 wrapper
// logic, enough to express the December 2013 erratum — without the
// re-dequeue of the head CRQ after observing a non-nil next (Figure 5
// lines 146-147, absent from the proceedings version), items enqueued into
// the head CRQ between its drain and the head swing are lost.
//
// The list is modeled as a slice of segments: segment i's next pointer is
// non-nil iff i+1 < len(segs); the head and tail pointers are indices.
// The append (next-CAS plus tail swing) and the head swing are single
// steps — coarser than the implementation's two CASes, which is fine
// because the erratum's window lies entirely inside the dequeue wrapper,
// not in the list pointer updates.

// MutateNoDecemberFix reproduces the proceedings version of Figure 5: the
// dequeuer swings the head as soon as it sees EMPTY with a non-nil next,
// without re-examining the head CRQ.
const MutateNoDecemberFix Mutation = 100

type mlist struct {
	segs []*mqueue
	head int
	tail int
}

func (l *mlist) clone() *mlist {
	c := &mlist{head: l.head, tail: l.tail}
	c.segs = make([]*mqueue, len(l.segs))
	for i, s := range l.segs {
		c.segs[i] = s.clone()
	}
	return c
}

// queue resolves the segment thread t is currently operating on.
func (t *mthread) queue(s *state) *mqueue {
	if s.list != nil {
		return s.list.segs[t.segIdx]
	}
	return s.q
}

func newSeg(size uint64) *mqueue {
	return &mqueue{cells: make([]mcell, size), mask: size - 1, size: size}
}

// seedSeg returns a segment containing v (Figure 5c line 162).
func seedSeg(size uint64, v uint64) *mqueue {
	q := newSeg(size)
	q.cells[0] = mcell{idx: 0, val: v}
	q.tail = 1
	return q
}

// stepList handles the LCRQ wrapper program counters; inner CRQ steps stay
// in step().
func stepList(s *state, ti int, cfg Config, now int64) string {
	t := s.threads[ti]
	l := s.list
	switch t.pc {
	case pcLEnqLoadTail:
		// Read the tail pointer; help a stalled appender swing it first
		// (Figure 5c lines 156-158, one step per swing).
		if l.tail+1 < len(l.segs) {
			l.tail++
			return "" // retry the read next step
		}
		t.segIdx = l.tail
		t.pc = pcEnqFAATail
	case pcLEnqAppend:
		// CAS the next pointer; on success the tail swings too (coarse).
		if t.segIdx == len(l.segs)-1 {
			l.segs = append(l.segs, seedSeg(l.segs[0].size, t.currentOp().Value))
			l.tail = len(l.segs) - 1
			t.hist = append(t.hist, opRecord(t, ti, now, true, t.currentOp().Value, true))
			t.opIdx++
			t.pc = pcIdle
			return ""
		}
		t.pc = pcLEnqLoadTail // lost the race; retry from the tail
	case pcLDeqLoadHead:
		t.segIdx = l.head
		t.retried = false
		t.pc = pcDeqFAAHead
	case pcLDeqCheckNext:
		// The inner dequeue returned EMPTY. Figure 5b lines 145-148.
		if t.segIdx+1 >= len(l.segs) {
			t.hist = append(t.hist, opRecord(t, ti, now, false, 0, false))
			t.opIdx++
			t.pc = pcIdle
			return ""
		}
		if !t.retried && cfg.Mutation != MutateNoDecemberFix {
			// The December 2013 fix: dequeue the head CRQ once more
			// before swinging past it.
			t.retried = true
			t.pc = pcDeqFAAHead
			return ""
		}
		if l.head == t.segIdx {
			l.head++ // CAS(head, crq, crq.next)
		}
		t.pc = pcLDeqLoadHead
	default:
		return "invariant: stepList on non-list pc"
	}
	return ""
}

// opRecord builds a completed-operation history entry.
func opRecord(t *mthread, ti int, now int64, isEnq bool, v uint64, ok bool) linearize.Op {
	kind := linearize.Deq
	if isEnq {
		kind = linearize.Enq
	}
	return linearize.Op{Thread: ti, Kind: kind, Value: v, OK: ok, Invoke: t.invoke, Return: now}
}
