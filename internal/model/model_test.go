package model

import (
	"testing"
)

func enq(v uint64) Op { return Op{Enqueue: true, Value: v} }
func deq() Op         { return Op{} }

// TestSequentialSingleThread sanity-checks the step machines themselves.
func TestSequentialSingleThread(t *testing.T) {
	res := Explore(Config{
		RingOrder: 1,
		Threads:   [][]Op{{enq(1), enq(2), deq(), deq(), deq()}},
		Fuel:      200,
	})
	if res.Violation != "" {
		t.Fatalf("violation: %s", res.Violation)
	}
	if res.Executions != 1 {
		t.Fatalf("executions = %d, want 1 (single thread has one schedule)", res.Executions)
	}
}

// TestEnqDeqPairExhaustive explores every interleaving of one enqueuer and
// one dequeuer on a 2-cell ring — including the dequeuer outrunning the
// enqueuer, the empty transition poisoning the cell, and fixState.
func TestEnqDeqPairExhaustive(t *testing.T) {
	res := Explore(Config{
		RingOrder:     1,
		Threads:       [][]Op{{enq(1)}, {deq()}},
		Fuel:          40,
		MaxExecutions: 1_000_000,
	})
	if res.Violation != "" {
		t.Fatalf("violation: %s", res.Violation)
	}
	if res.Executions < 100 {
		t.Fatalf("only %d executions explored; expected rich interleaving", res.Executions)
	}
	t.Logf("checked %d executions (%d pruned, capped=%v)", res.Executions, res.Pruned, res.Capped)
}

// TestTwoDequeuersOneEnqueuer covers dequeue/dequeue races on one cell:
// exactly one dequeuer may win the item.
func TestTwoDequeuersOneEnqueuer(t *testing.T) {
	res := Explore(Config{
		RingOrder:     1,
		Threads:       [][]Op{{enq(1)}, {deq()}, {deq()}},
		Fuel:          70,
		MaxExecutions: 1_000_000,
	})
	if res.Violation != "" {
		t.Fatalf("violation: %s", res.Violation)
	}
	t.Logf("checked %d executions (%d pruned, capped=%v)", res.Executions, res.Pruned, res.Capped)
}

// TestEnqEnqDeqDeq covers enqueue/enqueue ordering races combined with a
// consuming thread.
func TestEnqEnqDeqDeq(t *testing.T) {
	res := Explore(Config{
		RingOrder:     1,
		Threads:       [][]Op{{enq(1), deq()}, {enq(2), deq()}},
		Fuel:          90,
		MaxExecutions: 1_000_000,
	})
	if res.Violation != "" {
		t.Fatalf("violation: %s", res.Violation)
	}
	t.Logf("checked %d executions (%d pruned, capped=%v)", res.Executions, res.Pruned, res.Capped)
}

// TestLapRaceTinyRing forces wraparound races on a 2-cell ring: two
// enqueues and two dequeues per thread revisit cells across laps,
// exercising the unsafe transition machinery.
func TestLapRaceTinyRing(t *testing.T) {
	if testing.Short() {
		t.Skip("large exploration")
	}
	res := Explore(Config{
		RingOrder:     1,
		Threads:       [][]Op{{enq(1), enq(2)}, {deq(), deq()}},
		Fuel:          100,
		MaxExecutions: 1_000_000,
	})
	if res.Violation != "" {
		t.Fatalf("violation: %s", res.Violation)
	}
	t.Logf("checked %d executions (%d pruned, capped=%v)", res.Executions, res.Pruned, res.Capped)
}

// The safe-bit mutation needs three threads and a ~30-step window — beyond
// exhaustive reach — so it is validated by the directed schedule in
// directed_test.go (TestSafeBitDirectedMutantCaught) instead.

// TestMutationIdxCheckCaught: ignoring the cell index bound must break.
func TestMutationIdxCheckCaught(t *testing.T) {
	res := Explore(Config{
		RingOrder:     1,
		Threads:       [][]Op{{enq(1), enq(2)}, {deq(), deq(), deq()}},
		Fuel:          120,
		MaxExecutions: 8_000_000,
		Mutation:      MutateSkipIdxCheck,
	})
	if res.Violation == "" {
		t.Fatalf("mutation not caught in %d executions (pruned %d)", res.Executions, res.Pruned)
	}
	t.Logf("caught after %d executions: %s", res.Executions, truncate(res.Violation))
}

// TestMutationEmptyTransitionCaught: removing the empty transition loses
// the deposited item, so a later dequeue wrongly reports EMPTY.
func TestMutationEmptyTransitionCaught(t *testing.T) {
	res := Explore(Config{
		RingOrder:     1,
		Threads:       [][]Op{{enq(1)}, {deq(), deq()}},
		Fuel:          90,
		MaxExecutions: 8_000_000,
		Mutation:      MutateNoEmptyTransition,
	})
	if res.Violation == "" {
		t.Fatalf("mutation not caught in %d executions (pruned %d)", res.Executions, res.Pruned)
	}
	t.Logf("caught after %d executions: %s", res.Executions, truncate(res.Violation))
}

// TestStarvationCloses: with a starvation limit the enqueuer eventually
// closes the ring instead of spinning forever, and the model handles the
// CLOSED path.
func TestStarvationCloses(t *testing.T) {
	res := Explore(Config{
		RingOrder:       1,
		Threads:         [][]Op{{enq(1), enq(2), enq(3), enq(4)}},
		Fuel:            200,
		StarvationLimit: 2,
	})
	// Ring of 2: the third enqueue fills→closes; no violation either way.
	if res.Violation != "" {
		t.Fatalf("violation: %s", res.Violation)
	}
}

func truncate(s string) string {
	if len(s) > 200 {
		return s[:200] + "..."
	}
	return s
}
