package model

import (
	"testing"

	"lcrq/internal/linearize"
)

// TestLCRQSequentialThroughSegments drives one thread through several
// segment closes and appends; strict FIFO across segments is required.
func TestLCRQSequentialThroughSegments(t *testing.T) {
	ops := []Op{
		enq(1), enq(2), enq(3), enq(4), enq(5), enq(6),
		deq(), deq(), deq(), deq(), deq(), deq(), deq(),
	}
	res := Explore(Config{
		RingOrder: 1, // R = 2: six enqueues must span segments
		LCRQ:      true,
		Threads:   [][]Op{ops},
		Fuel:      400,
	})
	if res.Violation != "" {
		t.Fatalf("violation: %s", res.Violation)
	}
	if res.Executions != 1 {
		t.Fatalf("executions = %d", res.Executions)
	}
}

// TestLCRQPairExhaustive explores all interleavings of one enqueuer and
// one dequeuer over the full list machinery.
func TestLCRQPairExhaustive(t *testing.T) {
	res := Explore(Config{
		RingOrder:     1,
		LCRQ:          true,
		Threads:       [][]Op{{enq(1)}, {deq()}},
		Fuel:          50,
		MaxExecutions: 400_000,
	})
	if res.Violation != "" {
		t.Fatalf("violation: %s", res.Violation)
	}
	if res.Executions < 100 {
		t.Fatalf("only %d executions", res.Executions)
	}
	t.Logf("checked %d executions (pruned %d, capped=%v)", res.Executions, res.Pruned, res.Capped)
}

// decemberSchedule reproduces the lost-item window of the proceedings
// version of Figure 5 (fixed in the December 2013 revision):
//
//  1. a dequeuer drains the only CRQ and stalls right after observing
//     EMPTY, before examining the next pointer;
//  2. two enqueuers deposit items into that same (still open) CRQ;
//  3. a third enqueuer finds the ring full, closes it, and appends a new
//     segment — so the stalled dequeuer will see next ≠ nil;
//  4. the dequeuer resumes: with the fix it re-dequeues the head CRQ and
//     finds the items; without it, it swings the head past them.
func decemberSchedule(t *testing.T, mutation Mutation) linearize.History {
	t.Helper()
	cfg := Config{
		RingOrder:       1, // R = 2
		LCRQ:            true,
		StarvationLimit: 99, // close only via the full-ring check
		Mutation:        mutation,
		Threads: [][]Op{
			{enq(1)},              // T0
			{enq(2)},              // T1
			{enq(3)},              // T2: the closer/appender
			{deq(), deq(), deq()}, // T3: the stalled dequeuer + observers
		},
	}
	d := newDriver(t, cfg)

	d.finishOp(3)                 // T3 deq₁ → EMPTY on the fresh ring
	d.untilPC(3, pcLDeqCheckNext) // T3 deq₂ drains again, stalls pre-next-check
	d.finishOp(0)                 // T0 deposits 1 into the drained head CRQ
	d.finishOp(1)                 // T1 deposits 2
	d.finishOp(2)                 // T2 sees a full ring, closes, appends seg(3)
	if len(d.s.list.segs) != 2 {
		t.Fatalf("schedule setup failed: %d segments", len(d.s.list.segs))
	}
	d.finishAll() // T3 resumes across the erratum window
	return d.history()
}

func TestDecemberFixDirected(t *testing.T) {
	hist := decemberSchedule(t, NoMutation)
	if !linearize.Check(hist) {
		t.Fatalf("fixed protocol lost items: %v", hist)
	}
	// The fix must recover the deposited items in order.
	var got []uint64
	for _, op := range hist {
		if op.Kind == linearize.Deq && op.OK {
			got = append(got, op.Value)
		}
	}
	if len(got) < 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("re-dequeue did not recover items in order: %v", got)
	}
}

func TestDecemberBugDirected(t *testing.T) {
	hist := decemberSchedule(t, MutateNoDecemberFix)
	if linearize.Check(hist) {
		t.Fatalf("proceedings-version bug went unnoticed: %v", hist)
	}
}

// TestLCRQAppendRace: two enqueuers racing to append after a close; the
// loser must retry into the winner's segment, losing nothing.
func TestLCRQAppendRace(t *testing.T) {
	if testing.Short() {
		t.Skip("large exploration")
	}
	res := Explore(Config{
		RingOrder:       1,
		LCRQ:            true,
		StarvationLimit: 2,
		Threads:         [][]Op{{enq(1), enq(2)}, {enq(3), enq(4)}, {deq(), deq(), deq(), deq()}},
		Fuel:            70,
		MaxExecutions:   500_000,
	})
	if res.Violation != "" {
		t.Fatalf("violation: %s", res.Violation)
	}
	t.Logf("checked %d executions (pruned %d, capped=%v)", res.Executions, res.Pruned, res.Capped)
}
