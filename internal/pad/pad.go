// Package pad provides cache-line padding primitives used to prevent false
// sharing between frequently mutated shared words.
//
// The LCRQ paper places the CRQ head, tail, next pointer, and every ring node
// on distinct cache lines; the padding types here are how the rest of this
// repository expresses that layout.
package pad

// CacheLine is the assumed size in bytes of one cache line. 64 bytes is
// correct for every x86 processor the paper targets.
const CacheLine = 64

// FalseSharingRange is the stride used to fully isolate hot words. Modern
// Intel parts prefetch cache lines in adjacent pairs, so 128 bytes is the
// conservative distance (this matches what the Go runtime itself uses).
const FalseSharingRange = 128

// Pad is filler sized so that a 64-bit word followed by a Pad occupies one
// full false-sharing range.
type Pad [FalseSharingRange - 8]byte

// Line is a full false-sharing range of filler, for separating adjacent
// struct fields regardless of their size.
type Line [FalseSharingRange]byte
