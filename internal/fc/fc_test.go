package fc

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSequentialFIFO(t *testing.T) {
	q := New()
	h := q.NewHandle()
	defer h.Release()
	if _, ok := h.Dequeue(); ok {
		t.Fatal("fresh queue not empty")
	}
	for i := uint64(0); i < 200; i++ {
		h.Enqueue(i)
	}
	for i := uint64(0); i < 200; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want %d", v, ok, i)
		}
	}
	if _, ok := h.Dequeue(); ok {
		t.Fatal("should be empty")
	}
}

func TestSegmentBoundaries(t *testing.T) {
	q := New()
	h := q.NewHandle()
	defer h.Release()
	// Cross several segment boundaries in both interleaved and bulk modes.
	n := uint64(3*segSize + 17)
	for i := uint64(0); i < n; i++ {
		h.Enqueue(i)
	}
	for i := uint64(0); i < n; i++ {
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("bulk: got (%d,%v), want %d", v, ok, i)
		}
	}
	for i := uint64(0); i < 2*segSize; i++ {
		h.Enqueue(i)
		v, ok := h.Dequeue()
		if !ok || v != i {
			t.Fatalf("interleaved: got (%d,%v), want %d", v, ok, i)
		}
	}
}

func TestModelEquivalence(t *testing.T) {
	f := func(ops []byte) bool {
		q := New()
		h := q.NewHandle()
		defer h.Release()
		var model []uint64
		next := uint64(1)
		for _, op := range ops {
			if op%2 == 0 {
				h.Enqueue(next)
				model = append(model, next)
				next++
			} else {
				v, ok := h.Dequeue()
				if len(model) == 0 {
					if ok {
						return false
					}
				} else if !ok || v != model[0] {
					return false
				} else {
					model = model[1:]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentNoLossNoDup(t *testing.T) {
	q := New()
	const producers, consumers, per = 4, 4, 2500
	var wg sync.WaitGroup
	var count atomic.Int64
	seen := make([][]uint64, consumers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			for i := 0; i < per; i++ {
				h.Enqueue(uint64(p)<<32 | uint64(i))
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			for count.Load() < producers*per {
				if v, ok := h.Dequeue(); ok {
					seen[c] = append(seen[c], v)
					count.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	all := map[uint64]int{}
	for _, s := range seen {
		for _, v := range s {
			all[v]++
		}
	}
	if len(all) != producers*per {
		t.Fatalf("distinct = %d, want %d", len(all), producers*per)
	}
	for v, n := range all {
		if n != 1 {
			t.Fatalf("value %#x seen %d times", v, n)
		}
	}
	for c, s := range seen {
		last := map[uint64]int64{}
		for _, v := range s {
			p, i := v>>32, int64(v&0xffffffff)
			if prev, ok := last[p]; ok && i <= prev {
				t.Fatalf("consumer %d: producer %d out of order", c, p)
			}
			last[p] = i
		}
	}
}

func TestReleasedRecordSkipped(t *testing.T) {
	q := New()
	h1 := q.NewHandle()
	h1.Enqueue(1)
	h1.Release()
	// A combiner scanning on behalf of h2 must skip h1's dead record even
	// though it remains linked.
	h2 := q.NewHandle()
	defer h2.Release()
	if v, ok := h2.Dequeue(); !ok || v != 1 {
		t.Fatalf("got (%d,%v)", v, ok)
	}
	if _, ok := h2.Dequeue(); ok {
		t.Fatal("should be empty")
	}
}

func TestCombinerStats(t *testing.T) {
	q := New()
	h := q.NewHandle()
	defer h.Release()
	for i := uint64(0); i < 100; i++ {
		h.Enqueue(i)
	}
	if h.C.CombinerRuns == 0 || h.C.Combined < 100 {
		t.Fatalf("combiner stats: %+v", h.C)
	}
}

func TestManyHandles(t *testing.T) {
	q := New()
	var handles []*Handle
	for i := 0; i < 50; i++ {
		handles = append(handles, q.NewHandle())
	}
	for i, h := range handles {
		h.Enqueue(uint64(i))
	}
	got := map[uint64]bool{}
	for _, h := range handles {
		v, ok := h.Dequeue()
		if !ok {
			t.Fatal("missing value")
		}
		got[v] = true
	}
	if len(got) != 50 {
		t.Fatalf("got %d distinct", len(got))
	}
	for _, h := range handles {
		h.Release()
	}
}

// TestSegmentBoundaryEmptyDequeue is a regression test: exactly segSize
// enqueues then segSize+1 dequeues drains one full segment and then probes
// empty with hidx == tidx == segSize — the shape that used to advance head
// past a nil next and crash the combiner.
func TestSegmentBoundaryEmptyDequeue(t *testing.T) {
	q := New()
	h := q.NewHandle()
	defer h.Release()
	for i := 0; i < segSize; i++ {
		h.Enqueue(uint64(i) + 1)
	}
	for i := 0; i < segSize; i++ {
		v, ok := h.Dequeue()
		if !ok || v != uint64(i)+1 {
			t.Fatalf("dequeue %d = %d, %v", i, v, ok)
		}
	}
	if v, ok := h.Dequeue(); ok {
		t.Fatalf("dequeue on drained boundary = %d, want empty", v)
	}
	// The queue must remain usable across the boundary.
	h.Enqueue(99)
	if v, ok := h.Dequeue(); !ok || v != 99 {
		t.Fatalf("post-boundary dequeue = %d, %v", v, ok)
	}
}
