// Package fc implements the flat-combining FIFO queue of Hendler, Incze,
// Shavit and Tzafrir (SPAA 2010), the "FC queue" baseline of the LCRQ
// paper's evaluation.
//
// Threads publish requests on a shared publication list; whoever acquires
// the single global try-lock becomes the combiner and applies every pending
// request, making multiple scan passes so requests published mid-pass are
// picked up. The queue body, touched only by the combiner, is the structure
// the paper describes: "a linked list of cyclic arrays, with a new tail
// array allocated when the old tail fills".
package fc

import (
	"runtime"
	"sync/atomic"

	"lcrq/internal/instrument"
	"lcrq/internal/pad"
)

// Publication-record opcodes.
const (
	opNone uint32 = iota
	opEnq
	opDeq
)

// scanPasses is how many times a combiner rescans the publication list per
// combining session; Hendler et al. recommend a small constant > 1 so that
// requests arriving during a pass complete without another lock handoff.
const scanPasses = 3

type record struct {
	op    atomic.Uint32 // opNone when idle; set by owner, cleared by combiner
	arg   uint64
	ret   uint64
	retOK bool
	alive atomic.Bool // false after the owning handle is released
	next  atomic.Pointer[record]
	_     pad.Line
}

// segSize is the cyclic-array capacity of one queue body segment.
const segSize = 512

type seg struct {
	vals [segSize]uint64
	next *seg
}

// body is the sequential queue: only the lock-holding combiner touches it.
type body struct {
	head, tail *seg
	hidx, tidx int // positions within head and tail segments
}

func newBody() *body {
	s := &seg{}
	return &body{head: s, tail: s}
}

func (b *body) enq(v uint64) {
	if b.tidx == segSize {
		b.tail.next = &seg{}
		b.tail = b.tail.next
		b.tidx = 0
	}
	b.tail.vals[b.tidx] = v
	b.tidx++
}

func (b *body) deq() (uint64, bool) {
	// Empty check first: with head == tail and hidx == tidx == segSize (one
	// segment filled and fully drained, no successor allocated yet),
	// advancing first would walk off a nil head.next.
	if b.head == b.tail && b.hidx == b.tidx {
		return 0, false
	}
	if b.hidx == segSize {
		b.head = b.head.next
		b.hidx = 0
	}
	v := b.head.vals[b.hidx]
	b.hidx++
	return v, true
}

// Queue is the flat-combining queue.
//
//lcrq:padded
type Queue struct {
	lock atomic.Uint32 // global combiner try-lock (test-and-test-and-set)
	_    pad.Line
	pub  atomic.Pointer[record] // publication list head
	_    pad.Line
	body *body
}

// New returns an empty FC queue.
func New() *Queue {
	return &Queue{body: newBody()}
}

// Handle owns one publication record. Handles must not be shared between
// threads; Release retires the record.
type Handle struct {
	C   instrument.Counters
	q   *Queue
	rec *record
}

// NewHandle registers a publication record for the calling thread.
func (q *Queue) NewHandle() *Handle {
	r := &record{}
	r.alive.Store(true)
	for {
		head := q.pub.Load()
		r.next.Store(head)
		if q.pub.CompareAndSwap(head, r) {
			break
		}
	}
	return &Handle{q: q, rec: r}
}

// Release retires the handle's publication record; combiners skip it from
// then on. (Records stay linked — the original algorithm periodically
// unlinks stale records; retirement is enough for correctness and keeps
// the list manipulation simple.)
func (h *Handle) Release() { h.rec.alive.Store(false) }

// Enqueue appends v.
func (h *Handle) Enqueue(v uint64) {
	h.rec.arg = v
	h.publish(opEnq)
	h.C.Enqueues++
}

// Dequeue removes and returns the oldest value; ok is false when empty.
func (h *Handle) Dequeue() (v uint64, ok bool) {
	h.publish(opDeq)
	h.C.Dequeues++
	if !h.rec.retOK {
		h.C.Empty++
	}
	return h.rec.ret, h.rec.retOK
}

// publish announces the operation and waits for a combiner (possibly this
// thread) to execute it.
func (h *Handle) publish(op uint32) {
	r := h.rec
	r.op.Store(op)
	for spins := 0; ; spins++ {
		if r.op.Load() == opNone {
			return // a combiner served us
		}
		if h.q.lock.Load() == 0 {
			h.C.TAS++
			if h.q.lock.CompareAndSwap(0, 1) {
				h.q.combine(h)
				h.q.lock.Store(0)
				if r.op.Load() == opNone {
					return
				}
				continue
			}
		}
		if spins%64 == 63 {
			runtime.Gosched()
		}
	}
}

// combine runs under the global lock: scan the publication list several
// times and apply every pending request.
func (q *Queue) combine(h *Handle) {
	h.C.CombinerRuns++
	for pass := 0; pass < scanPasses; pass++ {
		for r := q.pub.Load(); r != nil; r = r.next.Load() {
			if !r.alive.Load() {
				continue
			}
			switch r.op.Load() {
			case opEnq:
				q.body.enq(r.arg)
				r.retOK = true
				r.op.Store(opNone)
				h.C.Combined++
			case opDeq:
				r.ret, r.retOK = q.body.deq()
				r.op.Store(opNone)
				h.C.Combined++
			}
		}
	}
}
