package fc

import (
	"sync/atomic"
	"testing"
)

func BenchmarkFCSequential(b *testing.B) {
	q := New()
	h := q.NewHandle()
	defer h.Release()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Enqueue(uint64(i))
		h.Dequeue()
	}
}

func BenchmarkFCParallel(b *testing.B) {
	q := New()
	var ids atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		h := q.NewHandle()
		defer h.Release()
		v := ids.Add(1) << 32
		for pb.Next() {
			v++
			h.Enqueue(v)
			h.Dequeue()
		}
	})
}
