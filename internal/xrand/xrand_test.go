package xrand

import (
	"testing"
	"testing/quick"
)

func TestDistinctSeedsDistinctStreams(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("stream diverged at step %d", i)
		}
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	if s.s0 == 0 && s.s1 == 0 {
		t.Fatal("zero internal state")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 64; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 60 {
		t.Fatalf("only %d distinct values in 64 draws", len(seen))
	}
}

func TestUintnRange(t *testing.T) {
	f := func(seed uint64, n uint64) bool {
		if n == 0 {
			n = 1
		}
		s := New(seed)
		for i := 0; i < 50; i++ {
			if s.Uintn(n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUintnCoversRange(t *testing.T) {
	s := New(7)
	var hit [10]bool
	for i := 0; i < 10000; i++ {
		hit[s.Uintn(10)] = true
	}
	for v, ok := range hit {
		if !ok {
			t.Fatalf("value %d never drawn in 10000 tries", v)
		}
	}
}

func TestUintnZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Uintn(0)
}

func TestRoughUniformity(t *testing.T) {
	// Chi-squared-ish sanity check over 16 buckets.
	s := New(123)
	const draws = 1 << 16
	var buckets [16]int
	for i := 0; i < draws; i++ {
		buckets[s.Uint64()>>60]++
	}
	want := draws / 16
	for i, got := range buckets {
		if got < want*8/10 || got > want*12/10 {
			t.Fatalf("bucket %d has %d draws, expected about %d", i, got, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}
