// Package xrand implements a tiny, allocation-free pseudo-random generator
// for use on benchmark fast paths.
//
// The evaluation methodology of the LCRQ paper inserts a random delay of up
// to 100 ns between queue operations to break "long runs" of consecutive
// operations by one thread. A delay that short cannot tolerate the overhead
// or the locking of a shared RNG, so every worker owns one State.
package xrand

import "math/bits"

// State is an xorshift128+ generator. The zero value is invalid; obtain
// states from New.
type State struct {
	s0, s1 uint64
}

// New returns a generator seeded from seed. Distinct seeds (e.g. worker ids)
// yield uncorrelated streams for benchmarking purposes.
func New(seed uint64) *State {
	var s State
	s.Seed(seed)
	return &s
}

// Seed reinitializes the generator. The seed is diffused through two rounds
// of SplitMix64 so that small consecutive seeds produce unrelated states.
func (s *State) Seed(seed uint64) {
	s.s0 = splitmix64(&seed)
	s.s1 = splitmix64(&seed)
	if s.s0 == 0 && s.s1 == 0 {
		s.s1 = 1
	}
}

func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *State) Uint64() uint64 {
	x, y := s.s0, s.s1
	s.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	s.s1 = x
	return x + y
}

// Uintn returns a pseudo-random value in [0, n). It uses the multiply-shift
// range reduction, which is branch-free and unbiased enough for workload
// jitter. n must be positive.
func (s *State) Uintn(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uintn with n == 0")
	}
	hi, _ := bits.Mul64(s.Uint64(), n)
	return hi
}
