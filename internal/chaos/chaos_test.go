package chaos

import "testing"

// TestPointNames pins the stable injection-point names documented in
// DESIGN.md; chaos scenarios and docs refer to points by these strings.
func TestPointNames(t *testing.T) {
	want := map[Point]string{
		EnqCAS2Fail:  "enq-cas2-fail",
		DeqCAS2Fail:  "deq-cas2-fail",
		RingClose:    "ring-close",
		Tantrum:      "tantrum",
		DelayEnq:     "delay-enq",
		DelayDeq:     "delay-deq",
		Handoff:      "handoff",
		HazardWindow: "hazard-window",
		EpochWindow:  "epoch-window",
		CapacityGate: "capacity-gate",
		EnqWait:      "enq-wait",
		StallScan:    "stall-scan",

		BatchEnqReserve: "batch-enq-reserve",
		BatchDeqReserve: "batch-deq-reserve",
		AdaptRaise:      "adapt-raise",
		AdaptDecay:      "adapt-decay",
	}
	if len(want) != int(NumPoints) {
		t.Fatalf("test covers %d points, NumPoints = %d", len(want), NumPoints)
	}
	seen := map[string]bool{}
	for p, name := range want {
		if got := p.String(); got != name {
			t.Errorf("Point(%d).String() = %q, want %q", p, got, name)
		}
		if seen[name] {
			t.Errorf("duplicate point name %q", name)
		}
		seen[name] = true
	}
	if got := Point(200).String(); got != "unknown" {
		t.Errorf("out-of-range String() = %q, want unknown", got)
	}
	if got := len(Points()); got != int(NumPoints) {
		t.Errorf("Points() has %d entries, want %d", got, NumPoints)
	}
}

// TestFireRespectsBuildTag verifies the central gating property: with the
// chaos tag an armed point fires, without it Fire stays constant-false even
// when armed (the production no-op contract).
func TestFireRespectsBuildTag(t *testing.T) {
	defer Reset()
	Set(EnqCAS2Fail, 1)
	firedOnce := false
	for i := 0; i < 256; i++ {
		if Fire(EnqCAS2Fail) {
			firedOnce = true
		}
		Delay(EnqCAS2Fail) // must never panic in either build
	}
	if firedOnce != Enabled {
		t.Fatalf("armed point fired=%v with Enabled=%v", firedOnce, Enabled)
	}
	if !Enabled && Fired(EnqCAS2Fail) != 0 {
		t.Fatalf("Fired nonzero in a no-op build")
	}
	if Enabled && Fired(EnqCAS2Fail) == 0 {
		t.Fatalf("Fired counter did not advance in a chaos build")
	}
}
