package chaos

import "testing"

// TestPointRegistryBackstop is the one runtime backstop for the
// injection-point registry. The full invariant — every point named, names
// non-empty, unique, kebab-case, no call site off the registry — is
// enforced at lint time by the chaosreg and statsmirror analyzers (the
// point-by-point name table this test used to duplicate now lives only in
// chaos.go); what remains here is the runtime behavior lint cannot see:
// String's bounds check and the Points() sweep length.
func TestPointRegistryBackstop(t *testing.T) {
	for _, p := range Points() {
		if p.String() == "" || p.String() == "unknown" {
			t.Errorf("Point(%d).String() = %q; registry entry missing at runtime", p, p.String())
		}
	}
	if got := Point(200).String(); got != "unknown" {
		t.Errorf("out-of-range String() = %q, want unknown", got)
	}
	if got := len(Points()); got != int(NumPoints) {
		t.Errorf("Points() has %d entries, want %d", got, NumPoints)
	}
}

// TestFireRespectsBuildTag verifies the central gating property: with the
// chaos tag an armed point fires, without it Fire stays constant-false even
// when armed (the production no-op contract).
func TestFireRespectsBuildTag(t *testing.T) {
	defer Reset()
	Set(EnqCAS2Fail, 1)
	firedOnce := false
	for i := 0; i < 256; i++ {
		if Fire(EnqCAS2Fail) {
			firedOnce = true
		}
		Delay(EnqCAS2Fail) // must never panic in either build
	}
	if firedOnce != Enabled {
		t.Fatalf("armed point fired=%v with Enabled=%v", firedOnce, Enabled)
	}
	if !Enabled && Fired(EnqCAS2Fail) != 0 {
		t.Fatalf("Fired nonzero in a no-op build")
	}
	if Enabled && Fired(EnqCAS2Fail) == 0 {
		t.Fatalf("Fired counter did not advance in a chaos build")
	}
}
