//go:build !chaos

package chaos

// Enabled reports whether this build carries the live fault-injection
// implementation. Without the `chaos` build tag every entry point below is
// an inlinable no-op: `if chaos.Fire(p)` folds to dead code and Delay
// vanishes, so the injection points cost nothing in production builds.
const Enabled = false

// Set is a no-op without the chaos build tag.
func Set(Point, float64) {}

// EnableAll is a no-op without the chaos build tag.
func EnableAll(float64) {}

// Reset is a no-op without the chaos build tag.
func Reset() {}

// Fired always reports zero without the chaos build tag.
func Fired(Point) uint64 { return 0 }

// Fire always reports false without the chaos build tag, letting the
// compiler eliminate the guarded fault branch entirely.
func Fire(Point) bool { return false }

// Delay is a no-op without the chaos build tag.
func Delay(Point) {}
