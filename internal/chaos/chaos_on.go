//go:build chaos

package chaos

import (
	"math/rand/v2"
	"runtime"
	"sync/atomic"
)

// Enabled reports whether this build carries the live fault-injection
// implementation (the `chaos` build tag).
const Enabled = true

// Per-point firing probability, scaled to [0, 2^32]; 0 disables the point.
// The scaled representation keeps Fire to one atomic load and one integer
// compare against a cheap random word.
var probs [NumPoints]atomic.Uint64

// fired counts how many times each point triggered since the last Reset.
var fired [NumPoints]atomic.Uint64

const probScale = uint64(1) << 32

// Set arms injection point p to fire with the given probability, clamped to
// [0, 1]. Probability 0 disarms the point.
func Set(p Point, prob float64) {
	if prob < 0 {
		prob = 0
	}
	if prob > 1 {
		prob = 1
	}
	probs[p].Store(uint64(prob * float64(probScale)))
}

// EnableAll arms every injection point with the same probability — the
// combined-fault scenario.
func EnableAll(prob float64) {
	for p := Point(0); p < NumPoints; p++ {
		Set(p, prob)
	}
}

// Reset disarms every point and zeroes the fired counters.
func Reset() {
	for p := Point(0); p < NumPoints; p++ {
		probs[p].Store(0)
		fired[p].Store(0)
	}
}

// Fired returns how many times p has triggered since the last Reset.
func Fired(p Point) uint64 { return fired[p].Load() }

// Fire reports whether injection point p triggers on this visit.
func Fire(p Point) bool {
	pr := probs[p].Load()
	if pr == 0 {
		return false
	}
	if uint64(rand.Uint32()) >= pr {
		return false
	}
	fired[p].Add(1)
	return true
}

// Delay yields the scheduler if point p triggers, perturbing the schedule
// exactly at the instrumented window.
func Delay(p Point) {
	if Fire(p) {
		runtime.Gosched()
	}
}
