//go:build chaos

package chaos

import "testing"

// TestProbability checks that Fire's firing rate tracks the armed
// probability within loose statistical bounds.
func TestProbability(t *testing.T) {
	defer Reset()
	const trials = 20000
	for _, prob := range []float64{0, 0.25, 0.75, 1} {
		Reset()
		Set(DeqCAS2Fail, prob)
		hits := 0
		for i := 0; i < trials; i++ {
			if Fire(DeqCAS2Fail) {
				hits++
			}
		}
		got := float64(hits) / trials
		if got < prob-0.05 || got > prob+0.05 {
			t.Errorf("prob %.2f fired at rate %.3f", prob, got)
		}
		if uint64(hits) != Fired(DeqCAS2Fail) {
			t.Errorf("Fired = %d, observed %d", Fired(DeqCAS2Fail), hits)
		}
		// Unarmed points must stay silent.
		if Fire(RingClose) || Fired(RingClose) != 0 {
			t.Errorf("unarmed point fired")
		}
	}
}

// TestSetClampsAndResets checks probability clamping and Reset/EnableAll.
func TestSetClampsAndResets(t *testing.T) {
	defer Reset()
	Set(Tantrum, 7)    // clamps to 1
	Set(Handoff, -0.5) // clamps to 0
	if !Fire(Tantrum) {
		t.Errorf("probability clamped to 1 did not fire")
	}
	if Fire(Handoff) {
		t.Errorf("probability clamped to 0 fired")
	}
	EnableAll(1)
	for _, p := range Points() {
		if !Fire(p) {
			t.Errorf("EnableAll(1): point %v did not fire", p)
		}
	}
	Reset()
	for _, p := range Points() {
		if Fire(p) {
			t.Errorf("after Reset: point %v fired", p)
		}
		if Fired(p) != 0 {
			t.Errorf("after Reset: point %v has fired count %d", p, Fired(p))
		}
	}
}
