// Package chaos is the fault-injection layer for the queue's slow paths.
//
// The CRQ/LCRQ correctness argument lives almost entirely in code that a
// cooperative scheduler rarely executes: cell CAS2 failures, ring closing,
// the starvation "tantrum" path, the LCRQ list hand-off windows, and the
// reclamation races that hazard pointers and epochs exist to win. Under
// normal Go scheduling these paths fire so rarely that tests barely touch
// them. This package plants named injection points inside those paths so a
// chaos test can force them to fire on demand — probabilistically failing a
// CAS2, closing a ring as if it were full, yielding the scheduler exactly at
// a linearization point — and then prove, with the linearizability checker,
// that the algorithm survives.
//
// # Build-tag gating
//
// The package has two implementations selected by the `chaos` build tag:
//
//   - Without the tag (the default, and every production build) each entry
//     point is an empty inlinable function or a constant-false predicate.
//     The compiler folds `if chaos.Fire(p)` to dead code, so injection
//     points cost literally nothing in the binary that ships.
//   - With `-tags chaos`, Fire consults a per-point probability set by the
//     test (Set, EnableAll) and Delay yields the scheduler when its point
//     fires. Fired counts how often each point triggered so tests can
//     assert a scenario actually exercised the path it claims to.
//
// Injection points are process-global: chaos scenarios configure the fault
// schedule before spawning workers and Reset it afterwards. The schedule is
// probabilistic by design — forcing a point with probability 1 can livelock
// exactly the retry loops the faults are meant to stress.
package chaos

// Point identifies a named fault-injection site in the queue's slow paths.
type Point uint8

const (
	// EnqCAS2Fail forces an enqueue cell CAS2 — the (s,k,⊥) → (1,t,v)
	// transition of Figure 3d — to be treated as failed, driving the
	// enqueuer into its retry / ring-close slow path.
	EnqCAS2Fail Point = iota
	// DeqCAS2Fail forces a dequeue-side cell CAS2 (the dequeue, unsafe, or
	// empty transition of Figure 3b) to be treated as failed.
	DeqCAS2Fail
	// RingClose closes the ring from the enqueue slow path as if it had
	// been observed full, forcing LCRQ segment appends and hand-off.
	RingClose
	// Tantrum forces the starvation path: the enqueuer behaves as if it
	// had exhausted StarvationLimit failed attempts and throws its tantrum
	// (closes the ring) immediately.
	Tantrum
	// DelayEnq yields the scheduler at the enqueue linearization point,
	// in the window between the tail fetch-and-add and the cell CAS2.
	DelayEnq
	// DelayDeq yields at the dequeue linearization point, between the head
	// fetch-and-add and the cell protocol loop.
	DelayDeq
	// Handoff yields inside the LCRQ list hand-off windows: between
	// publishing a freshly appended CRQ and swinging the tail to it, and
	// before swinging the head past a drained CRQ. These are the windows
	// the helping protocol and the December-2013 lost-item fix guard.
	Handoff
	// HazardWindow yields inside the hazard-pointer protect and
	// retire/scan windows, widening the race between publication,
	// validation, and reclamation.
	HazardWindow
	// EpochWindow yields between reading the global epoch and publishing
	// the pinned local epoch, and at the head of epoch advancement,
	// simulating stalled pinned threads.
	EpochWindow
	// CapacityGate yields inside the bounded-mode rejection window, between
	// a capacity (item or ring budget) rejection and its report to the
	// caller — the window an EnqueueWait retry races against dequeuers
	// freeing budget.
	CapacityGate
	// EnqWait yields inside the EnqueueWait backoff loop, between a full
	// rejection and the next retry, perturbing the wait/wake schedule of
	// blocked producers.
	EnqWait
	// StallScan yields at the epoch stall-declaration window: the moment a
	// lagging pinned record is declared stalled-by-policy and excluded from
	// blocking advancement, just before the forced advance proceeds.
	StallScan
	// BatchEnqReserve yields inside the batched-enqueue reservation window:
	// after the single tail F&A has claimed a block of consecutive indices
	// but before any cell of the block is filled — the window in which
	// dequeuers and ring closers race the whole reservation at once.
	BatchEnqReserve
	// BatchDeqReserve yields inside the batched-dequeue reservation window:
	// after the single head F&A has claimed a block of indices but before
	// the per-cell protocol runs, widening the race against enqueuers still
	// depositing and against ring retirement.
	BatchDeqReserve
	// AdaptRaise forces the watchdog's adaptive-contention remediation to
	// raise the shared starvation boost on its next tick, regardless of the
	// health verdict — the hook chaos campaigns use to drive the controller
	// through its widened-threshold regime on demand.
	AdaptRaise
	// AdaptDecay forces the remediation to decay the boost on its next tick,
	// exercising the recovery half of the controller's state machine.
	AdaptDecay
	// ScqEnqCAS forces an SCQ index-queue deposit CAS — the entry
	// transition ⟨cycle, safe, ⊥⟩ → ⟨Cycle(T), 1, idx⟩ on the aq or fq —
	// to be treated as failed, driving the depositor into its retry /
	// tantrum slow path.
	ScqEnqCAS
	// ScqDeqCAS forces an SCQ dequeue-side entry CAS (the empty-advance or
	// mark-unsafe transition) to be treated as failed.
	ScqDeqCAS
	// ScqCatchup yields just before the catchup CAS that drags an SCQ tail
	// up to a head that overran it, widening the window in which fresh
	// deposits race the tail rewrite.
	ScqCatchup
	// ScqThreshold yields between an SCQ deposit CAS and the threshold
	// re-arm, widening the window in which a dequeuer can observe a
	// negative threshold although an item is already published — the
	// overlap the threshold trick's linearizability argument must cover.
	ScqThreshold

	// NumPoints is the number of injection points; it is not itself a
	// point.
	NumPoints
)

// pointNames is the injection-point registry: the stable kebab-case names
// docs, test output, and the schedule sweep key on. chaosreg checks the
// names (unique, kebab-case) and statsmirror the completeness; the one
// runtime backstop is TestPointRegistryBackstop.
//
//lcrq:points
var pointNames = [NumPoints]string{
	EnqCAS2Fail:  "enq-cas2-fail",
	DeqCAS2Fail:  "deq-cas2-fail",
	RingClose:    "ring-close",
	Tantrum:      "tantrum",
	DelayEnq:     "delay-enq",
	DelayDeq:     "delay-deq",
	Handoff:      "handoff",
	HazardWindow: "hazard-window",
	EpochWindow:  "epoch-window",
	CapacityGate: "capacity-gate",
	EnqWait:      "enq-wait",
	StallScan:    "stall-scan",

	BatchEnqReserve: "batch-enq-reserve",
	BatchDeqReserve: "batch-deq-reserve",
	AdaptRaise:      "adapt-raise",
	AdaptDecay:      "adapt-decay",

	ScqEnqCAS:    "scq-enq-cas-fail",
	ScqDeqCAS:    "scq-deq-cas-fail",
	ScqCatchup:   "scq-catchup",
	ScqThreshold: "scq-threshold",
}

// String returns the point's stable name, as used in docs and test output.
func (p Point) String() string {
	if p < NumPoints {
		return pointNames[p]
	}
	return "unknown"
}

// Points returns all injection points, for tests that sweep the schedule.
func Points() []Point {
	ps := make([]Point, NumPoints)
	for i := range ps {
		ps[i] = Point(i)
	}
	return ps
}
