package packedq

import (
	"sync/atomic"
	"testing"
)

func BenchmarkPackedSequential(b *testing.B) {
	q := New(12)
	h := q.NewHandle()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(h, uint32(i))
		q.Dequeue(h)
	}
}

func BenchmarkPackedParallel(b *testing.B) {
	q := New(12)
	var ids atomic.Uint32
	b.RunParallel(func(pb *testing.PB) {
		h := q.NewHandle()
		v := ids.Add(1) << 16
		for pb.Next() {
			v++
			q.Enqueue(h, v)
			q.Dequeue(h)
		}
	})
}

func BenchmarkPackedTinyRingChurn(b *testing.B) {
	q := New(2) // constant segment churn
	h := q.NewHandle()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(h, uint32(i)+1)
		q.Dequeue(h)
	}
}
