package packedq

import (
	"testing"

	"lcrq/internal/instrument"
)

// TestQueueHelpsStalledAppend reproduces the half-finished segment append
// (next linked, tail not swung): the following operation must complete the
// swing before proceeding.
func TestQueueHelpsStalledAppend(t *testing.T) {
	q := New(2)
	h := q.NewHandle()
	q.Enqueue(h, 1)
	// Simulate a stalled appender.
	stalledSeg := NewPCRQ(2)
	stalledSeg.seed(99)
	q.tail.Load().next.Store(stalledSeg)

	casBefore := h.C.CAS
	q.Enqueue(h, 2) // must swing tail to stalledSeg first, then enqueue there
	if h.C.CAS <= casBefore {
		t.Fatal("no helping CAS issued")
	}
	// Old segment still holds 1; the seeded segment holds 99 then 2.
	want := []uint32{1, 99, 2}
	for _, w := range want {
		v, ok := q.Dequeue(h)
		if !ok || v != w {
			t.Fatalf("got (%d,%v), want %d", v, ok, w)
		}
	}
}

// TestPCRQUnsafeTransition drives the lap-ahead dequeuer path directly.
func TestPCRQUnsafeTransition(t *testing.T) {
	q := NewPCRQ(1) // R = 2
	q.spinWait = 0
	var c instrument.Counters
	if !q.Enqueue(&c, 11) {
		t.Fatal("enqueue failed")
	}
	// Force a dequeuer one lap ahead (index 2 maps to cell 0, idx 0 < 2).
	q.head.Store(2)
	q.tail.Store(3)
	q.Dequeue(&c)
	if c.UnsafeTrans == 0 {
		t.Fatal("unsafe transition not taken")
	}
	unsafeF, idx, val := unpack(q.ring[0].w.Load())
	if !unsafeF || idx != 0 || val != 11 {
		t.Fatalf("cell0 = (unsafe=%v, idx=%d, val=%d)", unsafeF, idx, val)
	}
}

// TestPCRQSpinWait covers the bounded wait for a matching enqueuer.
func TestPCRQSpinWait(t *testing.T) {
	q := NewPCRQ(1)
	q.spinWait = 7
	var c instrument.Counters
	q.tail.Add(1) // an enqueuer's F&A happened but no deposit yet
	if _, ok := q.Dequeue(&c); ok {
		t.Fatal("no value should be found")
	}
	if c.SpinWaits != 7 {
		t.Fatalf("SpinWaits = %d, want 7", c.SpinWaits)
	}
}

// TestPCRQUnsafeCellRefusal: an enqueuer must not deposit into an unsafe
// cell once head has passed its index, and the starvation limit closes the
// ring.
func TestPCRQUnsafeCellRefusal(t *testing.T) {
	q := NewPCRQ(1)
	q.starvation = 3
	var c instrument.Counters
	q.ring[0].w.Store(pack(true, 0, Bottom32))
	q.ring[1].w.Store(pack(true, 0, Bottom32))
	q.head.Store(4)
	if q.Enqueue(&c, 9) {
		t.Fatal("deposited into a doomed unsafe cell")
	}
	if !q.Closed() {
		t.Fatal("ring should have closed")
	}
}

// TestPCRQUnsafeCellRecovery: with head ≤ t the deposit into an unsafe
// cell is legal and re-safes it.
func TestPCRQUnsafeCellRecovery(t *testing.T) {
	q := NewPCRQ(1)
	var c instrument.Counters
	q.ring[0].w.Store(pack(true, 0, Bottom32))
	if !q.Enqueue(&c, 42) {
		t.Fatal("legal deposit refused")
	}
	unsafeF, idx, val := unpack(q.ring[0].w.Load())
	if unsafeF || idx != 0 || val != 42 {
		t.Fatalf("cell0 = (unsafe=%v, idx=%d, val=%d)", unsafeF, idx, val)
	}
	if v, ok := q.Dequeue(&c); !ok || v != 42 {
		t.Fatalf("got (%d,%v)", v, ok)
	}
}
