// Package packedq implements PCRQ/PLCRQ: a portable variant of the LCRQ
// algorithm whose ring cells fit in a single 64-bit word, so the cell
// protocol needs only plain CompareAndSwapUint64 — no CMPXCHG16B.
//
// This is the "no 128-bit CAS" workaround made first-class: on
// architectures where Go cannot issue a double-width CAS (everything except
// amd64 in this repository), the packed queue keeps the paper's algorithm
// lock-free instead of falling back to the striped-lock CAS2 emulation.
// The price is paid in value width and index range:
//
//	bit  63     unsafe flag (0 = safe; inverted so the zero cell is safe)
//	bits 32..62 low 31 bits of the cell index
//	bits 0..31  bitwise complement of the 32-bit value (physical 0 = ⊥)
//
// Head and tail remain full 64-bit counters; only the per-cell index is
// truncated, and index comparisons use 31-bit wraparound arithmetic. Inside
// one ring every live index is within tail−head+R ≤ 2R+T of every other
// (enqueues close the ring once t−head ≥ R, and dequeues stop once
// head ≥ tail), so with R ≤ 2^28 the wraparound comparisons are exact
// unless a thread sleeps mid-operation for more than 2^30 queue operations
// — the same flavor of bounded assumption the paper itself makes when it
// reserves 63-bit head/tail counters ("we make the realistic assumption
// that head and tail do not exceed 2^63").
//
// Values are uint32 with 0xFFFFFFFF reserved as ⊥.
package packedq

import (
	"sync/atomic"

	"lcrq/internal/instrument"
	"lcrq/internal/pad"
)

// Bottom32 is the reserved 32-bit value that cannot be enqueued.
const Bottom32 = ^uint32(0)

const (
	unsafeFlag = uint64(1) << 63
	idxShift   = 32
	idxMask31  = (uint64(1) << 31) - 1
	valMask    = (uint64(1) << 32) - 1
	closedBit  = uint64(1) << 63

	// MaxRingOrder keeps 2R well under the 2^30 wraparound safety bound.
	MaxRingOrder = 28
)

// pack builds a cell word from its logical parts.
func pack(unsafeF bool, idx uint64, val uint32) uint64 {
	w := (idx&idxMask31)<<idxShift | uint64(^val)
	if unsafeF {
		w |= unsafeFlag
	}
	return w
}

// unpack splits a cell word.
func unpack(w uint64) (unsafeF bool, idx31 uint64, val uint32) {
	return w&unsafeFlag != 0, (w >> idxShift) & idxMask31, ^uint32(w & valMask)
}

// cmp31 returns the sign of (a - b) under 31-bit wraparound: negative,
// zero, or positive as a is behind, equal to, or ahead of b.
func cmp31(a31, bFull uint64) int {
	d := int32((uint32(a31)-uint32(bFull&idxMask31))<<1) >> 1
	switch {
	case d < 0:
		return -1
	case d > 0:
		return 1
	default:
		return 0
	}
}

type cell struct {
	w atomic.Uint64
	_ [pad.CacheLine - 8]byte
}

// PCRQ is the packed single-word-cell ring: a tantrum queue like core.CRQ.
//
//lcrq:padded
type PCRQ struct {
	head atomic.Uint64
	_    pad.Pad
	tail atomic.Uint64
	_    pad.Pad
	next atomic.Pointer[PCRQ]
	_    pad.Pad

	ring []cell
	mask uint64
	size uint64

	starvation int
	spinWait   int
}

// clampOrder bounds a requested ring order to [1, MaxRingOrder].
func clampOrder(order int) int {
	if order < 1 {
		return 1
	}
	if order > MaxRingOrder {
		return MaxRingOrder
	}
	return order
}

// NewPCRQ returns an empty packed ring of 2^order cells.
func NewPCRQ(order int) *PCRQ {
	order = clampOrder(order)
	q := &PCRQ{starvation: 64, spinWait: 64}
	q.size = 1 << order
	q.mask = q.size - 1
	q.ring = make([]cell, q.size) // zero cell = (safe, idx 0, ⊥)
	return q
}

func (q *PCRQ) cell(i uint64) *cell { return &q.ring[i&q.mask] }

// seed installs v as the only element; requires exclusive access.
func (q *PCRQ) seed(v uint32) {
	q.ring[0].w.Store(pack(false, 0, v))
	q.tail.Store(1)
}

// Closed reports whether the ring is closed to enqueues.
func (q *PCRQ) Closed() bool { return q.tail.Load()&closedBit != 0 }

// Enqueue attempts to append v; false means CLOSED.
func (q *PCRQ) Enqueue(h *instrument.Counters, v uint32) bool {
	if v == Bottom32 {
		panic("packedq: enqueue of reserved value")
	}
	tries := 0
	for {
		h.FAA++
		tc := q.tail.Add(1) - 1
		if tc&closedBit != 0 {
			return false
		}
		t := tc
		c := q.cell(t)
		w := c.w.Load()
		unsafeF, idx, val := unpack(w)
		if val == Bottom32 {
			if cmp31(idx, t) <= 0 && (!unsafeF || q.head.Load() <= t) {
				h.CAS++
				if c.w.CompareAndSwap(w, pack(false, t, v)) {
					return true
				}
				h.CASFail++
			}
		}
		hd := q.head.Load()
		tries++
		if int64(t-hd) >= int64(q.size) || tries >= q.starvation {
			h.TAS++
			h.Closes++
			q.tail.Or(closedBit)
			return false
		}
		h.CellRetries++
	}
}

// Dequeue removes and returns the oldest value; ok=false means empty.
func (q *PCRQ) Dequeue(h *instrument.Counters) (v uint32, ok bool) {
	for {
		h.FAA++
		hIdx := q.head.Add(1) - 1
		c := q.cell(hIdx)
		spins := q.spinWait
		for {
			w := c.w.Load()
			unsafeF, idx, val := unpack(w)
			if cmp31(idx, hIdx) > 0 {
				break
			}
			if val != Bottom32 {
				if cmp31(idx, hIdx) == 0 {
					h.CAS++
					if c.w.CompareAndSwap(w, pack(unsafeF, hIdx+q.size, Bottom32)) {
						return val, true
					}
					h.CASFail++
				} else {
					h.CAS++
					if c.w.CompareAndSwap(w, pack(true, idx, val)) {
						h.UnsafeTrans++
						break
					}
					h.CASFail++
				}
			} else {
				if spins > 0 && q.tail.Load()&^closedBit > hIdx {
					spins--
					h.SpinWaits++
					continue
				}
				h.CAS++
				if c.w.CompareAndSwap(w, pack(unsafeF, hIdx+q.size, Bottom32)) {
					h.EmptyTrans++
					break
				}
				h.CASFail++
			}
		}
		t := q.tail.Load() &^ closedBit
		if t <= hIdx+1 {
			q.fixState(h)
			return Bottom32, false
		}
		h.CellRetries++
	}
}

func (q *PCRQ) fixState(h *instrument.Counters) {
	for {
		t := q.tail.Load()
		hd := q.head.Load()
		if q.tail.Load() != t {
			continue
		}
		if hd <= t {
			return
		}
		h.CAS++
		if q.tail.CompareAndSwap(t, hd) {
			return
		}
		h.CASFail++
	}
}

// Queue is the packed LCRQ: a list of PCRQs. Retired rings are left to the
// garbage collector (no hazard pointers are needed for safety in Go, and
// the portable variant favors simplicity over ring reuse).
//
//lcrq:padded
type Queue struct {
	head  atomic.Pointer[PCRQ]
	_     pad.Line
	tail  atomic.Pointer[PCRQ]
	_     pad.Line
	order int
}

// New returns an empty packed queue with 2^order cells per ring segment.
func New(order int) *Queue {
	q := &Queue{order: order}
	first := NewPCRQ(order)
	q.head.Store(first)
	q.tail.Store(first)
	return q
}

// Handle carries a thread's counters (the packed queue needs no other
// per-thread state).
type Handle struct {
	C instrument.Counters
}

// NewHandle returns a fresh handle.
func (q *Queue) NewHandle() *Handle { return &Handle{} }

// Enqueue appends v. v must not be Bottom32.
func (q *Queue) Enqueue(h *Handle, v uint32) {
	for {
		crq := q.tail.Load()
		if next := crq.next.Load(); next != nil {
			h.C.CAS++
			if !q.tail.CompareAndSwap(crq, next) {
				h.C.CASFail++
			}
			continue
		}
		if crq.Enqueue(&h.C, v) {
			h.C.Enqueues++
			return
		}
		newcrq := NewPCRQ(q.order)
		newcrq.seed(v)
		h.C.CAS++
		if crq.next.CompareAndSwap(nil, newcrq) {
			h.C.CAS++
			if !q.tail.CompareAndSwap(crq, newcrq) {
				h.C.CASFail++
			}
			h.C.Appends++
			h.C.Enqueues++
			return
		}
		h.C.CASFail++
	}
}

// Dequeue removes and returns the oldest value; ok=false means empty.
// Includes the December-2013 re-check before swinging the head.
func (q *Queue) Dequeue(h *Handle) (v uint32, ok bool) {
	for {
		crq := q.head.Load()
		if v, ok := crq.Dequeue(&h.C); ok {
			h.C.Dequeues++
			return v, true
		}
		if crq.next.Load() == nil {
			h.C.Dequeues++
			h.C.Empty++
			return Bottom32, false
		}
		if v, ok := crq.Dequeue(&h.C); ok {
			h.C.Dequeues++
			return v, true
		}
		h.C.CAS++
		if !q.head.CompareAndSwap(crq, crq.next.Load()) {
			h.C.CASFail++
		}
	}
}
