package packedq

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"lcrq/internal/instrument"
	"lcrq/internal/linearize"
	"lcrq/internal/xrand"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(unsafeF bool, idx uint64, val uint32) bool {
		idx &= idxMask31
		if val == Bottom32 {
			val = 0
		}
		u, i, v := unpack(pack(unsafeF, idx, val))
		return u == unsafeF && i == idx && v == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCellIsInitialState(t *testing.T) {
	unsafeF, idx, val := unpack(0)
	if unsafeF || idx != 0 || val != Bottom32 {
		t.Fatalf("zero cell = (unsafe=%v, idx=%d, val=%#x)", unsafeF, idx, val)
	}
}

func TestCmp31(t *testing.T) {
	cases := []struct {
		a31, b uint64
		want   int
	}{
		{0, 0, 0},
		{5, 3, 1},
		{3, 5, -1},
		{0, idxMask31, 1},            // wraparound: 0 is just ahead of 2^31-1
		{idxMask31, 0, -1},           // and 2^31-1 just behind 0
		{100, (1 << 31) + 100, 0},    // equal mod 2^31
		{(1 << 31) - 1, 1 << 31, -1}, // adjacent across the boundary
	}
	for _, c := range cases {
		if got := cmp31(c.a31&idxMask31, c.b); got != c.want {
			t.Fatalf("cmp31(%d, %d) = %d, want %d", c.a31, c.b, got, c.want)
		}
	}
}

func TestPCRQSequential(t *testing.T) {
	q := NewPCRQ(3)
	var c instrument.Counters
	for i := uint32(0); i < 8; i++ {
		if !q.Enqueue(&c, i+1) {
			t.Fatal("closed early")
		}
	}
	for i := uint32(0); i < 8; i++ {
		v, ok := q.Dequeue(&c)
		if !ok || v != i+1 {
			t.Fatalf("got (%d,%v), want %d", v, ok, i+1)
		}
	}
	if _, ok := q.Dequeue(&c); ok {
		t.Fatal("empty ring returned value")
	}
}

func TestPCRQTantrum(t *testing.T) {
	q := NewPCRQ(2) // R = 4
	var c instrument.Counters
	n := 0
	for i := uint32(0); i < 100; i++ {
		if !q.Enqueue(&c, i+1) {
			break
		}
		n++
	}
	if n != 4 || !q.Closed() {
		t.Fatalf("accepted %d, closed=%v", n, q.Closed())
	}
	for i := uint32(0); i < 4; i++ {
		if v, ok := q.Dequeue(&c); !ok || v != i+1 {
			t.Fatalf("drain got (%d,%v)", v, ok)
		}
	}
}

func TestPCRQOrderClamped(t *testing.T) {
	if clampOrder(99) != MaxRingOrder {
		t.Fatal("order not clamped down")
	}
	if clampOrder(-1) != 1 {
		t.Fatal("order not clamped up")
	}
	if NewPCRQ(-1).size != 2 {
		t.Fatal("clamped ring has wrong size")
	}
}

func TestQueueReservedPanics(t *testing.T) {
	q := New(3)
	h := q.NewHandle()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	q.Enqueue(h, Bottom32)
}

func TestQueueUnbounded(t *testing.T) {
	q := New(2) // tiny rings force appends
	h := q.NewHandle()
	const n = 2000
	for i := uint32(0); i < n; i++ {
		q.Enqueue(h, i+1)
	}
	for i := uint32(0); i < n; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i+1 {
			t.Fatalf("got (%d,%v), want %d", v, ok, i+1)
		}
	}
	if h.C.Appends == 0 {
		t.Fatal("expected appends")
	}
}

func TestQueueModel(t *testing.T) {
	f := func(ops []byte) bool {
		q := New(2)
		h := q.NewHandle()
		var model []uint32
		next := uint32(1)
		for _, op := range ops {
			if op%2 == 0 {
				q.Enqueue(h, next)
				model = append(model, next)
				next++
			} else {
				v, ok := q.Dequeue(h)
				if len(model) == 0 {
					if ok {
						return false
					}
				} else if !ok || v != model[0] {
					return false
				} else {
					model = model[1:]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueConcurrent(t *testing.T) {
	q := New(4)
	const producers, consumers, per = 4, 4, 3000
	var wg sync.WaitGroup
	var count atomic.Int64
	seen := make([][]uint32, consumers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := q.NewHandle()
			for i := 0; i < per; i++ {
				q.Enqueue(h, uint32(p)<<16|uint32(i))
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h := q.NewHandle()
			for count.Load() < producers*per {
				if v, ok := q.Dequeue(h); ok {
					seen[c] = append(seen[c], v)
					count.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	all := map[uint32]int{}
	for _, s := range seen {
		for _, v := range s {
			all[v]++
		}
	}
	if len(all) != producers*per {
		t.Fatalf("distinct = %d, want %d", len(all), producers*per)
	}
	for v, n := range all {
		if n != 1 {
			t.Fatalf("value %#x seen %d times", v, n)
		}
	}
	for c, s := range seen {
		last := map[uint32]int64{}
		for _, v := range s {
			p, i := v>>16, int64(v&0xffff)
			if prev, ok := last[p]; ok && i <= prev {
				t.Fatalf("consumer %d: producer %d out of order", c, p)
			}
			last[p] = i
		}
	}
}

func TestQueueLinearizable(t *testing.T) {
	const threads, opsEach, rounds = 3, 8, 30
	for round := 0; round < rounds; round++ {
		q := New(2)
		rec := linearize.NewRecorder(threads)
		var wg sync.WaitGroup
		var nextVal atomic.Uint32
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				h := q.NewHandle()
				rng := xrand.New(uint64(round*threads + th + 1))
				for i := 0; i < opsEach; i++ {
					if rng.Uintn(2) == 0 {
						v := nextVal.Add(1)
						inv := rec.Now()
						q.Enqueue(h, v)
						ret := rec.Now()
						rec.Append(th, linearize.Op{
							Kind: linearize.Enq, Value: uint64(v), Invoke: inv, Return: ret,
						})
					} else {
						inv := rec.Now()
						v, ok := q.Dequeue(h)
						ret := rec.Now()
						rec.Append(th, linearize.Op{
							Kind: linearize.Deq, Value: uint64(v), OK: ok, Invoke: inv, Return: ret,
						})
					}
				}
			}(th)
		}
		wg.Wait()
		if !linearize.Check(rec.History()) {
			t.Fatalf("round %d: non-linearizable history", round)
		}
	}
}

func TestWraparoundStress(t *testing.T) {
	// Drive a tiny ring through far more than 2^31 *cell-local* index space
	// is impossible in a test, but we can at least push the low bits of the
	// index across several wraps of a small modulus by using a tiny ring
	// and many operations — every comparison stays within the documented
	// safe window and FIFO order must hold throughout.
	q := New(1) // R = 2
	h := q.NewHandle()
	const n = 50000
	for i := 0; i < n; i++ {
		q.Enqueue(h, uint32(i%1000)+1)
		v, ok := q.Dequeue(h)
		if !ok || v != uint32(i%1000)+1 {
			t.Fatalf("iter %d: (%d,%v)", i, v, ok)
		}
	}
}
