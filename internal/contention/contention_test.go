package contention

import (
	"testing"
	"time"
)

func armed(t *testing.T) *Controller {
	t.Helper()
	var c Controller
	c.Init(true, 0, 0, 0, nil)
	return &c
}

func TestFailRaisesMultiplicatively(t *testing.T) {
	c := armed(t)
	if c.Spins() != 0 {
		t.Fatalf("fresh controller spins = %d, want 0", c.Spins())
	}
	// First failure jumps to the floor.
	pause, raised := c.Fail()
	if !raised || c.Spins() != DefaultSpinMin {
		t.Fatalf("after first Fail: spins=%d raised=%v, want %d/true", c.Spins(), raised, DefaultSpinMin)
	}
	if pause < DefaultSpinMin/2 || pause > DefaultSpinMin {
		t.Fatalf("pause %d outside [level/2, level] = [%d, %d]", pause, DefaultSpinMin/2, DefaultSpinMin)
	}
	// Each further failure doubles until the cap.
	prev := c.Spins()
	for i := 0; i < 20; i++ {
		_, _ = c.Fail()
		s := c.Spins()
		if s > DefaultSpinMax {
			t.Fatalf("spins %d exceeded cap %d", s, DefaultSpinMax)
		}
		if s < prev {
			t.Fatalf("spins shrank on failure: %d -> %d", prev, s)
		}
		prev = s
	}
	if c.Spins() != DefaultSpinMax {
		t.Fatalf("spins saturated at %d, want cap %d", c.Spins(), DefaultSpinMax)
	}
	// At the cap, further failures report raised=false.
	if _, raised := c.Fail(); raised {
		t.Fatal("Fail at the cap reported raised=true")
	}
}

func TestSuccessDecaysAdditively(t *testing.T) {
	c := armed(t)
	c.Fail()
	c.Fail() // level = 2*DefaultSpinMin
	level := c.Spins()
	if !c.Success() {
		t.Fatal("Success at nonzero level reported no movement")
	}
	if got, want := c.Spins(), level-DefaultDecay; got != want {
		t.Fatalf("after Success: spins=%d, want %d (additive decrease by %d)", got, want, DefaultDecay)
	}
	// Decay all the way to zero; the last step floors rather than wrapping.
	for i := 0; i < 2*int(DefaultSpinMax)/DefaultDecay+2; i++ {
		c.Success()
	}
	if c.Spins() != 0 {
		t.Fatalf("spins did not floor at 0: %d", c.Spins())
	}
	if c.Success() {
		t.Fatal("Success at level 0 reported movement")
	}
}

func TestDisabledControllerIsInert(t *testing.T) {
	var c Controller
	c.Init(false, 0, 0, 0, nil)
	if pause, raised := c.Fail(); pause != 0 || raised {
		t.Fatalf("disabled Fail = (%d, %v), want (0, false)", pause, raised)
	}
	if c.Success() {
		t.Fatal("disabled Success reported movement")
	}
	if got := c.StarveLimit(64); got != 64 {
		t.Fatalf("disabled StarveLimit(64) = %d, want 64", got)
	}
	if got := c.WaitStart(time.Microsecond, time.Millisecond); got != time.Microsecond {
		t.Fatalf("disabled WaitStart = %v, want the floor", got)
	}
	// Jitter still works: herd dispersion is independent of adaptation.
	if got := c.Jitter(time.Millisecond); got < time.Millisecond/2 || got > 3*time.Millisecond/2 {
		t.Fatalf("disabled Jitter out of range: %v", got)
	}
}

func TestInitClampsInvertedBounds(t *testing.T) {
	var c Controller
	c.Init(true, 500, 100, 0, nil) // inverted min/max
	for i := 0; i < 10; i++ {
		c.Fail()
	}
	if c.Spins() != 500 {
		t.Fatalf("inverted bounds: spins saturated at %d, want max clamped up to min (500)", c.Spins())
	}
	c.Init(true, -3, -7, -1, nil) // negatives select defaults
	c.Fail()
	if c.Spins() != DefaultSpinMin {
		t.Fatalf("negative knobs: first raise = %d, want default floor %d", c.Spins(), DefaultSpinMin)
	}
}

func TestStarveLimitWidensWithContentionAndBoost(t *testing.T) {
	sh := NewShared(0)
	var c Controller
	c.Init(true, 0, 0, 0, sh)
	const base = 64
	if got := c.StarveLimit(base); got != base {
		t.Fatalf("idle StarveLimit = %d, want %d", got, base)
	}
	c.Fail() // level = DefaultSpinMin
	if got, want := c.StarveLimit(base), base+DefaultSpinMin; got != want {
		t.Fatalf("contended StarveLimit = %d, want base+level = %d", got, want)
	}
	sh.Raise()
	if got, want := c.StarveLimit(base), (base+DefaultSpinMin)<<1; got != want {
		t.Fatalf("boosted StarveLimit = %d, want %d", got, want)
	}
}

func TestSharedBoostSaturatesAndFloors(t *testing.T) {
	sh := NewShared(2)
	if sh.BoostMax() != 2 {
		t.Fatalf("BoostMax = %d, want 2", sh.BoostMax())
	}
	for i := uint64(1); i <= 2; i++ {
		if got, changed := sh.Raise(); got != i || !changed {
			t.Fatalf("Raise #%d = (%d, %v), want (%d, true)", i, got, changed, i)
		}
	}
	if got, changed := sh.Raise(); got != 2 || changed {
		t.Fatalf("Raise at cap = (%d, %v), want (2, false)", got, changed)
	}
	if sh.Raises() != 2 {
		t.Fatalf("Raises = %d, want 2 (saturated attempts do not count)", sh.Raises())
	}
	for i := int64(1); i >= 0; i-- {
		if got, changed := sh.Decay(); got != uint64(i) || !changed {
			t.Fatalf("Decay = (%d, %v), want (%d, true)", got, changed, i)
		}
	}
	if got, changed := sh.Decay(); got != 0 || changed {
		t.Fatalf("Decay at floor = (%d, %v), want (0, false)", got, changed)
	}
	if sh.Decays() != 2 {
		t.Fatalf("Decays = %d, want 2", sh.Decays())
	}
	// The default cap applies when unspecified, and absurd caps are bounded.
	if NewShared(0).BoostMax() != DefaultBoostMax {
		t.Fatal("NewShared(0) did not select the default cap")
	}
	if NewShared(1000).BoostMax() != maxBoost {
		t.Fatal("NewShared(1000) was not clamped to maxBoost")
	}
	// A negative cap disables remediation: the shift can never move.
	off := NewShared(-1)
	if off.BoostMax() != 0 {
		t.Fatal("NewShared(-1) did not disable remediation")
	}
	if _, changed := off.Raise(); changed {
		t.Fatal("Raise moved a remediation-disabled boost")
	}
}

func TestJitterDispersion(t *testing.T) {
	c := armed(t)
	const d = time.Millisecond
	seen := map[time.Duration]bool{}
	for i := 0; i < 256; i++ {
		j := c.Jitter(d)
		if j < d/2 || j > 3*d/2 {
			t.Fatalf("Jitter(%v) = %v outside [d/2, 3d/2]", d, j)
		}
		seen[j] = true
	}
	if len(seen) < 32 {
		t.Fatalf("Jitter produced only %d distinct values in 256 draws; not dispersing", len(seen))
	}
	if got := c.Jitter(0); got != 0 {
		t.Fatalf("Jitter(0) = %v, want 0", got)
	}
	// Distinct controllers draw from uncorrelated streams.
	c2 := armed(t)
	same := 0
	for i := 0; i < 64; i++ {
		if c.Jitter(d) == c2.Jitter(d) {
			same++
		}
	}
	if same > 8 {
		t.Fatalf("two controllers agreed on %d/64 jitters; streams correlated", same)
	}
}

func TestWaitLevelMIAD(t *testing.T) {
	c := armed(t)
	min, max := 4*time.Microsecond, time.Millisecond
	if got := c.WaitStart(min, max); got != min {
		t.Fatalf("cold WaitStart = %v, want %v", got, min)
	}
	// Grow through a wait loop: doubling, capped, remembered.
	b := c.WaitStart(min, max)
	for i := 0; i < 12; i++ {
		b = c.WaitGrow(b, max)
	}
	if b != max {
		t.Fatalf("WaitGrow did not cap at max: %v", b)
	}
	if got := c.WaitStart(min, max); got != max {
		t.Fatalf("WaitStart after growth = %v, want remembered %v", got, max)
	}
	// Each successful exit decays the remembered level additively.
	c.WaitDone(min)
	if got := c.WaitLevel(); got != max-min {
		t.Fatalf("WaitLevel after WaitDone = %v, want %v", got, max-min)
	}
	for i := 0; i < int(max/min)+2; i++ {
		c.WaitDone(min)
	}
	if c.WaitLevel() != 0 {
		t.Fatalf("WaitLevel did not decay to cold: %v", c.WaitLevel())
	}
}

func TestPauseCompletes(t *testing.T) {
	// Pause must terminate for every level the controller can produce,
	// including the yield-chunked oversubscription regime.
	for _, n := range []uint32{0, 1, DefaultSpinMin, yieldSpins - 1, yieldSpins, 3*yieldSpins + 17, DefaultSpinMax} {
		Pause(n)
	}
}

func BenchmarkFailSuccess(b *testing.B) {
	var c Controller
	c.Init(true, 0, 0, 0, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%3 == 0 {
			c.Fail()
		} else {
			c.Success()
		}
	}
}
