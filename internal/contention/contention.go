// Package contention implements the adaptive contention controller behind
// WithAdaptiveContention: self-tuning replacements for the queue's fixed
// spin constants (SpinWait, StarvationLimit, the WithWaitBackoff bounds,
// clusterGate's spin budget).
//
// The design follows Dice, Hendler, and Mirsky's lightweight contention
// management for CAS: each thread reacts to its *own* observed failures with
// multiplicative-increase/additive-decrease (MIAD) backoff, so the per-handle
// state needs no synchronization at all — a failed cell attempt doubles the
// backoff level, a completed operation subtracts a small constant. Under low
// contention the level decays to zero and the controller is a handful of
// predictable branches; under oversubscription the level grows until failed
// CAS2 attempts stop burning the cache lines everyone else needs.
//
// Two pieces of state exist:
//
//   - Controller: per-handle, single-writer, embedded by value in the core
//     Handle exactly like instrument.Counters — reading or writing it costs
//     no atomics. Its fast-path methods are //lcrq:hotpath and allocation
//     free (the lint fixtures in internal/analysis cover the shapes).
//   - Shared: one per queue, written only by the watchdog's remediation
//     hook. It carries the starvation-limit boost shift the tantrum-storm
//     verdict raises, on a private cache line so the enqueue retry path can
//     read it without false sharing.
//
// The controller also owns the wait-backoff jitter (Jitter), which is useful
// even with adaptation disabled: synchronized waiter herds in EnqueueWait /
// DequeueWait should not wake in lockstep regardless of tuning mode, so
// every handle's controller is seeded with an uncorrelated RNG stream.
package contention

import (
	"runtime"
	"sync/atomic"
	"time"

	"lcrq/internal/pad"
	"lcrq/internal/xrand"
)

// Tuning defaults (see core.Config's Adapt* knobs).
const (
	// DefaultSpinMin is the smallest nonzero backoff level: the first failed
	// attempt jumps here so one isolated failure already spreads retries.
	DefaultSpinMin = 32
	// DefaultSpinMax caps the multiplicative growth. 4096 iterations is on
	// the order of a scheduler quantum's worth of pause on modern cores —
	// beyond that the thread should yield, which Pause does.
	DefaultSpinMax = 4096
	// DefaultDecay is the additive decrease applied per completed operation.
	// Small relative to the multiplicative raise, so the level tracks the
	// recent failure rate rather than the last outcome.
	DefaultDecay = 8
	// DefaultBoostMax caps the watchdog remediation's starvation-limit boost
	// shift: limit << 3 widens the tantrum threshold 8x at full boost.
	DefaultBoostMax = 3
	// maxBoost bounds any configured boost shift so a widened starvation
	// limit can never overflow the tries counter's useful range.
	maxBoost = 16
	// yieldSpins is the pause length at which busy-waiting stops being
	// neighborly: under oversubscription (the regime that grows pauses this
	// long) the stalled party needs our P more than we need to spin, so
	// Pause converts each yieldSpins chunk into a runtime.Gosched.
	yieldSpins = 2048
)

// seedCtr derives a distinct RNG seed per controller without consulting the
// clock; Seed's SplitMix64 diffusion turns the consecutive values into
// uncorrelated streams.
var seedCtr atomic.Uint64

// pauseSink keeps the compiler from discarding Pause's spin loop.
var pauseSink atomic.Uint64

// Controller is the per-handle adaptive state. It is embedded by value in
// the core Handle and owned by the handle's goroutine: no method may be
// called concurrently, and none uses atomics. The zero value is inert
// (disabled, no RNG); call Init before use.
//
//lcrq:singlewriter
type Controller struct {
	enabled bool
	spinMin uint32
	spinMax uint32
	decay   uint32

	// spins is the MIAD backoff level: the expected pause, in spin
	// iterations, after the next failed attempt.
	spins uint32

	// wait is the remembered wait-backoff level in nanoseconds, carried
	// across EnqueueWait/DequeueWait calls so a handle that just waited
	// through a full episode does not restart its next wait at the floor.
	wait int64

	rng    xrand.State
	shared *Shared
}

// Init configures the controller. enabled arms adaptation; the RNG is
// seeded regardless, so Jitter works on fixed-constant queues too. Non-
// positive tuning values select the defaults, and an inverted min/max pair
// is clamped (max raised to min) — mirroring core.Config.normalized, which
// performs the same clamping before values reach here.
func (c *Controller) Init(enabled bool, spinMin, spinMax, decay int, shared *Shared) {
	if spinMin <= 0 {
		spinMin = DefaultSpinMin
	}
	if spinMax <= 0 {
		spinMax = DefaultSpinMax
	}
	if spinMax < spinMin {
		spinMax = spinMin
	}
	if decay <= 0 {
		decay = DefaultDecay
	}
	c.enabled = enabled
	c.spinMin = uint32(spinMin)
	c.spinMax = uint32(spinMax)
	c.decay = uint32(decay)
	c.spins = 0
	c.wait = 0
	c.shared = shared
	c.rng.Seed(seedCtr.Add(1))
}

// Enabled reports whether adaptation is armed.
func (c *Controller) Enabled() bool { return c.enabled }

// Spins returns the current MIAD backoff level (0 when idle or disabled).
func (c *Controller) Spins() uint32 { return c.spins }

// Fail records a failed cell attempt: the backoff level is raised
// multiplicatively (doubled, clamped to [spinMin, spinMax]) and a jittered
// pause drawn from [level/2, level] is returned for the caller to burn via
// Pause. raised reports whether the level actually moved, so callers can
// count raises without re-deriving the clamp. Disabled controllers return
// (0, false) and touch nothing.
//
//lcrq:hotpath
func (c *Controller) Fail() (pause uint32, raised bool) {
	if !c.enabled {
		return 0, false
	}
	if c.spins < c.spinMax {
		n := c.spins * 2
		if n < c.spinMin {
			n = c.spinMin
		}
		if n > c.spinMax {
			n = c.spinMax
		}
		c.spins = n
		raised = true
	}
	half := c.spins / 2
	return half + uint32(c.rng.Uintn(uint64(half)+1)), raised
}

// Success records a completed operation: the backoff level decreases
// additively by the decay step, flooring at zero. It reports whether the
// level moved (false when already idle or disabled).
//
//lcrq:hotpath
func (c *Controller) Success() bool {
	if !c.enabled || c.spins == 0 {
		return false
	}
	if c.spins <= c.decay {
		c.spins = 0
	} else {
		c.spins -= c.decay
	}
	return true
}

// StarveLimit widens base — the configured StarvationLimit — by the
// handle's measured contention (the current backoff level) and the
// queue-wide remediation boost: (base + spins) << boost. Under a tantrum
// storm this is what lets enqueuers tolerate more failed attempts instead
// of closing ring after ring; an idle controller returns base unchanged.
//
//lcrq:hotpath
func (c *Controller) StarveLimit(base int) int {
	if !c.enabled {
		return base
	}
	limit := base + int(c.spins)
	if c.shared != nil {
		limit <<= c.shared.Boost()
	}
	return limit
}

// Jitter spreads d uniformly over [d/2, 3d/2], preserving the mean. It is
// independent of the enabled flag: herd dispersion is wanted on fixed-
// constant queues too.
//
//lcrq:hotpath
func (c *Controller) Jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(c.rng.Uintn(uint64(d)+1))
}

// WaitStart returns the first sleep for a wait loop: the configured floor
// when disabled or cold, otherwise the remembered level clamped to
// [min, max]. The remembered level is what keeps a producer that just sat
// through a long full episode from hammering the queue at the floor cadence
// the moment it re-enters EnqueueWait.
func (c *Controller) WaitStart(min, max time.Duration) time.Duration {
	if !c.enabled || c.wait == 0 {
		return min
	}
	w := time.Duration(c.wait)
	if w < min {
		w = min
	}
	if w > max {
		w = max
	}
	return w
}

// WaitGrow doubles cur, clamped to max — the multiplicative half of the
// wait-level MIAD — and, when adaptation is armed, remembers the new level
// for the next WaitStart.
func (c *Controller) WaitGrow(cur, max time.Duration) time.Duration {
	next := cur * 2
	if next > max {
		next = max
	}
	if c.enabled {
		c.wait = int64(next)
	}
	return next
}

// WaitDone records a successful wait exit: the remembered level decreases
// additively by min (the additive half of the MIAD), dropping to cold
// (zero) once it reaches the floor.
func (c *Controller) WaitDone(min time.Duration) {
	if !c.enabled || c.wait == 0 {
		return
	}
	w := time.Duration(c.wait) - min
	if w <= min {
		w = 0
	}
	c.wait = int64(w)
}

// WaitLevel returns the remembered wait-backoff level (0 when cold or
// disabled). Telemetry and tests only.
func (c *Controller) WaitLevel() time.Duration { return time.Duration(c.wait) }

// Pause burns a backoff of n spin iterations. Long pauses — the
// oversubscribed regime — are converted into scheduler yields chunk by
// chunk, because a pause that long means some other thread holds the state
// we are waiting on and it may well need our P to make progress. Pause is
// deliberately NOT //lcrq:hotpath: yielding is its job, and the annotated
// callers reach it as a plain call, exactly like any other slow-path helper.
func Pause(n uint32) {
	for n >= yieldSpins {
		runtime.Gosched()
		n -= yieldSpins
	}
	var acc uint64
	for i := uint32(0); i < n; i++ {
		acc += uint64(i)
	}
	pauseSink.Store(acc)
}

// Shared is the queue-wide remediation state: the starvation-limit boost
// shift the watchdog raises when its tantrum-storm verdict fires and decays
// after recovery. The boost word is read by every enqueue retry's starving
// check (via Controller.StarveLimit), so it owns a private cache line; the
// remediation tallies are written a few times per storm at most and may
// share a line.
//
//lcrq:padded
//lcrq:publish
type Shared struct {
	boost atomic.Uint64
	_     pad.Pad

	raises atomic.Uint64 //lcrq:cold
	decays atomic.Uint64 //lcrq:cold

	// boostMax is read-mostly configuration, set once at construction.
	boostMax uint64
}

// NewShared returns remediation state with the boost shift capped at
// boostMax. 0 selects DefaultBoostMax; a negative cap disables remediation
// entirely (Raise can never move the shift); the cap itself is bounded by
// maxBoost so a widened limit cannot overflow.
func NewShared(boostMax int) *Shared {
	if boostMax == 0 {
		boostMax = DefaultBoostMax
	}
	if boostMax < 0 {
		boostMax = 0
	}
	if boostMax > maxBoost {
		boostMax = maxBoost
	}
	s := &Shared{}
	s.boostMax = uint64(boostMax)
	return s
}

// Boost returns the current starvation-limit boost shift.
func (s *Shared) Boost() uint64 { return s.boost.Load() }

// BoostMax returns the configured cap on the boost shift.
func (s *Shared) BoostMax() uint64 { return s.boostMax }

// Raise increments the boost shift, saturating at the cap. It returns the
// new shift and whether this call changed it. Safe for concurrent use,
// though in practice only the watchdog calls it.
func (s *Shared) Raise() (uint64, bool) {
	for {
		cur := s.boost.Load()
		if cur >= s.boostMax {
			return cur, false
		}
		if s.boost.CompareAndSwap(cur, cur+1) {
			s.raises.Add(1)
			return cur + 1, true
		}
	}
}

// Decay decrements the boost shift, flooring at zero. It returns the new
// shift and whether this call changed it.
func (s *Shared) Decay() (uint64, bool) {
	for {
		cur := s.boost.Load()
		if cur == 0 {
			return 0, false
		}
		if s.boost.CompareAndSwap(cur, cur-1) {
			s.decays.Add(1)
			return cur - 1, true
		}
	}
}

// Raises returns how many boost raises have been applied.
func (s *Shared) Raises() uint64 { return s.raises.Load() }

// Decays returns how many boost decays have been applied.
func (s *Shared) Decays() uint64 { return s.decays.Load() }
