//go:build chaos

package flightrec

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lcrq"
)

// TestDumpOnWatchdogAlert drives the queue into a genuine watchdog alert — a
// capacity-stall: a tiny bounded queue held full with rejects arriving and
// zero consumer progress — and asserts the flight recorder notices the
// ok→alert edge and writes exactly the black-box dump an operator would want:
// reason "watchdog-alert", an unhealthy frame naming the verdict, and the
// watchdog-alert event in the tail.
func TestDumpOnWatchdogAlert(t *testing.T) {
	dir := t.TempDir()
	q := lcrq.New(lcrq.WithCapacity(4), lcrq.WithWatchdog(time.Millisecond))
	defer q.Close()
	r := New(Config{Queue: q, Interval: time.Millisecond, Frames: 256, Dir: dir, Logf: t.Logf})
	defer r.Stop()

	// Fill the queue, then keep the rejects flowing with no dequeues: after
	// wdCapacityTicks full intervals the watchdog flips to capacity-stall.
	for i := 0; i < 4; i++ {
		if !q.Enqueue(uint64(i)) {
			t.Fatalf("seed enqueue %d rejected", i)
		}
	}
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				q.TryEnqueue(99) // rejected: the queue is full
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	waitFor(t, 10*time.Second, func() bool { return r.AlertDumps() >= 1 }, "an automatic alert dump")

	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("dump dir: %v, %v", ents, err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, ents[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if d.Reason != "watchdog-alert" {
		t.Fatalf("reason = %q", d.Reason)
	}
	unhealthy := false
	for _, f := range d.Frames {
		if !f.HealthOK {
			unhealthy = true
			if !strings.Contains(f.Verdict, "capacity-stall") {
				t.Fatalf("unhealthy frame verdict = %q, want capacity-stall", f.Verdict)
			}
		}
	}
	if !unhealthy {
		t.Fatal("no unhealthy frame in an alert-triggered dump")
	}
	alertEvent := false
	for _, ev := range d.Events {
		if ev.Kind == "watchdog-alert" {
			alertEvent = true
		}
	}
	if !alertEvent {
		t.Fatalf("watchdog-alert event missing from the dump tail: %+v", d.Events)
	}
}
