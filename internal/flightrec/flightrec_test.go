package flightrec

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"lcrq"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFramesAndDeltas: the recorder captures frames at its cadence and the
// per-frame counter deltas sum back to the queue's cumulative totals.
func TestFramesAndDeltas(t *testing.T) {
	q := lcrq.New(lcrq.WithTracing(1))
	defer q.Close()
	// A ring deep enough that the burst's frames cannot be evicted while the
	// convergence poll below runs (4096 × 2ms ≈ 8s of window).
	r := New(Config{Queue: q, Interval: 2 * time.Millisecond, Frames: 4096})
	defer r.Stop()

	// Telemetry publishes per-handle counters every 256 ops, so drive well
	// past one publication interval and then compare the frame-delta sums
	// against the queue's own published cumulative totals once quiescent.
	const burst = 2048
	for i := 0; i < burst; i++ {
		q.Enqueue(uint64(i))
	}
	for i := 0; i < burst; i++ {
		q.Dequeue()
	}
	sums := func() (enq, deq uint64) {
		for _, f := range r.Snapshot("test").Frames {
			enq += f.Enqueues
			deq += f.Dequeues
		}
		return
	}
	waitFor(t, 5*time.Second, func() bool {
		st := q.Metrics().Stats
		enq, deq := sums()
		return enq >= burst/2 && enq == st.Enqueues && deq == st.Dequeues
	}, "frame deltas to converge on the published totals")

	d := r.Snapshot("test")
	if d.Reason != "test" || d.IntervalMs != 2 {
		t.Fatalf("dump header = reason %q interval %d", d.Reason, d.IntervalMs)
	}
	for i, f := range d.Frames {
		if i > 0 && f.At.Before(d.Frames[i-1].At) {
			t.Fatalf("frames out of order at %d", i)
		}
		if !f.HealthOK {
			t.Fatalf("healthy queue reported unhealthy frame: %+v", f)
		}
	}
	if d.Frames[len(d.Frames)-1].SojournP50Ns <= 0 {
		t.Fatal("sojourn quantile missing despite 1-in-1 tracing")
	}
}

// TestRingBounded: the frame ring wraps at its capacity — old frames are
// overwritten, the dump never grows past Frames entries, and order stays
// oldest-first across the wrap point.
func TestRingBounded(t *testing.T) {
	q := lcrq.New()
	defer q.Close()
	r := New(Config{Queue: q, Interval: time.Millisecond, Frames: 4})
	defer r.Stop()

	waitFor(t, 2*time.Second, func() bool {
		return len(r.Snapshot("test").Frames) == 4
	}, "the ring to fill")
	time.Sleep(10 * time.Millisecond) // several wraps past full
	d := r.Snapshot("test")
	if len(d.Frames) != 4 {
		t.Fatalf("frames = %d, want exactly 4 after wrapping", len(d.Frames))
	}
	for i := 1; i < len(d.Frames); i++ {
		if d.Frames[i].At.Before(d.Frames[i-1].At) {
			t.Fatalf("frames out of order across the wrap at %d", i)
		}
	}
}

// TestWriteFileMeta: a dump file is valid JSON carrying build provenance,
// the trigger reason, and the queue's event tail.
func TestWriteFileMeta(t *testing.T) {
	q := lcrq.New(lcrq.WithTelemetry())
	defer q.Close()
	r := New(Config{
		Queue:    q,
		Interval: time.Millisecond,
		Dir:      t.TempDir(),
		Extra:    func() map[string]any { return map[string]any{"answer": 42} },
	})
	defer r.Stop()
	q.Enqueue(1)
	waitFor(t, 2*time.Second, func() bool {
		return len(r.Snapshot("x").Frames) > 0
	}, "a first frame")

	path, err := r.WriteFile("sigquit")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if d.Meta.Commit == "" || d.Meta.GoMaxProcs < 1 || d.Meta.Timestamp == "" {
		t.Fatalf("build meta incomplete: %+v", d.Meta)
	}
	if d.Reason != "sigquit" || len(d.Frames) == 0 {
		t.Fatalf("dump = reason %q, %d frames", d.Reason, len(d.Frames))
	}
	if d.Extra["answer"] != float64(42) {
		t.Fatalf("extra payload = %v", d.Extra)
	}
}

// TestHandler: the /admin/blackbox handler serves the same dump over HTTP.
func TestHandler(t *testing.T) {
	q := lcrq.New(lcrq.WithTelemetry())
	defer q.Close()
	r := New(Config{Queue: q, Interval: time.Millisecond, Frames: 8})
	defer r.Stop()
	waitFor(t, 2*time.Second, func() bool {
		return len(r.Snapshot("x").Frames) > 0
	}, "a first frame")

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/admin/blackbox", nil))
	if rec.Code != 200 || rec.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("handler: %d %s", rec.Code, rec.Header().Get("Content-Type"))
	}
	var d Dump
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Reason != "http" || len(d.Frames) == 0 {
		t.Fatalf("handler dump = reason %q, %d frames", d.Reason, len(d.Frames))
	}
}

// TestCapturePanic: a panicking goroutine with a deferred CapturePanic
// leaves a "panic" dump on disk and still crashes (the panic propagates).
func TestCapturePanic(t *testing.T) {
	q := lcrq.New()
	defer q.Close()
	dir := t.TempDir()
	r := New(Config{Queue: q, Interval: time.Millisecond, Dir: dir})
	defer r.Stop()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("CapturePanic swallowed the panic")
			}
		}()
		defer r.CapturePanic()
		panic("boom")
	}()

	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("dump dir after panic: %v, %v", ents, err)
	}
	if name := ents[0].Name(); len(name) < len("blackbox-panic-") || name[:15] != "blackbox-panic-" {
		t.Fatalf("dump file name = %q", name)
	}
}

// TestStopIdempotent: Stop twice is safe, and Snapshot keeps serving the
// recorded window afterwards.
func TestStopIdempotent(t *testing.T) {
	q := lcrq.New()
	defer q.Close()
	r := New(Config{Queue: q, Interval: time.Millisecond})
	waitFor(t, 2*time.Second, func() bool {
		return len(r.Snapshot("x").Frames) > 0
	}, "a first frame")
	r.Stop()
	r.Stop()
	if len(r.Snapshot("post-stop").Frames) == 0 {
		t.Fatal("recorded window lost after Stop")
	}
}
