// Package flightrec is the queue's black-box flight recorder: an always-on,
// bounded, low-cadence observer that keeps the last few minutes of queue
// state in memory so the moments *before* an incident are reconstructable
// after it. Telemetry answers "what is happening"; the flight recorder
// answers "what was happening when it went wrong" — from a process that may
// already be unhealthy, wedged, or about to die.
//
// Design constraints, in order:
//
//   - Always on: recording must be cheap enough to never turn off. One
//     Metrics() snapshot per interval (default 1s) into a fixed ring of
//     frames — no allocation growth, no I/O, nothing on any operation path.
//   - Bounded: the ring holds a fixed number of frames (default 120 ≈ two
//     minutes); older frames are overwritten. A dump is a bounded JSON
//     document no matter how long the process ran.
//   - Self-describing: every dump embeds internal/buildmeta provenance
//     (commit, GOMAXPROCS, timestamp), the trigger reason, and per-frame
//     counter deltas, health verdicts, latency/sojourn quantiles, and the
//     queue's event-ring tail — enough to diagnose without the process.
//
// Triggers: an explicit Snapshot/WriteFile call (SIGQUIT handlers, panic
// paths), the watchdog's ok→alert edge (automatic, once per edge, when a
// dump directory is configured), and GET /admin/blackbox via Handler.
package flightrec

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"lcrq"
	"lcrq/internal/buildmeta"
)

// DefaultInterval is the frame capture cadence.
const DefaultInterval = time.Second

// DefaultFrames is the default ring capacity (two minutes at the default
// cadence).
const DefaultFrames = 120

// Config configures a Recorder. Queue is required.
type Config struct {
	// Queue to observe.
	Queue *lcrq.Queue
	// Interval between frames (default 1s).
	Interval time.Duration
	// Frames is the ring capacity (default 120).
	Frames int
	// Dir, when set, enables automatic dumps: the watchdog's ok→alert edge
	// writes a dump file here (once per edge). Explicit WriteFile calls also
	// land here.
	Dir string
	// Extra, when set, is invoked at dump time and its result embedded in
	// the dump — cmd/qserve passes the server's wire-counter snapshot.
	Extra func() map[string]any
	// Logf, when set, receives one line per automatic dump.
	Logf func(format string, args ...any)
}

// Frame is one periodic observation. Counter fields are deltas since the
// previous frame (rates, effectively, over one interval); gauges and
// quantiles are point-in-time.
//
//lcrq:publish
type Frame struct {
	At time.Time `json:"at"`

	// Gauges.
	Depth   int64 `json:"depth"`
	Items   int64 `json:"items,omitempty"`
	Handles int   `json:"handles"`

	// Watchdog verdict at capture time.
	HealthOK bool   `json:"health_ok"`
	Verdict  string `json:"verdict,omitempty"`

	// Counter deltas over the interval.
	Enqueues        uint64 `json:"enqueues"`
	Dequeues        uint64 `json:"dequeues"`
	Empty           uint64 `json:"empty"`
	RingCloses      uint64 `json:"ring_closes,omitempty"`
	RingAppends     uint64 `json:"ring_appends,omitempty"`
	CapacityRejects uint64 `json:"capacity_rejects,omitempty"`
	TraceHits       uint64 `json:"trace_hits,omitempty"`
	AdaptRaises     uint64 `json:"adapt_raises,omitempty"`
	AdaptDecays     uint64 `json:"adapt_decays,omitempty"`

	// ContentionBoost is the adaptive controller's remediation boost at
	// capture time (a gauge; 0 when the controller is off or unboosted).
	ContentionBoost uint64 `json:"contention_boost,omitempty"`

	// Latency and sojourn quantiles (cumulative distributions, read at
	// capture time).
	EnqueueP99Ns int64 `json:"enqueue_p99_ns,omitempty"`
	DequeueP99Ns int64 `json:"dequeue_p99_ns,omitempty"`
	SojournP50Ns int64 `json:"sojourn_p50_ns,omitempty"`
	SojournP99Ns int64 `json:"sojourn_p99_ns,omitempty"`
}

// Dump is the flight recorder's output document.
//
//lcrq:publish
type Dump struct {
	// Meta stamps which build produced this dump, on how many processors,
	// and when — a dump without provenance is guesswork.
	Meta buildmeta.Meta `json:"meta"`
	// Reason names the trigger: "sigquit", "watchdog-alert", "panic",
	// "http", or whatever the caller passed.
	Reason   string    `json:"reason"`
	DumpedAt time.Time `json:"dumped_at"`
	// IntervalMs is the frame cadence, so readers can turn deltas into rates.
	IntervalMs int64 `json:"interval_ms"`
	// Frames, oldest first — the recorded window leading up to the dump.
	Frames []Frame `json:"frames"`
	// Events is the queue's ring-lifecycle event tail (watchdog alerts
	// included) at dump time.
	Events []lcrq.Event `json:"events,omitempty"`
	// Extra is the Config.Extra payload (e.g. qserve's wire counters).
	Extra map[string]any `json:"extra,omitempty"`
}

// Recorder is the running flight recorder. Create with New, Stop on the way
// out.
type Recorder struct {
	cfg Config

	mu     sync.Mutex
	frames []Frame // fixed-capacity ring
	next   int     // ring cursor
	full   bool    // the ring has wrapped
	prev   lcrq.Stats
	seeded bool // prev holds a real baseline
	lastOK bool // health at the previous tick, for edge detection

	alertDumps atomic.Uint64 // automatic watchdog-alert dumps written
	stop       chan struct{}
	stopOnce   sync.Once
	done       chan struct{}
}

// New starts a Recorder observing cfg.Queue.
func New(cfg Config) *Recorder {
	if cfg.Queue == nil {
		panic("flightrec.New: Config.Queue is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Frames <= 0 {
		cfg.Frames = DefaultFrames
	}
	r := &Recorder{
		cfg:    cfg,
		frames: make([]Frame, cfg.Frames),
		lastOK: true,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	// Capture a synchronous baseline frame so the counter deltas are seeded
	// at construction: everything that happens after New is attributed to a
	// frame, even when a burst completes before the first tick.
	r.capture()
	go r.run()
	return r
}

// Stop halts frame capture. Snapshot and the dump entry points keep working
// on the recorded window.
func (r *Recorder) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

// AlertDumps reports how many automatic watchdog-alert dumps were written.
func (r *Recorder) AlertDumps() uint64 { return r.alertDumps.Load() }

func (r *Recorder) run() {
	defer close(r.done)
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			alerted := r.capture()
			if alerted && r.cfg.Dir != "" {
				path, err := r.WriteFile("watchdog-alert")
				if err != nil {
					r.logf("flightrec: watchdog-alert dump failed: %v", err)
				} else {
					r.alertDumps.Add(1)
					r.logf("flightrec: watchdog alert — dumped %s", path)
				}
			}
		}
	}
}

// capture appends one frame and reports whether the watchdog flipped
// ok→alert since the previous frame.
func (r *Recorder) capture() (alertEdge bool) {
	m := r.cfg.Queue.Metrics()
	f := Frame{
		At:       time.Now(),
		Depth:    m.Depth,
		Items:    m.Items,
		Handles:  m.Handles,
		HealthOK: m.Health.OK,
		Verdict:  m.Health.Verdict,

		ContentionBoost: m.Contention.Boost,

		EnqueueP99Ns: m.Enqueue.P99.Nanoseconds(),
		DequeueP99Ns: m.Dequeue.P99.Nanoseconds(),
		SojournP50Ns: m.Sojourn.P50.Nanoseconds(),
		SojournP99Ns: m.Sojourn.P99.Nanoseconds(),
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seeded {
		f.Enqueues = m.Stats.Enqueues - r.prev.Enqueues
		f.Dequeues = m.Stats.Dequeues - r.prev.Dequeues
		f.Empty = m.Stats.Empty - r.prev.Empty
		f.RingCloses = m.Stats.RingCloses - r.prev.RingCloses
		f.RingAppends = m.Stats.RingAppends - r.prev.RingAppends
		f.TraceHits = m.Stats.TraceHits - r.prev.TraceHits
		f.AdaptRaises = m.Stats.AdaptiveRaises - r.prev.AdaptiveRaises
		f.AdaptDecays = m.Stats.AdaptiveDecays - r.prev.AdaptiveDecays
	}
	f.CapacityRejects = m.CapacityRejects // cumulative gauge-like; cheap to diff offline
	r.prev = m.Stats
	r.seeded = true

	r.frames[r.next] = f
	r.next = (r.next + 1) % len(r.frames)
	if r.next == 0 {
		r.full = true
	}

	alertEdge = r.lastOK && !m.Health.OK
	r.lastOK = m.Health.OK
	return alertEdge
}

// Snapshot assembles a dump of the recorded window, oldest frame first.
// Safe to call at any time, including after Stop and from signal or panic
// handlers.
func (r *Recorder) Snapshot(reason string) Dump {
	d := Dump{
		Meta:       buildmeta.Collect(),
		Reason:     reason,
		DumpedAt:   time.Now(),
		IntervalMs: r.cfg.Interval.Milliseconds(),
		Events:     r.cfg.Queue.Events(),
	}
	r.mu.Lock()
	if r.full {
		d.Frames = append(d.Frames, r.frames[r.next:]...)
		d.Frames = append(d.Frames, r.frames[:r.next]...)
	} else {
		d.Frames = append(d.Frames, r.frames[:r.next]...)
	}
	r.mu.Unlock()
	if r.cfg.Extra != nil {
		d.Extra = r.cfg.Extra()
	}
	return d
}

// WriteTo writes the dump as indented JSON.
func (d Dump) WriteTo(w interface{ Write([]byte) (int, error) }) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteFile writes a dump to the configured directory (or the working
// directory when none was configured) and returns its path. Filenames are
// blackbox-<reason>-<unix-nanos>.json — unique per trigger, sortable by
// time.
func (r *Recorder) WriteFile(reason string) (string, error) {
	dir := r.cfg.Dir
	if dir == "" {
		dir = "."
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	d := r.Snapshot(reason)
	path := filepath.Join(dir, fmt.Sprintf("blackbox-%s-%d.json", reason, d.DumpedAt.UnixNano()))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := d.WriteTo(f); err != nil {
		f.Close()
		return path, err
	}
	return path, f.Close()
}

// CapturePanic is a deferred panic trigger: when the calling goroutine is
// panicking, it writes a "panic" dump (best effort) and re-panics so the
// crash proceeds normally with the dump on disk.
//
//	defer rec.CapturePanic()
func (r *Recorder) CapturePanic() {
	if p := recover(); p != nil {
		if path, err := r.WriteFile("panic"); err == nil {
			r.logf("flightrec: panic — dumped %s", path)
		}
		panic(p)
	}
}

// Handler serves the current dump as JSON — the live /admin/blackbox
// endpoint.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.Snapshot("http").WriteTo(w)
	})
}

func (r *Recorder) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}
