// Package telemetry is the live observability layer for the queue: it turns
// the per-handle instrumentation that the bench harness reads post-hoc into
// metrics that can be scraped while the queue serves traffic.
//
// The design splits responsibilities so that nothing synchronizes on the
// operation fast path:
//
//   - Counters stay plain single-writer fields owned by each handle (see
//     internal/instrument). A handle's telemetry record republishes them
//     into an atomically readable mirror every publishInterval operations,
//     so a scraper sums per-handle snapshots that lag the truth by at most
//     one interval per handle — lock-free on both sides.
//   - Latency is sampled 1-in-N per handle (randomized phase, deterministic
//     stride) into shared log-bucketed histograms with one atomic counter
//     per bucket; the bucket layout is borrowed from internal/hist so
//     quantiles come from the same code the bench harness uses.
//   - Ring-lifecycle events (close, tantrum, append, recycle, retire, queue
//     close) arrive via the core.Tap interface — all slow paths — and are
//     tallied and recorded into a bounded lock-free event ring readable as
//     a debugging trace.
//
// The package has no dependencies beyond the repo; exporters (expvar,
// Prometheus text format) live in the public package on top of Snapshot.
package telemetry

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lcrq/internal/chaos"
	"lcrq/internal/core"
	"lcrq/internal/hist"
	"lcrq/internal/instrument"
)

// Kind identifies a latency series.
type Kind uint8

const (
	KindEnqueue Kind = iota
	KindDequeue
	KindDequeueWait
	KindEnqueueWait

	// NumKinds is the number of latency series; it is not itself a kind.
	NumKinds
)

var kindNames = [NumKinds]string{
	KindEnqueue:     "enqueue",
	KindDequeue:     "dequeue",
	KindDequeueWait: "dequeue-wait",
	KindEnqueueWait: "enqueue-wait",
}

// String returns the series name used by the exporters.
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return "unknown"
}

// BatchKind identifies a batch-size distribution series.
type BatchKind uint8

const (
	BatchEnqueue BatchKind = iota
	BatchDequeue

	// NumBatchKinds is the number of batch series; it is not itself a kind.
	NumBatchKinds
)

var batchKindNames = [NumBatchKinds]string{
	BatchEnqueue: "enqueue-batch",
	BatchDequeue: "dequeue-batch",
}

// String returns the series name used by the exporters.
func (k BatchKind) String() string {
	if k < NumBatchKinds {
		return batchKindNames[k]
	}
	return "unknown"
}

// publishInterval is how many operations a handle performs between counter
// republications. It bounds both the scraper's staleness (per handle) and
// the amortized publication cost (~20 atomic stores per interval).
const publishInterval = 256

// DefaultEventBuffer is the default capacity of the ring-lifecycle event
// trace.
const DefaultEventBuffer = 256

// retireMidFold is a test hook invoked between the retired-sum publish and
// the live-list swap in Unregister — the window where the two halves of the
// aggregate disagree. Nil outside tests.
var retireMidFold func()

// Sink aggregates telemetry for one queue. It implements core.Tap. Its
// plain fields are configuration and sub-structure pointers frozen when
// New publishes the sink; all post-publication mutation goes through
// atomics or mu.
//
//lcrq:publish
type Sink struct {
	sampleN uint32 // latency sampling stride; 0 disables sampling
	epoch   int64  // UnixNano base for compact event timestamps

	mu sync.Mutex // guards registration and retired
	//lcrq:seqlock retireVer
	retired instrument.Counters // sum over released handles (under mu)
	//lcrq:seqlock retireVer
	retPub *instrument.AtomicCounters // atomically readable copy of retired
	//lcrq:seqlock retireVer
	recs atomic.Pointer[[]*Rec] // copy-on-write registry of live handles
	// retireVer is a seqlock over the (retPub, recs) pair: odd while an
	// Unregister is folding a handle into the retired sum. Without it a
	// Snapshot could read the new retired total and the stale live list,
	// count the retiring handle twice, and make monotone counters appear
	// to run backwards between scrapes.
	retireVer atomic.Uint64
	seedCtr   atomic.Uint64 // sampling phase scrambler
	hists     [NumKinds]*latHist
	batches   [NumBatchKinds]*latHist // batch-size distributions (items, not ns)
	sojourn   *latHist                // item ring-residency (sampled item traces)
	events    *eventRing
	traces    *traceRing // recent completed item traces
	evCount   [core.NumRingEvents]atomic.Uint64
}

// New returns a Sink sampling latency 1-in-sampleN (0 disables latency
// sampling) with an event trace of eventCap entries (0 selects
// DefaultEventBuffer).
func New(sampleN int, eventCap int) *Sink {
	if sampleN < 0 {
		sampleN = 0
	}
	if eventCap <= 0 {
		eventCap = DefaultEventBuffer
	}
	s := &Sink{
		sampleN: uint32(sampleN),
		epoch:   time.Now().UnixNano(),
		retPub:  instrument.NewAtomicCounters(),
		events:  newEventRing(eventCap),
		traces:  newTraceRing(DefaultTraceBuffer),
		sojourn: newLatHist(),
	}
	empty := []*Rec{}
	s.recs.Store(&empty)
	for k := range s.hists {
		s.hists[k] = newLatHist()
	}
	for k := range s.batches {
		s.batches[k] = newLatHist()
	}
	return s
}

// RingEvent implements core.Tap: it tallies the event and appends it to the
// lifecycle trace. Called only from queue slow paths.
func (s *Sink) RingEvent(ev core.RingEvent) {
	if ev >= core.NumRingEvents {
		return
	}
	s.evCount[ev].Add(1)
	s.events.add(uint8(ev), time.Now().UnixNano()-s.epoch)
}

// Rec is the per-handle telemetry record. Like the handle itself it is
// single-writer: only the owning goroutine calls Arm, Lat, and Tick.
//
//lcrq:singlewriter
type Rec struct {
	sink      *Sink
	src       *instrument.Counters
	pub       *instrument.AtomicCounters
	ops       uint32
	countdown uint32
}

// Register adds a handle's counters to the aggregation set and returns its
// record. src must remain owned by the registering goroutine.
func (s *Sink) Register(src *instrument.Counters) *Rec {
	r := &Rec{sink: s, src: src, pub: instrument.NewAtomicCounters()}
	if s.sampleN > 0 {
		// Random phase per handle so samplers do not run in lockstep.
		seed := s.seedCtr.Add(1) * 0x9E3779B97F4A7C15
		r.countdown = uint32(seed%uint64(s.sampleN)) + 1
	}
	s.mu.Lock()
	// Bracket the list swap in the retireVer seqlock, like Unregister: recs
	// is one half of the (retPub, recs) pair, and a registration racing a
	// scrape mid-pass should send the scrape around again rather than let
	// it treat "list changed under me" as a clean read. Found by
	// seqlockcheck when the pair was annotated.
	s.retireVer.Add(1)
	old := *s.recs.Load()
	next := make([]*Rec, len(old)+1)
	copy(next, old)
	next[len(old)] = r
	s.recs.Store(&next)
	s.retireVer.Add(1)
	s.mu.Unlock()
	return r
}

// Unregister removes a record, folding its final counter values into the
// retired sum so released handles keep contributing to totals.
func (s *Sink) Unregister(r *Rec) {
	s.mu.Lock()
	s.retireVer.Add(1) // odd: fold in progress, Snapshot must not mix halves
	s.retired.Add(r.src)
	s.retPub.Store(&s.retired)
	if retireMidFold != nil {
		retireMidFold()
	}
	old := *s.recs.Load()
	next := make([]*Rec, 0, len(old))
	for _, o := range old {
		if o != r {
			next = append(next, o)
		}
	}
	s.recs.Store(&next)
	s.retireVer.Add(1) // even: retired sum and live list agree again
	s.mu.Unlock()
}

// Arm reports whether the next operation should be latency-sampled. One
// decrement and branch per operation (telemetry-enabled handles only).
func (r *Rec) Arm() bool {
	if r.sink.sampleN == 0 {
		return false
	}
	r.countdown--
	if r.countdown == 0 {
		r.countdown = r.sink.sampleN
		return true
	}
	return false
}

// Lat records a sampled operation latency.
func (r *Rec) Lat(k Kind, d time.Duration) {
	r.sink.hists[k].record(d.Nanoseconds())
}

// Batch records the accepted size of a batch operation. Unlike latency,
// batch sizes are recorded unconditionally (batch calls are already
// amortized), reusing the log-bucket histogram with items in place of
// nanoseconds.
func (r *Rec) Batch(k BatchKind, n int) {
	if n < 0 {
		n = 0
	}
	r.sink.batches[k].record(int64(n))
}

// Tick advances the publication pacing and republishes the handle's
// counters every publishInterval calls. Call once per completed operation.
func (r *Rec) Tick() {
	r.ops++
	if r.ops >= publishInterval {
		r.ops = 0
		r.pub.Store(r.src)
	}
}

// Flush force-publishes the handle's current counters (e.g. before a long
// idle period, or in tests).
func (r *Rec) Flush() { r.pub.Store(r.src) }

// LatencySnapshot summarizes one latency series.
type LatencySnapshot struct {
	Samples uint64
	SumNs   int64
	MaxNs   int64
	P50Ns   int64
	P99Ns   int64
	P999Ns  int64
}

// ChaosCount reports how often one fault-injection point fired (always zero
// without the chaos build tag).
type ChaosCount struct {
	Point string
	Fired uint64
}

// Snapshot is a point-in-time aggregate of everything the sink knows.
// Counter fields published by different handles at different times may be
// mixed; every individual counter is monotone and at most one publication
// interval stale per handle.
type Snapshot struct {
	Counters    instrument.Counters
	Handles     int // live (registered, unreleased) handles
	SampleN     int // latency sampling stride (0 = disabled)
	Latency     [NumKinds]LatencySnapshot
	BatchSizes  [NumBatchKinds]LatencySnapshot // sizes in items, not ns
	Sojourn     LatencySnapshot                // item ring-residency (sampled traces)
	EventCounts [core.NumRingEvents]uint64
	Chaos       []ChaosCount
}

// Snapshot aggregates the current telemetry. Lock-free with respect to
// operations; safe to call concurrently with everything.
func (s *Sink) Snapshot() Snapshot {
	var snap Snapshot
	snap.SampleN = int(s.sampleN)
	// Seqlock read of the counter aggregate: a retirement observed mid-read
	// would count the retiring handle both in the retired sum and in the
	// stale live list, so retry until a whole pass lands between folds.
	// Retirements are rare (handle release), so this loops at most a few
	// times in practice.
	for {
		v := s.retireVer.Load()
		if v&1 != 0 {
			runtime.Gosched()
			continue
		}
		agg := s.retPub.Load()
		recs := *s.recs.Load()
		for _, r := range recs {
			c := r.pub.Load()
			agg.Add(&c)
		}
		if s.retireVer.Load() == v {
			snap.Counters = agg
			snap.Handles = len(recs)
			break
		}
	}
	for k := range s.hists {
		snap.Latency[k] = s.hists[k].snapshot()
	}
	for k := range s.batches {
		snap.BatchSizes[k] = s.batches[k].snapshot()
	}
	snap.Sojourn = s.sojourn.snapshot()
	for ev := range s.evCount {
		snap.EventCounts[ev] = s.evCount[ev].Load()
	}
	for _, p := range chaos.Points() {
		snap.Chaos = append(snap.Chaos, ChaosCount{Point: p.String(), Fired: chaos.Fired(p)})
	}
	return snap
}

// Events returns the lifecycle trace, oldest first. Best-effort under
// concurrent writers: a slot being overwritten during the read is skipped.
func (s *Sink) Events() []Event {
	return s.events.snapshot(s.epoch)
}

// latHist is a concurrently recordable histogram sharing internal/hist's
// bucket layout: one atomic counter per bucket. Recording happens only on
// sampled operations (1-in-N), so contention is negligible.
type latHist struct {
	counts   []atomic.Uint64 // hist.NumBuckets
	overflow atomic.Uint64
	count    atomic.Uint64
	sum      atomic.Int64
	max      atomic.Int64
}

func newLatHist() *latHist {
	return &latHist{counts: make([]atomic.Uint64, hist.NumBuckets)}
}

func (l *latHist) record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	if b := hist.Bucket(ns); b >= hist.NumBuckets {
		l.overflow.Add(1)
	} else {
		l.counts[b].Add(1)
	}
	l.count.Add(1)
	l.sum.Add(ns)
	for {
		m := l.max.Load()
		if ns <= m || l.max.CompareAndSwap(m, ns) {
			break
		}
	}
}

func (l *latHist) snapshot() LatencySnapshot {
	n := l.count.Load()
	if n == 0 {
		return LatencySnapshot{}
	}
	counts := make([]uint64, hist.NumBuckets)
	for i := range counts {
		counts[i] = l.counts[i].Load()
	}
	h := hist.FromBuckets(counts, l.overflow.Load())
	return LatencySnapshot{
		Samples: h.Count(),
		SumNs:   l.sum.Load(),
		MaxNs:   l.max.Load(),
		P50Ns:   h.Quantile(0.5),
		P99Ns:   h.Quantile(0.99),
		P999Ns:  h.Quantile(0.999),
	}
}
