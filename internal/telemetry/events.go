package telemetry

import (
	"math/bits"
	"sort"
	"sync/atomic"
	"time"

	"lcrq/internal/core"
)

// Event is one entry of the ring-lifecycle trace.
type Event struct {
	Seq  uint64 // global 0-based event sequence number
	Kind core.RingEvent
	Time time.Time
}

// eventRing is a bounded lock-free MPMC trace buffer. Writers claim a slot
// with a fetch-and-add — the same always-succeeds idiom as the queue itself —
// and publish each entry with a per-slot sequence word stored last, so a
// reader can detect and skip slots that are mid-overwrite. Readers never
// block writers and vice versa; a reader racing a wrap-around may observe a
// fresh payload labeled with a stale sequence number, which is acceptable
// for a debugging trace (each payload word is itself atomic, so the event
// content is never torn).
type eventRing struct {
	mask   uint64
	cursor atomic.Uint64
	slots  []eventSlot
}

type eventSlot struct {
	seq atomic.Uint64 // published sequence + 1; 0 = never written
	//lcrq:seqlock seq
	packed atomic.Uint64 // kind<<56 | nanos-since-epoch (56 bits ≈ 2.3 years)
}

const packShift = 56
const packMask = (uint64(1) << packShift) - 1

func newEventRing(capacity int) *eventRing {
	if capacity < 1 {
		capacity = 1
	}
	size := 1 << bits.Len(uint(capacity-1)) // round up to a power of two
	return &eventRing{mask: uint64(size - 1), slots: make([]eventSlot, size)}
}

func (r *eventRing) add(kind uint8, nanos int64) {
	if nanos < 0 {
		nanos = 0
	}
	i := r.cursor.Add(1) - 1
	s := &r.slots[i&r.mask]
	s.seq.Store(0) // unpublish while the payload is replaced
	s.packed.Store(uint64(kind)<<packShift | uint64(nanos)&packMask)
	s.seq.Store(i + 1)
}

// snapshot collects the currently published events, oldest first.
func (r *eventRing) snapshot(epoch int64) []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		s1 := s.seq.Load()
		if s1 == 0 {
			continue
		}
		p := s.packed.Load()
		if s.seq.Load() != s1 {
			continue // overwritten mid-read
		}
		out = append(out, Event{
			Seq:  s1 - 1,
			Kind: core.RingEvent(p >> packShift),
			Time: time.Unix(0, epoch+int64(p&packMask)),
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}
