package telemetry

import (
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultTraceBuffer is the default capacity of the recent-traces ring.
const DefaultTraceBuffer = 256

// TraceRecord is one completed item trace: a stamped item that a dequeue
// claimed, with its identity and ring residency.
type TraceRecord struct {
	Seq        uint64 // global 0-based completion sequence number
	ID         uint64 // trace identity stamped at enqueue
	EnqueuedAt time.Time
	Sojourn    time.Duration // ring residency (dequeue time − enqueue time)
}

// traceRing is a bounded lock-free MPMC buffer of the most recent completed
// traces, built on the same claim-with-F&A / publish-sequence-last idiom as
// eventRing. Payload words are individually atomic; the per-slot sequence
// word is stored last and re-checked by readers, so a snapshot never
// contains a torn record — a slot overwritten mid-read is skipped.
type traceRing struct {
	mask   uint64
	cursor atomic.Uint64
	slots  []traceSlot
}

type traceSlot struct {
	seq atomic.Uint64 // published sequence + 1; 0 = never written
	//lcrq:seqlock seq
	id atomic.Uint64
	//lcrq:seqlock seq
	enq atomic.Int64
	//lcrq:seqlock seq
	soj atomic.Int64
}

func newTraceRing(capacity int) *traceRing {
	if capacity < 1 {
		capacity = 1
	}
	size := 1 << bits.Len(uint(capacity-1)) // round up to a power of two
	return &traceRing{mask: uint64(size - 1), slots: make([]traceSlot, size)}
}

func (r *traceRing) add(id uint64, enqUnixNs, sojournNs int64) {
	i := r.cursor.Add(1) - 1
	s := &r.slots[i&r.mask]
	s.seq.Store(0) // unpublish while the payload is replaced
	s.id.Store(id)
	s.enq.Store(enqUnixNs)
	s.soj.Store(sojournNs)
	s.seq.Store(i + 1)
}

// snapshot collects the currently published records, oldest first.
func (r *traceRing) snapshot() []TraceRecord {
	out := make([]TraceRecord, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		s1 := s.seq.Load()
		if s1 == 0 {
			continue
		}
		id := s.id.Load()
		enq := s.enq.Load()
		soj := s.soj.Load()
		if s.seq.Load() != s1 {
			continue // overwritten mid-read
		}
		out = append(out, TraceRecord{
			Seq:        s1 - 1,
			ID:         id,
			EnqueuedAt: time.Unix(0, enq),
			Sojourn:    time.Duration(soj),
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// find returns the most recent published record carrying id.
func (r *traceRing) find(id uint64) (TraceRecord, bool) {
	var best TraceRecord
	found := false
	for i := range r.slots {
		s := &r.slots[i]
		s1 := s.seq.Load()
		if s1 == 0 || s.id.Load() != id {
			continue
		}
		enq := s.enq.Load()
		soj := s.soj.Load()
		if s.seq.Load() != s1 {
			continue
		}
		if !found || s1-1 > best.Seq {
			best = TraceRecord{Seq: s1 - 1, ID: id, EnqueuedAt: time.Unix(0, enq), Sojourn: time.Duration(soj)}
			found = true
		}
	}
	return best, found
}

// ItemSojourn implements core.TraceTap: it feeds the sojourn histogram and
// records the completed trace. Called at the item-trace sampling cadence
// (1-in-N enqueued items), never per operation.
func (s *Sink) ItemSojourn(id uint64, enqUnixNs, sojournNs int64) {
	s.sojourn.record(sojournNs)
	s.traces.add(id, enqUnixNs, sojournNs)
}

// Traces returns the recent completed item traces, oldest first.
// Best-effort under concurrent writers, like Events.
func (s *Sink) Traces() []TraceRecord {
	return s.traces.snapshot()
}

// FindTrace returns the most recent completed trace carrying id, if it is
// still in the buffer.
func (s *Sink) FindTrace(id uint64) (TraceRecord, bool) {
	return s.traces.find(id)
}
