package telemetry

import (
	"sync"
	"testing"
	"time"

	"lcrq/internal/core"
	"lcrq/internal/instrument"
)

func TestCounterAggregation(t *testing.T) {
	s := New(0, 0)
	var c1, c2 instrument.Counters
	r1 := s.Register(&c1)
	r2 := s.Register(&c2)

	c1.Enqueues = 10
	c1.FAA = 20
	c2.Dequeues = 5
	r1.Flush()
	r2.Flush()

	snap := s.Snapshot()
	if snap.Handles != 2 {
		t.Fatalf("Handles = %d, want 2", snap.Handles)
	}
	if snap.Counters.Enqueues != 10 || snap.Counters.Dequeues != 5 || snap.Counters.FAA != 20 {
		t.Fatalf("aggregate = %+v", snap.Counters)
	}

	// Unregistering folds the final values into the retired sum.
	c1.Enqueues = 17
	s.Unregister(r1)
	snap = s.Snapshot()
	if snap.Handles != 1 {
		t.Fatalf("Handles after unregister = %d, want 1", snap.Handles)
	}
	if snap.Counters.Enqueues != 17 {
		t.Fatalf("retired enqueues = %d, want 17", snap.Counters.Enqueues)
	}
}

func TestTickPublishesAtInterval(t *testing.T) {
	s := New(0, 0)
	var c instrument.Counters
	r := s.Register(&c)
	for i := 0; i < publishInterval-1; i++ {
		c.Enqueues++
		r.Tick()
	}
	if got := s.Snapshot().Counters.Enqueues; got != 0 {
		t.Fatalf("published before interval: %d", got)
	}
	c.Enqueues++
	r.Tick()
	if got := s.Snapshot().Counters.Enqueues; got != publishInterval {
		t.Fatalf("after interval: %d, want %d", got, publishInterval)
	}
}

func TestArmStride(t *testing.T) {
	s := New(8, 0)
	var c instrument.Counters
	r := s.Register(&c)
	hits := 0
	for i := 0; i < 8000; i++ {
		if r.Arm() {
			hits++
		}
	}
	if hits != 1000 {
		t.Fatalf("Arm hits = %d over 8000 ops at 1-in-8, want 1000", hits)
	}
	// Sampling disabled: never arms.
	off := New(0, 0)
	ro := off.Register(&c)
	for i := 0; i < 100; i++ {
		if ro.Arm() {
			t.Fatal("Arm fired with sampling disabled")
		}
	}
}

func TestLatencyQuantiles(t *testing.T) {
	s := New(1, 0)
	var c instrument.Counters
	r := s.Register(&c)
	for i := 1; i <= 1000; i++ {
		r.Lat(KindEnqueue, time.Duration(i)*time.Microsecond)
	}
	snap := s.Snapshot()
	lat := snap.Latency[KindEnqueue]
	if lat.Samples != 1000 {
		t.Fatalf("Samples = %d", lat.Samples)
	}
	if lat.MaxNs != int64(1000*time.Microsecond) {
		t.Fatalf("MaxNs = %d", lat.MaxNs)
	}
	p50 := time.Duration(lat.P50Ns)
	if p50 < 450*time.Microsecond || p50 > 550*time.Microsecond {
		t.Fatalf("P50 = %v, want ≈500µs", p50)
	}
	if lat.P99Ns < lat.P50Ns || lat.P999Ns < lat.P99Ns {
		t.Fatalf("quantiles not ordered: %+v", lat)
	}
	if snap.Latency[KindDequeue].Samples != 0 {
		t.Fatal("dequeue series polluted")
	}
}

func TestRingEventTallyAndTrace(t *testing.T) {
	s := New(0, 16)
	s.RingEvent(core.EvRingAppend)
	s.RingEvent(core.EvRingAppend)
	s.RingEvent(core.EvRingTantrum)
	snap := s.Snapshot()
	if snap.EventCounts[core.EvRingAppend] != 2 || snap.EventCounts[core.EvRingTantrum] != 1 {
		t.Fatalf("event counts = %v", snap.EventCounts)
	}
	evs := s.Events()
	if len(evs) != 3 {
		t.Fatalf("trace length = %d, want 3", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("trace not in sequence order: %+v", evs)
		}
	}
	if evs[2].Kind != core.EvRingTantrum {
		t.Fatalf("last event = %v, want tantrum", evs[2].Kind)
	}
	if d := time.Since(evs[0].Time); d < 0 || d > time.Minute {
		t.Fatalf("event timestamp implausible: %v ago", d)
	}
}

func TestEventRingWrapKeepsNewest(t *testing.T) {
	s := New(0, 8)
	for i := 0; i < 100; i++ {
		s.RingEvent(core.EvRingClose)
	}
	evs := s.Events()
	if len(evs) != 8 {
		t.Fatalf("trace length after wrap = %d, want 8", len(evs))
	}
	if evs[0].Seq != 92 || evs[7].Seq != 99 {
		t.Fatalf("trace kept wrong window: first=%d last=%d", evs[0].Seq, evs[7].Seq)
	}
}

func TestConcurrentEventsAndSnapshots(t *testing.T) {
	// Hammer the ring and counters from several goroutines while two
	// readers snapshot continuously; the race detector is the oracle.
	s := New(4, 32)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var c instrument.Counters
			r := s.Register(&c)
			defer s.Unregister(r)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Enqueues++
				if r.Arm() {
					r.Lat(KindEnqueue, time.Duration(i%1000))
				}
				r.Tick()
				if i%64 == 0 {
					s.RingEvent(core.RingEvent(i % int(core.NumRingEvents)))
				}
			}
		}(w)
	}
	for rd := 0; rd < 2; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			deadline := time.Now().Add(200 * time.Millisecond)
			for time.Now().Before(deadline) {
				snap := s.Snapshot()
				if snap.Handles > 4 {
					t.Errorf("Handles = %d", snap.Handles)
					return
				}
				evs := s.Events()
				for i := 1; i < len(evs); i++ {
					if evs[i].Seq <= evs[i-1].Seq {
						t.Errorf("trace out of order")
						return
					}
				}
			}
		}()
	}
	time.Sleep(220 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestSnapshotMonotoneAcrossRetirement is the regression test for the
// retire-fold seqlock: a Snapshot racing an Unregister used to read the new
// retired sum together with the stale live list, count the retiring handle
// twice, and make the monotone aggregate appear to run backwards on the
// next scrape. The retireMidFold hook parks the writer exactly inside the
// inconsistent window while a concurrent reader snapshots — deterministic,
// because the organic window is a few instructions wide and essentially
// unhittable on one CPU.
func TestSnapshotMonotoneAcrossRetirement(t *testing.T) {
	s := New(0, 0)
	var c instrument.Counters
	r := s.Register(&c)
	c.Enqueues = 1000
	r.Flush()

	inWindow := make(chan struct{})
	release := make(chan struct{})
	retireMidFold = func() {
		close(inWindow)
		<-release
	}
	defer func() { retireMidFold = nil }()

	got := make(chan uint64, 1)
	go s.Unregister(r)
	<-inWindow
	go func() { got <- s.Snapshot().Counters.Enqueues }()
	// Give the reader time to enter Snapshot while the fold is parked; the
	// seqlock must hold it until the fold completes.
	select {
	case n := <-got:
		t.Fatalf("Snapshot returned mid-fold: enqueues = %d (double-counted)", n)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if n := <-got; n != 1000 {
		t.Fatalf("post-fold enqueues = %d, want 1000", n)
	}
}

// TestSnapshotMonotoneStress is the stochastic companion: handles churn as
// fast as possible while a reader asserts the enqueue total never decreases.
func TestSnapshotMonotoneStress(t *testing.T) {
	s := New(0, 0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var c instrument.Counters
			r := s.Register(&c)
			c.Enqueues = 1000
			r.Flush()
			s.Unregister(r)
		}
	}()

	var last uint64
	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		got := s.Snapshot().Counters.Enqueues
		if got < last {
			close(stop)
			wg.Wait()
			t.Fatalf("aggregate enqueues went backwards: %d -> %d", last, got)
		}
		last = got
	}
	close(stop)
	wg.Wait()
}
