package queues

import (
	"runtime"

	"lcrq/internal/ccqueue"
	"lcrq/internal/core"
	"lcrq/internal/fc"
	"lcrq/internal/instrument"
	"lcrq/internal/kpqueue"
	"lcrq/internal/msqueue"
	"lcrq/internal/simqueue"
)

// Registry names follow the paper's figures: "lcrq", "lcrq-cas", "lcrq+h",
// "cc-queue", "h-queue", "fc-queue", "ms-queue", plus "twolock" (the
// CC-Queue substrate) and "channel" (the Go-native baseline, not in the
// paper).
func init() {
	Register("lcrq", func(cfg Config) Queue {
		return newLCRQAdapter("lcrq", cfg, core.Config{RingOrder: cfg.RingOrder})
	})
	Register("scq", func(cfg Config) Queue {
		return newLCRQAdapter("scq", cfg, core.Config{RingOrder: cfg.RingOrder, Ring: core.RingSCQ})
	})
	Register("lcrq-cas", func(cfg Config) Queue {
		return newLCRQAdapter("lcrq-cas", cfg, core.Config{RingOrder: cfg.RingOrder, CASLoopFAA: true})
	})
	Register("lcrq+h", func(cfg Config) Queue {
		return newLCRQAdapter("lcrq+h", cfg, core.Config{
			RingOrder:      cfg.RingOrder,
			Hierarchical:   true,
			ClusterTimeout: cfg.ClusterTimeout,
		})
	})
	Register("ms-queue", func(cfg Config) Queue { return &msAdapter{q: msqueue.New()} })
	Register("twolock", func(cfg Config) Queue { return &twoLockAdapter{q: msqueue.NewTwoLock()} })
	Register("cc-queue", func(cfg Config) Queue {
		return &ccAdapter{q: ccqueue.New(combinerBound(cfg))}
	})
	Register("h-queue", func(cfg Config) Queue {
		return &hAdapter{q: ccqueue.NewH(cfg.Clusters, combinerBound(cfg))}
	})
	Register("fc-queue", func(cfg Config) Queue { return &fcAdapter{q: fc.New()} })
	Register("channel", func(cfg Config) Queue { return newChanAdapter(cfg) })
	// kp-queue is an extension beyond the paper's evaluated set: the
	// wait-free MS-queue variant its related-work section cites.
	Register("kp-queue", func(cfg Config) Queue {
		return &kpAdapter{q: kpqueue.New(2*cfg.Threads + 8)}
	})
	// sim-queue is the P-Sim based wait-free combining queue the paper
	// discusses in §2/§5. Limited to 64 handles per queue instance by its
	// toggle bitmask, so it cannot run the oversubscribed figures.
	Register("sim-queue", func(cfg Config) Queue {
		return &simAdapter{q: simqueue.New()}
	})
	// lcrq-ebr swaps the paper's hazard pointers for epoch-based
	// reclamation (extension; see internal/epoch).
	Register("lcrq-ebr", func(cfg Config) Queue {
		return newLCRQAdapter("lcrq-ebr", cfg, core.Config{
			RingOrder:   cfg.RingOrder,
			Reclamation: core.ReclaimEpoch,
		})
	})
}

// combinerBound follows Fatourou and Kallimanis: a combiner applies at most
// a small multiple of the thread count before handing off.
func combinerBound(cfg Config) int {
	b := 4 * cfg.Threads
	if b < 64 {
		b = 64
	}
	return b
}

// ---- LCRQ family ----

type lcrqAdapter struct {
	name string
	q    *core.LCRQ
}

func newLCRQAdapter(name string, cfg Config, cc core.Config) Queue {
	// Governed mode (qbench -capacity / -watchdog): the bound and check
	// interval apply uniformly to every LCRQ variant; core normalization
	// derives the ring budget from the capacity.
	cc.Capacity = cfg.Capacity
	cc.Watchdog = cfg.Watchdog
	cc.AdaptiveContention = cfg.Adaptive
	return &lcrqAdapter{name: name, q: core.NewLCRQ(cc)}
}

func (a *lcrqAdapter) Name() string { return a.name }

func (a *lcrqAdapter) NewHandle(worker, cluster int) Handle {
	h := a.q.NewHandle()
	h.Cluster = int64(cluster)
	return &lcrqHandle{q: a.q, h: h}
}

type lcrqHandle struct {
	q *core.LCRQ
	h *core.Handle
}

// Governance reports the budget outcome of a bounded run (Governed).
func (a *lcrqAdapter) Governance() GovernanceStats {
	return GovernanceStats{
		Capacity:         a.q.Capacity(),
		MaxRings:         int64(a.q.MaxRings()),
		Items:            a.q.Items(),
		LiveRings:        a.q.LiveRings(),
		CapacityRejects:  a.q.CapacityRejects(),
		EpochStalls:      a.q.EpochStalls(),
		OrphanRecoveries: a.q.OrphanRecoveries(),
	}
}

func (h *lcrqHandle) Enqueue(v uint64) {
	if h.q.Enqueue(h.h, v) {
		return
	}
	// Bounded governed mode: apply backpressure — the benchmark measures
	// throughput under the budget, it does not drop items.
	for !h.q.Enqueue(h.h, v) {
		if h.q.Closed() {
			return
		}
		runtime.Gosched()
	}
}
func (h *lcrqHandle) Dequeue() (uint64, bool) {
	v, ok := h.q.Dequeue(h.h)
	if !ok {
		return 0, false
	}
	return v, true
}

// EnqueueBatch implements BatchHandle: like Enqueue, it applies
// backpressure instead of dropping — the loop re-offers the unaccepted
// tail until everything lands or the queue closes.
func (h *lcrqHandle) EnqueueBatch(vs []uint64) int {
	total := 0
	for len(vs) > 0 {
		n, st := h.q.EnqueueBatch(h.h, vs)
		total += n
		vs = vs[n:]
		if len(vs) == 0 || st == core.EnqClosed || h.q.Closed() {
			return total
		}
		if n == 0 {
			runtime.Gosched()
		}
	}
	return total
}

func (h *lcrqHandle) DequeueBatch(out []uint64) int {
	return h.q.DequeueBatch(h.h, out)
}

func (h *lcrqHandle) Counters() *instrument.Counters { return &h.h.C }
func (h *lcrqHandle) Release()                       { h.h.Release() }

// ---- MS queue ----

type msAdapter struct{ q *msqueue.Queue }

func (a *msAdapter) Name() string { return "ms-queue" }
func (a *msAdapter) NewHandle(worker, cluster int) Handle {
	return &msHandle{q: a.q, h: &msqueue.Handle{}}
}

type msHandle struct {
	q *msqueue.Queue
	h *msqueue.Handle
}

func (h *msHandle) Enqueue(v uint64)               { h.q.Enqueue(h.h, v) }
func (h *msHandle) Dequeue() (uint64, bool)        { return h.q.Dequeue(h.h) }
func (h *msHandle) Counters() *instrument.Counters { return &h.h.C }
func (h *msHandle) Release()                       {}

// ---- two-lock queue ----

type twoLockAdapter struct{ q *msqueue.TwoLock }

func (a *twoLockAdapter) Name() string { return "twolock" }
func (a *twoLockAdapter) NewHandle(worker, cluster int) Handle {
	return &twoLockHandle{q: a.q, h: &msqueue.Handle{}}
}

type twoLockHandle struct {
	q *msqueue.TwoLock
	h *msqueue.Handle
}

func (h *twoLockHandle) Enqueue(v uint64)               { h.q.Enqueue(h.h, v) }
func (h *twoLockHandle) Dequeue() (uint64, bool)        { return h.q.Dequeue(h.h) }
func (h *twoLockHandle) Counters() *instrument.Counters { return &h.h.C }
func (h *twoLockHandle) Release()                       {}

// ---- CC-Queue ----

type ccAdapter struct{ q *ccqueue.Queue }

func (a *ccAdapter) Name() string { return "cc-queue" }
func (a *ccAdapter) NewHandle(worker, cluster int) Handle {
	return &ccHandle{q: a.q, h: a.q.NewHandle()}
}

type ccHandle struct {
	q *ccqueue.Queue
	h *ccqueue.Handle
}

func (h *ccHandle) Enqueue(v uint64)               { h.q.Enqueue(h.h, v) }
func (h *ccHandle) Dequeue() (uint64, bool)        { return h.q.Dequeue(h.h) }
func (h *ccHandle) Counters() *instrument.Counters { return &h.h.C }
func (h *ccHandle) Release()                       {}

// ---- H-Queue ----

type hAdapter struct{ q *ccqueue.HQueue }

func (a *hAdapter) Name() string { return "h-queue" }
func (a *hAdapter) NewHandle(worker, cluster int) Handle {
	return &hHandle{q: a.q, h: a.q.NewHandle(), cluster: cluster}
}

type hHandle struct {
	q       *ccqueue.HQueue
	h       *ccqueue.Handle
	cluster int
}

func (h *hHandle) Enqueue(v uint64)               { h.q.Enqueue(h.h, h.cluster, v) }
func (h *hHandle) Dequeue() (uint64, bool)        { return h.q.Dequeue(h.h, h.cluster) }
func (h *hHandle) Counters() *instrument.Counters { return &h.h.C }
func (h *hHandle) Release()                       {}

// ---- FC queue ----

type fcAdapter struct{ q *fc.Queue }

func (a *fcAdapter) Name() string { return "fc-queue" }
func (a *fcAdapter) NewHandle(worker, cluster int) Handle {
	return &fcHandle{h: a.q.NewHandle()}
}

type fcHandle struct{ h *fc.Handle }

func (h *fcHandle) Enqueue(v uint64)               { h.h.Enqueue(v) }
func (h *fcHandle) Dequeue() (uint64, bool)        { return h.h.Dequeue() }
func (h *fcHandle) Counters() *instrument.Counters { return &h.h.C }
func (h *fcHandle) Release()                       { h.h.Release() }

// ---- Go channel baseline ----

type chanAdapter struct{ ch chan uint64 }

func newChanAdapter(cfg Config) Queue {
	capacity := cfg.Prefill + 1024*cfg.Threads
	if capacity < 1<<16 {
		capacity = 1 << 16
	}
	return &chanAdapter{ch: make(chan uint64, capacity)}
}

func (a *chanAdapter) Name() string { return "channel" }
func (a *chanAdapter) NewHandle(worker, cluster int) Handle {
	return &chanHandle{ch: a.ch, c: &instrument.Counters{}}
}

type chanHandle struct {
	ch chan uint64
	c  *instrument.Counters
}

func (h *chanHandle) Enqueue(v uint64) {
	h.ch <- v
	h.c.Enqueues++
}

func (h *chanHandle) Dequeue() (uint64, bool) {
	h.c.Dequeues++
	select {
	case v := <-h.ch:
		return v, true
	default:
		h.c.Empty++
		return 0, false
	}
}
func (h *chanHandle) Counters() *instrument.Counters { return h.c }
func (h *chanHandle) Release()                       {}

// ---- Kogan-Petrank wait-free queue (extension) ----

type kpAdapter struct{ q *kpqueue.Queue }

func (a *kpAdapter) Name() string { return "kp-queue" }
func (a *kpAdapter) NewHandle(worker, cluster int) Handle {
	return &kpHandle{q: a.q, h: a.q.NewHandle()}
}

type kpHandle struct {
	q *kpqueue.Queue
	h *kpqueue.Handle
}

func (h *kpHandle) Enqueue(v uint64)               { h.q.Enqueue(h.h, v) }
func (h *kpHandle) Dequeue() (uint64, bool)        { return h.q.Dequeue(h.h) }
func (h *kpHandle) Counters() *instrument.Counters { return &h.h.C }
func (h *kpHandle) Release()                       {}

// ---- SimQueue (extension) ----

type simAdapter struct{ q *simqueue.Queue }

func (a *simAdapter) Name() string { return "sim-queue" }
func (a *simAdapter) NewHandle(worker, cluster int) Handle {
	return &simHandle{q: a.q, h: a.q.NewHandle()}
}

type simHandle struct {
	q *simqueue.Queue
	h *simqueue.Handle
}

func (h *simHandle) Enqueue(v uint64)               { h.q.Enqueue(h.h, v) }
func (h *simHandle) Dequeue() (uint64, bool)        { return h.q.Dequeue(h.h) }
func (h *simHandle) Counters() *instrument.Counters { return &h.h.C }
func (h *simHandle) Release()                       {}
