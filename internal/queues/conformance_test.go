package queues

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"lcrq/internal/linearize"
	"lcrq/internal/xrand"
)

func testConfig() Config {
	return Config{RingOrder: 4, Clusters: 2, Threads: 8}
}

// TestRegistryComplete pins the set of queue names the harness and docs
// rely on.
func TestRegistryComplete(t *testing.T) {
	want := []string{"cc-queue", "channel", "fc-queue", "h-queue", "kp-queue",
		"lcrq", "lcrq+h", "lcrq-cas", "lcrq-ebr", "ms-queue", "scq", "sim-queue",
		"twolock"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
}

func TestUnknownQueue(t *testing.T) {
	if _, err := New("no-such-queue", Config{}); err == nil {
		t.Fatal("expected error for unknown queue")
	}
}

func TestNameRoundTrip(t *testing.T) {
	for _, name := range Names() {
		q, err := New(name, testConfig())
		if err != nil {
			t.Fatal(err)
		}
		if q.Name() != name {
			t.Fatalf("queue %q reports name %q", name, q.Name())
		}
	}
}

// TestSequentialConformance runs the model-equivalence property on every
// registered implementation.
func TestSequentialConformance(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			f := func(ops []byte) bool {
				q, err := New(name, testConfig())
				if err != nil {
					t.Fatal(err)
				}
				h := q.NewHandle(0, 0)
				defer h.Release()
				var model []uint64
				next := uint64(1)
				for _, op := range ops {
					if op%2 == 0 {
						h.Enqueue(next)
						model = append(model, next)
						next++
					} else {
						v, ok := h.Dequeue()
						if len(model) == 0 {
							if ok {
								return false
							}
						} else if !ok || v != model[0] {
							return false
						} else {
							model = model[1:]
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentConformance checks no-loss/no-dup and per-producer FIFO for
// every implementation under concurrent load.
func TestConcurrentConformance(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			q, err := New(name, testConfig())
			if err != nil {
				t.Fatal(err)
			}
			const producers, consumers, per = 4, 4, 2000
			var wg sync.WaitGroup
			var count atomic.Int64
			seen := make([][]uint64, consumers)
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					h := q.NewHandle(p, p%2)
					defer h.Release()
					for i := 0; i < per; i++ {
						h.Enqueue(uint64(p)<<32 | uint64(i) | 1<<62)
					}
				}(p)
			}
			for c := 0; c < consumers; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					h := q.NewHandle(producers+c, c%2)
					defer h.Release()
					for count.Load() < producers*per {
						if v, ok := h.Dequeue(); ok {
							seen[c] = append(seen[c], v)
							count.Add(1)
						}
					}
				}(c)
			}
			wg.Wait()
			all := map[uint64]int{}
			for _, s := range seen {
				for _, v := range s {
					all[v]++
				}
			}
			if len(all) != producers*per {
				t.Fatalf("distinct = %d, want %d", len(all), producers*per)
			}
			for v, n := range all {
				if n != 1 {
					t.Fatalf("value %#x seen %d times", v, n)
				}
			}
			for c, s := range seen {
				last := map[uint64]int64{}
				for _, v := range s {
					p, i := v>>32, int64(v&0xffffffff)
					if prev, ok := last[p]; ok && i <= prev {
						t.Fatalf("consumer %d: producer %d out of order", c, p)
					}
					last[p] = i
				}
			}
		})
	}
}

// TestLinearizability records genuine concurrent histories on every
// implementation and verifies them with the exhaustive checker. Histories
// are kept small so the check is fast; many rounds with different seeds
// cover varied interleavings.
func TestLinearizability(t *testing.T) {
	const (
		threads  = 3
		opsEach  = 8
		rounds   = 30
		maxValue = 1 << 30
	)
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			for round := 0; round < rounds; round++ {
				q, err := New(name, Config{RingOrder: 2, Clusters: 2, Threads: threads})
				if err != nil {
					t.Fatal(err)
				}
				rec := linearize.NewRecorder(threads)
				var wg sync.WaitGroup
				var nextVal atomic.Uint64
				for th := 0; th < threads; th++ {
					wg.Add(1)
					go func(th int) {
						defer wg.Done()
						h := q.NewHandle(th, th%2)
						defer h.Release()
						rng := xrand.New(uint64(round*threads + th + 1))
						for i := 0; i < opsEach; i++ {
							if rng.Uintn(2) == 0 {
								v := nextVal.Add(1) % maxValue
								inv := rec.Now()
								h.Enqueue(v)
								ret := rec.Now()
								rec.Append(th, linearize.Op{
									Kind: linearize.Enq, Value: v,
									Invoke: inv, Return: ret,
								})
							} else {
								inv := rec.Now()
								v, ok := h.Dequeue()
								ret := rec.Now()
								rec.Append(th, linearize.Op{
									Kind: linearize.Deq, Value: v, OK: ok,
									Invoke: inv, Return: ret,
								})
							}
						}
					}(th)
				}
				wg.Wait()
				hist := rec.History()
				if !linearize.Check(hist) {
					for _, op := range hist {
						t.Logf("%s", op)
					}
					t.Fatalf("round %d: history not linearizable", round)
				}
			}
		})
	}
}

// TestHandleChurn acquires and releases handles concurrently while
// operating, exercising reclamation-record reuse (hazard and epoch domains
// recycle released records across threads).
func TestHandleChurn(t *testing.T) {
	for _, name := range []string{"lcrq", "lcrq-ebr", "lcrq+h", "scq", "fc-queue"} {
		t.Run(name, func(t *testing.T) {
			q, err := New(name, testConfig())
			if err != nil {
				t.Fatal(err)
			}
			var produced, consumed atomic.Int64
			var wg sync.WaitGroup
			const workers, rounds, perRound = 6, 30, 40
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						h := q.NewHandle(w, w%2) // fresh handle every round
						for i := 0; i < perRound; i++ {
							h.Enqueue(uint64(w)<<32 | uint64(r*perRound+i))
							produced.Add(1)
							if _, ok := h.Dequeue(); ok {
								consumed.Add(1)
							}
						}
						h.Release()
					}
				}(w)
			}
			wg.Wait()
			// Drain what remains; totals must balance.
			h := q.NewHandle(0, 0)
			defer h.Release()
			for {
				if _, ok := h.Dequeue(); !ok {
					break
				}
				consumed.Add(1)
			}
			if produced.Load() != consumed.Load() {
				t.Fatalf("produced %d, consumed %d", produced.Load(), consumed.Load())
			}
		})
	}
}

// TestCountersPopulated ensures every adapter wires its counters through.
func TestCountersPopulated(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			q, err := New(name, testConfig())
			if err != nil {
				t.Fatal(err)
			}
			h := q.NewHandle(0, 0)
			defer h.Release()
			for i := uint64(1); i <= 10; i++ {
				h.Enqueue(i)
			}
			for i := 0; i < 11; i++ {
				h.Dequeue()
			}
			c := h.Counters()
			if c.Enqueues != 10 {
				t.Fatalf("Enqueues = %d", c.Enqueues)
			}
			if c.Dequeues != 11 {
				t.Fatalf("Dequeues = %d", c.Dequeues)
			}
			if c.Empty != 1 {
				t.Fatalf("Empty = %d", c.Empty)
			}
		})
	}
}
