// Package queues defines the uniform queue interface and the name →
// constructor registry shared by the benchmark harness, the cross-
// implementation test suite, and the cmd/ drivers. Every queue evaluated in
// the paper is registered here under the name used in its figures.
package queues

import (
	"fmt"
	"sort"
	"time"

	"lcrq/internal/instrument"
)

// Config carries the construction parameters a queue implementation may
// care about; implementations ignore fields that do not apply to them.
type Config struct {
	// RingOrder is log2 of the ring size for the LCRQ family (0 = default).
	RingOrder int
	// Clusters is the cluster count for hierarchical variants (H-Queue,
	// LCRQ+H). 0 means 1.
	Clusters int
	// Threads is the expected worker count, used to size combiner batch
	// bounds and the channel baseline's buffer.
	Threads int
	// ClusterTimeout is the LCRQ+H admission timeout (0 = paper default).
	ClusterTimeout time.Duration
	// Prefill hints how many items will be pre-inserted, so bounded
	// implementations (the channel baseline) can size themselves.
	Prefill int
	// Capacity, when positive, bounds the LCRQ family's in-flight items
	// (the governed benchmark mode behind qbench -capacity). Producers
	// block — spinning politely — instead of dropping when the bound binds.
	Capacity int64
	// Watchdog, when positive, is the health-check interval for governed
	// runs (qbench -watchdog); the harness samples GovernanceStats at this
	// cadence and derives verdicts.
	Watchdog time.Duration
	// Adaptive arms the LCRQ family's adaptive contention controller
	// (MIAD backoff plus starvation-threshold widening) in place of the
	// fixed spin constants — the qbench -oversub comparison axis. Other
	// queues ignore it.
	Adaptive bool
}

// GovernanceStats reports the resource-governance outcome of a bounded run.
// Adapters that enforce budgets implement Governed; everything else simply
// does not.
type GovernanceStats struct {
	Capacity         int64  `json:"capacity"`
	MaxRings         int64  `json:"max_rings"`
	Items            int64  `json:"items"`
	LiveRings        int64  `json:"live_rings"`
	CapacityRejects  uint64 `json:"capacity_rejects"`
	EpochStalls      uint64 `json:"epoch_stalls"`
	OrphanRecoveries uint64 `json:"orphan_recoveries"`
	// Checks and Verdict are filled by the harness watchdog sampler, not by
	// the adapter.
	Checks  uint64 `json:"watchdog_checks,omitempty"`
	Verdict string `json:"verdict,omitempty"`
}

// Governed is implemented by queue adapters that enforce resource budgets
// and can report how the budgets fared.
type Governed interface {
	Governance() GovernanceStats
}

// Queue is a constructed queue instance.
type Queue interface {
	// Name returns the registry name the instance was created under.
	Name() string
	// NewHandle returns a per-thread operation context. worker is a dense
	// worker index, cluster the worker's cluster id (both from the
	// placement policy).
	NewHandle(worker, cluster int) Handle
}

// Handle is a single thread's interface to a queue. Implementations are not
// safe for concurrent use of one handle.
type Handle interface {
	Enqueue(v uint64)
	Dequeue() (v uint64, ok bool)
	// Counters exposes the handle's instrumentation for Tables 2 and 3.
	Counters() *instrument.Counters
	// Release frees per-thread resources (hazard records, publication
	// records). The handle must not be used afterwards.
	Release()
}

// BatchHandle is implemented by handles whose queue supports batched
// operations (one index reservation per block of items). EnqueueBatch
// appends every value of vs before returning (blocking politely under a
// bounded budget, like Handle.Enqueue) and returns how many landed — less
// than len(vs) only if the queue closed mid-batch. DequeueBatch fills out
// with up to len(out) values and returns how many it wrote; 0 means the
// queue was observed empty.
type BatchHandle interface {
	EnqueueBatch(vs []uint64) int
	DequeueBatch(out []uint64) int
}

// Factory builds a queue instance from a configuration.
type Factory func(cfg Config) Queue

var registry = map[string]Factory{}

// Register adds a factory under name; it panics on duplicates (registration
// happens from init functions).
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic("queues: duplicate registration of " + name)
	}
	registry[name] = f
}

// New constructs the named queue.
func New(name string, cfg Config) (Queue, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("queues: unknown queue %q (have %v)", name, Names())
	}
	if cfg.Clusters < 1 {
		cfg.Clusters = 1
	}
	if cfg.Threads < 1 {
		cfg.Threads = 1
	}
	return f(cfg), nil
}

// Names returns all registered queue names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
