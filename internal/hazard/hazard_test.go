package hazard

import (
	"sync"
	"sync/atomic"
	"testing"
)

type node struct {
	v    int
	next atomic.Pointer[node]
}

func TestAcquireReuse(t *testing.T) {
	d := New[node](2)
	r1 := d.Acquire()
	r2 := d.Acquire()
	if r1 == r2 {
		t.Fatal("two live acquires returned the same record")
	}
	if d.Stats() != 2 {
		t.Fatalf("records = %d, want 2", d.Stats())
	}
	r1.Release()
	r3 := d.Acquire()
	if r3 != r1 {
		t.Fatal("released record was not reused")
	}
	if d.Stats() != 2 {
		t.Fatalf("records = %d after reuse, want 2", d.Stats())
	}
}

func TestNewPanicsOnBadSlots(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New[node](0)
}

func TestRetireReclaimsUnprotected(t *testing.T) {
	d := New[node](1)
	r := d.Acquire()
	var reclaimed []*node
	n := &node{v: 1}
	r.Retire(n, func(p *node) { reclaimed = append(reclaimed, p) })
	r.scan()
	if len(reclaimed) != 1 || reclaimed[0] != n {
		t.Fatalf("reclaimed = %v", reclaimed)
	}
}

func TestRetireNilIsNoop(t *testing.T) {
	d := New[node](1)
	r := d.Acquire()
	r.Retire(nil, func(*node) { t.Fatal("reclaimed nil") })
	r.scan()
}

func TestProtectBlocksReclamation(t *testing.T) {
	d := New[node](1)
	owner := d.Acquire()
	other := d.Acquire()

	n := &node{v: 7}
	other.Protect(0, n)

	var reclaimed int
	owner.Retire(n, func(*node) { reclaimed++ })
	owner.scan()
	if reclaimed != 0 {
		t.Fatal("protected node was reclaimed")
	}
	other.Clear(0)
	owner.scan()
	if reclaimed != 1 {
		t.Fatalf("reclaimed = %d after clearing, want 1", reclaimed)
	}
}

func TestReleaseScansOutstanding(t *testing.T) {
	d := New[node](1)
	r := d.Acquire()
	var reclaimed int
	r.Retire(&node{}, func(*node) { reclaimed++ })
	r.Release()
	if reclaimed != 1 {
		t.Fatal("Release did not scan retired nodes")
	}
}

func TestProtectPtrValidates(t *testing.T) {
	d := New[node](1)
	r := d.Acquire()
	var src atomic.Pointer[node]
	n := &node{v: 3}
	src.Store(n)
	got := r.ProtectPtr(0, &src)
	if got != n {
		t.Fatalf("ProtectPtr = %v", got)
	}
	if r.hps[0].Load() != n {
		t.Fatal("hazard slot not published")
	}
}

func TestScanThresholdScalesWithRecords(t *testing.T) {
	d := New[node](1)
	r := d.Acquire()
	var reclaimed atomic.Int64
	// Below threshold (8 × 1 record), nothing is scanned automatically.
	for i := 0; i < 7; i++ {
		r.Retire(&node{v: i}, func(*node) { reclaimed.Add(1) })
	}
	if reclaimed.Load() != 0 {
		t.Fatalf("premature reclamation of %d nodes", reclaimed.Load())
	}
	// Crossing the threshold triggers a scan of everything.
	r.Retire(&node{v: 8}, func(*node) { reclaimed.Add(1) })
	if reclaimed.Load() != 8 {
		t.Fatalf("reclaimed = %d at threshold, want 8", reclaimed.Load())
	}
}

// TestConcurrentListTraversal exercises the classic hazard-pointer usage: a
// shared stack whose nodes are popped, retired, and recycled while readers
// traverse. The assertion is that no node is ever reclaimed while a reader
// holds it (checked via a poisoned flag).
func TestConcurrentListTraversal(t *testing.T) {
	d := New[node](1)
	var head atomic.Pointer[node]
	const nodes = 200
	for i := 0; i < nodes; i++ {
		n := &node{v: i}
		n.next.Store(head.Load())
		head.Store(n)
	}
	poisoned := make(map[*node]*atomic.Bool)
	var mu sync.Mutex
	markPoisoned := func(p *node) {
		mu.Lock()
		defer mu.Unlock()
		poisoned[p].Store(true)
	}
	mu.Lock()
	for n := head.Load(); n != nil; n = n.next.Load() {
		var b atomic.Bool
		poisoned[n] = &b
	}
	mu.Unlock()

	var wg sync.WaitGroup
	// Poppers: detach head, retire it.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := d.Acquire()
			defer r.Release()
			for {
				n := r.ProtectPtr(0, &head)
				if n == nil {
					return
				}
				next := n.next.Load()
				if head.CompareAndSwap(n, next) {
					r.Retire(n, markPoisoned)
				}
				r.Clear(0)
			}
		}()
	}
	// Readers: protect head and verify it is not poisoned while held.
	errs := make(chan string, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := d.Acquire()
			defer r.Release()
			for i := 0; i < 5000; i++ {
				n := r.ProtectPtr(0, &head)
				if n == nil {
					return
				}
				mu.Lock()
				p := poisoned[n]
				mu.Unlock()
				if p.Load() {
					select {
					case errs <- "read a reclaimed node":
					default:
					}
					return
				}
				r.Clear(0)
			}
		}()
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}

// TestSetScanThresholdBoundsRetired verifies the configurable reclamation
// batch: with threshold k and n records, a record's retired list never
// holds more than k×n entries (the bound WithReclamationBatch advertises),
// and a sub-1 threshold falls back to the default.
func TestSetScanThresholdBoundsRetired(t *testing.T) {
	d := New[node](1)
	d.SetScanThreshold(2)
	if got := d.ScanThreshold(); got != 2 {
		t.Fatalf("ScanThreshold = %d, want 2", got)
	}
	r1 := d.Acquire()
	r2 := d.Acquire() // second record doubles the scaled bound
	_ = r2
	bound := 2 * int(d.Stats())
	for i := 0; i < 100; i++ {
		r1.Retire(&node{v: i}, nil)
		if got := len(r1.retired); got > bound {
			t.Fatalf("retired list grew to %d, bound %d", got, bound)
		}
	}
	d2 := New[node](1)
	d2.SetScanThreshold(0)
	if got := d2.ScanThreshold(); got != DefaultScanThreshold {
		t.Fatalf("threshold 0 selected %d, want default %d", got, DefaultScanThreshold)
	}
}
