// Package hazard implements hazard pointers (Michael, IEEE TPDS 2004), the
// safe-memory-reclamation scheme the LCRQ paper uses to protect an
// operation's reference to the CRQ it is about to access.
//
// Go's garbage collector already makes use-after-free impossible, so unlike
// in the paper's C implementation hazard pointers are not needed here for
// memory safety. They are needed for something subtler: *reuse*. A retired
// CRQ ring is megabytes of cache-hot memory; recycling it into the next
// appended CRQ instead of letting the GC reclaim it keeps allocation off the
// enqueue path (the paper achieves the same with jemalloc). A ring may only
// be recycled once no thread can still perform transitions on its cells, and
// that is exactly the guarantee hazard pointers provide. Keeping them also
// preserves the paper's per-operation overhead: "writing the CRQ's address
// to a thread-private location, issuing a memory fence, and rereading the
// LCRQ's head/tail" (§5, footnote 6).
//
// The domain is generic over the protected node type. Each participating
// thread owns a Record with a fixed number of hazard slots; records are
// acquired once per thread and can be returned to a free list when the
// thread leaves.
package hazard

import (
	"sync/atomic"

	"lcrq/internal/chaos"
)

// Domain groups the hazard-pointer records that protect one family of nodes
// of type T, together with the retired-node lists awaiting reclamation.
type Domain[T any] struct {
	// head of the global record list; records are never removed, only
	// marked inactive and reused, as in Michael's original scheme.
	records atomic.Pointer[Record[T]]
	slots   int
	// scanThreshold is how many retirements a record batches before
	// scanning. Larger values amortize scan cost; smaller bound memory.
	scanThreshold int
	nrecords      atomic.Int64
}

// DefaultScanThreshold is the per-record retirement batch used when no
// explicit threshold is configured.
const DefaultScanThreshold = 8

// New creates a Domain whose records each hold slots hazard pointers.
func New[T any](slots int) *Domain[T] {
	if slots <= 0 {
		panic("hazard: slots must be positive")
	}
	return &Domain[T]{slots: slots, scanThreshold: DefaultScanThreshold}
}

// SetScanThreshold sets the retirement batch: a record scans once its
// retired list holds threshold × (number of records) entries. Smaller
// values tighten the retired-memory bound — a record's list never exceeds
// threshold × records entries, of which at most slots × records can survive
// a scan — at the cost of more frequent O(H) scans. threshold < 1 selects
// DefaultScanThreshold. Call before the domain is in use; the setting is
// not synchronized.
func (d *Domain[T]) SetScanThreshold(threshold int) {
	if threshold < 1 {
		threshold = DefaultScanThreshold
	}
	d.scanThreshold = threshold
}

// ScanThreshold returns the configured retirement batch.
func (d *Domain[T]) ScanThreshold() int { return d.scanThreshold }

// Record is one thread's set of hazard slots plus its private retired list.
// A Record must not be used concurrently.
type Record[T any] struct {
	next    *Record[T] // immutable after insertion
	domain  *Domain[T]
	active  atomic.Bool
	hps     []atomic.Pointer[T]
	retired []retiredNode[T]
}

type retiredNode[T any] struct {
	p       *T
	reclaim func(*T)
}

// Acquire returns a Record for the calling thread, reusing an inactive one
// when possible.
func (d *Domain[T]) Acquire() *Record[T] {
	for r := d.records.Load(); r != nil; r = r.next {
		if !r.active.Load() && r.active.CompareAndSwap(false, true) {
			return r
		}
	}
	r := &Record[T]{domain: d, hps: make([]atomic.Pointer[T], d.slots)}
	r.active.Store(true)
	for {
		head := d.records.Load()
		r.next = head
		if d.records.CompareAndSwap(head, r) {
			d.nrecords.Add(1)
			return r
		}
	}
}

// Release returns the record to the domain. Outstanding retired nodes are
// handed to the reclaimers immediately if unprotected, or kept for a later
// scan by whoever reuses the record. All hazard slots are cleared.
func (r *Record[T]) Release() {
	for i := range r.hps {
		r.hps[i].Store(nil)
	}
	r.scan()
	r.active.Store(false)
}

// Protect publishes p in hazard slot i and returns p. The caller must then
// validate that p is still reachable (e.g. reread the shared pointer it was
// loaded from) before dereferencing; the usual pattern is the load-publish-
// recheck loop in ProtectPtr.
func (r *Record[T]) Protect(i int, p *T) *T {
	r.hps[i].Store(p) // atomic store doubles as the required fence
	return p
}

// ProtectPtr repeatedly loads *src, publishes the loaded pointer in slot i,
// and rereads *src until the two agree, guaranteeing that the returned node
// was reachable from src after the hazard pointer was visible.
func (r *Record[T]) ProtectPtr(i int, src *atomic.Pointer[T]) *T {
	for {
		p := src.Load()
		// The load→publish window is the classic hazard-pointer race: a
		// retirer that scans here does not yet see our claim on p.
		chaos.Delay(chaos.HazardWindow)
		r.hps[i].Store(p)
		if src.Load() == p {
			return p
		}
	}
}

// Clear empties hazard slot i.
func (r *Record[T]) Clear(i int) { r.hps[i].Store(nil) }

// Retire schedules p for reclamation once no hazard pointer protects it.
// reclaim is invoked at most once, from whichever thread's scan observes the
// node unprotected.
func (r *Record[T]) Retire(p *T, reclaim func(*T)) {
	if p == nil {
		return
	}
	r.retired = append(r.retired, retiredNode[T]{p: p, reclaim: reclaim})
	// Scale the batch with the number of participants so scans stay O(H)
	// amortized, as in the original paper.
	threshold := r.domain.scanThreshold * int(r.domain.nrecords.Load())
	if len(r.retired) >= threshold {
		r.scan()
	}
}

// scan reclaims every retired node not currently protected by any record.
func (r *Record[T]) scan() {
	if len(r.retired) == 0 {
		return
	}
	// Delay between retirement and the protection snapshot, widening the
	// window a concurrent ProtectPtr must win to keep its node alive.
	chaos.Delay(chaos.HazardWindow)
	protected := make(map[*T]struct{}, 16)
	for rec := r.domain.records.Load(); rec != nil; rec = rec.next {
		for i := range rec.hps {
			if p := rec.hps[i].Load(); p != nil {
				protected[p] = struct{}{}
			}
		}
	}
	kept := r.retired[:0]
	for _, rn := range r.retired {
		if _, ok := protected[rn.p]; ok {
			kept = append(kept, rn)
			continue
		}
		if rn.reclaim != nil {
			rn.reclaim(rn.p)
		}
	}
	// Drop reclaimed entries; zero the tail so reclaimed nodes are not
	// retained by the backing array.
	for i := len(kept); i < len(r.retired); i++ {
		r.retired[i] = retiredNode[T]{}
	}
	r.retired = kept
}

// Stats reports the domain's record count, for tests and debugging.
func (d *Domain[T]) Stats() (records int64) { return d.nrecords.Load() }
