// Package simqueue implements SimQueue, Fatourou and Kallimanis' queue
// built on the P-Sim wait-free combining construction (SPAA 2011), which
// the LCRQ paper discusses alongside CC-Queue ("Fatourou and Kallimanis
// present SimQueue, a queue based on a wait-free combining construction").
//
// The construction: each thread announces a request and flips its bit in a
// shared Toggles word (only thread i ever touches bit i, so the flip is a
// plain fetch-and-add of ±2^i — it always succeeds). Any thread can then
// combine: copy the current state record, apply every request whose toggle
// bit differs from the state's applied mask, and install the copy with one
// pointer CAS. Whoever wins, every announced request in the window gets
// applied exactly once; a thread whose bit is applied reads its response
// from the installed record. Go's garbage collector removes the need for
// P-Sim's recycled-record pools and version tags (a fresh record per
// attempt cannot be ABA'd).
//
// Like the original, the queue splits into two Sim instances so enqueues
// and dequeues combine in parallel:
//
//   - the enqueue side's state is {applied, tail, and a pending link}: the
//     combiner chains the announced values privately and publishes
//     (oldTail → chainHead) as data; the actual oldTail.next store is an
//     idempotent CAS(nil, chainHead) that every reader re-executes
//     (fixLink), so it cannot be lost to a preempted winner;
//   - the dequeue side's state is {applied, head, per-thread responses};
//     its combiner fixes the enqueue side's pending link before walking.
//
// The bitmask limits one queue to 64 handles per side. The combining loop
// retries until the caller's bit is applied; P-Sim proves two rounds
// suffice, and the loop structure preserves that bound in practice while
// staying obviously correct.
package simqueue

import (
	"sync"
	"sync/atomic"

	"lcrq/internal/instrument"
	"lcrq/internal/pad"
)

// MaxHandles is the per-queue handle limit imposed by the toggle bitmask.
const MaxHandles = 64

type node struct {
	value uint64
	next  atomic.Pointer[node]
}

// announce is one thread's published request slot. The value is atomic
// because a combiner working on a stale window may read it concurrently
// with the owner announcing its next request; the stale combiner's CAS is
// doomed (the state pointer has moved), so the value it read is never
// used, but the access itself must still be race-free.
//
//lcrq:padded
type announce struct {
	val atomic.Uint64 // enqueue value (enqueue side)
	_   pad.Line
}

// ---- enqueue side ----

type enqState struct {
	applied   uint64
	tail      *node
	oldTail   *node // fixLink target: oldTail.next ← chainHead
	chainHead *node
}

// ---- dequeue side ----

type deqState struct {
	applied uint64
	head    *node // dummy node; head.next is the queue front
	ret     [MaxHandles]uint64
	retOK   [MaxHandles]bool
}

// Queue is a SimQueue. Create with New; obtain at most MaxHandles handles.
//
//lcrq:padded
type Queue struct {
	enqToggles atomic.Uint64
	_          pad.Line
	deqToggles atomic.Uint64
	_          pad.Line
	enqS       atomic.Pointer[enqState]
	_          pad.Line
	deqS       atomic.Pointer[deqState]
	_          pad.Line
	announces  [MaxHandles]announce

	mu     sync.Mutex
	nextID int
}

// New returns an empty SimQueue.
func New() *Queue {
	q := &Queue{}
	dummy := &node{}
	q.enqS.Store(&enqState{tail: dummy})
	q.deqS.Store(&deqState{head: dummy})
	return q
}

// Handle is one thread's identity (a toggle bit) on both sides.
type Handle struct {
	C instrument.Counters
	q *Queue
	// toggle bookkeeping: the value of the thread's bit after its next
	// announce on each side.
	enqToggle uint64
	deqToggle uint64
	bit       uint64
	id        int
}

// NewHandle allocates a handle; it panics beyond MaxHandles.
func (q *Queue) NewHandle() *Handle {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.nextID >= MaxHandles {
		panic("simqueue: more than MaxHandles handles")
	}
	h := &Handle{q: q, id: q.nextID, bit: 1 << uint(q.nextID)}
	q.nextID++
	return h
}

// flip toggles the handle's bit in the given word using fetch-and-add:
// only this thread touches the bit, so adding +bit when the bit is 0 and
// −bit when it is 1 flips it exactly, with no carry into neighbours (this
// is how P-Sim announces with an always-succeeding instruction). It
// returns the bit's new value.
func (h *Handle) flip(w *atomic.Uint64, cur *uint64) uint64 {
	h.C.FAA++
	if *cur == 0 {
		w.Add(h.bit)
		*cur = h.bit
	} else {
		w.Add(-h.bit) // two's complement: subtracts the bit
		*cur = 0
	}
	return *cur
}

// fixLink performs the enqueue side's pending list splice. It is
// idempotent: every reader CASes the same (nil → chainHead) transition.
func fixLink(st *enqState) {
	if st.oldTail != nil && st.chainHead != nil {
		st.oldTail.next.CompareAndSwap(nil, st.chainHead)
	}
}

// Enqueue appends v.
func (q *Queue) Enqueue(h *Handle, v uint64) {
	q.announces[h.id].val.Store(v)
	// Announce: flip our enqueue toggle. We are applied once the installed
	// state's applied mask has our bit equal to the flipped value.
	myBit := h.flip(&q.enqToggles, &h.enqToggle)
	for {
		ls := q.enqS.Load()
		fixLink(ls)
		if ls.applied&h.bit == myBit {
			h.C.Enqueues++
			return // someone applied us
		}
		toggles := q.enqToggles.Load()
		diffs := toggles ^ ls.applied
		if diffs == 0 {
			continue // stale read; retry
		}
		// Build the chain of announced values, in ascending handle order.
		var chainHead, chainTail *node
		for id := 0; id < MaxHandles; id++ {
			if diffs&(1<<uint(id)) == 0 {
				continue
			}
			n := &node{value: q.announces[id].val.Load()}
			if chainHead == nil {
				chainHead = n
			} else {
				chainTail.next.Store(n)
			}
			chainTail = n
		}
		ns := &enqState{
			applied:   toggles,
			tail:      chainTail,
			oldTail:   ls.tail,
			chainHead: chainHead,
		}
		h.C.CAS++
		if q.enqS.CompareAndSwap(ls, ns) {
			fixLink(ns)
			h.C.CombinerRuns++
			h.C.Combined += popcount(diffs)
		} else {
			h.C.CASFail++
		}
	}
}

// Dequeue removes and returns the oldest value; ok is false when the queue
// was empty at the operation's linearization point.
func (q *Queue) Dequeue(h *Handle) (v uint64, ok bool) {
	myBit := h.flip(&q.deqToggles, &h.deqToggle)
	for {
		ls := q.deqS.Load()
		if ls.applied&h.bit == myBit {
			h.C.Dequeues++
			if !ls.retOK[h.id] {
				h.C.Empty++
				return 0, false
			}
			return ls.ret[h.id], true
		}
		toggles := q.deqToggles.Load()
		diffs := toggles ^ ls.applied
		if diffs == 0 {
			continue
		}
		// Make sure the enqueue side's most recent splice is visible
		// before walking, so linked items are reachable.
		fixLink(q.enqS.Load())
		ns := &deqState{applied: toggles, head: ls.head, ret: ls.ret, retOK: ls.retOK}
		for id := 0; id < MaxHandles; id++ {
			if diffs&(1<<uint(id)) == 0 {
				continue
			}
			next := ns.head.next.Load()
			if next == nil {
				ns.retOK[id] = false
				ns.ret[id] = 0
				continue
			}
			ns.ret[id] = next.value
			ns.retOK[id] = true
			ns.head = next
		}
		h.C.CAS++
		if q.deqS.CompareAndSwap(ls, ns) {
			h.C.CombinerRuns++
			h.C.Combined += popcount(diffs)
		} else {
			h.C.CASFail++
		}
	}
}

func popcount(x uint64) uint64 {
	var n uint64
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
