package simqueue

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"lcrq/internal/linearize"
	"lcrq/internal/xrand"
)

func TestSequentialFIFO(t *testing.T) {
	q := New()
	h := q.NewHandle()
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("fresh queue not empty")
	}
	for i := uint64(0); i < 200; i++ {
		q.Enqueue(h, i)
	}
	for i := uint64(0); i < 200; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want %d", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("queue should be empty")
	}
}

func TestModelEquivalence(t *testing.T) {
	f := func(ops []byte) bool {
		q := New()
		h := q.NewHandle()
		var model []uint64
		next := uint64(1)
		for _, op := range ops {
			if op%2 == 0 {
				q.Enqueue(h, next)
				model = append(model, next)
				next++
			} else {
				v, ok := q.Dequeue(h)
				if len(model) == 0 {
					if ok {
						return false
					}
				} else if !ok || v != model[0] {
					return false
				} else {
					model = model[1:]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestHandleLimit(t *testing.T) {
	q := New()
	for i := 0; i < MaxHandles; i++ {
		q.NewHandle()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic past MaxHandles")
		}
	}()
	q.NewHandle()
}

func TestToggleFlipExact(t *testing.T) {
	q := New()
	h := q.NewHandle()
	h2 := q.NewHandle()
	// Interleave flips of two handles; each flip must change exactly its
	// own bit.
	var w atomic.Uint64
	for i := 0; i < 10; i++ {
		before := w.Load()
		h.flip(&w, &h.enqToggle)
		after := w.Load()
		if before^after != h.bit {
			t.Fatalf("flip changed %#x, want %#x", before^after, h.bit)
		}
		before = after
		h2.flip(&w, &h2.enqToggle)
		after = w.Load()
		if before^after != h2.bit {
			t.Fatalf("flip changed %#x, want %#x", before^after, h2.bit)
		}
	}
}

func TestConcurrentNoLossNoDup(t *testing.T) {
	const producers, consumers, per = 4, 4, 2000
	q := New()
	var wg sync.WaitGroup
	var count atomic.Int64
	seen := make([][]uint64, consumers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		h := q.NewHandle()
		go func(p int, h *Handle) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Enqueue(h, uint64(p)<<32|uint64(i))
			}
		}(p, h)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		h := q.NewHandle()
		go func(c int, h *Handle) {
			defer wg.Done()
			for count.Load() < producers*per {
				if v, ok := q.Dequeue(h); ok {
					seen[c] = append(seen[c], v)
					count.Add(1)
				}
			}
		}(c, h)
	}
	wg.Wait()
	all := map[uint64]int{}
	for _, s := range seen {
		for _, v := range s {
			all[v]++
		}
	}
	if len(all) != producers*per {
		t.Fatalf("distinct = %d, want %d", len(all), producers*per)
	}
	for v, n := range all {
		if n != 1 {
			t.Fatalf("value %#x seen %d times", v, n)
		}
	}
	for c, s := range seen {
		last := map[uint64]int64{}
		for _, v := range s {
			p, i := v>>32, int64(v&0xffffffff)
			if prev, ok := last[p]; ok && i <= prev {
				t.Fatalf("consumer %d: producer %d out of order", c, p)
			}
			last[p] = i
		}
	}
}

func TestLinearizable(t *testing.T) {
	const threads, opsEach, rounds = 3, 8, 40
	for round := 0; round < rounds; round++ {
		q := New()
		rec := linearize.NewRecorder(threads)
		var wg sync.WaitGroup
		var nextVal atomic.Uint64
		handles := make([]*Handle, threads)
		for th := range handles {
			handles[th] = q.NewHandle()
		}
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				h := handles[th]
				rng := xrand.New(uint64(round*threads + th + 1))
				for i := 0; i < opsEach; i++ {
					if rng.Uintn(2) == 0 {
						v := nextVal.Add(1)
						inv := rec.Now()
						q.Enqueue(h, v)
						ret := rec.Now()
						rec.Append(th, linearize.Op{
							Kind: linearize.Enq, Value: v, Invoke: inv, Return: ret,
						})
					} else {
						inv := rec.Now()
						v, ok := q.Dequeue(h)
						ret := rec.Now()
						rec.Append(th, linearize.Op{
							Kind: linearize.Deq, Value: v, OK: ok, Invoke: inv, Return: ret,
						})
					}
				}
			}(th)
		}
		wg.Wait()
		hist := rec.History()
		if !linearize.Check(hist) {
			for _, op := range hist {
				t.Logf("%s", op)
			}
			t.Fatalf("round %d: non-linearizable history", round)
		}
	}
}

func TestCombinerBatching(t *testing.T) {
	// With heavy concurrency, at least some operations should be applied in
	// batches (Combined > CombinerRuns would show multi-op windows), and
	// every operation must be counted exactly once overall.
	const workers, per = 8, 2000
	q := New()
	handles := make([]*Handle, workers)
	for i := range handles {
		handles[i] = q.NewHandle()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(h *Handle) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Enqueue(h, 1)
				q.Dequeue(h)
			}
		}(handles[w])
	}
	wg.Wait()
	var combined, runs uint64
	for _, h := range handles {
		combined += h.C.Combined
		runs += h.C.CombinerRuns
	}
	if combined != workers*per*2 {
		t.Fatalf("Combined = %d, want %d (each op applied exactly once)",
			combined, workers*per*2)
	}
	if runs == 0 || runs > combined {
		t.Fatalf("CombinerRuns = %d vs Combined = %d", runs, combined)
	}
}

func TestEmptyAfterDrainInterleaved(t *testing.T) {
	q := New()
	h := q.NewHandle()
	for round := 0; round < 100; round++ {
		for i := uint64(0); i < 7; i++ {
			q.Enqueue(h, uint64(round*100)+i)
		}
		for i := uint64(0); i < 7; i++ {
			if _, ok := q.Dequeue(h); !ok {
				t.Fatalf("round %d: lost item %d", round, i)
			}
		}
		if _, ok := q.Dequeue(h); ok {
			t.Fatalf("round %d: phantom item", round)
		}
	}
}
