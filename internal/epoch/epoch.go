// Package epoch implements epoch-based memory reclamation (EBR, Fraser
// 2004), the classic alternative to the hazard pointers the LCRQ paper
// uses for safe CRQ recycling.
//
// The trade-off against hazard pointers is canonical: EBR makes the read
// path cheaper — pinning is one store and one load per operation, with no
// per-pointer publication or revalidation — but reclamation can be delayed
// arbitrarily by a single stalled pinned thread, whereas hazard pointers
// bound unreclaimed memory by the number of protected pointers. The LCRQ
// core exposes both (plus GC-only) so the difference is measurable on the
// same workload (BenchmarkAblationReclamation).
//
// This is the standard three-epoch scheme: the global epoch advances only
// when every pinned participant has observed the current value, so nodes
// retired in epoch e cannot be reachable once the global epoch reaches e+2,
// making the e-2 retirement generation safe to reclaim.
package epoch

import (
	"sync/atomic"

	"lcrq/internal/chaos"
	"lcrq/internal/pad"
)

const (
	// inactive marks an unpinned participant; active participants store
	// epoch|activeBit.
	activeBit = uint64(1) << 63
	// generations ring: retire buckets per record.
	generations = 3
	// advanceInterval amortizes the cost of epoch-advance attempts.
	advanceInterval = 64
)

// Domain groups participants reclaiming one family of *T nodes.
type Domain[T any] struct {
	global  atomic.Uint64
	_       pad.Line
	records atomic.Pointer[Record[T]]
}

// New returns an empty domain.
func New[T any]() *Domain[T] { return &Domain[T]{} }

// Record is one thread's participation state. A Record must not be used
// concurrently.
type Record[T any] struct {
	next   *Record[T] // immutable after insertion
	domain *Domain[T]
	local  atomic.Uint64 // activeBit|epoch while pinned, 0 while not
	inUse  atomic.Bool

	pins    uint64
	buckets [generations][]retired[T]
}

type retired[T any] struct {
	p       *T
	reclaim func(*T)
}

// Acquire returns a participant record, reusing a released one if possible.
func (d *Domain[T]) Acquire() *Record[T] {
	for r := d.records.Load(); r != nil; r = r.next {
		if !r.inUse.Load() && r.inUse.CompareAndSwap(false, true) {
			return r
		}
	}
	r := &Record[T]{domain: d}
	r.inUse.Store(true)
	for {
		head := d.records.Load()
		r.next = head
		if d.records.CompareAndSwap(head, r) {
			return r
		}
	}
}

// Release unpins and returns the record to the domain. Outstanding retired
// nodes stay in the record's buckets and are reclaimed by whoever reuses it
// (or on its own later epochs).
func (r *Record[T]) Release() {
	r.local.Store(0)
	r.inUse.Store(false)
}

// Pin enters a critical region: nodes reachable now will not be reclaimed
// until Unpin. Pins must not be nested.
func (r *Record[T]) Pin() {
	e := r.domain.global.Load()
	// Stall between reading the global epoch and publishing the pin: the
	// window in which an advancing reclaimer may not count this thread.
	chaos.Delay(chaos.EpochWindow)
	r.local.Store(activeBit | e)
	// The atomic store orders the pin before subsequent loads on x86 TSO
	// and establishes the edge the reclaimer's scan needs.
}

// Unpin leaves the critical region.
func (r *Record[T]) Unpin() {
	r.local.Store(0)
	r.pins++
	if r.pins%advanceInterval == 0 {
		r.tryAdvance()
	}
}

// Retire schedules p for reclamation once two epoch advances have passed.
// Call while pinned.
func (r *Record[T]) Retire(p *T, reclaim func(*T)) {
	if p == nil {
		return
	}
	e := r.domain.global.Load()
	b := e % generations
	r.buckets[b] = append(r.buckets[b], retired[T]{p: p, reclaim: reclaim})
}

// tryAdvance attempts to move the global epoch forward and reclaims this
// record's safe generation.
func (r *Record[T]) tryAdvance() {
	d := r.domain
	chaos.Delay(chaos.EpochWindow)
	e := d.global.Load()
	for rec := d.records.Load(); rec != nil; rec = rec.next {
		l := rec.local.Load()
		if l&activeBit != 0 && l&^activeBit != e {
			return // someone is pinned in an older epoch
		}
	}
	if !d.global.CompareAndSwap(e, e+1) {
		return // someone else advanced; our generation math redoes next time
	}
	// Epoch e+1 begun: generation (e+1)+1 = e+2 ≡ (e-1) mod 3 is the one
	// that will be written next; generation (e+2)%3 holds nodes retired in
	// epoch e-1, which no pinned thread can still see.
	safe := (e + 2) % generations
	for _, rn := range r.buckets[safe] {
		if rn.reclaim != nil {
			rn.reclaim(rn.p)
		}
	}
	r.buckets[safe] = r.buckets[safe][:0]
}

// Flush reclaims everything this record has retired. It is only safe once
// no thread can be pinned (quiescence), e.g. in tests or shutdown paths.
func (r *Record[T]) Flush() {
	for g := range r.buckets {
		for _, rn := range r.buckets[g] {
			if rn.reclaim != nil {
				rn.reclaim(rn.p)
			}
		}
		r.buckets[g] = r.buckets[g][:0]
	}
}

// Stats reports the domain's current epoch, for tests.
func (d *Domain[T]) Stats() (epoch uint64) { return d.global.Load() }
