// Package epoch implements epoch-based memory reclamation (EBR, Fraser
// 2004), the classic alternative to the hazard pointers the LCRQ paper
// uses for safe CRQ recycling.
//
// The trade-off against hazard pointers is canonical: EBR makes the read
// path cheaper — pinning is one store and one load per operation, with no
// per-pointer publication or revalidation — but reclamation can be delayed
// arbitrarily by a single stalled pinned thread, whereas hazard pointers
// bound unreclaimed memory by the number of protected pointers. The LCRQ
// core exposes both (plus GC-only) so the difference is measurable on the
// same workload (BenchmarkAblationReclamation).
//
// This is the standard three-epoch scheme: the global epoch advances only
// when every pinned participant has observed the current value, so nodes
// retired in epoch e cannot be reachable once the global epoch reaches e+2,
// making the e-2 retirement generation safe to reclaim.
package epoch

import (
	"sync/atomic"
	"time"

	"lcrq/internal/chaos"
	"lcrq/internal/pad"
)

const (
	// inactive marks an unpinned participant; active participants store
	// epoch|activeBit.
	activeBit = uint64(1) << 63
	// generations ring: retire buckets per record.
	generations = 3
	// advanceInterval amortizes the cost of epoch-advance attempts.
	advanceInterval = 64
)

// Domain groups participants reclaiming one family of *T nodes.
//
//lcrq:padded
type Domain[T any] struct {
	global  atomic.Uint64
	_       pad.Line
	records atomic.Pointer[Record[T]] //lcrq:cold — mutated only on register/unregister

	// Stall policy (SetStallPolicy): a pinned record lagging the global
	// epoch for stallAge nanoseconds is declared stalled and excluded from
	// blocking advancement. 0 disables detection.
	stallAge int64
	onStall  func()        // stall-declaration callback (telemetry); may be nil
	stalls   atomic.Uint64 //lcrq:cold — gauge, bumped only on stall declaration
}

// New returns an empty domain.
func New[T any]() *Domain[T] { return &Domain[T]{} }

// SetStallPolicy enables stall-resilient advancement: a pinned record that
// has been observed lagging the global epoch for longer than age is declared
// stalled-by-policy and no longer blocks epoch advancement. onStall (may be
// nil) is invoked once per declaration, from the advancing thread.
//
// Exclusion keeps the queue's *reclamation* live but voids the grace-period
// proof for the excluded thread: while any record is stalled, reclaim
// callbacks are skipped and the retired nodes are dropped to the garbage
// collector instead, since the stalled thread may still hold references to
// them. (Under Go's GC that is safe — merely unrecycled; in a manually
// managed setting it would not be.) A stalled record that moves again is
// re-honored automatically.
//
// Call before the domain is in use; the policy is not synchronized.
func (d *Domain[T]) SetStallPolicy(age time.Duration, onStall func()) {
	d.stallAge = age.Nanoseconds()
	d.onStall = onStall
}

// Stalls reports how many stall declarations the domain has made.
func (d *Domain[T]) Stalls() uint64 { return d.stalls.Load() }

// Record is one thread's participation state. A Record must not be used
// concurrently.
type Record[T any] struct {
	next   *Record[T] // immutable after insertion
	domain *Domain[T]
	local  atomic.Uint64 // activeBit|epoch while pinned, 0 while not
	inUse  atomic.Bool

	// Stall bookkeeping, written by advancing peers (never the owner):
	// lastObs is the lagging local value last observed, lagSince when that
	// value was first seen, and stalled whether the record is currently
	// excluded from blocking advancement.
	lastObs  atomic.Uint64
	lagSince atomic.Int64
	stalled  atomic.Bool

	pins    uint64
	buckets [generations][]retired[T]
}

type retired[T any] struct {
	p       *T
	reclaim func(*T)
}

// Acquire returns a participant record, reusing a released one if possible.
func (d *Domain[T]) Acquire() *Record[T] {
	for r := d.records.Load(); r != nil; r = r.next {
		if !r.inUse.Load() && r.inUse.CompareAndSwap(false, true) {
			return r
		}
	}
	r := &Record[T]{domain: d}
	r.inUse.Store(true)
	for {
		head := d.records.Load()
		r.next = head
		if d.records.CompareAndSwap(head, r) {
			return r
		}
	}
}

// Release returns the record to the domain. Outstanding retired nodes stay
// in the record's buckets and are reclaimed by whoever reuses it (or on its
// own later epochs). Releasing a record that is still pinned panics: the
// pin marks an open critical region whose reachable nodes the domain still
// guards, and silently dropping it would hand a protected epoch slot to the
// next Acquire.
func (r *Record[T]) Release() {
	if r.local.Load()&activeBit != 0 {
		panic("epoch: Release of a still-pinned Record; Unpin first")
	}
	r.inUse.Store(false)
}

// Pinned reports whether the record currently holds an open critical
// region. Meaningful only from the owning thread (or once the owner is
// provably gone, as in orphan recovery).
func (r *Record[T]) Pinned() bool { return r.local.Load()&activeBit != 0 }

// Pin enters a critical region: nodes reachable now will not be reclaimed
// until Unpin. Pins must not be nested; a nested Pin panics rather than
// silently moving the open region to a newer epoch (which would void the
// grace-period proof for nodes read before the second Pin).
func (r *Record[T]) Pin() {
	if r.local.Load()&activeBit != 0 {
		panic("epoch: nested Pin on a Record")
	}
	e := r.domain.global.Load()
	// Stall between reading the global epoch and publishing the pin: the
	// window in which an advancing reclaimer may not count this thread.
	chaos.Delay(chaos.EpochWindow)
	r.local.Store(activeBit | e)
	// The atomic store orders the pin before subsequent loads on x86 TSO
	// and establishes the edge the reclaimer's scan needs.
}

// Unpin leaves the critical region. Unpinning a record that is not pinned
// panics — a double Unpin means some critical region's bracket discipline
// is broken, and the next Pin would protect nothing it thinks it does.
func (r *Record[T]) Unpin() {
	if r.local.Load()&activeBit == 0 {
		panic("epoch: Unpin of an unpinned Record")
	}
	r.local.Store(0)
	r.pins++
	if r.pins%advanceInterval == 0 {
		r.tryAdvance()
	}
}

// TryAdvance attempts one epoch advancement (and the reclamation of this
// record's safe generation) outside the amortized Unpin schedule. Watchdogs
// use it to keep reclamation moving when regular operation traffic — whose
// Unpins normally drive advancement — has stopped.
func (r *Record[T]) TryAdvance() { r.tryAdvance() }

// Retire schedules p for reclamation once two epoch advances have passed.
// Call while pinned.
func (r *Record[T]) Retire(p *T, reclaim func(*T)) {
	if p == nil {
		return
	}
	e := r.domain.global.Load()
	b := e % generations
	r.buckets[b] = append(r.buckets[b], retired[T]{p: p, reclaim: reclaim})
}

// tryAdvance attempts to move the global epoch forward and reclaims this
// record's safe generation.
//
// With a stall policy set (SetStallPolicy), a record pinned in an older
// epoch does not block advancement forever: once the same lagging local
// value has been observed for stallAge, the record is declared stalled,
// counted, reported, and excluded. Reclamation performed while any record
// is stalled skips the reclaim callbacks (nodes drop to the garbage
// collector) because the excluded thread may still hold references; see
// SetStallPolicy.
func (r *Record[T]) tryAdvance() {
	d := r.domain
	chaos.Delay(chaos.EpochWindow)
	e := d.global.Load()
	sawStalled := false
	for rec := d.records.Load(); rec != nil; rec = rec.next {
		l := rec.local.Load()
		if l&activeBit == 0 || l&^activeBit == e {
			// Not pinned, or pinned in the current epoch: no obstacle. A
			// previously stalled record that moved again is re-honored.
			if rec.stalled.Load() {
				rec.stalled.Store(false)
			}
			continue
		}
		// Pinned in an older epoch.
		if rec.stalled.Load() {
			if rec.lastObs.Load() == l {
				sawStalled = true
				continue // excluded: stalled-by-policy and unmoved
			}
			rec.stalled.Store(false) // moved since declared; age it afresh
		}
		if d.stallAge <= 0 {
			return // no stall policy: the pinned record blocks advancement
		}
		now := time.Now().UnixNano()
		if rec.lastObs.Load() != l {
			// First observation of this lagging value: start its clock.
			// Concurrent advancers may race these stores; the worst case is
			// a restarted clock, which only delays the declaration.
			rec.lastObs.Store(l)
			rec.lagSince.Store(now)
			return
		}
		if now-rec.lagSince.Load() < d.stallAge {
			return // lagging, but not yet past the policy age
		}
		if rec.stalled.CompareAndSwap(false, true) {
			d.stalls.Add(1)
			chaos.Delay(chaos.StallScan)
			if d.onStall != nil {
				d.onStall()
			}
		}
		sawStalled = true
	}
	if !d.global.CompareAndSwap(e, e+1) {
		return // someone else advanced; our generation math redoes next time
	}
	// Epoch e+1 begun: generation (e+1)+1 = e+2 ≡ (e-1) mod 3 is the one
	// that will be written next; generation (e+2)%3 holds nodes retired in
	// epoch e-1, which no pinned thread can still see.
	safe := (e + 2) % generations
	for _, rn := range r.buckets[safe] {
		if rn.reclaim != nil && !sawStalled {
			rn.reclaim(rn.p)
		}
	}
	r.buckets[safe] = r.buckets[safe][:0]
}

// Flush reclaims everything this record has retired. It is only safe once
// no thread can be pinned (quiescence), e.g. in tests or shutdown paths.
func (r *Record[T]) Flush() {
	for g := range r.buckets {
		for _, rn := range r.buckets[g] {
			if rn.reclaim != nil {
				rn.reclaim(rn.p)
			}
		}
		r.buckets[g] = r.buckets[g][:0]
	}
}

// Stats reports the domain's current epoch, for tests.
func (d *Domain[T]) Stats() (epoch uint64) { return d.global.Load() }
