package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type node struct{ v int }

func TestAcquireReuse(t *testing.T) {
	d := New[node]()
	r1 := d.Acquire()
	r2 := d.Acquire()
	if r1 == r2 {
		t.Fatal("live records aliased")
	}
	r1.Release()
	if r3 := d.Acquire(); r3 != r1 {
		t.Fatal("released record not reused")
	}
}

func TestRetireNilNoop(t *testing.T) {
	d := New[node]()
	r := d.Acquire()
	r.Retire(nil, func(*node) { t.Fatal("reclaimed nil") })
	r.Flush()
}

func TestQuiescentReclamation(t *testing.T) {
	d := New[node]()
	r := d.Acquire()
	var freed []int
	// Retire nodes across several pin/unpin cycles; with a single
	// participant the epoch advances freely, so after enough cycles the
	// early generations must have been reclaimed.
	for i := 0; i < 5*advanceInterval; i++ {
		r.Pin()
		r.Retire(&node{v: i}, func(n *node) { freed = append(freed, n.v) })
		r.Unpin()
	}
	if len(freed) == 0 {
		t.Fatal("nothing reclaimed after many epochs")
	}
	// Everything reclaimed must predate the most recent generations.
	seen := map[int]bool{}
	for _, v := range freed {
		if seen[v] {
			t.Fatalf("node %d reclaimed twice", v)
		}
		seen[v] = true
	}
}

func TestPinnedBlocksAdvance(t *testing.T) {
	d := New[node]()
	pinner := d.Acquire()
	worker := d.Acquire()

	pinner.Pin() // stalls in the current epoch
	e0 := d.Stats()
	var freed atomic.Int64
	worker.Pin()
	worker.Retire(&node{}, func(*node) { freed.Add(1) })
	worker.Unpin()
	for i := 0; i < 10*advanceInterval; i++ {
		worker.Pin()
		worker.Unpin()
	}
	// The stalled pinner holds the epoch back: at most one advance can
	// happen (participants observed e0 before the pin), so the retired
	// node — needing two advances — must not be freed.
	if got := d.Stats(); got > e0+1 {
		t.Fatalf("epoch advanced from %d to %d despite a pinned thread", e0, got)
	}
	if freed.Load() != 0 {
		t.Fatal("node reclaimed while a thread from its epoch is still pinned")
	}
	pinner.Unpin()
	for i := 0; i < 10*advanceInterval; i++ {
		worker.Pin()
		worker.Unpin()
	}
	if freed.Load() != 1 {
		t.Fatalf("node not reclaimed after quiescence (freed=%d)", freed.Load())
	}
}

func TestFlush(t *testing.T) {
	d := New[node]()
	r := d.Acquire()
	count := 0
	r.Pin()
	for i := 0; i < 10; i++ {
		r.Retire(&node{}, func(*node) { count++ })
	}
	r.Unpin()
	r.Flush()
	if count != 10 {
		t.Fatalf("Flush reclaimed %d, want 10", count)
	}
	r.Flush() // idempotent
	if count != 10 {
		t.Fatal("double reclamation")
	}
}

// TestConcurrentSafety: readers traverse a shared pointer while writers
// swap and retire old nodes; a reclaimed-while-visible node would be
// detected via the poisoned flag.
func TestConcurrentSafety(t *testing.T) {
	d := New[node]()
	type guarded struct {
		n        *node
		poisoned *atomic.Bool
	}
	var cur atomic.Pointer[guarded]
	mk := func(v int) *guarded {
		return &guarded{n: &node{v: v}, poisoned: &atomic.Bool{}}
	}
	cur.Store(mk(0))

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 4)

	// Writers: replace and retire.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := d.Acquire()
			defer r.Release()
			for i := 1; i < 3000; i++ {
				r.Pin()
				old := cur.Swap(mk(i))
				r.Retire(old.n, func(*node) { old.poisoned.Store(true) })
				r.Unpin()
			}
		}(w)
	}
	// Readers: pin, read, validate.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := d.Acquire()
			defer r.Release()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Pin()
				gd := cur.Load()
				if gd.poisoned.Load() {
					select {
					case errs <- "read a reclaimed node":
					default:
					}
					r.Unpin()
					return
				}
				_ = gd.n.v
				r.Unpin()
			}
		}()
	}
	// Let writers finish, then stop readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Writers terminate on their own; signal readers once they do... the
	// WaitGroup covers all four, so use a simple scheme: close stop when
	// the writers' share of work is done by polling the swap counter.
	go func() {
		for cur.Load().n.v < 2999 {
		}
		close(stop)
	}()
	<-done
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}

// mustPanic runs f and fails the test unless it panics.
func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

// TestBracketDisciplinePanics pins the guard rails on the pin/unpin/release
// protocol: each violation would silently void the grace-period proof, so
// each must fail fast instead.
func TestBracketDisciplinePanics(t *testing.T) {
	d := New[node]()

	r := d.Acquire()
	r.Pin()
	mustPanic(t, "Release of a pinned record", func() { r.Release() })
	mustPanic(t, "nested Pin", func() { r.Pin() })
	r.Unpin()
	mustPanic(t, "double Unpin", func() { r.Unpin() })

	// After the violations the record is unpinned and releasable; the
	// orderly protocol still works.
	r.Pin()
	r.Unpin()
	r.Release()
	if got := d.Acquire(); got != r {
		t.Fatal("record not reusable after orderly release")
	}
}

// TestStallPolicyUnblocksAdvance is the package-level stall-resilience
// test: with the policy set, a permanently pinned participant stops
// blocking epoch advancement once its lag exceeds the configured age — and
// reclamation performed during the stall must NOT run callbacks (nodes drop
// to the GC), since the stalled thread may still hold them.
func TestStallPolicyUnblocksAdvance(t *testing.T) {
	d := New[node]()
	declared := 0
	d.SetStallPolicy(time.Millisecond, func() { declared++ })

	pinner := d.Acquire()
	worker := d.Acquire()
	pinner.Pin() // parks in the current epoch forever

	e0 := d.Stats()
	var freed atomic.Int64
	worker.Pin()
	worker.Retire(&node{}, func(*node) { freed.Add(1) })
	worker.Unpin()

	deadline := time.Now().Add(5 * time.Second)
	for d.Stats() < e0+3 {
		if time.Now().After(deadline) {
			t.Fatalf("epoch stuck at %d (started %d) despite stall policy", d.Stats(), e0)
		}
		worker.TryAdvance()
		time.Sleep(time.Millisecond)
	}
	if d.Stalls() == 0 || declared == 0 {
		t.Fatalf("no stall declared (Stalls=%d, callback=%d)", d.Stalls(), declared)
	}
	// The epoch moved ≥3 steps, which without the stall would have freed
	// the node; with a stalled participant the callbacks are suppressed.
	if freed.Load() != 0 {
		t.Fatal("reclaim callback ran while a participant was stalled")
	}

	// The stalled participant waking up re-honors it and re-enables
	// callback reclamation for newly retired nodes.
	pinner.Unpin()
	worker.Pin()
	worker.Retire(&node{}, func(*node) { freed.Add(1) })
	worker.Unpin()
	for i := 0; i < 10; i++ {
		worker.TryAdvance()
	}
	if freed.Load() == 0 {
		t.Fatal("reclamation did not resume after the stall cleared")
	}
	pinner.Release()
	worker.Release()
}

// TestStallPolicyIgnoresMovingPinner: a participant that keeps making
// progress — even while often pinned — must never be declared stalled.
func TestStallPolicyIgnoresMovingPinner(t *testing.T) {
	d := New[node]()
	d.SetStallPolicy(time.Millisecond, nil)
	a := d.Acquire()
	b := d.Acquire()
	for i := 0; i < 200; i++ {
		a.Pin()
		b.TryAdvance()
		a.Unpin()
		time.Sleep(50 * time.Microsecond)
	}
	if n := d.Stalls(); n != 0 {
		t.Fatalf("moving participant declared stalled %d times", n)
	}
}
