package counter

import (
	"strings"
	"testing"
)

func TestFAACounts(t *testing.T) {
	r := Run(FAA, 2, 10000, false)
	if r.NsPerInc <= 0 {
		t.Fatalf("NsPerInc = %v", r.NsPerInc)
	}
	if r.CASPerInc != 0 || r.TotalCAS != 0 {
		t.Fatalf("FAA mode should not count CAS: %+v", r)
	}
}

func TestCASLoopCountsAttempts(t *testing.T) {
	r := Run(CASLoop, 4, 5000, false)
	if r.CASPerInc < 1 {
		t.Fatalf("CASPerInc = %v, must be at least 1", r.CASPerInc)
	}
	if r.TotalCAS < uint64(4*5000) {
		t.Fatalf("TotalCAS = %d", r.TotalCAS)
	}
}

func TestSingleThreadCASNeverFails(t *testing.T) {
	r := Run(CASLoop, 1, 20000, false)
	if r.CASPerInc != 1 {
		t.Fatalf("uncontended CASPerInc = %v, want exactly 1", r.CASPerInc)
	}
}

func TestRunPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { Run(FAA, 0, 1, false) },
		func() { Run(FAA, 1, 0, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestModeString(t *testing.T) {
	if FAA.String() != "F&A" || CASLoop.String() != "CAS loop" {
		t.Fatal("mode labels wrong")
	}
	if !strings.Contains(Run(CASLoop, 1, 100, false).String(), "CAS/inc") {
		t.Fatal("result string missing CAS rate")
	}
	if strings.Contains(Run(FAA, 1, 100, false).String(), "CAS/inc") {
		t.Fatal("FAA result string should omit CAS rate")
	}
}

func TestPinnedRun(t *testing.T) {
	// Must work (or degrade gracefully) regardless of platform support.
	r := Run(FAA, 2, 1000, true)
	if r.NsPerInc <= 0 {
		t.Fatal("pinned run produced no timing")
	}
}
