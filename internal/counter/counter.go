// Package counter reproduces Figure 1 of the LCRQ paper: the time it takes
// a thread to increment one contended counter using fetch-and-add versus a
// CAS loop, together with the number of CAS attempts each increment costs.
// This microbenchmark is the paper's motivating observation — F&A always
// succeeds, so contention costs only coherence traffic, while a CAS loop
// additionally wastes every failed attempt.
package counter

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lcrq/internal/affinity"
	"lcrq/internal/pad"
)

// Mode selects the increment implementation.
type Mode int

const (
	// FAA increments with one fetch-and-add instruction.
	FAA Mode = iota
	// CASLoop increments with a load + CAS retry loop.
	CASLoop
)

// String returns the figure's series label.
func (m Mode) String() string {
	if m == FAA {
		return "F&A"
	}
	return "CAS loop"
}

// Result is one point of Figure 1.
type Result struct {
	Mode        Mode
	Threads     int
	Increments  int     // per thread
	NsPerInc    float64 // left axis: time per increment
	CASPerInc   float64 // right axis: CAS attempts per increment (CASLoop only)
	TotalCAS    uint64
	Pinned      bool
	ElapsedNano int64
}

func (r Result) String() string {
	s := fmt.Sprintf("%s: %d threads, %.1f ns/inc", r.Mode, r.Threads, r.NsPerInc)
	if r.Mode == CASLoop {
		s += fmt.Sprintf(", %.2f CAS/inc", r.CASPerInc)
	}
	return s
}

//lcrq:padded
type sharedCounter struct {
	_ pad.Line
	v atomic.Uint64
	_ pad.Line
}

// Run measures one configuration: threads workers each performing incs
// increments of one shared counter.
func Run(mode Mode, threads, incs int, pin bool) Result {
	if threads < 1 || incs < 1 {
		panic("counter: threads and incs must be positive")
	}
	topo := affinity.Detect()
	place := topo.SingleCluster(threads)

	var ctr sharedCounter
	var ready, start atomic.Int64
	casAttempts := make([]uint64, threads)

	var wg sync.WaitGroup
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			if pin && affinity.CanPin() {
				_ = affinity.PinSelf(place.CPUOf[w])
			}
			ready.Add(1)
			for start.Load() == 0 {
			}
			switch mode {
			case FAA:
				for i := 0; i < incs; i++ {
					ctr.v.Add(1)
				}
			case CASLoop:
				var attempts uint64
				for i := 0; i < incs; i++ {
					for {
						old := ctr.v.Load()
						attempts++
						if ctr.v.CompareAndSwap(old, old+1) {
							break
						}
					}
				}
				casAttempts[w] = attempts
			}
		}(w)
	}
	for int(ready.Load()) < threads {
		runtime.Gosched()
	}
	t0 := time.Now()
	start.Store(1)
	wg.Wait()
	elapsed := time.Since(t0)

	total := uint64(threads) * uint64(incs)
	if got := ctr.v.Load(); got != total {
		panic(fmt.Sprintf("counter: lost increments: %d != %d", got, total))
	}
	var cas uint64
	for _, a := range casAttempts {
		cas += a
	}
	r := Result{
		Mode:        mode,
		Threads:     threads,
		Increments:  incs,
		NsPerInc:    float64(elapsed.Nanoseconds()) / float64(incs), // per-thread latency, as in the figure
		Pinned:      pin && affinity.CanPin(),
		ElapsedNano: elapsed.Nanoseconds(),
		TotalCAS:    cas,
	}
	if mode == CASLoop {
		r.CASPerInc = float64(cas) / float64(total)
	}
	return r
}
