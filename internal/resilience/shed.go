// Package resilience houses the reusable wire-level policy pieces of the
// queue-as-a-service front end (cmd/qserve): load shedding driven by the
// queue's watchdog verdicts, drain-rate estimation for Retry-After hints,
// the serving→draining→closed lifecycle, an idempotency cache that makes
// batch retries safe, and the server-side operation counters.
//
// The pieces are deliberately queue-agnostic — they consume the public
// surface (Health verdicts, Metrics counters) rather than internal state —
// so they compose with any backend that exposes the same signals.
package resilience

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultShedVerdicts are the watchdog problem verdicts that indicate new
// enqueues cannot make progress and should be rejected before they touch
// the hot path: a capacity-stalled queue will reject them anyway (after
// burning a reservation attempt), and an append-livelocked queue would only
// deepen the livelock. The remaining verdicts (tantrum-storm, epoch-stall)
// describe internal churn the queue still absorbs, so traffic keeps
// flowing through them.
var DefaultShedVerdicts = []string{"capacity-stall", "append-livelock"}

// ShedConfig configures a Shedder.
type ShedConfig struct {
	// Verdicts lists the health verdicts that open the shedder (reject new
	// work). Empty selects DefaultShedVerdicts.
	Verdicts []string
	// RecoverObservations is how many consecutive healthy observations
	// must arrive before an open shedder closes again — hysteresis on top
	// of the watchdog's own, so a verdict flickering at the detection
	// threshold cannot flap the admission decision. 0 selects 2.
	RecoverObservations int
}

// A Shedder is the admission controller of the front end: it folds a
// stream of health observations into a single shed/admit bit that the
// request path reads with one atomic load. It opens (sheds) the moment an
// observation carries a configured problem verdict and closes only after
// RecoverObservations consecutive healthy ones, so the decision inherits
// the watchdog's detection latency but never its sampling noise.
type Shedder struct {
	verdicts map[string]bool
	recover  int

	shedding atomic.Bool // the request-path bit: true = reject new work

	mu       sync.Mutex
	okStreak int
	verdict  string    // problem verdict that opened the shedder
	since    time.Time // when it opened
	opens    atomic.Uint64
}

// NewShedder returns a closed (admitting) shedder.
func NewShedder(cfg ShedConfig) *Shedder {
	vs := cfg.Verdicts
	if len(vs) == 0 {
		vs = DefaultShedVerdicts
	}
	s := &Shedder{verdicts: make(map[string]bool, len(vs)), recover: cfg.RecoverObservations}
	for _, v := range vs {
		s.verdicts[v] = true
	}
	if s.recover <= 0 {
		s.recover = 2
	}
	return s
}

// Observe feeds one health observation (ok plus the verdict string, as
// reported by Queue.Health). Safe for concurrent use, though a single
// polling goroutine is the intended caller.
func (s *Shedder) Observe(ok bool, verdict string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	problem := !ok && s.verdicts[verdict]
	switch {
	case problem:
		s.okStreak = 0
		if !s.shedding.Load() {
			s.verdict = verdict
			s.since = time.Now()
			s.opens.Add(1)
			s.shedding.Store(true)
		}
	case s.shedding.Load():
		// Any non-shedding observation — healthy or a problem verdict we
		// don't shed on — counts toward recovery.
		s.okStreak++
		if s.okStreak >= s.recover {
			s.okStreak = 0
			s.shedding.Store(false)
		}
	}
}

// Shedding reports whether new work should be rejected. One atomic load;
// this is the request-path call.
func (s *Shedder) Shedding() bool { return s.shedding.Load() }

// State describes the shedder for health endpoints.
type ShedState struct {
	Shedding bool      `json:"shedding"`
	Verdict  string    `json:"verdict,omitempty"` // verdict that opened it (last one, once closed)
	Since    time.Time `json:"since,omitempty"`   // when it opened
	Opens    uint64    `json:"opens"`             // lifetime admit→shed transitions
}

// State returns a snapshot for health/debug endpoints.
func (s *Shedder) State() ShedState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := ShedState{Shedding: s.shedding.Load(), Opens: s.opens.Load()}
	if st.Shedding {
		st.Verdict, st.Since = s.verdict, s.since
	}
	return st
}
