package resilience

import (
	"math"
	"sync"
	"time"
)

// rateWindow is how much observation history the drain-rate estimator
// keeps. Old samples age out so the estimate tracks the *recent* consumer
// rate — a Retry-After hint derived from last minute's throughput is
// misinformation if the consumers just stalled.
const rateWindow = 10 * time.Second

// retryAfterMin / retryAfterMax clamp the Retry-After hint. The floor is
// the HTTP header's resolution (whole seconds — 0 would mean "retry now",
// defeating backpressure); the ceiling keeps a stalled queue from telling
// clients to go away for minutes on an estimate that is, at that point,
// extrapolation from zero signal.
const (
	retryAfterMin = 1 * time.Second
	retryAfterMax = 30 * time.Second
)

// A DrainRate estimates how fast consumers are draining the queue from
// successive observations of the completed-dequeue counter, and turns the
// estimate into Retry-After hints for rejected producers. It is the wire
// analog of the backoff the in-process EnqueueWait performs: instead of
// sleeping inside the server, the client is told when budget is likely to
// exist and spends the wait on its own side of the wire.
type DrainRate struct {
	mu      sync.Mutex
	samples []rateSample // time-ordered, trimmed to rateWindow
}

type rateSample struct {
	at    time.Time
	taken uint64 // cumulative completed dequeues (calls minus empty results)
}

// Observe records one reading of the cumulative completed-dequeue counter.
func (r *DrainRate) Observe(now time.Time, taken uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples = append(r.samples, rateSample{at: now, taken: taken})
	cut := now.Add(-rateWindow)
	i := 0
	for i < len(r.samples)-1 && r.samples[i].at.Before(cut) {
		i++
	}
	r.samples = r.samples[i:]
}

// PerSecond returns the drain rate over the observation window, in items
// per second; 0 while fewer than two samples (or no progress) have been
// seen.
func (r *DrainRate) PerSecond() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) < 2 {
		return 0
	}
	first, last := r.samples[0], r.samples[len(r.samples)-1]
	dt := last.at.Sub(first.at).Seconds()
	if dt <= 0 || last.taken <= first.taken {
		return 0
	}
	return float64(last.taken-first.taken) / dt
}

// RetryAfter estimates how long a rejected producer should wait before
// retrying, given the current queue depth: the time for consumers, at the
// observed rate, to drain an eighth of the backlog — enough headroom that
// the retry is likely to be admitted, without synchronizing every shed
// client onto the same full drain horizon. The result is clamped to
// [1s, 30s] and rounded up to whole seconds (the Retry-After header's
// unit); with no observed drain (stalled or brand-new consumers) it is the
// 1s floor, which keeps shed clients polling rather than parked against a
// queue whose recovery time nobody can estimate.
func (r *DrainRate) RetryAfter(depth int64) time.Duration {
	rate := r.PerSecond()
	if rate <= 0 || depth <= 0 {
		return retryAfterMin
	}
	backlog := float64(depth) / 8
	if backlog < 1 {
		backlog = 1
	}
	secs := math.Ceil(backlog / rate)
	d := time.Duration(secs) * time.Second
	if d < retryAfterMin {
		d = retryAfterMin
	}
	if d > retryAfterMax {
		d = retryAfterMax
	}
	return d
}
