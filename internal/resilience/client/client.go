// Package client is the retrying companion to internal/resilience/server:
// a small library that speaks the qserve wire protocol with the failure
// handling a caller would otherwise reinvent badly.
//
//   - Jittered exponential backoff between attempts, honoring the server's
//     Retry-After hint when one arrives (a 429 carries the drain-rate
//     estimate; guessing shorter just burns the retry budget).
//   - A retry budget: retries spend from a bucket that refills as a
//     fraction of first attempts, so a broken server gets a trickle of
//     probes, not a storm that doubles its load exactly when it is least
//     able to take it.
//   - Idempotency keys on every enqueue batch, generated once per logical
//     batch and resent verbatim on retry — the server's dedup cache turns
//     an ambiguous transport failure ("did my accept land?") into a safe
//     resend.
//   - Pipelined bulk enqueue: EnqueueAll splits a value stream into batches
//     and keeps a bounded number in flight, each batch retried
//     independently under its own key.
//
// The client retries what the taxonomy marks retryable: transport errors,
// 429 (shedding or full), and 504 (deadline). It does not retry 400 (the
// request is wrong), 503 (the server is draining or closed — new work is
// not wanted), or any other status.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lcrq/internal/resilience"
)

// Config configures a Client. BaseURL is required.
type Config struct {
	// BaseURL of the qserve instance, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient to use; http.DefaultClient when nil.
	HTTPClient *http.Client

	// MaxAttempts bounds tries per operation, first attempt included
	// (default 4). The context may end retries earlier; so may the budget.
	MaxAttempts int
	// BackoffMin is the first retry's base delay (default 10ms); each
	// subsequent retry doubles it up to BackoffMax (default 2s). The actual
	// sleep is uniformly jittered in [base/2, base). A server Retry-After
	// overrides the base when it is longer.
	BackoffMin time.Duration
	BackoffMax time.Duration

	// RetryBudgetRatio sets how many retries the budget earns per first
	// attempt (default 0.2: one retry per five requests, steady-state).
	// RetryBudgetBurst is the bucket's cap (default 10), which is also the
	// initial balance so cold starts can retry at all.
	RetryBudgetRatio float64
	RetryBudgetBurst int

	// KeyPrefix namespaces idempotency keys (default: a random per-client
	// token). Two clients must not share a prefix.
	KeyPrefix string
}

// Client speaks the qserve protocol with retries. Safe for concurrent use.
type Client struct {
	cfg    Config
	http   *http.Client
	budget *budget
	keySeq atomic.Uint64

	mu  sync.Mutex
	rng *rand.Rand

	// Retries counts retry attempts actually sent; BudgetDenied counts
	// retries the budget suppressed. Exposed for tests and load drivers.
	Retries      atomic.Uint64
	BudgetDenied atomic.Uint64
}

// New returns a Client for the server at cfg.BaseURL.
func New(cfg Config) *Client {
	if cfg.BaseURL == "" {
		panic("client.New: Config.BaseURL is required")
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 10 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.BackoffMax < cfg.BackoffMin {
		cfg.BackoffMax = cfg.BackoffMin
	}
	if cfg.RetryBudgetRatio <= 0 {
		cfg.RetryBudgetRatio = 0.2
	}
	if cfg.RetryBudgetBurst <= 0 {
		cfg.RetryBudgetBurst = 10
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	if cfg.KeyPrefix == "" {
		cfg.KeyPrefix = fmt.Sprintf("c%08x", rng.Uint32())
	}
	return &Client{
		cfg:    cfg,
		http:   cfg.HTTPClient,
		budget: newBudget(cfg.RetryBudgetRatio, cfg.RetryBudgetBurst),
		rng:    rng,
	}
}

// Spans decomposes one client call's wall time for cross-layer trace
// attribution: where an operation's latency went, as seen from the caller.
// Backoff is the client-inflicted part (retry sleeps); Wire is time spent
// inside HTTP exchanges (rejected attempts included); LastWire is the final
// — for successful calls, the accepted — exchange alone, so Wire-LastWire
// is the cost of the attempts the server turned away (shed/full/deadline).
type Spans struct {
	Attempts int           // HTTP exchanges performed
	Backoff  time.Duration // total slept between attempts (the client-backoff span)
	Wire     time.Duration // total time inside HTTP exchanges, all attempts
	LastWire time.Duration // the final exchange alone
	Total    time.Duration // end-to-end call time, Backoff and Wire included
}

// APIError is a non-2xx answer from the server, decoded.
type APIError struct {
	Status     int
	Token      string // wire token: "shedding", "full", "draining", ...
	Detail     string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("qserve: %s (%d): %s", e.Token, e.Status, e.Detail)
}

// Retryable reports whether the protocol permits retrying this answer.
func (e *APIError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusGatewayTimeout
}

// ErrBudgetExhausted is wrapped into the returned error when a retryable
// failure could not be retried because the retry budget was empty.
var ErrBudgetExhausted = errors.New("client: retry budget exhausted")

// Enqueue sends values as one batch, retrying under one idempotency key
// until accepted, a terminal answer, the attempt cap, the budget, or ctx.
// It returns how many leading values the server holds. A partial accept is
// success: the caller resends the tail as a new batch (EnqueueAll does).
func (c *Client) Enqueue(ctx context.Context, values []uint64, timeout time.Duration) (int, error) {
	return c.EnqueueKeyed(ctx, fmt.Sprintf("%s-%d", c.cfg.KeyPrefix, c.keySeq.Add(1)), values, timeout)
}

// EnqueueKeyed is Enqueue under a caller-chosen idempotency key. Use it
// when the outcome must be resolvable across client instances or retry
// loops: any later send of the same key and batch — from this client or
// another — answers from the server's record instead of enqueueing again,
// so a batch whose response was lost to a dead connection can be settled
// definitively by resending it.
func (c *Client) EnqueueKeyed(ctx context.Context, key string, values []uint64, timeout time.Duration) (int, error) {
	req := resilience.EnqueueRequest{
		Values:         values,
		TimeoutMs:      timeout.Milliseconds(),
		IdempotencyKey: key,
	}
	var out resilience.EnqueueResponse
	err := c.do(ctx, "/v1/enqueue", req, &out)
	return out.Accepted, err
}

// Dequeue asks for up to max values, long-polling up to wait. An immediate
// probe (wait 0) of an empty queue returns ([], nil); a long-poll that
// stays empty surfaces the server's 504 as a retryable *APIError, so the
// retry loop (budget permitting) keeps polling. A 503 *APIError with token
// "closed" is terminal: the queue is drained for good.
func (c *Client) Dequeue(ctx context.Context, max int, wait time.Duration) ([]uint64, error) {
	req := resilience.DequeueRequest{Max: max, WaitMs: wait.Milliseconds()}
	var out resilience.DequeueResponse
	if err := c.do(ctx, "/v1/dequeue", req, &out); err != nil {
		return nil, err
	}
	return out.Values, nil
}

// EnqueueTraced is EnqueueKeyed with a trace identity: the server stamps
// traceID onto the first value it accepts, so the dequeue that claims the
// value reports the identity and its measured ring sojourn. Retries resend
// the same key and traceID, keeping a replayed accept one trace. The
// returned Spans decompose this call's wall time (backoff vs wire) for
// end-to-end latency attribution.
func (c *Client) EnqueueTraced(ctx context.Context, key string, values []uint64, timeout time.Duration, traceID uint64) (int, Spans, error) {
	if key == "" {
		key = fmt.Sprintf("%s-%d", c.cfg.KeyPrefix, c.keySeq.Add(1))
	}
	req := resilience.EnqueueRequest{
		Values:         values,
		TimeoutMs:      timeout.Milliseconds(),
		IdempotencyKey: key,
		TraceID:        resilience.FormatTraceID(traceID),
	}
	var out resilience.EnqueueResponse
	sp, err := c.doSpans(ctx, "/v1/enqueue", req, &out)
	return out.Accepted, sp, err
}

// DequeueTraced is Dequeue returning the item traces riding on the
// response (stamped items among the values) and the call's Spans. Most
// responses carry no traces unless the server's queue samples aggressively
// or enqueuers force identities.
func (c *Client) DequeueTraced(ctx context.Context, max int, wait time.Duration) ([]uint64, []resilience.WireTrace, Spans, error) {
	req := resilience.DequeueRequest{Max: max, WaitMs: wait.Milliseconds()}
	var out resilience.DequeueResponse
	sp, err := c.doSpans(ctx, "/v1/dequeue", req, &out)
	if err != nil {
		return nil, nil, sp, err
	}
	return out.Values, out.Traces, sp, nil
}

// EnqueueAll pushes every value, splitting into batches of batchSize and
// keeping up to inflight batches pipelined, each retried independently
// under its own idempotency key. It stops at the first terminal failure
// and returns how many values were confirmed accepted.
func (c *Client) EnqueueAll(ctx context.Context, values []uint64, batchSize, inflight int) (int, error) {
	if batchSize <= 0 {
		batchSize = 64
	}
	if inflight <= 0 {
		inflight = 4
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		accepted atomic.Uint64
		firstErr atomic.Pointer[error]
		sem      = make(chan struct{}, inflight)
		wg       sync.WaitGroup
	)
	for lo := 0; lo < len(values); lo += batchSize {
		hi := min(lo+batchSize, len(values))
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			// Cancelled — possibly by a worker's terminal failure, whose
			// error (not the derived cancellation) is the answer.
			wg.Wait()
			if ep := firstErr.Load(); ep != nil {
				return int(accepted.Load()), *ep
			}
			return int(accepted.Load()), ctx.Err()
		}
		wg.Add(1)
		go func(batch []uint64) {
			defer wg.Done()
			defer func() { <-sem }()
			// A batch may be partially accepted (budget ran out mid-batch):
			// resend the tail as fresh batches until done or a terminal error.
			for len(batch) > 0 {
				n, err := c.Enqueue(ctx, batch, 5*time.Second)
				accepted.Add(uint64(n))
				batch = batch[n:]
				if err != nil {
					firstErr.CompareAndSwap(nil, &err)
					cancel()
					return
				}
			}
		}(values[lo:hi])
	}
	wg.Wait()
	if ep := firstErr.Load(); ep != nil {
		return int(accepted.Load()), *ep
	}
	return int(accepted.Load()), nil
}

// do runs one request with the retry loop.
func (c *Client) do(ctx context.Context, path string, reqBody, respBody any) error {
	_, err := c.doSpans(ctx, path, reqBody, respBody)
	return err
}

// doSpans is do with span accounting: every sleep and exchange is timed so
// traced callers can attribute the call's latency (see Spans).
func (c *Client) doSpans(ctx context.Context, path string, reqBody, respBody any) (Spans, error) {
	var sp Spans
	start := time.Now()
	payload, err := json.Marshal(reqBody)
	if err != nil {
		return sp, err
	}
	c.budget.deposit()

	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			// A retry must clear the budget first, then wait out the backoff.
			if !c.budget.withdraw() {
				c.BudgetDenied.Add(1)
				sp.Total = time.Since(start)
				return sp, fmt.Errorf("%w after %w", ErrBudgetExhausted, lastErr)
			}
			c.Retries.Add(1)
			t0 := time.Now()
			err := c.sleep(ctx, c.backoff(attempt, lastErr))
			sp.Backoff += time.Since(t0)
			if err != nil {
				sp.Total = time.Since(start)
				return sp, err
			}
		}
		t0 := time.Now()
		lastErr = c.once(ctx, path, payload, respBody)
		sp.LastWire = time.Since(t0)
		sp.Wire += sp.LastWire
		sp.Attempts++
		if lastErr == nil {
			sp.Total = time.Since(start)
			return sp, nil
		}
		var apiErr *APIError
		if errors.As(lastErr, &apiErr) && !apiErr.Retryable() {
			break
		}
		if ctx.Err() != nil {
			break
		}
	}
	sp.Total = time.Since(start)
	return sp, lastErr
}

// once performs a single HTTP exchange.
func (c *Client) once(ctx context.Context, path string, payload []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err // transport failure: retryable (keys make resends safe)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusOK {
		return json.Unmarshal(data, out)
	}
	apiErr := &APIError{Status: resp.StatusCode}
	var e resilience.ErrorResponse
	if json.Unmarshal(data, &e) == nil {
		apiErr.Token, apiErr.Detail = e.Error, e.Detail
		if e.RetryAfterSec > 0 {
			apiErr.RetryAfter = time.Duration(e.RetryAfterSec) * time.Second
		}
	}
	if apiErr.RetryAfter == 0 {
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			apiErr.RetryAfter = time.Duration(s) * time.Second
		}
	}
	return apiErr
}

// backoff computes the sleep before retry number attempt (1-based): the
// exponential base, raised to any server Retry-After, jittered to
// [base/2, base) so synchronized clients desynchronize.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	base := c.cfg.BackoffMin << (attempt - 1)
	if base > c.cfg.BackoffMax || base <= 0 {
		base = c.cfg.BackoffMax
	}
	var apiErr *APIError
	if errors.As(lastErr, &apiErr) && apiErr.RetryAfter > base {
		base = apiErr.RetryAfter
	}
	c.mu.Lock()
	jittered := base/2 + time.Duration(c.rng.Int63n(int64(base/2)+1))
	c.mu.Unlock()
	return jittered
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
