package client

import "sync"

// budget is a retry budget in the token-bucket shape: every first attempt
// deposits ratio tokens, every retry withdraws one whole token, and the
// balance is capped at burst. Steady-state, retries are at most ratio
// times the request rate — a hard ceiling on how much extra load this
// client can add to a server that is already failing. The bucket starts
// full so an isolated failure right after startup can still retry.
//
// (The alternative — unbounded per-request retries — multiplies offered
// load by MaxAttempts exactly when the server is saturated, which is how
// retry storms turn a brownout into an outage.)
type budget struct {
	mu      sync.Mutex
	ratio   float64
	burst   float64
	balance float64
}

func newBudget(ratio float64, burst int) *budget {
	return &budget{ratio: ratio, burst: float64(burst), balance: float64(burst)}
}

// deposit credits one first attempt.
func (b *budget) deposit() {
	b.mu.Lock()
	b.balance += b.ratio
	if b.balance > b.burst {
		b.balance = b.burst
	}
	b.mu.Unlock()
}

// withdraw spends one retry; it reports false (and spends nothing) when
// less than a whole token is available.
func (b *budget) withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.balance < 1 {
		return false
	}
	b.balance--
	return true
}
