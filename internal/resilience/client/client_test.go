package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lcrq"
	"lcrq/internal/resilience"
	"lcrq/internal/resilience/server"
)

// fakeServer scripts qserve answers: each enqueue consumes the next step.
type fakeServer struct {
	mu    sync.Mutex
	steps []fakeStep
	seen  []resilience.EnqueueRequest
}

type fakeStep struct {
	status   int
	body     any
	hangUp   bool // kill the connection instead of answering
	retryHdr string
}

func (f *fakeServer) handler(t *testing.T) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req resilience.EnqueueRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("fake server: bad body: %v", err)
		}
		f.mu.Lock()
		f.seen = append(f.seen, req)
		var step fakeStep
		if len(f.steps) > 0 {
			step, f.steps = f.steps[0], f.steps[1:]
		} else {
			step = fakeStep{status: 200, body: resilience.EnqueueResponse{Accepted: len(req.Values)}}
		}
		f.mu.Unlock()
		if step.hangUp {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("fake server: no hijacker")
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		if step.retryHdr != "" {
			w.Header().Set("Retry-After", step.retryHdr)
		}
		w.WriteHeader(step.status)
		_ = json.NewEncoder(w).Encode(step.body)
	})
}

func newClient(base string, tweak func(*Config)) *Client {
	cfg := Config{
		BaseURL:    base,
		BackoffMin: time.Millisecond,
		BackoffMax: 4 * time.Millisecond,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	return New(cfg)
}

// TestRetryOn429ThenSuccess: a full answer is retried with backoff and the
// SAME idempotency key, then the accept lands.
func TestRetryOn429ThenSuccess(t *testing.T) {
	f := &fakeServer{steps: []fakeStep{
		{status: 429, body: resilience.ErrorResponse{Error: resilience.ErrTokenFull}},
		{status: 429, body: resilience.ErrorResponse{Error: resilience.ErrTokenShedding}},
		{status: 200, body: resilience.EnqueueResponse{Accepted: 2}},
	}}
	ts := httptest.NewServer(f.handler(t))
	defer ts.Close()

	c := newClient(ts.URL, nil)
	n, err := c.Enqueue(context.Background(), []uint64{1, 2}, 0)
	if err != nil || n != 2 {
		t.Fatalf("Enqueue = %d, %v", n, err)
	}
	if got := c.Retries.Load(); got != 2 {
		t.Fatalf("Retries = %d, want 2", got)
	}
	if len(f.seen) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(f.seen))
	}
	key := f.seen[0].IdempotencyKey
	if key == "" {
		t.Fatal("first attempt carried no idempotency key")
	}
	for i, req := range f.seen {
		if req.IdempotencyKey != key {
			t.Fatalf("attempt %d used key %q, want %q — retries must replay the same key", i, req.IdempotencyKey, key)
		}
	}
}

// TestRetryOnTransportFailure: a killed connection is ambiguous — the key
// makes the resend safe, and the client does resend.
func TestRetryOnTransportFailure(t *testing.T) {
	f := &fakeServer{steps: []fakeStep{
		{hangUp: true},
		{status: 200, body: resilience.EnqueueResponse{Accepted: 1}},
	}}
	ts := httptest.NewServer(f.handler(t))
	defer ts.Close()

	c := newClient(ts.URL, nil)
	n, err := c.Enqueue(context.Background(), []uint64{7}, 0)
	if err != nil || n != 1 {
		t.Fatalf("Enqueue = %d, %v", n, err)
	}
	if len(f.seen) != 2 || f.seen[0].IdempotencyKey != f.seen[1].IdempotencyKey {
		t.Fatalf("transport retry did not replay the key: %+v", f.seen)
	}
}

// TestNoRetryOnTerminal: 400 and 503 answers are not retried.
func TestNoRetryOnTerminal(t *testing.T) {
	for _, tc := range []struct {
		status int
		token  string
	}{
		{400, resilience.ErrTokenBadRequest},
		{503, resilience.ErrTokenDraining},
	} {
		f := &fakeServer{steps: []fakeStep{{status: tc.status, body: resilience.ErrorResponse{Error: tc.token}}}}
		ts := httptest.NewServer(f.handler(t))
		c := newClient(ts.URL, nil)
		_, err := c.Enqueue(context.Background(), []uint64{1}, 0)
		ts.Close()
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != tc.status || apiErr.Token != tc.token {
			t.Fatalf("status %d: err = %v", tc.status, err)
		}
		if len(f.seen) != 1 {
			t.Fatalf("status %d retried: %d attempts", tc.status, len(f.seen))
		}
		if c.Retries.Load() != 0 {
			t.Fatalf("status %d counted retries", tc.status)
		}
	}
}

// TestRetryAfterHonored: a Retry-After longer than the backoff base delays
// the retry at least that long.
func TestRetryAfterHonored(t *testing.T) {
	f := &fakeServer{steps: []fakeStep{
		{status: 429, body: resilience.ErrorResponse{Error: resilience.ErrTokenFull, RetryAfterSec: 1}},
	}}
	ts := httptest.NewServer(f.handler(t))
	defer ts.Close()

	c := newClient(ts.URL, nil)
	start := time.Now()
	n, err := c.Enqueue(context.Background(), []uint64{1}, 0)
	if err != nil || n != 1 {
		t.Fatalf("Enqueue = %d, %v", n, err)
	}
	// Jitter floor is base/2 = 500ms.
	if elapsed := time.Since(start); elapsed < 400*time.Millisecond {
		t.Fatalf("retry after %v — Retry-After: 1s was not honored", elapsed)
	}
}

// TestRetryBudget: once the bucket is dry, retryable failures return
// ErrBudgetExhausted instead of hammering the server.
func TestRetryBudget(t *testing.T) {
	alwaysFull := func() []fakeStep {
		s := make([]fakeStep, 64)
		for i := range s {
			s[i] = fakeStep{status: 429, body: resilience.ErrorResponse{Error: resilience.ErrTokenFull}}
		}
		return s
	}
	f := &fakeServer{steps: alwaysFull()}
	ts := httptest.NewServer(f.handler(t))
	defer ts.Close()

	c := newClient(ts.URL, func(cfg *Config) {
		cfg.MaxAttempts = 10
		cfg.RetryBudgetRatio = 0.5
		cfg.RetryBudgetBurst = 2
	})
	// First operation: burst of 2 retries + the 0.5 deposit spends down the
	// bucket, then exhaustion.
	_, err := c.Enqueue(context.Background(), []uint64{1}, 0)
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	// The original failure stays diagnosable through the wrap.
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 429 {
		t.Fatalf("budget error lost the cause: %v", err)
	}
	denied := c.BudgetDenied.Load()
	if denied == 0 {
		t.Fatal("BudgetDenied not counted")
	}
	sent := len(f.seen)
	if sent >= 10 {
		t.Fatalf("budget did not bound attempts: %d sent", sent)
	}
	// Two more failing operations deposit 1.0 total — roughly one retry
	// between them, nowhere near MaxAttempts each.
	c.Enqueue(context.Background(), []uint64{2}, 0)
	c.Enqueue(context.Background(), []uint64{3}, 0)
	if extra := len(f.seen) - sent; extra > 4 {
		t.Fatalf("budget leak: %d extra attempts for two exhausted operations", extra)
	}
}

// TestEnqueueAllPipelined: bulk enqueue against a real qserve handler —
// every value lands exactly once despite batching and pipelining.
func TestEnqueueAllPipelined(t *testing.T) {
	q := lcrq.New()
	s := server.New(server.Config{Queue: q, HealthPoll: 5 * time.Millisecond})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	const total = 1000
	values := make([]uint64, total)
	for i := range values {
		values[i] = uint64(i + 1)
	}
	c := newClient(ts.URL, nil)
	n, err := c.EnqueueAll(context.Background(), values, 64, 8)
	if err != nil || n != total {
		t.Fatalf("EnqueueAll = %d, %v", n, err)
	}

	got := make(map[uint64]int)
	for {
		vs, err := c.Dequeue(context.Background(), 128, 0)
		if err != nil {
			t.Fatalf("Dequeue: %v", err)
		}
		if len(vs) == 0 {
			break
		}
		for _, v := range vs {
			got[v]++
		}
	}
	if len(got) != total {
		t.Fatalf("delivered %d distinct values, want %d", len(got), total)
	}
	for v, n := range got {
		if n != 1 {
			t.Fatalf("value %d delivered %d times", v, n)
		}
	}
}

// TestEnqueueAllPartialAcceptResent: a server that accepts only part of
// each batch still ends with everything enqueued — tails are resent.
func TestEnqueueAllPartialAcceptResent(t *testing.T) {
	var mu sync.Mutex
	landed := make(map[uint64]int)
	var calls atomic.Uint64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req resilience.EnqueueRequest
		json.NewDecoder(r.Body).Decode(&req)
		calls.Add(1)
		// Accept at most 3 values per call.
		n := min(3, len(req.Values))
		mu.Lock()
		for _, v := range req.Values[:n] {
			landed[v]++
		}
		mu.Unlock()
		w.WriteHeader(200)
		json.NewEncoder(w).Encode(resilience.EnqueueResponse{Accepted: n})
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	values := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	c := newClient(ts.URL, nil)
	n, err := c.EnqueueAll(context.Background(), values, 10, 1)
	if err != nil || n != 10 {
		t.Fatalf("EnqueueAll = %d, %v", n, err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, v := range values {
		if landed[v] != 1 {
			t.Fatalf("value %d landed %d times", v, landed[v])
		}
	}
}

// TestEnqueueAllStopsOnTerminal: a draining server ends the pipeline with
// its terminal error and an accurate accepted count.
func TestEnqueueAllStopsOnTerminal(t *testing.T) {
	var calls atomic.Uint64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req resilience.EnqueueRequest
		json.NewDecoder(r.Body).Decode(&req)
		if calls.Add(1) == 1 {
			w.WriteHeader(200)
			json.NewEncoder(w).Encode(resilience.EnqueueResponse{Accepted: len(req.Values)})
			return
		}
		w.WriteHeader(503)
		json.NewEncoder(w).Encode(resilience.ErrorResponse{Error: resilience.ErrTokenDraining})
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	values := make([]uint64, 100)
	for i := range values {
		values[i] = uint64(i + 1)
	}
	c := newClient(ts.URL, nil)
	n, err := c.EnqueueAll(context.Background(), values, 10, 1)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 503 {
		t.Fatalf("err = %v, want 503 APIError", err)
	}
	if n != 10 {
		t.Fatalf("accepted = %d, want 10 (one batch before the drain)", n)
	}
}

// TestBackoffJitterBounds: sleeps stay in [base/2, base] and cap at
// BackoffMax even with a huge attempt number.
func TestBackoffJitterBounds(t *testing.T) {
	c := newClient("http://unused", func(cfg *Config) {
		cfg.BackoffMin = 8 * time.Millisecond
		cfg.BackoffMax = 64 * time.Millisecond
	})
	for attempt := 1; attempt < 40; attempt++ {
		base := c.cfg.BackoffMin << (attempt - 1)
		if base > c.cfg.BackoffMax || base <= 0 {
			base = c.cfg.BackoffMax
		}
		for i := 0; i < 50; i++ {
			d := c.backoff(attempt, nil)
			if d < base/2 || d > base {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, base/2, base)
			}
		}
	}
}
