package client

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"lcrq"
	"lcrq/internal/resilience"
	"lcrq/internal/resilience/server"
)

// TestSpansAccounting: a shed first attempt followed by an accept must show
// up in the Spans decomposition — one backoff sleep between two wire
// exchanges, with the parts bounded by the total.
func TestSpansAccounting(t *testing.T) {
	fake := &fakeServer{steps: []fakeStep{
		{status: 429, body: resilience.ErrorResponse{Error: resilience.ErrTokenShedding}},
		{status: 200, body: resilience.EnqueueResponse{Accepted: 2, TraceID: "0x9"}},
	}}
	ts := httptest.NewServer(fake.handler(t))
	defer ts.Close()

	c := New(Config{BaseURL: ts.URL, BackoffMin: 5 * time.Millisecond, BackoffMax: 5 * time.Millisecond})
	n, sp, err := c.EnqueueTraced(context.Background(), "k1", []uint64{1, 2}, time.Second, 9)
	if err != nil || n != 2 {
		t.Fatalf("EnqueueTraced = %d, %v", n, err)
	}
	if sp.Attempts != 2 {
		t.Fatalf("Attempts = %d, want 2", sp.Attempts)
	}
	if sp.Backoff <= 0 {
		t.Fatalf("Backoff = %v, want > 0 (one retry sleep)", sp.Backoff)
	}
	if sp.Wire <= 0 || sp.LastWire <= 0 || sp.LastWire > sp.Wire {
		t.Fatalf("Wire = %v, LastWire = %v", sp.Wire, sp.LastWire)
	}
	if sp.Total < sp.Backoff+sp.Wire {
		t.Fatalf("Total %v < Backoff %v + Wire %v", sp.Total, sp.Backoff, sp.Wire)
	}
	// The retry resent the same trace identity.
	fake.mu.Lock()
	defer fake.mu.Unlock()
	if len(fake.seen) != 2 || fake.seen[0].TraceID != "0x9" || fake.seen[1].TraceID != "0x9" {
		t.Fatalf("trace IDs across attempts: %+v", fake.seen)
	}
}

// TestClientTraceRoundTrip runs the real server underneath: EnqueueTraced's
// identity comes back on DequeueTraced with a sojourn, closing the
// client→wire→queue→wire→client loop in one process.
func TestClientTraceRoundTrip(t *testing.T) {
	q := lcrq.New(lcrq.WithForcedTracingOnly())
	srv := server.New(server.Config{Queue: q})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	c := New(Config{BaseURL: ts.URL})
	const id uint64 = 0xabcdef0123456789
	n, _, err := c.EnqueueTraced(context.Background(), "", []uint64{11, 12}, time.Second, id)
	if err != nil || n != 2 {
		t.Fatalf("EnqueueTraced = %d, %v", n, err)
	}
	vals, traces, sp, err := c.DequeueTraced(context.Background(), 4, 0)
	if err != nil {
		t.Fatalf("DequeueTraced: %v", err)
	}
	if len(vals) != 2 || vals[0] != 11 {
		t.Fatalf("values = %v", vals)
	}
	if len(traces) != 1 {
		t.Fatalf("traces = %+v, want 1", traces)
	}
	got, err := resilience.ParseTraceID(traces[0].ID)
	if err != nil || got != id {
		t.Fatalf("trace ID = %s (%v), want %#x", traces[0].ID, err, id)
	}
	if traces[0].SojournNs < 0 || traces[0].Pos != 0 {
		t.Fatalf("trace = %+v", traces[0])
	}
	if sp.Attempts != 1 || sp.Backoff != 0 {
		t.Fatalf("dequeue spans = %+v, want single clean attempt", sp)
	}
}
