package resilience

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestShedderHysteresis: one problem observation opens the shedder
// immediately (rejecting early is cheap; admitting into a stall is not),
// but closing requires RecoverObservations consecutive clean ones, so a
// verdict flickering at the detection threshold cannot flap admission.
func TestShedderHysteresis(t *testing.T) {
	s := NewShedder(ShedConfig{RecoverObservations: 3})
	if s.Shedding() {
		t.Fatal("new shedder must admit")
	}

	s.Observe(false, "capacity-stall")
	if !s.Shedding() {
		t.Fatal("problem verdict must open the shedder")
	}
	st := s.State()
	if !st.Shedding || st.Verdict != "capacity-stall" || st.Opens != 1 || st.Since.IsZero() {
		t.Fatalf("open state = %+v", st)
	}

	// Two clean observations: still shedding (hysteresis).
	s.Observe(true, "ok")
	s.Observe(true, "ok")
	if !s.Shedding() {
		t.Fatal("shedder closed before RecoverObservations clean ticks")
	}

	// A relapse resets the streak.
	s.Observe(false, "capacity-stall")
	s.Observe(true, "ok")
	s.Observe(true, "ok")
	if !s.Shedding() {
		t.Fatal("relapse did not reset the recovery streak")
	}
	if got := s.State().Opens; got != 1 {
		t.Fatalf("relapse while open counted as a new open: Opens = %d, want 1", got)
	}

	// The third consecutive clean observation closes it.
	s.Observe(true, "ok")
	if s.Shedding() {
		t.Fatal("shedder still open after RecoverObservations clean ticks")
	}

	// Reopening counts.
	s.Observe(false, "append-livelock")
	if !s.Shedding() || s.State().Opens != 2 {
		t.Fatalf("reopen state = %+v", s.State())
	}
}

// TestShedderVerdictFilter: verdicts outside the configured set describe
// churn the queue absorbs — they must not shed, and while the shedder is
// open they count as recovery (the *shedding* condition cleared).
func TestShedderVerdictFilter(t *testing.T) {
	s := NewShedder(ShedConfig{RecoverObservations: 2})
	s.Observe(false, "tantrum-storm")
	if s.Shedding() {
		t.Fatal("tantrum-storm is not a shed verdict")
	}
	s.Observe(false, "capacity-stall")
	s.Observe(false, "epoch-stall")
	s.Observe(false, "epoch-stall")
	if s.Shedding() {
		t.Fatal("non-shed verdicts must count toward recovery")
	}
}

// TestShedderConcurrent: Observe and Shedding race without corruption
// (Shedding is the per-request hot path).
func TestShedderConcurrent(t *testing.T) {
	s := NewShedder(ShedConfig{})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					s.Shedding()
					s.State()
				}
			}
		}()
	}
	for i := 0; i < 10000; i++ {
		s.Observe(i%3 == 0, "capacity-stall")
	}
	close(stop)
	wg.Wait()
}

// TestDrainRate: the estimator must track the recent window, and
// RetryAfter must scale with backlog over rate within its clamps.
func TestDrainRate(t *testing.T) {
	var r DrainRate
	base := time.Now()
	if got := r.PerSecond(); got != 0 {
		t.Fatalf("empty estimator PerSecond = %v", got)
	}
	if got := r.RetryAfter(1000); got != retryAfterMin {
		t.Fatalf("unknown-rate RetryAfter = %v, want floor %v", got, retryAfterMin)
	}

	// 100 items/s over 2 seconds of samples.
	for i := 0; i <= 20; i++ {
		r.Observe(base.Add(time.Duration(i)*100*time.Millisecond), uint64(i*10))
	}
	rate := r.PerSecond()
	if rate < 90 || rate > 110 {
		t.Fatalf("PerSecond = %v, want ≈100", rate)
	}

	// Backlog 800 → drain an eighth (100 items) at 100/s → 1s.
	if got := r.RetryAfter(800); got != 1*time.Second {
		t.Fatalf("RetryAfter(800) = %v, want 1s", got)
	}
	// Backlog 8000 → 1000 items at 100/s → 10s.
	if got := r.RetryAfter(8000); got != 10*time.Second {
		t.Fatalf("RetryAfter(8000) = %v, want 10s", got)
	}
	// Enormous backlog clamps at the ceiling.
	if got := r.RetryAfter(10_000_000); got != retryAfterMax {
		t.Fatalf("RetryAfter(huge) = %v, want ceiling %v", got, retryAfterMax)
	}

	// Stalled consumers: later samples with no progress age the window out
	// and the estimate returns to "unknown".
	for i := 0; i <= 120; i++ {
		r.Observe(base.Add(2*time.Second+time.Duration(i)*100*time.Millisecond), 200)
	}
	if got := r.PerSecond(); got != 0 {
		t.Fatalf("stalled PerSecond = %v, want 0", got)
	}
}

// TestLifecycle: the one-way serving→draining→closed progression, the
// idempotence of its transitions, and the wait channels.
func TestLifecycle(t *testing.T) {
	var l Lifecycle
	if l.State() != Serving || l.State().String() != "serving" {
		t.Fatalf("zero lifecycle = %v", l.State())
	}
	select {
	case <-l.DrainBegun():
		t.Fatal("DrainBegun closed before BeginDrain")
	default:
	}

	if !l.BeginDrain() {
		t.Fatal("first BeginDrain must report the transition")
	}
	if l.BeginDrain() {
		t.Fatal("second BeginDrain must be a no-op")
	}
	if l.State() != Draining {
		t.Fatalf("state after BeginDrain = %v", l.State())
	}
	<-l.DrainBegun() // must not block

	l.MarkClosed()
	l.MarkClosed() // idempotent
	if l.State() != Closed {
		t.Fatalf("state after MarkClosed = %v", l.State())
	}
	<-l.Done()

	// Closing without draining still releases drain waiters.
	var abort Lifecycle
	abort.MarkClosed()
	<-abort.DrainBegun()
	<-abort.Done()
	if abort.BeginDrain() {
		t.Fatal("BeginDrain after close must be a no-op")
	}
}

// TestDedup: replayed keys return the recorded outcome without
// re-execution; eviction is FIFO and bounded; first outcome wins.
func TestDedup(t *testing.T) {
	d := NewDedup(3)
	if _, ok := d.Seen("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	d.Record("a", DedupOutcome{Accepted: 5, Status: 200})
	d.Record("a", DedupOutcome{Accepted: 99, Status: 500}) // ignored: first outcome wins
	if out, ok := d.Seen("a"); !ok || out.Accepted != 5 || out.Status != 200 {
		t.Fatalf("Seen(a) = %+v,%v", out, ok)
	}
	d.Record("b", DedupOutcome{Accepted: 1})
	d.Record("c", DedupOutcome{Accepted: 2})
	d.Record("d", DedupOutcome{Accepted: 3}) // evicts a
	if _, ok := d.Seen("a"); ok {
		t.Fatal("oldest key not evicted")
	}
	for k, want := range map[string]int{"b": 1, "c": 2, "d": 3} {
		if out, ok := d.Seen(k); !ok || out.Accepted != want {
			t.Fatalf("Seen(%s) = %+v,%v, want Accepted %d", k, out, ok, want)
		}
	}
	if d.Replays() != 4 {
		t.Fatalf("Replays = %d, want 4", d.Replays())
	}

	// Disabled and empty-key paths.
	off := NewDedup(0)
	off.Record("x", DedupOutcome{})
	if _, ok := off.Seen("x"); ok {
		t.Fatal("disabled cache reported a hit")
	}
	d.Record("", DedupOutcome{})
	if _, ok := d.Seen(""); ok {
		t.Fatal("empty key must never hit")
	}
}

// TestDedupChurn: sustained churn far past the cap keeps the cache
// bounded and the newest window resident.
func TestDedupChurn(t *testing.T) {
	d := NewDedup(64)
	for i := 0; i < 10_000; i++ {
		d.Record(fmt.Sprint(i), DedupOutcome{Accepted: i})
	}
	if n := len(d.entries); n != 64 {
		t.Fatalf("cache grew to %d entries, cap 64", n)
	}
	for i := 10_000 - 64; i < 10_000; i++ {
		if out, ok := d.Seen(fmt.Sprint(i)); !ok || out.Accepted != i {
			t.Fatalf("recent key %d missing (got %+v,%v)", i, out, ok)
		}
	}
}

// TestCountersExport: the Prometheus rendering and the snapshot must agree
// with each other and carry every field exactly once.
func TestCountersExport(t *testing.T) {
	var c Counters
	c.EnqueueRequests.Add(7)
	c.ShedRejects.Add(3)
	snap := c.Snapshot()
	if snap["lcrq_qserve_enqueue_requests_total"] != 7 || snap["lcrq_qserve_shed_rejects_total"] != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
	var b strings.Builder
	c.WritePrometheus(&b)
	text := b.String()
	for name, v := range snap {
		if !strings.Contains(text, fmt.Sprintf("%s %d\n", name, v)) {
			t.Fatalf("prometheus text missing %s %d:\n%s", name, v, text)
		}
	}
	if got, want := strings.Count(text, "# TYPE"), len(snap); got != want {
		t.Fatalf("prometheus text has %d series, snapshot %d", got, want)
	}
}
