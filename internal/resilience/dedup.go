package resilience

import "sync"

// A Dedup is the idempotency cache that makes enqueue-batch retries safe
// over an unreliable wire. A client whose connection dies after the server
// processed its batch but before the response arrived cannot know whether
// the items landed; without dedup its only choices are "don't retry"
// (possible loss from the client's view) or "retry" (possible duplication).
// With each batch carrying a client-chosen idempotency key, a replay of a
// key the server already executed returns the recorded outcome instead of
// enqueueing again — the retry becomes idempotent, and the client library
// can retry transport failures freely.
//
// The cache is bounded FIFO: it remembers the most recent cap outcomes and
// evicts the oldest beyond that. A replay arriving after its key was
// evicted is executed as a fresh batch, so the cap must comfortably exceed
// the number of batches a client fleet can have in flight across one retry
// horizon (the default in cmd/qserve is 65536).
type Dedup struct {
	mu      sync.Mutex
	cap     int
	entries map[string]DedupOutcome
	order   []string // FIFO eviction ring
	head    int      // next eviction slot in order
	replays uint64
}

// DedupOutcome is the recorded result of an executed batch.
type DedupOutcome struct {
	Accepted int // items accepted
	Status   int // HTTP status the original execution reported
}

// NewDedup returns a cache remembering the outcomes of the most recent
// capacity keys. capacity <= 0 disables dedup (every Seen misses).
func NewDedup(capacity int) *Dedup {
	d := &Dedup{cap: capacity}
	if capacity > 0 {
		d.entries = make(map[string]DedupOutcome, capacity)
		d.order = make([]string, 0, capacity)
	}
	return d
}

// Seen looks up a key, reporting the recorded outcome of its original
// execution if the key was executed recently.
func (d *Dedup) Seen(key string) (DedupOutcome, bool) {
	if d.cap <= 0 || key == "" {
		return DedupOutcome{}, false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out, ok := d.entries[key]
	if ok {
		d.replays++
	}
	return out, ok
}

// Record stores the outcome of an executed key, evicting the oldest entry
// once the cache is full. Recording the same key twice keeps the first
// outcome (the one a replayer must see).
func (d *Dedup) Record(key string, out DedupOutcome) {
	if d.cap <= 0 || key == "" {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.entries[key]; dup {
		return
	}
	if len(d.order) < d.cap {
		d.order = append(d.order, key)
	} else {
		delete(d.entries, d.order[d.head])
		d.order[d.head] = key
		d.head = (d.head + 1) % d.cap
	}
	d.entries[key] = out
}

// Replays returns how many lookups hit a recorded outcome — each one is a
// duplicate execution that dedup prevented.
func (d *Dedup) Replays() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.replays
}
