package resilience

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Counters is the front end's operation ledger: everything the resilience
// stack did to traffic, as monotonic counters. The queue's own Metrics
// describe what happened *inside* the queue; these describe what happened
// at the wire — requests shed before touching the queue, rejects mapped to
// status codes, drains, idempotent replays. Exported alongside the queue's
// series on the same Prometheus scrape (WritePrometheus) and via expvar.
type Counters struct {
	EnqueueRequests atomic.Uint64 // enqueue RPCs received
	DequeueRequests atomic.Uint64 // dequeue RPCs received
	ItemsAccepted   atomic.Uint64 // items admitted into the queue
	ItemsDelivered  atomic.Uint64 // items handed to dequeue RPC responses

	ShedRejects    atomic.Uint64 // enqueues rejected by the admission controller (pre-hot-path)
	FullRejects    atomic.Uint64 // enqueues rejected with 429: queue full for the request deadline
	ClosedRejects  atomic.Uint64 // requests rejected with 503: draining or closed
	DeadlineExpiry atomic.Uint64 // requests that ran out their deadline (504)
	ClientCancels  atomic.Uint64 // requests abandoned by the client mid-wait
	BadRequests    atomic.Uint64 // malformed requests (400)
	IdempotentHits atomic.Uint64 // enqueue batches answered from the dedup cache
	DrainsBegun    atomic.Uint64 // serving→draining transitions (0 or 1 per process)
	DrainedItems   atomic.Uint64 // items delivered after the drain began
	DrainExpiry    atomic.Uint64 // drains that hit their deadline with items still queued
	HealthPolls    atomic.Uint64 // health observations fed to the shedder

	TracedAccepts    atomic.Uint64 // enqueue RPCs that deposited a client-forced trace stamp
	TracedDeliveries atomic.Uint64 // item traces reported on dequeue responses
}

// counterSpec drives both exporters, keeping the Prometheus and snapshot
// views mirror images of the struct (one row per field, names stable).
type counterSpec struct {
	name string
	help string
	v    *atomic.Uint64
}

func (c *Counters) specs() []counterSpec {
	return []counterSpec{
		{"lcrq_qserve_enqueue_requests_total", "Enqueue RPCs received.", &c.EnqueueRequests},
		{"lcrq_qserve_dequeue_requests_total", "Dequeue RPCs received.", &c.DequeueRequests},
		{"lcrq_qserve_items_accepted_total", "Items admitted into the queue.", &c.ItemsAccepted},
		{"lcrq_qserve_items_delivered_total", "Items handed to dequeue responses.", &c.ItemsDelivered},
		{"lcrq_qserve_shed_rejects_total", "Enqueues rejected by the admission controller before the hot path.", &c.ShedRejects},
		{"lcrq_qserve_full_rejects_total", "Enqueues rejected 429: queue full for the whole request deadline.", &c.FullRejects},
		{"lcrq_qserve_closed_rejects_total", "Requests rejected 503: draining or closed.", &c.ClosedRejects},
		{"lcrq_qserve_deadline_expiry_total", "Requests that exhausted their deadline (504).", &c.DeadlineExpiry},
		{"lcrq_qserve_client_cancels_total", "Requests abandoned by the client mid-wait.", &c.ClientCancels},
		{"lcrq_qserve_bad_requests_total", "Malformed requests (400).", &c.BadRequests},
		{"lcrq_qserve_idempotent_hits_total", "Enqueue batches answered from the idempotency cache.", &c.IdempotentHits},
		{"lcrq_qserve_drains_begun_total", "Serving-to-draining transitions.", &c.DrainsBegun},
		{"lcrq_qserve_drained_items_total", "Items delivered after the drain began.", &c.DrainedItems},
		{"lcrq_qserve_drain_expiry_total", "Drains that hit their deadline with items still queued.", &c.DrainExpiry},
		{"lcrq_qserve_health_polls_total", "Health observations fed to the shedder.", &c.HealthPolls},
		{"lcrq_qserve_traced_accepts_total", "Enqueue RPCs that deposited a client-forced trace stamp.", &c.TracedAccepts},
		{"lcrq_qserve_traced_deliveries_total", "Item traces reported on dequeue responses.", &c.TracedDeliveries},
	}
}

// WritePrometheus writes the counters in the Prometheus text exposition
// format, shaped to concatenate after lcrq.WritePrometheus on one scrape.
func (c *Counters) WritePrometheus(w io.Writer) {
	for _, s := range c.specs() {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", s.name, s.help, s.name, s.name, s.v.Load())
	}
}

// Snapshot returns the counters by series name, for JSON debug endpoints
// and expvar publication.
func (c *Counters) Snapshot() map[string]uint64 {
	out := make(map[string]uint64, 16)
	for _, s := range c.specs() {
		out[s.name] = s.v.Load()
	}
	return out
}
