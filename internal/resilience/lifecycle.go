package resilience

import (
	"sync"
	"sync/atomic"
)

// State is the position of a component in the serving→draining→closed
// progression. The transitions are one-way: a component that has begun
// draining never serves new work again, and a closed component never
// reopens — restarts are a supervisor's job, not a state machine edge.
type State int32

const (
	// Serving: admitting new work.
	Serving State = iota
	// Draining: new work is rejected; previously accepted work is being
	// delivered. Entered by BeginDrain (SIGTERM, admin request).
	Draining
	// Closed: all accepted work is delivered (or the drain deadline
	// expired) and the component has shut its listener.
	Closed
)

// String returns the state's wire name, as served by health endpoints.
func (s State) String() string {
	switch s {
	case Serving:
		return "serving"
	case Draining:
		return "draining"
	case Closed:
		return "closed"
	}
	return "unknown"
}

// A Lifecycle tracks the drain state machine and lets request handlers
// read it with one atomic load while shutdown logic waits on transitions.
// The zero value is Serving.
type Lifecycle struct {
	state    atomic.Int32
	draining chan struct{}
	closed   chan struct{}
	initOnce sync.Once
	drainOne sync.Once
	closeOne sync.Once
}

func (l *Lifecycle) init() {
	l.initOnce.Do(func() {
		l.draining = make(chan struct{})
		l.closed = make(chan struct{})
	})
}

// State returns the current state (one atomic load).
func (l *Lifecycle) State() State { return State(l.state.Load()) }

// BeginDrain moves Serving→Draining and reports whether this call made the
// transition (false if a drain had already begun or the lifecycle is
// closed). Idempotent and safe for concurrent use — a SIGTERM and an admin
// drain request racing each other drain once.
func (l *Lifecycle) BeginDrain() bool {
	l.init()
	first := false
	l.drainOne.Do(func() {
		l.state.CompareAndSwap(int32(Serving), int32(Draining))
		close(l.draining)
		first = true
	})
	return first
}

// MarkClosed moves the lifecycle to Closed (from any state; a close without
// a drain is an abort, and the channels still release their waiters).
func (l *Lifecycle) MarkClosed() {
	l.init()
	l.closeOne.Do(func() {
		l.drainOne.Do(func() { close(l.draining) }) // an un-drained close still releases drain waiters
		l.state.Store(int32(Closed))
		close(l.closed)
	})
}

// DrainBegun returns a channel closed once draining (or closing) begins.
func (l *Lifecycle) DrainBegun() <-chan struct{} { l.init(); return l.draining }

// Done returns a channel closed once the lifecycle reaches Closed.
func (l *Lifecycle) Done() <-chan struct{} { l.init(); return l.closed }
