//go:build chaos

package server

import (
	"testing"

	"lcrq/internal/chaos"
)

// TestDrainExactlyOnceChaos runs the mid-drain exactly-once scenario with
// every fault-injection point armed: scheduler preemptions and delays land
// inside ring closes, tantrums, appends, and reclamation while producers
// and consumers are mid-RPC and the drain races them. The accounting
// contract is the same as the untagged test — every accepted item is
// delivered exactly once before the queue reports drained, and nothing is
// accepted after — the faults only widen the interleavings it must hold
// under.
func TestDrainExactlyOnceChaos(t *testing.T) {
	chaos.EnableAll(0.02)
	defer chaos.Reset()
	runDrainScenario(t)
}
