package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"lcrq"
	"lcrq/internal/resilience"
)

// TestWireTraceRoundTrip drives one traced request through the wire: the
// enqueue carries a trace_id, the server stamps it into the queue, and the
// dequeue response reports the identity with a measured sojourn — the
// queue-residency span of the cross-layer decomposition.
func TestWireTraceRoundTrip(t *testing.T) {
	ts, s, _ := newTestServer(t, Config{}, lcrq.WithForcedTracingOnly())

	before := time.Now().UnixNano()
	req := resilience.EnqueueRequest{Values: []uint64{7, 8, 9}, TraceID: "0xbeef"}
	resp, data := postJSON(t, ts.URL+"/v1/enqueue", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("enqueue status %d: %s", resp.StatusCode, data)
	}
	var enq resilience.EnqueueResponse
	if err := json.Unmarshal(data, &enq); err != nil {
		t.Fatal(err)
	}
	if enq.Accepted != 3 || enq.TraceID != "0xbeef" {
		t.Fatalf("enqueue response = %+v, want 3 accepted with trace echo", enq)
	}

	resp, data = postJSON(t, ts.URL+"/v1/dequeue", resilience.DequeueRequest{Max: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dequeue status %d: %s", resp.StatusCode, data)
	}
	var deq resilience.DequeueResponse
	if err := json.Unmarshal(data, &deq); err != nil {
		t.Fatal(err)
	}
	if len(deq.Values) != 3 {
		t.Fatalf("values = %v", deq.Values)
	}
	if len(deq.Traces) != 1 {
		t.Fatalf("traces = %+v, want exactly one (first value of the batch)", deq.Traces)
	}
	tr := deq.Traces[0]
	if tr.ID != "0xbeef" || tr.Pos != 0 {
		t.Fatalf("trace = %+v, want ID 0xbeef at Pos 0", tr)
	}
	if tr.SojournNs < 0 {
		t.Fatalf("negative sojourn %d", tr.SojournNs)
	}
	if tr.EnqueuedAtUnixNs < before || tr.EnqueuedAtUnixNs > time.Now().UnixNano() {
		t.Fatalf("enqueue stamp %d outside the test window", tr.EnqueuedAtUnixNs)
	}
	if s.Counters().TracedAccepts.Load() != 1 || s.Counters().TracedDeliveries.Load() != 1 {
		t.Fatalf("trace counters: accepts=%d deliveries=%d",
			s.Counters().TracedAccepts.Load(), s.Counters().TracedDeliveries.Load())
	}

	// The completed trace is retained server-side for /traces lookup.
	r, err := http.Get(ts.URL + "/traces?id=0xbeef")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || !strings.Contains(string(body), "0xbeef") {
		t.Fatalf("/traces lookup: %d %s", r.StatusCode, body)
	}
}

// TestWireTraceLongPoll covers the DequeueWait path: a trace stamped after
// the long-poll began must come back on the waited response.
func TestWireTraceLongPoll(t *testing.T) {
	ts, _, _ := newTestServer(t, Config{}, lcrq.WithForcedTracingOnly())

	done := make(chan resilience.DequeueResponse, 1)
	go func() {
		_, data := postJSON(t, ts.URL+"/v1/dequeue", resilience.DequeueRequest{Max: 4, WaitMs: 5000})
		var out resilience.DequeueResponse
		_ = json.Unmarshal(data, &out)
		done <- out
	}()
	time.Sleep(20 * time.Millisecond)
	postJSON(t, ts.URL+"/v1/enqueue", resilience.EnqueueRequest{Values: []uint64{5}, TraceID: "77"})
	out := <-done
	if len(out.Values) != 1 || out.Values[0] != 5 {
		t.Fatalf("values = %v", out.Values)
	}
	if len(out.Traces) != 1 || out.Traces[0].ID != "0x4d" || out.Traces[0].Pos != 0 {
		t.Fatalf("traces = %+v, want decimal 77 back as 0x4d at Pos 0", out.Traces)
	}
}

// TestBadTraceID: an unparseable trace_id is a 400 before anything touches
// the queue.
func TestBadTraceID(t *testing.T) {
	ts, s, _ := newTestServer(t, Config{}, lcrq.WithForcedTracingOnly())
	resp, data := postJSON(t, ts.URL+"/v1/enqueue",
		resilience.EnqueueRequest{Values: []uint64{1}, TraceID: "not-a-number"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if s.Counters().ItemsAccepted.Load() != 0 {
		t.Fatal("bad trace_id reached the queue")
	}
}

// TestStatszBuildMeta: /statsz embeds the build provenance block and the
// sojourn summary, so dashboards and dump archives know which commit and
// processor budget produced the numbers.
func TestStatszBuildMeta(t *testing.T) {
	ts, _, _ := newTestServer(t, Config{}, lcrq.WithTracing(1))
	postJSON(t, ts.URL+"/v1/enqueue", resilience.EnqueueRequest{Values: []uint64{1}})
	postJSON(t, ts.URL+"/v1/dequeue", resilience.DequeueRequest{Max: 1})

	r, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var stats struct {
		Build struct {
			Commit     string `json:"commit"`
			GoMaxProcs int    `json:"gomaxprocs"`
			Timestamp  string `json:"timestamp"`
		} `json:"build"`
		Sojourn struct {
			Samples uint64 `json:"samples"`
		} `json:"sojourn"`
		TraceSampleN int `json:"trace_sample_n"`
	}
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Build.Commit == "" || stats.Build.GoMaxProcs < 1 || stats.Build.Timestamp == "" {
		t.Fatalf("build meta incomplete: %+v", stats.Build)
	}
	if stats.TraceSampleN != 1 {
		t.Fatalf("trace_sample_n = %d, want 1", stats.TraceSampleN)
	}
	if stats.Sojourn.Samples == 0 {
		t.Fatal("sojourn summary empty despite 1-in-1 tracing")
	}
}

// TestScrapesDuringDrain hammers /metrics and /statsz from concurrent
// scrapers while a graceful drain (the SIGTERM path) runs underneath —
// the observability endpoints must stay consistent and race-free through
// the serving→draining→closed transition. Run with -race.
func TestScrapesDuringDrain(t *testing.T) {
	ts, s, _ := newTestServer(t, Config{DrainDeadline: 5 * time.Second}, lcrq.WithTracing(2), lcrq.WithWatchdog(time.Millisecond))

	// Seed traffic so every exported series is live.
	for i := 0; i < 64; i++ {
		postJSON(t, ts.URL+"/v1/enqueue", resilience.EnqueueRequest{Values: []uint64{uint64(i)}, TraceID: resilience.FormatTraceID(uint64(i + 1))})
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	scrape := func(path string) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			r, err := http.Get(ts.URL + path)
			if err != nil {
				continue // listener may be mid-shutdown; the race detector is the assertion
			}
			_, _ = io.Copy(io.Discard, r.Body)
			r.Body.Close()
		}
	}
	for i := 0; i < 2; i++ {
		wg.Add(2)
		go scrape("/metrics")
		go scrape("/statsz")
	}
	// A consumer drains the queue so the drain can complete.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			postJSON(t, ts.URL+"/v1/dequeue", resilience.DequeueRequest{Max: 32})
		}
	}()

	time.Sleep(10 * time.Millisecond)
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Keep scraping a beat after the drain completes, then stop.
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()

	// The endpoints must still answer after the drain.
	r, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || !strings.Contains(string(body), `"state":"draining"`) &&
		!strings.Contains(string(body), `"state":"closed"`) {
		t.Fatalf("/statsz after drain: %d %s", r.StatusCode, body)
	}
}
