// Package server is the queue-as-a-service HTTP/JSON front end mounted by
// cmd/qserve. It maps the in-process resilience vocabulary onto the wire:
//
//   - per-request deadlines propagate into EnqueueWait / DequeueWait, so a
//     client's timeout bounds the server-side wait exactly;
//   - ErrFull after a whole deadline becomes 429 with a Retry-After derived
//     from the recently observed drain rate; ErrClosed becomes 503;
//     deadline expiry on an empty long-poll becomes 504;
//   - an admission controller (internal/resilience.Shedder) rejects
//     enqueues with 429 *before* they touch the hot path while the queue's
//     watchdog reports capacity-stall or append-livelock, with hysteresis
//     on recovery;
//   - SIGTERM (or POST /admin/drain) begins a graceful drain: enqueues are
//     refused, in-flight accepts settle, the queue closes, and consumers
//     empty it under a drain deadline before the listener shuts.
//
// The handler tree: POST /v1/enqueue, POST /v1/dequeue, GET /healthz,
// GET /statsz, GET /metrics (queue + server series on one scrape), and
// POST /admin/drain. See DESIGN.md §12 for the full protocol.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"lcrq"
	"lcrq/internal/buildmeta"
	"lcrq/internal/resilience"
)

// Config configures a Server. Queue is required; everything else has
// serviceable defaults.
type Config struct {
	// Queue is the backend. The server takes over its lifecycle: Drain
	// closes it.
	Queue *lcrq.Queue

	// MaxBatch caps values per enqueue/dequeue request (default 1024).
	MaxBatch int
	// MaxDeadline caps client-requested waits (default 60s). A client
	// asking for more gets this much.
	MaxDeadline time.Duration
	// DrainDeadline bounds the graceful drain: how long consumers get to
	// empty the queue after enqueues stop (default 30s).
	DrainDeadline time.Duration
	// HealthPoll is how often the shedder and drain-rate estimator sample
	// the queue (default 25ms). Shed reaction time is one poll after the
	// watchdog's verdict flip.
	HealthPoll time.Duration
	// Shed configures the admission controller.
	Shed resilience.ShedConfig
	// DedupCapacity sizes the idempotency cache (default 65536; < 0
	// disables dedup).
	DedupCapacity int
	// Blackbox, when set, is mounted at GET /admin/blackbox — cmd/qserve
	// passes the flight recorder's dump handler so operators can pull the
	// always-on incident record from a live process.
	Blackbox http.Handler
	// Logf, when set, receives one line per lifecycle transition.
	Logf func(format string, args ...any)
}

// Server is one queue's front end. Create with New, mount Handler, and
// call Drain then Close on the way out.
type Server struct {
	cfg   Config
	q     *lcrq.Queue
	shed  *resilience.Shedder
	rate  *resilience.DrainRate
	life  *resilience.Lifecycle
	dedup *resilience.Dedup
	ctrs  resilience.Counters
	build buildmeta.Meta // collected once at startup; /statsz embeds it
	mux   *http.ServeMux

	enqGate   sync.RWMutex // held (R) across each enqueue; (W) by drain to settle them
	lastDepth atomic.Int64 // queue depth as of the last health poll
	drainOnce sync.Once
	drainErr  error
}

// New returns a serving front end and starts its health-poll loop. The
// loop stops when the server reaches Closed (after Drain, or Close).
func New(cfg Config) *Server {
	if cfg.Queue == nil {
		panic("server.New: Config.Queue is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = 60 * time.Second
	}
	if cfg.DrainDeadline <= 0 {
		cfg.DrainDeadline = 30 * time.Second
	}
	if cfg.HealthPoll <= 0 {
		cfg.HealthPoll = 25 * time.Millisecond
	}
	if cfg.DedupCapacity == 0 {
		cfg.DedupCapacity = 65536
	}
	s := &Server{
		cfg:   cfg,
		q:     cfg.Queue,
		shed:  resilience.NewShedder(cfg.Shed),
		rate:  &resilience.DrainRate{},
		life:  &resilience.Lifecycle{},
		dedup: resilience.NewDedup(cfg.DedupCapacity),
		build: buildmeta.Collect(),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/enqueue", s.handleEnqueue)
	s.mux.HandleFunc("POST /v1/dequeue", s.handleDequeue)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.Handle("GET /metrics", s.metricsHandler())
	s.mux.Handle("GET /traces", s.q.TraceHandler())
	s.mux.HandleFunc("POST /admin/drain", s.handleAdminDrain)
	if cfg.Blackbox != nil {
		s.mux.Handle("GET /admin/blackbox", cfg.Blackbox)
	}
	go s.poll()
	return s
}

// Handler returns the server's handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Counters exposes the operation ledger (for tests and expvar publication).
func (s *Server) Counters() *resilience.Counters { return &s.ctrs }

// State returns the lifecycle state.
func (s *Server) State() resilience.State { return s.life.State() }

// Shedding reports whether the admission controller is rejecting enqueues.
func (s *Server) Shedding() bool { return s.shed.Shedding() }

// poll feeds the shedder and the drain-rate estimator until the lifecycle
// closes. Items delivered by this server is the rate signal — exact,
// telemetry-independent, and exactly what a Retry-After promise is about.
func (s *Server) poll() {
	t := time.NewTicker(s.cfg.HealthPoll)
	defer t.Stop()
	for {
		select {
		case <-s.life.Done():
			return
		case <-t.C:
			h := s.q.Health()
			s.shed.Observe(h.OK, h.Verdict)
			s.ctrs.HealthPolls.Add(1)
			s.rate.Observe(time.Now(), s.ctrs.ItemsDelivered.Load())
			s.lastDepth.Store(s.q.Metrics().Depth)
		}
	}
}

// logf logs a lifecycle line, if a logger was configured.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Drain performs the graceful shutdown of the accept side, blocking until
// the queue is empty or the drain deadline passes:
//
//  1. flip to Draining — new enqueues get 503 immediately;
//  2. settle in-flight enqueue RPCs (their waits are cut short by the
//     drain context), so the accepted set is final;
//  3. Close the queue — remote consumers keep dequeuing what remains;
//  4. wait for empty (or the deadline, counted in DrainExpiry).
//
// The caller still owns the listener: call http.Server.Shutdown after
// Drain so in-flight dequeue responses flush, then Close. Drain is
// idempotent; concurrent calls share one drain and its result.
func (s *Server) Drain(ctx context.Context) error {
	s.drainOnce.Do(func() { s.drainErr = s.drain(ctx) })
	return s.drainErr
}

func (s *Server) drain(ctx context.Context) error {
	if s.life.BeginDrain() {
		s.ctrs.DrainsBegun.Add(1)
		s.logf("qserve: drain begun (deadline %v, depth ~%d)", s.cfg.DrainDeadline, s.lastDepth.Load())
	}
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DrainDeadline)
		defer cancel()
	}

	// Settle in-flight enqueues. Their wait loops observe DrainBegun
	// through the per-request context, so this gate closes within one
	// poll of the flip rather than a full client deadline later.
	s.enqGate.Lock()
	s.enqGate.Unlock() //nolint:staticcheck // empty critical section is the settle barrier

	// No enqueue can be in or past the hot path now: close, then let
	// consumers empty what was accepted.
	s.q.Close()
	for {
		m := s.q.Metrics()
		if m.Depth <= 0 && m.Items <= 0 {
			s.logf("qserve: drain complete (%d items delivered after drain began)", s.ctrs.DrainedItems.Load())
			return nil
		}
		select {
		case <-ctx.Done():
			s.ctrs.DrainExpiry.Add(1)
			s.logf("qserve: drain deadline expired with ~%d items queued", m.Depth)
			return fmt.Errorf("drain deadline expired with ~%d items queued: %w", m.Depth, ctx.Err())
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// Close marks the lifecycle Closed (stopping the poll loop) and closes the
// queue if Drain never ran. Call after the HTTP listener has shut down.
func (s *Server) Close() {
	s.life.MarkClosed()
	s.q.Close() // idempotent; covers the abort-without-drain path
}

// reqContext derives the operation context: the request's own context
// (client disconnects propagate) bounded by the requested timeout, capped
// at MaxDeadline, and — for enqueues — cut short when a drain begins.
func (s *Server) reqContext(r *http.Request, timeoutMs int64, cancelOnDrain bool) (context.Context, context.CancelFunc) {
	d := time.Duration(timeoutMs) * time.Millisecond
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	ctx := r.Context()
	var cancels []context.CancelFunc
	if d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		cancels = append(cancels, cancel)
	}
	if cancelOnDrain {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		// A drain beginning must cut blocked enqueue waits short: without
		// this, Drain's settle barrier would wait out every in-flight
		// client deadline before the queue could close.
		go func(done <-chan struct{}) {
			select {
			case <-s.life.DrainBegun():
				cancel()
			case <-done:
			}
		}(ctx.Done())
	}
	return ctx, func() {
		for _, c := range cancels {
			c()
		}
	}
}

// handleEnqueue is the accept path. Order matters: the lifecycle and the
// shedder are consulted before anything touches the queue, so a stalled
// queue's rejects cost one atomic load each instead of a reservation
// attempt on the contended item account.
func (s *Server) handleEnqueue(w http.ResponseWriter, r *http.Request) {
	s.ctrs.EnqueueRequests.Add(1)
	var req resilience.EnqueueRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.ctrs.BadRequests.Add(1)
		writeErr(w, http.StatusBadRequest, resilience.ErrTokenBadRequest, err.Error(), 0)
		return
	}
	if len(req.Values) == 0 || len(req.Values) > s.cfg.MaxBatch {
		s.ctrs.BadRequests.Add(1)
		writeErr(w, http.StatusBadRequest, resilience.ErrTokenBadRequest,
			fmt.Sprintf("values must hold 1..%d entries", s.cfg.MaxBatch), 0)
		return
	}
	for _, v := range req.Values {
		if v == lcrq.Reserved {
			s.ctrs.BadRequests.Add(1)
			writeErr(w, http.StatusBadRequest, resilience.ErrTokenBadRequest, "reserved value", 0)
			return
		}
	}

	var traceID uint64
	traced := req.TraceID != ""
	if traced {
		id, err := resilience.ParseTraceID(req.TraceID)
		if err != nil {
			s.ctrs.BadRequests.Add(1)
			writeErr(w, http.StatusBadRequest, resilience.ErrTokenBadRequest, "bad trace_id: "+err.Error(), 0)
			return
		}
		traceID = id
	}

	// Idempotent replay: a key we already executed answers from the
	// record, touching nothing. The replayed accept already deposited its
	// stamp, so the echo keeps the trace identity without re-stamping.
	if out, ok := s.dedup.Seen(req.IdempotencyKey); ok {
		s.ctrs.IdempotentHits.Add(1)
		resp := resilience.EnqueueResponse{Accepted: out.Accepted}
		if traced && out.Accepted > 0 {
			resp.TraceID = req.TraceID
		}
		writeJSON(w, out.Status, resp)
		return
	}

	// Admission: drain state, then shedder — both before the hot path.
	s.enqGate.RLock()
	defer s.enqGate.RUnlock()
	if s.life.State() != resilience.Serving {
		s.ctrs.ClosedRejects.Add(1)
		writeErr(w, http.StatusServiceUnavailable, resilience.ErrTokenDraining, "server is draining", 0)
		return
	}
	if s.shed.Shedding() {
		s.ctrs.ShedRejects.Add(1)
		ra := s.rate.RetryAfter(s.lastDepth.Load())
		w.Header().Set("X-Load-Shed", "1")
		writeRetryErr(w, resilience.ErrTokenShedding, "admission controller open: "+s.shed.State().Verdict, ra)
		return
	}

	ctx, cancel := s.reqContext(r, req.TimeoutMs, true)
	defer cancel()
	accepted, err := s.enqueue(ctx, req.Values, req.TimeoutMs > 0, traceID, traced)
	if accepted > 0 {
		s.ctrs.ItemsAccepted.Add(uint64(accepted))
		if traced {
			s.ctrs.TracedAccepts.Add(1)
		}
	}
	echo := ""
	if traced && accepted > 0 {
		echo = req.TraceID
	}
	status := s.enqueueStatus(w, r, accepted, err, echo)
	// Record only executions with side effects: replaying a 0-accepted
	// failure re-executes harmlessly, but replaying an accept must not
	// enqueue twice.
	if accepted > 0 {
		s.dedup.Record(req.IdempotencyKey, resilience.DedupOutcome{Accepted: accepted, Status: status})
	}
}

// enqueue admits as much of vs as budget and the deadline allow: batch
// reservations while there is budget, one EnqueueWait on the next value
// when there is not (it blocks until budget frees, the queue closes, or
// ctx ends), then back to batching. Without wait (timeout_ms 0) a full
// queue reports ErrFull after the single batch attempt.
//
// When traced, the first value to land carries an item trace of identity
// traceID (one stamp per request, mirroring the queue's one-trace-per-
// operation rule); once any value is in, the remainder proceeds untraced.
func (s *Server) enqueue(ctx context.Context, vs []uint64, wait bool, traceID uint64, traced bool) (accepted int, err error) {
	for accepted < len(vs) {
		var n int
		var berr error
		if traced && accepted == 0 {
			n, berr = s.q.EnqueueBatchTraced(vs, traceID)
		} else {
			n, berr = s.q.EnqueueBatch(vs[accepted:])
		}
		accepted += n
		if accepted == len(vs) {
			return accepted, nil
		}
		if errors.Is(berr, lcrq.ErrClosed) || !wait {
			return accepted, berr
		}
		// Full. Wait for budget via the single-value path, which carries
		// the backoff and the taxonomy (ErrFull+ctx wrapped on expiry).
		var werr error
		if traced && accepted == 0 {
			werr = s.q.EnqueueWaitTraced(ctx, vs[0], traceID)
		} else {
			werr = s.q.EnqueueWait(ctx, vs[accepted])
		}
		if werr != nil {
			return accepted, werr
		}
		accepted++
	}
	return accepted, nil
}

// enqueueStatus maps the outcome onto the wire and reports the status used.
func (s *Server) enqueueStatus(w http.ResponseWriter, r *http.Request, accepted int, err error, traceID string) int {
	switch {
	case err == nil, accepted > 0:
		// Full or partial accept: the client learns how many leading
		// values are in; the remainder is safely resendable.
		writeJSON(w, http.StatusOK, resilience.EnqueueResponse{Accepted: accepted, TraceID: traceID})
		return http.StatusOK
	case errors.Is(err, lcrq.ErrClosed), s.life.State() != resilience.Serving:
		// Closed, or the wait was cut short by a drain beginning.
		s.ctrs.ClosedRejects.Add(1)
		writeErr(w, http.StatusServiceUnavailable, resilience.ErrTokenDraining, "queue closed to new work", 0)
		return http.StatusServiceUnavailable
	case r.Context().Err() != nil:
		// The client went away; nothing was admitted.
		s.ctrs.ClientCancels.Add(1)
		writeErr(w, resilience.StatusClientClosedRequest, resilience.ErrTokenCanceled, "client closed request", 0)
		return resilience.StatusClientClosedRequest
	case errors.Is(err, lcrq.ErrFull):
		// Full for the whole deadline: backpressure, with a drain-rate
		// derived hint for when budget should exist.
		s.ctrs.FullRejects.Add(1)
		writeRetryErr(w, resilience.ErrTokenFull, "queue full for the whole deadline",
			s.rate.RetryAfter(s.lastDepth.Load()))
		return http.StatusTooManyRequests
	default:
		// Deadline expired outside the full path (should not happen for
		// enqueues, but the mapping must be total).
		s.ctrs.DeadlineExpiry.Add(1)
		writeErr(w, http.StatusGatewayTimeout, resilience.ErrTokenDeadline, err.Error(), 0)
		return http.StatusGatewayTimeout
	}
}

// handleDequeue is the delivery path. Dequeues are served through a drain
// (they are the drain), and are never shed — shedding delivery would hold
// the very items whose drain recovery the shedder is waiting for.
func (s *Server) handleDequeue(w http.ResponseWriter, r *http.Request) {
	s.ctrs.DequeueRequests.Add(1)
	var req resilience.DequeueRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.ctrs.BadRequests.Add(1)
		writeErr(w, http.StatusBadRequest, resilience.ErrTokenBadRequest, err.Error(), 0)
		return
	}
	limit := req.Max
	if limit <= 0 {
		limit = 1
	}
	if limit > s.cfg.MaxBatch {
		limit = s.cfg.MaxBatch
	}
	if s.life.State() == resilience.Closed {
		s.ctrs.ClosedRejects.Add(1)
		writeErr(w, http.StatusServiceUnavailable, resilience.ErrTokenClosed, "server closed", 0)
		return
	}

	ctx, cancel := s.reqContext(r, req.WaitMs, false)
	defer cancel()
	out := make([]uint64, limit)
	// Closed is read before the poll: observing (closed, then empty) in
	// that order proves the queue is drained for good, as in DequeueWait.
	closed := s.q.Closed()
	n, hits := s.q.DequeueBatchTraced(out)
	if n == 0 && req.WaitMs <= 0 && closed {
		s.ctrs.ClosedRejects.Add(1)
		writeErr(w, http.StatusServiceUnavailable, resilience.ErrTokenClosed, "queue closed and drained", 0)
		return
	}
	if n == 0 && req.WaitMs > 0 {
		v, waitHits, err := s.q.DequeueWaitTraced(ctx)
		switch {
		case err == nil:
			out[0] = v
			var tailHits []lcrq.ItemTrace
			n, tailHits = s.q.DequeueBatchTraced(out[1:])
			n++
			// Reindex the tail batch's positions past the waited value.
			for i := range tailHits {
				tailHits[i].Pos++
			}
			hits = append(waitHits, tailHits...)
		case errors.Is(err, lcrq.ErrClosed):
			// Closed AND drained: terminal — no value is ever coming.
			s.ctrs.ClosedRejects.Add(1)
			writeErr(w, http.StatusServiceUnavailable, resilience.ErrTokenClosed, "queue closed and drained", 0)
			return
		case r.Context().Err() != nil:
			s.ctrs.ClientCancels.Add(1)
			writeErr(w, resilience.StatusClientClosedRequest, resilience.ErrTokenCanceled, "client closed request", 0)
			return
		default:
			// Empty for the whole wait: the long-poll timed out.
			s.ctrs.DeadlineExpiry.Add(1)
			writeErr(w, http.StatusGatewayTimeout, resilience.ErrTokenDeadline, "queue empty for the whole wait", 0)
			return
		}
	}
	if n > 0 {
		s.ctrs.ItemsDelivered.Add(uint64(n))
		if s.life.State() != resilience.Serving {
			s.ctrs.DrainedItems.Add(uint64(n))
		}
	}
	resp := resilience.DequeueResponse{Values: out[:n]}
	if len(hits) > 0 {
		s.ctrs.TracedDeliveries.Add(uint64(len(hits)))
		resp.Traces = make([]resilience.WireTrace, len(hits))
		for i, h := range hits {
			resp.Traces[i] = resilience.WireTrace{
				ID:               resilience.FormatTraceID(h.ID),
				Pos:              h.Pos,
				EnqueuedAtUnixNs: h.EnqueuedAt.UnixNano(),
				SojournNs:        h.Sojourn.Nanoseconds(),
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz answers load-balancer checks: 200 while serving (shedding
// included — delivery still works), 503 once draining, so the balancer
// routes new traffic away while existing consumers finish the drain.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	st := s.life.State()
	code := http.StatusOK
	if st != resilience.Serving {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"state":    st.String(),
		"shed":     s.shed.State(),
		"health":   s.q.Health(),
		"depth":    s.lastDepth.Load(),
		"drainsec": s.rate.PerSecond(),
	})
}

// handleStatsz serves the full observability snapshot as JSON: build
// provenance (commit, GOMAXPROCS, collection timestamp), lifecycle, shed
// state, queue health, the server's counter ledger, operation latency and
// item-sojourn summaries, and the tail of the queue's event trace
// (watchdog-alert / watchdog-recover included, so a harness can verify the
// shed/recover sequence without scraping text). cmd/qtop renders this
// endpoint live.
func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	m := s.q.Metrics()
	evs := s.q.Events()
	type ev struct {
		Seq  uint64 `json:"seq"`
		Kind string `json:"kind"`
	}
	tail := make([]ev, 0, len(evs))
	for _, e := range evs {
		tail = append(tail, ev{Seq: e.Seq, Kind: e.Kind})
	}
	lat := func(l lcrq.LatencySummary) map[string]any {
		return map[string]any{
			"samples": l.Samples,
			"mean_ns": l.Mean.Nanoseconds(),
			"p50_ns":  l.P50.Nanoseconds(),
			"p99_ns":  l.P99.Nanoseconds(),
			"p999_ns": l.P999.Nanoseconds(),
			"max_ns":  l.Max.Nanoseconds(),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"build":       s.build,
		"state":       s.life.State().String(),
		"shed":        s.shed.State(),
		"health":      m.Health,
		"counters":    s.ctrs.Snapshot(),
		"depth":       m.Depth,
		"items":       m.Items,
		"capacity":    m.Capacity,
		"drain_rate":  s.rate.PerSecond(),
		"ring_events": m.RingEvents,
		"events":      tail,
		"stats": map[string]any{
			"enqueues":   m.Stats.Enqueues,
			"dequeues":   m.Stats.Dequeues,
			"empty":      m.Stats.Empty,
			"trace_arms": m.Stats.TraceArms,
			"trace_hits": m.Stats.TraceHits,
		},
		"latency": map[string]any{
			"enqueue":      lat(m.Enqueue),
			"dequeue":      lat(m.Dequeue),
			"dequeue_wait": lat(m.DequeueWait),
			"enqueue_wait": lat(m.EnqueueWait),
		},
		"sojourn":        lat(m.Sojourn),
		"trace_sample_n": m.TraceSampleN,
		"contention": map[string]any{
			"enabled":      m.Contention.Enabled,
			"boost":        m.Contention.Boost,
			"raises":       m.Contention.Raises,
			"decays":       m.Contention.Decays,
			"adapt_raises": m.Stats.AdaptiveRaises,
			"adapt_decays": m.Stats.AdaptiveDecays,
			"adapt_spins":  m.Stats.AdaptiveSpins,
		},
	})
}

// metricsHandler serves the queue's Prometheus series and the server's own
// on one scrape, plus lifecycle/shed gauges.
func (s *Server) metricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		lcrq.WritePrometheus(w, s.q.Metrics())
		s.ctrs.WritePrometheus(w)
		shed := int64(0)
		if s.shed.Shedding() {
			shed = 1
		}
		fmt.Fprintf(w, "# HELP lcrq_qserve_shedding 1 while the admission controller rejects enqueues.\n# TYPE lcrq_qserve_shedding gauge\nlcrq_qserve_shedding %d\n", shed)
		fmt.Fprintf(w, "# HELP lcrq_qserve_state Lifecycle state by name (value 1 on the current one).\n# TYPE lcrq_qserve_state gauge\nlcrq_qserve_state{state=%q} 1\n", s.life.State().String())
	})
}

// handleAdminDrain is the wire drain entrypoint (the SIGTERM analog for
// orchestrators that would rather POST than signal). It begins the drain
// and returns immediately; /healthz flips to 503 and the drain proceeds
// in the background with the configured deadline.
func (s *Server) handleAdminDrain(w http.ResponseWriter, _ *http.Request) {
	go s.Drain(context.Background())
	writeJSON(w, http.StatusAccepted, map[string]string{"state": "draining"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, token, detail string, retryAfter time.Duration) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int64(retryAfter.Seconds())))
	}
	resp := resilience.ErrorResponse{Error: token, Detail: detail}
	if retryAfter > 0 {
		resp.RetryAfterSec = int64(retryAfter.Seconds())
	}
	writeJSON(w, status, resp)
}

func writeRetryErr(w http.ResponseWriter, token, detail string, retryAfter time.Duration) {
	writeErr(w, http.StatusTooManyRequests, token, detail, retryAfter)
}
