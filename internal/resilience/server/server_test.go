package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lcrq"
	"lcrq/internal/resilience"
)

func newTestServer(t *testing.T, cfg Config, qopts ...lcrq.Option) (*httptest.Server, *Server, *lcrq.Queue) {
	t.Helper()
	q := lcrq.New(qopts...)
	cfg.Queue = q
	if cfg.HealthPoll == 0 {
		cfg.HealthPoll = 2 * time.Millisecond
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts, s, q
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func enqueue(t *testing.T, base string, req resilience.EnqueueRequest) (int, *http.Response, []byte) {
	t.Helper()
	resp, data := postJSON(t, base+"/v1/enqueue", req)
	var out resilience.EnqueueResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("enqueue response %q: %v", data, err)
		}
	}
	return out.Accepted, resp, data
}

func dequeue(t *testing.T, base string, req resilience.DequeueRequest) ([]uint64, *http.Response) {
	t.Helper()
	resp, data := postJSON(t, base+"/v1/dequeue", req)
	var out resilience.DequeueResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("dequeue response %q: %v", data, err)
		}
	}
	return out.Values, resp
}

// TestRoundTrip: values go in over the wire and come back in FIFO order.
func TestRoundTrip(t *testing.T) {
	ts, _, _ := newTestServer(t, Config{})
	n, resp, _ := enqueue(t, ts.URL, resilience.EnqueueRequest{Values: []uint64{1, 2, 3}})
	if resp.StatusCode != 200 || n != 3 {
		t.Fatalf("enqueue = %d accepted, status %d", n, resp.StatusCode)
	}
	vs, resp := dequeue(t, ts.URL, resilience.DequeueRequest{Max: 10})
	if resp.StatusCode != 200 || len(vs) != 3 || vs[0] != 1 || vs[1] != 2 || vs[2] != 3 {
		t.Fatalf("dequeue = %v, status %d", vs, resp.StatusCode)
	}
	// Empty, no wait: 200 with empty values, not an error.
	vs, resp = dequeue(t, ts.URL, resilience.DequeueRequest{Max: 1})
	if resp.StatusCode != 200 || len(vs) != 0 {
		t.Fatalf("empty dequeue = %v, status %d", vs, resp.StatusCode)
	}
}

// TestErrorMapping drives the full wire error taxonomy of DESIGN.md §12.
func TestErrorMapping(t *testing.T) {
	ts, s, _ := newTestServer(t, Config{MaxBatch: 4},
		lcrq.WithCapacity(2), lcrq.WithWaitBackoff(time.Microsecond, 50*time.Microsecond))

	// Malformed body, empty batch, oversize batch, reserved value → 400.
	resp, err := http.Post(ts.URL+"/v1/enqueue", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed enqueue = %d, want 400", resp.StatusCode)
	}
	for _, vals := range [][]uint64{{}, {1, 2, 3, 4, 5}, {uint64(lcrq.Reserved)}} {
		if _, resp, _ := enqueue(t, ts.URL, resilience.EnqueueRequest{Values: vals}); resp.StatusCode != 400 {
			t.Fatalf("bad batch %v = %d, want 400", vals, resp.StatusCode)
		}
	}

	// Fill to capacity; the immediate (no-wait) overflow is a 429 "full"
	// with a Retry-After hint.
	if n, _, _ := enqueue(t, ts.URL, resilience.EnqueueRequest{Values: []uint64{1, 2}}); n != 2 {
		t.Fatalf("fill accepted %d, want 2", n)
	}
	n, resp, data := enqueue(t, ts.URL, resilience.EnqueueRequest{Values: []uint64{3}})
	if resp.StatusCode != 429 || n != 0 {
		t.Fatalf("no-wait overflow = %d accepted, status %d (%s)", n, resp.StatusCode, data)
	}
	var e resilience.ErrorResponse
	if err := json.Unmarshal(data, &e); err != nil || e.Error != resilience.ErrTokenFull {
		t.Fatalf("overflow body = %s", data)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}

	// Full for the whole (short) deadline → still 429, after waiting.
	start := time.Now()
	_, resp, _ = enqueue(t, ts.URL, resilience.EnqueueRequest{Values: []uint64{3}, TimeoutMs: 50})
	if resp.StatusCode != 429 {
		t.Fatalf("deadline overflow status = %d, want 429", resp.StatusCode)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatalf("deadline overflow returned in %v — did not wait the deadline", time.Since(start))
	}

	// Empty long-poll → 504 deadline.
	drainAll(t, ts.URL)
	_, resp = dequeue(t, ts.URL, resilience.DequeueRequest{Max: 1, WaitMs: 30})
	if resp.StatusCode != 504 {
		t.Fatalf("empty long-poll = %d, want 504", resp.StatusCode)
	}

	// Drained server: enqueues 503, dequeues drain then 503, healthz 503.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if _, resp, _ := enqueue(t, ts.URL, resilience.EnqueueRequest{Values: []uint64{9}}); resp.StatusCode != 503 {
		t.Fatalf("post-drain enqueue = %d, want 503", resp.StatusCode)
	}
	if _, resp := dequeue(t, ts.URL, resilience.DequeueRequest{Max: 1}); resp.StatusCode != 503 {
		t.Fatalf("post-drain empty dequeue = %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != 503 {
		t.Fatalf("post-drain healthz = %d, want 503", hresp.StatusCode)
	}
}

func drainAll(t *testing.T, base string) {
	t.Helper()
	for {
		vs, resp := dequeue(t, base, resilience.DequeueRequest{Max: 64})
		if resp.StatusCode != 200 || len(vs) == 0 {
			return
		}
	}
}

// TestIdempotencyReplay: resending a batch under its idempotency key must
// not enqueue twice — the recorded outcome answers.
func TestIdempotencyReplay(t *testing.T) {
	ts, s, q := newTestServer(t, Config{})
	req := resilience.EnqueueRequest{Values: []uint64{10, 11}, IdempotencyKey: "batch-1"}
	if n, _, _ := enqueue(t, ts.URL, req); n != 2 {
		t.Fatal("first send rejected")
	}
	if n, resp, _ := enqueue(t, ts.URL, req); n != 2 || resp.StatusCode != 200 {
		t.Fatalf("replay = %d accepted, status %d", n, resp.StatusCode)
	}
	if got := s.Counters().IdempotentHits.Load(); got != 1 {
		t.Fatalf("IdempotentHits = %d, want 1", got)
	}
	if depth := q.Metrics().Depth; depth != 2 {
		t.Fatalf("replay duplicated items: depth = %d, want 2", depth)
	}
	// A different key is a different batch.
	req.IdempotencyKey = "batch-2"
	if n, _, _ := enqueue(t, ts.URL, req); n != 2 {
		t.Fatal("fresh key rejected")
	}
	if depth := q.Metrics().Depth; depth != 4 {
		t.Fatalf("depth after fresh key = %d, want 4", depth)
	}
}

// TestDeadlinePropagation: the client's timeout bounds the server-side
// wait — a long-poll answers as soon as a value arrives, well within it.
func TestDeadlinePropagation(t *testing.T) {
	ts, _, q := newTestServer(t, Config{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		q.Enqueue(42)
	}()
	start := time.Now()
	vs, resp := dequeue(t, ts.URL, resilience.DequeueRequest{Max: 1, WaitMs: 5000})
	if resp.StatusCode != 200 || len(vs) != 1 || vs[0] != 42 {
		t.Fatalf("long-poll = %v, status %d", vs, resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("long-poll took %v — value did not wake the wait", elapsed)
	}
}

// TestMetricsScrape: one scrape carries the queue's series and the
// server's, plus the lifecycle/shed gauges.
func TestMetricsScrape(t *testing.T) {
	ts, _, _ := newTestServer(t, Config{})
	enqueue(t, ts.URL, resilience.EnqueueRequest{Values: []uint64{1}})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	for _, series := range []string{
		"lcrq_enqueues_total",
		"lcrq_qserve_enqueue_requests_total 1",
		"lcrq_qserve_items_accepted_total 1",
		"lcrq_qserve_shedding 0",
		`lcrq_qserve_state{state="serving"} 1`,
	} {
		if !strings.Contains(text, series) {
			t.Fatalf("scrape missing %q:\n%s", series, text)
		}
	}
}

// TestShedAndRecover: a capacity-stalled queue must open the admission
// controller (429 + X-Load-Shed before the hot path), and easing the load
// must close it again, leaving a watchdog-recover event in the trace.
func TestShedAndRecover(t *testing.T) {
	ts, s, _ := newTestServer(t, Config{HealthPoll: time.Millisecond},
		lcrq.WithCapacity(2), lcrq.WithWatchdog(2*time.Millisecond),
		lcrq.WithWaitBackoff(time.Microsecond, 50*time.Microsecond))

	// Fill, then hammer: every tick sees rejects and no consumer progress,
	// so the watchdog flips to capacity-stall and the shedder opens. The
	// shed answer is inspected inside the loop — once the shedder opens,
	// rejects stop reaching the queue and the watchdog self-recovers, so
	// "still shedding" is not stable to probe after the fact.
	enqueue(t, ts.URL, resilience.EnqueueRequest{Values: []uint64{1, 2}})
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("shedder never opened; shedding=%v counters=%v",
				s.Shedding(), s.Counters().Snapshot())
		}
		_, resp, data := enqueue(t, ts.URL, resilience.EnqueueRequest{Values: []uint64{3}})
		if resp.StatusCode == 429 && resp.Header.Get("X-Load-Shed") == "1" {
			var e resilience.ErrorResponse
			if err := json.Unmarshal(data, &e); err != nil || e.Error != resilience.ErrTokenShedding {
				t.Fatalf("shed body = %s", data)
			}
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("shed 429 without Retry-After")
			}
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	if s.Counters().ShedRejects.Load() == 0 {
		t.Fatal("ShedRejects counter still zero after a shed 429")
	}

	// Ease the load: drain the queue, keep polling until admission reopens.
	drainAll(t, ts.URL)
	for s.Shedding() {
		if time.Now().After(deadline) {
			t.Fatalf("shedder never closed after load eased; statsz shed=%+v", s.shed.State())
		}
		drainAll(t, ts.URL)
		time.Sleep(time.Millisecond)
	}

	// The recovery is visible in the event trace via /statsz.
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var stats struct {
		RingEvents map[string]uint64 `json:"ring_events"`
	}
	if err := json.Unmarshal(data, &stats); err != nil {
		t.Fatalf("statsz: %v (%s)", err, data)
	}
	if stats.RingEvents["watchdog-alert"] == 0 || stats.RingEvents["watchdog-recover"] == 0 {
		t.Fatalf("statsz missing alert/recover events: %v", stats.RingEvents)
	}

	// Enqueues flow again.
	if n, resp, _ := enqueue(t, ts.URL, resilience.EnqueueRequest{Values: []uint64{7}}); n != 1 {
		t.Fatalf("post-recovery enqueue = %d accepted, status %d", n, resp.StatusCode)
	}
}

// runDrainScenario is the drain exactly-once workload, shared between the
// plain test and the chaos-tagged one (which arms the injection points
// first): producers and consumers hammer the wire, a drain begins via the
// admin entrypoint mid-traffic, and afterwards every accepted item must
// have been delivered exactly once, with zero accepts after the drain.
func runDrainScenario(t *testing.T) {
	t.Helper()
	ts, s, _ := newTestServer(t, Config{HealthPoll: 2 * time.Millisecond, DrainDeadline: 20 * time.Second},
		lcrq.WithCapacity(256), lcrq.WithWatchdog(5*time.Millisecond),
		lcrq.WithWaitBackoff(time.Microsecond, 100*time.Microsecond))

	const producers, consumers, batch = 4, 4, 16
	var (
		mu        sync.Mutex
		accepted  = make(map[uint64]bool)
		delivered = make(map[uint64]int)
	)
	var wg sync.WaitGroup
	stopProduce := make(chan struct{})

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			next := uint64(p+1) << 32
			client := &http.Client{Timeout: 10 * time.Second}
			for {
				select {
				case <-stopProduce:
					return
				default:
				}
				vals := make([]uint64, batch)
				for i := range vals {
					vals[i] = next + uint64(i)
				}
				body, _ := json.Marshal(resilience.EnqueueRequest{
					Values: vals, TimeoutMs: 100,
					IdempotencyKey: fmt.Sprintf("p%d-%d", p, next),
				})
				resp, err := client.Post(ts.URL+"/v1/enqueue", "application/json", bytes.NewReader(body))
				if err != nil {
					continue // transport failure: batch unconfirmed, key makes a retry safe but we simply move on
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case 200:
					var out resilience.EnqueueResponse
					if err := json.Unmarshal(data, &out); err != nil {
						t.Errorf("enqueue response %q: %v", data, err)
						return
					}
					mu.Lock()
					for i := 0; i < out.Accepted; i++ {
						accepted[vals[i]] = true
					}
					mu.Unlock()
					next += uint64(out.Accepted)
					if out.Accepted == 0 {
						time.Sleep(time.Millisecond)
					}
				case 429:
					time.Sleep(2 * time.Millisecond)
				case 503:
					return // draining: accepted set is final for this producer
				default:
					t.Errorf("unexpected enqueue status %d: %s", resp.StatusCode, data)
					return
				}
			}
		}(p)
	}

	consumerDone := make(chan struct{}, consumers)
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { consumerDone <- struct{}{} }()
			for {
				resp, data := postJSON(t, ts.URL+"/v1/dequeue", resilience.DequeueRequest{Max: 32, WaitMs: 100})
				switch resp.StatusCode {
				case 200:
					var out resilience.DequeueResponse
					if err := json.Unmarshal(data, &out); err != nil {
						t.Errorf("dequeue response %q: %v", data, err)
						return
					}
					mu.Lock()
					for _, v := range out.Values {
						delivered[v]++
					}
					mu.Unlock()
				case 504:
					continue // empty poll
				case 503:
					return // closed and drained: terminal
				default:
					t.Errorf("unexpected dequeue status %d: %s", resp.StatusCode, data)
					return
				}
			}
		}()
	}

	// Traffic flows; then the drain arrives over the wire, mid-stream.
	time.Sleep(100 * time.Millisecond)
	resp, _ := postJSON(t, ts.URL+"/admin/drain", struct{}{})
	if resp.StatusCode != 202 {
		t.Fatalf("admin drain = %d, want 202", resp.StatusCode)
	}
	close(stopProduce)

	// The shared drain result synchronizes with the admin-spawned one.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Post-drain accepts must be zero.
	if n, resp, _ := enqueue(t, ts.URL, resilience.EnqueueRequest{Values: []uint64{1}}); resp.StatusCode != 503 || n != 0 {
		t.Fatalf("post-drain enqueue = %d accepted, status %d, want 0/503", n, resp.StatusCode)
	}

	// Consumers observe closed-and-drained and stop on their own.
	for i := 0; i < consumers; i++ {
		select {
		case <-consumerDone:
		case <-time.After(20 * time.Second):
			t.Fatal("consumer did not observe the drain completing")
		}
	}
	wg.Wait()

	// Exactly once: accepted == delivered, each exactly one time.
	mu.Lock()
	defer mu.Unlock()
	if len(accepted) == 0 {
		t.Fatal("scenario accepted nothing — not a meaningful drain test")
	}
	for v := range accepted {
		switch delivered[v] {
		case 1:
		case 0:
			t.Fatalf("accepted item %d lost in the drain (accepted %d, delivered %d items)", v, len(accepted), len(delivered))
		default:
			t.Fatalf("accepted item %d delivered %d times", v, delivered[v])
		}
	}
	for v, n := range delivered {
		if !accepted[v] {
			t.Fatalf("phantom item %d delivered (%d times) but never confirmed accepted", v, n)
		}
	}
	if s.Counters().DrainsBegun.Load() != 1 {
		t.Fatalf("DrainsBegun = %d, want 1", s.Counters().DrainsBegun.Load())
	}
}

// TestDrainExactlyOnce: the graceful-drain contract under concurrent wire
// traffic (see runDrainScenario).
func TestDrainExactlyOnce(t *testing.T) {
	runDrainScenario(t)
}
