package resilience

// Wire types of the qserve HTTP/JSON protocol, shared by the server
// (internal/resilience/server), the client library
// (internal/resilience/client), and the e2e driver (cmd/qload).
//
// Values are uint64, carried as JSON numbers: exact through Go's
// encoder/decoder at any magnitude, but JavaScript consumers lose precision
// past 2^53 — keep wire values below that if a JS client is in the loop.

// EnqueueRequest asks the server to append Values in order.
type EnqueueRequest struct {
	// Values to enqueue, in order. Must be non-empty and at most the
	// server's max batch size; lcrq.Reserved is rejected.
	Values []uint64 `json:"values"`
	// TimeoutMs > 0 lets the server wait up to this long for a bounded
	// queue to free budget before giving up (capped by the server's
	// deadline ceiling). 0 means try once and report full immediately.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// IdempotencyKey, when set, makes retries of this exact batch safe: a
	// replay of a key the server already executed returns the recorded
	// outcome instead of enqueueing again.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// EnqueueResponse reports how many leading values were accepted. Accepted
// may be less than len(Values) when budget or the deadline ran out —
// Values[Accepted:] are NOT in the queue and may be resent.
type EnqueueResponse struct {
	Accepted int `json:"accepted"`
}

// DequeueRequest asks for up to Max values.
type DequeueRequest struct {
	// Max values to return; 0 means 1; capped by the server's max batch.
	Max int `json:"max,omitempty"`
	// WaitMs > 0 long-polls: an empty queue is waited on up to this long
	// (capped by the server's deadline ceiling) before answering. 0
	// answers immediately, with an empty Values when the queue is empty.
	WaitMs int64 `json:"wait_ms,omitempty"`
}

// DequeueResponse carries the dequeued values, oldest first; empty when
// the queue had nothing within the wait.
type DequeueResponse struct {
	Values []uint64 `json:"values"`
}

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	// Error is a stable token: "shedding", "full", "draining", "closed",
	// "deadline", "canceled", or "bad-request".
	Error string `json:"error"`
	// Detail elaborates for humans; not stable.
	Detail string `json:"detail,omitempty"`
	// RetryAfterSec mirrors the Retry-After header on 429 answers.
	RetryAfterSec int64 `json:"retry_after_sec,omitempty"`
}

// Error tokens; the HTTP status codes they ride on are fixed by the
// protocol (DESIGN.md §12): 429 shedding/full, 503 draining/closed,
// 504 deadline, 400 bad-request, 499 canceled.
const (
	ErrTokenShedding   = "shedding"
	ErrTokenFull       = "full"
	ErrTokenDraining   = "draining"
	ErrTokenClosed     = "closed"
	ErrTokenDeadline   = "deadline"
	ErrTokenCanceled   = "canceled"
	ErrTokenBadRequest = "bad-request"
)

// StatusClientClosedRequest is the nginx-convention status for "the client
// went away before the answer existed" (there is no standard code; 499 is
// the de-facto one). Nothing was delivered to anyone.
const StatusClientClosedRequest = 499
