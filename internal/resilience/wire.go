package resilience

// Wire types of the qserve HTTP/JSON protocol, shared by the server
// (internal/resilience/server), the client library
// (internal/resilience/client), and the e2e driver (cmd/qload).
//
// Values are uint64, carried as JSON numbers: exact through Go's
// encoder/decoder at any magnitude, but JavaScript consumers lose precision
// past 2^53 — keep wire values below that if a JS client is in the loop.
// Trace identities, which routinely use all 64 bits, are carried as strings
// for the same reason.

import "strconv"

// EnqueueRequest asks the server to append Values in order.
type EnqueueRequest struct {
	// Values to enqueue, in order. Must be non-empty and at most the
	// server's max batch size; lcrq.Reserved is rejected.
	Values []uint64 `json:"values"`
	// TimeoutMs > 0 lets the server wait up to this long for a bounded
	// queue to free budget before giving up (capped by the server's
	// deadline ceiling). 0 means try once and report full immediately.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// IdempotencyKey, when set, makes retries of this exact batch safe: a
	// replay of a key the server already executed returns the recorded
	// outcome instead of enqueueing again.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// TraceID, when set, forces an item trace with this identity onto the
	// first value the server accepts: the dequeue that later claims that
	// value reports the identity and the measured ring sojourn in
	// DequeueResponse.Traces, and the server retains it for /traces lookup.
	// Encoded as a string ("0x..." hex or decimal) because 64-bit JSON
	// numbers lose precision in JavaScript. Resends under one idempotency
	// key keep the same TraceID, so a replayed accept stays one trace.
	TraceID string `json:"trace_id,omitempty"`
}

// EnqueueResponse reports how many leading values were accepted. Accepted
// may be less than len(Values) when budget or the deadline ran out —
// Values[Accepted:] are NOT in the queue and may be resent.
type EnqueueResponse struct {
	Accepted int `json:"accepted"`
	// TraceID echoes the request's trace identity when one was supplied
	// and at least one value was accepted (i.e. the stamp was deposited).
	TraceID string `json:"trace_id,omitempty"`
}

// DequeueRequest asks for up to Max values.
type DequeueRequest struct {
	// Max values to return; 0 means 1; capped by the server's max batch.
	Max int `json:"max,omitempty"`
	// WaitMs > 0 long-polls: an empty queue is waited on up to this long
	// (capped by the server's deadline ceiling) before answering. 0
	// answers immediately, with an empty Values when the queue is empty.
	WaitMs int64 `json:"wait_ms,omitempty"`
}

// DequeueResponse carries the dequeued values, oldest first; empty when
// the queue had nothing within the wait.
type DequeueResponse struct {
	Values []uint64 `json:"values"`
	// Traces reports the stamped items among Values — sampled by the
	// queue's own 1-in-N tracing or forced by an enqueuer's trace_id.
	// Usually empty; at most one per stamped item.
	Traces []WireTrace `json:"traces,omitempty"`
}

// WireTrace is one completed item trace riding on a dequeue response: the
// queue-residency span of the cross-layer trace decomposition.
type WireTrace struct {
	// ID is the trace identity, formatted as in EnqueueRequest.TraceID.
	ID string `json:"id"`
	// Pos indexes the stamped item within DequeueResponse.Values.
	Pos int `json:"pos"`
	// EnqueuedAtUnixNs is the server-clock time the item was deposited.
	EnqueuedAtUnixNs int64 `json:"enqueued_at_unix_ns"`
	// SojournNs is how long the item sat in the ring before this dequeue
	// claimed it.
	SojournNs int64 `json:"sojourn_ns"`
}

// FormatTraceID renders a trace identity the way the wire carries it.
func FormatTraceID(id uint64) string { return "0x" + strconv.FormatUint(id, 16) }

// ParseTraceID parses a wire trace identity ("0x..." hex or decimal).
func ParseTraceID(s string) (uint64, error) { return strconv.ParseUint(s, 0, 64) }

// ErrorResponse is the body of every non-2xx answer.
type ErrorResponse struct {
	// Error is a stable token: "shedding", "full", "draining", "closed",
	// "deadline", "canceled", or "bad-request".
	Error string `json:"error"`
	// Detail elaborates for humans; not stable.
	Detail string `json:"detail,omitempty"`
	// RetryAfterSec mirrors the Retry-After header on 429 answers.
	RetryAfterSec int64 `json:"retry_after_sec,omitempty"`
}

// Error tokens; the HTTP status codes they ride on are fixed by the
// protocol (DESIGN.md §12): 429 shedding/full, 503 draining/closed,
// 504 deadline, 400 bad-request, 499 canceled.
const (
	ErrTokenShedding   = "shedding"
	ErrTokenFull       = "full"
	ErrTokenDraining   = "draining"
	ErrTokenClosed     = "closed"
	ErrTokenDeadline   = "deadline"
	ErrTokenCanceled   = "canceled"
	ErrTokenBadRequest = "bad-request"
)

// StatusClientClosedRequest is the nginx-convention status for "the client
// went away before the answer existed" (there is no standard code; 499 is
// the de-facto one). Nothing was delivered to anyone.
const StatusClientClosedRequest = 499
