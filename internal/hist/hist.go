// Package hist implements a log-linear latency histogram, the data structure
// behind the operation-latency CDFs of Figure 8 in the LCRQ paper.
//
// The histogram covers [1 ns, ~146 µs·2^k] with bounded relative error: each
// power-of-two range is split into 32 linear sub-buckets, giving a worst-case
// quantile error of about 3%. Recording is a handful of integer operations
// and never allocates, so workers can record on the measurement path; each
// worker owns a private histogram and the harness merges them afterwards.
package hist

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

const (
	subBits    = 5 // 32 linear sub-buckets per octave
	subBuckets = 1 << subBits
	// octaves covers values up to 2^(octaves+subBits-1) - 1 ≈ 2^36 ns ≈ 68 s,
	// far beyond any queue-operation latency.
	octaves    = 32
	numBuckets = octaves * subBuckets
)

// H is a latency histogram. Values are recorded in nanoseconds. The zero
// value is ready to use.
type H struct {
	counts   [numBuckets]uint64
	total    uint64
	overflow uint64 // values too large for the bucket range
	max      int64
	min      int64
}

// bucket maps a value to its bucket index.
//
// Values below subBuckets fall into octave 0 with exact (1 ns) resolution;
// above that, the top subBits bits after the leading one select the linear
// sub-bucket within the value's octave.
func bucket(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	msb := 63 - bits.LeadingZeros64(uint64(v))
	octave := msb - subBits + 1
	sub := int(uint64(v)>>uint(octave-1)) & (subBuckets - 1)
	return octave*subBuckets + sub
}

// bucketLow returns the smallest value mapping to bucket i; the bucket's
// values span [bucketLow(i), bucketLow(i+1)).
func bucketLow(i int) int64 {
	octave := i / subBuckets
	sub := i % subBuckets
	if octave == 0 {
		return int64(sub)
	}
	return (int64(subBuckets) + int64(sub)) << uint(octave-1)
}

// Record adds one observation of v nanoseconds. Negative values are clamped
// to zero (they can arise from clock adjustments mid-measurement).
func (h *H) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.total++
	b := bucket(v)
	if b >= numBuckets {
		h.overflow++
		return
	}
	h.counts[b]++
}

// Count returns the number of recorded observations.
func (h *H) Count() uint64 { return h.total }

// Min returns the smallest recorded value, or 0 if empty.
func (h *H) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value, or 0 if empty.
func (h *H) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Merge adds all observations recorded in o into h.
func (h *H) Merge(o *H) {
	if o.total == 0 {
		return
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.overflow += o.overflow
	for i, c := range o.counts {
		h.counts[i] += c
	}
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) of the
// recorded values, accurate to the bucket width (≈3% relative error). It
// returns 0 for an empty histogram.
func (h *H) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			// Report the bucket's upper edge, clamped to the observed max.
			hi := bucketLow(i+1) - 1
			if hi > h.max {
				hi = h.max
			}
			if hi < h.min {
				hi = h.min
			}
			return hi
		}
	}
	return h.max
}

// Mean returns the approximate mean of the recorded values using bucket
// midpoints.
func (h *H) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		mid := float64(bucketLow(i)+bucketLow(i+1)-1) / 2
		sum += mid * float64(c)
	}
	// Overflowed values contribute at least the observed max.
	sum += float64(h.overflow) * float64(h.max)
	return sum / float64(h.total)
}

// CDFPoint is one point of a cumulative distribution: Fraction of
// observations were ≤ Value nanoseconds.
type CDFPoint struct {
	Value    int64
	Fraction float64
}

// CDF returns the cumulative distribution evaluated at each of the given
// values (which are sorted in place).
func (h *H) CDF(values []int64) []CDFPoint {
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	out := make([]CDFPoint, 0, len(values))
	for _, v := range values {
		out = append(out, CDFPoint{Value: v, Fraction: h.FractionBelow(v)})
	}
	return out
}

// FractionBelow returns the fraction of observations ≤ v. The answer is
// exact at bucket boundaries and otherwise an upper-bounded approximation
// including the whole bucket containing v.
func (h *H) FractionBelow(v int64) float64 {
	if h.total == 0 {
		return 0
	}
	if v < 0 {
		return 0
	}
	b := bucket(v)
	var seen uint64
	for i := 0; i <= b && i < numBuckets; i++ {
		seen += h.counts[i]
	}
	return float64(seen) / float64(h.total)
}

// String renders a short summary with common quantiles.
func (h *H) String() string {
	if h.total == 0 {
		return "hist{empty}"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "hist{n=%d mean=%.0fns", h.total, h.Mean())
	for _, q := range []float64{0.5, 0.8, 0.97, 0.999} {
		fmt.Fprintf(&b, " p%g=%dns", q*100, h.Quantile(q))
	}
	b.WriteString("}")
	return b.String()
}
