// Package hist implements a log-linear latency histogram, the data structure
// behind the operation-latency CDFs of Figure 8 in the LCRQ paper and the
// sampled latency series of the live telemetry layer.
//
// The histogram covers [1 ns, ~2^37 ns] with bounded relative error: each
// power-of-two range is split into 64 linear sub-buckets, giving a worst-case
// bucket width of about 1.6% of the value. Values below 64 ns land in exact
// 1 ns buckets, so the sub-100 ns fast-path latencies of an uncontended
// queue operation are resolved to ≤2 ns rather than being smeared across a
// coarse bench-scale bucket. Recording is a handful of integer operations
// and never allocates, so workers can record on the measurement path; each
// worker owns a private histogram and the harness merges them afterwards.
//
// The bucket layout (Bucket, BucketLow, NumBuckets) is exported so that
// concurrent aggregators — internal/telemetry keeps one atomic counter per
// bucket — can share the mapping and rebuild an H via FromBuckets.
package hist

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

const (
	subBits    = 6 // 64 linear sub-buckets per octave
	subBuckets = 1 << subBits
	// octaves covers values up to about 2^(octaves+subBits-1) ns ≈ 137 s,
	// far beyond any queue-operation latency.
	octaves    = 32
	numBuckets = octaves * subBuckets

	// NumBuckets is the number of buckets in the fixed layout shared by
	// every H (and by external per-bucket aggregators).
	NumBuckets = numBuckets
)

// H is a latency histogram. Values are recorded in nanoseconds. The zero
// value is ready to use.
type H struct {
	counts   [numBuckets]uint64
	total    uint64
	overflow uint64 // values too large for the bucket range
	max      int64
	min      int64
}

// bucket maps a value to its bucket index.
//
// Values below subBuckets fall into octave 0 with exact (1 ns) resolution;
// above that, the top subBits bits after the leading one select the linear
// sub-bucket within the value's octave.
func bucket(v int64) int {
	if v < subBuckets {
		return int(v)
	}
	msb := 63 - bits.LeadingZeros64(uint64(v))
	octave := msb - subBits + 1
	sub := int(uint64(v)>>uint(octave-1)) & (subBuckets - 1)
	return octave*subBuckets + sub
}

// bucketLow returns the smallest value mapping to bucket i; the bucket's
// values span [bucketLow(i), bucketLow(i+1)).
func bucketLow(i int) int64 {
	octave := i / subBuckets
	sub := i % subBuckets
	if octave == 0 {
		return int64(sub)
	}
	return (int64(subBuckets) + int64(sub)) << uint(octave-1)
}

// Bucket maps a nanosecond value to its bucket index in [0, NumBuckets).
// Negative values map to bucket 0; values beyond the layout's range map to
// NumBuckets (the overflow pseudo-bucket).
func Bucket(v int64) int {
	if v < 0 {
		return 0
	}
	b := bucket(v)
	if b > numBuckets {
		return numBuckets
	}
	return b
}

// BucketLow returns the inclusive lower edge of bucket i; bucket i holds
// values in [BucketLow(i), BucketLow(i+1)). i == NumBuckets gives the upper
// edge of the layout (the overflow threshold).
func BucketLow(i int) int64 { return bucketLow(i) }

// FromBuckets rebuilds a histogram from externally accumulated per-bucket
// counts (len(counts) must be NumBuckets; overflow counts values at or above
// BucketLow(NumBuckets)). Min and max are recovered from the occupied bucket
// edges, so they are approximate to the bucket width.
func FromBuckets(counts []uint64, overflow uint64) *H {
	if len(counts) != numBuckets {
		panic("hist: FromBuckets counts length mismatch")
	}
	h := &H{overflow: overflow}
	for i, c := range counts {
		if c == 0 {
			continue
		}
		h.counts[i] = c
		h.total += c
		if h.total == c { // first occupied bucket
			h.min = bucketLow(i)
		}
		h.max = bucketLow(i+1) - 1
	}
	h.total += overflow
	if overflow > 0 {
		h.max = bucketLow(numBuckets)
	}
	return h
}

// Record adds one observation of v nanoseconds. Negative values are clamped
// to zero (they can arise from clock adjustments mid-measurement).
func (h *H) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.total == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.total++
	b := bucket(v)
	if b >= numBuckets {
		h.overflow++
		return
	}
	h.counts[b]++
}

// Count returns the number of recorded observations.
func (h *H) Count() uint64 { return h.total }

// Min returns the smallest recorded value, or 0 if empty.
func (h *H) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value, or 0 if empty.
func (h *H) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Merge adds all observations recorded in o into h.
func (h *H) Merge(o *H) {
	if o.total == 0 {
		return
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.overflow += o.overflow
	for i, c := range o.counts {
		h.counts[i] += c
	}
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) of the recorded
// values, linearly interpolated within the bucket holding the target rank
// (so the error is bounded by the bucket width, ≈1.6% of the value, and a
// single-value bucket reports its exact edge). It returns 0 for an empty
// histogram.
func (h *H) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > rank {
			// Interpolate by the rank's position within the bucket: the
			// pos-th of c values in [lo, hi) sits at lo + width·pos/c.
			lo := bucketLow(i)
			width := bucketLow(i+1) - lo
			pos := rank - (seen - c)
			v := lo + int64(float64(width)*float64(pos)/float64(c))
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// Mean returns the approximate mean of the recorded values using bucket
// midpoints.
func (h *H) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		mid := float64(bucketLow(i)+bucketLow(i+1)-1) / 2
		sum += mid * float64(c)
	}
	// Overflowed values contribute at least the observed max.
	sum += float64(h.overflow) * float64(h.max)
	return sum / float64(h.total)
}

// CDFPoint is one point of a cumulative distribution: Fraction of
// observations were ≤ Value nanoseconds.
type CDFPoint struct {
	Value    int64
	Fraction float64
}

// CDF returns the cumulative distribution evaluated at each of the given
// values (which are sorted in place).
func (h *H) CDF(values []int64) []CDFPoint {
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	out := make([]CDFPoint, 0, len(values))
	for _, v := range values {
		out = append(out, CDFPoint{Value: v, Fraction: h.FractionBelow(v)})
	}
	return out
}

// FractionBelow returns the fraction of observations ≤ v. The answer is
// exact at bucket boundaries and otherwise an upper-bounded approximation
// including the whole bucket containing v.
func (h *H) FractionBelow(v int64) float64 {
	if h.total == 0 {
		return 0
	}
	if v < 0 {
		return 0
	}
	b := bucket(v)
	var seen uint64
	for i := 0; i <= b && i < numBuckets; i++ {
		seen += h.counts[i]
	}
	return float64(seen) / float64(h.total)
}

// String renders a short summary with common quantiles.
func (h *H) String() string {
	if h.total == 0 {
		return "hist{empty}"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "hist{n=%d mean=%.0fns", h.total, h.Mean())
	for _, q := range []float64{0.5, 0.8, 0.97, 0.999} {
		fmt.Fprintf(&b, " p%g=%dns", q*100, h.Quantile(q))
	}
	b.WriteString("}")
	return b.String()
}
