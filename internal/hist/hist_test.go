package hist

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"lcrq/internal/xrand"
)

func TestBucketMonotone(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<20; v += 37 {
		b := bucket(v)
		if b < prev {
			t.Fatalf("bucket not monotone at v=%d: %d < %d", v, b, prev)
		}
		prev = b
	}
}

func TestBucketLowRoundTrip(t *testing.T) {
	// Every bucket's low edge must map back to that bucket, and the value
	// one below must map to the previous bucket.
	for i := 1; i <= numBuckets-1; i++ {
		lo := bucketLow(i)
		if got := bucket(lo); got != i {
			t.Fatalf("bucket(bucketLow(%d)=%d) = %d", i, lo, got)
		}
		if got := bucket(lo - 1); got != i-1 {
			t.Fatalf("bucket(%d) = %d, want %d", lo-1, got, i-1)
		}
	}
}

func TestSmallValuesExact(t *testing.T) {
	var h H
	for v := int64(0); v < 32; v++ {
		h.Record(v)
	}
	for q := 0; q < 32; q++ {
		want := int64(q)
		if got := h.Quantile(float64(q) / 32); got != want {
			t.Fatalf("Quantile(%d/32) = %d, want %d", q, got, want)
		}
	}
}

func TestQuantileRelativeError(t *testing.T) {
	var h H
	rng := xrand.New(1)
	values := make([]int64, 0, 50000)
	for i := 0; i < 50000; i++ {
		v := int64(rng.Uintn(1_000_000)) + 1
		values = append(values, v)
		h.Record(v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999} {
		exact := values[int(q*float64(len(values)))]
		got := h.Quantile(q)
		relerr := math.Abs(float64(got-exact)) / float64(exact)
		if relerr > 0.04 {
			t.Fatalf("Quantile(%v) = %d, exact %d, relative error %.3f > 4%%",
				q, got, exact, relerr)
		}
	}
}

func TestNegativeClamped(t *testing.T) {
	var h H
	h.Record(-5)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatal("negative value not clamped to 0")
	}
}

func TestMinMax(t *testing.T) {
	var h H
	h.Record(100)
	h.Record(5)
	h.Record(70000)
	if h.Min() != 5 || h.Max() != 70000 {
		t.Fatalf("Min/Max = %d/%d", h.Min(), h.Max())
	}
}

func TestMerge(t *testing.T) {
	var a, b H
	for i := int64(1); i <= 1000; i++ {
		a.Record(i)
	}
	for i := int64(1001); i <= 2000; i++ {
		b.Record(i)
	}
	a.Merge(&b)
	if a.Count() != 2000 {
		t.Fatalf("Count = %d", a.Count())
	}
	if a.Min() != 1 || a.Max() != 2000 {
		t.Fatalf("Min/Max = %d/%d", a.Min(), a.Max())
	}
	med := a.Quantile(0.5)
	if med < 950 || med > 1100 {
		t.Fatalf("median after merge = %d, want ≈1000", med)
	}
	// Merging an empty histogram must not disturb min.
	var empty H
	a.Merge(&empty)
	if a.Min() != 1 {
		t.Fatal("merge with empty histogram changed min")
	}
	// Merging into an empty histogram must adopt the other's bounds.
	var c H
	c.Merge(&a)
	if c.Min() != 1 || c.Max() != 2000 || c.Count() != 2000 {
		t.Fatal("merge into empty histogram wrong")
	}
}

func TestFractionBelow(t *testing.T) {
	var h H
	for i := 0; i < 100; i++ {
		h.Record(int64(i)) // 0..99, all in the exact range
	}
	if f := h.FractionBelow(9); f != 0.10 {
		t.Fatalf("FractionBelow(9) = %v, want 0.10", f)
	}
	if f := h.FractionBelow(1 << 40); f != 1 {
		t.Fatalf("FractionBelow(huge) = %v, want 1", f)
	}
	if f := h.FractionBelow(-1); f != 0 {
		t.Fatalf("FractionBelow(-1) = %v, want 0", f)
	}
}

func TestCDFSortsAndEvaluates(t *testing.T) {
	var h H
	for i := int64(1); i <= 10; i++ {
		h.Record(i)
	}
	pts := h.CDF([]int64{10, 1, 5})
	if len(pts) != 3 || pts[0].Value != 1 || pts[2].Value != 10 {
		t.Fatalf("CDF points not sorted: %+v", pts)
	}
	if pts[2].Fraction != 1 {
		t.Fatalf("CDF at max = %v, want 1", pts[2].Fraction)
	}
	if pts[0].Fraction <= 0 || pts[0].Fraction >= pts[1].Fraction {
		t.Fatalf("CDF not increasing: %+v", pts)
	}
}

func TestMeanApproximation(t *testing.T) {
	var h H
	for i := 0; i < 1000; i++ {
		h.Record(1000)
	}
	m := h.Mean()
	if math.Abs(m-1000)/1000 > 0.04 {
		t.Fatalf("Mean = %v, want ≈1000", m)
	}
}

func TestStringSummary(t *testing.T) {
	var h H
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	s := h.String()
	for _, want := range []string{"n=1000", "p50=", "p97=", "mean="} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h H
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.String() != "hist{empty}" {
		t.Fatalf("String = %q", h.String())
	}
}

func TestQuantileQuickProperties(t *testing.T) {
	f := func(raw []uint32, q float64) bool {
		if len(raw) == 0 {
			return true
		}
		q = math.Abs(q)
		q -= math.Floor(q) // into [0,1)
		var h H
		var mx, mn int64 = 0, math.MaxInt64
		for _, r := range raw {
			v := int64(r % 1_000_000)
			h.Record(v)
			if v > mx {
				mx = v
			}
			if v < mn {
				mn = v
			}
		}
		got := h.Quantile(q)
		return got >= mn && got <= mx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketEdgesPinned(t *testing.T) {
	// The layout must resolve sub-100ns latencies finely: exact 1 ns
	// buckets below 64 ns and ≤2 ns wide buckets through the first octave
	// above it, where the uncontended enqueue/dequeue fast path lives.
	for v := int64(0); v < 64; v++ {
		if got := BucketLow(Bucket(v)); got != v {
			t.Fatalf("sub-64ns bucket not exact: v=%d maps to edge %d", v, got)
		}
	}
	for v := int64(64); v < 128; v++ {
		b := Bucket(v)
		if w := BucketLow(b+1) - BucketLow(b); w > 2 {
			t.Fatalf("bucket width at %dns = %d, want ≤2", v, w)
		}
	}
	// Pin a few absolute edges so layout changes are deliberate.
	edges := map[int]int64{
		0:   0,
		63:  63,
		64:  64, // first octave-1 bucket == subBuckets
		128: 128,
	}
	for b, lo := range edges {
		if got := BucketLow(b); got != lo {
			t.Fatalf("BucketLow(%d) = %d, want %d", b, got, lo)
		}
	}
	// The top of the layout must still exceed any plausible op latency.
	if top := BucketLow(NumBuckets); top < int64(1)<<36 {
		t.Fatalf("layout tops out at %dns, want ≥2^36", top)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	// 1000 uniform values in one octave: interpolation must land within a
	// bucket width of the exact quantile, not at the bucket's upper edge.
	var h H
	for i := int64(0); i < 1000; i++ {
		h.Record(1000 + i)
	}
	for _, q := range []float64{0.25, 0.5, 0.75, 0.99} {
		exact := 1000 + int64(q*1000)
		got := h.Quantile(q)
		width := BucketLow(Bucket(exact)+1) - BucketLow(Bucket(exact))
		if got < exact-width || got > exact+width {
			t.Fatalf("Quantile(%v) = %d, want %d ± %d", q, got, exact, width)
		}
	}
	// A single-value histogram reports that value at every quantile.
	var one H
	one.Record(5000)
	for _, q := range []float64{0, 0.5, 1} {
		if got := one.Quantile(q); got < 4900 || got > 5000 {
			t.Fatalf("single-value Quantile(%v) = %d, want ≈5000", q, got)
		}
	}
}

func TestFromBuckets(t *testing.T) {
	var direct H
	counts := make([]uint64, NumBuckets)
	rng := xrand.New(7)
	for i := 0; i < 10000; i++ {
		v := int64(rng.Uintn(500000))
		direct.Record(v)
		counts[Bucket(v)]++
	}
	rebuilt := FromBuckets(counts, 0)
	if rebuilt.Count() != direct.Count() {
		t.Fatalf("Count = %d, want %d", rebuilt.Count(), direct.Count())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.999} {
		a, b := rebuilt.Quantile(q), direct.Quantile(q)
		// Min/max are edge-approximate in the rebuilt histogram, so allow
		// one bucket width of slack.
		width := BucketLow(Bucket(b)+1) - BucketLow(Bucket(b))
		if a < b-width || a > b+width {
			t.Fatalf("Quantile(%v): rebuilt %d vs direct %d", q, a, b)
		}
	}
}

func TestBucketOverflowClamped(t *testing.T) {
	if Bucket(-1) != 0 {
		t.Fatal("negative value must map to bucket 0")
	}
	if Bucket(int64(1)<<62) != NumBuckets {
		t.Fatal("huge value must map to the overflow pseudo-bucket")
	}
	h := FromBuckets(make([]uint64, NumBuckets), 3)
	if h.Count() != 3 || h.Quantile(0.5) != BucketLow(NumBuckets) {
		t.Fatalf("overflow-only histogram: count=%d p50=%d", h.Count(), h.Quantile(0.5))
	}
}

func BenchmarkRecord(b *testing.B) {
	var h H
	rng := xrand.New(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(rng.Uintn(100000)))
	}
}
