//go:build !linux

package affinity

const canPin = false

func pinSelf(cpu int) error { return ErrUnsupported }
