// Package affinity reproduces the thread-placement part of the paper's
// methodology: "Each thread is pinned to a specific hardware thread, to
// avoid interference from the operating system scheduler", and the
// round-robin cross-processor placement of the four-processor experiments.
//
// Pinning is done with raw sched_setaffinity system calls on Linux (no cgo,
// no external modules); other platforms compile to a no-op that reports
// ErrUnsupported. The machine topology — which CPU belongs to which physical
// package ("cluster" in the paper's terminology) — is parsed from
// /sys/devices/system/cpu. When the host exposes fewer packages than an
// experiment requires (including the single-CPU container this repository
// was developed in), callers fall back to simulated clusters: a stable
// worker-id → cluster mapping that preserves the batching behaviour of the
// hierarchical algorithms without the cache-locality effects. Every harness
// result records which mode was used.
package affinity

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// ErrUnsupported is returned where the platform cannot pin threads.
var ErrUnsupported = errors.New("affinity: thread pinning unsupported on this platform")

// CPU describes one logical processor.
type CPU struct {
	ID      int // logical CPU number (cpuN)
	Package int // physical package (socket) id; the paper's "cluster"
	Core    int // core id within the package
}

// Topology is the set of online logical CPUs grouped by package.
type Topology struct {
	CPUs     []CPU
	Packages [][]int // Packages[p] lists logical CPU ids in package p (dense index)
}

// NumCPUs returns the number of online logical CPUs.
func (t *Topology) NumCPUs() int { return len(t.CPUs) }

// NumPackages returns the number of physical packages.
func (t *Topology) NumPackages() int { return len(t.Packages) }

// Detect reads the host topology from sysfs. If sysfs is unavailable it
// falls back to a single synthetic package containing runtime.NumCPU()
// logical CPUs.
func Detect() *Topology {
	t, err := detectSysfs("/sys/devices/system/cpu")
	if err != nil || t.NumCPUs() == 0 {
		return synthetic(runtime.NumCPU())
	}
	return t
}

// synthetic builds a topology of n CPUs in one package, used when sysfs is
// unreadable.
func synthetic(n int) *Topology {
	if n < 1 {
		n = 1
	}
	t := &Topology{}
	pkg := make([]int, 0, n)
	for i := 0; i < n; i++ {
		t.CPUs = append(t.CPUs, CPU{ID: i, Package: 0, Core: i})
		pkg = append(pkg, i)
	}
	t.Packages = [][]int{pkg}
	return t
}

func detectSysfs(root string) (*Topology, error) {
	online, err := os.ReadFile(root + "/online")
	if err != nil {
		return nil, err
	}
	ids, err := ParseCPUList(strings.TrimSpace(string(online)))
	if err != nil {
		return nil, err
	}
	t := &Topology{}
	pkgIndex := map[int]int{} // physical_package_id -> dense index
	for _, id := range ids {
		base := fmt.Sprintf("%s/cpu%d/topology", root, id)
		pkg := readIntFile(base+"/physical_package_id", 0)
		core := readIntFile(base+"/core_id", id)
		t.CPUs = append(t.CPUs, CPU{ID: id, Package: pkg, Core: core})
		if _, ok := pkgIndex[pkg]; !ok {
			pkgIndex[pkg] = len(pkgIndex)
		}
	}
	// Dense, deterministic package numbering ordered by physical id.
	physIDs := make([]int, 0, len(pkgIndex))
	for p := range pkgIndex {
		physIDs = append(physIDs, p)
	}
	sort.Ints(physIDs)
	dense := map[int]int{}
	for i, p := range physIDs {
		dense[p] = i
	}
	t.Packages = make([][]int, len(physIDs))
	for i := range t.CPUs {
		d := dense[t.CPUs[i].Package]
		t.CPUs[i].Package = d
		t.Packages[d] = append(t.Packages[d], t.CPUs[i].ID)
	}
	return t, nil
}

func readIntFile(path string, def int) int {
	b, err := os.ReadFile(path)
	if err != nil {
		return def
	}
	v, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil {
		return def
	}
	return v
}

// ParseCPUList parses the kernel's CPU list format, e.g. "0-3,8,10-11".
func ParseCPUList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if lo, hi, ok := strings.Cut(part, "-"); ok {
			a, err := strconv.Atoi(lo)
			if err != nil {
				return nil, fmt.Errorf("affinity: bad cpu list %q: %w", s, err)
			}
			b, err := strconv.Atoi(hi)
			if err != nil {
				return nil, fmt.Errorf("affinity: bad cpu list %q: %w", s, err)
			}
			if b < a {
				return nil, fmt.Errorf("affinity: bad cpu range %q", part)
			}
			for v := a; v <= b; v++ {
				out = append(out, v)
			}
		} else {
			v, err := strconv.Atoi(part)
			if err != nil {
				return nil, fmt.Errorf("affinity: bad cpu list %q: %w", s, err)
			}
			out = append(out, v)
		}
	}
	return out, nil
}

// Placement maps each of n workers to a logical CPU and a cluster id,
// implementing the paper's two pinning policies.
type Placement struct {
	CPUOf     []int // CPUOf[w] is the logical CPU for worker w, or -1
	ClusterOf []int // ClusterOf[w] is the cluster id for worker w
	Clusters  int   // number of distinct clusters used
	Simulated bool  // true when clusters do not correspond to hardware packages
}

// SingleCluster places n workers within one package, filling its CPUs in
// order and wrapping (oversubscription) — the paper's single-processor
// executions. If the package has fewer CPUs than workers the extra workers
// share CPUs, which is exactly the oversubscribed regime of Figure 6b.
func (t *Topology) SingleCluster(n int) *Placement {
	p := &Placement{CPUOf: make([]int, n), ClusterOf: make([]int, n), Clusters: 1}
	cpus := t.Packages[0]
	for w := 0; w < n; w++ {
		p.CPUOf[w] = cpus[w%len(cpus)]
	}
	return p
}

// RoundRobin distributes n workers across clusters packages round-robin —
// the paper's four-processor executions where "the cross-processor cache
// coherency cost always exists". If the hardware has fewer packages than
// requested, clusters are simulated: workers still receive round-robin
// cluster ids (so hierarchical algorithms batch identically) but share the
// available CPUs.
func (t *Topology) RoundRobin(n, clusters int) *Placement {
	if clusters <= 0 {
		clusters = t.NumPackages()
	}
	p := &Placement{CPUOf: make([]int, n), ClusterOf: make([]int, n), Clusters: clusters}
	if clusters > t.NumPackages() {
		p.Simulated = true
	}
	next := make([]int, t.NumPackages())
	for w := 0; w < n; w++ {
		cl := w % clusters
		p.ClusterOf[w] = cl
		if p.Simulated {
			// Spread over whatever CPUs exist.
			all := t.CPUs
			p.CPUOf[w] = all[w%len(all)].ID
			continue
		}
		pkg := t.Packages[cl]
		p.CPUOf[w] = pkg[next[cl]%len(pkg)]
		next[cl]++
	}
	return p
}

// PinSelf pins the calling goroutine's OS thread to the given logical CPU.
// Callers must have locked the goroutine to its thread with
// runtime.LockOSThread first. Returns ErrUnsupported on non-Linux builds.
func PinSelf(cpu int) error { return pinSelf(cpu) }

// CanPin reports whether PinSelf can work on this platform.
func CanPin() bool { return canPin }
