package affinity

import (
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"
)

func TestParseCPUList(t *testing.T) {
	cases := []struct {
		in   string
		want []int
		err  bool
	}{
		{"", nil, false},
		{"0", []int{0}, false},
		{"0-3", []int{0, 1, 2, 3}, false},
		{"0-1,4,6-7", []int{0, 1, 4, 6, 7}, false},
		{" 2 , 3 ", []int{2, 3}, false},
		{"3-1", nil, true},
		{"x", nil, true},
		{"1-y", nil, true},
		{"z-2", nil, true},
	}
	for _, c := range cases {
		got, err := ParseCPUList(c.in)
		if c.err {
			if err == nil {
				t.Fatalf("ParseCPUList(%q): expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ParseCPUList(%q): %v", c.in, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("ParseCPUList(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ParseCPUList(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

// writeFakeSysfs builds a sysfs-like tree with the given cpu→package map.
func writeFakeSysfs(t *testing.T, pkgs map[int]int, online string) string {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "online"), []byte(online+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for cpu, pkg := range pkgs {
		dir := filepath.Join(root, "cpu"+strconv.Itoa(cpu), "topology")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		os.WriteFile(filepath.Join(dir, "physical_package_id"), []byte(strconv.Itoa(pkg)+"\n"), 0o644)
		os.WriteFile(filepath.Join(dir, "core_id"), []byte(strconv.Itoa(cpu%4)+"\n"), 0o644)
	}
	return root
}

func TestDetectSysfsTwoPackages(t *testing.T) {
	root := writeFakeSysfs(t, map[int]int{0: 3, 1: 3, 2: 7, 3: 7}, "0-3")
	topo, err := detectSysfs(root)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumCPUs() != 4 || topo.NumPackages() != 2 {
		t.Fatalf("got %d cpus, %d packages", topo.NumCPUs(), topo.NumPackages())
	}
	// Physical ids 3 and 7 must be densified to 0 and 1 in order.
	if topo.CPUs[0].Package != 0 || topo.CPUs[2].Package != 1 {
		t.Fatalf("dense packages wrong: %+v", topo.CPUs)
	}
	if len(topo.Packages[0]) != 2 || len(topo.Packages[1]) != 2 {
		t.Fatalf("package membership wrong: %+v", topo.Packages)
	}
}

func TestDetectSysfsMissingTopologyFiles(t *testing.T) {
	root := t.TempDir()
	os.WriteFile(filepath.Join(root, "online"), []byte("0-1\n"), 0o644)
	topo, err := detectSysfs(root)
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: package 0, core = cpu id.
	if topo.NumPackages() != 1 || topo.NumCPUs() != 2 {
		t.Fatalf("fallback topology wrong: %+v", topo)
	}
}

func TestDetectNeverEmpty(t *testing.T) {
	topo := Detect()
	if topo.NumCPUs() < 1 || topo.NumPackages() < 1 {
		t.Fatalf("Detect returned empty topology: %+v", topo)
	}
}

func TestSyntheticClampsToOne(t *testing.T) {
	topo := synthetic(0)
	if topo.NumCPUs() != 1 {
		t.Fatalf("synthetic(0) has %d cpus", topo.NumCPUs())
	}
}

func TestSingleClusterPlacement(t *testing.T) {
	root := writeFakeSysfs(t, map[int]int{0: 0, 1: 0, 2: 1, 3: 1}, "0-3")
	topo, _ := detectSysfs(root)
	p := topo.SingleCluster(5)
	if p.Clusters != 1 || p.Simulated {
		t.Fatalf("placement: %+v", p)
	}
	// Workers stay inside package 0 and wrap.
	for w, cpu := range p.CPUOf {
		if cpu != topo.Packages[0][w%2] {
			t.Fatalf("worker %d on cpu %d, want package-0 cpu", w, cpu)
		}
	}
}

func TestRoundRobinHardwareClusters(t *testing.T) {
	root := writeFakeSysfs(t, map[int]int{0: 0, 1: 0, 2: 1, 3: 1}, "0-3")
	topo, _ := detectSysfs(root)
	p := topo.RoundRobin(4, 2)
	if p.Simulated {
		t.Fatal("should not simulate with 2 packages available")
	}
	wantCluster := []int{0, 1, 0, 1}
	for w := range wantCluster {
		if p.ClusterOf[w] != wantCluster[w] {
			t.Fatalf("worker %d cluster = %d, want %d", w, p.ClusterOf[w], wantCluster[w])
		}
	}
	// Worker 0 and 2 must be on package 0's CPUs, 1 and 3 on package 1's.
	if p.CPUOf[0] != 0 || p.CPUOf[2] != 1 || p.CPUOf[1] != 2 || p.CPUOf[3] != 3 {
		t.Fatalf("cpu placement: %v", p.CPUOf)
	}
}

func TestRoundRobinSimulatedClusters(t *testing.T) {
	topo := synthetic(2)
	p := topo.RoundRobin(8, 4)
	if !p.Simulated {
		t.Fatal("expected simulated clusters on 1-package topology")
	}
	if p.Clusters != 4 {
		t.Fatalf("Clusters = %d", p.Clusters)
	}
	for w := 0; w < 8; w++ {
		if p.ClusterOf[w] != w%4 {
			t.Fatalf("worker %d cluster = %d", w, p.ClusterOf[w])
		}
		if p.CPUOf[w] != w%2 {
			t.Fatalf("worker %d cpu = %d", w, p.CPUOf[w])
		}
	}
}

func TestRoundRobinDefaultClusterCount(t *testing.T) {
	topo := synthetic(4)
	p := topo.RoundRobin(4, 0)
	if p.Clusters != 1 || p.Simulated {
		t.Fatalf("default cluster count: %+v", p)
	}
}

func TestPinSelf(t *testing.T) {
	if !CanPin() {
		t.Skip("pinning unsupported")
	}
	runtime.LockOSThread()
	defer runtime.UnlockOSThread()
	if err := PinSelf(0); err != nil {
		t.Fatalf("PinSelf(0): %v", err)
	}
	if err := PinSelf(-1); err == nil {
		t.Fatal("PinSelf(-1) should fail")
	}
	if err := PinSelf(1 << 20); err == nil {
		t.Fatal("PinSelf(huge) should fail")
	}
}
