//go:build linux

package affinity

import (
	"fmt"
	"syscall"
	"unsafe"
)

const canPin = true

// pinSelf restricts the calling thread's affinity mask to a single CPU via
// the raw sched_setaffinity syscall (tid 0 = calling thread).
func pinSelf(cpu int) error {
	if cpu < 0 || cpu >= 1024 {
		return fmt.Errorf("affinity: cpu %d out of supported range", cpu)
	}
	var mask [1024 / 64]uint64
	mask[cpu/64] = 1 << (uint(cpu) % 64)
	_, _, errno := syscall.RawSyscall(syscall.SYS_SCHED_SETAFFINITY,
		0, uintptr(len(mask)*8), uintptr(unsafe.Pointer(&mask[0])))
	if errno != 0 {
		return fmt.Errorf("affinity: sched_setaffinity(cpu %d): %w", cpu, errno)
	}
	return nil
}
