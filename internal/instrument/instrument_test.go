package instrument

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAccumulatesEveryField(t *testing.T) {
	// Fill a Counters with distinct values per field via reflection so this
	// test fails if a newly added field is forgotten in Add. The primary
	// guard is lcrqlint's statsmirror analyzer (//lcrq:mirror Counters on
	// Add); this is the runtime backstop.
	mk := func(base uint64) *Counters {
		c := &Counters{}
		v := reflect.ValueOf(c).Elem()
		for i := 0; i < v.NumField(); i++ {
			v.Field(i).SetUint(base + uint64(i))
		}
		return c
	}
	a, b := mk(100), mk(1000)
	want := &Counters{}
	wv := reflect.ValueOf(want).Elem()
	for i := 0; i < wv.NumField(); i++ {
		wv.Field(i).SetUint(100 + 1000 + 2*uint64(i))
	}
	a.Add(b)
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("Add missed a field:\ngot  %+v\nwant %+v", a, want)
	}
}

func TestAtomicCountersRoundTrip(t *testing.T) {
	// Every Counters field must be uint64: AtomicCounters mirrors the struct
	// field-by-field through atomic.Uint64 slots.
	rt := reflect.TypeOf(Counters{})
	for i := 0; i < rt.NumField(); i++ {
		if rt.Field(i).Type.Kind() != reflect.Uint64 {
			t.Fatalf("Counters.%s is %v, want uint64", rt.Field(i).Name, rt.Field(i).Type)
		}
	}
	c := &Counters{}
	v := reflect.ValueOf(c).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetUint(7 + uint64(i)*13)
	}
	a := NewAtomicCounters()
	a.Store(c)
	got := a.Load()
	if !reflect.DeepEqual(&got, c) {
		t.Fatalf("round trip lost fields:\ngot  %+v\nwant %+v", got, c)
	}
}

func TestOps(t *testing.T) {
	c := Counters{Enqueues: 3, Dequeues: 5}
	if c.Ops() != 8 {
		t.Fatalf("Ops = %d, want 8", c.Ops())
	}
}

func TestAtomicsPerOp(t *testing.T) {
	c := Counters{Enqueues: 5, Dequeues: 5, FAA: 10, CAS2: 10, CAS: 5, SWAP: 3, TAS: 2}
	if got := c.AtomicsPerOp(); got != 3.0 {
		t.Fatalf("AtomicsPerOp = %v, want 3.0", got)
	}
}

func TestZeroOpsNoDivideByZero(t *testing.T) {
	var c Counters
	if c.AtomicsPerOp() != 0 || c.CASFailuresPerOp() != 0 {
		t.Fatal("expected 0 for empty counters")
	}
}

func TestCASFailuresPerOp(t *testing.T) {
	c := Counters{Enqueues: 2, Dequeues: 2, CASFail: 3, CAS2Fail: 1}
	if got := c.CASFailuresPerOp(); got != 1.0 {
		t.Fatalf("CASFailuresPerOp = %v, want 1.0", got)
	}
}

func TestAddCommutative(t *testing.T) {
	f := func(a, b Counters) bool {
		x, y := a, b
		x.Add(&b)
		y.Add(&a)
		// y started as b and accumulated a; compare to x (a accumulated b).
		return reflect.DeepEqual(x, y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringIncludesCombinerStats(t *testing.T) {
	c := Counters{Enqueues: 1, CombinerRuns: 2, Combined: 10}
	s := c.String()
	if !strings.Contains(s, "avg-batch=5.0") {
		t.Fatalf("String() = %q, want combiner batch stats", s)
	}
	var zero Counters
	if strings.Contains(zero.String(), "combiner") {
		t.Fatal("zero counters should omit combiner stats")
	}
}
