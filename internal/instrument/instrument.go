// Package instrument defines the per-operation statistics counters used to
// reproduce Tables 2 and 3 of the LCRQ paper.
//
// The paper reports per-operation latency, instruction counts, atomic
// operation counts, and cache-miss counts obtained from hardware performance
// counters. Hardware counters are not reachable from portable Go, so this
// reproduction substitutes direct software counts of the quantities the
// paper uses those columns to explain: how many atomic instructions an
// operation issues and how much work is wasted on failed CAS attempts and
// protocol retries. See DESIGN.md §1 for the substitution rationale.
//
// Counters are plain (non-atomic) fields: each queue handle owns one Counters
// value that is only mutated by the handle's thread and aggregated after the
// workers have stopped, so counting adds no synchronization to the measured
// fast path.
package instrument

import (
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
)

// Counters accumulates per-thread operation statistics.
type Counters struct {
	Enqueues uint64 // completed enqueue operations
	Dequeues uint64 // completed dequeue operations (including EMPTY)
	Empty    uint64 // dequeues that returned EMPTY

	FAA      uint64 // fetch-and-add instructions issued
	SWAP     uint64 // swap (XCHG) instructions issued
	TAS      uint64 // test-and-set instructions issued
	CAS      uint64 // single-width CAS attempts
	CASFail  uint64 // single-width CAS attempts that failed
	CAS2     uint64 // double-width CAS attempts
	CAS2Fail uint64 // double-width CAS attempts that failed

	CellRetries uint64 // CRQ: extra head/tail F&As needed beyond the first
	EmptyTrans  uint64 // CRQ: empty transitions performed
	UnsafeTrans uint64 // CRQ: unsafe transitions performed
	SpinWaits   uint64 // CRQ: bounded waits for a matching enqueuer
	Closes      uint64 // CRQ: times this thread closed a ring

	ThresholdEmpty uint64 // SCQ: emptiness verdicts reached via the threshold trick
	FreeEmpty      uint64 // SCQ: enqueues that found the free-index queue empty (ring full)
	Appends     uint64 // LCRQ: new CRQs appended to the list
	Recycled    uint64 // LCRQ: rings obtained from the recycler

	BatchEnqueues uint64 // LCRQ: EnqueueBatch calls (constituent items count in Enqueues)
	BatchDequeues uint64 // LCRQ: DequeueBatch calls (constituent items count in Dequeues)
	BatchSpill    uint64 // LCRQ: batches that spilled into a freshly appended ring
	GateSpins     uint64 // LCRQ+H: cluster admission gate spin iterations

	AdaptRaises uint64 // adaptive contention: MIAD backoff raises (failed cell attempts)
	AdaptDecays uint64 // adaptive contention: backoff decays (completed operations)
	AdaptSpins  uint64 // adaptive contention: total pause iterations burned

	TraceArms uint64 // tracing: enqueue-side stamps armed (sampled + forced)
	TraceHits uint64 // tracing: stamped items claimed by this thread's dequeues

	CombinerRuns uint64 // combining queues: times this thread combined
	Combined     uint64 // combining queues: operations applied while combining
	LockAcq      uint64 // lock acquisitions (blocking queues)
}

// Add accumulates o into c. The mirror annotation makes lcrqlint's
// statsmirror analyzer verify that no Counters field is dropped from the
// sum; TestAddAccumulatesEveryField is the runtime backstop.
//
//lcrq:mirror Counters
func (c *Counters) Add(o *Counters) {
	c.Enqueues += o.Enqueues
	c.Dequeues += o.Dequeues
	c.Empty += o.Empty
	c.FAA += o.FAA
	c.SWAP += o.SWAP
	c.TAS += o.TAS
	c.CAS += o.CAS
	c.CASFail += o.CASFail
	c.CAS2 += o.CAS2
	c.CAS2Fail += o.CAS2Fail
	c.CellRetries += o.CellRetries
	c.EmptyTrans += o.EmptyTrans
	c.UnsafeTrans += o.UnsafeTrans
	c.SpinWaits += o.SpinWaits
	c.Closes += o.Closes
	c.ThresholdEmpty += o.ThresholdEmpty
	c.FreeEmpty += o.FreeEmpty
	c.Appends += o.Appends
	c.Recycled += o.Recycled
	c.BatchEnqueues += o.BatchEnqueues
	c.BatchDequeues += o.BatchDequeues
	c.BatchSpill += o.BatchSpill
	c.GateSpins += o.GateSpins
	c.AdaptRaises += o.AdaptRaises
	c.AdaptDecays += o.AdaptDecays
	c.AdaptSpins += o.AdaptSpins
	c.TraceArms += o.TraceArms
	c.TraceHits += o.TraceHits
	c.CombinerRuns += o.CombinerRuns
	c.Combined += o.Combined
	c.LockAcq += o.LockAcq
}

// Ops returns the total number of completed operations.
func (c *Counters) Ops() uint64 { return c.Enqueues + c.Dequeues }

// AtomicsPerOp returns the average number of atomic instructions (F&A, SWAP,
// T&S, CAS, CAS2) issued per completed operation — the "Atomic operations"
// row of Tables 2 and 3.
func (c *Counters) AtomicsPerOp() float64 {
	ops := c.Ops()
	if ops == 0 {
		return 0
	}
	atomics := c.FAA + c.SWAP + c.TAS + c.CAS + c.CAS2
	return float64(atomics) / float64(ops)
}

// CASFailuresPerOp returns the average number of failed CAS and CAS2
// attempts per completed operation — the quantity the paper identifies as
// the cause of contention meltdowns.
func (c *Counters) CASFailuresPerOp() float64 {
	ops := c.Ops()
	if ops == 0 {
		return 0
	}
	return float64(c.CASFail+c.CAS2Fail) / float64(ops)
}

// NumFields returns the number of counter fields in Counters. Every field is
// a uint64, a property AtomicCounters relies on (and a test enforces).
func NumFields() int { return counterType.NumField() }

var counterType = reflect.TypeOf(Counters{})

// AtomicCounters is an atomically readable mirror of a Counters value: the
// owning thread Stores its plain counters into it at a coarse cadence, and
// any thread may Load a torn-free (per-field consistent) copy concurrently.
// This is the publication half of the telemetry layer's counter aggregation:
// the fast path keeps its plain single-writer fields, and only the amortized
// publication touches atomics. Field mapping is by reflection over Counters,
// so newly added counters are picked up automatically.
type AtomicCounters struct {
	v []atomic.Uint64
}

// NewAtomicCounters returns an empty mirror sized to Counters.
func NewAtomicCounters() *AtomicCounters {
	return &AtomicCounters{v: make([]atomic.Uint64, NumFields())}
}

// Store publishes a snapshot of c. Only the owner of c may call Store, and
// not concurrently with itself.
func (a *AtomicCounters) Store(c *Counters) {
	rv := reflect.ValueOf(c).Elem()
	for i := range a.v {
		a.v[i].Store(rv.Field(i).Uint())
	}
}

// Load returns the most recently published snapshot. Safe to call from any
// thread; fields published by different Store calls may be mixed, which is
// fine for monotone counters read for monitoring.
func (a *AtomicCounters) Load() Counters {
	var c Counters
	rv := reflect.ValueOf(&c).Elem()
	for i := range a.v {
		rv.Field(i).SetUint(a.v[i].Load())
	}
	return c
}

// String renders the counters in a compact single-line form for logs.
func (c *Counters) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ops=%d (enq=%d deq=%d empty=%d)", c.Ops(), c.Enqueues, c.Dequeues, c.Empty)
	fmt.Fprintf(&b, " atomics/op=%.2f casfail/op=%.3f", c.AtomicsPerOp(), c.CASFailuresPerOp())
	if c.Closes+c.Appends > 0 {
		fmt.Fprintf(&b, " closes=%d appends=%d recycled=%d", c.Closes, c.Appends, c.Recycled)
	}
	if c.CombinerRuns > 0 {
		fmt.Fprintf(&b, " combiner: runs=%d avg-batch=%.1f", c.CombinerRuns,
			float64(c.Combined)/float64(c.CombinerRuns))
	}
	return b.String()
}
