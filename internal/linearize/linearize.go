// Package linearize records concurrent operation histories and decides
// whether they are linearizable with respect to the sequential FIFO queue
// specification — the correctness condition of the paper (Herlihy & Wing,
// TOPLAS 1990).
//
// The checker is a Wing & Gong style exhaustive search with memoization:
// at each step it tries to linearize any operation that is "minimal" in the
// real-time partial order (every operation that returned before it was
// invoked has already been linearized) and whose effect is consistent with
// the current abstract queue state. The search is exponential in the worst
// case, so the test suite keeps histories small (tens of operations, a few
// threads); the Recorder's global clock makes real-time ordering precise.
package linearize

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Kind distinguishes the two queue operations.
type Kind uint8

const (
	// Enq is enqueue(Value) → OK.
	Enq Kind = iota
	// Deq is dequeue() → (Value, OK); OK=false means EMPTY.
	Deq
)

// Op is one completed operation with its real-time interval. Invoke and
// Return are logical timestamps from the Recorder's global clock, so
// Invoke < Return for every op and intervals are comparable across threads.
type Op struct {
	Thread int
	Kind   Kind
	Value  uint64 // enqueued value, or dequeued value when OK
	OK     bool   // Deq only: false = EMPTY
	Invoke int64
	Return int64
}

func (o Op) String() string {
	switch {
	case o.Kind == Enq:
		return fmt.Sprintf("T%d enq(%d)@[%d,%d]", o.Thread, o.Value, o.Invoke, o.Return)
	case o.OK:
		return fmt.Sprintf("T%d deq()=%d@[%d,%d]", o.Thread, o.Value, o.Invoke, o.Return)
	default:
		return fmt.Sprintf("T%d deq()=EMPTY@[%d,%d]", o.Thread, o.Invoke, o.Return)
	}
}

// History is a set of completed operations.
type History []Op

// Recorder collects a History from concurrently running workers. Each
// worker owns its thread slot; Now and Append are safe to call
// concurrently.
type Recorder struct {
	clock atomic.Int64
	logs  [][]Op
}

// NewRecorder prepares a recorder for the given number of worker threads.
func NewRecorder(threads int) *Recorder {
	return &Recorder{logs: make([][]Op, threads)}
}

// Now returns the next logical timestamp.
func (r *Recorder) Now() int64 { return r.clock.Add(1) }

// Append records a completed op for the given thread. Only that thread may
// append to its slot.
func (r *Recorder) Append(thread int, op Op) {
	op.Thread = thread
	r.logs[thread] = append(r.logs[thread], op)
}

// History merges all per-thread logs. Call only after workers have stopped.
func (r *Recorder) History() History {
	var h History
	for _, l := range r.logs {
		h = append(h, l...)
	}
	return h
}

// Check reports whether h is linearizable as a FIFO queue, i.e. whether
// some total order of the operations (a) respects real-time precedence and
// (b) is a legal sequential queue execution.
func Check(h History) bool {
	c := &checker{ops: h, memo: map[string]struct{}{}}
	// Sorting by invocation makes candidate scanning deterministic and the
	// memo keys canonical.
	sort.Slice(c.ops, func(i, j int) bool { return c.ops[i].Invoke < c.ops[j].Invoke })
	c.linearized = make([]bool, len(c.ops))
	return c.dfs(nil, 0)
}

type checker struct {
	ops        []Op
	linearized []bool
	memo       map[string]struct{}
}

// key encodes (linearized set, queue contents). Two search states with the
// same key have identical futures, so a failed state is never re-explored.
func (c *checker) key(queue []uint64) string {
	var b strings.Builder
	b.Grow(len(c.linearized) + 8*len(queue))
	for _, l := range c.linearized {
		if l {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	b.WriteByte('|')
	for _, v := range queue {
		fmt.Fprintf(&b, "%d,", v)
	}
	return b.String()
}

func (c *checker) dfs(queue []uint64, done int) bool {
	if done == len(c.ops) {
		return true
	}
	k := c.key(queue)
	if _, seen := c.memo[k]; seen {
		return false
	}

	// minReturn over pending ops: an op is a legal next linearization
	// point only if no pending op returned strictly before it was invoked.
	minReturn := int64(1<<63 - 1)
	for i, op := range c.ops {
		if !c.linearized[i] && op.Return < minReturn {
			minReturn = op.Return
		}
	}

	for i, op := range c.ops {
		if c.linearized[i] || op.Invoke > minReturn {
			continue
		}
		var next []uint64
		switch {
		case op.Kind == Enq:
			next = append(append([]uint64{}, queue...), op.Value)
		case op.OK:
			if len(queue) == 0 || queue[0] != op.Value {
				continue
			}
			next = append([]uint64{}, queue[1:]...)
		default: // EMPTY
			if len(queue) != 0 {
				continue
			}
			next = nil
		}
		c.linearized[i] = true
		if c.dfs(next, done+1) {
			return true
		}
		c.linearized[i] = false
	}
	c.memo[k] = struct{}{}
	return false
}
