package linearize

import (
	"strings"
	"sync"
	"testing"
)

// seqOp builds completed sequential ops with explicit timestamps.
func enq(th int, v uint64, inv, ret int64) Op {
	return Op{Thread: th, Kind: Enq, Value: v, Invoke: inv, Return: ret}
}
func deq(th int, v uint64, inv, ret int64) Op {
	return Op{Thread: th, Kind: Deq, Value: v, OK: true, Invoke: inv, Return: ret}
}
func deqEmpty(th int, inv, ret int64) Op {
	return Op{Thread: th, Kind: Deq, Invoke: inv, Return: ret}
}

func TestEmptyHistory(t *testing.T) {
	if !Check(nil) {
		t.Fatal("empty history must be linearizable")
	}
}

func TestSequentialLegal(t *testing.T) {
	h := History{
		enq(0, 1, 1, 2),
		enq(0, 2, 3, 4),
		deq(0, 1, 5, 6),
		deq(0, 2, 7, 8),
		deqEmpty(0, 9, 10),
	}
	if !Check(h) {
		t.Fatal("legal sequential history rejected")
	}
}

func TestSequentialFIFOViolation(t *testing.T) {
	h := History{
		enq(0, 1, 1, 2),
		enq(0, 2, 3, 4),
		deq(0, 2, 5, 6), // wrong: 1 must come out first
	}
	if Check(h) {
		t.Fatal("FIFO violation accepted")
	}
}

func TestDequeueFromFuture(t *testing.T) {
	h := History{
		deq(0, 7, 1, 2), // returns before the enqueue is invoked
		enq(0, 7, 3, 4),
	}
	if Check(h) {
		t.Fatal("dequeue of a not-yet-enqueued value accepted")
	}
}

func TestSpuriousEmpty(t *testing.T) {
	h := History{
		enq(0, 1, 1, 2),
		deqEmpty(1, 3, 4), // queue provably non-empty throughout
		deq(1, 1, 5, 6),
	}
	if Check(h) {
		t.Fatal("EMPTY between enqueue and dequeue accepted")
	}
}

func TestConcurrentEmptyAllowed(t *testing.T) {
	// EMPTY overlapping the enqueue may linearize before it.
	h := History{
		enq(0, 1, 1, 5),
		deqEmpty(1, 2, 3), // concurrent with the enqueue
		deq(1, 1, 6, 7),
	}
	if !Check(h) {
		t.Fatal("legal concurrent EMPTY rejected")
	}
}

func TestConcurrentReorderAllowed(t *testing.T) {
	// Two overlapping enqueues may linearize in either order, so a dequeue
	// order of (2, 1) is legal.
	h := History{
		enq(0, 1, 1, 10),
		enq(1, 2, 2, 9),
		deq(0, 2, 11, 12),
		deq(1, 1, 13, 14),
	}
	if !Check(h) {
		t.Fatal("legal reordering of overlapping enqueues rejected")
	}
}

func TestNonOverlappingEnqueuesOrdered(t *testing.T) {
	// enq(1) returns before enq(2) is invoked, so dequeues must observe
	// 1 before 2.
	h := History{
		enq(0, 1, 1, 2),
		enq(1, 2, 3, 4),
		deq(0, 2, 5, 6),
		deq(1, 1, 7, 8),
	}
	if Check(h) {
		t.Fatal("real-time order violation accepted")
	}
}

func TestDuplicateDeliveryRejected(t *testing.T) {
	h := History{
		enq(0, 1, 1, 2),
		deq(1, 1, 3, 4),
		deq(2, 1, 5, 6), // same item delivered twice
	}
	if Check(h) {
		t.Fatal("duplicate delivery accepted")
	}
}

func TestLostItemRejected(t *testing.T) {
	h := History{
		enq(0, 1, 1, 2),
		deqEmpty(1, 3, 4), // item lost
	}
	if Check(h) {
		t.Fatal("lost item accepted")
	}
}

func TestDuplicateValuesLegal(t *testing.T) {
	// The same value enqueued twice is fine.
	h := History{
		enq(0, 5, 1, 2),
		enq(0, 5, 3, 4),
		deq(1, 5, 5, 6),
		deq(1, 5, 7, 8),
	}
	if !Check(h) {
		t.Fatal("duplicate values rejected")
	}
}

func TestPendingWindowSearch(t *testing.T) {
	// A tangle of overlapping ops with exactly one valid linearization.
	h := History{
		enq(0, 1, 1, 20),
		enq(1, 2, 2, 19),
		enq(2, 3, 3, 18),
		deq(3, 2, 4, 17),
		deq(4, 3, 21, 22),
		deq(5, 1, 23, 24),
	}
	// Valid: enq2, enq3, enq1? then deq2, deq3, deq1 — FIFO needs queue
	// order 2,3,1, all enqueues overlap so any order is allowed. Legal.
	if !Check(h) {
		t.Fatal("satisfiable overlap tangle rejected")
	}
	// Make it unsatisfiable: dequeue order 2,1,3 but enq(3) precedes
	// enq(1) in real time and deq(2) < deq(1) < deq(3) sequentially.
	bad := History{
		enq(0, 3, 1, 2), // enq(3) completes first
		enq(0, 1, 3, 4), // then enq(1)
		enq(0, 2, 5, 6), // then enq(2)
		deq(1, 2, 7, 8), // 2 out first — impossible, 3 then 1 precede it
		deq(1, 1, 9, 10),
		deq(1, 3, 11, 12),
	}
	if Check(bad) {
		t.Fatal("unsatisfiable tangle accepted")
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder(4)
	var wg sync.WaitGroup
	for th := 0; th < 4; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				inv := r.Now()
				ret := r.Now()
				r.Append(th, Op{Kind: Enq, Value: uint64(th*10 + i), Invoke: inv, Return: ret})
			}
		}(th)
	}
	wg.Wait()
	h := r.History()
	if len(h) != 40 {
		t.Fatalf("history has %d ops", len(h))
	}
	seen := map[int64]bool{}
	for _, op := range h {
		if op.Invoke >= op.Return {
			t.Fatalf("bad interval: %+v", op)
		}
		if seen[op.Invoke] || seen[op.Return] {
			t.Fatal("timestamps not unique")
		}
		seen[op.Invoke] = true
		seen[op.Return] = true
	}
}

func TestOpString(t *testing.T) {
	if s := enq(1, 5, 1, 2).String(); !strings.Contains(s, "enq(5)") {
		t.Fatalf("String = %q", s)
	}
	if s := deq(1, 5, 1, 2).String(); !strings.Contains(s, "deq()=5") {
		t.Fatalf("String = %q", s)
	}
	if s := deqEmpty(1, 1, 2).String(); !strings.Contains(s, "EMPTY") {
		t.Fatalf("String = %q", s)
	}
}

// TestMemoizationTerminates: a wide history that would explode without the
// memo must finish quickly.
func TestMemoizationTerminates(t *testing.T) {
	var h History
	ts := int64(1)
	// 12 concurrent enqueues followed by 12 concurrent dequeues of the
	// same values: huge symmetric search space.
	for i := 0; i < 12; i++ {
		h = append(h, enq(i, uint64(i), 1, 100))
	}
	for i := 0; i < 12; i++ {
		h = append(h, deq(i, uint64(i), 101, 200))
	}
	_ = ts
	if !Check(h) {
		t.Fatal("legal symmetric history rejected")
	}
}
