// Package ccsynch implements Fatourou and Kallimanis' combining
// constructions (PPoPP 2012): CC-Synch, a blocking universal construction
// in which threads announce requests on a SWAP-built list and the thread at
// the head combines, and H-Synch, its hierarchical variant with one
// CC-Synch instance per cluster synchronized by a global lock.
//
// These are the synchronization engines of the CC-Queue and H-Queue
// baselines the LCRQ paper compares against. Requests and responses are a
// single uint64 plus an ok bit, which is exactly what queue operations
// need; the applied function is fixed per instance, so a combiner never
// needs to dispatch.
package ccsynch

import (
	"runtime"
	"sync"
	"sync/atomic"

	"lcrq/internal/instrument"
	"lcrq/internal/pad"
)

// DefaultBound is the maximum number of requests one combiner applies
// before handing the role to the next waiting thread. Fatourou and
// Kallimanis use a small multiple of the thread count.
const DefaultBound = 256

// Op applies one announced request to the protected object and returns its
// response. It runs under combiner exclusivity: at most one Op of a given
// Synch instance executes at a time.
type Op func(arg uint64) (ret uint64, ok bool)

type node struct {
	arg       uint64
	ret       uint64
	retOK     bool
	completed bool
	wait      atomic.Uint32
	next      atomic.Pointer[node]
	_         pad.Line
}

// Synch is one CC-Synch instance protecting the object accessed by op.
//
//lcrq:padded
type Synch struct {
	tail atomic.Pointer[node]
	_    pad.Line
	op   Op
	// combineLock, when non-nil, is acquired for the duration of each
	// combining pass; H-Synch uses it to serialize per-cluster combiners.
	combineLock *sync.Mutex
	bound       int
}

// New returns a CC-Synch instance applying op. bound ≤ 0 selects
// DefaultBound.
func New(op Op, bound int) *Synch {
	if bound <= 0 {
		bound = DefaultBound
	}
	s := &Synch{op: op, bound: bound}
	d := &node{} // initial dummy: wait=0, completed=false → first arrival combines
	s.tail.Store(d)
	return s
}

// Handle is a thread's context for one or more Synch instances. The spare
// node pool is keyed by instance because a node surrendered to instance A's
// list must not be reused on instance B.
type Handle struct {
	C      instrument.Counters
	spares map[*Synch]*node
}

// NewHandle returns an empty handle.
func NewHandle() *Handle { return &Handle{spares: make(map[*Synch]*node)} }

func (h *Handle) spare(s *Synch) *node {
	if n := h.spares[s]; n != nil {
		return n
	}
	return &node{}
}

// Apply announces (arg) and returns its response, combining on behalf of
// other threads when this thread ends up at the head of the announce list.
func (s *Synch) Apply(h *Handle, arg uint64) (uint64, bool) {
	next := h.spare(s)
	next.next.Store(nil)
	next.wait.Store(1)
	next.completed = false

	h.C.SWAP++
	cur := s.tail.Swap(next)
	cur.arg = arg
	cur.next.Store(next)
	h.spares[s] = cur

	for spins := 0; cur.wait.Load() == 1; spins++ {
		if spins%128 == 127 {
			runtime.Gosched()
		}
	}
	if cur.completed {
		return cur.ret, cur.retOK
	}

	// This thread is the combiner.
	if s.combineLock != nil {
		s.combineLock.Lock()
		h.C.LockAcq++
	}
	tmp := cur
	applied := uint64(0)
	for {
		nxt := tmp.next.Load()
		if nxt == nil || applied >= uint64(s.bound) {
			break
		}
		tmp.ret, tmp.retOK = s.op(tmp.arg)
		tmp.completed = true
		tmp.wait.Store(0)
		applied++
		tmp = nxt
	}
	if s.combineLock != nil {
		s.combineLock.Unlock()
	}
	tmp.wait.Store(0) // pass the combiner role to tmp's owner
	h.C.CombinerRuns++
	h.C.Combined += applied
	return cur.ret, cur.retOK
}

// HSynch is the hierarchical construction: requests combine within their
// cluster's CC-Synch instance, and cluster combiners serialize on a global
// lock before touching the shared object.
type HSynch struct {
	instances []*Synch
	lock      sync.Mutex
}

// NewH returns an H-Synch instance applying op across clusters many
// per-cluster CC-Synch instances.
func NewH(op Op, clusters, bound int) *HSynch {
	if clusters < 1 {
		clusters = 1
	}
	hs := &HSynch{}
	hs.instances = make([]*Synch, clusters)
	for i := range hs.instances {
		s := New(op, bound)
		s.combineLock = &hs.lock
		hs.instances[i] = s
	}
	return hs
}

// Apply announces (arg) on the calling thread's cluster instance. cluster
// ids out of range are folded in.
func (hs *HSynch) Apply(h *Handle, cluster int, arg uint64) (uint64, bool) {
	if cluster < 0 {
		cluster = -cluster
	}
	return hs.instances[cluster%len(hs.instances)].Apply(h, arg)
}
