package ccsynch

import (
	"sync/atomic"
	"testing"
)

func BenchmarkApplySequential(b *testing.B) {
	var counter uint64
	s := New(func(uint64) (uint64, bool) {
		counter++
		return counter, true
	}, 0)
	h := NewHandle()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Apply(h, 1)
	}
}

func BenchmarkApplyParallel(b *testing.B) {
	var counter uint64
	s := New(func(uint64) (uint64, bool) {
		counter++
		return counter, true
	}, 0)
	b.RunParallel(func(pb *testing.PB) {
		h := NewHandle()
		for pb.Next() {
			s.Apply(h, 1)
		}
	})
}

func BenchmarkHSynchParallel(b *testing.B) {
	var counter uint64
	hs := NewH(func(uint64) (uint64, bool) {
		counter++
		return counter, true
	}, 2, 0)
	var ids atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		h := NewHandle()
		cluster := int(ids.Add(1) % 2)
		for pb.Next() {
			hs.Apply(h, cluster, 1)
		}
	})
}
