package ccsynch

import (
	"sync"
	"testing"
)

// TestSerializedCounter verifies mutual exclusion of the applied operation:
// a plain (non-atomic) counter incremented through CC-Synch must not lose
// updates.
func TestSerializedCounter(t *testing.T) {
	var counter uint64 // deliberately plain
	s := New(func(arg uint64) (uint64, bool) {
		counter += arg
		return counter, true
	}, 0)
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := NewHandle()
			for i := 0; i < per; i++ {
				s.Apply(h, 1)
			}
		}()
	}
	wg.Wait()
	if counter != workers*per {
		t.Fatalf("counter = %d, want %d", counter, workers*per)
	}
}

// TestResponsesRouted checks each thread receives the response to its own
// request, not a neighbour's.
func TestResponsesRouted(t *testing.T) {
	s := New(func(arg uint64) (uint64, bool) {
		return arg * 2, true
	}, 0)
	const workers, per = 8, 3000
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := NewHandle()
			for i := 0; i < per; i++ {
				arg := uint64(w*per + i)
				ret, ok := s.Apply(h, arg)
				if !ok || ret != arg*2 {
					select {
					case errs <- "wrong response":
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case e := <-errs:
		t.Fatal(e)
	default:
	}
}

// TestSequentialOrderPreserved: with a single thread the construction must
// behave like direct calls.
func TestSequentialOrderPreserved(t *testing.T) {
	var log []uint64
	s := New(func(arg uint64) (uint64, bool) {
		log = append(log, arg)
		return uint64(len(log)), true
	}, 0)
	h := NewHandle()
	for i := uint64(0); i < 100; i++ {
		ret, ok := s.Apply(h, i)
		if !ok || ret != i+1 {
			t.Fatalf("Apply(%d) = (%d,%v)", i, ret, ok)
		}
	}
	for i, v := range log {
		if v != uint64(i) {
			t.Fatalf("log[%d] = %d", i, v)
		}
	}
}

func TestCombinerStatsAccumulate(t *testing.T) {
	s := New(func(arg uint64) (uint64, bool) { return 0, true }, 0)
	const workers, per = 6, 2000
	var wg sync.WaitGroup
	handles := make([]*Handle, workers)
	for w := 0; w < workers; w++ {
		handles[w] = NewHandle()
		wg.Add(1)
		go func(h *Handle) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Apply(h, 0)
			}
		}(handles[w])
	}
	wg.Wait()
	var swaps, combined uint64
	for _, h := range handles {
		swaps += h.C.SWAP
		combined += h.C.Combined
	}
	if swaps != workers*per {
		t.Fatalf("SWAP = %d, want one per Apply (%d)", swaps, workers*per)
	}
	if combined != workers*per {
		t.Fatalf("Combined = %d, want every request applied exactly once (%d)",
			combined, workers*per)
	}
}

// TestBoundHandsOffCombining: with bound=1 every combiner applies at most
// one request, forcing frequent role handoffs; everything must still
// complete.
func TestBoundHandsOffCombining(t *testing.T) {
	var counter uint64
	s := New(func(arg uint64) (uint64, bool) {
		counter++
		return counter, true
	}, 1)
	const workers, per = 4, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := NewHandle()
			for i := 0; i < per; i++ {
				s.Apply(h, 0)
			}
		}()
	}
	wg.Wait()
	if counter != workers*per {
		t.Fatalf("counter = %d, want %d", counter, workers*per)
	}
}

func TestHSynchSerializesAcrossClusters(t *testing.T) {
	var counter uint64 // plain; cross-cluster mutual exclusion required
	hs := NewH(func(arg uint64) (uint64, bool) {
		counter += arg
		return counter, true
	}, 4, 0)
	const workers, per = 8, 3000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := NewHandle()
			for i := 0; i < per; i++ {
				hs.Apply(h, w%4, 1)
			}
		}(w)
	}
	wg.Wait()
	if counter != workers*per {
		t.Fatalf("counter = %d, want %d", counter, workers*per)
	}
}

func TestHSynchClusterFolding(t *testing.T) {
	hs := NewH(func(arg uint64) (uint64, bool) { return arg, true }, 2, 0)
	h := NewHandle()
	// Out-of-range and negative clusters must not panic.
	for _, cl := range []int{-3, -1, 0, 1, 5, 100} {
		if ret, ok := hs.Apply(h, cl, 9); !ok || ret != 9 {
			t.Fatalf("cluster %d: (%d,%v)", cl, ret, ok)
		}
	}
}

func TestNewHClampsClusters(t *testing.T) {
	hs := NewH(func(uint64) (uint64, bool) { return 0, true }, 0, 0)
	if len(hs.instances) != 1 {
		t.Fatalf("instances = %d, want 1", len(hs.instances))
	}
}

// TestHandleAcrossInstances: one handle used with two instances must keep
// their spare nodes separate.
func TestHandleAcrossInstances(t *testing.T) {
	var a, b uint64
	sa := New(func(uint64) (uint64, bool) { a++; return a, true }, 0)
	sb := New(func(uint64) (uint64, bool) { b++; return b, true }, 0)
	h := NewHandle()
	for i := 0; i < 1000; i++ {
		if ret, _ := sa.Apply(h, 0); ret != uint64(i+1) {
			t.Fatalf("sa ret = %d at %d", ret, i)
		}
		if ret, _ := sb.Apply(h, 0); ret != uint64(i+1) {
			t.Fatalf("sb ret = %d at %d", ret, i)
		}
	}
}
