// Package kpqueue implements Kogan and Petrank's wait-free FIFO queue
// (PPoPP 2011), the wait-free variant of the Michael-Scott queue that the
// LCRQ paper's related-work section cites as having "similar performance
// characteristics" to the MS queue.
//
// Every operation announces itself in a per-thread state array with a
// monotonically increasing phase number; all threads help pending
// operations with phases at most their own, so each operation completes
// within a bounded number of steps by any thread — wait-freedom, at the
// cost of O(T) helping scans that keep the algorithm from scaling.
//
// The implementation follows the paper's pseudocode structure (help,
// help_enq, help_finish_enq, help_deq, help_finish_deq) with Go
// atomic.Pointer descriptors in place of Java AtomicReferences.
package kpqueue

import (
	"sync"
	"sync/atomic"

	"lcrq/internal/instrument"
	"lcrq/internal/pad"
)

type node struct {
	value  uint64
	enqTid int32
	deqTid atomic.Int32
	next   atomic.Pointer[node]
}

// opDesc describes one announced operation. Descriptors are immutable;
// state transitions replace the whole descriptor with CAS.
type opDesc struct {
	phase   int64
	pending bool
	enqueue bool
	node    *node
}

// Queue is a wait-free MPMC FIFO queue for a fixed maximum number of
// threads (handles).
//
//lcrq:padded
type Queue struct {
	head  atomic.Pointer[node]
	_     pad.Line
	tail  atomic.Pointer[node]
	_     pad.Line
	state []paddedDesc

	mu      sync.Mutex
	nextTid int32
}

//lcrq:padded
type paddedDesc struct {
	d atomic.Pointer[opDesc]
	_ pad.Line
}

// New returns an empty queue supporting up to maxThreads concurrent
// handles.
func New(maxThreads int) *Queue {
	if maxThreads < 1 {
		panic("kpqueue: maxThreads must be positive")
	}
	q := &Queue{state: make([]paddedDesc, maxThreads)}
	sentinel := &node{enqTid: -1}
	sentinel.deqTid.Store(-1)
	q.head.Store(sentinel)
	q.tail.Store(sentinel)
	initial := &opDesc{phase: -1, pending: false, enqueue: true}
	for i := range q.state {
		q.state[i].d.Store(initial)
	}
	return q
}

// Handle is a thread's identity in the state array. Handles are limited to
// the maxThreads passed to New; NewHandle panics beyond that.
type Handle struct {
	C   instrument.Counters
	q   *Queue
	tid int32
}

// NewHandle allocates a thread slot.
func (q *Queue) NewHandle() *Handle {
	q.mu.Lock()
	defer q.mu.Unlock()
	if int(q.nextTid) >= len(q.state) {
		panic("kpqueue: more handles than maxThreads")
	}
	h := &Handle{q: q, tid: q.nextTid}
	q.nextTid++
	return h
}

func (q *Queue) maxPhase() int64 {
	max := int64(-1)
	for i := range q.state {
		if p := q.state[i].d.Load().phase; p > max {
			max = p
		}
	}
	return max
}

func (q *Queue) isStillPending(tid int32, phase int64) bool {
	d := q.state[tid].d.Load()
	return d.pending && d.phase <= phase
}

// Enqueue appends v.
func (q *Queue) Enqueue(h *Handle, v uint64) {
	phase := q.maxPhase() + 1
	n := &node{value: v, enqTid: h.tid}
	n.deqTid.Store(-1)
	q.state[h.tid].d.Store(&opDesc{phase: phase, pending: true, enqueue: true, node: n})
	q.help(h, phase)
	q.helpFinishEnq(h)
	h.C.Enqueues++
}

// Dequeue removes and returns the oldest value; ok is false when empty.
func (q *Queue) Dequeue(h *Handle) (v uint64, ok bool) {
	phase := q.maxPhase() + 1
	q.state[h.tid].d.Store(&opDesc{phase: phase, pending: true, enqueue: false})
	q.help(h, phase)
	q.helpFinishDeq(h)
	n := q.state[h.tid].d.Load().node
	h.C.Dequeues++
	if n == nil {
		h.C.Empty++
		return 0, false
	}
	return n.next.Load().value, true
}

// help performs every pending operation with phase ≤ phase.
func (q *Queue) help(h *Handle, phase int64) {
	for tid := range q.state {
		d := q.state[tid].d.Load()
		if d.pending && d.phase <= phase {
			if d.enqueue {
				q.helpEnq(h, int32(tid), phase)
			} else {
				q.helpDeq(h, int32(tid), phase)
			}
		}
	}
}

func (q *Queue) helpEnq(h *Handle, tid int32, phase int64) {
	for q.isStillPending(tid, phase) {
		last := q.tail.Load()
		next := last.next.Load()
		if last != q.tail.Load() {
			continue
		}
		if next == nil {
			if q.isStillPending(tid, phase) {
				h.C.CAS++
				if last.next.CompareAndSwap(nil, q.state[tid].d.Load().node) {
					q.helpFinishEnq(h)
					return
				}
				h.C.CASFail++
			}
		} else {
			q.helpFinishEnq(h)
		}
	}
}

func (q *Queue) helpFinishEnq(h *Handle) {
	last := q.tail.Load()
	next := last.next.Load()
	if next == nil {
		return
	}
	tid := next.enqTid
	if tid == -1 {
		// The sentinel can never reappear as a linked-but-unswung node.
		return
	}
	curDesc := q.state[tid].d.Load()
	if last == q.tail.Load() && q.state[tid].d.Load().node == next {
		newDesc := &opDesc{phase: curDesc.phase, pending: false, enqueue: true, node: next}
		h.C.CAS++
		if !q.state[tid].d.CompareAndSwap(curDesc, newDesc) {
			h.C.CASFail++
		}
		h.C.CAS++
		if !q.tail.CompareAndSwap(last, next) {
			h.C.CASFail++
		}
	}
}

func (q *Queue) helpDeq(h *Handle, tid int32, phase int64) {
	for q.isStillPending(tid, phase) {
		first := q.head.Load()
		last := q.tail.Load()
		next := first.next.Load()
		if first != q.head.Load() {
			continue
		}
		if first == last {
			if next == nil {
				// Queue empty: complete with node == nil.
				curDesc := q.state[tid].d.Load()
				if last == q.tail.Load() && q.isStillPending(tid, phase) {
					newDesc := &opDesc{phase: curDesc.phase, pending: false, enqueue: false}
					h.C.CAS++
					if !q.state[tid].d.CompareAndSwap(curDesc, newDesc) {
						h.C.CASFail++
					}
				}
			} else {
				// Lagging tail: finish the in-flight enqueue first.
				q.helpFinishEnq(h)
			}
			continue
		}
		curDesc := q.state[tid].d.Load()
		node := curDesc.node
		if !q.isStillPending(tid, phase) {
			break
		}
		if first == q.head.Load() && node != first {
			newDesc := &opDesc{phase: curDesc.phase, pending: true, enqueue: false, node: first}
			h.C.CAS++
			if !q.state[tid].d.CompareAndSwap(curDesc, newDesc) {
				h.C.CASFail++
				continue
			}
		}
		h.C.CAS++
		if !first.deqTid.CompareAndSwap(-1, tid) {
			h.C.CASFail++
		}
		q.helpFinishDeq(h)
	}
}

func (q *Queue) helpFinishDeq(h *Handle) {
	first := q.head.Load()
	next := first.next.Load()
	tid := first.deqTid.Load()
	if tid == -1 {
		return
	}
	curDesc := q.state[tid].d.Load()
	if first == q.head.Load() && next != nil {
		newDesc := &opDesc{phase: curDesc.phase, pending: false, enqueue: false, node: curDesc.node}
		h.C.CAS++
		if !q.state[tid].d.CompareAndSwap(curDesc, newDesc) {
			h.C.CASFail++
		}
		h.C.CAS++
		if !q.head.CompareAndSwap(first, next) {
			h.C.CASFail++
		}
	}
}
