package kpqueue

import (
	"runtime"
	"sync"
	"testing"
)

func BenchmarkKPSequential(b *testing.B) {
	q := New(1)
	h := q.NewHandle()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(h, uint64(i))
		q.Dequeue(h)
	}
}

// BenchmarkKPParallel uses explicit goroutines because handles are a
// bounded resource tied to the queue instance.
func BenchmarkKPParallel(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	q := New(workers)
	per := b.N / workers
	if per < 1 {
		per = 1
	}
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		h := q.NewHandle()
		go func(h *Handle, w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Enqueue(h, uint64(w)<<32|uint64(i))
				q.Dequeue(h)
			}
		}(h, w)
	}
	wg.Wait()
}
