package kpqueue

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSequentialFIFO(t *testing.T) {
	q := New(1)
	h := q.NewHandle()
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("fresh queue not empty")
	}
	for i := uint64(0); i < 200; i++ {
		q.Enqueue(h, i)
	}
	for i := uint64(0); i < 200; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i {
			t.Fatalf("got (%d,%v), want %d", v, ok, i)
		}
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("queue should be empty")
	}
}

func TestModelEquivalence(t *testing.T) {
	f := func(ops []byte) bool {
		q := New(1)
		h := q.NewHandle()
		var model []uint64
		next := uint64(1)
		for _, op := range ops {
			if op%2 == 0 {
				q.Enqueue(h, next)
				model = append(model, next)
				next++
			} else {
				v, ok := q.Dequeue(h)
				if len(model) == 0 {
					if ok {
						return false
					}
				} else if !ok || v != model[0] {
					return false
				} else {
					model = model[1:]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestHandleLimit(t *testing.T) {
	q := New(2)
	q.NewHandle()
	q.NewHandle()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on third handle")
		}
	}()
	q.NewHandle()
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0)
}

func TestConcurrentNoLossNoDup(t *testing.T) {
	const producers, consumers, per = 3, 3, 1500
	q := New(producers + consumers)
	var wg sync.WaitGroup
	var count atomic.Int64
	seen := make([][]uint64, consumers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		h := q.NewHandle()
		go func(p int, h *Handle) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Enqueue(h, uint64(p)<<32|uint64(i))
			}
		}(p, h)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		h := q.NewHandle()
		go func(c int, h *Handle) {
			defer wg.Done()
			for count.Load() < producers*per {
				if v, ok := q.Dequeue(h); ok {
					seen[c] = append(seen[c], v)
					count.Add(1)
				}
			}
		}(c, h)
	}
	wg.Wait()
	all := map[uint64]int{}
	for _, s := range seen {
		for _, v := range s {
			all[v]++
		}
	}
	if len(all) != producers*per {
		t.Fatalf("distinct = %d, want %d", len(all), producers*per)
	}
	for v, n := range all {
		if n != 1 {
			t.Fatalf("value %#x seen %d times", v, n)
		}
	}
	for c, s := range seen {
		last := map[uint64]int64{}
		for _, v := range s {
			p, i := v>>32, int64(v&0xffffffff)
			if prev, ok := last[p]; ok && i <= prev {
				t.Fatalf("consumer %d: producer %d out of order", c, p)
			}
			last[p] = i
		}
	}
}

// TestHelpingCompletesOthersOps: a thread that only enqueues once still
// causes progress for another thread's announced dequeue (wait-free
// helping). We verify by checking phases advance monotonically and ops
// complete even when one handle performs all the subsequent work.
func TestHelpingCompletesOthersOps(t *testing.T) {
	q := New(2)
	h1 := q.NewHandle()
	h2 := q.NewHandle()
	q.Enqueue(h1, 41)
	q.Enqueue(h2, 42)
	// Both values must come out regardless of which handle dequeues.
	v1, ok1 := q.Dequeue(h1)
	v2, ok2 := q.Dequeue(h1)
	if !ok1 || !ok2 || v1 != 41 || v2 != 42 {
		t.Fatalf("got (%d,%v) (%d,%v)", v1, ok1, v2, ok2)
	}
}

func TestCountersPopulated(t *testing.T) {
	q := New(1)
	h := q.NewHandle()
	q.Enqueue(h, 1)
	q.Dequeue(h)
	q.Dequeue(h)
	if h.C.Enqueues != 1 || h.C.Dequeues != 2 || h.C.Empty != 1 {
		t.Fatalf("counters: %+v", h.C)
	}
	if h.C.CAS == 0 {
		t.Fatal("no CAS recorded")
	}
}
