package render

import (
	"encoding/json"
	"strings"
	"testing"

	"lcrq/internal/harness"
	"lcrq/internal/hist"
)

func sampleFigure() *harness.FigureResult {
	return &harness.FigureResult{
		Spec: harness.FigureSpec{
			ID: "6a", Title: "Test figure",
			Queues: []string{"lcrq", "ms-queue"},
		},
		Scale: harness.Scale{Pairs: 100, Runs: 2},
		Series: []harness.Series{
			{Queue: "lcrq", Points: []harness.Point{{X: 1, Mops: 1.5}, {X: 2, Mops: 3.25}}},
			{Queue: "ms-queue", Points: []harness.Point{{X: 1, Mops: 1.0}, {X: 2, Mops: 0.5}}},
		},
		HostCPUs: 4, HostPkgs: 1, Simulated: true, Pinned: true,
	}
}

func TestFigureTable(t *testing.T) {
	var b strings.Builder
	Figure(&b, sampleFigure())
	out := b.String()
	for _, want := range []string{"Figure 6a", "Test figure", "lcrq", "ms-queue",
		"3.250", "0.500", "SIMULATED", "pinned", "4 CPUs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFigureCSV(t *testing.T) {
	var b strings.Builder
	FigureCSV(&b, sampleFigure())
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3:\n%s", len(lines), b.String())
	}
	if lines[0] != "threads,lcrq,ms-queue" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "2,3.2500,0.5000") {
		t.Fatalf("row = %q", lines[2])
	}
}

func TestEmptyFigureDoesNotPanic(t *testing.T) {
	var b strings.Builder
	empty := &harness.FigureResult{Spec: harness.FigureSpec{ID: "x"}}
	Figure(&b, empty)
	FigureCSV(&b, empty)
	Chart(&b, empty, 10)
}

func TestLatencyTable(t *testing.T) {
	h1, h2 := &hist.H{}, &hist.H{}
	for i := int64(1); i <= 1000; i++ {
		h1.Record(i * 10)  // up to 10 µs
		h2.Record(i * 100) // up to 100 µs
	}
	res := &harness.LatencyResult{
		Spec: harness.LatencySpec{ID: "8a", Title: "Latency test",
			Queues: []string{"fast", "slow"}},
		Series: []harness.CDFSeries{
			{Queue: "fast", Hist: h1, MeanNs: h1.Mean()},
			{Queue: "slow", Hist: h2, MeanNs: h2.Mean()},
		},
	}
	var b strings.Builder
	Latency(&b, res)
	out := b.String()
	for _, want := range []string{"Figure 8a", "fast", "slow", "p97", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRingSweepTable(t *testing.T) {
	res := &harness.RingSweepResult{
		Spec: harness.RingSweepSpec{ID: "9a", Title: "Sweep", Queue: "lcrq"},
		Swept: harness.Series{Queue: "lcrq", Points: []harness.Point{
			{X: 3, Mops: 1}, {X: 17, Mops: 2},
		}},
		References: []harness.Point{{Mops: 1.5}},
		RefNames:   []string{"cc-queue"},
	}
	var b strings.Builder
	RingSweep(&b, res)
	out := b.String()
	for _, want := range []string{"2^3", "2^17", "cc-queue (ref)", "1.500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestStatsTable(t *testing.T) {
	res := &harness.TableResult{
		Spec: harness.TableSpec{ID: "3", Title: "Stats", Prefills: []int{0, 100}},
		Cells: []harness.TableCell{
			{Queue: "lcrq", Threads: 8, Prefill: 0, LatencyUs: 1.25,
				AtomicsPerOp: 2, CASFailPerOp: 0.125, Mops: 4},
			{Queue: "lcrq", Threads: 8, Prefill: 100, LatencyUs: 1.5,
				AtomicsPerOp: 2, CASFailPerOp: 0.25, Mops: 3},
		},
	}
	var b strings.Builder
	Table(&b, res)
	out := b.String()
	for _, want := range []string{"Table 3", "8 thr, empty", "8 thr, full",
		"1.250", "0.125", "substituted"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestChart(t *testing.T) {
	var b strings.Builder
	Chart(&b, sampleFigure(), 8)
	out := b.String()
	if !strings.Contains(out, "A = lcrq") || !strings.Contains(out, "B = ms-queue") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "threads") {
		t.Fatalf("x axis missing:\n%s", out)
	}
	// The top row must contain the max series marker.
	if !strings.Contains(out, "3.25 Mops/s") {
		t.Fatalf("y scale missing:\n%s", out)
	}
}

func TestFmtNs(t *testing.T) {
	cases := map[int64]string{
		5:          "5 ns",
		1500:       "1.5 µs",
		2_500_000:  "2.5 ms",
		12_000_000: "12 ms",
	}
	for in, want := range cases {
		if got := fmtNs(in); got != want {
			t.Fatalf("fmtNs(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestJSONFigure(t *testing.T) {
	var b strings.Builder
	if err := JSONFigure(&b, sampleFigure()); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if out["figure"] != "6a" || out["simulated"] != true {
		t.Fatalf("fields: %v", out)
	}
}

func TestJSONLatency(t *testing.T) {
	h := &hist.H{}
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 100)
	}
	res := &harness.LatencyResult{
		Spec:   harness.LatencySpec{ID: "8a"},
		Series: []harness.CDFSeries{{Queue: "lcrq", Hist: h, MeanNs: h.Mean()}},
	}
	var b strings.Builder
	if err := JSONLatency(&b, res); err != nil {
		t.Fatal(err)
	}
	var out struct {
		Series []struct {
			Queue     string           `json:"queue"`
			Quantiles map[string]int64 `json:"quantiles_ns"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Series) != 1 || out.Series[0].Quantiles["p50"] <= 0 {
		t.Fatalf("series: %+v", out.Series)
	}
}

func TestJSONRingSweepAndTable(t *testing.T) {
	var b strings.Builder
	sweep := &harness.RingSweepResult{
		Spec:       harness.RingSweepSpec{ID: "9a", Queue: "lcrq"},
		Swept:      harness.Series{Queue: "lcrq", Points: []harness.Point{{X: 3, Mops: 1}}},
		References: []harness.Point{{Mops: 2}},
		RefNames:   []string{"cc-queue"},
	}
	if err := JSONRingSweep(&b, sweep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "\"cc-queue\": 2") {
		t.Fatalf("sweep json: %s", b.String())
	}
	b.Reset()
	table := &harness.TableResult{
		Spec:  harness.TableSpec{ID: "2"},
		Cells: []harness.TableCell{{Queue: "lcrq", Threads: 1, Mops: 5}},
	}
	if err := JSONTable(&b, table); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "\"Mops\": 5") {
		t.Fatalf("table json: %s", b.String())
	}
}
