package render

import (
	"encoding/json"
	"io"

	"lcrq/internal/buildmeta"
	"lcrq/internal/harness"
)

// jsonLatencySeries is the marshal-friendly form of a latency series (the
// histogram itself has unexported internals; quantiles are what downstream
// tooling wants anyway).
type jsonLatencySeries struct {
	Queue     string           `json:"queue"`
	MeanNs    float64          `json:"mean_ns"`
	Count     uint64           `json:"count"`
	Quantiles map[string]int64 `json:"quantiles_ns"`
}

// JSONFigure writes a throughput figure as JSON. Governed runs (qbench
// -capacity / -watchdog) additionally carry the per-point budget outcomes,
// so the sidecar records both the throughput and how the budgets fared.
func JSONFigure(w io.Writer, r *harness.FigureResult) error {
	out := map[string]any{
		"figure":    r.Spec.ID,
		"title":     r.Spec.Title,
		"series":    r.Series,
		"simulated": r.Simulated,
		"pinned":    r.Pinned,
		"host_cpus": r.HostCPUs,
		"host_pkgs": r.HostPkgs,
		"pairs":     r.Scale.Pairs,
		"runs":      r.Scale.Runs,
	}
	if len(r.Governance) > 0 {
		out["capacity"] = r.Scale.Capacity
		if r.Scale.Watchdog > 0 {
			out["watchdog"] = r.Scale.Watchdog.String()
		}
		out["governance"] = r.Governance
	}
	return encode(w, out)
}

// JSONLatency writes a latency figure as JSON.
func JSONLatency(w io.Writer, r *harness.LatencyResult) error {
	series := make([]jsonLatencySeries, 0, len(r.Series))
	for _, s := range r.Series {
		series = append(series, jsonLatencySeries{
			Queue:  s.Queue,
			MeanNs: s.MeanNs,
			Count:  s.Hist.Count(),
			Quantiles: map[string]int64{
				"p50":   s.Hist.Quantile(0.50),
				"p80":   s.Hist.Quantile(0.80),
				"p97":   s.Hist.Quantile(0.97),
				"p99":   s.Hist.Quantile(0.99),
				"p99.9": s.Hist.Quantile(0.999),
				"max":   s.Hist.Max(),
			},
		})
	}
	return encode(w, map[string]any{
		"figure": r.Spec.ID,
		"title":  r.Spec.Title,
		"series": series,
	})
}

// JSONRingSweep writes a Figure 9 sweep as JSON.
func JSONRingSweep(w io.Writer, r *harness.RingSweepResult) error {
	refs := map[string]float64{}
	for i, name := range r.RefNames {
		refs[name] = r.References[i].Mops
	}
	return encode(w, map[string]any{
		"figure":     r.Spec.ID,
		"title":      r.Spec.Title,
		"queue":      r.Spec.Queue,
		"swept":      r.Swept.Points,
		"references": refs,
	})
}

// JSONBatchSweep writes a batch-size study as JSON — the shape archived as
// BENCH_batch.json by CI, so successive runs form a trajectory of the
// F&A-per-item amortization.
func JSONBatchSweep(w io.Writer, r *harness.BatchSweepResult) error {
	return encode(w, map[string]any{
		"figure":  r.Spec.ID,
		"title":   r.Spec.Title,
		"queue":   r.Spec.Queue,
		"threads": r.Spec.Threads,
		"points":  r.Points,
	})
}

// JSONOversubSweep writes an oversubscription study as JSON — the shape
// archived as BENCH_contention.json by CI, so successive runs track the
// fixed-vs-adaptive comparison across oversubscription levels.
func JSONOversubSweep(w io.Writer, r *harness.OversubSweepResult) error {
	return encode(w, map[string]any{
		"figure":      r.Spec.ID,
		"title":       r.Spec.Title,
		"queue":       r.Spec.Queue,
		"gomaxprocs":  r.Procs,
		"points":      r.Points,
		"multipliers": r.Spec.Multipliers,
	})
}

// encode writes v as indented JSON with the run's provenance stamped in as
// "meta" (commit, GOMAXPROCS, timestamp — see internal/buildmeta). Every
// sidecar gets the stamp, so any two BENCH_*.json artifacts are directly
// comparable without out-of-band notes about which tree produced them.
func encode(w io.Writer, v map[string]any) error {
	v["meta"] = buildmeta.Collect()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// JSONTable writes a statistics table as JSON.
func JSONTable(w io.Writer, r *harness.TableResult) error {
	return encode(w, map[string]any{
		"table": r.Spec.ID,
		"title": r.Spec.Title,
		"cells": r.Cells,
	})
}
