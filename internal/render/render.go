// Package render formats harness results as aligned text tables, CSV, and
// ASCII charts for the cmd/ drivers. Rendering is separated from measuring
// so the same data can be printed, saved, and compared in EXPERIMENTS.md.
package render

import (
	"fmt"
	"io"
	"strings"

	"lcrq/internal/harness"
)

// Figure writes a throughput figure as a text table: one row per thread
// count, one column per queue.
func Figure(w io.Writer, r *harness.FigureResult) {
	fmt.Fprintf(w, "Figure %s: %s\n", r.Spec.ID, r.Spec.Title)
	env := fmt.Sprintf("host: %d CPUs, %d packages", r.HostCPUs, r.HostPkgs)
	if r.Simulated {
		env += " (clusters SIMULATED — hardware has fewer packages)"
	}
	if r.Pinned {
		env += ", threads pinned"
	}
	fmt.Fprintf(w, "%s\n", env)
	fmt.Fprintf(w, "throughput in Mops/s (mean of %d runs, %d pairs/thread)\n\n",
		r.Scale.Runs, r.Scale.Pairs)

	header := []string{"threads"}
	header = append(header, r.Spec.Queues...)
	rows := [][]string{}
	if len(r.Series) == 0 {
		return
	}
	for i, p := range r.Series[0].Points {
		row := []string{fmt.Sprintf("%d", p.X)}
		for _, s := range r.Series {
			row = append(row, fmt.Sprintf("%.3f", s.Points[i].Mops))
		}
		rows = append(rows, row)
	}
	table(w, header, rows)
}

// FigureCSV writes the same data as CSV.
func FigureCSV(w io.Writer, r *harness.FigureResult) {
	fmt.Fprintf(w, "threads")
	for _, s := range r.Series {
		fmt.Fprintf(w, ",%s", s.Queue)
	}
	fmt.Fprintln(w)
	if len(r.Series) == 0 {
		return
	}
	for i, p := range r.Series[0].Points {
		fmt.Fprintf(w, "%d", p.X)
		for _, s := range r.Series {
			fmt.Fprintf(w, ",%.4f", s.Points[i].Mops)
		}
		fmt.Fprintln(w)
	}
}

// Latency writes a latency figure as a CDF table over round-number
// thresholds, mirroring the axes of Figure 8.
func Latency(w io.Writer, r *harness.LatencyResult) {
	fmt.Fprintf(w, "Figure %s: %s\n", r.Spec.ID, r.Spec.Title)
	fmt.Fprintf(w, "cumulative %% of operations completing within each latency\n\n")
	thresholds := []int64{100, 200, 240, 500, 1000, 2000, 5000, 10000, 25000,
		100000, 1000000, 10000000}
	header := []string{"latency ≤"}
	for _, s := range r.Series {
		header = append(header, s.Queue)
	}
	rows := [][]string{}
	for _, th := range thresholds {
		row := []string{fmtNs(th)}
		for _, s := range r.Series {
			row = append(row, fmt.Sprintf("%5.1f%%", 100*s.Hist.FractionBelow(th)))
		}
		rows = append(rows, row)
	}
	table(w, header, rows)
	fmt.Fprintln(w)
	header = []string{"queue", "mean", "p50", "p80", "p97", "p99.9", "max"}
	rows = rows[:0]
	for _, s := range r.Series {
		rows = append(rows, []string{
			s.Queue,
			fmtNs(int64(s.MeanNs)),
			fmtNs(s.Hist.Quantile(0.5)),
			fmtNs(s.Hist.Quantile(0.8)),
			fmtNs(s.Hist.Quantile(0.97)),
			fmtNs(s.Hist.Quantile(0.999)),
			fmtNs(s.Hist.Max()),
		})
	}
	table(w, header, rows)
}

// RingSweep writes a Figure 9 style table: throughput per ring size plus
// the reference queue lines.
func RingSweep(w io.Writer, r *harness.RingSweepResult) {
	fmt.Fprintf(w, "Figure %s: %s\n\n", r.Spec.ID, r.Spec.Title)
	header := []string{"ring size", r.Spec.Queue}
	for _, ref := range r.RefNames {
		header = append(header, ref+" (ref)")
	}
	rows := [][]string{}
	for _, p := range r.Swept.Points {
		row := []string{fmt.Sprintf("2^%d", p.X), fmt.Sprintf("%.3f", p.Mops)}
		for _, ref := range r.References {
			row = append(row, fmt.Sprintf("%.3f", ref.Mops))
		}
		rows = append(rows, row)
	}
	table(w, header, rows)
}

// BatchSweep writes a batch-size study table: item throughput and F&A cost
// per batch size, the amortization the batched reservation exists to show.
func BatchSweep(w io.Writer, r *harness.BatchSweepResult) {
	fmt.Fprintf(w, "Study %s: %s (%s, %d threads)\n\n",
		r.Spec.ID, r.Spec.Title, r.Spec.Queue, r.Spec.Threads)
	rows := [][]string{}
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.K),
			fmt.Sprintf("%.3f", p.Mops),
			fmt.Sprintf("%.3f", p.FAAPerItem),
			fmt.Sprintf("%d", p.Spills),
		})
	}
	table(w, []string{"batch", "Mops", "F&A/item", "spills"}, rows)
}

// OversubSweep writes an oversubscription study table: fixed-constant vs
// adaptive-controller throughput and ring churn per oversubscription level.
func OversubSweep(w io.Writer, r *harness.OversubSweepResult) {
	fmt.Fprintf(w, "Study %s: %s (%s, GOMAXPROCS=%d)\n\n",
		r.Spec.ID, r.Spec.Title, r.Spec.Queue, r.Procs)
	rows := [][]string{}
	for _, p := range r.Points {
		delta := 0.0
		if p.Fixed.Mops > 0 {
			delta = (p.Adaptive.Mops/p.Fixed.Mops - 1) * 100
		}
		rows = append(rows, []string{
			fmt.Sprintf("%dx", p.Multiplier),
			fmt.Sprintf("%d", p.Threads),
			fmt.Sprintf("%.3f ±%.3f", p.Fixed.Mops, p.Fixed.CI),
			fmt.Sprintf("%.3f ±%.3f", p.Adaptive.Mops, p.Adaptive.CI),
			fmt.Sprintf("%+.1f%%", delta),
			fmt.Sprintf("%.1f", p.Fixed.ClosesPerMop),
			fmt.Sprintf("%.1f", p.Adaptive.ClosesPerMop),
		})
	}
	table(w, []string{"oversub", "threads", "fixed Mops", "adaptive Mops", "delta", "closes/Mop (fixed)", "closes/Mop (adaptive)"}, rows)
}

// Table writes a Table 2/3 style statistics table.
func Table(w io.Writer, r *harness.TableResult) {
	fmt.Fprintf(w, "Table %s: %s\n", r.Spec.ID, r.Spec.Title)
	fmt.Fprintf(w, "(instructions and cache-miss columns of the paper are substituted\n")
	fmt.Fprintf(w, " by software counters; 'casfail/op' measures the wasted work the\n")
	fmt.Fprintf(w, " paper's miss counts explain — see DESIGN.md §1)\n\n")
	header := []string{"config", "queue", "latency µs", "Mops/s", "atomics/op",
		"casfail/op", "retries/op"}
	rows := [][]string{}
	for _, c := range r.Cells {
		cfg := fmt.Sprintf("%d thr", c.Threads)
		if len(r.Spec.Prefills) > 1 {
			if c.Prefill > 0 {
				cfg += ", full"
			} else {
				cfg += ", empty"
			}
		}
		rows = append(rows, []string{
			cfg, c.Queue,
			fmt.Sprintf("%.3f", c.LatencyUs),
			fmt.Sprintf("%.3f", c.Mops),
			fmt.Sprintf("%.2f", c.AtomicsPerOp),
			fmt.Sprintf("%.3f", c.CASFailPerOp),
			fmt.Sprintf("%.3f", c.RetriesPerOp),
		})
	}
	table(w, header, rows)
}

// Chart draws a crude ASCII line chart of a figure (one letter per queue),
// useful for eyeballing shape in a terminal.
func Chart(w io.Writer, r *harness.FigureResult, height int) {
	if height < 4 {
		height = 10
	}
	maxY := 0.0
	for _, s := range r.Series {
		for _, p := range s.Points {
			if p.Mops > maxY {
				maxY = p.Mops
			}
		}
	}
	if maxY == 0 || len(r.Series) == 0 {
		return
	}
	cols := len(r.Series[0].Points)
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols*4))
	}
	for si, s := range r.Series {
		mark := byte('A' + si)
		for pi, p := range s.Points {
			row := height - 1 - int(p.Mops/maxY*float64(height-1))
			grid[row][pi*4] = mark
		}
	}
	fmt.Fprintf(w, "%.2f Mops/s\n", maxY)
	for _, line := range grid {
		fmt.Fprintf(w, "| %s\n", string(line))
	}
	fmt.Fprintf(w, "+%s\n  ", strings.Repeat("-", cols*4))
	for _, p := range r.Series[0].Points {
		fmt.Fprintf(w, "%-4d", p.X)
	}
	fmt.Fprintln(w, " threads")
	for si, s := range r.Series {
		fmt.Fprintf(w, "  %c = %s\n", byte('A'+si), s.Queue)
	}
}

func fmtNs(ns int64) string {
	switch {
	case ns >= 1_000_000:
		return fmt.Sprintf("%.2g ms", float64(ns)/1e6)
	case ns >= 1000:
		return fmt.Sprintf("%.3g µs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%d ns", ns)
	}
}

// table prints rows with columns padded to the widest entry.
func table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s", widths[i]+2, c)
		}
		fmt.Fprintln(w)
	}
	line(header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range rows {
		line(row)
	}
}
