package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func sampleOf(xs ...float64) *Sample {
	s := &Sample{}
	for _, x := range xs {
		s.Add(x)
	}
	return s
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Stddev() != 0 || s.Min() != 0 || s.Max() != 0 ||
		s.Median() != 0 || s.CI95() != 0 || s.RelativeCI95() != 0 {
		t.Fatal("empty sample should report zeros everywhere")
	}
}

func TestSingleObservation(t *testing.T) {
	s := sampleOf(42)
	if s.Mean() != 42 || s.Min() != 42 || s.Max() != 42 || s.Median() != 42 {
		t.Fatal("single-observation stats wrong")
	}
	if s.Stddev() != 0 || s.CI95() != 0 {
		t.Fatal("dispersion of single observation must be 0")
	}
}

func TestKnownValues(t *testing.T) {
	s := sampleOf(2, 4, 4, 4, 5, 5, 7, 9)
	if !approx(s.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v", s.Mean())
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	if !approx(s.Stddev(), math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("Stddev = %v", s.Stddev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	if !approx(s.Median(), 4.5, 1e-12) {
		t.Fatalf("Median = %v", s.Median())
	}
}

func TestMedianOdd(t *testing.T) {
	if m := sampleOf(9, 1, 5).Median(); m != 5 {
		t.Fatalf("Median = %v, want 5", m)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	s := sampleOf(3, 1, 2)
	_ = s.Median()
	if s.xs[0] != 3 || s.xs[1] != 1 || s.xs[2] != 2 {
		t.Fatal("Median sorted the underlying sample")
	}
}

func TestCI95ShrinksWithN(t *testing.T) {
	small := sampleOf(1, 3)
	big := sampleOf(1, 3, 1, 3, 1, 3, 1, 3)
	if big.CI95() >= small.CI95() {
		t.Fatalf("CI95 did not shrink: n=2 gives %v, n=8 gives %v", small.CI95(), big.CI95())
	}
}

func TestQuickInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		s := &Sample{}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				return true // avoid float64 overflow in sums of squares
			}
			s.Add(x)
		}
		if len(xs) == 0 {
			return true
		}
		// min <= median <= max, min <= mean <= max, stddev >= 0
		return s.Min() <= s.Median()+1e-9 && s.Median() <= s.Max()+1e-9 &&
			s.Min() <= s.Mean()+1e-9 && s.Mean() <= s.Max()+1e-9 &&
			s.Stddev() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeCI95(t *testing.T) {
	s := sampleOf(10, 10, 10, 10)
	if s.RelativeCI95() != 0 {
		t.Fatal("identical observations must give zero relative CI")
	}
	var zeroMean Sample
	zeroMean.Add(-1)
	zeroMean.Add(1)
	if zeroMean.RelativeCI95() != 0 {
		t.Fatal("zero mean must not divide by zero")
	}
}
