// Package stats provides the small set of summary statistics the benchmark
// harness reports: mean, standard deviation, min/max, and normal-theory
// confidence intervals over repeated runs, following the paper's methodology
// of averaging 10 runs per configuration.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations of one measured quantity.
type Sample struct {
	xs []float64
}

// Add records one observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Stddev returns the sample (n-1) standard deviation, or 0 when fewer than
// two observations exist.
func (s *Sample) Stddev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median observation, or 0 for an empty sample.
func (s *Sample) Median() float64 {
	n := len(s.xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.xs...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// CI95 returns the half-width of the 95% confidence interval of the mean
// under a normal approximation (1.96 · s/√n). It returns 0 when fewer than
// two observations exist.
func (s *Sample) CI95() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	return 1.96 * s.Stddev() / math.Sqrt(float64(n))
}

// RelativeCI95 returns CI95 as a fraction of the mean, the "variance is
// negligible" check from the paper's methodology section. It returns 0 when
// the mean is 0.
func (s *Sample) RelativeCI95() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.CI95() / m
}

// String renders "mean ± ci95 (n=N)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean(), s.CI95(), s.N())
}
