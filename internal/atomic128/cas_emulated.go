package atomic128

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// The emulation serializes CAS2s — and, since the store-interleaving fix,
// Store/StoreLo/StoreHi on emulated builds — that hash to the same stripe.
// Loads remain plain 64-bit atomics: a load racing with an emulated CAS2
// can observe the two halves from different states, which is exactly the
// tearing the CRQ protocol already tolerates (the validating CAS2 fails and
// retries; TestEmulatedTornLoadValidation is the proof the comment used to
// merely assert).
const stripes = 256 // power of two

var locks [stripes]sync.Mutex

// stripe returns the lock serializing emulated operations on addr's cell.
func stripe(addr *Uint128) *sync.Mutex {
	return &locks[(uintptr(unsafe.Pointer(addr))>>4)%stripes]
}

// testHookMidCAS, when non-nil, runs inside casEmulated's critical section,
// between the successful compare and the two half-stores. Tests use it to
// prove that a concurrent store cannot land in that window (it blocks on
// the stripe lock instead). Always nil outside tests.
var testHookMidCAS func()

// casEmulated is the portable striped-spinlock CAS2. It is compiled on
// every platform — it is the cas128 implementation on non-amd64, purego,
// and race builds, and on native builds it backs CompareAndSwapEmulated so
// the fallback path can be stress-tested on the same hardware as the
// CMPXCHG16B path.
func casEmulated(addr *Uint128, oldLo, oldHi, newLo, newHi uint64) bool {
	mu := stripe(addr)
	mu.Lock()
	if atomic.LoadUint64(&addr.lo) != oldLo || atomic.LoadUint64(&addr.hi) != oldHi {
		mu.Unlock()
		return false
	}
	if h := testHookMidCAS; h != nil {
		h()
	}
	atomic.StoreUint64(&addr.lo, newLo)
	atomic.StoreUint64(&addr.hi, newHi)
	mu.Unlock()
	return true
}

// storeLoEmulated stores the low half under the stripe lock. Compiled on
// every platform: it is the StoreLo implementation on emulated builds, and
// tests drive it directly to exercise that path on native hardware.
func storeLoEmulated(u *Uint128, v uint64) {
	mu := stripe(u)
	mu.Lock()
	atomic.StoreUint64(&u.lo, v)
	mu.Unlock()
}

// storeHiEmulated stores the high half under the stripe lock.
func storeHiEmulated(u *Uint128, v uint64) {
	mu := stripe(u)
	mu.Lock()
	atomic.StoreUint64(&u.hi, v)
	mu.Unlock()
}

// storeEmulated stores both halves in one critical section, so emulated
// CAS2s observe either the old pair or the new pair, never a mix.
func storeEmulated(u *Uint128, lo, hi uint64) {
	mu := stripe(u)
	mu.Lock()
	atomic.StoreUint64(&u.lo, lo)
	atomic.StoreUint64(&u.hi, hi)
	mu.Unlock()
}

// CompareAndSwapEmulated performs the CAS through the portable emulation
// regardless of the build, so the non-CMPXCHG16B code path can be exercised
// on amd64. A given cell must be operated on exclusively through either the
// native or the emulated path: the emulation's stripe lock cannot exclude a
// concurrent native CMPXCHG16B on the same cell.
func (u *Uint128) CompareAndSwapEmulated(oldLo, oldHi, newLo, newHi uint64) bool {
	return casEmulated(u, oldLo, oldHi, newLo, newHi)
}
