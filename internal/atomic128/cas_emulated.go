package atomic128

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// The emulation serializes CAS2s that hash to the same stripe. Loads remain
// plain 64-bit atomics: a load racing with an emulated CAS2 can observe the
// two halves from different states, which is exactly the tearing the CRQ
// protocol already tolerates (the validating CAS2 will fail and retry).
const stripes = 256 // power of two

var locks [stripes]sync.Mutex

// casEmulated is the portable striped-spinlock CAS2. It is compiled on
// every platform — it is the cas128 implementation on non-amd64, purego,
// and race builds, and on native builds it backs CompareAndSwapEmulated so
// the fallback path can be stress-tested on the same hardware as the
// CMPXCHG16B path.
func casEmulated(addr *Uint128, oldLo, oldHi, newLo, newHi uint64) bool {
	mu := &locks[(uintptr(unsafe.Pointer(addr))>>4)%stripes]
	mu.Lock()
	if atomic.LoadUint64(&addr.lo) != oldLo || atomic.LoadUint64(&addr.hi) != oldHi {
		mu.Unlock()
		return false
	}
	atomic.StoreUint64(&addr.lo, newLo)
	atomic.StoreUint64(&addr.hi, newHi)
	mu.Unlock()
	return true
}

// CompareAndSwapEmulated performs the CAS through the portable emulation
// regardless of the build, so the non-CMPXCHG16B code path can be exercised
// on amd64. A given cell must be operated on exclusively through either the
// native or the emulated path: the emulation's stripe lock cannot exclude a
// concurrent native CMPXCHG16B on the same cell.
func (u *Uint128) CompareAndSwapEmulated(oldLo, oldHi, newLo, newHi uint64) bool {
	return casEmulated(u, oldLo, oldHi, newLo, newHi)
}
