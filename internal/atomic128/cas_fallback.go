//go:build !amd64 || purego || race

package atomic128

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// native reports that this build emulates CAS2 with striped spinlocks.
// Race-instrumented builds (-race) also take this path, because writes made
// by the assembly CMPXCHG16B are invisible to the race detector; the
// emulation's atomic stores give the detector the happens-before edges the
// hardware instruction really provides.
const native = false

// The emulation serializes CAS2s that hash to the same stripe. Loads remain
// plain 64-bit atomics: a load racing with an emulated CAS2 can observe the
// two halves from different states, which is exactly the tearing the CRQ
// protocol already tolerates (the validating CAS2 will fail and retry).
const stripes = 256 // power of two

var locks [stripes]sync.Mutex

func cas128(addr *Uint128, oldLo, oldHi, newLo, newHi uint64) bool {
	mu := &locks[(uintptr(unsafe.Pointer(addr))>>4)%stripes]
	mu.Lock()
	if atomic.LoadUint64(&addr.lo) != oldLo || atomic.LoadUint64(&addr.hi) != oldHi {
		mu.Unlock()
		return false
	}
	atomic.StoreUint64(&addr.lo, newLo)
	atomic.StoreUint64(&addr.hi, newHi)
	mu.Unlock()
	return true
}
