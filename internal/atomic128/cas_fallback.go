//go:build !amd64 || purego || race

package atomic128

// native reports that this build emulates CAS2 with striped spinlocks.
// Race-instrumented builds (-race) also take this path, because writes made
// by the assembly CMPXCHG16B are invisible to the race detector; the
// emulation's atomic stores give the detector the happens-before edges the
// hardware instruction really provides.
const native = false

func cas128(addr *Uint128, oldLo, oldHi, newLo, newHi uint64) bool {
	return casEmulated(addr, oldLo, oldHi, newLo, newHi)
}
