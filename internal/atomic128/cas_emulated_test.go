package atomic128

import (
	"runtime"
	"sync"
	"testing"
)

// TestEmulatedSemantics checks the emulated CAS2's success/failure contract
// on every build, including native amd64 ones where cas128 would otherwise
// be the only covered implementation.
func TestEmulatedSemantics(t *testing.T) {
	cells := AlignedUint128s(1)
	c := &cells[0]
	if !c.CompareAndSwapEmulated(0, 0, 1, 2) {
		t.Fatal("CAS from zero state failed")
	}
	if c.LoadLo() != 1 || c.LoadHi() != 2 {
		t.Fatalf("cell = (%d,%d), want (1,2)", c.LoadLo(), c.LoadHi())
	}
	if c.CompareAndSwapEmulated(1, 999, 3, 4) {
		t.Fatal("CAS with wrong hi succeeded")
	}
	if c.CompareAndSwapEmulated(999, 2, 3, 4) {
		t.Fatal("CAS with wrong lo succeeded")
	}
	if !c.CompareAndSwapEmulated(1, 2, 3, 4) {
		t.Fatal("CAS with matching state failed")
	}
	if c.LoadLo() != 3 || c.LoadHi() != 4 {
		t.Fatalf("cell = (%d,%d), want (3,4)", c.LoadLo(), c.LoadHi())
	}
}

// TestEmulatedStress hammers the emulated CAS2 from many goroutines: each
// success must move a cell's (lo, hi) pair atomically, so at the end every
// cell's halves agree and the total increments equal the total successes.
// This gives the portable non-CMPXCHG16B path the same kind of contention
// coverage the native path gets from the queue stress tests.
func TestEmulatedStress(t *testing.T) {
	const (
		ncells = 4
		iters  = 2000
	)
	workers := 2 * runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	cells := AlignedUint128s(ncells)
	successes := make([]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := uint64(w)*2654435761 + 1
			for i := 0; i < iters; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				c := &cells[rng%ncells]
				lo, hi := c.LoadLo(), c.LoadHi()
				// Paired increment: only atomic if the CAS2 really
				// compared and swapped both halves as one unit.
				if c.CompareAndSwapEmulated(lo, hi, lo+1, hi+1) {
					successes[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	var total, want uint64
	for _, s := range successes {
		want += s
	}
	for i := range cells {
		lo, hi := cells[i].LoadLo(), cells[i].LoadHi()
		if lo != hi {
			t.Errorf("cell %d halves diverged: lo=%d hi=%d", i, lo, hi)
		}
		total += lo
	}
	if total != want {
		t.Errorf("cells sum to %d increments, want %d successes", total, want)
	}
}
