// Package atomic128 provides a 128-bit (double-width) compare-and-swap,
// the CAS2 primitive of Morrison and Afek's CRQ algorithm.
//
// On amd64 the operation is implemented with the LOCK CMPXCHG16B machine
// instruction, exactly as the paper assumes; the instruction requires its
// operand to be 16-byte aligned, which the Go compiler does not guarantee
// for ordinary allocations, so callers must obtain Uint128 cells through
// AlignedUint128s (or embed them in types allocated via AlignedSlice).
//
// On other architectures a striped-spinlock emulation is provided so that
// the test suite remains portable. The emulation is NOT lock-free; every
// performance claim in this repository refers to the amd64 path.
//
// The CRQ protocol never needs an atomic 128-bit load: it reads the two
// halves with independent 64-bit loads and relies on the subsequent CAS2 to
// validate both (see dequeue lines 37-38 of the paper). Lo/Hi accessors are
// therefore plain 64-bit atomics.
package atomic128

import (
	"sync/atomic"
	"unsafe"
)

// Uint128 is a 16-byte cell supporting double-width CAS.
//
// The zero value is valid. Cells on the CompareAndSwap path must be 16-byte
// aligned; use AlignedUint128s or AlignedSlice to allocate them.
type Uint128 struct {
	lo uint64
	hi uint64
}

// LoadLo atomically loads the low 64-bit half.
//
//lcrq:hotpath
func (u *Uint128) LoadLo() uint64 { return atomic.LoadUint64(&u.lo) }

// LoadHi atomically loads the high 64-bit half.
//
//lcrq:hotpath
func (u *Uint128) LoadHi() uint64 { return atomic.LoadUint64(&u.hi) }

// StoreLo atomically stores the low 64-bit half.
//
// On emulated builds (non-amd64, purego, race) the store acquires the
// cell's stripe lock, so it serializes with casEmulated instead of landing
// between its compare and its two half-stores (which would publish a cell
// state neither operation intended). On native builds it is a plain 64-bit
// atomic store: CMPXCHG16B is a single instruction, so a racing half-store
// lands atomically before or after it.
//
//lcrq:hotpath
func (u *Uint128) StoreLo(v uint64) { storeLo128(u, v) }

// StoreHi atomically stores the high 64-bit half. Same locking discipline
// as StoreLo.
//
//lcrq:hotpath
func (u *Uint128) StoreHi(v uint64) { storeHi128(u, v) }

// Store writes both halves. On emulated builds the pair is written inside
// one stripe-lock critical section, so concurrent CAS2s observe either the
// old or the new pair; on native builds it is two independent atomic
// half-stores and callers needing the pair to appear atomically against
// CAS2 must hold exclusive access (as init paths do).
func (u *Uint128) Store(lo, hi uint64) { store128(u, lo, hi) }

// CompareAndSwap atomically replaces (lo,hi) with (newLo,newHi) if the cell
// currently holds exactly (oldLo,oldHi), and reports whether it did.
//
//lcrq:hotpath
func (u *Uint128) CompareAndSwap(oldLo, oldHi, newLo, newHi uint64) bool {
	return cas128(u, oldLo, oldHi, newLo, newHi)
}

// Available reports whether the current build uses the native lock-free
// CMPXCHG16B implementation (true on amd64) rather than the spinlock
// emulation.
func Available() bool { return native }

const alignment = 16

// AlignedUint128s returns a slice of n Uint128 cells whose base address is
// 16-byte aligned, making every element safe for CompareAndSwap.
func AlignedUint128s(n int) []Uint128 {
	return AlignedSlice[Uint128](n)
}

// AlignedSlice returns a slice of n elements of type T whose base address is
// 16-byte aligned. The element type's size must be a multiple of 16 bytes so
// that alignment of the base implies alignment of every element; AlignedSlice
// panics otherwise.
//
// T must not contain pointer fields: the backing storage is allocated as a
// byte slab, which the garbage collector scans as pointerless memory.
func AlignedSlice[T any](n int) []T {
	var zero T
	size := unsafe.Sizeof(zero)
	if size == 0 || size%alignment != 0 {
		panic("atomic128: element size must be a non-zero multiple of 16")
	}
	if n <= 0 {
		panic("atomic128: non-positive slice length")
	}
	buf := make([]byte, uintptr(n)*size+alignment)
	p := uintptr(unsafe.Pointer(unsafe.SliceData(buf)))
	off := (alignment - p%alignment) % alignment
	// A pointer to an interior element keeps the whole backing array live,
	// so the returned slice alone is sufficient to retain buf.
	return unsafe.Slice((*T)(unsafe.Pointer(unsafe.SliceData(buf[off:]))), n)
}
