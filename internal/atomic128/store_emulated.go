//go:build !amd64 || purego || race

package atomic128

// On emulated builds every store routes through the cell's stripe lock: the
// emulated CAS2 is a compare followed by two half-stores under that lock,
// and an unlocked store could land between them, leaving the cell in a
// mixed state neither operation published. Serializing stores with the lock
// restores the interleaving guarantees of the hardware instruction.

func storeLo128(u *Uint128, v uint64) { storeLoEmulated(u, v) }

func storeHi128(u *Uint128, v uint64) { storeHiEmulated(u, v) }

func store128(u *Uint128, lo, hi uint64) { storeEmulated(u, lo, hi) }
