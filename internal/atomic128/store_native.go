//go:build amd64 && !purego && !race

package atomic128

import "sync/atomic"

// On the native build the half-stores are plain 64-bit atomics: the CAS2 is
// a single LOCK CMPXCHG16B instruction, so there is no compare-then-store
// window for a half-store to corrupt — a racing store is serialized by the
// hardware before or after the whole CAS2.

func storeLo128(u *Uint128, v uint64) { atomic.StoreUint64(&u.lo, v) }

func storeHi128(u *Uint128, v uint64) { atomic.StoreUint64(&u.hi, v) }

func store128(u *Uint128, lo, hi uint64) {
	atomic.StoreUint64(&u.lo, lo)
	atomic.StoreUint64(&u.hi, hi)
}
