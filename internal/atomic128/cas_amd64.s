//go:build amd64 && !purego && !race

#include "textflag.h"

// func cas128(addr *Uint128, oldLo, oldHi, newLo, newHi uint64) bool
//
// CMPXCHG16B compares RDX:RAX against the 16-byte operand; on match it
// stores RCX:RBX and sets ZF. The operand must be 16-byte aligned or the
// instruction raises #GP, hence the aligned allocators in this package.
TEXT ·cas128(SB), NOSPLIT, $0-41
	MOVQ	addr+0(FP), DI
	MOVQ	oldLo+8(FP), AX
	MOVQ	oldHi+16(FP), DX
	MOVQ	newLo+24(FP), BX
	MOVQ	newHi+32(FP), CX
	LOCK
	CMPXCHG16B	(DI)
	SETEQ	ret+40(FP)
	RET
