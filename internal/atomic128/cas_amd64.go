//go:build amd64 && !purego && !race

package atomic128

// native reports that this build issues LOCK CMPXCHG16B directly.
// CMPXCHG16B is present on every 64-bit x86 processor manufactured since
// roughly 2006 (it is part of the x86-64-v2 baseline); like the paper we
// assume it without a CPUID probe.
const native = true

// cas128 is implemented in cas_amd64.s.
//
//go:noescape
func cas128(addr *Uint128, oldLo, oldHi, newLo, newHi uint64) bool
