package atomic128

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEmulatedStoreExcludedMidCAS is the deterministic regression test for
// the store-interleaving bug: before the fix, a StoreLo issued between
// casEmulated's successful compare and its two half-stores landed inside
// the critical section and was then overwritten by the CAS's own half-store
// — the store was lost and the final cell reflected a CAS that validated a
// state the store had already replaced. With stores routed through the
// stripe lock, the store must block until the CAS completes and then apply,
// so the final low half is the stored value.
func TestEmulatedStoreExcludedMidCAS(t *testing.T) {
	cells := AlignedUint128s(1)
	c := &cells[0]
	c.Store(1, 1)

	const sentinel = uint64(0xDEAD)
	storeDone := make(chan struct{})
	testHookMidCAS = func() {
		go func() {
			storeLoEmulated(c, sentinel) // blocks on the stripe lock post-fix
			close(storeDone)
		}()
		// Give the unlocked (buggy) implementation ample time to land the
		// store inside the window; the fixed one blocks until we return.
		select {
		case <-storeDone:
		case <-time.After(100 * time.Millisecond):
		}
	}
	defer func() { testHookMidCAS = nil }()

	if !c.CompareAndSwapEmulated(1, 1, 2, 2) {
		t.Fatal("CAS2 unexpectedly failed")
	}
	<-storeDone
	if lo := c.LoadLo(); lo != sentinel {
		t.Fatalf("store issued mid-CAS was lost: lo = %#x, want %#x (store must serialize after the CAS)", lo, sentinel)
	}
	if hi := c.LoadHi(); hi != 2 {
		t.Fatalf("hi = %d, want 2", hi)
	}
}

// TestEmulatedStoreCASStress hammers emulated full-cell stores against
// emulated CAS2s under the invariant hi == 3·lo + 7 and validates, via
// no-op validating CASes, that every pair a CAS confirms as current
// satisfies it — i.e. stores never splice half a cell into a CAS's
// critical section. Run with -race in CI, where cas128 itself is the
// emulation.
func TestEmulatedStoreCASStress(t *testing.T) {
	f := func(lo uint64) uint64 { return 3*lo + 7 }

	cells := AlignedUint128s(1)
	c := &cells[0]
	c.Store(0, f(0))

	var stop atomic.Bool
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}

	// CAS incrementers: advance lo by re-validating the full pair.
	for i := 0; i < workers/2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				lo := c.LoadLo()
				c.CompareAndSwapEmulated(lo, f(lo), lo+1, f(lo+1))
			}
		}()
	}
	// Full-cell storers: publish fresh invariant-satisfying pairs.
	for i := 0; i < workers/4+1; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for x := seed; !stop.Load(); x += 1000 {
				storeEmulated(c, x, f(x))
			}
		}(uint64(i+1) * 1_000_000)
	}

	// Validators: a pair confirmed current by a no-op CAS must satisfy the
	// invariant — torn loads are fine, validated tears are the bug.
	var validated atomic.Uint64
	for i := 0; i < workers/4+1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				lo := c.LoadLo()
				hi := c.LoadHi()
				if c.CompareAndSwapEmulated(lo, hi, lo, hi) {
					if hi != f(lo) {
						stop.Store(true)
						t.Errorf("validated pair breaks invariant: lo=%d hi=%d want hi=%d", lo, hi, f(lo))
						return
					}
					validated.Add(1)
				}
			}
		}()
	}

	time.Sleep(200 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if validated.Load() == 0 {
		t.Fatal("no validating CAS ever succeeded; stress was vacuous")
	}
}

// TestEmulatedTornLoadValidation pins the torn-load tolerance the package
// comment asserts: independent LoadLo/LoadHi racing an emulated CAS2 may
// observe halves from different states, but any pair the validating CAS2
// subsequently confirms must be a state some CAS published (here: satisfy
// the writer invariant). Tears themselves are counted, not failed — the
// protocol's claim is that validation, not loading, is the atomicity point.
func TestEmulatedTornLoadValidation(t *testing.T) {
	f := func(lo uint64) uint64 { return lo<<1 ^ 0x5A5A }

	cells := AlignedUint128s(1)
	c := &cells[0]
	c.Store(0, f(0))

	var stop atomic.Bool
	var wg sync.WaitGroup
	var validated, torn atomic.Uint64

	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				lo := c.LoadLo()
				c.CompareAndSwapEmulated(lo, f(lo), lo+1, f(lo+1))
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				lo := c.LoadLo()
				hi := c.LoadHi()
				if hi != f(lo) {
					torn.Add(1) // tolerated: the validating CAS below must fail
				}
				if c.CompareAndSwapEmulated(lo, hi, lo, hi) {
					if hi != f(lo) {
						stop.Store(true)
						t.Errorf("validating CAS confirmed an unpublished pair: lo=%d hi=%d", lo, hi)
						return
					}
					validated.Add(1)
				}
			}
		}()
	}

	time.Sleep(200 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if validated.Load() == 0 {
		t.Fatal("no load was ever validated; stress was vacuous")
	}
	t.Logf("validated=%d torn-and-rejected=%d", validated.Load(), torn.Load())
}
