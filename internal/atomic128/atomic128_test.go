package atomic128

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"unsafe"
)

// TestAlignedUint128sAlignment is the runtime backstop for the 16-byte
// alignment invariant; the primary guard is lcrqlint's align128 analyzer,
// which rejects unblessed Uint128 allocations at lint time.
func TestAlignedUint128sAlignment(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64, 1023} {
		s := AlignedUint128s(n)
		if len(s) != n {
			t.Fatalf("len = %d, want %d", len(s), n)
		}
		for i := range s {
			p := uintptr(unsafe.Pointer(&s[i]))
			if p%16 != 0 {
				t.Fatalf("element %d at %#x not 16-byte aligned", i, p)
			}
		}
	}
}

func TestAlignedSlicePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("odd size", func() { AlignedSlice[[24]byte](4) })
	mustPanic("zero size", func() { AlignedSlice[struct{}](4) })
	mustPanic("zero len", func() { AlignedSlice[Uint128](0) })
	mustPanic("negative len", func() { AlignedSlice[Uint128](-1) })
}

func TestAlignedSlicePaddedElements(t *testing.T) {
	type padded struct {
		c Uint128
		_ [112]byte
	}
	s := AlignedSlice[padded](33)
	for i := range s {
		p := uintptr(unsafe.Pointer(&s[i].c))
		if p%16 != 0 {
			t.Fatalf("cell %d at %#x not aligned", i, p)
		}
	}
	// The cells must be usable.
	if !s[32].c.CompareAndSwap(0, 0, 1, 2) {
		t.Fatal("CAS on zero cell failed")
	}
	if s[32].c.LoadLo() != 1 || s[32].c.LoadHi() != 2 {
		t.Fatal("CAS did not store")
	}
}

func TestCompareAndSwapBasic(t *testing.T) {
	s := AlignedUint128s(1)
	c := &s[0]
	if got := c.LoadLo(); got != 0 {
		t.Fatalf("initial lo = %d", got)
	}
	if !c.CompareAndSwap(0, 0, 10, 20) {
		t.Fatal("CAS from zero state failed")
	}
	if c.CompareAndSwap(0, 0, 99, 99) {
		t.Fatal("CAS with stale expectation succeeded")
	}
	if c.CompareAndSwap(10, 21, 99, 99) {
		t.Fatal("CAS with wrong hi succeeded")
	}
	if c.CompareAndSwap(11, 20, 99, 99) {
		t.Fatal("CAS with wrong lo succeeded")
	}
	if !c.CompareAndSwap(10, 20, 30, 40) {
		t.Fatal("CAS with correct expectation failed")
	}
	if c.LoadLo() != 30 || c.LoadHi() != 40 {
		t.Fatalf("state = (%d,%d), want (30,40)", c.LoadLo(), c.LoadHi())
	}
}

func TestCompareAndSwapQuick(t *testing.T) {
	s := AlignedUint128s(1)
	c := &s[0]
	// Property: a CAS succeeds iff the expectation matches the current
	// state, and on success the new state is fully installed.
	f := func(oldLo, oldHi, newLo, newHi uint64) bool {
		curLo, curHi := c.LoadLo(), c.LoadHi()
		ok := c.CompareAndSwap(oldLo, oldHi, newLo, newHi)
		want := oldLo == curLo && oldHi == curHi
		if ok != want {
			return false
		}
		if ok {
			return c.LoadLo() == newLo && c.LoadHi() == newHi
		}
		return c.LoadLo() == curLo && c.LoadHi() == curHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestCompareAndSwapAtomicityStress verifies that concurrent CAS2s never
// observe or produce a torn pair. Each worker repeatedly moves the cell from
// (v, ^v) to (v+1, ^(v+1)); any interleaving bug would strand the cell in a
// state where hi is not the complement of lo.
func TestCompareAndSwapAtomicityStress(t *testing.T) {
	s := AlignedUint128s(1)
	c := &s[0]
	c.StoreLo(0)
	c.StoreHi(^uint64(0))

	workers := 8
	iters := 20000
	if testing.Short() {
		iters = 2000
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for {
					lo := c.LoadLo()
					hi := c.LoadHi()
					if hi != ^lo {
						// The two loads are independent; a torn read here
						// just means we raced, retry on a consistent pair.
						continue
					}
					if c.CompareAndSwap(lo, hi, lo+1, ^(lo + 1)) {
						break
					}
				}
			}
			runtime.KeepAlive(c)
		}()
	}
	wg.Wait()
	lo, hi := c.LoadLo(), c.LoadHi()
	if lo != uint64(workers*iters) {
		t.Fatalf("lost increments: lo = %d, want %d", lo, workers*iters)
	}
	if hi != ^lo {
		t.Fatalf("torn final state: (%#x, %#x)", lo, hi)
	}
}

func BenchmarkCAS2Uncontended(b *testing.B) {
	s := AlignedUint128s(1)
	c := &s[0]
	var lo uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !c.CompareAndSwap(lo, 0, lo+1, 0) {
			b.Fatal("unexpected CAS failure")
		}
		lo++
	}
}
