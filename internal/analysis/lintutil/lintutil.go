// Package lintutil holds the small amount of machinery the lcrqlint
// analyzers share: //lcrq: directive parsing, detection of sync/atomic
// old-API call targets, and type queries against the repo's concurrency
// primitives (atomic128.Uint128, the sync/atomic typed wrappers, the pad
// fillers).
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicPkgPath is the import path of the double-width CAS package whose
// cells carry the 16-byte alignment obligation.
const AtomicPkgPath = "lcrq/internal/atomic128"

// PadPkgPath is the import path of the cache-line padding package.
const PadPkgPath = "lcrq/internal/pad"

// Directive reports whether the comment group contains the //lcrq:<name>
// directive and returns the remainder of that line (the directive's
// argument, trimmed) if so. Directives follow the compiler's pragma shape:
// they must start the comment with no space after the slashes.
func Directive(doc *ast.CommentGroup, name string) (arg string, ok bool) {
	if doc == nil {
		return "", false
	}
	prefix := "//lcrq:" + name
	for _, c := range doc.List {
		if c.Text == prefix {
			return "", true
		}
		if rest, found := strings.CutPrefix(c.Text, prefix+" "); found {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// FuncDirective looks the directive up on a function declaration's doc
// comment.
func FuncDirective(fn *ast.FuncDecl, name string) (string, bool) {
	return Directive(fn.Doc, name)
}

// FieldDirective looks the directive up on a struct field, accepting both
// the doc comment above the field and the line comment after it.
func FieldDirective(f *ast.Field, name string) bool {
	if _, ok := Directive(f.Doc, name); ok {
		return true
	}
	_, ok := Directive(f.Comment, name)
	return ok
}

// IsPkgType reports whether t (after unwrapping aliases) is the named type
// pkgPath.name.
func IsPkgType(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsUint128 reports whether t is atomic128.Uint128.
func IsUint128(t types.Type) bool { return IsPkgType(t, AtomicPkgPath, "Uint128") }

// ContainsUint128 reports whether a value of type t directly embeds an
// atomic128.Uint128 — as the type itself, an array element, or a struct
// field, recursively. Indirections (pointers, slices, maps) do not count:
// they do not constrain the container's own allocation.
func ContainsUint128(t types.Type) bool {
	switch t := types.Unalias(t).(type) {
	case *types.Named:
		if IsUint128(t) {
			return true
		}
		return ContainsUint128(t.Underlying())
	case *types.Array:
		return ContainsUint128(t.Elem())
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if ContainsUint128(t.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}

// IsSyncAtomicType reports whether t is one of sync/atomic's typed
// wrappers (atomic.Uint64, atomic.Pointer[T], ...).
func IsSyncAtomicType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	switch obj.Name() {
	case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
		return true
	}
	return false
}

// IsAtomicHot reports whether t is a type mutated through atomic
// instructions: a sync/atomic typed wrapper, an atomic128.Uint128, or an
// array of either. These are the fields padcheck treats as shared-mutable.
func IsAtomicHot(t types.Type) bool {
	switch t := types.Unalias(t).(type) {
	case *types.Named:
		if IsSyncAtomicType(t) || IsUint128(t) {
			return true
		}
		return IsAtomicHot(t.Underlying())
	case *types.Array:
		return IsAtomicHot(t.Elem())
	}
	return false
}

// IsPadType reports whether t is a pad.Pad / pad.Line filler or a plain
// byte array (the ad-hoc padding idiom `_ [N]byte`).
func IsPadType(t types.Type) bool {
	if IsPkgType(t, PadPkgPath, "Pad") || IsPkgType(t, PadPkgPath, "Line") {
		return true
	}
	if arr, ok := types.Unalias(t).(*types.Array); ok {
		if b, ok := types.Unalias(arr.Elem()).(*types.Basic); ok {
			return b.Kind() == types.Byte || b.Kind() == types.Uint8
		}
	}
	return false
}

// atomic64Funcs is the set of sync/atomic old-API functions operating on a
// 64-bit word through a *int64/*uint64 first argument.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
	"AndInt64": true, "AndUint64": true,
	"OrInt64": true, "OrUint64": true,
}

// atomicFuncs is every sync/atomic old-API function whose first argument
// is the address of the word it operates on.
var atomicFuncs = func() map[string]bool {
	m := map[string]bool{}
	for f := range atomic64Funcs {
		m[f] = true
		m[strings.Replace(f, "64", "32", 1)] = true
	}
	for _, f := range []string{
		"AddUintptr", "LoadUintptr", "StoreUintptr", "SwapUintptr",
		"CompareAndSwapUintptr", "AndUintptr", "OrUintptr",
		"LoadPointer", "StorePointer", "SwapPointer", "CompareAndSwapPointer",
	} {
		m[f] = true
	}
	return m
}()

// AtomicCall matches a call to a sync/atomic old-API function and returns
// the expression whose address is taken as the operand (the x in
// atomic.AddUint64(&x, 1)), plus whether the function operates on a 64-bit
// word. Returns nil if the call is not such an atomic operation.
func AtomicCall(info *types.Info, call *ast.CallExpr) (operand ast.Expr, is64 bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil, false
	}
	if !atomicFuncs[fn.Name()] {
		return nil, false
	}
	addr, ok := call.Args[0].(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return nil, false
	}
	return addr.X, atomic64Funcs[fn.Name()]
}

// ExprObject resolves an identifier or field selector expression to the
// types.Object (variable or field) it denotes, or nil.
func ExprObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	case *ast.IndexExpr:
		// &arr[i]: attribute the access to the array variable/field.
		return ExprObject(info, e.X)
	}
	return nil
}

// FieldOffset returns the byte offset of field index i of struct s under
// the given sizes.
func FieldOffset(sizes types.Sizes, s *types.Struct, i int) int64 {
	fields := make([]*types.Var, s.NumFields())
	for j := range fields {
		fields[j] = s.Field(j)
	}
	return sizes.Offsetsof(fields)[i]
}
