// Package lintutil holds the small amount of machinery the lcrqlint
// analyzers share: //lcrq: directive parsing, detection of sync/atomic
// old-API call targets, and type queries against the repo's concurrency
// primitives (atomic128.Uint128, the sync/atomic typed wrappers, the pad
// fillers).
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicPkgPath is the import path of the double-width CAS package whose
// cells carry the 16-byte alignment obligation.
const AtomicPkgPath = "lcrq/internal/atomic128"

// PadPkgPath is the import path of the cache-line padding package.
const PadPkgPath = "lcrq/internal/pad"

// ChaosPkgPath is the import path of the fault-injection package whose
// Point enum the chaosreg analyzer guards.
const ChaosPkgPath = "lcrq/internal/chaos"

// Directive reports whether the comment group contains the //lcrq:<name>
// directive and returns the remainder of that line (the directive's
// argument, trimmed) if so. Directives follow the compiler's pragma shape:
// they must start the comment with no space after the slashes.
func Directive(doc *ast.CommentGroup, name string) (arg string, ok bool) {
	if doc == nil {
		return "", false
	}
	prefix := "//lcrq:" + name
	for _, c := range doc.List {
		if c.Text == prefix {
			return "", true
		}
		if rest, found := strings.CutPrefix(c.Text, prefix+" "); found {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// FuncDirective looks the directive up on a function declaration's doc
// comment.
func FuncDirective(fn *ast.FuncDecl, name string) (string, bool) {
	return Directive(fn.Doc, name)
}

// FieldDirective looks the directive up on a struct field, accepting both
// the doc comment above the field and the line comment after it.
func FieldDirective(f *ast.Field, name string) bool {
	_, ok := FieldDirectiveArg(f, name)
	return ok
}

// FieldDirectiveArg is FieldDirective returning the directive's argument.
func FieldDirectiveArg(f *ast.Field, name string) (string, bool) {
	if arg, ok := Directive(f.Doc, name); ok {
		return arg, true
	}
	return Directive(f.Comment, name)
}

// TypeDirective looks a directive up on a type declaration, accepting both
// the TypeSpec's own doc comment and (for single-spec declarations, the
// common case) the enclosing GenDecl's.
func TypeDirective(gd *ast.GenDecl, ts *ast.TypeSpec, name string) (string, bool) {
	if arg, ok := Directive(ts.Doc, name); ok {
		return arg, true
	}
	return Directive(gd.Doc, name)
}

// VarDirective looks a directive up on a package-level var declaration,
// accepting both the ValueSpec's doc and the enclosing GenDecl's.
func VarDirective(gd *ast.GenDecl, vs *ast.ValueSpec, name string) (string, bool) {
	if arg, ok := Directive(vs.Doc, name); ok {
		return arg, true
	}
	return Directive(gd.Doc, name)
}

// IsPkgType reports whether t (after unwrapping aliases) is the named type
// pkgPath.name.
func IsPkgType(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsUint128 reports whether t is atomic128.Uint128.
func IsUint128(t types.Type) bool { return IsPkgType(t, AtomicPkgPath, "Uint128") }

// ContainsUint128 reports whether a value of type t directly embeds an
// atomic128.Uint128 — as the type itself, an array element, or a struct
// field, recursively. Indirections (pointers, slices, maps) do not count:
// they do not constrain the container's own allocation.
func ContainsUint128(t types.Type) bool {
	switch t := types.Unalias(t).(type) {
	case *types.Named:
		if IsUint128(t) {
			return true
		}
		return ContainsUint128(t.Underlying())
	case *types.Array:
		return ContainsUint128(t.Elem())
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if ContainsUint128(t.Field(i).Type()) {
				return true
			}
		}
	}
	return false
}

// IsSyncAtomicType reports whether t is one of sync/atomic's typed
// wrappers (atomic.Uint64, atomic.Pointer[T], ...).
func IsSyncAtomicType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return false
	}
	switch obj.Name() {
	case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
		return true
	}
	return false
}

// IsAtomicHot reports whether t is a type mutated through atomic
// instructions: a sync/atomic typed wrapper, an atomic128.Uint128, or an
// array of either. These are the fields padcheck treats as shared-mutable.
func IsAtomicHot(t types.Type) bool {
	switch t := types.Unalias(t).(type) {
	case *types.Named:
		if IsSyncAtomicType(t) || IsUint128(t) {
			return true
		}
		return IsAtomicHot(t.Underlying())
	case *types.Array:
		return IsAtomicHot(t.Elem())
	}
	return false
}

// IsPadType reports whether t is a pad.Pad / pad.Line filler or a plain
// byte array (the ad-hoc padding idiom `_ [N]byte`).
func IsPadType(t types.Type) bool {
	if IsPkgType(t, PadPkgPath, "Pad") || IsPkgType(t, PadPkgPath, "Line") {
		return true
	}
	if arr, ok := types.Unalias(t).(*types.Array); ok {
		if b, ok := types.Unalias(arr.Elem()).(*types.Basic); ok {
			return b.Kind() == types.Byte || b.Kind() == types.Uint8
		}
	}
	return false
}

// atomic64Funcs is the set of sync/atomic old-API functions operating on a
// 64-bit word through a *int64/*uint64 first argument.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
	"AndInt64": true, "AndUint64": true,
	"OrInt64": true, "OrUint64": true,
}

// atomicFuncs is every sync/atomic old-API function whose first argument
// is the address of the word it operates on.
var atomicFuncs = func() map[string]bool {
	m := map[string]bool{}
	for f := range atomic64Funcs {
		m[f] = true
		m[strings.Replace(f, "64", "32", 1)] = true
	}
	for _, f := range []string{
		"AddUintptr", "LoadUintptr", "StoreUintptr", "SwapUintptr",
		"CompareAndSwapUintptr", "AndUintptr", "OrUintptr",
		"LoadPointer", "StorePointer", "SwapPointer", "CompareAndSwapPointer",
	} {
		m[f] = true
	}
	return m
}()

// AtomicCall matches a call to a sync/atomic old-API function and returns
// the expression whose address is taken as the operand (the x in
// atomic.AddUint64(&x, 1)), plus whether the function operates on a 64-bit
// word. Returns nil if the call is not such an atomic operation.
func AtomicCall(info *types.Info, call *ast.CallExpr) (operand ast.Expr, is64 bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil, false
	}
	if !atomicFuncs[fn.Name()] {
		return nil, false
	}
	addr, ok := call.Args[0].(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return nil, false
	}
	return addr.X, atomic64Funcs[fn.Name()]
}

// ExprObject resolves an identifier or field selector expression to the
// types.Object (variable or field) it denotes, or nil.
func ExprObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	case *ast.IndexExpr:
		// &arr[i]: attribute the access to the array variable/field.
		return ExprObject(info, e.X)
	}
	return nil
}

// FieldOffset returns the byte offset of field index i of struct s under
// the given sizes.
func FieldOffset(sizes types.Sizes, s *types.Struct, i int) int64 {
	fields := make([]*types.Var, s.NumFields())
	for j := range fields {
		fields[j] = s.Field(j)
	}
	return sizes.Offsetsof(fields)[i]
}

// Parents maps every node under root to its parent, for analyses that need
// the syntactic context of an expression (is this selector the receiver of
// a call, the target of an assignment, the operand of &...).
func Parents(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// RootIdent walks an access chain — selectors, indexing, dereferences,
// parens, address-of — down to the identifier at its base. Returns nil for
// expressions not rooted in a plain identifier (calls, literals).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// isConstructor reports whether e is a fresh-instance expression: a
// composite literal, its address, or a new(T) call.
func isConstructor(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				return b.Name() == "new"
			}
		}
	}
	return false
}

// ConstructedLocals returns the local variables of fn that provably hold a
// fresh, not-yet-shared instance: declared `x := T{...}`, `x := &T{...}`,
// `x := new(T)`, or `var x T` (zero value), and never reassigned from any
// other source. Accesses through such variables are construction-window
// accesses — the object cannot be visible to another goroutine yet — which
// is the exemption the protocol analyzers grant to constructors. The map is
// keyed by the variable's types.Object.
//
// Taking the address of a tracked value variable (&x) forfeits ownership:
// the alias could be published and the variable mutated through it.
func ConstructedLocals(fn *ast.FuncDecl, info *types.Info) map[types.Object]bool {
	owned := make(map[types.Object]bool)
	if fn.Body == nil {
		return owned
	}
	disowned := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				}
				if n.Tok == token.DEFINE {
					if obj := info.Defs[id]; obj != nil && rhs != nil && isConstructor(info, rhs) {
						owned[obj] = true
					}
				} else if obj := info.Uses[id]; obj != nil {
					if rhs == nil || !isConstructor(info, rhs) {
						disowned[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				obj := info.Defs[id]
				if obj == nil {
					continue
				}
				if len(n.Values) == 0 || (i < len(n.Values) && isConstructor(info, n.Values[i])) {
					owned[obj] = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						disowned[obj] = true
					}
				}
			}
		}
		return true
	})
	for o := range disowned {
		delete(owned, o)
	}
	return owned
}

// mutatorMethods is the set of method names through which the repo's
// atomic wrappers (sync/atomic typed wrappers, atomic128.Uint128) and
// plain accumulator structs (instrument.Counters) mutate their receiver.
var mutatorMethods = map[string]bool{
	"Store": true, "Add": true, "Swap": true, "CompareAndSwap": true,
	"StoreLo": true, "StoreHi": true, "Or": true, "And": true,
}

// IsMutatorName reports whether a method name is a recognized receiver
// mutator (Store/Add/Swap/CompareAndSwap and the Uint128 half-stores).
func IsMutatorName(name string) bool { return mutatorMethods[name] }

// AccessKind classifies how a field selector expression is used, given the
// parent map of its enclosing declaration.
type AccessKind int

const (
	// AccessRead covers loads: plain reads, Load() method calls, value
	// copies. The default when nothing marks the access as mutating.
	AccessRead AccessKind = iota
	// AccessWrite covers mutations: assignment targets, ++/--, mutator
	// method calls (Store/Add/...), and address-of (the pointer may be
	// handed to a writer, so it is treated as mutable access).
	AccessWrite
)

// ClassifyAccess reports whether the selector expression sel (which
// resolves to a struct field) is used to mutate the field, per the parent
// context. parents must come from Parents over the enclosing declaration.
func ClassifyAccess(sel ast.Expr, parents map[ast.Node]ast.Node) AccessKind {
	cur := ast.Node(sel)
	for {
		p := parents[cur]
		switch p := p.(type) {
		case *ast.ParenExpr:
			cur = p
			continue
		case *ast.SelectorExpr:
			// sel is the X of a deeper selector: a method call on the field
			// (x.f.Store(...)) or a sub-field access (x.f.sub = ...).
			if p.X != cur {
				return AccessRead
			}
			if call, ok := parents[p].(*ast.CallExpr); ok && call.Fun == p {
				if IsMutatorName(p.Sel.Name) {
					return AccessWrite
				}
				return AccessRead
			}
			cur = p
			continue
		case *ast.IndexExpr:
			if p.X != cur {
				return AccessRead // sel is the index, not the base
			}
			cur = p
			continue
		case *ast.StarExpr:
			cur = p
			continue
		case *ast.UnaryExpr:
			if p.Op == token.AND {
				// &x.f: the address may reach a writer.
				return AccessWrite
			}
			return AccessRead
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == cur {
					return AccessWrite
				}
			}
			return AccessRead
		case *ast.IncDecStmt:
			if p.X == cur {
				return AccessWrite
			}
			return AccessRead
		default:
			return AccessRead
		}
	}
}
