// Package align128 verifies the alignment obligations of the repo's atomic
// primitives at compile time.
//
// LOCK CMPXCHG16B faults unless its operand is 16-byte aligned, and the Go
// compiler guarantees only 8-byte alignment for ordinary allocations, so
// every atomic128.Uint128 that can reach CompareAndSwap must come from
// atomic128.AlignedUint128s / AlignedSlice (DESIGN.md §10). The analyzer
// enforces, using go/types layouts:
//
//  1. Every instantiation AlignedSlice[T] has unsafe.Sizeof(T) a non-zero
//     multiple of 16, so base alignment implies element alignment (the
//     runtime panic in AlignedSlice is the backstop for reflective misuse).
//  2. Any struct embedding a Uint128 (directly or through arrays/structs)
//     keeps it at a 16-byte-multiple offset and has total size a multiple
//     of 16 — otherwise even slab-allocated containers would misalign it.
//  3. Uint128 cells are not allocated outside the blessed path: new(T),
//     make([]T, ...), composite literals, and plain var declarations of
//     Uint128-bearing types are reported (test files are exempt — they may
//     exercise the emulated CAS path, which tolerates any alignment).
//  4. Struct fields of plain int64/uint64 that the package accesses through
//     the sync/atomic old API sit at 8-byte-multiple offsets under 32-bit
//     (GOARCH=386) layout rules, where the compiler aligns uint64 to only
//     4 bytes and, unlike for atomic.Int64, makes no special guarantee.
package align128

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"lcrq/internal/analysis/lintutil"
	"lcrq/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "align128",
	Doc:  "check 16-byte alignment obligations of atomic128.Uint128 and 32-bit alignment of old-API atomic fields",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Path() == lintutil.AtomicPkgPath {
		// The implementation package is the one place allowed to
		// manufacture cells from raw memory.
		return nil, nil
	}

	sizes := pass.TypesSizes
	sizes32 := types.SizesFor("gc", "386")

	for _, file := range pass.Files {
		isTest := strings.HasSuffix(pass.Fset.File(file.Pos()).Name(), "_test.go")
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkAlignedSliceInst(pass, n, sizes)
				checkAtomic64Offset32(pass, n, sizes32)
				if !isTest {
					checkAllocCall(pass, n)
				}
			case *ast.TypeSpec:
				checkStructLayout(pass, n, sizes)
			case *ast.CompositeLit:
				if !isTest {
					checkCompositeLit(pass, n)
				}
			case *ast.ValueSpec:
				if !isTest {
					checkValueSpec(pass, n)
				}
			}
			return true
		})
	}
	return nil, nil
}

// checkAlignedSliceInst verifies rule 1: AlignedSlice[T] element sizes.
func checkAlignedSliceInst(pass *analysis.Pass, call *ast.CallExpr, sizes types.Sizes) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.IndexExpr:
		if sel, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			id = sel.Sel
		}
	}
	if id == nil || id.Name != "AlignedSlice" {
		return
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != lintutil.AtomicPkgPath {
		return
	}
	inst, ok := pass.TypesInfo.Instances[id]
	if !ok || inst.TypeArgs.Len() != 1 {
		return
	}
	elem := inst.TypeArgs.At(0)
	if size := sizes.Sizeof(elem); size == 0 || size%16 != 0 {
		pass.Reportf(call.Pos(),
			"AlignedSlice element type %s has size %d, not a non-zero multiple of 16; elements past the first will be misaligned for CMPXCHG16B",
			elem, size)
	}
}

// checkStructLayout verifies rule 2: Uint128 offsets inside struct types.
func checkStructLayout(pass *analysis.Pass, spec *ast.TypeSpec, sizes types.Sizes) {
	obj, ok := pass.TypesInfo.Defs[spec.Name]
	if !ok || obj == nil {
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok || !lintutil.ContainsUint128(st) {
		return
	}
	if size := sizes.Sizeof(st); size%16 != 0 {
		pass.Reportf(spec.Pos(),
			"struct %s embeds atomic128.Uint128 but its size %d is not a multiple of 16; slices of it cannot keep cells aligned",
			spec.Name.Name, size)
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !lintutil.ContainsUint128(f.Type()) {
			continue
		}
		if off := lintutil.FieldOffset(sizes, st, i); off%16 != 0 {
			pass.Reportf(spec.Pos(),
				"field %s.%s holds an atomic128.Uint128 at offset %d, not a multiple of 16; CMPXCHG16B requires 16-byte alignment",
				spec.Name.Name, f.Name(), off)
		}
	}
}

// checkAllocCall verifies rule 3 for new(T) and make([]T, ...).
func checkAllocCall(pass *analysis.Pass, call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return
	}
	if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || (b.Name() != "new" && b.Name() != "make") {
		return
	}
	t := pass.TypesInfo.TypeOf(call.Args[0])
	if t == nil {
		return
	}
	// For new(T) the obligation is on T; for make([]T, n) on the element.
	target := t
	if s, ok := types.Unalias(t).(*types.Slice); ok {
		target = s.Elem()
	}
	if lintutil.ContainsUint128(target) {
		pass.Reportf(call.Pos(),
			"%s allocates atomic128.Uint128 cells without alignment; use atomic128.AlignedUint128s or AlignedSlice", id.Name)
	}
}

// checkCompositeLit verifies rule 3 for literal allocations.
func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	if s, ok := types.Unalias(t).(*types.Slice); ok {
		t = s.Elem()
	}
	if lintutil.ContainsUint128(t) {
		pass.Reportf(lit.Pos(),
			"composite literal allocates atomic128.Uint128 cells without alignment; use atomic128.AlignedUint128s or AlignedSlice")
	}
}

// checkValueSpec verifies rule 3 for var declarations.
func checkValueSpec(pass *analysis.Pass, spec *ast.ValueSpec) {
	for _, name := range spec.Names {
		obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
		if !ok {
			continue
		}
		if lintutil.ContainsUint128(obj.Type()) {
			pass.Reportf(name.Pos(),
				"variable %s allocates atomic128.Uint128 cells without alignment; use atomic128.AlignedUint128s or AlignedSlice", name.Name)
		}
	}
}

// checkAtomic64Offset32 verifies rule 4: 64-bit old-API atomic operands
// must sit at 8-byte-multiple offsets under 386 layout.
func checkAtomic64Offset32(pass *analysis.Pass, call *ast.CallExpr, sizes32 types.Sizes) {
	operand, is64 := lintutil.AtomicCall(pass.TypesInfo, call)
	if operand == nil || !is64 {
		return
	}
	// Unwrap indexing so array-of-word fields are covered too — the SCQ
	// ring's cycle-tagged entry words are exactly this shape. The element
	// stride of a 64-bit word is 8, so a misaligned array base misaligns
	// every element regardless of the (possibly dynamic) index.
	expr := ast.Unparen(operand)
	for {
		ix, ok := expr.(*ast.IndexExpr)
		if !ok {
			break
		}
		expr = ast.Unparen(ix.X)
	}
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	// Walk the selection's field index path, accumulating the offset under
	// 32-bit layout. Any 8-misaligned step is a fault on 386/arm.
	recv := selection.Recv()
	if p, ok := types.Unalias(recv).(*types.Pointer); ok {
		recv = p.Elem()
	}
	var off int64
	t := recv
	for _, idx := range selection.Index() {
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return
		}
		off += lintutil.FieldOffset(sizes32, st, idx)
		t = st.Field(idx).Type()
	}
	if off%8 != 0 {
		name := fmt.Sprintf("%s.%s", recv, sel.Sel.Name)
		pass.Reportf(call.Pos(),
			"atomic 64-bit operation on field %s at 32-bit offset %d; sync/atomic requires 8-byte alignment on 386/arm — make it the first field, pad it, or use atomic.Int64/Uint64",
			name, off)
	}
}
