// Package align128test is a lint fixture: deliberate violations of the
// 16-byte alignment obligations the align128 analyzer enforces, plus
// clean counterparts that must stay diagnostic-free.
package align128test

import (
	"sync/atomic"

	"lcrq/internal/atomic128"
)

// Bad embeds a Uint128 at a misaligned offset and has a size that breaks
// slice element alignment.
type Bad struct { // want `struct Bad embeds atomic128\.Uint128 but its size 24 is not a multiple of 16` `field Bad\.cell holds an atomic128\.Uint128 at offset 8, not a multiple of 16`
	word uint64
	cell atomic128.Uint128
}

// Good keeps the cell first and pads the tail to a 16-byte multiple.
type Good struct {
	cell atomic128.Uint128
	word uint64
	_    uint64
}

// global is a plainly allocated cell: only 8-byte alignment is guaranteed.
var global atomic128.Uint128 // want `variable global allocates atomic128\.Uint128 cells without alignment`

func alloc() (*atomic128.Uint128, []atomic128.Uint128) {
	p := new(atomic128.Uint128)        // want `new allocates atomic128\.Uint128 cells without alignment`
	s := make([]atomic128.Uint128, 4)  // want `make allocates atomic128\.Uint128 cells without alignment`
	v := atomic128.Uint128{}           // want `composite literal allocates atomic128\.Uint128 cells without alignment`
	ok := atomic128.AlignedUint128s(4) // the blessed allocation path
	_, _ = v, ok
	return p, s
}

// oddCell is 24 bytes: as an AlignedSlice element, every element past the
// first would be misaligned.
type oddCell struct {
	a, b uint64
	c    uint32
}

// evenCell is exactly 32 bytes.
type evenCell struct {
	cell atomic128.Uint128
	seq  uint64
	_    uint64
}

func slices() {
	_ = atomic128.AlignedSlice[oddCell](4) // want `AlignedSlice element type align128test\.oddCell has size 24, not a non-zero multiple of 16`
	_ = atomic128.AlignedSlice[evenCell](4)
}

// counters uses the old sync/atomic API on a field that 386 layout places
// at offset 4.
type counters struct {
	flag uint32
	hits uint64
	ok   uint64
}

func bump(c *counters) {
	atomic.AddUint64(&c.hits, 1) // want `atomic 64-bit operation on field .*counters\.hits at 32-bit offset 4`
}

// bumpOK is clean only because 386 layout places ok at offset 12... which
// is also misaligned; both fields are flagged, showing the walk reaches
// every operand.
func bumpOK(c *counters) {
	atomic.AddUint64(&c.ok, 1) // want `atomic 64-bit operation on field .*counters\.ok at 32-bit offset 12`
}

// aligned64 keeps its 64-bit word first, the documented convention.
type aligned64 struct {
	hits uint64
	flag uint32
}

func bumpAligned(c *aligned64) {
	atomic.AddUint64(&c.hits, 1)
}

// scqRingFixture mirrors the portable SCQ ring's shape on the old API: the
// cycle-tagged entry words and the threshold counter are single 64-bit
// operands, not 16-byte cells, and rule 4 must still cover them. The bool
// pushes both to misaligned 32-bit offsets.
type scqRingFixture struct {
	closed  bool
	thr     int64
	entries [4]uint64
}

func scqDecrThreshold(r *scqRingFixture) int64 {
	return atomic.AddInt64(&r.thr, -1) // want `atomic 64-bit operation on field .*scqRingFixture\.thr at 32-bit offset 4`
}

func scqConsume(r *scqRingFixture, j int) uint64 {
	return atomic.LoadUint64(&r.entries[j]) // want `atomic 64-bit operation on field .*scqRingFixture\.entries at 32-bit offset 12`
}
