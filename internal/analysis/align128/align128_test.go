package align128_test

import (
	"testing"

	"lcrq/internal/analysis/align128"
	"lcrq/internal/lint/linttest"
)

func TestAlign128(t *testing.T) {
	linttest.Run(t, align128.Analyzer, "align128test")
}
