// Package seqlockcheck enforces the repo's seqlock protocol on fields
// annotated //lcrq:seqlock <version>.
//
// The queue's observability layers publish multi-word state to concurrent
// readers without locks by pairing the data with a version word: a writer
// bumps the version (odd = mid-update, or 0 = unpublished for the tag-style
// ring slots) before the first guarded store and publishes it again after
// the last one; a reader loads the version, reads the guarded words, then
// re-loads the version and discards (or retries) the pass when the two
// loads disagree. The repo carries at least four of these: the telemetry
// event ring, the recent-traces ring, the per-ring trace stamps, and the
// Snapshot/Unregister retire fold. The retire-fold race fixed in PR 8 — a
// scrape mixing the new retired sum with the stale live list — was exactly
// a guarded access outside the protocol, caught only by a flaky test; this
// analyzer catches that class at compile time.
//
// Annotation: a struct field carrying `//lcrq:seqlock ver` (doc or line
// comment) is guarded by the version field named ver in the same struct.
// Several fields naming the same version word form one guarded group — the
// pair (or triple) the seqlock makes atomic. Per function, the analyzer
// then requires:
//
//   - any function mutating a guarded field (assignment, ++/--, a
//     Store/Add/Swap/CompareAndSwap method call, or taking its address)
//     must write the version word both before its first guarded access and
//     after its last one — the odd/even (or unpublish/publish) bracket;
//   - any function that only reads guarded fields must load the version
//     word before the first guarded read and again after the last one, and
//     must compare a version load somewhere (== or !=), the re-check that
//     turns a torn read into a retry or a dropped sample;
//   - accesses through a provably unpublished local (a variable holding a
//     fresh composite literal or new(T) — the construction window) and
//     functions annotated //lcrq:exclusive are exempt.
//
// The bracket test is positional within the function body, which matches
// how every seqlock in the repo is written (straight-line critical
// sections, per-slot loops whose body reads in source order). It cannot
// prove cross-function protocols; keep each critical section in one
// function, which is also the reviewable shape.
package seqlockcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"lcrq/internal/analysis/lintutil"
	"lcrq/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "seqlockcheck",
	Doc:  "check that //lcrq:seqlock guarded fields are only accessed under the version-word protocol",
	Run:  run,
}

// verInfo describes one guarded field: the version word that guards it and
// the names used in diagnostics.
type verInfo struct {
	ver        types.Object
	fieldName  string
	structName string
}

func run(pass *analysis.Pass) (interface{}, error) {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, exclusive := lintutil.FuncDirective(fn, "exclusive"); exclusive {
				continue
			}
			checkFunc(pass, fn, guarded)
		}
	}
	return nil, nil
}

// collectGuarded maps each annotated field object to its version word.
func collectGuarded(pass *analysis.Pass) map[types.Object]verInfo {
	guarded := make(map[types.Object]verInfo)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				collectStruct(pass, ts, st, guarded)
			}
		}
	}
	return guarded
}

func collectStruct(pass *analysis.Pass, ts *ast.TypeSpec, st *ast.StructType, guarded map[types.Object]verInfo) {
	// Resolve a version-field name to its object within this struct.
	verObj := func(name string) types.Object {
		for _, f := range st.Fields.List {
			for _, id := range f.Names {
				if id.Name == name {
					return pass.TypesInfo.Defs[id]
				}
			}
		}
		return nil
	}
	for _, f := range st.Fields.List {
		arg, ok := lintutil.FieldDirectiveArg(f, "seqlock")
		if !ok {
			continue
		}
		if arg == "" {
			pass.Reportf(f.Pos(), "//lcrq:seqlock on %s.%s names no version field (want //lcrq:seqlock <field>)",
				ts.Name.Name, fieldNames(f))
			continue
		}
		ver := verObj(arg)
		if ver == nil {
			pass.Reportf(f.Pos(), "//lcrq:seqlock on %s.%s names unknown version field %q in %s",
				ts.Name.Name, fieldNames(f), arg, ts.Name.Name)
			continue
		}
		for _, id := range f.Names {
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				continue
			}
			if obj == ver {
				pass.Reportf(f.Pos(), "//lcrq:seqlock on %s.%s names the field itself as its version word",
					ts.Name.Name, id.Name)
				continue
			}
			guarded[obj] = verInfo{ver: ver, fieldName: id.Name, structName: ts.Name.Name}
		}
	}
}

func fieldNames(f *ast.Field) string {
	if len(f.Names) == 0 {
		return "_"
	}
	s := f.Names[0].Name
	for _, id := range f.Names[1:] {
		s += "," + id.Name
	}
	return s
}

// access is one guarded-field use inside a function.
type access struct {
	pos   token.Pos
	node  ast.Node
	info  verInfo
	write bool
}

// verOps collects, per version object, the positions of its writes and
// reads and whether any ==/!= comparison involves it.
type verOps struct {
	writes   []token.Pos
	reads    []token.Pos
	compared bool
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, guarded map[types.Object]verInfo) {
	// Version objects of interest: the union over guarded fields.
	vers := make(map[types.Object]bool)
	for _, vi := range guarded {
		vers[vi.ver] = true
	}

	parents := lintutil.Parents(fn)
	owned := lintutil.ConstructedLocals(fn, pass.TypesInfo)

	accesses := make(map[types.Object][]access) // keyed by version object
	ops := make(map[types.Object]*verOps)
	opsFor := func(v types.Object) *verOps {
		o := ops[v]
		if o == nil {
			o = &verOps{}
			ops[v] = o
		}
		return o
	}

	ast.Inspect(fn, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			obj := selObject(pass.TypesInfo, n)
			if obj == nil {
				return true
			}
			if vi, isGuarded := guarded[obj]; isGuarded {
				if root := lintutil.RootIdent(n); root != nil {
					if ro := pass.TypesInfo.Uses[root]; ro != nil && owned[ro] {
						return true // construction window: object not yet shared
					}
				}
				accesses[vi.ver] = append(accesses[vi.ver], access{
					pos:   n.Pos(),
					node:  n,
					info:  vi,
					write: lintutil.ClassifyAccess(n, parents) == lintutil.AccessWrite,
				})
				return true
			}
			if vers[obj] {
				o := opsFor(obj)
				if lintutil.ClassifyAccess(n, parents) == lintutil.AccessWrite {
					o.writes = append(o.writes, n.Pos())
				} else {
					o.reads = append(o.reads, n.Pos())
				}
			}
		case *ast.CallExpr:
			// Old-API sync/atomic forms: atomic.AddUint64(&s.ver, 1).
			operand, _ := lintutil.AtomicCall(pass.TypesInfo, n)
			if operand == nil {
				return true
			}
			obj := lintutil.ExprObject(pass.TypesInfo, ast.Unparen(operand))
			if obj == nil || !vers[obj] {
				return true
			}
			o := opsFor(obj)
			if isLoadCall(n) {
				o.reads = append(o.reads, n.Pos())
			} else {
				o.writes = append(o.writes, n.Pos())
			}
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			ast.Inspect(n, func(m ast.Node) bool {
				if sel, ok := m.(*ast.SelectorExpr); ok {
					if obj := selObject(pass.TypesInfo, sel); obj != nil && vers[obj] {
						opsFor(obj).compared = true
					}
				}
				return true
			})
		}
		return true
	})

	for ver, accs := range accesses {
		reportGroup(pass, fn, ver, accs, ops[ver])
	}
}

// reportGroup applies the writer or reader rule to one guarded group's
// accesses within one function.
func reportGroup(pass *analysis.Pass, fn *ast.FuncDecl, ver types.Object, accs []access, o *verOps) {
	if len(accs) == 0 {
		return
	}
	if o == nil {
		o = &verOps{}
	}
	first, last := accs[0], accs[0]
	hasWrite := false
	for _, a := range accs {
		if a.pos < first.pos {
			first = a
		}
		if a.pos > last.pos {
			last = a
		}
		hasWrite = hasWrite || a.write
	}
	verName := ver.Name()

	if hasWrite {
		if !anyBefore(o.writes, first.pos) {
			pass.Reportf(first.pos,
				"seqlock-guarded field %s.%s mutated in %s without writing version %s first (make the version odd/unpublished before the first guarded store)",
				first.info.structName, first.info.fieldName, fn.Name.Name, verName)
		}
		if !anyAfter(o.writes, last.pos) {
			pass.Reportf(last.pos,
				"seqlock-guarded field %s.%s mutated in %s without publishing version %s afterwards (write the version again after the last guarded store)",
				last.info.structName, last.info.fieldName, fn.Name.Name, verName)
		}
		return
	}

	if !anyBefore(o.reads, first.pos) {
		pass.Reportf(first.pos,
			"seqlock-guarded field %s.%s read in %s without loading version %s first",
			first.info.structName, first.info.fieldName, fn.Name.Name, verName)
	}
	if !anyAfter(o.reads, last.pos) {
		pass.Reportf(last.pos,
			"seqlock-guarded field %s.%s read in %s without re-reading version %s afterwards (double-read the version around guarded loads)",
			last.info.structName, last.info.fieldName, fn.Name.Name, verName)
	} else if !o.compared {
		pass.Reportf(first.pos,
			"guarded reads in %s never compare version %s; check the re-read against the first read and retry or discard the pass",
			fn.Name.Name, verName)
	}
}

func anyBefore(ps []token.Pos, p token.Pos) bool {
	for _, q := range ps {
		if q < p {
			return true
		}
	}
	return false
}

func anyAfter(ps []token.Pos, p token.Pos) bool {
	for _, q := range ps {
		if q > p {
			return true
		}
	}
	return false
}

// selObject resolves a selector to the field/variable it denotes.
func selObject(info *types.Info, sel *ast.SelectorExpr) types.Object {
	if s, ok := info.Selections[sel]; ok {
		return s.Obj()
	}
	return info.Uses[sel.Sel]
}

// isLoadCall reports whether the call's function name contains "Load"
// (old-API atomic loads).
func isLoadCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	for i := 0; i+4 <= len(name); i++ {
		if name[i:i+4] == "Load" {
			return true
		}
	}
	return false
}
