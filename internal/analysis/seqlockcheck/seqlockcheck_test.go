package seqlockcheck_test

import (
	"testing"

	"lcrq/internal/analysis/seqlockcheck"
	"lcrq/internal/lint/linttest"
)

func TestSeqlockcheck(t *testing.T) {
	linttest.Run(t, seqlockcheck.Analyzer, "seqlocktest")
}
