// Package seqlocktest is a lint fixture: seqlock-guarded fields accessed
// inside and outside the version-word protocol, including a reproduction
// of the telemetry retire-fold race the protocol exists to prevent.
package seqlocktest

import "sync/atomic"

// slot is the ring-slot shape: one version word guarding a payload pair.
type slot struct {
	seq atomic.Uint64
	//lcrq:seqlock seq
	id atomic.Uint64
	//lcrq:seqlock seq
	ns atomic.Int64
}

// goodWrite publishes under the full bracket: version bumped before the
// first guarded store and again after the last.
func (s *slot) goodWrite(id uint64, ns int64) {
	s.seq.Add(1)
	s.id.Store(id)
	s.ns.Store(ns)
	s.seq.Add(1)
}

// goodRead double-reads the version and drops torn passes.
func (s *slot) goodRead() (uint64, int64, bool) {
	v := s.seq.Load()
	id := s.id.Load()
	ns := s.ns.Load()
	if s.seq.Load() != v {
		return 0, 0, false
	}
	return id, ns, true
}

// badWriteNoBracket mutates the payload with no version traffic at all.
func (s *slot) badWriteNoBracket(id uint64) {
	s.id.Store(id) // want `mutated in badWriteNoBracket without writing version seq first` `without publishing version seq afterwards`
}

// badWriteHalfBracket opens the bracket but never closes it: a reader that
// starts after the store sees an even version over torn data.
func (s *slot) badWriteHalfBracket(id uint64, ns int64) {
	s.seq.Add(1)
	s.id.Store(id)
	s.ns.Store(ns) // want `mutated in badWriteHalfBracket without publishing version seq afterwards`
}

// badReadNoRecheck loads the version once and never re-reads it, so a
// concurrent writer tears the pair invisibly.
func (s *slot) badReadNoRecheck() (uint64, int64) {
	v := s.seq.Load()
	_ = v
	id := s.id.Load()
	ns := s.ns.Load() // want `read in badReadNoRecheck without re-reading version seq afterwards`
	return id, ns
}

// badReadNoCompare double-reads the version but never compares the two
// loads, so the re-read decides nothing.
func (s *slot) badReadNoCompare() uint64 {
	s.seq.Load()
	id := s.id.Load() // want `guarded reads in badReadNoCompare never compare version seq`
	s.seq.Load()
	return id
}

// newSlot writes through a provably unpublished local: the construction
// window needs no bracket.
func newSlot(id uint64) *slot {
	s := &slot{}
	s.id.Store(id)
	return s
}

// drain runs after quiescence; the annotation sanctions protocol-free
// access.
//
//lcrq:exclusive
func drain(s *slot) (uint64, int64) {
	return s.id.Load(), s.ns.Load()
}

// sink models the PR 8 telemetry retire fold: a retired aggregate and a
// live-record list that must change atomically with respect to a scraper,
// guarded by one version word.
type sink struct {
	retireVer atomic.Uint64
	//lcrq:seqlock retireVer
	retired uint64
	//lcrq:seqlock retireVer
	recs atomic.Pointer[[]uint64]
}

// unregisterRacy is the pre-fix fold shape: it adds the departing record
// to the retired sum and swaps the live list with no version bracket, so
// a concurrent scrape can read the new sum alongside the stale list and
// count the handle twice.
func (s *sink) unregisterRacy(v uint64) {
	s.retired += v // want `mutated in unregisterRacy without writing version retireVer first`
	old := *s.recs.Load()
	next := make([]uint64, 0, len(old))
	for _, o := range old {
		if o != v {
			next = append(next, o)
		}
	}
	s.recs.Store(&next) // want `mutated in unregisterRacy without publishing version retireVer afterwards`
}

// snapshotRacy is the pre-fix scrape shape: both halves read with no
// version check at all.
func (s *sink) snapshotRacy() (uint64, int) {
	sum := s.retired // want `read in snapshotRacy without loading version retireVer first`
	n := len(*s.recs.Load()) // want `read in snapshotRacy without re-reading version retireVer afterwards`
	return sum, n
}

// unregisterFixed is the post-fix fold: odd before the first half, even
// after the second.
func (s *sink) unregisterFixed(v uint64) {
	s.retireVer.Add(1)
	s.retired += v
	old := *s.recs.Load()
	next := make([]uint64, 0, len(old))
	for _, o := range old {
		if o != v {
			next = append(next, o)
		}
	}
	s.recs.Store(&next)
	s.retireVer.Add(1)
}

// snapshotFixed is the post-fix scrape: retry until a whole pass lands
// between folds.
func (s *sink) snapshotFixed() (uint64, int) {
	for {
		v := s.retireVer.Load()
		if v&1 != 0 {
			continue
		}
		sum := s.retired
		n := len(*s.recs.Load())
		if s.retireVer.Load() == v {
			return sum, n
		}
	}
}

// badAnno exercises the annotation sanity checks.
type badAnno struct {
	ver atomic.Uint64
	//lcrq:seqlock missing
	a uint64 // want `names unknown version field "missing"`
	//lcrq:seqlock
	b uint64 // want `names no version field`
	//lcrq:seqlock c
	c uint64 // want `names the field itself`
}
