// Package padcheck verifies the cache-line layout of structs annotated
// //lcrq:padded.
//
// The paper's F&A-over-CAS win assumes the CRQ head, tail, and next words
// live on distinct cache lines; drop a pad field in a refactor and the
// benchmarks quietly measure false sharing instead of the algorithm
// (Morrison & Afek 2013 §4; SCQ/wCQ make the same layout load-bearing).
// The analyzer computes field offsets with the target architecture's
// types.Sizes and enforces, for every annotated struct:
//
//   - every atomically mutated field (sync/atomic typed wrappers,
//     atomic128.Uint128, arrays of either) is HOT by default: it must not
//     share a 64-byte line with any other atomic field;
//   - fields annotated //lcrq:cold (slow-path gauges, close flags) may
//     share lines with each other but never with a hot field;
//   - padding (pad.Pad, pad.Line, byte arrays) and non-atomic fields are
//     ignored — the latter are read-mostly configuration by repo
//     convention, which the annotation's owner vouches for.
package padcheck

import (
	"go/ast"
	"go/types"

	"lcrq/internal/analysis/lintutil"
	"lcrq/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "padcheck",
	Doc:  "check that structs annotated //lcrq:padded keep hot atomic fields on private cache lines",
	Run:  run,
}

// cacheLine is the unit of false sharing the check guards against. 64
// bytes is the line size of every x86 part the paper targets; pad.Pad's
// 128-byte stride is a prefetcher-conscious widening of the same rule.
const cacheLine = 64

type fieldInfo struct {
	name  string
	pos   ast.Node
	cold  bool
	first int64 // first cache line covered
	last  int64 // last cache line covered
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if _, padded := lintutil.Directive(doc, "padded"); !padded {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					pass.Reportf(ts.Pos(), "//lcrq:padded annotation on %s, which is not a struct type", ts.Name.Name)
					continue
				}
				checkStruct(pass, ts, st)
			}
		}
	}
	return nil, nil
}

func checkStruct(pass *analysis.Pass, ts *ast.TypeSpec, st *ast.StructType) {
	obj := pass.TypesInfo.Defs[ts.Name]
	if obj == nil {
		return
	}
	tst, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}

	// Map syntax fields to type-checker fields so annotations line up with
	// offsets. A syntax field with multiple names expands to several
	// consecutive type fields.
	var fields []fieldInfo
	idx := 0
	for _, f := range st.Fields.List {
		n := len(f.Names)
		if n == 0 {
			n = 1 // embedded field
		}
		for j := 0; j < n; j++ {
			tf := tst.Field(idx)
			off := lintutil.FieldOffset(pass.TypesSizes, tst, idx)
			size := pass.TypesSizes.Sizeof(tf.Type())
			idx++
			if !lintutil.IsAtomicHot(tf.Type()) || lintutil.IsPadType(tf.Type()) {
				continue
			}
			end := off
			if size > 0 {
				end = off + size - 1
			}
			fields = append(fields, fieldInfo{
				name:  tf.Name(),
				pos:   f,
				cold:  lintutil.FieldDirective(f, "cold"),
				first: off / cacheLine,
				last:  end / cacheLine,
			})
		}
	}

	for i := 1; i < len(fields); i++ {
		for j := 0; j < i; j++ {
			a, b := fields[j], fields[i]
			if a.last < b.first || b.last < a.first {
				continue // disjoint line spans
			}
			if a.cold && b.cold {
				continue // cold fields may share a line
			}
			pass.Reportf(b.pos.Pos(),
				"%s.%s shares a %d-byte cache line with %s; hot atomic fields need a private line (insert pad.Pad/pad.Line or annotate both //lcrq:cold)",
				ts.Name.Name, b.name, cacheLine, a.name)
		}
	}
}
