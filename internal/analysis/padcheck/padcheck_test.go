package padcheck_test

import (
	"testing"

	"lcrq/internal/analysis/padcheck"
	"lcrq/internal/lint/linttest"
)

func TestPadcheck(t *testing.T) {
	linttest.Run(t, padcheck.Analyzer, "padchecktest")
}
