// Package padchecktest is a lint fixture: //lcrq:padded structs whose
// cache-line layout violates the private-line rule, plus correct layouts
// that must stay diagnostic-free.
package padchecktest

import (
	"sync/atomic"

	"lcrq/internal/atomic128"
	"lcrq/internal/pad"
)

// ring forgot the pad between its two contended words.
//
//lcrq:padded
type ring struct {
	head atomic.Uint64
	tail atomic.Uint64 // want `ring\.tail shares a 64-byte cache line with head`
}

// padded is the layout ring should have had.
//
//lcrq:padded
type padded struct {
	head atomic.Uint64
	_    pad.Pad
	tail atomic.Uint64
	_    pad.Pad
}

// mixed pairs a hot word with a cold gauge on one line; cold may never
// share with hot.
//
//lcrq:padded
type mixed struct {
	gauge atomic.Uint64 //lcrq:cold
	hot   atomic.Uint64 // want `mixed\.hot shares a 64-byte cache line with gauge`
	_     pad.Pad
}

// gauges shows that cold fields may share a line with each other, that
// ad-hoc byte-array padding is recognized, and that plain (non-atomic)
// fields are ignored.
//
//lcrq:padded
type gauges struct {
	hot atomic.Uint64
	_   [56]byte
	// cap is plain read-mostly configuration, invisible to the check.
	cap  uint64
	errs atomic.Uint64 //lcrq:cold
	drop atomic.Uint64 //lcrq:cold
}

// wide shows an atomic128 cell being treated as hot.
//
//lcrq:padded
type wide struct {
	cell atomic128.Uint128
	seq  atomic.Uint64 // want `wide\.seq shares a 64-byte cache line with cell`
	_    [40]byte
}

// stampSlot mirrors the item-trace stamp layout: the seqlock tag word is
// written by enqueuers and re-read by dequeuers, so it may not share a line
// with the array-neighbor words of an adjacent slot's tag — the fixture
// checks the within-struct rule (tag/id/ns are one slot's private line).
//
//lcrq:padded
type stampSlot struct {
	tag atomic.Uint64
	id  atomic.Uint64 // want `stampSlot\.id shares a 64-byte cache line with tag`
	ns  atomic.Int64  // want `stampSlot\.ns shares a 64-byte cache line with tag` `stampSlot\.ns shares a 64-byte cache line with id`
}

// stampSlotPadded is the compliant layout (the real traceStamp rides the
// ring's existing padding; when it cannot, this is the required shape).
//
//lcrq:padded
type stampSlotPadded struct {
	tag atomic.Uint64
	_   [56]byte
	id  atomic.Uint64 //lcrq:cold
	ns  atomic.Int64  //lcrq:cold
}

// adaptBoost mirrors the adaptive contention controller's queue-wide state:
// the boost shift is loaded by every enqueue retry iteration (StarveLimit),
// while the raise/decay tallies are touched only by the watchdog's
// remediation tick and Metrics() — cold writers may not drag their line
// into the retry path's working set.
//
//lcrq:padded
type adaptBoost struct {
	boost  atomic.Uint64
	raises atomic.Uint64 // want `adaptBoost\.raises shares a 64-byte cache line with boost`
	decays atomic.Uint64 // want `adaptBoost\.decays shares a 64-byte cache line with boost` `adaptBoost\.decays shares a 64-byte cache line with raises`
}

// adaptBoostPadded is the required layout (the shape of the real
// contention.Shared): the hot boost word on a private line, the cold
// tallies together behind it.
//
//lcrq:padded
type adaptBoostPadded struct {
	boost  atomic.Uint64
	_      pad.Pad
	raises atomic.Uint64 //lcrq:cold
	decays atomic.Uint64 //lcrq:cold
}

// notAStruct cannot carry the annotation at all.
//
//lcrq:padded
type notAStruct int // want `//lcrq:padded annotation on notAStruct, which is not a struct type`
