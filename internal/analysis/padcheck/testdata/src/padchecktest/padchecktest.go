// Package padchecktest is a lint fixture: //lcrq:padded structs whose
// cache-line layout violates the private-line rule, plus correct layouts
// that must stay diagnostic-free.
package padchecktest

import (
	"sync/atomic"

	"lcrq/internal/atomic128"
	"lcrq/internal/pad"
)

// ring forgot the pad between its two contended words.
//
//lcrq:padded
type ring struct {
	head atomic.Uint64
	tail atomic.Uint64 // want `ring\.tail shares a 64-byte cache line with head`
}

// padded is the layout ring should have had.
//
//lcrq:padded
type padded struct {
	head atomic.Uint64
	_    pad.Pad
	tail atomic.Uint64
	_    pad.Pad
}

// mixed pairs a hot word with a cold gauge on one line; cold may never
// share with hot.
//
//lcrq:padded
type mixed struct {
	gauge atomic.Uint64 //lcrq:cold
	hot   atomic.Uint64 // want `mixed\.hot shares a 64-byte cache line with gauge`
	_     pad.Pad
}

// gauges shows that cold fields may share a line with each other, that
// ad-hoc byte-array padding is recognized, and that plain (non-atomic)
// fields are ignored.
//
//lcrq:padded
type gauges struct {
	hot atomic.Uint64
	_   [56]byte
	// cap is plain read-mostly configuration, invisible to the check.
	cap  uint64
	errs atomic.Uint64 //lcrq:cold
	drop atomic.Uint64 //lcrq:cold
}

// wide shows an atomic128 cell being treated as hot.
//
//lcrq:padded
type wide struct {
	cell atomic128.Uint128
	seq  atomic.Uint64 // want `wide\.seq shares a 64-byte cache line with cell`
	_    [40]byte
}

// notAStruct cannot carry the annotation at all.
//
//lcrq:padded
type notAStruct int // want `//lcrq:padded annotation on notAStruct, which is not a struct type`
