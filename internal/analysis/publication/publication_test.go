package publication_test

import (
	"testing"

	"lcrq/internal/analysis/publication"
	"lcrq/internal/lint/linttest"
)

func TestPublication(t *testing.T) {
	linttest.Run(t, publication.Analyzer, "publicationtest")
}
