// Package publicationtest is a lint fixture: plain fields of published
// types written before and after the object escapes.
package publicationtest

import "sync/atomic"

// ring models the construct-then-publish lifecycle: plain geometry fields
// frozen at publication, one atomic for post-publication state.
//
//lcrq:publish
type ring struct {
	mask  uint64
	slab  []uint64
	ready atomic.Uint32
}

var shared atomic.Pointer[ring]

// newRing is the sanctioned shape: every plain write precedes the escape.
func newRing(n int) *ring {
	r := &ring{}
	r.mask = uint64(n - 1)
	r.slab = make([]uint64, n)
	shared.Store(r)
	return r
}

// lateWrite keeps writing after the publishing store: the write races
// every reader that already holds the pointer.
func lateWrite(n int) {
	r := &ring{}
	r.mask = 1
	shared.Store(r)
	r.slab = make([]uint64, n) // want `field slab of published type ring written after r escaped at line \d+`
}

// mutateShared writes an object it did not construct.
func mutateShared() {
	r := shared.Load()
	r.mask = 0 // want `plain field mask of published type ring written in mutateShared outside its construction window`
}

// grow receives the object from elsewhere: already published.
func grow(r *ring) {
	r.slab = append(r.slab, 0) // want `plain field slab of published type ring written in grow outside its construction window`
}

// leak takes an interior pointer a writer could store through.
func leak(r *ring) *uint64 {
	return &r.mask // want `plain field mask of published type ring written in leak outside its construction window`
}

// reset re-establishes exclusivity by protocol (reclamation, quiescence);
// the annotation sanctions the plain writes.
//
//lcrq:exclusive
func reset(r *ring) {
	r.mask = 0
	r.slab = r.slab[:0]
}

// flip mutates post-publication state through the atomic's method set:
// not a plain write, atomiconly territory.
func flip(r *ring) {
	r.ready.Store(1)
}

// geometry reads are unrestricted.
func geometry(r *ring) uint64 {
	return r.mask
}

// notAStruct cannot carry a publication contract.
//
//lcrq:publish
type notAStruct int // want `annotation on notAStruct, which is not a struct type`
