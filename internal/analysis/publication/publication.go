// Package publication enforces safe-publication construction windows for
// types annotated //lcrq:publish.
//
// The queue's shared objects follow one lifecycle: build the object with
// plain stores while it is still private to the constructing goroutine,
// then publish it — an atomic pointer store, a registry append, a return —
// and never plainly write it again. The happens-before edge of the
// publishing store is what makes the plain construction stores visible to
// every reader; a plain write *after* publication has no such edge and is
// a data race, however innocent it looks (the CRQ's mask/slab/stamps, a
// Sink's histogram table, a flight-recorder frame being filled in).
//
// atomiconly's //lcrq:exclusive directive already exempted single-threaded
// windows, but as an unchecked per-function claim. This analyzer turns the
// pre-publication half of that claim into a checked phase: annotate the
// type once, and the analyzer verifies that plain writes to its fields
// happen only while the instance is provably unpublished.
//
// A write to a field of a //lcrq:publish type is accepted when:
//
//   - the access chain roots at a local variable holding a fresh instance
//     (x := T{...}, x := &T{...}, new(T), var x T) and the write precedes
//     the variable's first escape — passing it (or a pointer into it) to a
//     call, assigning it anywhere, storing it in a composite literal or
//     container, sending it, or returning it; or
//   - the enclosing function is annotated //lcrq:exclusive — the remaining
//     legitimate post-publication windows (teardown after quiescence,
//     reset of a reclaimed ring) where exclusivity is re-established by
//     the reclamation protocol rather than by construction order.
//
// Two field classes are exempt because they carry their own checked
// protocol: atomic fields (sync/atomic wrappers, atomic128.Uint128 —
// atomiconly's domain; taking their address to pass to a CAS helper is the
// hazard-pointer idiom, not a plain write) and //lcrq:seqlock-guarded
// fields (seqlockcheck's domain — the retire fold legitimately mutates
// them post-publication, under the version bracket).
//
// Likewise three uses are deliberately not escapes: method calls through
// the object (x.mu.Lock() — construct-then-init), field values passed to
// calls or copied out (append(d.Frames, ...) copies a slice header, it
// does not publish d), and addresses of slab *elements* (&q.slab[i]
// reaches one atomic cell, never the object's plain fields). Reads are
// unrestricted.
package publication

import (
	"go/ast"
	"go/token"
	"go/types"

	"lcrq/internal/analysis/lintutil"
	"lcrq/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "publication",
	Doc:  "check that plain fields of //lcrq:publish types are written only before the object escapes",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	fields := make(map[types.Object]*types.Named)
	count := 0
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if _, ok := lintutil.TypeDirective(gd, ts, "publish"); !ok {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					pass.Reportf(ts.Pos(), "//lcrq:publish annotation on %s, which is not a struct type", ts.Name.Name)
					continue
				}
				count++
				for _, f := range st.Fields.List {
					if lintutil.FieldDirective(f, "seqlock") {
						continue // its own protocol; seqlockcheck territory
					}
					for _, id := range f.Names {
						fobj, ok := pass.TypesInfo.Defs[id].(*types.Var)
						if !ok || lintutil.IsAtomicHot(fobj.Type()) {
							continue // atomics are atomiconly territory
						}
						fields[fobj] = named
					}
				}
			}
		}
	}
	if count == 0 {
		return nil, nil
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, exclusive := lintutil.FuncDirective(fn, "exclusive"); exclusive {
				continue
			}
			checkFunc(pass, fn, fields)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, fields map[types.Object]*types.Named) {
	parents := lintutil.Parents(fn)
	owned := lintutil.ConstructedLocals(fn, pass.TypesInfo)
	escapes := escapePositions(pass.TypesInfo, fn, parents, owned)

	ast.Inspect(fn, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok {
			return true
		}
		named, guarded := fields[s.Obj()]
		if !guarded {
			return true
		}
		if !isPlainWrite(sel, parents) {
			return true
		}
		root := lintutil.RootIdent(sel)
		var rootObj types.Object
		if root != nil {
			rootObj = pass.TypesInfo.Uses[root]
		}
		if rootObj != nil && owned[rootObj] {
			esc, escaped := escapes[rootObj]
			if !escaped || sel.Pos() < esc {
				return true // construction window: written before publication
			}
			pass.Reportf(sel.Pos(),
				"field %s of published type %s written after %s escaped at line %d; plain stores must precede publication (move the write before the escape, or annotate the function //lcrq:exclusive)",
				s.Obj().Name(), named.Obj().Name(), root.Name, pass.Fset.Position(esc).Line)
			return true
		}
		pass.Reportf(sel.Pos(),
			"plain field %s of published type %s written in %s outside its construction window; published objects are frozen after the publishing store (annotate the function //lcrq:exclusive if exclusivity is re-established)",
			s.Obj().Name(), named.Obj().Name(), fn.Name.Name)
		return true
	})
}

// isPlainWrite reports whether sel is the target of a plain store: an
// assignment, ++/--, or having its address taken (the pointer may be
// written through). Mutator method calls (x.f.Store) are atomic publishes,
// not plain stores, and are atomiconly/seqlockcheck territory; the address
// of an *element* (&x.slab[i]) reaches element storage, not the field
// header, and the elements carry their own (atomic) discipline.
func isPlainWrite(sel ast.Expr, parents map[ast.Node]ast.Node) bool {
	cur := ast.Node(sel)
	indexed := false
	for {
		p := parents[cur]
		switch p := p.(type) {
		case *ast.ParenExpr:
			cur = p
		case *ast.IndexExpr:
			if p.X != cur {
				return false
			}
			indexed = true
			cur = p
		case *ast.StarExpr:
			cur = p
		case *ast.UnaryExpr:
			return p.Op == token.AND && !indexed // &x.f may be written through
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == cur {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return p.X == cur
		default:
			return false
		}
	}
}

// escapePositions returns, per owned local, the position of its first
// escape: any use other than a field/element access through it or a method
// call on it. Locals that never escape are absent from the map.
func escapePositions(info *types.Info, fn *ast.FuncDecl, parents map[ast.Node]ast.Node, owned map[types.Object]bool) map[types.Object]token.Pos {
	escapes := make(map[types.Object]token.Pos)
	record := func(obj types.Object, pos token.Pos) {
		if cur, ok := escapes[obj]; !ok || pos < cur {
			escapes[obj] = pos
		}
	}
	ast.Inspect(fn, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil || !owned[obj] {
			return true
		}
		if escapingUse(id, parents) {
			record(obj, id.Pos())
		}
		return true
	})
	return escapes
}

// escapingUse classifies one use of an owned local: false for accesses
// through the object (x.f reads/writes, x[i], method calls on x, field
// values copied out — a copied field is not a pointer to x), true for
// anything that lets the object itself or a pointer into it leave the
// function's hands: the bare variable (or &x, &x.f) passed to a call,
// assigned, returned, stored in a composite literal or container, or sent.
func escapingUse(id *ast.Ident, parents map[ast.Node]ast.Node) bool {
	cur := ast.Node(id)
	deref := false     // passed through a selector/index: cur is now a field/element value
	addressed := false // passed through &: cur is a pointer into the object
	leaks := func() bool { return !deref || addressed }
	for {
		p := parents[cur]
		switch p := p.(type) {
		case *ast.ParenExpr, *ast.StarExpr:
			cur = p.(ast.Node)
		case *ast.SelectorExpr:
			if p.X != cur {
				return false // x is the Sel, impossible for a chain base
			}
			// Chain link: x.f.g is an access through x, yielding a value
			// that is not itself a reference into x (pointer-typed fields
			// point elsewhere; they are their own objects).
			deref = true
			cur = p
		case *ast.IndexExpr:
			if p.X != cur {
				return false // x used as an index is a plain read
			}
			deref = true
			cur = p
		case *ast.UnaryExpr:
			if p.Op != token.AND {
				return false
			}
			// &x or &x.f: a pointer into the object. Where does it go?
			addressed = true
			cur = p
		case *ast.CallExpr:
			if p.Fun == cur {
				return false // method call on the chain: x.f.M(...)
			}
			return leaks() // x or &x.f passed as an argument
		case *ast.AssignStmt:
			for _, lhs := range p.Lhs {
				if lhs == cur {
					return false // x.f = v / x = v: a write, not an escape
				}
			}
			return leaks() // v = x (or x on an RHS anywhere)
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
			return leaks()
		default:
			return false
		}
	}
}
