package atomiconly_test

import (
	"testing"

	"lcrq/internal/analysis/atomiconly"
	"lcrq/internal/lint/linttest"
)

func TestAtomiconly(t *testing.T) {
	linttest.Run(t, atomiconly.Analyzer, "atomiconlytest")
}
