// Package atomiconlytest is a lint fixture: words accessed through
// sync/atomic in one place and plainly in another, the mixed-mode race the
// atomiconly analyzer rejects.
package atomiconlytest

import "sync/atomic"

type gate struct {
	state uint64
	other uint64
}

func (g *gate) open() {
	atomic.StoreUint64(&g.state, 1)
}

func (g *gate) isOpen() bool {
	return g.state == 1 // want `plain access to state, which is accessed atomically at .*atomiconlytest\.go:\d+`
}

// touchOther only ever accesses other plainly, so it is not constrained.
func (g *gate) touchOther() uint64 {
	g.other++
	return g.other
}

// reset runs in a single-threaded teardown window; the annotation
// sanctions its plain writes.
//
//lcrq:exclusive
func (g *gate) reset() {
	g.state = 0
}

// newGate constructs a not-yet-shared value; keyed composite-literal
// initialization is sanctioned.
func newGate() *gate {
	return &gate{state: 0}
}

var hits uint64

func record() {
	atomic.AddUint64(&hits, 1)
}

func snapshot() uint64 {
	return hits // want `plain access to hits, which is accessed atomically at .*`
}

// slots shows array-element sanctioning: the atomic op on one element
// marks the whole array, so a plain element read elsewhere is flagged.
var slots [4]uint64

func publish(i int, v uint64) {
	atomic.StoreUint64(&slots[i], v)
}

func peek(i int) uint64 {
	return slots[i] // want `plain access to slots, which is accessed atomically at .*`
}

// scqIdxRing mirrors the portable SCQ ring on the old API: entry words are
// single 64-bit cycle-tagged operands consumed with atomic AND, and the
// threshold is a plain int64 driven by atomic adds. Both must be
// constrained exactly like 16-byte cell halves.
type scqIdxRing struct {
	entries [4]uint64
	thr     int64
}

func (r *scqIdxRing) consume(j int, idxMask uint64) uint64 {
	return atomic.AndUint64(&r.entries[j], ^idxMask)
}

func (r *scqIdxRing) deposit(j int, e uint64) bool {
	old := r.entries[j] // want `plain access to entries, which is accessed atomically at .*`
	return atomic.CompareAndSwapUint64(&r.entries[j], old, e)
}

func (r *scqIdxRing) emptyVerdict() bool {
	return atomic.AddInt64(&r.thr, -1) < 0
}

func (r *scqIdxRing) rearm(reset int64) {
	r.thr = reset // want `plain access to thr, which is accessed atomically at .*`
}

// initRing is an initialization window; plain writes are sanctioned.
//
//lcrq:exclusive
func (r *scqIdxRing) initRing(reset int64) {
	for i := range r.entries {
		r.entries[i] = 0
	}
	r.thr = reset
}
