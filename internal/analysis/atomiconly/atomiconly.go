// Package atomiconly enforces that a word accessed through the sync/atomic
// old API anywhere in a package is accessed that way everywhere in the
// package.
//
// A field read with atomic.LoadUint64 in one function and with a plain load
// in another compiles, passes tests under a cooperative scheduler, and is a
// data race that -race only reports if the schedule cooperates. The typed
// atomic.Uint64 wrappers make the mistake impossible (the word is
// unexported), but code on the old API — including atomic128's cell halves
// — has no such guard; this analyzer is that guard.
//
// Accesses are permitted in exactly three forms: as the &operand of a
// sync/atomic call, as a composite-literal key during construction (a value
// not yet shared cannot race), and anywhere inside a function annotated
// //lcrq:exclusive, the repo's marker for single-threaded access windows
// (initialization before publication, teardown after quiescence).
package atomiconly

import (
	"go/ast"
	"go/token"

	"go/types"

	"lcrq/internal/analysis/lintutil"
	"lcrq/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "atomiconly",
	Doc:  "flag plain accesses to words that are accessed via sync/atomic elsewhere in the package",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Pass 1: collect every object used as a sync/atomic operand, and the
	// exact selector/ident nodes through which those sanctioned accesses
	// happen.
	atomicObjs := make(map[types.Object]token.Pos) // object -> one atomic use site
	sanctioned := make(map[ast.Expr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			operand, _ := lintutil.AtomicCall(pass.TypesInfo, call)
			if operand == nil {
				return true
			}
			operand = ast.Unparen(operand)
			sanctioned[operand] = true
			// &arr[i] sanctions this indexing expression; the array object
			// itself is recorded so plain element accesses are caught too.
			if ix, ok := operand.(*ast.IndexExpr); ok {
				sanctioned[ast.Unparen(ix.X)] = true
			}
			if obj := lintutil.ExprObject(pass.TypesInfo, operand); obj != nil {
				if _, seen := atomicObjs[obj]; !seen {
					atomicObjs[obj] = call.Pos()
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil, nil
	}

	// Pass 2: every other use of those objects must be sanctioned.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok {
				if _, exclusive := lintutil.FuncDirective(fn, "exclusive"); exclusive {
					continue
				}
			}
			checkDecl(pass, decl, atomicObjs, sanctioned)
		}
	}
	return nil, nil
}

func checkDecl(pass *analysis.Pass, decl ast.Decl, atomicObjs map[types.Object]token.Pos, sanctioned map[ast.Expr]bool) {
	ast.Inspect(decl, func(n ast.Node) bool {
		switch n := n.(type) {
		case nil:
			return false
		case *ast.CompositeLit:
			// Construction of a not-yet-shared value: keyed initialization
			// of an atomic word is permitted.
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						sanctioned[id] = true
					}
				}
			}
			return true
		case *ast.Ident, *ast.SelectorExpr:
			e := n.(ast.Expr)
			if sanctioned[e] {
				return false
			}
			obj := useObject(pass.TypesInfo, e)
			if obj == nil {
				return true
			}
			if pos, isAtomic := atomicObjs[obj]; isAtomic {
				pass.Reportf(n.Pos(),
					"plain access to %s, which is accessed atomically at %s; use sync/atomic here or annotate the enclosing function //lcrq:exclusive",
					obj.Name(), pass.Fset.Position(pos))
				return false
			}
		}
		return true
	})
}

// useObject resolves a use (not a definition) of an ident/selector to its
// object. Selector resolution goes through Selections so that embedded and
// promoted fields resolve to the same object the atomic pass recorded.
func useObject(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[e]; ok {
			return obj
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
	}
	return nil
}
