// Package analysis is lcrqlint's analyzer suite: the mechanical checks for
// the concurrency invariants this repository otherwise enforces only by
// convention. See DESIGN.md §10 and §15 for each invariant, its paper
// rationale, and the //lcrq: annotation syntax the analyzers consume.
//
// The suite has two generations. v1 (align128, atomiconly, padcheck,
// hotpath, statsmirror) checks per-word invariants: alignment of CAS2
// cells, atomic-only access to shared words, false-sharing pads, registry
// completeness. v2 (seqlockcheck, singlewriter, publication, chaosreg)
// checks multi-statement protocols: the seqlock version-word bracket, the
// single-writer ownership discipline, construct-then-publish windows, and
// chaos injection-point registry hygiene.
//
// The analyzers are written against the (vendored) golang.org/x/tools
// go/analysis API — see internal/lint/analysis — and run both standalone
// (go run ./cmd/lcrqlint ./...) and under go vet -vettool.
package analysis

import (
	"lcrq/internal/analysis/align128"
	"lcrq/internal/analysis/atomiconly"
	"lcrq/internal/analysis/chaosreg"
	"lcrq/internal/analysis/hotpath"
	"lcrq/internal/analysis/padcheck"
	"lcrq/internal/analysis/publication"
	"lcrq/internal/analysis/seqlockcheck"
	"lcrq/internal/analysis/singlewriter"
	"lcrq/internal/analysis/statsmirror"
	"lcrq/internal/lint/analysis"
)

// All returns the full lcrqlint suite, in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		align128.Analyzer,
		atomiconly.Analyzer,
		padcheck.Analyzer,
		hotpath.Analyzer,
		statsmirror.Analyzer,
		seqlockcheck.Analyzer,
		singlewriter.Analyzer,
		publication.Analyzer,
		chaosreg.Analyzer,
	}
}
