// Package chaosregtest is a lint fixture: injection-point registry hygiene
// and call sites that bypass the registered chaos.Point constants.
package chaosregtest

import "lcrq/internal/chaos"

// point is a fixture-local enum standing in for chaos.Point, so the
// registry rule can be exercised without editing the real table.
type point uint8

const (
	alpha point = iota
	beta
	gamma
	numPoints
)

// names is a well-formed registry apart from its seeded violations.
//
//lcrq:points
var names = [numPoints]string{
	alpha: "alpha-point",
	beta:  "Beta_Point",   // want `entry "Beta_Point" for beta is not kebab-case`
	gamma: "alpha-point", // want `entry "alpha-point" for gamma duplicates alpha`
}

// edgeNames seeds the hyphen-placement violations.
//
//lcrq:points
var edgeNames = [numPoints]string{
	alpha: "-leading",  // want `entry "-leading" for alpha is not kebab-case`
	beta:  "double--up", // want `entry "double--up" for beta is not kebab-case`
	gamma: "trailing-", // want `entry "trailing-" for gamma is not kebab-case`
}

// notTable is annotated but not a name table at all.
//
//lcrq:points
var notTable = "oops" // want `registry must be initialized with an enum-indexed array literal`

// plainBound has a plain integer bound, so no enum ties it to a constant
// set.
//
//lcrq:points
var plainBound = [4]string{"a", "b", "c", "d"} // want `want \[Sentinel\]string with a defined integer-typed constant bound`

// sweep exercises the call-site rule against the real chaos package.
func sweep() {
	for _, p := range chaos.Points() {
		chaos.Set(p, 0.5) // dynamic point: the schedule sweep's loop variable
	}
	chaos.Set(chaos.RingClose, 1)  // named constant: registered
	_ = chaos.Fire(chaos.Tantrum)  // named constant: registered
	chaos.Delay(3)                    // want `Delay called with an unregistered point value`
	_ = chaos.Fired(chaos.Point(7))   // want `Fired called with an unregistered point value`
	chaos.Set(chaos.NumPoints, 1)     // want `Set called with NumPoints, the registry sentinel`
	chaos.Reset()
}
