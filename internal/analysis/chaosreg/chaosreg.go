// Package chaosreg keeps the fault-injection point registry and its call
// sites honest.
//
// The chaos layer's value rests on an implicit contract: every injection
// point is a named chaos.Point constant, every point has a stable
// kebab-case name in the registry table (docs, test output, and the
// schedule-sweep tests key on those names), and no call site smuggles in a
// raw index that the sweep would never visit. statsmirror already proves
// the registry covers every enum member; this analyzer adds the other
// halves of the contract, retiring the runtime registry test:
//
//   - the table annotated //lcrq:points must be an enum-indexed
//     [Sentinel]string literal whose entries are all non-empty, mutually
//     distinct, and kebab-case (lowercase words joined by single hyphens —
//     the shape every existing point name and test matcher assumes);
//   - every Point-typed argument at a call into the chaos package must be
//     either a named constant strictly below the sentinel or a non-constant
//     expression (the schedule sweep's loop variable); a numeric literal,
//     an ad-hoc Point(n) conversion, or the sentinel itself is an
//     unregistered point — Fire would consult a probability slot no test
//     ever sets, or walk off the table entirely.
//
// The registry rule is directive-driven so it applies to any enum name
// table that opts in; the call-site rule is keyed to the chaos package
// import path, where the contract lives.
package chaosreg

import (
	"go/ast"
	"go/constant"
	"go/types"

	"lcrq/internal/analysis/lintutil"
	"lcrq/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "chaosreg",
	Doc:  "check chaos.Point registry hygiene and that injection call sites use registered points",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if _, ok := lintutil.VarDirective(gd, vs, "points"); ok {
					checkRegistry(pass, vs)
				}
			}
		}
	}
	checkCallSites(pass)
	return nil, nil
}

// checkRegistry enforces the name-table half on a //lcrq:points var: an
// enum-indexed string array whose entries are non-empty, unique, and
// kebab-case. Completeness (every enum member present) is statsmirror's
// rule; the two overlap deliberately — the annotation documents which
// table is the injection-point registry.
func checkRegistry(pass *analysis.Pass, vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			pass.Reportf(name.Pos(), "//lcrq:points on %s: registry must be initialized with an enum-indexed array literal", name.Name)
			continue
		}
		lit, ok := vs.Values[i].(*ast.CompositeLit)
		if !ok {
			pass.Reportf(name.Pos(), "//lcrq:points on %s: registry must be initialized with an enum-indexed array literal", name.Name)
			continue
		}
		enum, sentinel, ok := enumArrayBound(pass, lit)
		if !ok {
			pass.Reportf(name.Pos(), "//lcrq:points on %s: want [Sentinel]string with a defined integer-typed constant bound", name.Name)
			continue
		}

		constName := enumConstNames(enum, sentinel)
		seen := make(map[string]string) // name -> first enum member using it
		next := int64(0)
		for _, elt := range lit.Elts {
			val := elt
			idx := next
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				ktv, ok := pass.TypesInfo.Types[kv.Key]
				if !ok || ktv.Value == nil {
					continue
				}
				if iv, ok := constant.Int64Val(ktv.Value); ok {
					idx = iv
				}
				val = kv.Value
			}
			next = idx + 1
			member := constName[idx]
			if member == "" {
				member = name.Name + "[" + enum.Obj().Name() + "(" + itoa(idx) + ")]"
			}
			vtv, ok := pass.TypesInfo.Types[val]
			if !ok || vtv.Value == nil || vtv.Value.Kind() != constant.String {
				continue
			}
			s := constant.StringVal(vtv.Value)
			if s == "" {
				continue // statsmirror reports empty entries
			}
			if !isKebab(s) {
				pass.Reportf(val.Pos(),
					"points registry %s entry %q for %s is not kebab-case; point names are lowercase words joined by single hyphens",
					name.Name, s, member)
			}
			if prev, dup := seen[s]; dup {
				pass.Reportf(val.Pos(),
					"points registry %s entry %q for %s duplicates %s; every injection point needs a distinct name",
					name.Name, s, member, prev)
			} else {
				seen[s] = member
			}
		}
	}
}

// checkCallSites enforces the call-site half: Point-typed constant
// arguments to chaos-package functions must be named constants below the
// sentinel.
func checkCallSites(pass *analysis.Pass) {
	// Find the chaos package's Point enum: the current package if this is
	// the chaos package itself, otherwise via imports.
	var chaosPkg *types.Package
	if pass.Pkg.Path() == lintutil.ChaosPkgPath {
		chaosPkg = pass.Pkg
	} else {
		for _, imp := range pass.Pkg.Imports() {
			if imp.Path() == lintutil.ChaosPkgPath {
				chaosPkg = imp
				break
			}
		}
	}
	if chaosPkg == nil {
		return
	}
	tn, ok := chaosPkg.Scope().Lookup("Point").(*types.TypeName)
	if !ok {
		return
	}
	pointType := tn.Type()
	sentinel := maxEnumVal(pointType, chaosPkg)

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != lintutil.ChaosPkgPath {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			for ai, arg := range call.Args {
				pi := ai
				if pi >= sig.Params().Len() {
					pi = sig.Params().Len() - 1 // variadic tail
				}
				if pi < 0 || !types.Identical(sig.Params().At(pi).Type(), pointType) {
					continue
				}
				checkPointArg(pass, fn, arg, sentinel)
			}
			return true
		})
	}
}

func checkPointArg(pass *analysis.Pass, fn *types.Func, arg ast.Expr, sentinel int64) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil {
		return // dynamic point: the schedule sweep's loop variable
	}
	if obj := lintutil.ExprObject(pass.TypesInfo, arg); obj != nil {
		if _, isConst := obj.(*types.Const); isConst {
			v, _ := constant.Int64Val(tv.Value)
			if sentinel >= 0 && v >= sentinel {
				pass.Reportf(arg.Pos(),
					"%s called with %s, the registry sentinel; it counts the points and is not itself an injection point",
					fn.Name(), obj.Name())
			}
			return
		}
	}
	pass.Reportf(arg.Pos(),
		"%s called with an unregistered point value; injection sites must name a chaos.Point constant so the schedule sweep covers them",
		fn.Name())
}

// enumArrayBound matches lit against [Sentinel]string where Sentinel is a
// constant of a defined integer type, returning that type and the bound.
func enumArrayBound(pass *analysis.Pass, lit *ast.CompositeLit) (*types.Named, int64, bool) {
	at, ok := lit.Type.(*ast.ArrayType)
	if !ok || at.Len == nil {
		return nil, 0, false
	}
	lenTV, ok := pass.TypesInfo.Types[at.Len]
	if !ok || lenTV.Value == nil || lenTV.Value.Kind() != constant.Int {
		return nil, 0, false
	}
	enum, ok := types.Unalias(lenTV.Type).(*types.Named)
	if !ok {
		return nil, 0, false
	}
	basic, ok := enum.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil, 0, false
	}
	n, ok := constant.Int64Val(lenTV.Value)
	return enum, n, ok
}

// enumConstNames maps enum values below the sentinel to their constant
// names, for diagnostics.
func enumConstNames(enum *types.Named, sentinel int64) map[int64]string {
	names := make(map[int64]string)
	scope := enum.Obj().Pkg().Scope()
	for _, cname := range scope.Names() {
		c, ok := scope.Lookup(cname).(*types.Const)
		if !ok || !types.Identical(c.Type(), enum) {
			continue
		}
		if v, ok := constant.Int64Val(c.Val()); ok && v >= 0 && v < sentinel {
			names[v] = cname
		}
	}
	return names
}

// maxEnumVal returns the largest constant value of type t declared in pkg —
// by the iota convention, the registry sentinel. Returns -1 if none.
func maxEnumVal(t types.Type, pkg *types.Package) int64 {
	max := int64(-1)
	scope := pkg.Scope()
	for _, cname := range scope.Names() {
		c, ok := scope.Lookup(cname).(*types.Const)
		if !ok || !types.Identical(c.Type(), t) {
			continue
		}
		if v, ok := constant.Int64Val(c.Val()); ok && v > max {
			max = v
		}
	}
	return max
}

// calleeFunc resolves the called function for plain and package-qualified
// calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

func isKebab(s string) bool {
	prevHyphen := true // no leading hyphen
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			prevHyphen = false
		case c == '-':
			if prevHyphen {
				return false // leading or doubled hyphen
			}
			prevHyphen = true
		default:
			return false
		}
	}
	return !prevHyphen || s == "" // no trailing hyphen; empty handled elsewhere
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
