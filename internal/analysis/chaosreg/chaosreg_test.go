package chaosreg_test

import (
	"testing"

	"lcrq/internal/analysis/chaosreg"
	"lcrq/internal/lint/linttest"
)

func TestChaosreg(t *testing.T) {
	linttest.Run(t, chaosreg.Analyzer, "chaosregtest")
}
