// Package hotpathtest is a lint fixture: allocation, blocking, and
// scheduler operations inside //lcrq:hotpath functions, plus the same
// operations in unannotated functions where they are fine.
package hotpathtest

import (
	"runtime"
	"sync"
	"time"
)

type pair struct{ a, b uint64 }

type queue struct {
	mu    sync.Mutex
	items map[uint64]uint64
	ch    chan uint64
	buf   []uint64
}

// enqueue is annotated hot and commits every sin at once.
//
//lcrq:hotpath
func (q *queue) enqueue(v uint64) {
	q.mu.Lock()                 // want `sync\.Mutex\.Lock \(blocking/allocating\) in //lcrq:hotpath function enqueue`
	buf := make([]uint64, 1)    // want `make \(allocation\)`
	buf = append(buf, v)        // want `append \(allocation\)`
	p := new(pair)              // want `new \(allocation\)`
	lit := pair{a: v, b: v}     // want `composite literal \(allocation\)`
	f := func() {}              // want `function literal \(closure allocation\)`
	q.items[v] = v              // want `map write`
	q.ch <- v                   // want `channel send`
	time.Sleep(time.Nanosecond) // want `time\.Sleep`
	runtime.Gosched()           // want `runtime\.Gosched`
	go q.drain()                // want `go statement`
	select {                    // want `select statement`
	case w := <-q.ch: // want `channel receive`
		_ = w
	default:
	}
	q.mu.Unlock() // want `sync\.Mutex\.Unlock \(blocking/allocating\)`
	_, _, _, _ = buf, p, lit, f
}

// label allocates through string concatenation.
//
//lcrq:hotpath
func label(s string) string {
	const prefix = "q:"
	ok := prefix + "static" // constant concatenation is fine
	_ = ok
	return s + "!" // want `string concatenation \(allocation\)`
}

// fast is hot and clean: loads, stores, arithmetic, calls to annotated
// helpers, defer, and panic are all allowed.
//
//lcrq:hotpath
func (q *queue) fast(v uint64) uint64 {
	if v == 0 {
		panic("hotpathtest: zero value")
	}
	defer noteExit()
	q.buf[0] = v
	return q.buf[0] + step(v)
}

//lcrq:hotpath
func step(v uint64) uint64 { return v + 1 }

func noteExit() {}

// drain is NOT annotated: the same operations draw no diagnostics here.
func (q *queue) drain() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.buf = append(q.buf, <-q.ch)
	q.items[0] = 0
	time.Sleep(time.Nanosecond)
	runtime.Gosched()
}
