// Package hotpathtest is a lint fixture: allocation, blocking, and
// scheduler operations inside //lcrq:hotpath functions, plus the same
// operations in unannotated functions where they are fine.
package hotpathtest

import (
	"runtime"
	"sync"
	"time"
)

type pair struct{ a, b uint64 }

type queue struct {
	mu    sync.Mutex
	items map[uint64]uint64
	ch    chan uint64
	buf   []uint64
}

// enqueue is annotated hot and commits every sin at once.
//
//lcrq:hotpath
func (q *queue) enqueue(v uint64) {
	q.mu.Lock()                 // want `sync\.Mutex\.Lock \(blocking/allocating\) in //lcrq:hotpath function enqueue`
	buf := make([]uint64, 1)    // want `make \(allocation\)`
	buf = append(buf, v)        // want `append \(allocation\)`
	p := new(pair)              // want `new \(allocation\)`
	lit := pair{a: v, b: v}     // want `composite literal \(allocation\)`
	f := func() {}              // want `function literal \(closure allocation\)`
	q.items[v] = v              // want `map write`
	q.ch <- v                   // want `channel send`
	time.Sleep(time.Nanosecond) // want `time\.Sleep`
	runtime.Gosched()           // want `runtime\.Gosched`
	go q.drain()                // want `go statement`
	select {                    // want `select statement`
	case w := <-q.ch: // want `channel receive`
		_ = w
	default:
	}
	q.mu.Unlock() // want `sync\.Mutex\.Unlock \(blocking/allocating\)`
	_, _, _, _ = buf, p, lit, f
}

// label allocates through string concatenation.
//
//lcrq:hotpath
func label(s string) string {
	const prefix = "q:"
	ok := prefix + "static" // constant concatenation is fine
	_ = ok
	return s + "!" // want `string concatenation \(allocation\)`
}

// fast is hot and clean: loads, stores, arithmetic, calls to annotated
// helpers, defer, and panic are all allowed.
//
//lcrq:hotpath
func (q *queue) fast(v uint64) uint64 {
	if v == 0 {
		panic("hotpathtest: zero value")
	}
	defer noteExit()
	q.buf[0] = v
	return q.buf[0] + step(v)
}

//lcrq:hotpath
func step(v uint64) uint64 { return v + 1 }

func noteExit() {}

// Trace stamping: the item-trace machinery writes its stamp slot and hit
// buffer on the operation paths, so both must be written field-by-field — a
// composite-literal stamp or hit is an allocation the analyzer rejects.

type stamp struct {
	tag, id uint64
	ns      int64
}

type hit struct {
	id  uint64
	ns  int64
	pos int
}

type traced struct {
	stamps []stamp
	hits   [8]hit
	nhits  int
}

// depositStamp is the correct shape: slot fields written one by one, tag
// last; no diagnostics.
//
//lcrq:hotpath
func (q *traced) depositStamp(t, id uint64, ns int64) {
	slot := &q.stamps[t&7]
	slot.id = id
	slot.ns = ns
	slot.tag = t + 1
}

// recordHit is the correct shape for the dequeue side: the fixed hit buffer
// is filled field-by-field under a bounds check.
//
//lcrq:hotpath
func (q *traced) recordHit(id uint64, ns int64, pos int) {
	if q.nhits >= len(q.hits) {
		return
	}
	h := &q.hits[q.nhits]
	h.id = id
	h.ns = ns
	h.pos = pos
	q.nhits++
}

// depositStampLit is the tempting-but-wrong shape.
//
//lcrq:hotpath
func (q *traced) depositStampLit(t, id uint64, ns int64) {
	q.stamps[t&7] = stamp{tag: t + 1, id: id, ns: ns} // want `composite literal \(allocation\)`
}

//lcrq:hotpath
func (q *traced) recordHitLit(id uint64, ns int64, pos int) {
	q.hits[0] = hit{id: id, ns: ns, pos: pos} // want `composite literal \(allocation\)`
	q.hits = [8]hit{}                         // want `composite literal \(allocation\)`
}

// Adaptive contention controller: the MIAD fail/success steps run inside
// the cell-retry loops, so they must stay pure arithmetic on handle-local
// fields — no allocation, no bookkeeping containers.

type ctl struct {
	spins, min, max, decay uint64
	history                []uint64
	byCause                map[string]uint64
}

// fail is the correct MIAD raise shape: double and clamp, nothing else.
//
//lcrq:hotpath
func (c *ctl) fail() {
	if c.spins == 0 {
		c.spins = c.min
	} else {
		c.spins *= 2
	}
	if c.spins > c.max {
		c.spins = c.max
	}
}

// success is the additive-decay counterpart; also clean.
//
//lcrq:hotpath
func (c *ctl) success() {
	if c.spins <= c.decay {
		c.spins = 0
		return
	}
	c.spins -= c.decay
}

// pause is deliberately NOT annotated: chunked backoff yields the
// processor, which is why the real contention.Pause carries no hotpath
// annotation and hot callers reach it through a plain call.
func (c *ctl) pause() {
	runtime.Gosched()
}

// backoff shows the hot retry path composing the clean raise step with the
// unannotated pause helper — no diagnostics.
//
//lcrq:hotpath
func (c *ctl) backoff() {
	c.fail()
	c.pause()
}

// failLogged is the tempting-but-wrong shape: tracking raise history on
// the retry path means allocation and map traffic per failed attempt.
//
//lcrq:hotpath
func (c *ctl) failLogged(cause string) {
	c.spins *= 2
	c.history = append(c.history, c.spins) // want `append \(allocation\)`
	c.byCause[cause] = c.spins             // want `map write`
}

// drain is NOT annotated: the same operations draw no diagnostics here.
func (q *queue) drain() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.buf = append(q.buf, <-q.ch)
	q.items[0] = 0
	time.Sleep(time.Nanosecond)
	runtime.Gosched()
}
