package hotpath_test

import (
	"testing"

	"lcrq/internal/analysis/hotpath"
	"lcrq/internal/lint/linttest"
)

func TestHotpath(t *testing.T) {
	linttest.Run(t, hotpath.Analyzer, "hotpathtest")
}
