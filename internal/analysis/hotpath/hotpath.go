// Package hotpath enforces the fast-path discipline of functions annotated
// //lcrq:hotpath.
//
// The paper's throughput numbers depend on the operation fast path being a
// short straight line of loads, stores, and one F&A/CAS2 — no allocation,
// no blocking, no scheduler interaction. Today that property is guarded
// only by overhead benchmarks, which detect a regression but not its
// source. This analyzer rejects, inside annotated functions:
//
//   - allocation syntax: make, new, append, composite literals, func
//     literals (closures capture and escape), and non-constant string
//     concatenation;
//   - blocking and scheduling: go statements, select statements, channel
//     sends and receives, time.Sleep, runtime.Gosched, and any method call
//     on a sync package type (Mutex, RWMutex, WaitGroup, Cond, Once, Pool
//     — the sync/atomic wrappers are of course allowed);
//   - map writes (which may allocate and are never safe under concurrent
//     readers anyway).
//
// Plain calls remain allowed: responsibility propagates by annotating the
// callees that are themselves on the fast path, while deliberate slow-path
// calls (ring allocation, taps) stay callable. Defer and panic are allowed:
// defer is open-coded and free of allocation since Go 1.13, and panics are
// the repo's misuse reports, off the measured path.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"lcrq/internal/analysis/lintutil"
	"lcrq/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "forbid allocation, blocking, and scheduler operations in functions annotated //lcrq:hotpath",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, hot := lintutil.FuncDirective(fn, "hotpath"); !hot {
				continue
			}
			checkBody(pass, fn)
		}
	}
	return nil, nil
}

func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	report := func(n ast.Node, what string) {
		pass.Reportf(n.Pos(), "%s in //lcrq:hotpath function %s: the fast path must not allocate, block, or yield", what, name)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			report(n, "composite literal (allocation)")
		case *ast.FuncLit:
			report(n, "function literal (closure allocation)")
			return false // don't double-report the closure's body
		case *ast.GoStmt:
			report(n, "go statement")
		case *ast.SelectStmt:
			report(n, "select statement")
		case *ast.SendStmt:
			report(n, "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				report(n, "channel receive")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !isConst(pass, n) && isString(pass, n.X) {
				report(n, "string concatenation (allocation)")
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMap(pass, ix.X) {
					report(n, "map write")
				}
			}
		case *ast.CallExpr:
			checkCall(pass, n, report)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, report func(ast.Node, string)) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				report(call, b.Name()+" (allocation)")
			}
		}
	case *ast.SelectorExpr:
		obj := pass.TypesInfo.Uses[fun.Sel]
		f, ok := obj.(*types.Func)
		if !ok {
			return
		}
		pkg := f.Pkg()
		if pkg == nil {
			return
		}
		switch {
		case pkg.Path() == "time" && f.Name() == "Sleep":
			report(call, "time.Sleep")
		case pkg.Path() == "runtime" && f.Name() == "Gosched":
			report(call, "runtime.Gosched")
		case pkg.Path() == "sync":
			// A method on a sync type (Mutex.Lock, Pool.Get, ...) has a
			// receiver; package-level sync functions (OnceFunc) allocate.
			report(call, "sync."+recvPrefix(f)+f.Name()+" (blocking/allocating)")
		}
	}
}

func recvPrefix(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj().Name() + "."
	}
	return ""
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isMap(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
