package singlewriter_test

import (
	"testing"

	"lcrq/internal/analysis/singlewriter"
	"lcrq/internal/lint/linttest"
)

func TestSinglewriter(t *testing.T) {
	linttest.Run(t, singlewriter.Analyzer, "singlewritertest")
}
