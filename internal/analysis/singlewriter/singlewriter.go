// Package singlewriter enforces the ownership discipline of types
// annotated //lcrq:singlewriter.
//
// The queue keeps its per-handle state — instrument counters, the adaptive
// contention controller, the telemetry record — as plain, atomics-free
// structs owned by one goroutine: the handle's. That is a protocol, not a
// property the compiler checks; a helper that pokes a controller field
// from the watchdog goroutine compiles fine and races silently. Before
// this analyzer, such fields were justified by ad-hoc //lcrq:exclusive
// comments on whatever functions happened to touch them; the type-level
// annotation states the invariant once, where the state lives.
//
// A struct type annotated //lcrq:singlewriter promises:
//
//   - its fields are mutated only from the type's own method set — the
//     owning handle's methods — or inside the function that constructs the
//     instance (a local composite literal / new(T), before anything else
//     can see it), or in a function annotated //lcrq:exclusive (teardown
//     after quiescence);
//   - it declares no atomic fields (sync/atomic typed wrappers,
//     atomic128.Uint128): single-writer state needs no atomics, and an
//     atomic field is evidence the type is actually shared — one invariant
//     per type, pick the right annotation.
//
// Reads are unrestricted: the single-writer contract makes reads from the
// owner exact and reads from elsewhere advisory, which is how the
// telemetry mirrors consume these structs.
//
// Like every comment-driven check the annotation is only visible in the
// declaring package, so the guarantee is per-package; the repo keeps
// single-writer types and their mutators in one package (unexported
// fields force this anyway).
package singlewriter

import (
	"go/ast"
	"go/types"

	"lcrq/internal/analysis/lintutil"
	"lcrq/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "singlewriter",
	Doc:  "check that //lcrq:singlewriter types are mutated only from their own method set",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// fields maps each field object of an annotated struct to the struct's
	// named type.
	fields := make(map[types.Object]*types.Named)
	var annotated []*types.Named
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if _, ok := lintutil.TypeDirective(gd, ts, "singlewriter"); !ok {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok {
					pass.Reportf(ts.Pos(), "//lcrq:singlewriter annotation on %s, which is not a struct type", ts.Name.Name)
					continue
				}
				annotated = append(annotated, named)
				for i := 0; i < st.NumFields(); i++ {
					f := st.Field(i)
					fields[f] = named
					if lintutil.IsAtomicHot(f.Type()) {
						pass.Reportf(f.Pos(),
							"single-writer type %s declares atomic field %s; single-writer state needs no atomics — drop the atomic or the //lcrq:singlewriter annotation",
							ts.Name.Name, f.Name())
					}
				}
			}
		}
	}
	if len(annotated) == 0 {
		return nil, nil
	}

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, exclusive := lintutil.FuncDirective(fn, "exclusive"); exclusive {
				continue
			}
			checkFunc(pass, fn, fields)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, fields map[types.Object]*types.Named) {
	recv := receiverType(pass, fn)
	parents := lintutil.Parents(fn)
	owned := lintutil.ConstructedLocals(fn, pass.TypesInfo)

	ast.Inspect(fn, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok {
			return true
		}
		named, guarded := fields[s.Obj()]
		if !guarded {
			return true
		}
		if recv != nil && recv == named.Obj() {
			return true // mutation from the type's own method set
		}
		if lintutil.ClassifyAccess(sel, parents) != lintutil.AccessWrite {
			return true
		}
		if root := lintutil.RootIdent(sel); root != nil {
			if ro := pass.TypesInfo.Uses[root]; ro != nil && owned[ro] {
				return true // construction window
			}
		}
		pass.Reportf(sel.Pos(),
			"field %s of single-writer type %s mutated in %s, outside %s's method set; only the owning handle's methods may write it (or annotate the function //lcrq:exclusive for a single-threaded window)",
			s.Obj().Name(), named.Obj().Name(), fn.Name.Name, named.Obj().Name())
		return true
	})
}

// receiverType returns the TypeName of fn's receiver's named type (through
// one pointer), or nil for plain functions.
func receiverType(pass *analysis.Pass, fn *ast.FuncDecl) *types.TypeName {
	f, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return nil
	}
	r := f.Signature().Recv()
	if r == nil {
		return nil
	}
	t := r.Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj()
	}
	return nil
}
