// Package singlewritertest is a lint fixture: single-writer state mutated
// from inside and outside the owning type's method set.
package singlewritertest

import "sync/atomic"

// ctl is the owner-mutated controller shape: plain fields, one writer.
//
//lcrq:singlewriter
type ctl struct {
	ewma   float64
	streak int
}

// observe mutates from the type's own method set: the owning handle.
func (c *ctl) observe(x float64) {
	c.ewma = 0.875*c.ewma + 0.125*x
	if x > c.ewma {
		c.streak++
	} else {
		c.streak = 0
	}
}

// level only reads, which any goroutine may do (advisory reads).
func level(c *ctl) float64 {
	return c.ewma
}

// poke mutates from a plain function: the cross-goroutine write the
// annotation forbids.
func poke(c *ctl) {
	c.streak = 0 // want `field streak of single-writer type ctl mutated in poke, outside ctl's method set`
}

// bump is the increment flavor of the same violation.
func bump(c *ctl) {
	c.streak++ // want `field streak of single-writer type ctl mutated in bump`
}

// leak hands out an interior pointer a writer could use.
func leak(c *ctl) *float64 {
	return &c.ewma // want `field ewma of single-writer type ctl mutated in leak`
}

// newCtl writes through a provably unpublished local: construction is
// exempt.
func newCtl() *ctl {
	c := &ctl{}
	c.ewma = 1
	return c
}

// teardown runs after quiescence; the annotation sanctions the write.
//
//lcrq:exclusive
func teardown(c *ctl) {
	c.streak = 0
	c.ewma = 0
}

// badAtomic pairs the annotation with an atomic field: evidence the type
// is actually shared, so one of the two must go.
//
//lcrq:singlewriter
type badAtomic struct {
	hits atomic.Uint64 // want `single-writer type badAtomic declares atomic field hits`
	miss int
}

// notStruct cannot carry a field-ownership contract.
//
//lcrq:singlewriter
type notStruct int // want `annotation on notStruct, which is not a struct type`
