// Package statsmirror turns the repo's "every counter is mirrored"
// reflection tests into a compile-time-style check.
//
// Two registries must stay complete as the instrumentation grows:
//
//  1. Enum-indexed name tables. For any package-level
//     `var names = [Sentinel]string{...}` whose length is a constant of a
//     defined integer type (chaos.Point/NumPoints, telemetry.Kind/NumKinds),
//     every constant of that type below the sentinel must appear as a key
//     with a non-empty name. Adding a chaos injection point without naming
//     it once broke only a runtime test; now it does not compile cleanly.
//
//  2. Struct mirrors. A function annotated `//lcrq:mirror pkgpath.Type`
//     (or `//lcrq:mirror Type` for the current package) promises to
//     transcribe every field of that struct; the analyzer reports any
//     field the function body never references. stats.go's
//     statsFromCounters carries the annotation for instrument.Counters,
//     and Stats.Add for Stats itself, replacing the two reflection tests
//     that previously guarded them.
package statsmirror

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"lcrq/internal/analysis/lintutil"
	"lcrq/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "statsmirror",
	Doc:  "check that counter/point registries and annotated struct mirrors are complete",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						checkRegistry(pass, vs)
					}
				}
			case *ast.FuncDecl:
				if arg, ok := lintutil.FuncDirective(decl, "mirror"); ok {
					checkMirror(pass, decl, arg)
				}
			}
		}
	}
	return nil, nil
}

// checkRegistry handles rule 1: enum-indexed name tables.
func checkRegistry(pass *analysis.Pass, vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		if i >= len(vs.Values) {
			break
		}
		lit, ok := vs.Values[i].(*ast.CompositeLit)
		if !ok {
			continue
		}
		at, ok := lit.Type.(*ast.ArrayType)
		if !ok || at.Len == nil {
			continue
		}
		lenTV, ok := pass.TypesInfo.Types[at.Len]
		if !ok || lenTV.Value == nil || lenTV.Value.Kind() != constant.Int {
			continue
		}
		enum, ok := types.Unalias(lenTV.Type).(*types.Named)
		if !ok {
			continue // plain [16]string — not an enum registry
		}
		basic, ok := enum.Underlying().(*types.Basic)
		if !ok || basic.Info()&types.IsInteger == 0 {
			continue
		}
		sentinel, ok := constant.Int64Val(lenTV.Value)
		if !ok || len(lit.Elts) == 0 {
			// An empty literal is a zero-value array (a probability table,
			// a histogram), not a name registry.
			continue
		}

		// Which indices does the literal name?
		present := make(map[int64]bool)
		empty := make(map[int64]ast.Node)
		next := int64(0)
		for _, elt := range lit.Elts {
			val := elt
			idx := next
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				ktv, ok := pass.TypesInfo.Types[kv.Key]
				if !ok || ktv.Value == nil {
					continue
				}
				if iv, ok := constant.Int64Val(ktv.Value); ok {
					idx = iv
				}
				val = kv.Value
			}
			next = idx + 1
			present[idx] = true
			if vtv, ok := pass.TypesInfo.Types[val]; ok && vtv.Value != nil &&
				vtv.Value.Kind() == constant.String && constant.StringVal(vtv.Value) == "" {
				empty[idx] = val
			}
		}

		// Every constant of the enum type below the sentinel must appear.
		scope := enum.Obj().Pkg().Scope()
		for _, cname := range scope.Names() {
			c, ok := scope.Lookup(cname).(*types.Const)
			if !ok || !types.Identical(c.Type(), enum) {
				continue
			}
			v, ok := constant.Int64Val(c.Val())
			if !ok || v < 0 || v >= sentinel {
				continue
			}
			if !present[v] {
				pass.Reportf(lit.Pos(),
					"registry %s has no entry for %s (= %d); every %s below the array bound must be named",
					name.Name, cname, v, enum.Obj().Name())
			} else if n, isEmpty := empty[v]; isEmpty {
				pass.Reportf(n.Pos(), "registry %s entry for %s is empty", name.Name, cname)
			}
		}
	}
}

// checkMirror handles rule 2: //lcrq:mirror pkgpath.Type functions.
func checkMirror(pass *analysis.Pass, fn *ast.FuncDecl, arg string) {
	st, typeName := resolveMirrorType(pass, arg)
	if st == nil {
		pass.Reportf(fn.Pos(), "//lcrq:mirror %s: cannot resolve a struct type (want \"pkgpath.Type\" or \"Type\")", arg)
		return
	}
	if fn.Body == nil {
		return
	}
	referenced := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			referenced[n.Sel.Name] = true
		case *ast.KeyValueExpr:
			if id, ok := n.Key.(*ast.Ident); ok {
				referenced[id.Name] = true
			}
		}
		return true
	})
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !referenced[f.Name()] {
			pass.Reportf(fn.Pos(),
				"%s does not reference %s.%s; every field of the mirrored struct must be transcribed (or the omission justified where the field is declared)",
				fn.Name.Name, typeName, f.Name())
		}
	}
}

// resolveMirrorType resolves the directive argument to a struct type. The
// argument is "path/to/pkg.Type" (the package must be imported by the
// annotated function's package) or a bare "Type" in the current package.
func resolveMirrorType(pass *analysis.Pass, arg string) (*types.Struct, string) {
	var scope *types.Scope
	typeName := arg
	if i := strings.LastIndex(arg, "."); i >= 0 {
		pkgPath, name := arg[:i], arg[i+1:]
		typeName = name
		if pkgPath == pass.Pkg.Path() {
			scope = pass.Pkg.Scope()
		} else {
			for _, imp := range pass.Pkg.Imports() {
				if imp.Path() == pkgPath {
					scope = imp.Scope()
					break
				}
			}
		}
	} else {
		scope = pass.Pkg.Scope()
	}
	if scope == nil {
		return nil, arg
	}
	obj, ok := scope.Lookup(typeName).(*types.TypeName)
	if !ok {
		return nil, arg
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, arg
	}
	return st, typeName
}
