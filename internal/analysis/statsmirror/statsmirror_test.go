package statsmirror_test

import (
	"testing"

	"lcrq/internal/analysis/statsmirror"
	"lcrq/internal/lint/linttest"
)

func TestStatsmirror(t *testing.T) {
	linttest.Run(t, statsmirror.Analyzer, "statsmirrortest")
}
