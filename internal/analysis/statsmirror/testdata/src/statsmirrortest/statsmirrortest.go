// Package statsmirrortest is a lint fixture: an enum-indexed name registry
// with a missing and an empty entry, and //lcrq:mirror functions that drop
// fields of the structs they promise to transcribe.
package statsmirrortest

type point uint8

const (
	alpha point = iota
	beta
	gamma
	numPoints
)

// pointNames forgot gamma and left beta blank.
var pointNames = [numPoints]string{ // want `registry pointNames has no entry for gamma \(= 2\); every point below the array bound must be named`
	alpha: "alpha",
	beta:  "", // want `registry pointNames entry for beta is empty`
}

// fullNames is complete, using positional entries.
var fullNames = [numPoints]string{"alpha", "beta", "gamma"}

// probTable is a zero-value array, not a name registry; it draws no
// diagnostics.
var probTable = [numPoints]string{}

// plainTable is not indexed by a defined enum type.
var plainTable = [4]string{"a"}

type snapshot struct {
	Enq uint64
	Deq uint64
	Err uint64
}

// addSnap promises to transcribe every snapshot field but forgets Err.
//
//lcrq:mirror snapshot
func addSnap(a, b snapshot) snapshot { // want `addSnap does not reference snapshot\.Err`
	return snapshot{
		Enq: a.Enq + b.Enq,
		Deq: a.Deq + b.Deq,
	}
}

// mergeSnap is complete.
//
//lcrq:mirror snapshot
func mergeSnap(a, b snapshot) snapshot {
	out := a
	out.Enq += b.Enq
	out.Deq += b.Deq
	out.Err += b.Err
	return out
}

// badMirror names a type that does not exist.
//
//lcrq:mirror nosuch.Type
func badMirror() {} // want `//lcrq:mirror nosuch\.Type: cannot resolve a struct type \(want "pkgpath\.Type" or "Type"\)`
