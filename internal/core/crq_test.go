package core

import (
	"sync"
	"testing"
	"testing/quick"
)

// smallCfg keeps rings tiny so wraparound and closing paths are exercised.
func smallCfg(order int) Config {
	return Config{RingOrder: order, NoPadding: true}
}

func TestCRQSequentialFIFO(t *testing.T) {
	q := NewCRQ(smallCfg(4))
	h := NewHandle()
	for i := uint64(0); i < 10; i++ {
		if !q.Enqueue(h, i+100) {
			t.Fatalf("enqueue %d returned CLOSED", i)
		}
	}
	for i := uint64(0); i < 10; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i+100 {
			t.Fatalf("dequeue %d = (%d,%v), want (%d,true)", i, v, ok, i+100)
		}
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("dequeue from empty ring returned a value")
	}
}

func TestCRQEmptyOnFresh(t *testing.T) {
	q := NewCRQ(smallCfg(3))
	h := NewHandle()
	for i := 0; i < 3; i++ {
		if v, ok := q.Dequeue(h); ok {
			t.Fatalf("fresh ring returned %d", v)
		}
	}
	// After EMPTY dequeues, fixState must leave head ≤ tail so enqueues
	// still work.
	if !q.Enqueue(h, 1) {
		t.Fatal("enqueue after empty dequeues failed")
	}
	if v, ok := q.Dequeue(h); !ok || v != 1 {
		t.Fatalf("got (%d,%v)", v, ok)
	}
}

func TestCRQWraparound(t *testing.T) {
	q := NewCRQ(smallCfg(2)) // R = 4
	h := NewHandle()
	// Cycle many laps through the 4-cell ring.
	for lap := uint64(0); lap < 50; lap++ {
		for i := uint64(0); i < 3; i++ {
			if !q.Enqueue(h, lap*10+i+1) {
				t.Fatalf("lap %d: ring closed unexpectedly", lap)
			}
		}
		for i := uint64(0); i < 3; i++ {
			v, ok := q.Dequeue(h)
			if !ok || v != lap*10+i+1 {
				t.Fatalf("lap %d: got (%d,%v), want %d", lap, v, ok, lap*10+i+1)
			}
		}
	}
}

func TestCRQClosesWhenFull(t *testing.T) {
	q := NewCRQ(smallCfg(2)) // R = 4
	h := NewHandle()
	accepted := 0
	for i := uint64(0); i < 100; i++ {
		if !q.Enqueue(h, i+1) {
			break
		}
		accepted++
	}
	if accepted != 4 {
		t.Fatalf("ring of 4 accepted %d items", accepted)
	}
	if !q.Closed() {
		t.Fatal("full ring not closed")
	}
	// Tantrum semantics: closed forever.
	if q.Enqueue(h, 999) {
		t.Fatal("enqueue succeeded on closed ring")
	}
	// Items remain dequeuable after close.
	for i := uint64(0); i < 4; i++ {
		v, ok := q.Dequeue(h)
		if !ok || v != i+1 {
			t.Fatalf("drain after close: got (%d,%v), want %d", v, ok, i+1)
		}
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("drained closed ring still returned a value")
	}
}

func TestCRQEnqueueBottomPanics(t *testing.T) {
	q := NewCRQ(smallCfg(3))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	q.Enqueue(NewHandle(), Bottom)
}

func TestCRQSeed(t *testing.T) {
	q := NewCRQ(smallCfg(3))
	q.seed(42)
	h := NewHandle()
	v, ok := q.Dequeue(h)
	if !ok || v != 42 {
		t.Fatalf("seeded ring: got (%d,%v)", v, ok)
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("seeded ring had more than one item")
	}
	// Ring remains usable after the seed is consumed.
	if !q.Enqueue(h, 7) {
		t.Fatal("enqueue after seed failed")
	}
	if v, ok := q.Dequeue(h); !ok || v != 7 {
		t.Fatalf("got (%d,%v)", v, ok)
	}
}

func TestCRQReset(t *testing.T) {
	q := NewCRQ(smallCfg(2))
	h := NewHandle()
	for i := uint64(0); i < 4; i++ {
		q.Enqueue(h, i+1)
	}
	q.Enqueue(h, 99) // closes
	if !q.Closed() {
		t.Fatal("expected closed")
	}
	for {
		if _, ok := q.Dequeue(h); !ok {
			break
		}
	}
	q.reset()
	if q.Closed() {
		t.Fatal("reset ring still closed")
	}
	if q.head.Load() != 0 || q.tail.Load() != 0 {
		t.Fatal("reset did not zero indices")
	}
	for i := uint64(0); i < 4; i++ {
		if !q.Enqueue(h, i+50) {
			t.Fatal("reset ring rejected enqueue")
		}
	}
	for i := uint64(0); i < 4; i++ {
		if v, ok := q.Dequeue(h); !ok || v != i+50 {
			t.Fatalf("got (%d,%v), want %d", v, ok, i+50)
		}
	}
}

func TestCRQPaddedLayout(t *testing.T) {
	for _, padded := range []bool{true, false} {
		q := NewCRQ(Config{RingOrder: 3, NoPadding: !padded})
		h := NewHandle()
		for i := uint64(0); i < 8; i++ {
			if !q.Enqueue(h, i+1) {
				t.Fatalf("padded=%v: enqueue %d failed", padded, i)
			}
		}
		for i := uint64(0); i < 8; i++ {
			if v, ok := q.Dequeue(h); !ok || v != i+1 {
				t.Fatalf("padded=%v: got (%d,%v)", padded, v, ok)
			}
		}
	}
}

func TestCRQSizeAndConfig(t *testing.T) {
	q := NewCRQ(Config{RingOrder: 5})
	if q.Size() != 32 {
		t.Fatalf("Size = %d, want 32", q.Size())
	}
	if (Config{}).RingSize() != 1<<DefaultRingOrder {
		t.Fatal("default ring size wrong")
	}
	if (Config{RingOrder: 99}).RingSize() != 1<<MaxRingOrder {
		t.Fatal("ring order not clamped")
	}
	if (Config{RingOrder: -3}).RingSize() != 2 {
		t.Fatal("negative ring order not clamped to 1")
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{StarvationLimit: -5, SpinWait: -1}.normalized()
	if c.StarvationLimit != 1 {
		t.Fatalf("StarvationLimit = %d", c.StarvationLimit)
	}
	if c.SpinWait != 0 {
		t.Fatalf("SpinWait = %d", c.SpinWait)
	}
	if c.ClusterTimeout != DefaultClusterTimeout {
		t.Fatalf("ClusterTimeout = %v", c.ClusterTimeout)
	}
	d := Config{}.normalized()
	if d.StarvationLimit != DefaultStarvationLimit || d.SpinWait != DefaultSpinWait {
		t.Fatal("defaults not applied")
	}
}

// TestCRQInterleavedModel drives a CRQ and a slice-based model queue with a
// random sequence of operations and demands identical behaviour until the
// ring closes.
func TestCRQInterleavedModel(t *testing.T) {
	f := func(ops []byte) bool {
		q := NewCRQ(smallCfg(3)) // R = 8
		h := NewHandle()
		var model []uint64
		next := uint64(1)
		for _, op := range ops {
			if op%2 == 0 {
				if q.Closed() {
					break
				}
				ok := q.Enqueue(h, next)
				if !ok {
					// Tantrum: allowed at any time; stop comparing enqueues.
					break
				}
				model = append(model, next)
				next++
			} else {
				v, ok := q.Dequeue(h)
				if len(model) == 0 {
					if ok {
						return false // dequeued from empty
					}
				} else {
					if !ok || v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		// Drain: remaining model items must come out in order.
		for _, want := range model {
			v, ok := q.Dequeue(h)
			if !ok || v != want {
				return false
			}
		}
		_, ok := q.Dequeue(h)
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCRQConcurrentNoLossNoDup runs enqueuers and dequeuers concurrently on
// one ring sized to hold everything, checking that every enqueued value is
// dequeued exactly once.
func TestCRQConcurrentNoLossNoDup(t *testing.T) {
	const (
		producers = 4
		consumers = 4
		perProd   = 2000
	)
	q := NewCRQ(Config{RingOrder: 14, NoPadding: true}) // 16384 ≥ 8000
	var wg sync.WaitGroup
	seen := make([][]uint64, consumers)
	var done sync.WaitGroup
	done.Add(producers)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer done.Done()
			h := NewHandle()
			for i := 0; i < perProd; i++ {
				v := uint64(p)<<32 | uint64(i)
				if !q.Enqueue(h, v+1) {
					t.Errorf("ring closed during test")
					return
				}
			}
		}(p)
	}
	stop := make(chan struct{})
	go func() { done.Wait(); close(stop) }()
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h := NewHandle()
			for {
				v, ok := q.Dequeue(h)
				if ok {
					seen[c] = append(seen[c], v-1)
					continue
				}
				select {
				case <-stop:
					// Producers done; one more pass to drain stragglers.
					if v, ok := q.Dequeue(h); ok {
						seen[c] = append(seen[c], v-1)
						continue
					}
					return
				default:
				}
			}
		}(c)
	}
	wg.Wait()
	got := map[uint64]int{}
	total := 0
	for _, s := range seen {
		for _, v := range s {
			got[v]++
			total++
		}
	}
	if total != producers*perProd {
		t.Fatalf("dequeued %d items, want %d", total, producers*perProd)
	}
	for v, n := range got {
		if n != 1 {
			t.Fatalf("value %#x dequeued %d times", v, n)
		}
	}
	// Per-producer FIFO: each consumer must see each producer's items in
	// increasing sequence order.
	for c, s := range seen {
		last := map[uint64]int64{}
		for _, v := range s {
			p, i := v>>32, int64(v&0xffffffff)
			if prev, ok := last[p]; ok && i <= prev {
				t.Fatalf("consumer %d saw producer %d out of order: %d after %d", c, p, i, prev)
			}
			last[p] = i
		}
	}
}

// TestCRQUnsafeTransitionPath forces the "dequeue arrives a lap early at an
// occupied cell" case: with R=1 every index maps to the same cell.
func TestCRQUnsafeTransitionPath(t *testing.T) {
	q := NewCRQ(Config{RingOrder: 1, NoPadding: true, SpinWait: -1, StarvationLimit: 1000}) // R = 2
	h := NewHandle()
	if !q.Enqueue(h, 11) {
		t.Fatal("enqueue failed")
	}
	if !q.Enqueue(h, 22) {
		t.Fatal("enqueue failed")
	}
	// Dequeue both; then dequeue empty to advance head ahead, then enqueue
	// and dequeue again to cross the unsafe/empty transition machinery.
	if v, _ := q.Dequeue(h); v != 11 {
		t.Fatalf("got %d", v)
	}
	if v, _ := q.Dequeue(h); v != 22 {
		t.Fatalf("got %d", v)
	}
	for i := 0; i < 5; i++ {
		if _, ok := q.Dequeue(h); ok {
			t.Fatal("unexpected value")
		}
	}
	ok1 := q.Enqueue(h, 33)
	if ok1 {
		if v, ok := q.Dequeue(h); !ok || v != 33 {
			t.Fatalf("got (%d,%v)", v, ok)
		}
	} else if !q.Closed() {
		t.Fatal("enqueue failed but ring not closed")
	}
}

func TestCRQCASLoopVariant(t *testing.T) {
	q := NewCRQ(Config{RingOrder: 4, NoPadding: true, CASLoopFAA: true})
	h := NewHandle()
	for i := uint64(0); i < 10; i++ {
		if !q.Enqueue(h, i+1) {
			t.Fatal("closed")
		}
	}
	for i := uint64(0); i < 10; i++ {
		if v, ok := q.Dequeue(h); !ok || v != i+1 {
			t.Fatalf("got (%d,%v)", v, ok)
		}
	}
	if h.C.FAA != 0 {
		t.Fatalf("CAS-loop variant issued %d F&As", h.C.FAA)
	}
	if h.C.CAS == 0 {
		t.Fatal("CAS-loop variant issued no CASes")
	}
}

func TestCRQCountersPlausible(t *testing.T) {
	q := NewCRQ(smallCfg(8))
	h := NewHandle()
	const n = 100
	for i := uint64(0); i < n; i++ {
		q.Enqueue(h, i+1)
	}
	for i := uint64(0); i < n; i++ {
		q.Dequeue(h)
	}
	// Uncontended: one F&A and one CAS2 per operation.
	if h.C.FAA != 2*n {
		t.Fatalf("FAA = %d, want %d", h.C.FAA, 2*n)
	}
	if h.C.CAS2 != 2*n || h.C.CAS2Fail != 0 {
		t.Fatalf("CAS2 = %d (fail %d), want %d (0)", h.C.CAS2, h.C.CAS2Fail, 2*n)
	}
}
