package core

import (
	"sync"
	"testing"
)

// TestAdaptiveConfigNormalization pins the clamping of the adaptive knobs:
// non-positive spin bounds and decay select the defaults, an inverted
// max is raised to min (matching WithWaitBackoff's convention), and the
// boost cap maps 0 → default, negative → disabled (-1), huge → hard ceiling.
func TestAdaptiveConfigNormalization(t *testing.T) {
	c := Config{AdaptSpinMin: -3, AdaptSpinMax: -7, AdaptDecay: -1}.normalized()
	if c.AdaptSpinMin != DefaultAdaptSpinMin || c.AdaptSpinMax != DefaultAdaptSpinMax || c.AdaptDecay != DefaultAdaptDecay {
		t.Fatalf("negative knobs: got (%d, %d, %d), want defaults (%d, %d, %d)",
			c.AdaptSpinMin, c.AdaptSpinMax, c.AdaptDecay,
			DefaultAdaptSpinMin, DefaultAdaptSpinMax, DefaultAdaptDecay)
	}
	c = Config{AdaptSpinMin: 500, AdaptSpinMax: 100}.normalized()
	if c.AdaptSpinMax != 500 {
		t.Fatalf("inverted bounds: max = %d, want raised to min 500", c.AdaptSpinMax)
	}
	if got := (Config{}).normalized().AdaptBoostMax; got != DefaultAdaptBoostMax {
		t.Fatalf("zero boost cap = %d, want default %d", got, DefaultAdaptBoostMax)
	}
	if got := (Config{AdaptBoostMax: -5}).normalized().AdaptBoostMax; got != -1 {
		t.Fatalf("negative boost cap = %d, want the disabled sentinel -1", got)
	}
	if got := (Config{AdaptBoostMax: 1000}).normalized().AdaptBoostMax; got != MaxAdaptBoost {
		t.Fatalf("huge boost cap = %d, want clamped to %d", got, MaxAdaptBoost)
	}
}

// adaptiveCRQHandle returns a handle whose controller is armed, for driving
// a standalone CRQ (detached handles arm only the jitter source).
func adaptiveCRQHandle() *Handle {
	h := NewHandle()
	h.Ctl.Init(true, 0, 0, 0, nil)
	return h
}

// TestAdaptiveEnqueueBackoffEngages forces the enqueue cell-retry path
// deterministically — a cell pre-poisoned with a future index makes the
// first reserved index unusable, exactly the state a racing dequeuer's
// empty transition leaves — and checks the controller hooks fire: a raise
// with burned pause iterations on the failed attempt, a decay on the
// successful deposit that follows.
func TestAdaptiveEnqueueBackoffEngages(t *testing.T) {
	cfg := Config{RingOrder: 1, AdaptiveContention: true}.normalized()
	q := NewCRQ(cfg)
	h := adaptiveCRQHandle()
	// Cell 0 looks "moved past" (safe, index R, ⊥): the enqueuer's idx ≤ t
	// check fails, so the first attempt abandons the index and retries.
	q.cell(0).StoreLo(q.size)
	if !q.Enqueue(h, 42) {
		t.Fatal("enqueue failed outright on a poisoned first cell")
	}
	if h.C.CellRetries == 0 {
		t.Fatal("poisoned cell did not force a cell retry")
	}
	if h.C.AdaptRaises == 0 || h.C.AdaptSpins == 0 {
		t.Fatalf("failed attempt raised nothing: raises=%d spins=%d",
			h.C.AdaptRaises, h.C.AdaptSpins)
	}
	if h.C.AdaptDecays == 0 {
		t.Fatal("successful deposit did not decay the backoff")
	}
	if v, ok := q.Dequeue(h); !ok || v != 42 {
		t.Fatalf("dequeue after retried enqueue = (%d, %v), want (42, true)", v, ok)
	}
}

// TestAdaptiveDequeueBackoffEngages forces the dequeue retry path: the first
// reserved head index yields nothing (pre-poisoned cell) while an item sits
// at the next index, so the dequeuer retries — raising its backoff — and
// then claims the item, decaying it.
func TestAdaptiveDequeueBackoffEngages(t *testing.T) {
	cfg := Config{RingOrder: 1, AdaptiveContention: true, SpinWait: -1}.normalized()
	q := NewCRQ(cfg)
	h := adaptiveCRQHandle()
	// One live item at index 1, and index 0 poisoned past the dequeuer.
	if !q.Enqueue(h, 7) || !q.Enqueue(h, 8) {
		t.Fatal("seed enqueues failed")
	}
	if v, ok := q.Dequeue(h); !ok || v != 7 {
		t.Fatalf("seed dequeue = (%d, %v), want (7, true)", v, ok)
	}
	h.C.AdaptRaises, h.C.AdaptDecays = 0, 0
	// Re-poison cell 1 (the next head index) as moved-past with no value.
	q.cell(1).StoreHi(0)
	q.cell(1).StoreLo(1 + 2*q.size)
	// Keep one more live item beyond it so the retry has something to find.
	if !q.Enqueue(h, 9) {
		t.Fatal("third enqueue failed")
	}
	if v, ok := q.Dequeue(h); !ok || v != 9 {
		t.Fatalf("retried dequeue = (%d, %v), want (9, true)", v, ok)
	}
	if h.C.AdaptRaises == 0 {
		t.Fatal("missed head index did not raise the backoff")
	}
	if h.C.AdaptDecays == 0 {
		t.Fatal("claimed item did not decay the backoff")
	}
}

// TestAdaptiveBatchBackoffEngages covers the batch-path hooks the same way:
// a poisoned first index inside an EnqueueBatch reservation raises, the
// deposits that follow decay.
func TestAdaptiveBatchBackoffEngages(t *testing.T) {
	cfg := Config{RingOrder: 2, AdaptiveContention: true}.normalized()
	q := NewCRQ(cfg)
	h := adaptiveCRQHandle()
	q.cell(0).StoreLo(q.size) // first reserved index is unusable
	n, closed := q.EnqueueBatch(h, []uint64{1, 2, 3})
	if n != 3 || closed {
		t.Fatalf("EnqueueBatch = (%d, %v), want (3, false)", n, closed)
	}
	if h.C.AdaptRaises == 0 {
		t.Fatal("batch cell loss did not raise the backoff")
	}
	if h.C.AdaptDecays == 0 {
		t.Fatal("batch deposits did not decay the backoff")
	}
	// The abandoned index leaves a hole in the reservation, so one batch call
	// may fill partially; drain across calls and check FIFO order end to end.
	var drained []uint64
	out := make([]uint64, 3)
	for len(drained) < 3 {
		got := q.DequeueBatch(h, out)
		if got == 0 {
			t.Fatalf("queue went empty after draining %d of 3", len(drained))
		}
		drained = append(drained, out[:got]...)
	}
	for i, v := range drained {
		if v != uint64(i)+1 {
			t.Fatalf("drained[%d] = %d, want %d (FIFO broken)", i, v, i+1)
		}
	}
}

// TestAdaptiveQueueConserves runs concurrent traffic through a tiny-ring
// adaptive queue and checks conservation: every accepted value is dequeued
// exactly once, with the controller armed end to end. (Engagement itself is
// asserted by the deterministic whitebox tests above — on a single-processor
// runner, organically scheduled goroutines may never actually collide.)
func TestAdaptiveQueueConserves(t *testing.T) {
	q := NewLCRQ(Config{RingOrder: 1, StarvationLimit: 4, AdaptiveContention: true})
	if !q.Adaptive() {
		t.Fatal("Adaptive() = false on an adaptive queue")
	}
	const threads, opsEach = 4, 2000
	var wg sync.WaitGroup
	start := make(chan struct{})
	handles := make([]*Handle, threads)
	dequeued := make([]map[uint64]int, threads)
	var enqueued [threads]uint64
	for th := 0; th < threads; th++ {
		handles[th] = q.NewHandle()
		dequeued[th] = make(map[uint64]int)
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			h := handles[th]
			<-start
			for i := 0; i < opsEach; i++ {
				v := uint64(th)<<32 | uint64(i) + 1
				if q.Enqueue(h, v) {
					enqueued[th]++
				}
				if v, ok := q.Dequeue(h); ok {
					dequeued[th][v]++
				}
			}
		}(th)
	}
	close(start)
	wg.Wait()
	// Drain the residue.
	drain := q.NewHandle()
	for {
		v, ok := q.Dequeue(drain)
		if !ok {
			break
		}
		dequeued[0][v]++
	}
	drain.Release()
	var totalIn, totalOut uint64
	for th := 0; th < threads; th++ {
		totalIn += enqueued[th]
		for v, n := range dequeued[th] {
			if n != 1 {
				t.Fatalf("value %#x dequeued %d times", v, n)
			}
			totalOut++
		}
		handles[th].Release()
	}
	if totalIn != totalOut {
		t.Fatalf("conservation broken: %d enqueued, %d dequeued", totalIn, totalOut)
	}
}

// TestAdaptiveWidensStarvationLimit drives one handle's controller up and
// checks the queue-level plumbing end to end: the handle's effective limit
// widens with its backoff level, and the shared boost doubles it again.
func TestAdaptiveWidensStarvationLimit(t *testing.T) {
	q := NewLCRQ(Config{RingOrder: 4, StarvationLimit: 64, AdaptiveContention: true})
	h := q.NewHandle()
	defer h.Release()
	if got := h.Ctl.StarveLimit(64); got != 64 {
		t.Fatalf("idle limit = %d, want 64", got)
	}
	h.Ctl.Fail() // level = AdaptSpinMin
	want := 64 + DefaultAdaptSpinMin
	if got := h.Ctl.StarveLimit(64); got != want {
		t.Fatalf("contended limit = %d, want %d", got, want)
	}
	if _, changed := q.RaiseContention(); !changed {
		t.Fatal("RaiseContention did not move a fresh boost")
	}
	if got := h.Ctl.StarveLimit(64); got != want<<1 {
		t.Fatalf("boosted limit = %d, want %d", got, want<<1)
	}
	if q.ContentionBoost() != 1 || q.ContentionRaises() != 1 {
		t.Fatalf("boost/raises = %d/%d, want 1/1", q.ContentionBoost(), q.ContentionRaises())
	}
	if _, changed := q.DecayContention(); !changed {
		t.Fatal("DecayContention did not move a raised boost")
	}
	if q.ContentionBoost() != 0 || q.ContentionDecays() != 1 {
		t.Fatalf("boost/decays = %d/%d, want 0/1", q.ContentionBoost(), q.ContentionDecays())
	}
}

// TestFixedQueueHasNoControllerResidue: a fixed-constant queue reports the
// disabled state everywhere and its remediation entry points are no-ops,
// but its handles still carry a working jitter source.
func TestFixedQueueHasNoControllerResidue(t *testing.T) {
	q := NewLCRQ(Config{RingOrder: 4})
	h := q.NewHandle()
	defer h.Release()
	if q.Adaptive() {
		t.Fatal("Adaptive() = true without the option")
	}
	if _, changed := q.RaiseContention(); changed {
		t.Fatal("RaiseContention moved on a fixed queue")
	}
	if _, changed := q.DecayContention(); changed {
		t.Fatal("DecayContention moved on a fixed queue")
	}
	if q.ContentionBoost() != 0 || q.ContentionRaises() != 0 || q.ContentionDecays() != 0 {
		t.Fatal("nonzero contention gauges on a fixed queue")
	}
	if h.Ctl.Enabled() {
		t.Fatal("handle controller enabled on a fixed queue")
	}
	if got := h.Ctl.StarveLimit(64); got != 64 {
		t.Fatalf("disabled StarveLimit = %d, want pass-through 64", got)
	}
	// The jitter source must work regardless (clusterGate and the public
	// wait loops rely on it).
	const d = 1000
	if j := h.Ctl.Jitter(d); j < d/2 || j > 3*d/2 {
		t.Fatalf("disabled-handle Jitter(%d) = %d out of range", d, j)
	}
	// Detached handles (standalone CRQ use) are initialized the same way.
	if j := NewHandle().Ctl.Jitter(d); j < d/2 || j > 3*d/2 {
		t.Fatalf("detached-handle Jitter(%d) = %d out of range", d, j)
	}
}

// TestAdaptiveBoostDisabledByNegativeCap: AdaptBoostMax < 0 keeps per-handle
// adaptation but pins the shared boost at zero.
func TestAdaptiveBoostDisabledByNegativeCap(t *testing.T) {
	q := NewLCRQ(Config{RingOrder: 4, AdaptiveContention: true, AdaptBoostMax: -1})
	if !q.Adaptive() {
		t.Fatal("negative boost cap disabled the whole controller")
	}
	if _, changed := q.RaiseContention(); changed {
		t.Fatal("RaiseContention moved with remediation disabled")
	}
	h := q.NewHandle()
	defer h.Release()
	if !h.Ctl.Enabled() {
		t.Fatal("per-handle adaptation off despite AdaptiveContention")
	}
}
