package core

import (
	"sync/atomic"

	"lcrq/internal/chaos"
	"lcrq/internal/pad"
)

// top is the second reserved value of the infinite-array queue: the poison
// a dequeuer swaps into a cell to repel the matching enqueuer.
const top = ^uint64(0) - 1

// IAQ is the idealized "infinite array" queue of Figure 2, realized over a
// bounded backing array for demonstration and differential testing. It is
// linearizable but, unlike CRQ/LCRQ, (a) its capacity is the total number
// of enqueues it can ever accept — cells are never reused — and (b) it is
// susceptible to livelock under adversarial scheduling. It exists because
// LCRQ is best understood as the practical realization of this algorithm,
// and because agreement between the two on random histories is a cheap,
// powerful correctness check.
//
// Values Bottom and Bottom-1 are reserved.
//
//lcrq:padded
type IAQ struct {
	head atomic.Uint64
	_    pad.Pad
	tail atomic.Uint64
	_    pad.Pad
	// cells[i] holds ^v for enqueued value v; 0 is ⊥ and ^top is ⊤.
	cells []atomic.Uint64
}

// NewIAQ returns a queue that can accept capacity enqueues in total.
func NewIAQ(capacity int) *IAQ {
	if capacity <= 0 {
		panic("core: IAQ capacity must be positive")
	}
	return &IAQ{cells: make([]atomic.Uint64, capacity)}
}

// Capacity returns the total number of enqueues the queue can ever accept.
func (q *IAQ) Capacity() int { return len(q.cells) }

// Enqueue appends v. It returns false when the backing array is exhausted
// (the "infinite" part of the idealized algorithm runs out); this deviation
// from Figure 2 is what makes the demo realizable.
//
//lcrq:hotpath
func (q *IAQ) Enqueue(h *Handle, v uint64) bool {
	if v == Bottom || v == top {
		panic("core: enqueue of reserved value")
	}
	for {
		h.C.FAA++
		t := q.tail.Add(1) - 1
		if t >= uint64(len(q.cells)) {
			return false
		}
		chaos.Delay(chaos.DelayEnq) // widen the F&A → SWAP window
		h.C.SWAP++
		if q.cells[t].Swap(^v) == 0 { // swapped into ⊥
			h.C.Enqueues++
			return true
		}
	}
}

// Dequeue removes and returns the oldest value; ok is false if the queue
// is empty. Dequeuing from an exhausted queue keeps returning ok=false.
//
//lcrq:hotpath
func (q *IAQ) Dequeue(h *Handle) (v uint64, ok bool) {
	for {
		h.C.FAA++
		hd := q.head.Add(1) - 1
		if hd >= uint64(len(q.cells)) {
			h.C.Dequeues++
			h.C.Empty++
			return Bottom, false
		}
		chaos.Delay(chaos.DelayDeq) // widen the F&A → SWAP window
		h.C.SWAP++
		x := q.cells[hd].Swap(^top)
		if x != 0 && x != ^top { // found a value
			h.C.Dequeues++
			return ^x, true
		}
		if q.tail.Load() <= hd+1 {
			h.C.Dequeues++
			h.C.Empty++
			return Bottom, false
		}
	}
}
