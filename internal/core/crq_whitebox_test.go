package core

// Whitebox tests that drive individual protocol transitions of Figure 3 by
// manipulating the ring's head/tail indices directly, verifying the cell
// encoding and the instrumentation hooks transition by transition.

import (
	"sync"
	"testing"
	"time"
)

func cellState(q *CRQ, i uint64) (safe bool, idx uint64, val uint64, empty bool) {
	c := q.cell(i)
	lo, hi := c.LoadLo(), c.LoadHi()
	return lo&unsafeFlag == 0, lo & idxMask, ^hi, hi == 0
}

func TestCellEncodingAfterEnqueue(t *testing.T) {
	q := NewCRQ(smallCfg(2))
	h := NewHandle()
	if !q.Enqueue(h, 77) {
		t.Fatal("enqueue failed")
	}
	safe, idx, val, empty := cellState(q, 0)
	if !safe || idx != 0 || val != 77 || empty {
		t.Fatalf("cell after enqueue: safe=%v idx=%d val=%d empty=%v", safe, idx, val, empty)
	}
}

func TestCellEncodingAfterDequeue(t *testing.T) {
	q := NewCRQ(smallCfg(2)) // R = 4
	h := NewHandle()
	q.Enqueue(h, 77)
	if v, _ := q.Dequeue(h); v != 77 {
		t.Fatal("wrong value")
	}
	safe, idx, _, empty := cellState(q, 0)
	if !safe || idx != 4 || !empty {
		t.Fatalf("cell after dequeue: safe=%v idx=%d empty=%v (want safe, idx=R, empty)", safe, idx, empty)
	}
}

// TestEmptyTransitionPoisonsCell: a dequeuer that outruns its enqueuer
// bumps the cell index by R, forcing the matching enqueuer to retry with a
// new index.
func TestEmptyTransitionPoisonsCell(t *testing.T) {
	q := NewCRQ(Config{RingOrder: 2, NoPadding: true, SpinWait: -1})
	h := NewHandle()
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("empty ring returned value")
	}
	if h.C.EmptyTrans != 1 {
		t.Fatalf("EmptyTrans = %d, want 1", h.C.EmptyTrans)
	}
	// Cell 0 now carries idx=0+R: the enqueuer with t=0 must skip it.
	_, idx, _, empty := cellState(q, 0)
	if idx != 4 || !empty {
		t.Fatalf("poisoned cell: idx=%d empty=%v", idx, empty)
	}
	// fixState repaired head>tail, so the next enqueue gets t=1 (not 0)
	// and succeeds immediately.
	if !q.Enqueue(h, 5) {
		t.Fatal("enqueue after poison failed")
	}
	if v, ok := q.Dequeue(h); !ok || v != 5 {
		t.Fatalf("got (%d,%v)", v, ok)
	}
}

// TestSpinWaitTriggers: an empty cell whose matching enqueuer is "active"
// (tail already advanced past h) makes the dequeuer spin before poisoning.
func TestSpinWaitTriggers(t *testing.T) {
	const spins = 10
	q := NewCRQ(Config{RingOrder: 2, NoPadding: true, SpinWait: spins})
	h := NewHandle()
	// Simulate an enqueuer that took t=0 but has not deposited yet.
	q.tail.Add(1)
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("no value should be found")
	}
	if h.C.SpinWaits != spins {
		t.Fatalf("SpinWaits = %d, want %d", h.C.SpinWaits, spins)
	}
	if h.C.EmptyTrans == 0 {
		t.Fatal("expected an empty transition after the spin budget expired")
	}
}

// TestSpinWaitSucceeds: if the enqueuer deposits during the spin window the
// dequeuer picks the value up without poisoning the cell.
func TestSpinWaitSucceeds(t *testing.T) {
	q := NewCRQ(Config{RingOrder: 2, NoPadding: true, SpinWait: 1 << 30})
	hd, he := NewHandle(), NewHandle()
	q.tail.Add(1) // reserve t=0 as if an enqueuer's F&A happened
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(2 * time.Millisecond)
		// Deposit directly into cell 0, completing the reserved enqueue.
		c := q.cell(0)
		if !c.CompareAndSwap(0, 0, 0, ^uint64(99)) {
			t.Error("deposit CAS failed")
		}
		_ = he
	}()
	v, ok := q.Dequeue(hd)
	wg.Wait()
	if !ok || v != 99 {
		t.Fatalf("got (%d,%v), want (99,true)", v, ok)
	}
	if hd.C.EmptyTrans != 0 {
		t.Fatal("dequeuer poisoned the cell despite the deposit")
	}
	if hd.C.SpinWaits == 0 {
		t.Fatal("dequeuer did not spin")
	}
}

// TestUnsafeTransitionMarksCell: a dequeuer that is a whole lap ahead of an
// occupied cell marks it unsafe rather than dequeuing it.
func TestUnsafeTransitionMarksCell(t *testing.T) {
	q := NewCRQ(Config{RingOrder: 1, NoPadding: true, SpinWait: -1}) // R = 2
	h := NewHandle()
	q.Enqueue(h, 11) // cell 0 occupied with idx 0
	// Simulate a dequeuer one lap ahead: force head to 2 so its F&A
	// returns index 2, which maps to cell 0 but exceeds its idx by R.
	q.head.Store(2)
	q.tail.Store(3) // keep the empty check from firing prematurely
	done := make(chan struct{})
	go func() {
		defer close(done)
		q.Dequeue(h) // index 2 → unsafe transition on cell 0, then retries
	}()
	<-done
	if h.C.UnsafeTrans == 0 {
		t.Fatal("no unsafe transition recorded")
	}
	safe, idx, val, _ := cellState(q, 0)
	if safe || idx != 0 || val != 11 {
		t.Fatalf("cell after unsafe transition: safe=%v idx=%d val=%d", safe, idx, val)
	}
}

// TestUnsafeCellEnqueueRecovery: an enqueuer may still use an unsafe cell
// when it can prove the poisoning dequeuer has not started (head ≤ t), and
// doing so re-safes the cell.
func TestUnsafeCellEnqueueRecovery(t *testing.T) {
	q := NewCRQ(Config{RingOrder: 1, NoPadding: true}) // R = 2
	h := NewHandle()
	// Make cell 0 unsafe but empty: (0, 0, ⊥).
	q.cell(0).StoreLo(unsafeFlag)
	// head = 0 ≤ t = 0, so the enqueue transition is allowed and restores
	// the safe bit.
	if !q.Enqueue(h, 42) {
		t.Fatal("enqueue into provably-safe unsafe cell failed")
	}
	safe, idx, val, _ := cellState(q, 0)
	if !safe || idx != 0 || val != 42 {
		t.Fatalf("cell: safe=%v idx=%d val=%d", safe, idx, val)
	}
	if v, ok := q.Dequeue(h); !ok || v != 42 {
		t.Fatalf("got (%d,%v)", v, ok)
	}
}

// TestUnsafeCellEnqueueSkipped: when head has passed t, the enqueuer must
// not deposit into an unsafe cell (the dequeuer that poisoned it will never
// come back); it retries elsewhere or closes.
func TestUnsafeCellEnqueueSkipped(t *testing.T) {
	q := NewCRQ(Config{RingOrder: 1, NoPadding: true, StarvationLimit: 4}) // R = 2
	h := NewHandle()
	q.cell(0).StoreLo(unsafeFlag) // unsafe empty cell 0
	q.cell(1).StoreLo(unsafeFlag) // unsafe empty cell 1
	q.head.Store(4)               // head far ahead: both cells are doomed
	ok := q.Enqueue(h, 9)
	if ok {
		t.Fatal("enqueue deposited into a doomed cell")
	}
	if !q.Closed() {
		t.Fatal("ring should have closed after starving")
	}
}

// TestFixStateRepairsInversion: empty dequeues can leave head > tail;
// fixState must restore head ≤ tail so enqueues do not see a full ring.
func TestFixStateRepairsInversion(t *testing.T) {
	q := NewCRQ(smallCfg(2))
	h := NewHandle()
	for i := 0; i < 3; i++ {
		q.Dequeue(h) // each empty dequeue bumps head
	}
	hd, tl := q.head.Load(), q.tail.Load()
	if hd > tl {
		t.Fatalf("fixState failed: head %d > tail %d", hd, tl)
	}
}

// TestTantrumMonotonicUnderConcurrency: once any enqueuer observes CLOSED,
// every later enqueue must also observe CLOSED.
func TestTantrumMonotonicUnderConcurrency(t *testing.T) {
	q := NewCRQ(Config{RingOrder: 2, NoPadding: true, StarvationLimit: 4})
	var closedAt int64 = -1
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := NewHandle()
			for i := 0; i < 1000; i++ {
				ok := q.Enqueue(h, uint64(w*1000+i)+1)
				mu.Lock()
				if !ok && closedAt == -1 {
					closedAt = int64(w*1000 + i)
				}
				if ok && closedAt != -1 {
					mu.Unlock()
					t.Errorf("enqueue succeeded after CLOSED was observed")
					return
				}
				mu.Unlock()
				if !ok {
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestHierarchicalGateClaimsCluster: the first foreign-cluster operation
// waits out the timeout, claims the ring, and subsequent operations from
// the same cluster pass immediately.
func TestHierarchicalGateClaimsCluster(t *testing.T) {
	timeout := 2 * time.Millisecond
	q := NewLCRQ(Config{RingOrder: 4, NoPadding: true,
		Hierarchical: true, ClusterTimeout: timeout})
	h := q.NewHandle()
	defer h.Release()
	h.Cluster = 7

	t0 := time.Now()
	q.Enqueue(h, 1) // must wait ≈timeout (jittered within [t/2, 3t/2]), then claim
	first := time.Since(t0)
	if first < timeout/2 {
		t.Fatalf("first foreign op took %v, want ≥ the jittered floor %v", first, timeout/2)
	}
	if got := q.head.Load().cluster.Load(); got != 7 {
		t.Fatalf("cluster = %d, want 7", got)
	}
	t0 = time.Now()
	for i := 0; i < 100; i++ {
		q.Enqueue(h, uint64(i)+2)
	}
	rest := time.Since(t0)
	if rest > timeout*10 {
		t.Fatalf("claimed-cluster ops took %v, gate is not being bypassed", rest)
	}
}
