//go:build chaos

package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lcrq/internal/chaos"
	"lcrq/internal/linearize"
	"lcrq/internal/xrand"
)

// batchChaosCampaign is chaosCampaign's batched sibling: workers issue
// EnqueueBatch/DequeueBatch of 1–2 items, every batch is decomposed into
// its constituent single-item ops (sharing the batch's interval), and each
// tiny history goes through the exhaustive linearizability checker.
func batchChaosCampaign(t *testing.T, cfg Config, rounds, threads, batchesEach int, seed uint64) {
	t.Helper()
	for round := 0; round < rounds; round++ {
		q := NewLCRQ(cfg)
		rec := linearize.NewRecorder(threads)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				h := q.NewHandle()
				defer h.Release()
				rng := xrand.New(seed + uint64(round)*1000 + uint64(th))
				<-start
				for i := 0; i < batchesEach; i++ {
					k := int(rng.Uintn(2)) + 1
					if rng.Uint64()%2 == 0 {
						vs := make([]uint64, k)
						for j := range vs {
							vs[j] = uint64(th)<<32 | uint64(i)<<8 | uint64(j) + 1
						}
						inv := rec.Now()
						n, _ := q.EnqueueBatch(h, vs)
						ret := rec.Now()
						for _, v := range vs[:n] {
							rec.Append(th, linearize.Op{
								Kind: linearize.Enq, Value: v,
								Invoke: inv, Return: ret,
							})
						}
					} else {
						out := make([]uint64, k)
						inv := rec.Now()
						n := q.DequeueBatch(h, out)
						ret := rec.Now()
						if n == 0 {
							rec.Append(th, linearize.Op{
								Kind: linearize.Deq, OK: false,
								Invoke: inv, Return: ret,
							})
							continue
						}
						for _, v := range out[:n] {
							rec.Append(th, linearize.Op{
								Kind: linearize.Deq, Value: v, OK: true,
								Invoke: inv, Return: ret,
							})
						}
					}
				}
			}(th)
		}
		close(start)
		wg.Wait()
		hist := rec.History()
		if !linearize.Check(hist) {
			t.Fatalf("round %d: non-linearizable batch history under chaos:\n%v", round, hist)
		}
	}
}

// TestBatchLinearizableUnderInjection arms each injection point reachable
// from the batch paths — including the two new reservation windows — and
// requires linearizability to survive, with vacuousness checks that the
// points actually fired.
func TestBatchLinearizableUnderInjection(t *testing.T) {
	tiny := Config{RingOrder: 1, StarvationLimit: 4}
	bounded := Config{RingOrder: 1, StarvationLimit: 4, Capacity: 2}
	for _, sc := range []pointScenario{
		{chaos.BatchEnqReserve, 0.7, tiny},
		{chaos.BatchDeqReserve, 0.7, tiny},
		{chaos.EnqCAS2Fail, 0.3, tiny},
		{chaos.DeqCAS2Fail, 0.3, tiny},
		{chaos.RingClose, 0.2, tiny},
		{chaos.Tantrum, 0.2, tiny},
		{chaos.Handoff, 0.7, tiny},
		{chaos.CapacityGate, 0.5, bounded},
	} {
		t.Run(sc.point.String(), func(t *testing.T) {
			chaos.Reset()
			defer chaos.Reset()
			chaos.Set(sc.point, sc.prob)
			batchChaosCampaign(t, sc.cfg, 40, 3, 4, 21)
			if chaos.Fired(sc.point) == 0 {
				t.Fatalf("injection point %v never fired; scenario is vacuous", sc.point)
			}
		})
	}
}

// TestBatchEnqueueRacingClose races batch enqueues against Close with the
// reservation window widened: every batch must be accepted as a clean
// prefix (n values in, the rest reported EnqClosed), and a post-close drain
// must see exactly the accepted values, in per-thread order.
func TestBatchEnqueueRacingClose(t *testing.T) {
	chaos.Reset()
	defer chaos.Reset()
	chaos.Set(chaos.BatchEnqReserve, 0.8)
	chaos.Set(chaos.RingClose, 0.1)

	const threads = 3
	for round := 0; round < 30; round++ {
		q := NewLCRQ(Config{RingOrder: 1, StarvationLimit: 4})
		var wg sync.WaitGroup
		accepted := make([][]uint64, threads)
		start := make(chan struct{})
		for th := 0; th < threads; th++ {
			wg.Add(1)
			go func(th int) {
				defer wg.Done()
				h := q.NewHandle()
				defer h.Release()
				<-start
				for i := 0; i < 6; i++ {
					vs := []uint64{
						uint64(th)<<32 | uint64(i)<<8 | 1,
						uint64(th)<<32 | uint64(i)<<8 | 2,
					}
					n, st := q.EnqueueBatch(h, vs)
					accepted[th] = append(accepted[th], vs[:n]...)
					if st == EnqClosed {
						return
					}
				}
			}(th)
		}
		closer := q.NewHandle()
		close(start)
		if round%2 == 1 {
			// Let some reservations land first so Close races in-flight
			// batches instead of winning before any worker wakes.
			time.Sleep(100 * time.Microsecond)
		}
		q.Close(closer)
		wg.Wait()

		drained := map[uint64]bool{}
		var order = map[int][]uint64{} // per-thread dequeue order
		h := q.NewHandle()
		out := make([]uint64, 4)
		for {
			n := q.DequeueBatch(h, out)
			if n == 0 {
				break
			}
			for _, v := range out[:n] {
				if drained[v] {
					t.Fatalf("round %d: value %d drained twice", round, v)
				}
				drained[v] = true
				th := int(v >> 32)
				order[th] = append(order[th], v)
			}
		}
		h.Release()
		closer.Release()
		for th := 0; th < threads; th++ {
			if len(order[th]) != len(accepted[th]) {
				t.Fatalf("round %d: thread %d accepted %d values, drained %d",
					round, th, len(accepted[th]), len(order[th]))
			}
			for i, v := range accepted[th] {
				if order[th][i] != v {
					t.Fatalf("round %d: thread %d FIFO violated at %d: %d != %d",
						round, th, i, order[th][i], v)
				}
			}
		}
	}
	if chaos.Fired(chaos.BatchEnqReserve) == 0 {
		t.Fatal("BatchEnqReserve never fired; close race is vacuous")
	}
}

// TestBatchDequeueRacingRetirement hammers batch dequeues across constant
// ring retirement (tiny rings, hand-off delays armed): conservation must
// hold — every enqueued value is dequeued exactly once.
func TestBatchDequeueRacingRetirement(t *testing.T) {
	chaos.Reset()
	defer chaos.Reset()
	chaos.Set(chaos.BatchDeqReserve, 0.6)
	chaos.Set(chaos.Handoff, 0.6)

	const (
		producers = 2
		consumers = 2
		perProd   = 200
	)
	q := NewLCRQ(Config{RingOrder: 1, StarvationLimit: 4})
	var wg sync.WaitGroup
	seen := make([]map[uint64]bool, consumers)
	var total int64
	var mu sync.Mutex
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			local := map[uint64]bool{}
			out := make([]uint64, 8)
			for {
				n := q.DequeueBatch(h, out)
				for _, v := range out[:n] {
					if local[v] {
						t.Errorf("consumer %d saw %d twice", c, v)
					}
					local[v] = true
				}
				if n == 0 {
					select {
					case <-done:
						// Final sweep after producers stopped.
						if q.DequeueBatch(h, out) == 0 {
							mu.Lock()
							seen[c] = local
							mu.Unlock()
							return
						}
					default:
					}
				}
			}
		}(c)
	}
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			h := q.NewHandle()
			defer h.Release()
			for i := 0; i < perProd; i += 4 {
				vs := make([]uint64, 4)
				for j := range vs {
					vs[j] = uint64(p)<<32 | uint64(i+j) | 1<<62
				}
				q.EnqueueBatch(h, vs)
			}
		}(p)
	}
	pwg.Wait()
	close(done)
	wg.Wait()
	union := map[uint64]bool{}
	for _, m := range seen {
		for v := range m {
			if union[v] {
				t.Fatalf("value %d dequeued by two consumers", v)
			}
			union[v] = true
		}
	}
	total = int64(len(union))
	if want := int64(producers * perProd); total != want {
		t.Fatalf("conservation violated: %d of %d values drained", total, want)
	}
	if chaos.Fired(chaos.BatchDeqReserve) == 0 {
		t.Fatal("BatchDeqReserve never fired; retirement race is vacuous")
	}
}

// TestBatchBoundedPartialUnderChaos keeps a capacity-2 queue perpetually
// contended by batch producers while the capacity gate and reservation
// windows are armed: the exact item account must never exceed the bound,
// and partial acceptances must refund cleanly (Items returns to zero after
// a full drain).
func TestBatchBoundedPartialUnderChaos(t *testing.T) {
	chaos.Reset()
	defer chaos.Reset()
	chaos.Set(chaos.CapacityGate, 0.5)
	chaos.Set(chaos.BatchEnqReserve, 0.5)

	const cap = 2
	q := NewLCRQ(Config{RingOrder: 1, StarvationLimit: 4, Capacity: cap})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var violations atomic.Int64
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			vs := make([]uint64, 3) // always wider than the whole budget
			out := make([]uint64, 3)
			i := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for j := range vs {
					vs[j] = uint64(w)<<32 | i + uint64(j) + 1
				}
				i += uint64(len(vs))
				q.EnqueueBatch(h, vs)
				if q.Items() > cap {
					violations.Add(1)
				}
				q.DequeueBatch(h, out)
			}
		}(w)
	}
	// Observe until both armed points have demonstrably fired (bounded by a
	// deadline so a wedged scenario fails loudly rather than hanging).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if q.Items() > cap {
			violations.Add(1)
		}
		if chaos.Fired(chaos.CapacityGate) > 0 && chaos.Fired(chaos.BatchEnqReserve) > 0 {
			break
		}
	}
	close(stop)
	wg.Wait()
	if n := violations.Load(); n > 0 {
		t.Fatalf("item account exceeded capacity %d times", n)
	}
	// Drain everything; the account must return exactly to zero.
	h := q.NewHandle()
	defer h.Release()
	out := make([]uint64, 8)
	for q.DequeueBatch(h, out) > 0 {
	}
	if got := q.Items(); got != 0 {
		t.Fatalf("Items() after drain = %d, want 0 (refund leaked)", got)
	}
	if chaos.Fired(chaos.CapacityGate) == 0 || chaos.Fired(chaos.BatchEnqReserve) == 0 {
		t.Fatal("bounded chaos scenario is vacuous")
	}
}
