package core

import (
	"lcrq/internal/epoch"
	"lcrq/internal/hazard"
	"lcrq/internal/instrument"
)

// Hazard-pointer slot assignments within a handle.
const (
	hpHead  = iota // protects the CRQ a dequeue works in
	hpTail         // protects the CRQ an enqueue works in
	hpSlots        // total slots per record
)

// Handle is a per-thread context for queue operations. Each worker thread
// (goroutine) must use its own Handle; a Handle must never be used
// concurrently. Handles carry the thread's hazard-pointer record, its
// cluster identity for the hierarchical variant, and the instrumentation
// counters for Tables 2 and 3.
type Handle struct {
	// C accumulates this thread's operation statistics. Reading it is only
	// meaningful while the handle is quiescent.
	C instrument.Counters

	// Cluster is the thread's cluster (processor package) id, used by the
	// LCRQ+H variant. The harness assigns it from the placement policy;
	// standalone users can leave it 0.
	Cluster int64

	hp       *hazard.Record[CRQ] // non-nil in ReclaimHazard mode
	ep       *epoch.Record[CRQ]  // non-nil in ReclaimEpoch mode
	owner    *LCRQ
	released bool
}

// Release returns the handle's reclamation record to its queue's domain.
// The handle must not be used afterwards. Releasing a handle twice panics:
// the second release would hand the same reclamation record to two future
// handles, silently corrupting the hazard/epoch domain's record pool.
func (h *Handle) Release() {
	if h.released {
		panic("core: Handle released twice; a released handle must not be reused")
	}
	h.released = true
	if h.hp != nil {
		h.hp.Release()
		h.hp = nil
	}
	if h.ep != nil {
		h.ep.Release()
		h.ep = nil
	}
	h.owner = nil
}

// NewHandle returns a detached handle suitable for standalone CRQ use and
// for tests. Handles used with an LCRQ must come from (*LCRQ).NewHandle.
func NewHandle() *Handle { return &Handle{} }
