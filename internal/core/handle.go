package core

import (
	"runtime"

	"lcrq/internal/contention"
	"lcrq/internal/epoch"
	"lcrq/internal/hazard"
	"lcrq/internal/instrument"
)

// Hazard-pointer slot assignments within a handle.
const (
	hpHead  = iota // protects the CRQ a dequeue works in
	hpTail         // protects the CRQ an enqueue works in
	hpSlots        // total slots per record
)

// Handle is a per-thread context for queue operations. Each worker thread
// (goroutine) must use its own Handle; a Handle must never be used
// concurrently. Handles carry the thread's hazard-pointer record, its
// cluster identity for the hierarchical variant, and the instrumentation
// counters for Tables 2 and 3.
type Handle struct {
	// C accumulates this thread's operation statistics. Reading it is only
	// meaningful while the handle is quiescent.
	C instrument.Counters

	// Cluster is the thread's cluster (processor package) id, used by the
	// LCRQ+H variant. The harness assigns it from the placement policy;
	// standalone users can leave it 0.
	Cluster int64

	// Ctl is the adaptive contention controller (Config.AdaptiveContention):
	// single-writer state owned by the handle's goroutine exactly like C, so
	// it lives on the handle's private memory and its fast-path methods use
	// no atomics. Initialized by the queue even on fixed-constant queues —
	// its jitter source serves the wait-backoff herd dispersion regardless
	// of whether adaptation is armed.
	Ctl contention.Controller

	hp       *hazard.Record[CRQ] // non-nil in ReclaimHazard mode
	ep       *epoch.Record[CRQ]  // non-nil in ReclaimEpoch mode
	owner    *LCRQ
	guard    *recoveryGuard // orphan-recovery finalizer anchor; nil in GC mode
	released bool

	// Item-trace state (see trace.go). All single-writer, owned by the
	// handle's goroutine like C; the dequeue-side hit buffer is fixed-size so
	// recording a hit never allocates on the hot path.
	traceSampleN   int    // sampling stride copied from Config (0 = no self-arming)
	traceCountdown int    // enqueues until the next sampled arm
	traceRand      uint64 // xorshift64 state: trace IDs + countdown phase
	traceArmed     bool   // the next deposited value gets a stamp
	traceForced    bool   // armed by ForceTrace rather than the sampler
	traceID        uint64 // the ID to stamp while armed
	lastEnqTraced  bool   // the most recent enqueue op deposited a stamp
	lastEnqID      uint64
	traceHits      int // stamped items claimed by the most recent dequeue op
	traceHitBuf    [traceBatchMax]TraceHit
}

// recoveryGuard recovers the reclamation record of a handle that is leaked
// instead of Released: a goroutine that exits (or panics away) without
// Release would otherwise leave a hazard record permanently active — or,
// worse, an epoch record permanently pinned, freezing reclamation for the
// whole queue.
//
// The guard deliberately holds the record and queue pointers itself rather
// than the Handle: a finalizer's closure is a GC root, so a finalizer that
// referenced the Handle would keep the Handle reachable forever and never
// run. The guard is only reachable *from* the Handle, so once the Handle is
// garbage the guard's finalizer fires and returns the record. Release
// disarms the finalizer first, making the orderly path free of it.
type recoveryGuard struct {
	hp *hazard.Record[CRQ]
	ep *epoch.Record[CRQ]
	q  *LCRQ
}

// recover is the guard's finalizer: return the orphaned record and account
// the leak. The record cannot be in concurrent use — the finalizer only
// runs once the owning Handle is unreachable, and Handles are
// single-threaded by contract.
func (g *recoveryGuard) recover() {
	if g.ep != nil {
		// A leaked handle may have died pinned (goroutine killed by panic
		// between Pin and Unpin is impossible — exit() is deferred — but a
		// handle abandoned mid-API-misuse may be). Unpin before Release so
		// the record pool never receives a pinned record.
		if g.ep.Pinned() {
			g.ep.Unpin()
		}
		g.ep.Release()
	}
	if g.hp != nil {
		g.hp.Release()
	}
	g.q.orphans.Add(1)
	g.q.tap(EvOrphanRecover)
}

// armRecovery attaches the orphan-recovery finalizer to h.
func (h *Handle) armRecovery(q *LCRQ) {
	g := &recoveryGuard{hp: h.hp, ep: h.ep, q: q}
	h.guard = g
	runtime.SetFinalizer(g, (*recoveryGuard).recover)
}

// Release returns the handle's reclamation record to its queue's domain.
// The handle must not be used afterwards. Releasing a handle twice panics:
// the second release would hand the same reclamation record to two future
// handles, silently corrupting the hazard/epoch domain's record pool.
func (h *Handle) Release() {
	if h.released {
		panic("core: Handle released twice; a released handle must not be reused")
	}
	h.released = true
	if h.guard != nil {
		runtime.SetFinalizer(h.guard, nil)
		h.guard = nil
	}
	if h.hp != nil {
		h.hp.Release()
		h.hp = nil
	}
	if h.ep != nil {
		h.ep.Release()
		h.ep = nil
	}
	h.owner = nil
}

// NewHandle returns a detached handle suitable for standalone CRQ use and
// for tests. Handles used with an LCRQ must come from (*LCRQ).NewHandle.
func NewHandle() *Handle {
	h := &Handle{}
	h.Ctl.Init(false, 0, 0, 0, nil)
	return h
}

// initContention seeds the handle's contention controller from the queue's
// configuration. Called for every handle the queue issues, enabled or not:
// the controller's RNG also drives the wait-backoff jitter, which fixed-
// constant queues want too.
func (h *Handle) initContention(q *LCRQ) {
	h.Ctl.Init(q.cfg.AdaptiveContention, q.cfg.AdaptSpinMin, q.cfg.AdaptSpinMax,
		q.cfg.AdaptDecay, q.shared)
}

// adaptFail is the cell-retry hook of the adaptive controller: raise the
// MIAD backoff level and burn the returned jittered pause before the next
// attempt. Callers gate on Config.AdaptiveContention so the disabled path
// stays branch-identical to the pre-adaptive code.
//
//lcrq:hotpath
func (h *Handle) adaptFail() {
	n, raised := h.Ctl.Fail()
	if raised {
		h.C.AdaptRaises++
	}
	if n > 0 {
		h.C.AdaptSpins += uint64(n)
		contention.Pause(n)
	}
}

// adaptOK is the success hook: additively decay the backoff level.
//
//lcrq:hotpath
func (h *Handle) adaptOK() {
	if h.Ctl.Success() {
		h.C.AdaptDecays++
	}
}
