package core

import (
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCloseStopsEnqueuesAndDrains covers the core drain contract: values
// enqueued before Close come out in FIFO order afterwards, enqueues after
// Close fail, and the drained queue reports empty forever.
func TestCloseStopsEnqueuesAndDrains(t *testing.T) {
	for _, order := range []int{1, 3} {
		q := NewLCRQ(Config{RingOrder: order})
		h := q.NewHandle()
		defer h.Release()
		const n = 50 // spans many rings at order 1 (R=2)
		for i := uint64(0); i < n; i++ {
			if !q.Enqueue(h, i+1) {
				t.Fatalf("order %d: enqueue %d rejected before close", order, i)
			}
		}
		if q.Closed() {
			t.Fatalf("order %d: queue closed before Close", order)
		}
		q.Close(h)
		q.Close(h) // idempotent
		if !q.Closed() {
			t.Fatalf("order %d: Closed() false after Close", order)
		}
		if q.Enqueue(h, 999) {
			t.Fatalf("order %d: enqueue accepted after close", order)
		}
		for i := uint64(0); i < n; i++ {
			v, ok := q.Dequeue(h)
			if !ok || v != i+1 {
				t.Fatalf("order %d: drain[%d] = (%d,%v), want (%d,true)", order, i, v, ok, i+1)
			}
		}
		if v, ok := q.Dequeue(h); ok {
			t.Fatalf("order %d: drained queue returned %d", order, v)
		}
	}
}

// TestCloseConcurrent closes the queue while producers are appending across
// tiny rings and checks conservation: every accepted enqueue is dequeued
// exactly once, in per-producer FIFO order, and nothing is invented.
func TestCloseConcurrent(t *testing.T) {
	const (
		producers = 4
		perProd   = 512
		closeAt   = 64 // accepted enqueues before the plug is pulled
	)
	q := NewLCRQ(Config{RingOrder: 1, StarvationLimit: 4})
	accepted := make([]uint64, producers)
	var total atomic.Uint64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			<-start
			for i := 0; i < perProd; i++ {
				if !q.Enqueue(h, uint64(p)<<32|uint64(i)+1) {
					return // queue closed
				}
				accepted[p]++
				total.Add(1)
			}
		}(p)
	}
	closer := q.NewHandle()
	defer closer.Release()
	close(start)
	// Wait until producers have made progress, then pull the plug. They
	// only stop on close, so total always reaches closeAt.
	for total.Load() < closeAt {
		runtime.Gosched()
	}
	q.Close(closer)
	wg.Wait()
	// Drain everything left and verify conservation per producer.
	consumed := map[int][]uint64{}
	h := q.NewHandle()
	defer h.Release()
	for {
		v, ok := q.Dequeue(h)
		if !ok {
			break
		}
		p := int(v >> 32)
		consumed[p] = append(consumed[p], v&0xffffffff)
	}
	if q.Enqueue(h, 1) {
		t.Fatal("enqueue accepted after close and drain")
	}
	for p := 0; p < producers; p++ {
		if uint64(len(consumed[p])) != accepted[p] {
			t.Fatalf("producer %d: accepted %d items, consumed %d", p, accepted[p], len(consumed[p]))
		}
		for i, v := range consumed[p] {
			if v != uint64(i)+1 {
				t.Fatalf("producer %d: consumed[%d] = %d, want %d (FIFO violation or duplicate)", p, i, v, i+1)
			}
		}
	}
}

// TestHandleDoubleReleasePanics is the regression test for the double
// release guard: the second Release must panic loudly instead of returning
// the same reclamation record to the domain twice.
func TestHandleDoubleReleasePanics(t *testing.T) {
	for _, mode := range []Reclamation{ReclaimHazard, ReclaimEpoch, ReclaimGC} {
		q := NewLCRQ(Config{Reclamation: mode})
		h := q.NewHandle()
		h.Release()
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%v: second Release did not panic", mode)
				}
				msg, ok := r.(string)
				if !ok || !strings.Contains(msg, "released twice") {
					t.Fatalf("%v: panic %v lacks a clear double-release message", mode, r)
				}
			}()
			h.Release()
		}()
	}
}
