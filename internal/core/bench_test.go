package core

import (
	"sync/atomic"
	"testing"
)

func BenchmarkCRQSequential(b *testing.B) {
	q := NewCRQ(Config{RingOrder: 16})
	h := NewHandle()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !q.Enqueue(h, uint64(i)+1) {
			b.Fatal("ring closed")
		}
		q.Dequeue(h)
	}
}

func BenchmarkLCRQSequential(b *testing.B) {
	q := NewLCRQ(Config{})
	h := q.NewHandle()
	defer h.Release()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(h, uint64(i)+1)
		q.Dequeue(h)
	}
}

func BenchmarkLCRQParallel(b *testing.B) {
	q := NewLCRQ(Config{})
	var ids atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		h := q.NewHandle()
		defer h.Release()
		v := ids.Add(1) << 32
		for pb.Next() {
			v++
			q.Enqueue(h, v)
			q.Dequeue(h)
		}
	})
}

// BenchmarkLCRQSegmentChurn measures the append/retire/recycle path with a
// tiny ring that closes constantly.
func BenchmarkLCRQSegmentChurn(b *testing.B) {
	q := NewLCRQ(Config{RingOrder: 2})
	h := q.NewHandle()
	defer h.Release()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := uint64(0); j < 8; j++ {
			q.Enqueue(h, uint64(i)*8+j+1)
		}
		for j := 0; j < 8; j++ {
			q.Dequeue(h)
		}
	}
}

func BenchmarkIAQSequential(b *testing.B) {
	q := NewIAQ(b.N + 1)
	h := NewHandle()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Enqueue(h, uint64(i)+1)
		q.Dequeue(h)
	}
}
