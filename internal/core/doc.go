// Package core implements the paper's primary contribution: the CRQ
// (concurrent ring queue) and LCRQ (linked list of CRQs) algorithms of
//
//	Adam Morrison and Yehuda Afek. Fast Concurrent Queues for x86
//	Processors. PPoPP 2013.
//
// including the December 2013 author revision's corrections (the fixed
// Figure 3 pseudocode and the lost-item fix in Figure 5, lines 146-147).
//
// # Algorithm recap
//
// A CRQ is a ring of R cells indexed by ever-increasing 64-bit head and
// tail counters; index i addresses cell i mod R. Enqueuers and dequeuers
// obtain indices with fetch-and-add — which always succeeds, so contention
// on head and tail costs only cache-coherence traffic, never wasted retries
// — and then synchronize on the addressed cell with a double-width CAS
// (CAS2). A cell is a logical triple (safe bit, index, value); the protocol
// has four transitions:
//
//   - enqueue:  (s, k, ⊥) → (1, t, v)  for k ≤ t, provided s=1 or head ≤ t
//   - dequeue:  (s, h, v) → (s, h+R, ⊥) by the dequeuer whose F&A returned
//     exactly h
//   - empty:    (s, k, ⊥) → (s, h+R, ⊥) for k ≤ h — the dequeuer arrived
//     before the matching enqueuer and poisons the cell against it
//   - unsafe:   (s, k, v) → (0, k, v) for k < h — the dequeuer arrived a
//     whole lap early; the cell cannot be dequeued by it, so it is marked
//     unsafe to stop enqueuer lap k' > k from parking a value nobody will
//     collect
//
// A CRQ is a *tantrum queue*: an enqueue that cannot make progress (the
// ring is full, or the enqueuer keeps being outrun) closes the ring and
// returns CLOSED forever after. LCRQ turns tantrum queues into an unbounded
// nonblocking FIFO queue by chaining them: an enqueuer that receives CLOSED
// appends a fresh CRQ seeded with its item; dequeuers drain a CRQ and move
// to its successor.
//
// # Cell encoding
//
// CAS2 is provided by internal/atomic128 (LOCK CMPXCHG16B on amd64). The
// 128-bit cell packs the triple as:
//
//	lo word: bit 63 = "unsafe" flag (0 means safe), bits 0..62 = index
//	hi word: bitwise complement of the value; ⊥ is encoded as physical 0
//
// Two deliberate inversions — the safe bit is stored inverted and values
// are stored complemented — make the all-zero cell equal to the logical
// initial state (safe, index 0, ⊥). Fresh rings are therefore ready
// straight out of make (the Go allocator zeroes), and recycled rings are
// reinitialized with a single memclr. Starting every cell at index 0
// instead of the paper's u is sound because the index only ever acts as a
// lower bound ("has an operation with a larger index already been here?"),
// and 0 is the universal lower bound; exact-match checks (the dequeue
// transition) compare against indices that only an enqueue transition can
// have installed.
//
// The complemented-value trick reserves exactly one value, ^uint64(0), as
// ⊥; the public API enforces that restriction and offers a typed facade for
// arbitrary values.
//
// # Variants
//
// The package also implements the paper's evaluation variants: LCRQ-CAS
// (fetch-and-add emulated by a CAS loop, Config.CASLoopFAA) and LCRQ+H (the
// hierarchical cluster-batching optimization of §4.1.1, Config.Hierarchical)
// — plus the idealized infinite-array queue of Figure 2 for exposition and
// differential testing.
package core
