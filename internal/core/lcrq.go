package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lcrq/internal/chaos"
	"lcrq/internal/contention"
	"lcrq/internal/epoch"
	"lcrq/internal/hazard"
	"lcrq/internal/pad"
)

// LCRQ is the unbounded nonblocking FIFO queue of Figure 5: a Michael-Scott
// style linked list whose nodes are CRQs. Dequeuers work in the head CRQ
// and enqueuers in the tail CRQ; an enqueuer that finds the tail CRQ closed
// appends a new CRQ seeded with its item.
//
// All operations require a *Handle obtained from NewHandle; a handle is
// single-threaded state (hazard pointers, counters, cluster identity).
//
// The padcheck analyzer verifies the layout: head, tail, and the bounded-
// mode items account are written on the operation path and own private
// false-sharing ranges; the remaining atomics are slow-path gauges,
// annotated //lcrq:cold, which may share lines with each other.
//
//lcrq:padded
//lcrq:publish
type LCRQ struct {
	head atomic.Pointer[CRQ]
	_    pad.Line
	tail atomic.Pointer[CRQ]
	_    pad.Line

	// items is the exact number of accepted, not-yet-dequeued values on a
	// bounded queue (cfg.Capacity > 0): one atomic add per enqueue AND per
	// dequeue, by every thread — as hot as head and tail, so it gets the
	// same private false-sharing range (found by padcheck: it previously
	// shared a cache line with the slow-path gauges below, so every
	// bounded-mode operation invalidated the line telemetry scrapes read).
	items atomic.Int64
	_     pad.Line

	cfg Config
	// traced caches cfg.TraceSampleN != 0 so the operation paths gate the
	// per-op trace bookkeeping on one read-only bool. Set once in NewLCRQ.
	traced bool
	dom    *hazard.Domain[CRQ]
	edom   *epoch.Domain[CRQ]
	pool   sync.Pool // recycled *CRQ rings (nil Reclaim when NoRecycle)

	// shared is the queue-wide half of the adaptive contention controller
	// (nil unless cfg.AdaptiveContention): the watchdog's remediation boost,
	// read by every handle's StarveLimit. The pointer itself is read-only
	// after NewLCRQ; the Shared struct keeps its hot word on a private line.
	shared *contention.Shared

	// closed is set by Close. It lives off the hot cache lines: enqueuers
	// only consult it on the ring-closed slow path, so an open queue never
	// pays for the close feature.
	closed atomic.Bool //lcrq:cold

	// Telemetry gauges, touched only on the append/retire/recycle slow
	// paths (never per operation): rings counts the segments currently
	// linked in the list; recPuts/recGets count recycler round-trips, whose
	// difference approximates the pool's population (the GC may drain
	// sync.Pool entries, so it is an upper bound).
	rings   atomic.Int64  //lcrq:cold
	recPuts atomic.Uint64 //lcrq:cold
	recGets atomic.Uint64 //lcrq:cold

	// Bounded-mode rejection accounting: rejects counts capacity
	// rejections; full tracks whether the queue is in a "full episode" so
	// the Tap sees one EvCapacityReject per episode rather than one per
	// rejected poll. Both are written only on the rejection slow path.
	rejects atomic.Uint64 //lcrq:cold
	full    atomic.Bool   //lcrq:cold

	// orphans counts handles recovered by the leak finalizer (see
	// recoveryGuard); stalls are counted by the epoch domain.
	orphans atomic.Uint64 //lcrq:cold
}

// NewLCRQ returns an empty queue configured by cfg.
func NewLCRQ(cfg Config) *LCRQ {
	cfg = cfg.normalized()
	q := &LCRQ{cfg: cfg, traced: cfg.TraceSampleN != 0}
	if cfg.AdaptiveContention {
		q.shared = contention.NewShared(cfg.AdaptBoostMax)
	}
	switch cfg.Reclamation {
	case ReclaimHazard:
		q.dom = hazard.New[CRQ](hpSlots)
		if cfg.ReclamationBatch > 0 {
			q.dom.SetScanThreshold(cfg.ReclamationBatch)
		}
	case ReclaimEpoch:
		q.edom = epoch.New[CRQ]()
		if cfg.StallAge > 0 {
			q.edom.SetStallPolicy(cfg.StallAge, func() { q.tap(EvEpochStall) })
		}
	}
	first := NewCRQ(cfg)
	q.head.Store(first)
	q.tail.Store(first)
	q.rings.Store(1)
	return q
}

// tap delivers a ring-lifecycle event to the configured Tap, if any. All
// call sites are slow paths.
func (q *LCRQ) tap(ev RingEvent) {
	if q.cfg.Tap != nil {
		q.cfg.Tap.RingEvent(ev)
	}
}

// Config returns the queue's normalized configuration.
func (q *LCRQ) Config() Config { return q.cfg }

// NewHandle returns a per-thread handle bound to this queue. The caller
// must Release it when the thread stops using the queue; a handle that is
// leaked instead (its goroutine exits without Release) has its reclamation
// record recovered by a finalizer so it cannot freeze recycling forever
// (see recoveryGuard).
func (q *LCRQ) NewHandle() *Handle {
	var h *Handle
	switch q.cfg.Reclamation {
	case ReclaimEpoch:
		h = &Handle{ep: q.edom.Acquire(), owner: q}
	case ReclaimGC:
		h = &Handle{owner: q} // no reclamation record: nothing to leak
		h.initTrace(q.cfg)
		h.initContention(q)
		return h
	default:
		h = &Handle{hp: q.dom.Acquire(), owner: q}
	}
	h.initTrace(q.cfg)
	h.initContention(q)
	h.armRecovery(q)
	return h
}

// enter begins an operation's reclamation-protected region; the returned
// function ends it. Only the epoch scheme needs region brackets; hazard
// pointers protect per-pointer and GC mode needs nothing.
func (h *Handle) enter() {
	if h.ep != nil {
		h.ep.Pin()
	}
}

func (h *Handle) exit() {
	if h.ep != nil {
		h.ep.Unpin()
	}
}

// protect pins the CRQ currently referenced by src. In epoch mode the
// operation-wide pin already protects everything reachable, and in GC mode
// the garbage collector does, so a plain load suffices for both; only
// hazard mode needs the publish-and-revalidate dance.
//
// A handle with neither record on a queue that runs a reclamation scheme is
// a detached core.NewHandle() being misused: its operations would silently
// run unprotected, letting rings be recycled under it. That is a
// use-after-recycle waiting to corrupt the queue, so it fails fast here —
// the check costs nothing in the default hazard mode (the h.hp == nil
// branch is not taken) and two nil checks in GC mode.
func (q *LCRQ) protect(h *Handle, slot int, src *atomic.Pointer[CRQ]) *CRQ {
	if h.hp == nil {
		if h.ep == nil && q.cfg.Reclamation != ReclaimGC {
			panic("core: detached NewHandle() used with a hazard/epoch-mode LCRQ; obtain handles from (*LCRQ).NewHandle")
		}
		return src.Load()
	}
	return h.hp.ProtectPtr(slot, src)
}

func (q *LCRQ) unprotect(h *Handle, slot int) {
	if h.hp != nil {
		h.hp.Clear(slot)
	}
}

// newRing produces a CRQ seeded with v, recycling a retired ring when
// possible. recycled reports which source served the request, so the caller
// can attribute the ring once it is actually published.
func (q *LCRQ) newRing(h *Handle, v uint64) (r *CRQ, recycled bool) {
	if !q.cfg.NoRecycle {
		if r, ok := q.pool.Get().(*CRQ); ok && r != nil {
			q.recGets.Add(1)
			r.reset()
			r.seed(v)
			if h.traceArmed && r.stamps != nil {
				r.stampTrace(h, 0) // the seeded value sits at index 0
			}
			h.C.Recycled++
			return r, true
		}
	}
	r = NewCRQ(q.cfg)
	r.seed(v)
	if h.traceArmed && r.stamps != nil {
		r.stampTrace(h, 0)
	}
	return r, false
}

// releaseRing returns a ring that was never published (a lost append race)
// straight to the pool.
func (q *LCRQ) releaseRing(r *CRQ) {
	if q.cfg.NoRecycle {
		return
	}
	q.recPuts.Add(1)
	q.pool.Put(r)
}

// retireRing schedules an unlinked ring for reuse once the reclamation
// scheme proves no thread can still access it. In GC mode the garbage
// collector is the reclaimer and there is nothing to do.
func (q *LCRQ) retireRing(h *Handle, r *CRQ) {
	q.rings.Add(-1)
	// Unlinking a ring frees ring budget: on a ring-bounded queue that ends
	// a full episode just as a dequeue's freed item budget does (see
	// releaseItems), so the next rejection taps EvCapacityReject again.
	if q.cfg.MaxRings > 0 && q.full.Load() {
		q.full.Store(false)
	}
	q.tap(EvRingRetire)
	var reclaim func(*CRQ)
	if !q.cfg.NoRecycle {
		reclaim = func(old *CRQ) {
			q.recPuts.Add(1)
			q.pool.Put(old)
		}
	}
	switch {
	case h.hp != nil:
		h.hp.Retire(r, reclaim)
	case h.ep != nil:
		h.ep.Retire(r, reclaim)
	}
}

// LiveRings returns the number of ring segments currently linked in the
// queue's list (a just-retired ring is counted out as soon as it is
// unlinked, before reclamation completes).
func (q *LCRQ) LiveRings() int64 { return q.rings.Load() }

// RecyclerSize returns an approximation of the recycler pool's population:
// puts minus successful gets. The garbage collector may drain pooled rings
// at any time, so the true population is at most this value.
func (q *LCRQ) RecyclerSize() int64 {
	n := int64(q.recPuts.Load()) - int64(q.recGets.Load())
	if n < 0 {
		n = 0
	}
	return n
}

// depthWalkLimit bounds the Depth chain walk. Under hazard-pointer
// reclamation only the head ring is protected, so a concurrent recycle can
// splice a walked ring elsewhere; the bound keeps the (approximate) walk
// from chasing such a transient cycle.
const depthWalkLimit = 1024

// Depth returns an approximation of the number of queued items — the sum of
// the per-ring tail−head index deltas, each clamped to the ring capacity —
// together with the number of rings visited. The value is exact only when
// the queue is quiescent: concurrent operations move the indices while the
// walk reads them, and rings past the protected head may be recycled
// mid-walk. Cost is one atomic load pair per ring; nothing on the op path.
func (q *LCRQ) Depth(h *Handle) (depth int64, rings int) {
	h.enter()
	defer h.exit()
	crq := q.protect(h, hpHead, &q.head)
	defer q.unprotect(h, hpHead)
	for crq != nil && rings < depthWalkLimit {
		t := crq.tail.Load() &^ closedBit
		hd := crq.head.Load()
		if t > hd {
			d := int64(t - hd)
			if d > int64(crq.size) {
				d = int64(crq.size)
			}
			depth += d
		}
		rings++
		crq = crq.next.Load()
	}
	return depth, rings
}

// EnqStatus is the outcome of a bounded-aware enqueue attempt.
type EnqStatus uint8

const (
	// EnqOK: the value was appended.
	EnqOK EnqStatus = iota
	// EnqFull: a bounded queue rejected the value for lack of item or ring
	// budget. The value was not enqueued; the caller may retry (the public
	// EnqueueWait does, with bounded backoff).
	EnqFull
	// EnqClosed: the queue has been closed to new enqueues.
	EnqClosed
)

// Enqueue appends v to the queue and reports whether it was accepted. On an
// unbounded queue it returns false only after Close; on a bounded queue a
// capacity rejection also reports false (use EnqueueStatus to distinguish).
// v must not be Bottom (use the public typed facade for unrestricted
// values).
func (q *LCRQ) Enqueue(h *Handle, v uint64) bool {
	return q.EnqueueStatus(h, v) == EnqOK
}

// EnqueueStatus appends v to the queue, reporting exactly why when it
// cannot: EnqClosed after Close, EnqFull when the configured item or ring
// budget is exhausted. v must not be Bottom.
//
// Bounded mode reserves budget first (one atomic add on the exact item
// account), so the number of accepted-but-not-dequeued items can never
// exceed Capacity, even transiently. The ring budget is enforced on the
// append slow path: an enqueuer that would have to link a segment past
// MaxRings backs out instead, which keeps the chain's length — and thus the
// queue's memory — bounded no matter how far a consumer has stalled.
// Dequeuers are never gated, so the queue's op-wise nonblocking progress is
// unchanged: some dequeue always completes in a bounded number of its own
// steps, and every rejected enqueue completes (with EnqFull) immediately.
//
//lcrq:hotpath
func (q *LCRQ) EnqueueStatus(h *Handle, v uint64) EnqStatus {
	if v == Bottom {
		panic("core: enqueue of reserved value Bottom")
	}
	if q.traced {
		h.resetEnqTrace()
		h.maybeArmTrace(1)
	}
	if cap := q.cfg.Capacity; cap > 0 {
		if q.items.Add(1) > cap {
			q.items.Add(-1)
			// Closed wins over full: a producer parked at the capacity gate
			// (EnqueueWait) must observe Close even when no slot ever frees.
			if q.closed.Load() {
				return EnqClosed
			}
			q.reject()
			return EnqFull
		}
	}
	st := q.enqueue(h, v)
	if st != EnqOK && q.cfg.Capacity > 0 {
		q.items.Add(-1) // hand the reservation back
	}
	switch {
	case st == EnqFull:
		q.reject()
	case st == EnqOK && q.cfg.Bounded():
		// A success ends any full episode; the next rejection re-arms the
		// EvCapacityReject tap. Gating on Bounded() (not MaxRings alone)
		// keeps the reset alive for any bounded configuration regardless of
		// how normalization derives the ring budget. Plain load first so the
		// steady non-full state costs one read, not a store.
		if q.full.Load() {
			q.full.Store(false)
		}
	}
	return st
}

// EnqueueBatch appends the values of vs, in order, amortizing the hot-line
// tail F&A over the whole batch (see CRQ.EnqueueBatch) and spilling across
// ring segments as rings close. It returns how many values were accepted —
// always a prefix of vs — and the status of the remainder: EnqOK means the
// whole batch landed, EnqFull that a bounded queue ran out of item or ring
// budget after accepting n values, EnqClosed that the queue was closed.
// Values must not be Bottom.
//
// Bounded mode reserves the batch's budget with one atomic add and refunds
// the part the gate or the ring protocol did not use, so — exactly as with
// the single-op reserve-then-publish — the number of accepted-but-not-
// dequeued items never exceeds Capacity. Linearizability is per item: each
// reserved ring index is an independent cell transaction, so a batch of k
// values linearizes as k consecutive single enqueues by the same thread.
//
//lcrq:hotpath
func (q *LCRQ) EnqueueBatch(h *Handle, vs []uint64) (int, EnqStatus) {
	if len(vs) == 0 {
		if q.closed.Load() {
			return 0, EnqClosed
		}
		return 0, EnqOK
	}
	h.C.BatchEnqueues++
	if q.traced {
		h.resetEnqTrace()
		h.maybeArmTrace(len(vs))
	}
	allowed := len(vs)
	if cap := q.cfg.Capacity; cap > 0 {
		got := q.items.Add(int64(len(vs)))
		if over := got - cap; over > 0 {
			if over > int64(len(vs)) {
				over = int64(len(vs))
			}
			q.items.Add(-over) // refund the part the gate rejected
			allowed = len(vs) - int(over)
			if allowed == 0 {
				// Closed wins over full, as in EnqueueStatus.
				if q.closed.Load() {
					return 0, EnqClosed
				}
				q.reject()
				return 0, EnqFull
			}
		}
	}
	n, st := q.enqueueBatch(h, vs[:allowed])
	if q.cfg.Capacity > 0 && n < allowed {
		q.items.Add(int64(n - allowed)) // hand back the unused reservation
	}
	if n == len(vs) {
		// The whole batch landed: a success ends any full episode, exactly
		// as in EnqueueStatus.
		if q.cfg.Bounded() && q.full.Load() {
			q.full.Store(false)
		}
		return n, EnqOK
	}
	if st == EnqOK {
		// The ring protocol took everything the capacity gate allowed; the
		// truncation itself is the rejection.
		if q.closed.Load() {
			return n, EnqClosed
		}
		st = EnqFull
	}
	if st == EnqFull {
		q.reject()
	}
	return n, st
}

// enqueueBatch runs the ring protocol for a budget-approved batch: the loop
// of enqueue (Figure 5c) at batch granularity, spilling the remainder into a
// freshly appended ring whenever the tail ring closes under the batch.
//
//lcrq:hotpath
func (q *LCRQ) enqueueBatch(h *Handle, vs []uint64) (int, EnqStatus) {
	h.enter()
	defer h.exit()
	accepted := 0
	for {
		crq := q.protect(h, hpTail, &q.tail)
		if next := crq.next.Load(); next != nil {
			// Help a stalled appender swing the tail.
			h.C.CAS++
			if !q.tail.CompareAndSwap(crq, next) {
				h.C.CASFail++
			}
			continue
		}
		if q.cfg.Hierarchical {
			q.clusterGate(h, crq)
		}
		n, closed := crq.EnqueueBatch(h, vs)
		h.C.Enqueues += uint64(n)
		accepted += n
		vs = vs[n:]
		if len(vs) == 0 {
			q.unprotect(h, hpTail)
			return accepted, EnqOK
		}
		if !closed {
			// The ring clamped the reservation (batch longer than the ring):
			// keep going on the same ring with a fresh reservation.
			continue
		}
		if q.closed.Load() {
			q.unprotect(h, hpTail)
			return accepted, EnqClosed
		}
		if max := q.cfg.MaxRings; max > 0 && q.rings.Load() >= int64(max) {
			q.unprotect(h, hpTail)
			return accepted, EnqFull
		}
		// Spill: append a new ring seeded with the batch's next value; the
		// rest of the batch lands there on the following iteration.
		newcrq, recycled := q.newRing(h, vs[0])
		h.C.CAS++
		if crq.next.CompareAndSwap(nil, newcrq) {
			q.rings.Add(1)
			q.tap(EvRingAppend)
			if recycled {
				q.tap(EvRingRecycle)
			}
			chaos.Delay(chaos.Handoff)
			h.C.CAS++
			if !q.tail.CompareAndSwap(crq, newcrq) {
				h.C.CASFail++
			}
			h.C.Appends++
			h.C.Enqueues++
			h.C.BatchSpill++
			if h.traceArmed {
				h.completeEnqTrace() // the seeded value carried the stamp
			}
			accepted++
			vs = vs[1:]
			// Same post-publication close re-check as enqueue.
			if q.closed.Load() {
				newcrq.closeRing(h, EvRingClose)
			}
			if len(vs) == 0 {
				q.unprotect(h, hpTail)
				return accepted, EnqOK
			}
			continue
		}
		h.C.CASFail++
		q.releaseRing(newcrq) // lost the race; ring was never visible
	}
}

// reject accounts a capacity rejection: the exact counter always, the Tap
// event once per full episode (see LCRQ.full).
func (q *LCRQ) reject() {
	q.rejects.Add(1)
	chaos.Delay(chaos.CapacityGate)
	if !q.full.Load() && q.full.CompareAndSwap(false, true) {
		q.tap(EvCapacityReject)
	}
}

// releaseItem returns one unit of item budget after a successful dequeue.
func (q *LCRQ) releaseItem() { q.releaseItems(1) }

// releaseItems returns n units of item budget after successful dequeues
// and, on any bounded queue, ends a running full episode: budget freed by
// consumers must re-arm the EvCapacityReject tap even if no producer
// succeeds in between (a producer-side-only reset would leave a drained
// queue reporting a stale full episode until the next successful enqueue).
// The plain load keeps the steady non-full state at one read.
func (q *LCRQ) releaseItems(n int64) {
	if q.cfg.Capacity > 0 {
		q.items.Add(-n)
	}
	if q.cfg.Bounded() && q.full.Load() {
		q.full.Store(false)
	}
}

// FullEpisode reports whether a bounded queue is currently inside a full
// episode: a rejection has fired EvCapacityReject and nothing has ended the
// episode yet — neither a successful enqueue nor freed budget (a dequeue
// returning item budget, or a ring retirement returning ring budget).
// Always false on an unbounded queue.
func (q *LCRQ) FullEpisode() bool { return q.full.Load() }

// Items returns the exact number of accepted, not-yet-dequeued values on a
// capacity-bounded queue, and 0 on an unbounded one (which keeps no item
// account; use Depth for an approximation there).
func (q *LCRQ) Items() int64 { return q.items.Load() }

// Capacity returns the configured item bound (0 when unbounded).
func (q *LCRQ) Capacity() int64 { return q.cfg.Capacity }

// MaxRings returns the configured ring budget (0 when unbounded).
func (q *LCRQ) MaxRings() int { return q.cfg.MaxRings }

// CapacityRejects returns how many enqueue attempts a bounded queue has
// rejected.
func (q *LCRQ) CapacityRejects() uint64 { return q.rejects.Load() }

// Adaptive reports whether the adaptive contention controller is armed
// (Config.AdaptiveContention).
func (q *LCRQ) Adaptive() bool { return q.shared != nil }

// ContentionBoost returns the watchdog remediation boost currently applied
// to every handle's starvation threshold (a left-shift amount; 0 when the
// controller is disabled or unboosted).
func (q *LCRQ) ContentionBoost() uint64 {
	if q.shared == nil {
		return 0
	}
	return q.shared.Boost()
}

// ContentionRaises returns how many times remediation raised the boost.
func (q *LCRQ) ContentionRaises() uint64 {
	if q.shared == nil {
		return 0
	}
	return q.shared.Raises()
}

// ContentionDecays returns how many times remediation decayed the boost.
func (q *LCRQ) ContentionDecays() uint64 {
	if q.shared == nil {
		return 0
	}
	return q.shared.Decays()
}

// RaiseContention raises the shared starvation boost one step (saturating at
// the configured cap), returning the new boost and whether it moved. The
// watchdog calls it on a tantrum-storm verdict; it is exported for manual
// remediation and tests. No-op (0, false) when the controller is disabled.
func (q *LCRQ) RaiseContention() (uint64, bool) {
	if q.shared == nil {
		return 0, false
	}
	return q.shared.Raise()
}

// DecayContention lowers the shared starvation boost one step (flooring at
// 0), returning the new boost and whether it moved. The watchdog calls it on
// healthy ticks so a past storm's widening does not linger forever.
func (q *LCRQ) DecayContention() (uint64, bool) {
	if q.shared == nil {
		return 0, false
	}
	return q.shared.Decay()
}

// EpochStalls returns how many stall-by-policy declarations the epoch
// domain has made (0 outside epoch mode).
func (q *LCRQ) EpochStalls() uint64 {
	if q.edom == nil {
		return 0
	}
	return q.edom.Stalls()
}

// OrphanRecoveries returns how many leaked handles (never Released) had
// their reclamation records recovered by the orphan finalizer.
func (q *LCRQ) OrphanRecoveries() uint64 { return q.orphans.Load() }

// KickReclaim forces one reclamation step outside the amortized operation
// schedule: an epoch-advance attempt in epoch mode, nothing elsewhere
// (hazard scans are already driven by retirement counts, GC mode has no
// scheme). Watchdogs call it so reclamation keeps moving when operation
// traffic — whose Unpins normally drive advancement — has stopped.
func (q *LCRQ) KickReclaim(h *Handle) {
	if h.ep != nil {
		h.ep.TryAdvance()
	}
}

// enqueue is the core protocol loop of Figure 5, extended with the queue
// close check (PR 1) and the ring budget gate (bounded mode). The
// hotpath annotation tolerates the slow-path calls (newRing, taps) —
// callees are checked under their own annotations — while pinning the
// loop itself allocation- and blocking-free.
//
//lcrq:hotpath
func (q *LCRQ) enqueue(h *Handle, v uint64) EnqStatus {
	h.enter()
	defer h.exit()
	for {
		crq := q.protect(h, hpTail, &q.tail)
		if next := crq.next.Load(); next != nil {
			// Help a stalled appender swing the tail (Figure 5c, 156-158).
			h.C.CAS++
			if !q.tail.CompareAndSwap(crq, next) {
				h.C.CASFail++
			}
			continue
		}
		if q.cfg.Hierarchical {
			q.clusterGate(h, crq)
		}
		if crq.Enqueue(h, v) {
			h.C.Enqueues++
			q.unprotect(h, hpTail)
			return EnqOK
		}
		// Tail CRQ is closed. If the queue itself has been closed, the
		// enqueue fails instead of appending a fresh ring; Close guarantees
		// every ring in the chain is (or will be) closed, so this check on
		// the append slow path is the only one the hot path needs.
		if q.closed.Load() {
			q.unprotect(h, hpTail)
			return EnqClosed
		}
		// Ring budget gate: refuse to link a segment past MaxRings. The
		// check sits in the same loop iteration as the publication CAS
		// below, and appenders serialize on that CAS (only one wins per
		// iteration, each raising rings by exactly one), so rings can never
		// exceed the budget: the winner at rings == MaxRings-1 brings the
		// chain to the budget, and every contender re-running this loop
		// afterwards is turned away here before allocating.
		if max := q.cfg.MaxRings; max > 0 && q.rings.Load() >= int64(max) {
			q.unprotect(h, hpTail)
			return EnqFull
		}
		// Append a new CRQ containing v (159-166).
		newcrq, recycled := q.newRing(h, v)
		h.C.CAS++
		if crq.next.CompareAndSwap(nil, newcrq) {
			q.rings.Add(1)
			q.tap(EvRingAppend)
			if recycled {
				q.tap(EvRingRecycle)
			}
			chaos.Delay(chaos.Handoff)
			h.C.CAS++
			if !q.tail.CompareAndSwap(crq, newcrq) {
				h.C.CASFail++
			}
			h.C.Appends++
			h.C.Enqueues++
			if h.traceArmed {
				h.completeEnqTrace() // the seeded value carried the stamp
			}
			// A Close racing with this append may have walked the chain
			// before newcrq was visible. Re-checking after the publication
			// CAS closes the race: if the flag is now set, either Close saw
			// newcrq and closed it, or we close it ourselves here. The item
			// just seeded stays and will be drained.
			if q.closed.Load() {
				newcrq.closeRing(h, EvRingClose)
			}
			q.unprotect(h, hpTail)
			return EnqOK
		}
		h.C.CASFail++
		q.releaseRing(newcrq) // lost the race; ring was never visible
	}
}

// Close permanently closes the queue to new enqueues. Enqueues that begin
// after Close returns fail (Enqueue returns false); dequeues continue to
// drain the items already in the queue and report empty afterwards.
// Operations concurrent with Close may linearize on either side of it.
// Close is idempotent and safe to call concurrently.
func (q *LCRQ) Close(h *Handle) {
	if q.closed.CompareAndSwap(false, true) {
		q.tap(EvQueueClose)
	}
	h.enter()
	defer h.exit()
	// Close every ring reachable at the chain's end. An appender that
	// published a ring before observing the closed flag re-checks the flag
	// after publication (see Enqueue), so any ring this walk misses is
	// closed by its appender; the walk and that re-check together guarantee
	// the chain ends in a closed ring with no open successor.
	for {
		crq := q.protect(h, hpTail, &q.tail)
		if next := crq.next.Load(); next != nil {
			h.C.CAS++
			if !q.tail.CompareAndSwap(crq, next) {
				h.C.CASFail++
			}
			continue
		}
		crq.closeRing(h, EvRingClose)
		if crq.next.Load() == nil {
			q.unprotect(h, hpTail)
			return
		}
	}
}

// Closed reports whether Close has been called.
func (q *LCRQ) Closed() bool { return q.closed.Load() }

// Dequeue removes and returns the oldest value. ok is false if the queue
// is empty.
//
// The retry of the head CRQ after observing a non-nil next (the second
// Dequeue call below) is the December 2013 correction: without it, an item
// enqueued into the head CRQ after its drain but before the head swing
// could be skipped, losing it.
//
//lcrq:hotpath
func (q *LCRQ) Dequeue(h *Handle) (v uint64, ok bool) {
	h.enter()
	defer h.exit()
	if q.traced {
		h.traceHits = 0
	}
	for {
		crq := q.protect(h, hpHead, &q.head)
		if q.cfg.Hierarchical {
			q.clusterGate(h, crq)
		}
		if v, ok := crq.Dequeue(h); ok {
			h.C.Dequeues++
			q.releaseItem()
			q.unprotect(h, hpHead)
			if h.traceHits != 0 {
				q.deliverTraces(h)
			}
			return v, true
		}
		if crq.next.Load() == nil {
			h.C.Dequeues++
			h.C.Empty++
			q.unprotect(h, hpHead)
			return Bottom, false
		}
		if v, ok := crq.Dequeue(h); ok {
			h.C.Dequeues++
			q.releaseItem()
			q.unprotect(h, hpHead)
			if h.traceHits != 0 {
				q.deliverTraces(h)
			}
			return v, true
		}
		chaos.Delay(chaos.Handoff)
		h.C.CAS++
		if q.head.CompareAndSwap(crq, crq.next.Load()) {
			q.retireRing(h, crq)
		} else {
			h.C.CASFail++
		}
	}
}

// DequeueBatch removes up to len(out) of the oldest values into out with one
// head F&A per ring visited (see CRQ.DequeueBatch), returning how many were
// dequeued. 0 means the queue was observed empty. A batch never crosses a
// ring boundary: once the head ring yields values the batch returns them, so
// partial fills are normal — call again for more. As with EnqueueBatch,
// linearizability is per item: a batch of k dequeues linearizes as k
// consecutive single dequeues by the same thread.
//
// The December-2013 retry of the head ring after observing a non-nil next
// is preserved verbatim from Dequeue; without it a batch could swing the
// head past an item deposited between the drain and the swing.
//
//lcrq:hotpath
func (q *LCRQ) DequeueBatch(h *Handle, out []uint64) int {
	if len(out) == 0 {
		return 0
	}
	h.C.BatchDequeues++
	h.enter()
	defer h.exit()
	if q.traced {
		h.traceHits = 0
	}
	for {
		crq := q.protect(h, hpHead, &q.head)
		if q.cfg.Hierarchical {
			q.clusterGate(h, crq)
		}
		if n := crq.DequeueBatch(h, out); n > 0 {
			h.C.Dequeues += uint64(n)
			q.releaseItems(int64(n))
			q.unprotect(h, hpHead)
			if h.traceHits != 0 {
				q.deliverTraces(h)
			}
			return n
		}
		if crq.next.Load() == nil {
			// The batch observed empty: one completed (empty) dequeue,
			// mirroring the single-op accounting.
			h.C.Dequeues++
			h.C.Empty++
			q.unprotect(h, hpHead)
			return 0
		}
		if n := crq.DequeueBatch(h, out); n > 0 {
			h.C.Dequeues += uint64(n)
			q.releaseItems(int64(n))
			q.unprotect(h, hpHead)
			if h.traceHits != 0 {
				q.deliverTraces(h)
			}
			return n
		}
		chaos.Delay(chaos.Handoff)
		h.C.CAS++
		if q.head.CompareAndSwap(crq, crq.next.Load()) {
			q.retireRing(h, crq)
		} else {
			h.C.CASFail++
		}
	}
}

// clusterGate implements the LCRQ+H admission protocol (§4.1.1): if the
// ring is currently owned by another cluster, wait up to ClusterTimeout for
// ownership to arrive, then claim it with a CAS and proceed regardless of
// the CAS outcome. The gate never blocks an operation permanently, so the
// queue remains nonblocking.
//
// The clock is read once to set the deadline and then consulted only every
// 64th spin, in the same iteration that yields the scheduler: a time.Now()
// per spin cost more than the loads the gate exists to batch, and the
// deadline only needs scheduler-tick resolution. GateSpins counts the
// iterations so telemetry can see gate pressure.
func (q *LCRQ) clusterGate(h *Handle, crq *CRQ) {
	cur := crq.cluster.Load()
	if cur == h.Cluster {
		return
	}
	// Jitter the timeout so gate-parked threads of one cluster do not all
	// give up and CAS-claim the ring in the same instant (the claim herd is
	// the gate's own thundering-herd hazard). The jitter source lives in the
	// handle's controller and works whether or not adaptation is armed.
	deadline := time.Now().Add(h.Ctl.Jitter(q.cfg.ClusterTimeout))
	for spin := 0; ; spin++ {
		if crq.cluster.Load() == h.Cluster {
			return
		}
		h.C.GateSpins++
		if spin%64 == 63 {
			runtime.Gosched()
			if !time.Now().Before(deadline) {
				break
			}
		}
	}
	cur = crq.cluster.Load()
	if cur != h.Cluster {
		h.C.CAS++
		if !crq.cluster.CompareAndSwap(cur, h.Cluster) {
			h.C.CASFail++
		}
	}
}
