package core

// RingEvent identifies a ring-lifecycle transition reported to a Tap. The
// events cover exactly the slow-path transitions of the LCRQ protocol —
// closing a ring (Figure 3d line 88 / the tantrum of §3.2), appending and
// recycling ring segments (Figure 5c), unlinking a drained ring (Figure 5b),
// and the queue-wide Close of the drain lifecycle — so a trace of them
// reconstructs the queue's segment churn without touching the fast path.
type RingEvent uint8

const (
	// EvRingClose: a ring was closed to further enqueues after being
	// observed full (t − head ≥ R), or by a helper completing a close.
	EvRingClose RingEvent = iota
	// EvRingTantrum: a ring was closed by the starvation path — an enqueuer
	// exhausted StarvationLimit failed cell attempts and threw its tantrum.
	EvRingTantrum
	// EvRingAppend: a freshly allocated ring was published onto the list.
	EvRingAppend
	// EvRingRecycle: the published ring was obtained from the recycler
	// rather than allocated (always preceded by an EvRingAppend).
	EvRingRecycle
	// EvRingRetire: a drained ring was unlinked from the list and handed to
	// the reclamation scheme.
	EvRingRetire
	// EvQueueClose: the queue was closed to new enqueues (first Close call).
	EvQueueClose
	// EvCapacityReject: a bounded queue rejected an enqueue for lack of
	// item or ring budget. Emitted once per full episode (the first
	// rejection after a successful enqueue), not per rejected call, so a
	// polling EnqueueWait cannot flood the trace.
	EvCapacityReject
	// EvEpochStall: a pinned epoch record lagged the global epoch past the
	// configured stall age and was declared stalled-by-policy, unblocking
	// reclamation (recycling is suppressed while it remains stalled).
	EvEpochStall
	// EvOrphanRecover: a handle leaked without Release had its reclamation
	// record returned to the domain by the orphan-recovery finalizer.
	EvOrphanRecover
	// EvWatchdogAlert: the watchdog's health verdict transitioned from ok
	// to a detected problem (tantrum storm, capacity stall, epoch stall).
	EvWatchdogAlert
	// EvWatchdogRecover: the watchdog's health verdict returned to ok after
	// a problem, having stayed clean for the recovery hysteresis window
	// (consecutive ok ticks). Every EvWatchdogAlert is eventually paired
	// with an EvWatchdogRecover unless the queue closes first, so a
	// consumer of the event trace (e.g. a load shedder) can follow the
	// health state machine without polling.
	EvWatchdogRecover
	// EvContentionAdapt: the watchdog's remediation moved the shared
	// starvation boost of the adaptive contention controller — raised on a
	// tantrum-storm verdict, decayed on a return to health. Emitted only
	// when the boost actually changed (saturated raises and floored decays
	// are silent), so the event trace records the controller's trajectory.
	EvContentionAdapt

	// NumRingEvents is the number of event kinds; it is not itself an event.
	NumRingEvents
)

var ringEventNames = [NumRingEvents]string{
	EvRingClose:       "ring-close",
	EvRingTantrum:     "ring-tantrum",
	EvRingAppend:      "ring-append",
	EvRingRecycle:     "ring-recycle",
	EvRingRetire:      "ring-retire",
	EvQueueClose:      "queue-close",
	EvCapacityReject:  "capacity-reject",
	EvEpochStall:      "epoch-stall",
	EvOrphanRecover:   "orphan-recover",
	EvWatchdogAlert:   "watchdog-alert",
	EvWatchdogRecover: "watchdog-recover",
	EvContentionAdapt: "contention-adapt",
}

// String returns the event's stable name, as used in traces and exporters.
func (e RingEvent) String() string {
	if e < NumRingEvents {
		return ringEventNames[e]
	}
	return "unknown"
}

// Tap receives ring-lifecycle notifications. All notification sites are on
// slow paths (ring close, append, retire, queue close), so a Tap never adds
// cost to the per-operation fast path; a nil Tap in Config disables
// notification entirely. Implementations must be safe for concurrent use
// and must not call back into the queue.
type Tap interface {
	RingEvent(ev RingEvent)
}
