package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCapacityBound verifies the exact item account: the queue accepts
// exactly Capacity items, rejects the next with EnqFull, and frees budget
// one-for-one as items are dequeued.
func TestCapacityBound(t *testing.T) {
	const cap = 10
	q := NewLCRQ(Config{Capacity: cap})
	h := q.NewHandle()
	defer h.Release()
	for i := 0; i < cap; i++ {
		if st := q.EnqueueStatus(h, uint64(i)+1); st != EnqOK {
			t.Fatalf("enqueue %d: status %v, want EnqOK", i, st)
		}
	}
	if got := q.Items(); got != cap {
		t.Fatalf("Items() = %d, want %d", got, cap)
	}
	if st := q.EnqueueStatus(h, 99); st != EnqFull {
		t.Fatalf("enqueue past capacity: status %v, want EnqFull", st)
	}
	if q.CapacityRejects() == 0 {
		t.Fatal("CapacityRejects did not count the rejection")
	}
	if v, ok := q.Dequeue(h); !ok || v != 1 {
		t.Fatalf("dequeue = %d,%v, want 1,true (FIFO preserved across rejection)", v, ok)
	}
	if st := q.EnqueueStatus(h, 100); st != EnqOK {
		t.Fatalf("enqueue after freeing one slot: status %v, want EnqOK", st)
	}
	// Drain and confirm the rejected values never entered the sequence.
	want := []uint64{2, 3, 4, 5, 6, 7, 8, 9, 10, 100}
	for i, w := range want {
		v, ok := q.Dequeue(h)
		if !ok || v != w {
			t.Fatalf("drain[%d] = %d,%v, want %d,true", i, v, ok, w)
		}
	}
	if _, ok := q.Dequeue(h); ok {
		t.Fatal("queue should be empty")
	}
	if got := q.Items(); got != 0 {
		t.Fatalf("Items() after drain = %d, want 0", got)
	}
}

// TestMaxRingsBound verifies the ring budget with a wholly stalled
// consumer: the chain stops growing at MaxRings and every enqueue past it
// is turned away before allocating, in all reclamation modes.
func TestMaxRingsBound(t *testing.T) {
	for _, mode := range []Reclamation{ReclaimHazard, ReclaimEpoch, ReclaimGC} {
		t.Run(mode.String(), func(t *testing.T) {
			const maxRings = 3
			// R = 2: every third item needs a fresh ring, so the budget
			// binds almost immediately.
			q := NewLCRQ(Config{RingOrder: 1, MaxRings: maxRings, Reclamation: mode})
			h := q.NewHandle()
			defer h.Release()
			accepted := 0
			for i := 0; i < 1024; i++ {
				if q.Enqueue(h, uint64(i)+1) {
					accepted++
				}
				if lr := q.LiveRings(); lr > maxRings {
					t.Fatalf("LiveRings = %d exceeds budget %d", lr, maxRings)
				}
			}
			if accepted == 1024 {
				t.Fatal("ring budget never rejected an enqueue")
			}
			if accepted < maxRings {
				t.Fatalf("accepted only %d items across %d rings", accepted, maxRings)
			}
			// The budgeted queue must still drain in FIFO order.
			for i := 0; i < accepted; i++ {
				v, ok := q.Dequeue(h)
				if !ok || v != uint64(i)+1 {
					t.Fatalf("drain[%d] = %d,%v, want %d,true", i, v, ok, i+1)
				}
			}
		})
	}
}

// TestMaxRingsBoundConcurrent hammers a tiny ring budget from several
// producers while a consumer drains slowly, asserting the chain never
// exceeds the budget at any sampled instant. Run with -race this also
// exercises the budget gate's synchronization.
func TestMaxRingsBoundConcurrent(t *testing.T) {
	const (
		maxRings  = 4
		producers = 4
		opsEach   = 5000
	)
	q := NewLCRQ(Config{RingOrder: 1, MaxRings: maxRings})
	var pwg sync.WaitGroup
	var violations atomic.Int64
	stop := make(chan struct{})
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			h := q.NewHandle()
			defer h.Release()
			for i := 0; i < opsEach; i++ {
				q.Enqueue(h, uint64(p)<<32|uint64(i)+1)
				if q.LiveRings() > maxRings {
					violations.Add(1)
				}
			}
		}(p)
	}
	// One deliberately slow consumer: the budget must hold regardless.
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		h := q.NewHandle()
		defer h.Release()
		for {
			select {
			case <-stop:
				return
			default:
			}
			q.Dequeue(h)
			runtime.Gosched()
		}
	}()
	// Sample the gauge from the outside as well while producers run.
	done := make(chan struct{})
	go func() { pwg.Wait(); close(done) }()
	for sampling := true; sampling; {
		select {
		case <-done:
			sampling = false
		default:
			if q.LiveRings() > maxRings {
				violations.Add(1)
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	cwg.Wait()
	if n := violations.Load(); n > 0 {
		t.Fatalf("ring budget violated %d times (LiveRings > %d)", n, maxRings)
	}
}

// TestCapacityBoundConcurrent verifies the firm in-flight bound under
// producer/consumer concurrency: the exact item account never exceeds
// Capacity at any sampled point, and per-producer FIFO order survives the
// reject/retry churn.
func TestCapacityBoundConcurrent(t *testing.T) {
	const (
		cap       = 64
		producers = 4
		perProd   = 3000
	)
	q := NewLCRQ(Config{RingOrder: 2, Capacity: cap})
	var wg sync.WaitGroup
	var violations atomic.Int64
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			for i := 0; i < perProd; i++ {
				// Retry until accepted: models EnqueueWait's polling.
				for q.EnqueueStatus(h, uint64(p)<<32|uint64(i)+1) != EnqOK {
					if q.Items() > cap {
						violations.Add(1)
					}
					runtime.Gosched()
				}
				if q.Items() > cap {
					violations.Add(1)
				}
			}
		}(p)
	}
	got := make([][]uint64, producers)
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		h := q.NewHandle()
		defer h.Release()
		remaining := producers * perProd
		for remaining > 0 {
			v, ok := q.Dequeue(h)
			if !ok {
				runtime.Gosched()
				continue
			}
			got[v>>32] = append(got[v>>32], v&0xffffffff)
			remaining--
		}
	}()
	wg.Wait()
	cwg.Wait()
	if n := violations.Load(); n > 0 {
		t.Fatalf("item account exceeded capacity %d times", n)
	}
	for p := 0; p < producers; p++ {
		if len(got[p]) != perProd {
			t.Fatalf("producer %d: %d items consumed, want %d", p, len(got[p]), perProd)
		}
		for i, v := range got[p] {
			if v != uint64(i)+1 {
				t.Fatalf("producer %d: FIFO broken at %d: got %d, want %d", p, i, v, i+1)
			}
		}
	}
}

// TestBoundedNormalization pins the Config bookkeeping: derived ring
// budgets, the MinMaxRings floor, and Bounded().
func TestBoundedNormalization(t *testing.T) {
	cfg := Config{RingOrder: 4, Capacity: 100}.normalized()
	// ⌈100/16⌉+1 = 8.
	if cfg.MaxRings != 8 {
		t.Fatalf("derived MaxRings = %d, want 8", cfg.MaxRings)
	}
	if got := (Config{MaxRings: 1}).normalized().MaxRings; got != MinMaxRings {
		t.Fatalf("MaxRings floor = %d, want %d", got, MinMaxRings)
	}
	if (Config{}).Bounded() {
		t.Fatal("zero Config must be unbounded")
	}
	if !(Config{Capacity: 1}).Bounded() || !(Config{MaxRings: 5}).Bounded() {
		t.Fatal("Capacity/MaxRings must make the Config bounded")
	}
	// Bounded epoch mode auto-enables stall detection…
	if got := (Config{Capacity: 1, Reclamation: ReclaimEpoch}).normalized().StallAge; got != DefaultStallAge {
		t.Fatalf("bounded epoch StallAge = %v, want %v", got, DefaultStallAge)
	}
	// …and a negative StallAge opts out.
	if got := (Config{Capacity: 1, Reclamation: ReclaimEpoch, StallAge: -1}).normalized().StallAge; got != 0 {
		t.Fatalf("StallAge opt-out = %v, want 0", got)
	}
}

// TestDetachedHandleRejected verifies the fail-fast guard: a detached
// core.NewHandle() — legitimate for standalone CRQ use — must not silently
// run unprotected operations on a hazard- or epoch-mode LCRQ.
func TestDetachedHandleRejected(t *testing.T) {
	for _, mode := range []Reclamation{ReclaimHazard, ReclaimEpoch} {
		t.Run(mode.String(), func(t *testing.T) {
			q := NewLCRQ(Config{Reclamation: mode})
			h := NewHandle()
			defer func() {
				if recover() == nil {
					t.Fatal("detached handle on a reclaiming LCRQ did not panic")
				}
			}()
			q.Enqueue(h, 1)
		})
	}
	// GC mode has no reclamation record to forget, so detached handles are
	// legitimate there.
	t.Run("gc", func(t *testing.T) {
		q := NewLCRQ(Config{Reclamation: ReclaimGC})
		h := NewHandle()
		if !q.Enqueue(h, 1) {
			t.Fatal("detached handle must work on a GC-mode LCRQ")
		}
		if v, ok := q.Dequeue(h); !ok || v != 1 {
			t.Fatalf("dequeue = %d,%v, want 1,true", v, ok)
		}
	})
}

// TestOrphanHandleRecovery verifies the leak finalizer: a handle dropped
// without Release has its reclamation record returned to the domain, so the
// domain's record (and in epoch mode, reclamation progress) is not lost
// forever.
func TestOrphanHandleRecovery(t *testing.T) {
	for _, mode := range []Reclamation{ReclaimHazard, ReclaimEpoch} {
		t.Run(mode.String(), func(t *testing.T) {
			q := NewLCRQ(Config{Reclamation: mode})
			func() {
				h := q.NewHandle()
				q.Enqueue(h, 1)
				q.Dequeue(h)
				// h leaks: no Release.
			}()
			deadline := time.Now().Add(5 * time.Second)
			for q.OrphanRecoveries() == 0 {
				if time.Now().After(deadline) {
					t.Fatal("orphaned handle was never recovered by the finalizer")
				}
				runtime.GC()
				time.Sleep(time.Millisecond)
			}
		})
	}
}

// TestReleaseDisarmsRecovery verifies the orderly path: a properly Released
// handle must not be double-counted by the orphan finalizer.
func TestReleaseDisarmsRecovery(t *testing.T) {
	q := NewLCRQ(Config{})
	func() {
		h := q.NewHandle()
		q.Enqueue(h, 1)
		h.Release()
	}()
	for i := 0; i < 5; i++ {
		runtime.GC()
		time.Sleep(time.Millisecond)
	}
	if n := q.OrphanRecoveries(); n != 0 {
		t.Fatalf("released handle was recovered as an orphan (%d recoveries)", n)
	}
}

// TestEpochStallDetection verifies stall-resilient reclamation end to end
// on the queue: with one participant parked inside an operation-style pin,
// the domain must declare it stalled (rather than freezing reclamation) and
// a bounded queue must keep accepting and draining items.
func TestEpochStallDetection(t *testing.T) {
	q := NewLCRQ(Config{
		RingOrder:   1,
		Reclamation: ReclaimEpoch,
		MaxRings:    4,
		StallAge:    time.Millisecond,
	})
	stalled := q.NewHandle()
	stalled.enter() // park the handle pinned, as a stuck goroutine would
	h := q.NewHandle()
	defer h.Release()
	// Drive traffic and reclamation kicks until the stall is declared.
	deadline := time.Now().Add(5 * time.Second)
	for q.EpochStalls() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("pinned participant was never declared stalled")
		}
		for i := 0; i < 64; i++ {
			q.Enqueue(h, uint64(i)+1)
			q.Dequeue(h)
		}
		q.KickReclaim(h)
		time.Sleep(time.Millisecond)
	}
	// Traffic must still flow within the ring budget after the stall.
	for i := 0; i < 256; i++ {
		if !q.Enqueue(h, uint64(i)+1) {
			// Budget pressure is fine; drain and continue.
			q.Dequeue(h)
			continue
		}
		if _, ok := q.Dequeue(h); !ok {
			t.Fatal("dequeue failed with items in flight")
		}
		if lr := q.LiveRings(); lr > 4 {
			t.Fatalf("LiveRings = %d exceeds budget with a stalled reclaimer", lr)
		}
	}
	stalled.exit()
	stalled.Release()
}
