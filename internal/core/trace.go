package core

import (
	"sync/atomic"
	"time"
)

// Item-level tracing: a 1-in-N sampled (or explicitly forced) enqueue stamps
// a trace ID and wall-clock timestamp alongside the ring cell it deposits
// into, and the dequeue that later claims that cell reads the stamp back,
// yielding the item's exact ring sojourn time and an end-to-end identity a
// caller can correlate across layers (client → wire → queue → response).
//
// The mechanism leans on the paper's own structure instead of widening the
// 128-bit cell: every logical ring index t is claimed by exactly one
// enqueuer (the F&A hands it out once) and consumed by exactly one dequeuer,
// so a parallel stamps array indexed by t&mask with a tag word holding t+1
// pairs the two ends exactly. A stamp whose enqueue CAS2 subsequently failed
// is unreachable — no value was ever deposited at that index, so no dequeue
// transition can succeed there — and a slot reused R indices later fails the
// tag comparison. The only residual race is two *sampled* enqueuers a full
// lap apart writing one slot concurrently; the tag-last/tag-recheck seqlock
// below turns that vanishing case into a dropped sample, never a torn one.
//
// Cost model: untraced queues allocate no stamps and the operation paths add
// only dead branches on handle-local or queue-local words (guarded by
// TestTracingOffOverhead); traced queues pay two extra branches per op, and
// only the 1-in-N armed operations touch the stamp words or the clock.

// TraceTap receives item-sojourn observations from dequeues that claimed a
// stamped item. Like Tap it must be safe for concurrent use and must not
// call back into the queue; unlike Tap it is invoked on the dequeue path,
// but only for the sampled 1-in-N items, so its amortized cost is bounded by
// the sampling stride. The public layer installs the telemetry sink here.
type TraceTap interface {
	ItemSojourn(id uint64, enqUnixNs, sojournNs int64)
}

// TraceHit describes one stamped item claimed by a dequeue operation.
type TraceHit struct {
	// ID is the trace identity stamped at enqueue: the sampled PRNG draw, or
	// the caller-chosen value passed to ForceTrace.
	ID uint64
	// EnqUnixNs is the wall-clock UnixNano recorded at the deposit attempt.
	EnqUnixNs int64
	// SojournNs is the item's ring residency: dequeue wall clock minus
	// EnqUnixNs, clamped at zero (wall time may step).
	SojournNs int64
	// Pos is the item's position in the dequeue's output (always 0 for a
	// single-item dequeue; the out-slice index for DequeueBatch).
	Pos int
}

// traceBatchMax bounds how many stamped items one dequeue operation records.
// A batch can in principle claim several sampled items; the buffer lives on
// the handle so the hot path never allocates, and overflow hits (beyond
// sampling expectations by orders of magnitude) are dropped, counted in
// Counters.TraceHits regardless.
const traceBatchMax = 8

// traceStamp is one slot of a CRQ's parallel stamp array. tag holds the full
// ring index + 1 (0 = never stamped / cleared) and is written last and
// re-read by readers, seqlock style, so id/ns are never observed torn.
type traceStamp struct {
	tag atomic.Uint64
	//lcrq:seqlock tag
	id atomic.Uint64
	//lcrq:seqlock tag
	ns atomic.Int64
}

// traceSeed scrambles per-handle PRNG seeds so sampled handles do not draw
// identical ID streams.
var traceSeed atomic.Uint64

// initTrace seeds the handle's sampling state from the queue configuration.
// Called once from NewHandle; a zero or negative stride leaves the handle
// unable to self-arm (forced traces still work whenever stamps exist).
func (h *Handle) initTrace(cfg Config) {
	if cfg.TraceSampleN <= 0 {
		return
	}
	h.traceSampleN = cfg.TraceSampleN
	h.traceRand = traceSeed.Add(1) * 0x9E3779B97F4A7C15
	// Random phase so handles do not sample in lockstep.
	h.traceCountdown = int(h.traceRand%uint64(cfg.TraceSampleN)) + 1
}

// maybeArmTrace advances the sampling countdown by n operations and arms the
// handle when it expires. Armed state persists across failed attempts (a
// capacity rejection, a closed ring) until a deposit succeeds, so a retried
// EnqueueWait still stamps the item it finally lands.
//
//lcrq:hotpath
func (h *Handle) maybeArmTrace(n int) {
	if h.traceSampleN == 0 || h.traceArmed {
		return
	}
	h.traceCountdown -= n
	if h.traceCountdown > 0 {
		return
	}
	h.traceCountdown = h.traceSampleN
	x := h.traceRand // xorshift64: cheap, never allocates
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	h.traceRand = x
	if x == 0 {
		x = 1
	}
	h.traceID = x
	h.traceForced = false
	h.traceArmed = true
	h.C.TraceArms++
}

// ForceTrace arms the handle to stamp id into the next value it deposits,
// regardless of the sampling stride. Used by callers that carry an external
// trace identity (the qserve wire path). The arm persists until a deposit
// succeeds; ClearTrace abandons it.
func (h *Handle) ForceTrace(id uint64) {
	h.traceID = id
	h.traceForced = true
	h.traceArmed = true
	h.C.TraceArms++
}

// ClearTrace disarms a pending trace that will not be deposited (e.g. the
// enqueue was rejected and the caller is not retrying).
func (h *Handle) ClearTrace() { h.traceArmed = false; h.traceForced = false }

// TraceArmed reports whether the handle will stamp its next deposit.
func (h *Handle) TraceArmed() bool { return h.traceArmed }

// completeEnqTrace records that the armed trace was deposited and disarms.
//
//lcrq:hotpath
func (h *Handle) completeEnqTrace() {
	h.traceArmed = false
	h.traceForced = false
	h.lastEnqTraced = true
	h.lastEnqID = h.traceID
}

// LastEnqueueTrace returns the trace ID stamped by the handle's most recent
// successful enqueue operation, if that operation deposited one. The flag is
// reset by the next arming, not per operation, so read it immediately after
// the enqueue that forced the trace.
func (h *Handle) LastEnqueueTrace() (id uint64, ok bool) {
	return h.lastEnqID, h.lastEnqTraced
}

// resetEnqTrace clears the last-enqueue record before an op that may set it.
//
//lcrq:hotpath
func (h *Handle) resetEnqTrace() { h.lastEnqTraced = false }

// DequeueTraces returns the stamped items the handle's most recent dequeue
// operation claimed, valid until its next dequeue. The returned slice aliases
// handle-local storage; callers must copy what they keep.
func (h *Handle) DequeueTraces() []TraceHit {
	return h.traceHitBuf[:h.traceHits]
}

// stampTrace publishes the handle's armed trace for ring index t, tag last
// so a concurrent reader (a dequeuer on an older lap of this slot) never
// observes a torn id/ns pair.
//
//lcrq:hotpath
func (q *CRQ) stampTrace(h *Handle, t uint64) {
	s := &q.stamps[t&q.mask]
	s.tag.Store(0)
	s.id.Store(h.traceID)
	s.ns.Store(time.Now().UnixNano())
	s.tag.Store(t + 1)
}

// checkStamp runs after a successful dequeue transition at ring index idx:
// if the matching enqueuer left a stamp for exactly this index, record the
// hit (ID, enqueue time, sojourn) into the handle's buffer. pos is the
// item's position in the operation's output.
//
//lcrq:hotpath
func (q *CRQ) checkStamp(h *Handle, idx uint64, pos int) {
	s := &q.stamps[idx&q.mask]
	tag := s.tag.Load()
	if tag != idx+1 {
		return
	}
	id := s.id.Load()
	ns := s.ns.Load()
	if s.tag.Load() != tag {
		return // overwritten mid-read (sampled writers a lap apart); drop
	}
	h.C.TraceHits++
	if h.traceHits >= traceBatchMax {
		return
	}
	d := time.Now().UnixNano() - ns
	if d < 0 {
		d = 0
	}
	hit := &h.traceHitBuf[h.traceHits]
	hit.ID = id
	hit.EnqUnixNs = ns
	hit.SojournNs = d
	hit.Pos = pos
	h.traceHits++
}

// deliverTraces forwards the dequeue's recorded hits to the configured
// TraceTap. Called only when at least one hit was recorded, i.e. at the
// sampling cadence.
func (q *LCRQ) deliverTraces(h *Handle) {
	if tap := q.cfg.TraceTap; tap != nil {
		for i := 0; i < h.traceHits; i++ {
			t := &h.traceHitBuf[i]
			tap.ItemSojourn(t.ID, t.EnqUnixNs, t.SojournNs)
		}
	}
}

// Traced reports whether the queue was configured with item tracing
// (stamp arrays allocated, sampling per TraceSampleN).
func (q *LCRQ) Traced() bool { return q.traced }

// TraceSampleN returns the configured trace sampling stride: 0 when tracing
// is off, >0 for 1-in-N sampling, <0 when only forced traces are stamped.
func (q *LCRQ) TraceSampleN() int { return q.cfg.TraceSampleN }
