package core

import (
	"sync"
	"testing"
	"time"
)

// tapRecorder collects ItemSojourn observations.
type tapRecorder struct {
	mu   sync.Mutex
	ids  []uint64
	enq  []int64
	soj  []int64
	last int64
}

func (t *tapRecorder) ItemSojourn(id uint64, enqUnixNs, sojournNs int64) {
	t.mu.Lock()
	t.ids = append(t.ids, id)
	t.enq = append(t.enq, enqUnixNs)
	t.soj = append(t.soj, sojournNs)
	t.last = sojournNs
	t.mu.Unlock()
}

func (t *tapRecorder) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ids)
}

func TestForcedTraceRoundTrip(t *testing.T) {
	tap := &tapRecorder{}
	q := NewLCRQ(Config{TraceSampleN: -1, TraceTap: tap})
	h := q.NewHandle()
	defer h.Release()

	h.ForceTrace(0xfeedface)
	if !h.TraceArmed() {
		t.Fatal("ForceTrace did not arm the handle")
	}
	before := time.Now().UnixNano()
	if !q.Enqueue(h, 7) {
		t.Fatal("enqueue failed")
	}
	if h.TraceArmed() {
		t.Fatal("arm not consumed by successful deposit")
	}
	if id, ok := h.LastEnqueueTrace(); !ok || id != 0xfeedface {
		t.Fatalf("LastEnqueueTrace = %#x, %v; want 0xfeedface, true", id, ok)
	}

	v, ok := q.Dequeue(h)
	if !ok || v != 7 {
		t.Fatalf("dequeue = %d, %v", v, ok)
	}
	hits := h.DequeueTraces()
	if len(hits) != 1 {
		t.Fatalf("DequeueTraces len = %d, want 1", len(hits))
	}
	hit := hits[0]
	if hit.ID != 0xfeedface {
		t.Errorf("hit ID = %#x, want 0xfeedface", hit.ID)
	}
	if hit.EnqUnixNs < before || hit.EnqUnixNs > time.Now().UnixNano() {
		t.Errorf("enqueue stamp %d outside test window", hit.EnqUnixNs)
	}
	if hit.SojournNs < 0 {
		t.Errorf("negative sojourn %d", hit.SojournNs)
	}
	if hit.Pos != 0 {
		t.Errorf("hit Pos = %d, want 0", hit.Pos)
	}
	if tap.count() != 1 {
		t.Fatalf("tap observations = %d, want 1", tap.count())
	}
	if h.C.TraceArms != 1 || h.C.TraceHits != 1 {
		t.Errorf("counters: arms=%d hits=%d, want 1/1", h.C.TraceArms, h.C.TraceHits)
	}

	// The consumed stamp must not re-match on later laps of the slot.
	for i := 0; i < 10; i++ {
		q.Enqueue(h, uint64(i))
	}
	for i := 0; i < 10; i++ {
		if _, ok := q.Dequeue(h); !ok {
			t.Fatal("unexpected empty")
		}
		if len(h.DequeueTraces()) != 0 {
			t.Fatal("untraced item reported a trace hit")
		}
	}
}

func TestSampledTracing(t *testing.T) {
	tap := &tapRecorder{}
	const stride = 8
	q := NewLCRQ(Config{TraceSampleN: stride, TraceTap: tap})
	h := q.NewHandle()
	defer h.Release()

	const ops = 10 * stride
	for i := 0; i < ops; i++ {
		if !q.Enqueue(h, uint64(i)) {
			t.Fatal("enqueue failed")
		}
	}
	for i := 0; i < ops; i++ {
		if _, ok := q.Dequeue(h); !ok {
			t.Fatal("unexpected empty")
		}
	}
	// Deterministic stride after a random phase: 10 strides of enqueues arm
	// 9 or 10 times, and every armed stamp is claimed by a dequeue.
	if h.C.TraceArms < ops/stride-1 || h.C.TraceArms > ops/stride {
		t.Errorf("TraceArms = %d, want ~%d", h.C.TraceArms, ops/stride)
	}
	if h.C.TraceHits != h.C.TraceArms {
		t.Errorf("TraceHits = %d, want %d (every deposited stamp claimed)", h.C.TraceHits, h.C.TraceArms)
	}
	if uint64(tap.count()) != h.C.TraceHits {
		t.Errorf("tap observations = %d, want %d", tap.count(), h.C.TraceHits)
	}
}

func TestForcedTraceBatch(t *testing.T) {
	tap := &tapRecorder{}
	q := NewLCRQ(Config{TraceSampleN: -1, TraceTap: tap})
	h := q.NewHandle()
	defer h.Release()

	h.ForceTrace(42)
	vs := []uint64{10, 11, 12, 13}
	if n, st := q.EnqueueBatch(h, vs); n != len(vs) || st != EnqOK {
		t.Fatalf("EnqueueBatch = %d, %v", n, st)
	}
	if id, ok := h.LastEnqueueTrace(); !ok || id != 42 {
		t.Fatalf("LastEnqueueTrace = %d, %v; want 42, true", id, ok)
	}
	out := make([]uint64, 4)
	n := q.DequeueBatch(h, out)
	if n != 4 {
		t.Fatalf("DequeueBatch = %d, want 4", n)
	}
	hits := h.DequeueTraces()
	if len(hits) != 1 {
		t.Fatalf("DequeueTraces len = %d, want 1", len(hits))
	}
	// One trace per operation: only the first deposited value is stamped.
	if hits[0].ID != 42 || hits[0].Pos != 0 {
		t.Errorf("hit = %+v, want ID 42 at Pos 0", hits[0])
	}
}

func TestTraceSurvivesRingSpill(t *testing.T) {
	tap := &tapRecorder{}
	// Tiny ring so the forced trace's item spills into a fresh seeded ring.
	q := NewLCRQ(Config{RingOrder: 1, TraceSampleN: -1, TraceTap: tap})
	h := q.NewHandle()
	defer h.Release()

	// Fill past one ring, then force a trace mid-stream; whichever path the
	// deposit takes (cell transaction or spill seed), the stamp must survive.
	for i := 0; i < 7; i++ {
		if !q.Enqueue(h, uint64(i)) {
			t.Fatal("enqueue failed")
		}
	}
	h.ForceTrace(777)
	if !q.Enqueue(h, 1000) {
		t.Fatal("traced enqueue failed")
	}
	if h.TraceArmed() {
		t.Fatal("arm not consumed")
	}
	found := false
	for {
		v, ok := q.Dequeue(h)
		if !ok {
			break
		}
		for _, hit := range h.DequeueTraces() {
			if hit.ID == 777 {
				if v != 1000 {
					t.Errorf("trace 777 attached to value %d, want 1000", v)
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("forced trace lost across ring spill")
	}
}

func TestTraceStampsClearedOnRecycle(t *testing.T) {
	tap := &tapRecorder{}
	// Small rings + forced traces on every item maximize stale-stamp
	// exposure across recycled rings.
	q := NewLCRQ(Config{RingOrder: 1, TraceSampleN: -1, TraceTap: tap})
	h := q.NewHandle()
	defer h.Release()

	const rounds = 200
	var arms, hits int
	for i := 0; i < rounds; i++ {
		h.ForceTrace(uint64(i) + 1)
		if !q.Enqueue(h, uint64(i)) {
			t.Fatal("enqueue failed")
		}
		arms++
		v, ok := q.Dequeue(h)
		if !ok {
			t.Fatal("unexpected empty")
		}
		tr := h.DequeueTraces()
		if len(tr) > 1 {
			t.Fatalf("round %d: %d hits for one item", i, len(tr))
		}
		if len(tr) == 1 {
			if tr[0].ID != uint64(i)+1 {
				t.Fatalf("round %d: stale stamp ID %d (want %d): recycle did not clear tags", i, tr[0].ID, i+1)
			}
			if v != uint64(i) {
				t.Fatalf("round %d: value %d", i, v)
			}
			hits++
		}
	}
	if hits != arms {
		t.Errorf("hits = %d, arms = %d; every forced stamp should be claimed", hits, arms)
	}
}

func TestUntracedQueueIgnoresForceTrace(t *testing.T) {
	q := NewLCRQ(Config{}) // tracing off: no stamp arrays
	h := q.NewHandle()
	defer h.Release()

	h.ForceTrace(5)
	if !q.Enqueue(h, 9) {
		t.Fatal("enqueue failed")
	}
	if _, ok := q.Dequeue(h); !ok {
		t.Fatal("unexpected empty")
	}
	if len(h.DequeueTraces()) != 0 {
		t.Fatal("untraced queue produced a trace hit")
	}
}

func TestTracedConcurrentStress(t *testing.T) {
	tap := &tapRecorder{}
	q := NewLCRQ(Config{RingOrder: 4, TraceSampleN: 16, TraceTap: tap})
	const workers = 4
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := q.NewHandle()
			defer h.Release()
			for i := 0; i < perWorker; i++ {
				for !q.Enqueue(h, uint64(i)%1000) {
				}
				if i%2 == 1 {
					q.Dequeue(h)
					q.Dequeue(h)
				}
			}
		}()
	}
	wg.Wait()
	h := q.NewHandle()
	defer h.Release()
	for {
		if _, ok := q.Dequeue(h); !ok {
			break
		}
	}
	if tap.count() == 0 {
		t.Fatal("no sojourn observations under concurrent sampled tracing")
	}
	tap.mu.Lock()
	defer tap.mu.Unlock()
	for i, s := range tap.soj {
		if s < 0 {
			t.Fatalf("observation %d: negative sojourn %d", i, s)
		}
	}
}
